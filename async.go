package patree

import (
	"sync"
	"sync/atomic"

	"github.com/patree/patree/internal/core"
)

// Handle is the future for one asynchronous operation. The issuing
// goroutine owns it: Wait blocks until the working thread completes the
// operation, the accessors (Err, Found, Value, Pairs) wait implicitly,
// and Release returns the handle to the pool once the caller is done
// with the results. Results returned by the accessors remain valid after
// Release.
//
// A Handle is not safe for concurrent use by multiple goroutines; hand
// it off if another goroutine should wait. The one exception to the
// ownership rule is WaitContext returning the context's error: that
// detaches the handle — the working thread reclaims it when the
// operation eventually completes — and the caller must not touch it
// again (see DESIGN.md).
type Handle struct {
	ch    chan struct{}
	state atomic.Uint32
	res   core.Result
	// waited is owner-local: once the completion token is consumed the
	// accessors are pure field reads.
	waited bool
	// doneFn is the reusable completion callback handed to core.Op.Done;
	// built once per handle lifetime, it survives pool recycling so a
	// steady-state async operation allocates neither closure nor channel.
	doneFn func(*core.Op)
	// lazyMerge, when non-nil after the completion token is consumed,
	// computes the final result on the consuming goroutine (resolveLazy)
	// instead of on the working thread that delivered last — the
	// off-worker scan merge of Options.Pipelined. Written before the
	// token is published, read after it is consumed, so the channel
	// orders the accesses.
	lazyMerge func() core.Result
}

// Handle lifecycle states.
const (
	hPending uint32 = iota
	hCompleted
	hDetached
	// hReleased marks a handle that is back in (or on its way to) the
	// pool. It exists purely so misuse — touching a handle after Release
	// or after a WaitContext detach — fails with a descriptive panic
	// instead of a blocked Wait or a torn read of a recycled slot. The
	// detection is best-effort: a pooled reacquisition can win the race
	// with the misuser, but a correct program never observes this state.
	hReleased
)

var handlePool = sync.Pool{
	New: func() any { return &Handle{ch: make(chan struct{}, 1)} },
}

// acquireHandle returns a pooled handle ready for one operation.
func acquireHandle() *Handle {
	h := handlePool.Get().(*Handle)
	h.res = core.Result{}
	h.lazyMerge = nil
	h.waited = false
	h.state.Store(hPending)
	// Defensive: a well-behaved lifecycle never leaves a token behind,
	// but a stale one would corrupt the next Wait.
	select {
	case <-h.ch:
	default:
	}
	if h.doneFn == nil {
		h.doneFn = h.complete
	}
	return h
}

// complete is the Done callback; it runs on the working thread. The
// operation is released back to its pool here — the tree drops all
// references before calling Done — and the result (whose slices are
// freshly allocated per operation, never pooled) moves to the handle.
func (h *Handle) complete(o *core.Op) {
	res := o.Res
	o.Release()
	h.deliver(res)
}

// deliver resolves the handle with res. It is the single fulfilment
// path: complete uses it for one-op handles, a fanAgg uses it after
// merging the per-shard results of a scattered operation.
func (h *Handle) deliver(res core.Result) {
	h.res = res
	h.res.Err = mapErr(h.res.Err)
	if h.state.CompareAndSwap(hPending, hCompleted) {
		h.ch <- struct{}{} // cap 1: never blocks the working thread
	} else {
		// Detached by a cancelled WaitContext: nobody will consume the
		// result, so the completion also recycles the handle.
		h.recycle()
	}
}

// deliverLazy resolves the handle without computing the result yet: the
// completion token is published immediately, and merge runs on the first
// goroutine that consumes it (resolveLazy) — the caller — rather than on
// the working thread that happened to deliver last. This is the
// off-worker scan merge of Options.Pipelined: large fan-in merges stop
// stealing poll cycles from the shard whose completion closed the
// scatter. A handle detached by a cancelled WaitContext has no consumer,
// so the merge is dropped unrun and the handle recycled.
func (h *Handle) deliverLazy(merge func() core.Result) {
	h.lazyMerge = merge
	if h.state.CompareAndSwap(hPending, hCompleted) {
		h.ch <- struct{}{} // cap 1: never blocks the working thread
	} else {
		h.lazyMerge = nil
		h.recycle()
	}
}

// resolveLazy materializes a lazily delivered result. Must run on the
// goroutine that just consumed the completion token, before any h.res
// read.
func (h *Handle) resolveLazy() {
	if h.lazyMerge != nil {
		h.res = h.lazyMerge()
		h.res.Err = mapErr(h.res.Err)
		h.lazyMerge = nil
	}
}

// Wait blocks until the operation completes and returns its error.
// It is idempotent: after the first return every further call (and every
// accessor) returns immediately.
func (h *Handle) Wait() error {
	if !h.waited {
		h.checkLive("Wait")
		<-h.ch
		h.resolveLazy()
		h.waited = true
	}
	return h.res.Err
}

// checkLive panics descriptively when a handle that cannot deliver a
// result anymore — released, or detached by a cancelled WaitContext —
// is about to be waited on. Without it the misuse would block forever
// or tear a read against pool recycling.
func (h *Handle) checkLive(what string) {
	switch h.state.Load() {
	case hDetached:
		panic("patree: Handle." + what + " after WaitContext detach — a handle detached by cancellation is reclaimed by its completion and must not be touched")
	case hReleased:
		panic("patree: Handle." + what + " after Release")
	}
}

// Err waits and returns the operation error (nil on success).
func (h *Handle) Err() error { return h.Wait() }

// Found waits and reports whether the key existed (search, update,
// delete) or a previous value was replaced (insert).
func (h *Handle) Found() bool {
	h.Wait()
	return h.res.Found
}

// Value waits and returns the value found by a point search.
func (h *Handle) Value() []byte {
	h.Wait()
	return h.res.Value
}

// Pairs waits and returns a range scan's results.
func (h *Handle) Pairs() []KV {
	h.Wait()
	return h.res.Pairs
}

// Release waits for completion if necessary and returns the handle to
// the pool. The handle must not be used afterwards; previously returned
// result slices stay valid.
func (h *Handle) Release() {
	h.Wait()
	h.recycle()
}

// recycle returns h to the pool without waiting; the caller guarantees
// no completion is outstanding. The hReleased marker makes a subsequent
// touch by the former owner fail loudly (best-effort; see checkLive) —
// clearing waited here is what routes that touch through checkLive
// instead of the owner-local fast path, which would silently read the
// zeroed result.
func (h *Handle) recycle() {
	h.res = core.Result{}
	h.lazyMerge = nil
	h.waited = false
	h.state.Store(hReleased)
	handlePool.Put(h)
}

// abandon recycles a handle whose operation was never admitted.
func (h *Handle) abandon() {
	h.waited = true
	h.recycle()
}

// admitAsync pairs op with a pooled handle and admits it on s. If the
// inbox ring is full this blocks until the working thread frees space
// (bounded-queue backpressure).
func (db *DB) admitAsync(s *shard, op *core.Op) (*Handle, error) {
	h := acquireHandle()
	op.Done = h.doneFn
	db.throttle(s)
	if err := db.admit(s, op); err != nil {
		h.abandon()
		return nil, err
	}
	return h, nil
}

// fanAgg aggregates one logical operation scattered across every shard
// into a single Handle: each shard's Done callback stores its result,
// and whichever callback finishes last merges them and delivers. The
// per-shard slots make the result deterministic regardless of
// completion order.
type fanAgg struct {
	h         *Handle
	remaining atomic.Int32
	res       []core.Result
	merge     func([]core.Result) core.Result
	// deferred (Options.Pipelined) delivers the merge lazily so it runs
	// on the waiting goroutine instead of the last-finishing worker.
	deferred bool
}

// done returns the Done callback for shard slot i.
func (a *fanAgg) done(i int) func(*core.Op) {
	return func(o *core.Op) {
		a.res[i] = o.Res
		o.Release()
		if a.remaining.Add(-1) == 0 {
			if a.deferred {
				a.h.deliverLazy(func() core.Result { return a.merge(a.res) })
			} else {
				a.h.deliver(a.merge(a.res))
			}
		}
	}
}

// fanOut admits one operation per shard (built by mk) under a single
// admission-lock hold, returning the aggregated future. Holding the
// lock across all admissions makes the fan-out atomic against Close:
// either every shard receives its piece or none does.
func (db *DB) fanOut(mk func() *core.Op, merge func([]core.Result) core.Result) (*Handle, error) {
	h := acquireHandle()
	agg := &fanAgg{h: h, res: make([]core.Result, len(db.shards)), merge: merge, deferred: db.deferMerge}
	agg.remaining.Store(int32(len(db.shards)))
	ops := make([]*core.Op, len(db.shards))
	for i := range ops {
		op := mk()
		op.Done = agg.done(i)
		ops[i] = op
	}
	db.mu.RLock()
	if db.closed {
		db.mu.RUnlock()
		for _, op := range ops {
			op.Release()
		}
		h.abandon()
		return nil, ErrClosed
	}
	for i, s := range db.shards {
		s.tree.Admit(ops[i])
	}
	db.mu.RUnlock()
	return h, nil
}

// resolvedHandle wraps an already-computed result (an optimistic read
// served outside the pipeline) in a pooled handle so the async and
// context APIs keep one uniform shape. The handle is born completed:
// deliver runs before the caller ever sees it, so Wait returns without
// blocking.
func resolvedHandle(res core.Result) *Handle {
	h := acquireHandle()
	h.deliver(res)
	return h
}

// PutAsync admits an insert-or-replace and returns its future.
func (db *DB) PutAsync(key uint64, value []byte) (*Handle, error) {
	return db.admitAsync(db.shardFor(key), core.AcquireOp().InitInsert(key, value))
}

// GetAsync admits a point lookup and returns its future. With
// Options.ConcurrentReads a lookup the optimistic read path can serve is
// answered immediately: the returned handle is already resolved and its
// Wait will not block.
func (db *DB) GetAsync(key uint64) (*Handle, error) {
	if db.concReads {
		if res, ok := db.tryConcGet(key); ok {
			return resolvedHandle(res), nil
		}
	}
	return db.admitAsync(db.shardFor(key), core.AcquireOp().InitSearch(key))
}

// UpdateAsync admits a replace-if-present and returns its future.
func (db *DB) UpdateAsync(key uint64, value []byte) (*Handle, error) {
	return db.admitAsync(db.shardFor(key), core.AcquireOp().InitUpdate(key, value))
}

// DeleteAsync admits a delete and returns its future.
func (db *DB) DeleteAsync(key uint64) (*Handle, error) {
	return db.admitAsync(db.shardFor(key), core.AcquireOp().InitDelete(key))
}

// ScanAsync admits a range scan over [lo, hi] (limit <= 0 = unlimited)
// and returns its future. Across shards it scatters one scan per shard
// — each with the full limit, since any single shard could own the
// first limit keys of the range — and merges on completion.
func (db *DB) ScanAsync(lo, hi uint64, limit int) (*Handle, error) {
	if db.concReads {
		if res, ok := db.tryConcScan(lo, hi, limit); ok {
			return resolvedHandle(res), nil
		}
	}
	if len(db.shards) == 1 {
		return db.admitAsync(db.shards[0], core.AcquireOp().InitRange(lo, hi, limit))
	}
	return db.fanOut(
		func() *core.Op { return core.AcquireOp().InitRange(lo, hi, limit) },
		func(rs []core.Result) core.Result { return mergeScan(rs, limit) },
	)
}

// SyncAsync admits a sync (on every shard) and returns its future.
func (db *DB) SyncAsync() (*Handle, error) {
	if len(db.shards) == 1 {
		return db.admitAsync(db.shards[0], core.AcquireOp().InitSync())
	}
	return db.fanOut(
		func() *core.Op { return core.AcquireOp().InitSync() },
		mergeFirstErr,
	)
}
