package patree

import (
	"sync"
	"sync/atomic"

	"github.com/patree/patree/internal/core"
)

// Handle is the future for one asynchronous operation. The issuing
// goroutine owns it: Wait blocks until the working thread completes the
// operation, the accessors (Err, Found, Value, Pairs) wait implicitly,
// and Release returns the handle to the pool once the caller is done
// with the results. Results returned by the accessors remain valid after
// Release.
//
// A Handle is not safe for concurrent use by multiple goroutines; hand
// it off if another goroutine should wait. The one exception to the
// ownership rule is WaitContext returning the context's error: that
// detaches the handle — the working thread reclaims it when the
// operation eventually completes — and the caller must not touch it
// again (see DESIGN.md).
type Handle struct {
	ch    chan struct{}
	state atomic.Uint32
	res   core.Result
	// waited is owner-local: once the completion token is consumed the
	// accessors are pure field reads.
	waited bool
	// doneFn is the reusable completion callback handed to core.Op.Done;
	// built once per handle lifetime, it survives pool recycling so a
	// steady-state async operation allocates neither closure nor channel.
	doneFn func(*core.Op)
}

// Handle lifecycle states.
const (
	hPending uint32 = iota
	hCompleted
	hDetached
)

var handlePool = sync.Pool{
	New: func() any { return &Handle{ch: make(chan struct{}, 1)} },
}

// acquireHandle returns a pooled handle ready for one operation.
func acquireHandle() *Handle {
	h := handlePool.Get().(*Handle)
	h.res = core.Result{}
	h.waited = false
	h.state.Store(hPending)
	// Defensive: a well-behaved lifecycle never leaves a token behind,
	// but a stale one would corrupt the next Wait.
	select {
	case <-h.ch:
	default:
	}
	if h.doneFn == nil {
		h.doneFn = h.complete
	}
	return h
}

// complete is the Done callback; it runs on the working thread. The
// operation is released back to its pool here — the tree drops all
// references before calling Done — and the result (whose slices are
// freshly allocated per operation, never pooled) moves to the handle.
func (h *Handle) complete(o *core.Op) {
	h.res = o.Res
	h.res.Err = mapErr(h.res.Err)
	o.Release()
	if h.state.CompareAndSwap(hPending, hCompleted) {
		h.ch <- struct{}{} // cap 1: never blocks the working thread
	} else {
		// Detached by a cancelled WaitContext: nobody will consume the
		// result, so the completion also recycles the handle.
		h.recycle()
	}
}

// Wait blocks until the operation completes and returns its error.
// It is idempotent: after the first return every further call (and every
// accessor) returns immediately.
func (h *Handle) Wait() error {
	if !h.waited {
		<-h.ch
		h.waited = true
	}
	return h.res.Err
}

// Err waits and returns the operation error (nil on success).
func (h *Handle) Err() error { return h.Wait() }

// Found waits and reports whether the key existed (search, update,
// delete) or a previous value was replaced (insert).
func (h *Handle) Found() bool {
	h.Wait()
	return h.res.Found
}

// Value waits and returns the value found by a point search.
func (h *Handle) Value() []byte {
	h.Wait()
	return h.res.Value
}

// Pairs waits and returns a range scan's results.
func (h *Handle) Pairs() []KV {
	h.Wait()
	return h.res.Pairs
}

// Release waits for completion if necessary and returns the handle to
// the pool. The handle must not be used afterwards; previously returned
// result slices stay valid.
func (h *Handle) Release() {
	h.Wait()
	h.recycle()
}

// recycle returns h to the pool without waiting; the caller guarantees
// no completion is outstanding.
func (h *Handle) recycle() {
	h.res = core.Result{}
	handlePool.Put(h)
}

// abandon recycles a handle whose operation was never admitted.
func (h *Handle) abandon() {
	h.waited = true
	h.recycle()
}

// admitAsync pairs op with a pooled handle and admits it. If the inbox
// ring is full this blocks until the working thread frees space
// (bounded-queue backpressure).
func (db *DB) admitAsync(op *core.Op) (*Handle, error) {
	h := acquireHandle()
	op.Done = h.doneFn
	if err := db.admit(op); err != nil {
		h.abandon()
		return nil, err
	}
	return h, nil
}

// PutAsync admits an insert-or-replace and returns its future.
func (db *DB) PutAsync(key uint64, value []byte) (*Handle, error) {
	return db.admitAsync(core.AcquireOp().InitInsert(key, value))
}

// GetAsync admits a point lookup and returns its future.
func (db *DB) GetAsync(key uint64) (*Handle, error) {
	return db.admitAsync(core.AcquireOp().InitSearch(key))
}

// UpdateAsync admits a replace-if-present and returns its future.
func (db *DB) UpdateAsync(key uint64, value []byte) (*Handle, error) {
	return db.admitAsync(core.AcquireOp().InitUpdate(key, value))
}

// DeleteAsync admits a delete and returns its future.
func (db *DB) DeleteAsync(key uint64) (*Handle, error) {
	return db.admitAsync(core.AcquireOp().InitDelete(key))
}

// ScanAsync admits a range scan over [lo, hi] (limit <= 0 = unlimited)
// and returns its future.
func (db *DB) ScanAsync(lo, hi uint64, limit int) (*Handle, error) {
	return db.admitAsync(core.AcquireOp().InitRange(lo, hi, limit))
}

// SyncAsync admits a sync and returns its future.
func (db *DB) SyncAsync() (*Handle, error) {
	return db.admitAsync(core.AcquireOp().InitSync())
}
