//go:build !race

package patree

// raceEnabled reports whether the race detector instruments this build;
// timing-sensitive throughput assertions skip themselves under it.
const raceEnabled = false
