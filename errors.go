package patree

import (
	"errors"

	"github.com/patree/patree/internal/core"
)

// This file is the package's whole error taxonomy. Every failure an
// operation can report — embedded or over the network — resolves to one
// of the sentinels below (possibly wrapped with context), so callers
// dispatch with errors.Is and never on message text.
//
// Stability contract: for any error returned by a Store implementation
// in this module (a *DB or a network client.Conn), errors.Is against
// these sentinels yields the same answer on both sides of the wire. The
// server maps sentinels to stable protocol status codes and the client
// maps the codes back to the same sentinels; internal/proto carries the
// mapping and a round-trip test pins it.

// ErrClosed is returned by operations on a closed Store: a DB after
// Close, or a network connection the local side closed.
var ErrClosed = errors.New("patree: closed")

// ErrBacklog is returned by TryCommit when the admission pipeline
// cannot accept the whole batch atomically — the device-side pipeline
// is full and the caller should apply backpressure (wait, or shed
// load). Over the network it is the BUSY status: the server refused
// admission without processing anything, and the caller may retry.
var ErrBacklog = core.ErrBacklog

// ErrDeviceFailed is returned by every operation once the device has
// failed unrecoverably (an I/O error that survived MaxIORetries
// retries). The DB is then in a terminal degraded state: in-flight and
// future operations drain with this error, and Close still shuts the
// working thread down cleanly. Reopening the device runs journal
// recovery, which restores every acknowledged write the device kept.
var ErrDeviceFailed = core.ErrDeviceFailed

// ErrBatchAborted is delivered to operations abandoned before
// completion because the transport carrying them failed — e.g. a
// network connection dropped with requests still in flight. The
// operations' outcomes are unknown: a write may or may not have been
// applied by the server (it is never torn — a cross-shard TryCommit
// batch still applies all-or-nothing server-side), so an idempotent
// retry on a fresh connection is the correct recovery.
var ErrBatchAborted = errors.New("patree: batch aborted")

// ErrValueTooLarge is returned by writes whose value exceeds
// MaxValueSize.
var ErrValueTooLarge = core.ErrValueTooLarge
