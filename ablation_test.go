package patree

// Ablation benchmarks for the design choices DESIGN.md §7 calls out:
// the probe batch threshold, the yield granularity, and prioritized
// execution. They are not paper figures; they quantify how sensitive the
// reproduction is to its own implementation decisions.

import (
	"testing"
	"time"

	"github.com/patree/patree/internal/core"
	"github.com/patree/patree/internal/harness"
	"github.com/patree/patree/internal/probe"
	"github.com/patree/patree/internal/sched"
	"github.com/patree/patree/internal/workload"
)

func ablationScale() harness.Scale {
	return harness.Scale{
		PreloadKeys: 50_000,
		Warmup:      20 * time.Millisecond,
		Measure:     100 * time.Millisecond,
		Concurrency: 64,
		Seed:        42,
	}
}

func ablationGen(s harness.Scale) *workload.YCSB {
	return workload.NewYCSB(workload.YCSBConfig{
		Keys: uint64(s.PreloadKeys), UpdatePercent: 10, Theta: 0.3, Seed: s.Seed})
}

// BenchmarkAblationProbeBatch sweeps the expected-available threshold
// that gates probing. Batch 1 probes per completion (more driver
// interference, lowest detection delay); large batches probe rarely
// (cheap, but completions wait).
func BenchmarkAblationProbeBatch(b *testing.B) {
	s := ablationScale()
	m, err := probe.Default()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if i > 0 {
			continue
		}
		for _, batch := range []float64{1, 2, 4, 8, 16} {
			p := sched.NewWorkload(m, nil, 20*time.Microsecond)
			p.SetBatch(batch)
			cfg := core.Config{Policy: p, Prioritized: true}
			rs := harness.RunPATree(harness.PAConfig{Scale: s, Tree: cfg, Gen: ablationGen(s)})
			b.Logf("batch=%2.0f  %7.1f Kops/s  lat=%7.1fus  CPU=%.2f  probes/s=%.0fK",
				batch, rs.Throughput/1e3, float64(rs.MeanLatency)/1e3, rs.CPU,
				float64(rs.Probes)/s.Measure.Seconds()/1e3)
		}
	}
}

// BenchmarkAblationYieldGranularity sweeps the Algorithm 2 yield quantum
// under a moderate open-loop load: small quanta track load closely, large
// quanta save more CPU but delay detection.
func BenchmarkAblationYieldGranularity(b *testing.B) {
	s := ablationScale()
	m, err := probe.Default()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if i > 0 {
			continue
		}
		for _, q := range []time.Duration{0, 10, 20, 50, 100} {
			p := sched.NewWorkload(m, nil, q*time.Microsecond)
			cfg := core.Config{Policy: p, Prioritized: true}
			rs := harness.RunPATree(harness.PAConfig{Scale: s, Tree: cfg,
				Gen: ablationGen(s), ArrivalRate: 50e3})
			b.Logf("yield=%4dus  %7.1f Kops/s  lat=%7.1fus  CPU=%.2f",
				q, rs.Throughput/1e3, float64(rs.MeanLatency)/1e3, rs.CPU)
		}
	}
}

// BenchmarkAblationConcurrency sweeps the closed-loop outstanding-op
// count: PA-Tree needs enough concurrent operations to keep the device's
// internal parallelism busy (the paper's central premise).
func BenchmarkAblationConcurrency(b *testing.B) {
	s := ablationScale()
	for i := 0; i < b.N; i++ {
		if i > 0 {
			continue
		}
		for _, conc := range []int{1, 4, 16, 64, 256} {
			sc := s
			sc.Concurrency = conc
			cfg := core.Config{Prioritized: true}
			rs := harness.RunPATree(harness.PAConfig{Scale: sc, Tree: cfg, Gen: ablationGen(sc)})
			b.Logf("concurrency=%3d  %7.1f Kops/s  outstandingIO=%.1f  lat=%.0fus",
				conc, rs.Throughput/1e3, rs.Outstanding, float64(rs.MeanLatency)/1e3)
		}
	}
}
