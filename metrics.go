package patree

import (
	"errors"
	"io"
	"time"

	"github.com/patree/patree/internal/core"
	"github.com/patree/patree/internal/metrics"
	"github.com/patree/patree/internal/trace"
)

// ErrTracingDisabled is returned by WriteTrace when the DB was opened
// without Options.Trace.
var ErrTracingDisabled = errors.New("patree: tracing disabled (set Options.Trace)")

// StageStats summarizes one pipeline stage for one operation type:
// where completed operations of that type spent their time between
// admission and completion. Conditional stages (admit-wait, latch-wait,
// io-wait) count only the operations that actually waited there.
type StageStats struct {
	Stage string // "admit-wait", "inbox", "queue-wait", "latch-wait", "io-wait", "deliver", "total"
	Op    string // "search", "range", "insert", "update", "delete", "sync", "nop"
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// CPUBreakdown attributes the working thread's accounted CPU time to
// the paper's Figure 9 categories. On the in-process device this is the
// tree's own cost-model accounting, kept live as the tree runs.
type CPUBreakdown struct {
	RealWork time.Duration // index logic: node visits, mutation, splits
	Sync     time.Duration // latching
	NVMe     time.Duration // submission + completion-queue probing
	Sched    time.Duration // ready-queue and main-loop bookkeeping
	Other    time.Duration // idle spinning and everything else
	Total    time.Duration
}

// ProbeStats reports how well the workload-aware scheduler's model
// predicted I/O completion times: each submission records a
// model-implied completion time, each detected completion is matched
// FIFO within its class, and the signed error is aggregated. A positive
// Bias means completions are detected later than predicted.
type ProbeStats struct {
	Matched uint64 // completions matched to a prediction
	Late    uint64 // detected after the predicted time
	Early   uint64 // detected at or before the predicted time
	Dropped uint64 // submissions untracked (bounded matcher was full)
	Bias    time.Duration
	AbsErrMean, AbsErrP50, AbsErrP95, AbsErrP99 time.Duration
}

// Metrics is the full observability snapshot: activity counters, the
// per-stage latency decomposition, the CPU-category breakdown and the
// probe model's prediction accuracy. Like Stats it is collected on the
// working thread, so it is a consistent view.
type Metrics struct {
	Stats
	Stages      []StageStats
	CPU         CPUBreakdown
	Probe       ProbeStats
	TraceEvents uint64 // events emitted so far (0 unless Options.Trace)
}

// Metrics snapshots the full observability state.
func (db *DB) Metrics() Metrics {
	var out Metrics
	db.onWorker(func() { out = db.metricsLocked() })
	return out
}

// metricsLocked builds the Metrics snapshot; call only from onWorker.
func (db *DB) metricsLocked() Metrics {
	m := Metrics{Stats: db.statsLocked()}

	st := db.tree.StatsSnapshot()
	if set := st.Stages; set != nil {
		for _, stage := range metrics.Stages() {
			for class := 0; class < set.Classes(); class++ {
				h := set.Histogram(stage, class)
				if h == nil || h.Count() == 0 {
					continue
				}
				m.Stages = append(m.Stages, StageStats{
					Stage: stage.String(),
					Op:    kindName(class),
					Count: h.Count(),
					Mean:  h.Mean(),
					P50:   h.Percentile(50),
					P95:   h.Percentile(95),
					P99:   h.Percentile(99),
					Max:   h.Max(),
				})
			}
		}
	}

	cpu := db.tree.CPUSnapshot()
	m.CPU = CPUBreakdown{
		RealWork: cpu.Get(metrics.CatRealWork),
		Sync:     cpu.Get(metrics.CatSync),
		NVMe:     cpu.Get(metrics.CatNVMe),
		Sched:    cpu.Get(metrics.CatSched),
		Other:    cpu.Get(metrics.CatOther),
		Total:    cpu.Total(),
	}

	if acc := db.policy.Accuracy(); acc != nil {
		e := acc.AbsErr()
		m.Probe = ProbeStats{
			Matched:    acc.Matched(),
			Late:       acc.Late(),
			Early:      acc.Early(),
			Dropped:    acc.Dropped(),
			Bias:       acc.Bias(),
			AbsErrMean: e.Mean(),
			AbsErrP50:  e.Percentile(50),
			AbsErrP95:  e.Percentile(95),
			AbsErrP99:  e.Percentile(99),
		}
	}

	m.TraceEvents = db.tracer.Emitted()
	return m
}

// kindName maps a stage-set class index back to the operation name (the
// tree uses its op kinds as stage classes).
func kindName(class int) string { return core.Kind(class).String() }

// WriteTrace exports the tracer's captured window (the most recent
// Options.TraceEvents events) as Chrome trace-event JSON, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. The snapshot is taken
// on the working thread, so it is consistent; identical workloads on
// identical clocks export byte-identical JSON. Returns
// ErrTracingDisabled when the DB was opened without Options.Trace.
func (db *DB) WriteTrace(w io.Writer) error {
	if db.tracer == nil {
		return ErrTracingDisabled
	}
	var events []trace.Event
	db.onWorker(func() { events = db.tracer.Events() })
	return db.tracer.WriteChromeJSON(w, events)
}
