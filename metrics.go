package patree

import (
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/patree/patree/internal/core"
	"github.com/patree/patree/internal/metrics"
	"github.com/patree/patree/internal/trace"
)

// ErrTracingDisabled is returned by WriteTrace when the DB was opened
// without Options.Trace.
var ErrTracingDisabled = errors.New("patree: tracing disabled (set Options.Trace)")

// StageStats summarizes one pipeline stage for one operation type:
// where completed operations of that type spent their time between
// admission and completion. Conditional stages (admit-wait, latch-wait,
// io-wait) count only the operations that actually waited there.
type StageStats struct {
	Stage string // "admit-wait", "inbox", "queue-wait", "latch-wait", "io-wait", "deliver", "total"
	Op    string // "search", "range", "insert", "update", "delete", "sync", "nop"
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// CPUBreakdown attributes the working thread's accounted CPU time to
// the paper's Figure 9 categories. On the in-process device this is the
// tree's own cost-model accounting, kept live as the tree runs.
type CPUBreakdown struct {
	RealWork time.Duration // index logic: node visits, mutation, splits
	Sync     time.Duration // latching
	NVMe     time.Duration // submission + completion-queue probing
	Sched    time.Duration // ready-queue and main-loop bookkeeping
	Other    time.Duration // idle spinning and everything else
	Total    time.Duration
}

// ProbeStats reports how well the workload-aware scheduler's model
// predicted I/O completion times: each submission records a
// model-implied completion time, each detected completion is matched
// FIFO within its class, and the signed error is aggregated. A positive
// Bias means completions are detected later than predicted.
type ProbeStats struct {
	Matched                                     uint64 // completions matched to a prediction
	Late                                        uint64 // detected after the predicted time
	Early                                       uint64 // detected at or before the predicted time
	Dropped                                     uint64 // submissions untracked (bounded matcher was full)
	Bias                                        time.Duration
	AbsErrMean, AbsErrP50, AbsErrP95, AbsErrP99 time.Duration
}

// ReaderStats reports the optimistic read path's activity: attempts,
// serves, seqlock restarts, right-link escapes, pipeline fallbacks (by
// cause) and the served-read latency histogram. All counters are zero
// unless the DB was opened with Options.ConcurrentReads.
type ReaderStats = core.ReaderStats

// Metrics is the full observability snapshot: activity counters, the
// per-stage latency decomposition, the CPU-category breakdown and the
// probe model's prediction accuracy. Like Stats it is collected on the
// working thread, so it is a consistent view. Reader is the exception:
// the optimistic read path runs on caller goroutines, so its counters
// are sampled atomically rather than via the workers.
type Metrics struct {
	Stats
	Stages      []StageStats
	CPU         CPUBreakdown
	Probe       ProbeStats
	Reader      ReaderStats
	TraceEvents uint64 // events emitted so far (0 unless Options.Trace)
}

// shardMetricsSnap is one shard's contribution to Metrics, gathered on
// that shard's working thread. Histogram state is deep-copied there:
// the live histograms keep mutating on the worker after the snapshot
// no-op completes, so cross-shard merging must never touch them.
type shardMetricsSnap struct {
	stats        Stats
	buf          bufferCounts
	stages       *metrics.StageSet
	cpu          CPUBreakdown
	probeMatched uint64
	probeLate    uint64
	probeEarly   uint64
	probeDropped uint64
	probeBias    time.Duration
	probeAbsErr  *metrics.Histogram
	traceEmitted uint64
}

// snapMetrics builds the shard's snapshot; call only on its worker.
func (s *shard) snapMetrics() shardMetricsSnap {
	var snap shardMetricsSnap
	snap.stats, snap.buf = s.statsSnapshot()

	st := s.tree.StatsSnapshot()
	if set := st.Stages; set != nil {
		snap.stages = metrics.NewStageSet(set.Classes())
		snap.stages.Merge(set)
	}

	cpu := s.tree.CPUSnapshot()
	snap.cpu = CPUBreakdown{
		RealWork: cpu.Get(metrics.CatRealWork),
		Sync:     cpu.Get(metrics.CatSync),
		NVMe:     cpu.Get(metrics.CatNVMe),
		Sched:    cpu.Get(metrics.CatSched),
		Other:    cpu.Get(metrics.CatOther),
		Total:    cpu.Total(),
	}

	if acc := s.policy.Accuracy(); acc != nil {
		snap.probeMatched = acc.Matched()
		snap.probeLate = acc.Late()
		snap.probeEarly = acc.Early()
		snap.probeDropped = acc.Dropped()
		snap.probeBias = acc.Bias()
		snap.probeAbsErr = metrics.NewHistogram()
		snap.probeAbsErr.Merge(acc.AbsErr())
	}

	snap.traceEmitted = s.tracer.Emitted()
	return snap
}

// Metrics snapshots the full observability state, merged across shards:
// counters sum, stage and probe-error histograms merge, the probe bias
// is weighted by each shard's matched completions.
func (db *DB) Metrics() Metrics {
	snaps := make([]shardMetricsSnap, len(db.shards))
	for i, s := range db.shards {
		s := s
		i := i
		db.onWorker(s, func() { snaps[i] = s.snapMetrics() })
	}

	var m Metrics
	var hits, misses uint64
	var classes int
	var biasWeighted float64
	absErr := metrics.NewHistogram()
	for _, snap := range snaps {
		m.Stats.Ops += snap.stats.Ops
		m.Stats.NumKeys += snap.stats.NumKeys
		if snap.stats.Height > m.Stats.Height {
			m.Stats.Height = snap.stats.Height
		}
		m.Stats.Probes += snap.stats.Probes
		m.Stats.ReadsIssued += snap.stats.ReadsIssued
		m.Stats.WritesIssued += snap.stats.WritesIssued
		m.Stats.AdmitWaits += snap.stats.AdmitWaits
		m.Stats.IOErrors += snap.stats.IOErrors
		m.Stats.IORetries += snap.stats.IORetries
		m.Stats.JournalAppends += snap.stats.JournalAppends
		m.Stats.Checkpoints += snap.stats.Checkpoints
		m.Stats.SpecIssued += snap.stats.SpecIssued
		m.Stats.SpecHits += snap.stats.SpecHits
		m.Stats.SpecCancelled += snap.stats.SpecCancelled
		m.Stats.SpecWasted += snap.stats.SpecWasted
		hits += snap.buf.hits
		misses += snap.buf.misses

		if snap.stages != nil && snap.stages.Classes() > classes {
			classes = snap.stages.Classes()
		}

		m.CPU.RealWork += snap.cpu.RealWork
		m.CPU.Sync += snap.cpu.Sync
		m.CPU.NVMe += snap.cpu.NVMe
		m.CPU.Sched += snap.cpu.Sched
		m.CPU.Other += snap.cpu.Other
		m.CPU.Total += snap.cpu.Total

		m.Probe.Matched += snap.probeMatched
		m.Probe.Late += snap.probeLate
		m.Probe.Early += snap.probeEarly
		m.Probe.Dropped += snap.probeDropped
		biasWeighted += float64(snap.probeBias) * float64(snap.probeMatched)
		if snap.probeAbsErr != nil {
			absErr.Merge(snap.probeAbsErr)
		}

		m.TraceEvents += snap.traceEmitted
	}
	if hits+misses > 0 {
		m.Stats.BufferHit = float64(hits) / float64(hits+misses)
	}
	m.Stats.Shards = len(db.shards)
	m.Stats.Devices = db.devices
	m.Stats.ThrottleWaits = db.throttleWaits.Load()
	if m.Probe.Matched > 0 {
		m.Probe.Bias = time.Duration(biasWeighted / float64(m.Probe.Matched))
	}
	m.Probe.AbsErrMean = absErr.Mean()
	m.Probe.AbsErrP50 = absErr.Percentile(50)
	m.Probe.AbsErrP95 = absErr.Percentile(95)
	m.Probe.AbsErrP99 = absErr.Percentile(99)

	for _, s := range db.shards {
		rs := s.tree.ReaderSnapshot()
		m.Reader.Merge(&rs)
	}

	if classes > 0 {
		merged := metrics.NewStageSet(classes)
		for _, snap := range snaps {
			merged.Merge(snap.stages)
		}
		for _, stage := range metrics.Stages() {
			for class := 0; class < merged.Classes(); class++ {
				h := merged.Histogram(stage, class)
				if h == nil || h.Count() == 0 {
					continue
				}
				m.Stages = append(m.Stages, StageStats{
					Stage: stage.String(),
					Op:    kindName(class),
					Count: h.Count(),
					Mean:  h.Mean(),
					P50:   h.Percentile(50),
					P95:   h.Percentile(95),
					P99:   h.Percentile(99),
					Max:   h.Max(),
				})
			}
		}
	}
	return m
}

// kindName maps a stage-set class index back to the operation name (the
// tree uses its op kinds as stage classes).
func kindName(class int) string { return core.Kind(class).String() }

// WriteTrace exports the tracer's captured window (the most recent
// Options.TraceEvents events per shard) as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Each
// shard's snapshot is taken on its working thread, so it is consistent;
// identical workloads on identical clocks export byte-identical JSON.
// On a sharded DB each shard appears as its own process
// ("patree-shard0", ...) with the shard's thread lanes underneath; a
// single-worker DB keeps the original single-process output. Returns
// ErrTracingDisabled when the DB was opened without Options.Trace.
func (db *DB) WriteTrace(w io.Writer) error {
	if db.shards[0].tracer == nil {
		return ErrTracingDisabled
	}
	if len(db.shards) == 1 {
		s := db.shards[0]
		var events []trace.Event
		db.onWorker(s, func() { events = s.tracer.Events() })
		return s.tracer.WriteChromeJSON(w, events)
	}
	procs := make([]trace.Process, len(db.shards))
	for i, s := range db.shards {
		s := s
		i := i
		db.onWorker(s, func() {
			procs[i] = trace.Process{
				Name:   fmt.Sprintf("patree-shard%d", i),
				Events: s.tracer.Events(),
			}
		})
	}
	return db.shards[0].tracer.WriteChromeJSONProcs(w, procs)
}

// TraceNow reads the engine's trace clock (nanoseconds, monotonic). A
// serving tier running in the same process samples this clock for its
// own spans so a merged client/server/engine export shares one time
// axis. Usable whether or not tracing is on.
func (db *DB) TraceNow() int64 { return db.shards[0].tree.NowNanos() }

// TraceProcesses snapshots every shard's trace window as
// trace.Process entries ("patree-shard0", ...) carrying the engine's
// own code/class name tables, ready to merge with other emitters'
// processes in trace.WriteChromeJSONFlows. Each snapshot is taken on
// its shard's working thread, so it is consistent. Returns nil when the
// DB was opened without Options.Trace.
func (db *DB) TraceProcesses() []trace.Process {
	if db.shards[0].tracer == nil {
		return nil
	}
	codes, classes := core.TraceNames()
	procs := make([]trace.Process, len(db.shards))
	for i, s := range db.shards {
		s := s
		i := i
		db.onWorker(s, func() {
			procs[i] = trace.Process{
				Name:       fmt.Sprintf("patree-shard%d", i),
				Events:     s.tracer.Events(),
				CodeNames:  codes,
				ClassNames: classes,
			}
		})
	}
	return procs
}
