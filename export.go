package patree

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// MetricsHandler returns an http.Handler that serves the DB's current
// Metrics in the Prometheus text exposition format (version 0.0.4), for
// mounting wherever the embedder serves diagnostics:
//
//	http.Handle("/metrics", db.MetricsHandler())
//
// Each request takes a fresh on-worker snapshot, so scraping a busy
// tree costs one pipeline no-op per scrape.
func (db *DB) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writePrometheus(w, db.Metrics())
	})
}

// PublishExpvar publishes the DB's Metrics under name in the process
// expvar registry (served at /debug/vars by net/http/pprof-style
// setups). Each read takes a fresh snapshot. Like expvar.Publish it
// panics if name is already registered, so use distinct names for
// multiple DBs.
func (db *DB) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any { return db.Metrics() }))
}

// seconds renders a duration as a Prometheus-style float seconds value.
func seconds(d time.Duration) string {
	return fmt.Sprintf("%g", d.Seconds())
}

func writePrometheus(w io.Writer, m Metrics) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	p("# HELP patree_ops_total Completed index operations.\n")
	p("# TYPE patree_ops_total counter\n")
	p("patree_ops_total %d\n", m.Ops)
	p("# HELP patree_keys Number of keys in the tree.\n")
	p("# TYPE patree_keys gauge\n")
	p("patree_keys %d\n", m.NumKeys)
	p("# HELP patree_height Tree height (1 = single leaf).\n")
	p("# TYPE patree_height gauge\n")
	p("patree_height %d\n", m.Height)
	p("# HELP patree_probes_total Completion-queue probes.\n")
	p("# TYPE patree_probes_total counter\n")
	p("patree_probes_total %d\n", m.Probes)
	p("# HELP patree_reads_issued_total NVMe read commands issued.\n")
	p("# TYPE patree_reads_issued_total counter\n")
	p("patree_reads_issued_total %d\n", m.ReadsIssued)
	p("# HELP patree_writes_issued_total NVMe write commands issued.\n")
	p("# TYPE patree_writes_issued_total counter\n")
	p("patree_writes_issued_total %d\n", m.WritesIssued)
	p("# HELP patree_admit_waits_total Admissions that hit a full inbox ring.\n")
	p("# TYPE patree_admit_waits_total counter\n")
	p("patree_admit_waits_total %d\n", m.AdmitWaits)
	p("# HELP patree_buffer_hit_ratio Page-buffer hit ratio.\n")
	p("# TYPE patree_buffer_hit_ratio gauge\n")
	p("patree_buffer_hit_ratio %g\n", m.BufferHit)
	p("# HELP patree_shards Number of shard workers serving the keyspace.\n")
	p("# TYPE patree_shards gauge\n")
	p("patree_shards %d\n", m.Shards)
	p("# HELP patree_devices Number of block devices the shards are spread over.\n")
	p("# TYPE patree_devices gauge\n")
	p("patree_devices %d\n", m.Devices)
	p("# HELP patree_throttle_waits_total Admissions held back by the hot-shard governor.\n")
	p("# TYPE patree_throttle_waits_total counter\n")
	p("patree_throttle_waits_total %d\n", m.ThrottleWaits)

	if m.SpecIssued > 0 {
		p("# HELP patree_spec_reads_total Speculative prefetch reads (Options.Pipelined) by outcome.\n")
		p("# TYPE patree_spec_reads_total counter\n")
		p("patree_spec_reads_total{outcome=\"issued\"} %d\n", m.SpecIssued)
		p("patree_spec_reads_total{outcome=\"hit\"} %d\n", m.SpecHits)
		p("patree_spec_reads_total{outcome=\"cancelled\"} %d\n", m.SpecCancelled)
		p("patree_spec_reads_total{outcome=\"wasted\"} %d\n", m.SpecWasted)
	}

	p("# HELP patree_stage_seconds Per-stage operation latency decomposition.\n")
	p("# TYPE patree_stage_seconds summary\n")
	for _, s := range m.Stages {
		l := fmt.Sprintf("stage=%q,op=%q", s.Stage, s.Op)
		p("patree_stage_seconds{%s,quantile=\"0.5\"} %s\n", l, seconds(s.P50))
		p("patree_stage_seconds{%s,quantile=\"0.95\"} %s\n", l, seconds(s.P95))
		p("patree_stage_seconds{%s,quantile=\"0.99\"} %s\n", l, seconds(s.P99))
		p("patree_stage_seconds_sum{%s} %s\n", l, seconds(time.Duration(s.Count)*s.Mean))
		p("patree_stage_seconds_count{%s} %d\n", l, s.Count)
	}

	p("# HELP patree_cpu_seconds_total Accounted working-thread CPU by Figure 9 category.\n")
	p("# TYPE patree_cpu_seconds_total counter\n")
	for _, c := range []struct {
		name string
		d    time.Duration
	}{
		{"real-work", m.CPU.RealWork}, {"sync", m.CPU.Sync}, {"nvme", m.CPU.NVMe},
		{"sched", m.CPU.Sched}, {"other", m.CPU.Other},
	} {
		p("patree_cpu_seconds_total{category=%q} %s\n", c.name, seconds(c.d))
	}

	p("# HELP patree_probe_predictions_total Completion predictions by outcome.\n")
	p("# TYPE patree_probe_predictions_total counter\n")
	p("patree_probe_predictions_total{outcome=\"late\"} %d\n", m.Probe.Late)
	p("patree_probe_predictions_total{outcome=\"early\"} %d\n", m.Probe.Early)
	p("patree_probe_predictions_total{outcome=\"dropped\"} %d\n", m.Probe.Dropped)
	p("# HELP patree_probe_bias_seconds Mean signed completion-prediction error.\n")
	p("# TYPE patree_probe_bias_seconds gauge\n")
	p("patree_probe_bias_seconds %s\n", seconds(m.Probe.Bias))
	p("# HELP patree_probe_abs_err_seconds Absolute completion-prediction error.\n")
	p("# TYPE patree_probe_abs_err_seconds summary\n")
	p("patree_probe_abs_err_seconds{quantile=\"0.5\"} %s\n", seconds(m.Probe.AbsErrP50))
	p("patree_probe_abs_err_seconds{quantile=\"0.95\"} %s\n", seconds(m.Probe.AbsErrP95))
	p("patree_probe_abs_err_seconds{quantile=\"0.99\"} %s\n", seconds(m.Probe.AbsErrP99))
	p("patree_probe_abs_err_seconds_sum %s\n", seconds(time.Duration(m.Probe.Matched)*m.Probe.AbsErrMean))
	p("patree_probe_abs_err_seconds_count %d\n", m.Probe.Matched)

	if m.Reader.Attempts+m.Reader.ScanAttempts > 0 {
		p("# HELP patree_reader_ops_total Optimistic (ConcurrentReads) read attempts by outcome.\n")
		p("# TYPE patree_reader_ops_total counter\n")
		p("patree_reader_ops_total{op=\"get\",outcome=\"served\"} %d\n", m.Reader.Served)
		p("patree_reader_ops_total{op=\"get\",outcome=\"fallback-pending\"} %d\n", m.Reader.FallbackPending)
		p("patree_reader_ops_total{op=\"get\",outcome=\"fallback-miss\"} %d\n", m.Reader.FallbackMiss)
		p("patree_reader_ops_total{op=\"get\",outcome=\"fallback-restarts\"} %d\n", m.Reader.FallbackRestarts)
		p("patree_reader_ops_total{op=\"scan\",outcome=\"served\"} %d\n", m.Reader.ScanServed)
		p("patree_reader_ops_total{op=\"scan\",outcome=\"fallback\"} %d\n", m.Reader.ScanAttempts-m.Reader.ScanServed)
		p("# HELP patree_reader_restarts_total Optimistic-read descent restarts (version changed underfoot).\n")
		p("# TYPE patree_reader_restarts_total counter\n")
		p("patree_reader_restarts_total %d\n", m.Reader.Restarts)
		p("# HELP patree_reader_escapes_total Right-link hops taken to escape concurrent splits.\n")
		p("# TYPE patree_reader_escapes_total counter\n")
		p("patree_reader_escapes_total %d\n", m.Reader.Escapes)
		p("# HELP patree_reader_latency_seconds Latency of served optimistic point reads.\n")
		p("# TYPE patree_reader_latency_seconds summary\n")
		p("patree_reader_latency_seconds{quantile=\"0.5\"} %s\n", seconds(m.Reader.Lat.Percentile(50)))
		p("patree_reader_latency_seconds{quantile=\"0.95\"} %s\n", seconds(m.Reader.Lat.Percentile(95)))
		p("patree_reader_latency_seconds{quantile=\"0.99\"} %s\n", seconds(m.Reader.Lat.Percentile(99)))
		p("patree_reader_latency_seconds_sum %s\n", seconds(m.Reader.Lat.Sum))
		p("patree_reader_latency_seconds_count %d\n", m.Reader.Lat.Count)
	}

	p("# HELP patree_trace_events_total Lifecycle trace events emitted.\n")
	p("# TYPE patree_trace_events_total counter\n")
	p("patree_trace_events_total %d\n", m.TraceEvents)
}

// FormatMetrics renders a human-readable multi-line summary of m, the
// text shown by pacli's stats/metrics commands.
func FormatMetrics(m Metrics) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ops=%d keys=%d height=%d probes=%d reads=%d writes=%d admitWaits=%d bufferHit=%.2f%%\n",
		m.Ops, m.NumKeys, m.Height, m.Probes, m.ReadsIssued, m.WritesIssued, m.AdmitWaits, 100*m.BufferHit)
	if m.Shards > 1 {
		fmt.Fprintf(&b, "shards: %d devices: %d", m.Shards, m.Devices)
		if m.ThrottleWaits > 0 {
			fmt.Fprintf(&b, " throttleWaits: %d", m.ThrottleWaits)
		}
		b.WriteString("\n")
	}
	if m.SpecIssued > 0 {
		fmt.Fprintf(&b, "speculation: issued=%d hits=%d cancelled=%d wasted=%d\n",
			m.SpecIssued, m.SpecHits, m.SpecCancelled, m.SpecWasted)
	}
	if len(m.Stages) > 0 {
		fmt.Fprintf(&b, "%-11s %-7s %9s %11s %11s %11s %11s %11s\n",
			"stage", "op", "count", "mean", "p50", "p95", "p99", "max")
		for _, s := range m.Stages {
			fmt.Fprintf(&b, "%-11s %-7s %9d %11v %11v %11v %11v %11v\n",
				s.Stage, s.Op, s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
		}
	}
	tot := m.CPU.Total
	if tot > 0 {
		fmt.Fprintf(&b, "cpu: real-work=%v (%.1f%%) sync=%v (%.1f%%) nvme=%v (%.1f%%) sched=%v (%.1f%%) other=%v (%.1f%%)\n",
			m.CPU.RealWork, pct(m.CPU.RealWork, tot),
			m.CPU.Sync, pct(m.CPU.Sync, tot),
			m.CPU.NVMe, pct(m.CPU.NVMe, tot),
			m.CPU.Sched, pct(m.CPU.Sched, tot),
			m.CPU.Other, pct(m.CPU.Other, tot))
	}
	if m.Probe.Matched > 0 {
		fmt.Fprintf(&b, "probe model: matched=%d late=%d early=%d dropped=%d bias=%v |err| p50=%v p95=%v p99=%v\n",
			m.Probe.Matched, m.Probe.Late, m.Probe.Early, m.Probe.Dropped,
			m.Probe.Bias, m.Probe.AbsErrP50, m.Probe.AbsErrP95, m.Probe.AbsErrP99)
	}
	if m.Reader.Attempts > 0 || m.Reader.ScanAttempts > 0 {
		fmt.Fprintf(&b, "reader: get served=%d/%d scan served=%d/%d restarts=%d escapes=%d fallback pending=%d miss=%d restarts=%d lat mean=%v p99=%v\n",
			m.Reader.Served, m.Reader.Attempts, m.Reader.ScanServed, m.Reader.ScanAttempts,
			m.Reader.Restarts, m.Reader.Escapes,
			m.Reader.FallbackPending, m.Reader.FallbackMiss, m.Reader.FallbackRestarts,
			m.Reader.Lat.Mean(), m.Reader.Lat.Percentile(99))
	}
	if m.TraceEvents > 0 {
		fmt.Fprintf(&b, "trace: %d events emitted\n", m.TraceEvents)
	}
	return b.String()
}

func pct(part, total time.Duration) float64 {
	return 100 * float64(part) / float64(total)
}
