package patree

import (
	"github.com/patree/patree/internal/core"
	"github.com/patree/patree/internal/sim"
)

// This file routes eligible reads around the admission inbox when the DB
// was opened with Options.ConcurrentReads: Get/Scan (and, through the
// shared helpers, their Async and Context variants) first attempt the
// optimistic B-link descent over the shard's published-page table from
// the calling goroutine. The fast path answers only when it can prove the
// answer current — otherwise (key has a pending write, page not
// published, too much churn) the read falls back to the pipeline, which
// is always correct. See internal/core/reader.go and DESIGN.md §15.

// tryConcGet attempts the optimistic point lookup. ok=false means the
// caller must take the pipeline. The closed check runs under the shared
// admission lock so a concurrent Close keeps its guarantee: reads
// observing closed fail with ErrClosed instead of serving from a frozen
// table.
func (db *DB) tryConcGet(key uint64) (core.Result, bool) {
	s := db.shardFor(key)
	db.mu.RLock()
	if db.closed {
		db.mu.RUnlock()
		return core.Result{}, false
	}
	v, found, served := s.tree.ConcurrentGet(key)
	db.mu.RUnlock()
	if !served {
		return core.Result{}, false
	}
	now := sim.Time(s.tree.NowNanos())
	return core.Result{Found: found, Value: v, Admitted: now, Completed: now}, true
}

// tryConcScan attempts the optimistic scan. Across shards every shard
// must serve for the fast path to win — a partial fan-out falls back
// wholesale so the merged result never mixes fast-path and pipeline
// snapshots of one request.
func (db *DB) tryConcScan(lo, hi uint64, limit int) (core.Result, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return core.Result{}, false
	}
	if len(db.shards) == 1 {
		pairs, served := db.shards[0].tree.ConcurrentScan(lo, hi, limit)
		if !served {
			return core.Result{}, false
		}
		now := sim.Time(db.shards[0].tree.NowNanos())
		return core.Result{Pairs: pairs, Admitted: now, Completed: now}, true
	}
	rs := make([]core.Result, len(db.shards))
	for i, s := range db.shards {
		pairs, served := s.tree.ConcurrentScan(lo, hi, limit)
		if !served {
			return core.Result{}, false
		}
		now := sim.Time(s.tree.NowNanos())
		rs[i] = core.Result{Pairs: pairs, Admitted: now, Completed: now}
	}
	return mergeScan(rs, limit), true
}
