package patree

import (
	"fmt"
	"sync"

	"github.com/patree/patree/internal/core"
)

// Batch stages many heterogeneous operations and admits them in one
// admission transaction, so a single caller goroutine can put the
// paper's queue depth in flight with one call instead of one ring
// hand-off (and one potential wakeup) per operation. The staged
// operations complete as a group: Wait returns once every one of them
// has finished.
//
// Usage: stage with Put/Get/... (each returns the operation's index),
// Commit (or TryCommit), Wait, read results by index, then Release. A
// released Batch must not be reused; call NewBatch again — it is
// pooled, so the steady state allocates nothing.
//
// A Batch is backend-agnostic: DB.NewBatch binds it to the embedded
// engine's admission rings, NewRemoteBatch to a BatchCommitter (the
// network client). Staging records operations in a neutral form; the
// backend materializes them at commit time.
//
// Over a sharded DB the batch splits into per-shard sub-batches at
// commit: each shard receives its members as one contiguous ring
// transaction in staging order. Commit blocks per shard as needed;
// TryCommit reserves room on every shard before publishing anywhere, so
// it remains all-or-nothing — ErrBacklog means no shard admitted
// anything and the batch stays staged for a retry. Scans and syncs
// staged on a sharded batch fan out to every shard and their index
// reports the merged result.
//
// A Batch is not safe for concurrent use by multiple goroutines.
type Batch struct {
	db        *DB            // embedded backend (nil for remote batches)
	committer BatchCommitter // remote backend (nil for DB batches)
	// staged are the logical operations in staging order; handles[i] is
	// operation i's future.
	staged    []BatchOp
	handles   []*Handle
	committed bool
	// ops/shardIdx are the embedded backend's scratch: the physical
	// core operations materialized at commit (a logical scan/sync over N
	// shards becomes N physical ops behind one handle). Kept on the
	// batch so pooled reuse re-admits without allocating.
	ops      []*core.Op
	shardIdx []int
}

var batchPool = sync.Pool{New: func() any { return new(Batch) }}

// NewBatch returns an empty batch bound to db.
func (db *DB) NewBatch() *Batch {
	b := batchPool.Get().(*Batch)
	b.db = db
	b.committed = false
	return b
}

// stage records one logical operation and returns its index.
func (b *Batch) stage(op BatchOp) int {
	if b.committed {
		panic(fmt.Sprintf("patree: Batch.%s staged after Commit", op.Kind))
	}
	b.staged = append(b.staged, op)
	b.handles = append(b.handles, acquireHandle())
	return len(b.handles) - 1
}

// Put stages an insert-or-replace and returns its index. The value must
// not be mutated until the batch is committed and operation's result
// delivered.
func (b *Batch) Put(key uint64, value []byte) int {
	return b.stage(BatchOp{Kind: OpPut, Key: key, Value: value})
}

// Get stages a point lookup and returns its index.
func (b *Batch) Get(key uint64) int {
	return b.stage(BatchOp{Kind: OpGet, Key: key})
}

// Update stages a replace-if-present and returns its index.
func (b *Batch) Update(key uint64, value []byte) int {
	return b.stage(BatchOp{Kind: OpUpdate, Key: key, Value: value})
}

// Delete stages a delete and returns its index.
func (b *Batch) Delete(key uint64) int {
	return b.stage(BatchOp{Kind: OpDelete, Key: key})
}

// Scan stages a range scan over [lo, hi] (limit <= 0 = unlimited) and
// returns its index.
func (b *Batch) Scan(lo, hi uint64, limit int) int {
	return b.stage(BatchOp{Kind: OpScan, Key: lo, End: hi, Limit: limit})
}

// Sync stages a sync (of every shard) and returns its index.
func (b *Batch) Sync() int {
	return b.stage(BatchOp{Kind: OpSync})
}

// Len returns the number of staged (logical) operations.
func (b *Batch) Len() int { return len(b.handles) }

// SetSpan attaches a trace span id to staged operation i (0 clears it).
// The backend propagates it to the engine, which emits a link event
// tying its own operation record to the span — the hook a serving tier
// uses to stitch client, server and per-shard traces into one timeline.
// Must be called between staging and Commit.
func (b *Batch) SetSpan(i int, span uint64) {
	if b.committed {
		panic("patree: Batch.SetSpan after Commit")
	}
	if i < 0 || i >= len(b.staged) {
		panic(fmt.Sprintf("patree: Batch.SetSpan(%d) out of range [0,%d)", i, len(b.staged)))
	}
	b.staged[i].Span = span
}

// materialize builds the physical core operations for the embedded
// backend: one op per point operation, one op per shard behind a fanAgg
// for scans and syncs when sharded. The results land in b.ops and
// b.shardIdx (scratch, reused across pooled lifetimes).
func (b *Batch) materialize() {
	shards := len(b.db.shards)
	for i, so := range b.staged {
		h := b.handles[i]
		start := len(b.ops)
		switch so.Kind {
		case OpPut:
			b.addOp(core.AcquireOp().InitInsert(so.Key, so.Value), h, so.Key, shards)
		case OpGet:
			b.addOp(core.AcquireOp().InitSearch(so.Key), h, so.Key, shards)
		case OpUpdate:
			b.addOp(core.AcquireOp().InitUpdate(so.Key, so.Value), h, so.Key, shards)
		case OpDelete:
			b.addOp(core.AcquireOp().InitDelete(so.Key), h, so.Key, shards)
		case OpScan:
			if shards == 1 {
				op := core.AcquireOp().InitRange(so.Key, so.End, so.Limit)
				op.Done = h.doneFn
				b.ops = append(b.ops, op)
				b.shardIdx = append(b.shardIdx, 0)
			} else {
				lo, hi, limit := so.Key, so.End, so.Limit
				b.addFanned(h, shards,
					func() *core.Op { return core.AcquireOp().InitRange(lo, hi, limit) },
					func(rs []core.Result) core.Result { return mergeScan(rs, limit) })
			}
		case OpSync:
			if shards == 1 {
				op := core.AcquireOp().InitSync()
				op.Done = h.doneFn
				b.ops = append(b.ops, op)
				b.shardIdx = append(b.shardIdx, 0)
			} else {
				b.addFanned(h, shards,
					func() *core.Op { return core.AcquireOp().InitSync() },
					mergeFirstErr)
			}
		default:
			panic(fmt.Sprintf("patree: Batch staged invalid op kind %d", so.Kind))
		}
		if so.Span != 0 {
			// Every physical op materialized for this staged entry (one, or
			// one per shard for fanned scans/syncs) carries its span.
			for _, op := range b.ops[start:] {
				op.Span = so.Span
			}
		}
	}
}

// addOp appends one single-shard physical op routed by key.
func (b *Batch) addOp(op *core.Op, h *Handle, key uint64, shards int) {
	op.Done = h.doneFn
	si := 0
	if shards > 1 {
		si = core.ShardOf(key, shards)
	}
	b.ops = append(b.ops, op)
	b.shardIdx = append(b.shardIdx, si)
}

// addFanned appends one physical op per shard, aggregated behind h.
func (b *Batch) addFanned(h *Handle, shards int, mk func() *core.Op, merge func([]core.Result) core.Result) {
	agg := &fanAgg{h: h, res: make([]core.Result, shards), merge: merge, deferred: b.db.deferMerge}
	agg.remaining.Store(int32(shards))
	for i := 0; i < shards; i++ {
		op := mk()
		op.Done = agg.done(i)
		b.ops = append(b.ops, op)
		b.shardIdx = append(b.shardIdx, i)
	}
}

// dropOps releases materialized-but-unadmitted physical ops (a commit
// attempt that failed); the staged ops and handles remain intact for a
// retry.
func (b *Batch) dropOps() {
	for i, o := range b.ops {
		o.Release()
		b.ops[i] = nil
	}
	b.ops = b.ops[:0]
	b.shardIdx = b.shardIdx[:0]
}

// perShard splits the materialized physical ops by owning shard,
// preserving staging order within each shard.
func (b *Batch) perShard() [][]*core.Op {
	groups := make([][]*core.Op, len(b.db.shards))
	for i, op := range b.ops {
		si := b.shardIdx[i]
		groups[si] = append(groups[si], op)
	}
	return groups
}

// Commit admits every staged operation in order as one transaction per
// shard's admission ring. If a ring is full it blocks until that
// working thread frees space (backpressure; a remote batch retries
// transparently instead of blocking — see the client package). Commit
// may be called once; after it the batch only serves Wait, the
// accessors and Release.
func (b *Batch) Commit() error {
	if b.committed {
		panic("patree: Batch.Commit called twice")
	}
	if len(b.staged) == 0 {
		b.committed = true
		return nil
	}
	if b.committer != nil {
		return b.commitRemote(false)
	}
	db := b.db
	b.materialize()
	// Hot-shard weighting holds the commit back before the admission lock
	// is taken (a throttled producer must never delay Close).
	if db.gov != nil {
		if len(db.shards) == 1 {
			db.throttle(db.shards[0])
		} else {
			for si, ops := range b.perShard() {
				if len(ops) > 0 {
					db.throttle(db.shards[si])
				}
			}
		}
	}
	db.mu.RLock()
	if db.closed {
		db.mu.RUnlock()
		b.dropOps()
		return ErrClosed
	}
	if len(db.shards) == 1 {
		db.shards[0].tree.AdmitBatch(b.ops)
	} else {
		for si, ops := range b.perShard() {
			if len(ops) > 0 {
				db.shards[si].tree.AdmitBatch(ops)
			}
		}
	}
	db.mu.RUnlock()
	b.finishCommit()
	return nil
}

// TryCommit is Commit without blocking: if the backend cannot accept
// the whole batch as one transaction right now it returns ErrBacklog
// and admits nothing anywhere — over a sharded DB, room is reserved on
// every shard before anything is published, and the reservations of the
// shards that had space are aborted when a later one is full. The batch
// stays staged and may be retried.
func (b *Batch) TryCommit() error {
	if b.committed {
		panic("patree: Batch.TryCommit after Commit")
	}
	if len(b.staged) == 0 {
		b.committed = true
		return nil
	}
	if b.committer != nil {
		return b.commitRemote(true)
	}
	db := b.db
	b.materialize()
	// A shard at its admission window refuses the whole batch up front —
	// same all-or-nothing contract as a full ring, reported as ErrBacklog.
	if db.gov != nil {
		for si, ops := range b.perShard() {
			if len(ops) > 0 && db.throttledNow(db.shards[si]) {
				b.dropOps()
				return ErrBacklog
			}
		}
	}
	db.mu.RLock()
	if db.closed {
		db.mu.RUnlock()
		b.dropOps()
		return ErrClosed
	}
	if len(db.shards) == 1 {
		err := db.shards[0].tree.TryAdmitBatch(b.ops)
		db.mu.RUnlock()
		if err != nil {
			b.dropOps()
			return mapErr(err)
		}
		b.finishCommit()
		return nil
	}
	groups := b.perShard()
	reservations := make([]core.Reservation, len(groups))
	for si, ops := range groups {
		r, err := db.shards[si].tree.TryReserve(len(ops))
		if err != nil {
			for _, prev := range reservations[:si] {
				prev.Abort()
			}
			db.mu.RUnlock()
			b.dropOps()
			return mapErr(err)
		}
		reservations[si] = r
	}
	for si, ops := range groups {
		reservations[si].Publish(ops)
	}
	db.mu.RUnlock()
	b.finishCommit()
	return nil
}

// commitRemote delegates admission to the BatchCommitter. On error the
// batch stays staged (the committer resolved nothing); on success the
// committer owns delivery of every result.
func (b *Batch) commitRemote(try bool) error {
	resolve := make([]func(Result), len(b.handles))
	for i, h := range b.handles {
		resolve[i] = h.remoteResolve
	}
	if err := b.committer.CommitStaged(b.staged, resolve, try); err != nil {
		return err
	}
	b.finishCommit()
	return nil
}

// finishCommit drops the admitted ops: they are owned by the backend
// now and their results are delivered through the handles, so the batch
// must not keep references past this point.
func (b *Batch) finishCommit() {
	b.committed = true
	for i := range b.ops {
		b.ops[i] = nil
	}
	b.ops = b.ops[:0]
	b.shardIdx = b.shardIdx[:0]
	for i := range b.staged {
		b.staged[i] = BatchOp{}
	}
	b.staged = b.staged[:0]
}

// Wait blocks until every committed operation has completed and returns
// the first error among them in staging order (nil if all succeeded).
func (b *Batch) Wait() error {
	if !b.committed {
		panic("patree: Batch.Wait before Commit")
	}
	var first error
	for _, h := range b.handles {
		if err := h.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// handleAt guards the accessors: reading a result slot before Commit
// would block forever on a completion that can never be delivered, and
// an out-of-range index (including any index after Release) would read
// another operation's — or a recycled — slot. Both misuses fail loudly
// instead.
func (b *Batch) handleAt(what string, i int) *Handle {
	if i < 0 || i >= len(b.handles) {
		panic(fmt.Sprintf("patree: Batch.%s(%d) out of range [0,%d) — staged indexes are only valid between Commit and Release", what, i, len(b.handles)))
	}
	if !b.committed {
		panic(fmt.Sprintf("patree: Batch.%s(%d) before Commit — results exist only after the batch is committed", what, i))
	}
	return b.handles[i]
}

// Err waits for operation i and returns its error.
func (b *Batch) Err(i int) error { return b.handleAt("Err", i).Err() }

// Found waits for operation i and reports whether its key existed.
func (b *Batch) Found(i int) bool { return b.handleAt("Found", i).Found() }

// Value waits for operation i and returns its point-lookup value.
func (b *Batch) Value(i int) []byte { return b.handleAt("Value", i).Value() }

// Pairs waits for operation i and returns its range-scan results.
func (b *Batch) Pairs(i int) []KV { return b.handleAt("Pairs", i).Pairs() }

// Release waits for any committed operations, then returns the batch,
// its handles and any never-committed staged operations to their pools.
// Result slices previously returned by the accessors stay valid.
func (b *Batch) Release() {
	// A remote TryCommit that failed may have materialized nothing; an
	// embedded one released its physical ops already. Staged entries that
	// never committed are simply dropped — nothing is in flight.
	b.dropOps()
	for i := range b.staged {
		b.staged[i] = BatchOp{}
	}
	b.staged = b.staged[:0]
	for i, h := range b.handles {
		if b.committed {
			h.Release()
		} else {
			h.abandon()
		}
		b.handles[i] = nil
	}
	b.handles = b.handles[:0]
	b.db = nil
	b.committer = nil
	b.committed = false
	batchPool.Put(b)
}
