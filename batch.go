package patree

import (
	"sync"

	"github.com/patree/patree/internal/core"
)

// Batch stages many heterogeneous operations and admits them in one
// admission-ring transaction, so a single caller goroutine can put the
// paper's queue depth in flight with one call instead of one ring
// hand-off (and one potential wakeup) per operation. The staged
// operations complete as a group: Wait returns once every one of them
// has finished.
//
// Usage: stage with Put/Get/... (each returns the operation's index),
// Commit (or TryCommit), Wait, read results by index, then Release. A
// released Batch must not be reused; call DB.NewBatch again — it is
// pooled, so the steady state allocates nothing.
//
// A Batch is not safe for concurrent use by multiple goroutines.
type Batch struct {
	db        *DB
	ops       []*core.Op
	handles   []*Handle
	committed bool
}

var batchPool = sync.Pool{New: func() any { return new(Batch) }}

// NewBatch returns an empty batch bound to db.
func (db *DB) NewBatch() *Batch {
	b := batchPool.Get().(*Batch)
	b.db = db
	b.committed = false
	return b
}

// add stages one operation and returns its index.
func (b *Batch) add(op *core.Op) int {
	h := acquireHandle()
	op.Done = h.doneFn
	b.ops = append(b.ops, op)
	b.handles = append(b.handles, h)
	return len(b.handles) - 1
}

// Put stages an insert-or-replace and returns its index.
func (b *Batch) Put(key uint64, value []byte) int {
	return b.add(core.AcquireOp().InitInsert(key, value))
}

// Get stages a point lookup and returns its index.
func (b *Batch) Get(key uint64) int {
	return b.add(core.AcquireOp().InitSearch(key))
}

// Update stages a replace-if-present and returns its index.
func (b *Batch) Update(key uint64, value []byte) int {
	return b.add(core.AcquireOp().InitUpdate(key, value))
}

// Delete stages a delete and returns its index.
func (b *Batch) Delete(key uint64) int {
	return b.add(core.AcquireOp().InitDelete(key))
}

// Scan stages a range scan over [lo, hi] (limit <= 0 = unlimited) and
// returns its index.
func (b *Batch) Scan(lo, hi uint64, limit int) int {
	return b.add(core.AcquireOp().InitRange(lo, hi, limit))
}

// Sync stages a sync and returns its index.
func (b *Batch) Sync() int {
	return b.add(core.AcquireOp().InitSync())
}

// Len returns the number of staged operations.
func (b *Batch) Len() int { return len(b.handles) }

// Commit admits every staged operation in order as one transaction on
// the admission ring. If the ring is full it blocks until the working
// thread frees space (backpressure). Commit may be called once; after it
// the batch only serves Wait, the accessors and Release.
func (b *Batch) Commit() error {
	if b.committed {
		panic("patree: Batch.Commit called twice")
	}
	if len(b.ops) == 0 {
		b.committed = true
		return nil
	}
	b.db.mu.RLock()
	if b.db.closed {
		b.db.mu.RUnlock()
		return ErrClosed
	}
	b.db.tree.AdmitBatch(b.ops)
	b.db.mu.RUnlock()
	b.finishCommit()
	return nil
}

// TryCommit is Commit without blocking: if the admission ring cannot
// accept the whole batch as one contiguous transaction right now it
// returns ErrBacklog and admits nothing — the batch stays staged and may
// be retried.
func (b *Batch) TryCommit() error {
	if b.committed {
		panic("patree: Batch.TryCommit after Commit")
	}
	if len(b.ops) == 0 {
		b.committed = true
		return nil
	}
	b.db.mu.RLock()
	if b.db.closed {
		b.db.mu.RUnlock()
		return ErrClosed
	}
	err := b.db.tree.TryAdmitBatch(b.ops)
	b.db.mu.RUnlock()
	if err != nil {
		return mapErr(err)
	}
	b.finishCommit()
	return nil
}

// finishCommit drops the admitted ops: they are owned by the tree now
// and will be released by their completions, so the batch must not keep
// references past this point.
func (b *Batch) finishCommit() {
	b.committed = true
	for i := range b.ops {
		b.ops[i] = nil
	}
	b.ops = b.ops[:0]
}

// Wait blocks until every committed operation has completed and returns
// the first error among them in staging order (nil if all succeeded).
func (b *Batch) Wait() error {
	if !b.committed {
		panic("patree: Batch.Wait before Commit")
	}
	var first error
	for _, h := range b.handles {
		if err := h.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Err waits for operation i and returns its error.
func (b *Batch) Err(i int) error { return b.handles[i].Err() }

// Found waits for operation i and reports whether its key existed.
func (b *Batch) Found(i int) bool { return b.handles[i].Found() }

// Value waits for operation i and returns its point-lookup value.
func (b *Batch) Value(i int) []byte { return b.handles[i].Value() }

// Pairs waits for operation i and returns its range-scan results.
func (b *Batch) Pairs(i int) []KV { return b.handles[i].Pairs() }

// Release waits for any committed operations, then returns the batch,
// its handles and any never-committed operations to their pools. Result
// slices previously returned by the accessors stay valid.
func (b *Batch) Release() {
	// Ops still staged (commit never happened, or failed with
	// ErrClosed/ErrBacklog): nothing is in flight, reclaim directly.
	for i, o := range b.ops {
		o.Release()
		b.ops[i] = nil
	}
	b.ops = b.ops[:0]
	for i, h := range b.handles {
		if b.committed {
			h.Release()
		} else {
			h.abandon()
		}
		b.handles[i] = nil
	}
	b.handles = b.handles[:0]
	b.db = nil
	b.committed = false
	batchPool.Put(b)
}
