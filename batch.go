package patree

import (
	"sync"

	"github.com/patree/patree/internal/core"
)

// Batch stages many heterogeneous operations and admits them in one
// admission-ring transaction, so a single caller goroutine can put the
// paper's queue depth in flight with one call instead of one ring
// hand-off (and one potential wakeup) per operation. The staged
// operations complete as a group: Wait returns once every one of them
// has finished.
//
// Usage: stage with Put/Get/... (each returns the operation's index),
// Commit (or TryCommit), Wait, read results by index, then Release. A
// released Batch must not be reused; call DB.NewBatch again — it is
// pooled, so the steady state allocates nothing.
//
// Over a sharded DB the batch splits into per-shard sub-batches at
// commit: each shard receives its members as one contiguous ring
// transaction in staging order. Commit blocks per shard as needed;
// TryCommit reserves room on every shard before publishing anywhere, so
// it remains all-or-nothing — ErrBacklog means no shard admitted
// anything. Scans and syncs staged on a sharded batch fan out to every
// shard and their index reports the merged result.
//
// A Batch is not safe for concurrent use by multiple goroutines.
type Batch struct {
	db *DB
	// ops are the physical operations in staging order; shardIdx[i] is
	// the shard that owns ops[i]. A logical scan/sync over N shards
	// stages N physical ops behind one handle.
	ops       []*core.Op
	shardIdx  []int
	handles   []*Handle
	committed bool
}

var batchPool = sync.Pool{New: func() any { return new(Batch) }}

// NewBatch returns an empty batch bound to db.
func (db *DB) NewBatch() *Batch {
	b := batchPool.Get().(*Batch)
	b.db = db
	b.committed = false
	return b
}

// add stages one single-shard operation and returns its index.
func (b *Batch) add(si int, op *core.Op) int {
	h := acquireHandle()
	op.Done = h.doneFn
	b.ops = append(b.ops, op)
	b.shardIdx = append(b.shardIdx, si)
	b.handles = append(b.handles, h)
	return len(b.handles) - 1
}

// addFanned stages one logical operation as a physical op on every
// shard, aggregated behind a single handle, and returns its index.
func (b *Batch) addFanned(mk func() *core.Op, merge func([]core.Result) core.Result) int {
	h := acquireHandle()
	agg := &fanAgg{h: h, res: make([]core.Result, len(b.db.shards)), merge: merge}
	agg.remaining.Store(int32(len(b.db.shards)))
	for i := range b.db.shards {
		op := mk()
		op.Done = agg.done(i)
		b.ops = append(b.ops, op)
		b.shardIdx = append(b.shardIdx, i)
	}
	b.handles = append(b.handles, h)
	return len(b.handles) - 1
}

// shardOf routes key within this batch's DB.
func (b *Batch) shardOf(key uint64) int {
	return core.ShardOf(key, len(b.db.shards))
}

// Put stages an insert-or-replace and returns its index.
func (b *Batch) Put(key uint64, value []byte) int {
	return b.add(b.shardOf(key), core.AcquireOp().InitInsert(key, value))
}

// Get stages a point lookup and returns its index.
func (b *Batch) Get(key uint64) int {
	return b.add(b.shardOf(key), core.AcquireOp().InitSearch(key))
}

// Update stages a replace-if-present and returns its index.
func (b *Batch) Update(key uint64, value []byte) int {
	return b.add(b.shardOf(key), core.AcquireOp().InitUpdate(key, value))
}

// Delete stages a delete and returns its index.
func (b *Batch) Delete(key uint64) int {
	return b.add(b.shardOf(key), core.AcquireOp().InitDelete(key))
}

// Scan stages a range scan over [lo, hi] (limit <= 0 = unlimited) and
// returns its index.
func (b *Batch) Scan(lo, hi uint64, limit int) int {
	if len(b.db.shards) == 1 {
		return b.add(0, core.AcquireOp().InitRange(lo, hi, limit))
	}
	return b.addFanned(
		func() *core.Op { return core.AcquireOp().InitRange(lo, hi, limit) },
		func(rs []core.Result) core.Result { return mergeScan(rs, limit) },
	)
}

// Sync stages a sync (of every shard) and returns its index.
func (b *Batch) Sync() int {
	if len(b.db.shards) == 1 {
		return b.add(0, core.AcquireOp().InitSync())
	}
	return b.addFanned(
		func() *core.Op { return core.AcquireOp().InitSync() },
		mergeFirstErr,
	)
}

// Len returns the number of staged (logical) operations.
func (b *Batch) Len() int { return len(b.handles) }

// perShard splits the staged physical ops by owning shard, preserving
// staging order within each shard.
func (b *Batch) perShard() [][]*core.Op {
	groups := make([][]*core.Op, len(b.db.shards))
	for i, op := range b.ops {
		si := b.shardIdx[i]
		groups[si] = append(groups[si], op)
	}
	return groups
}

// Commit admits every staged operation in order as one transaction per
// shard's admission ring. If a ring is full it blocks until that
// working thread frees space (backpressure). Commit may be called once;
// after it the batch only serves Wait, the accessors and Release.
func (b *Batch) Commit() error {
	if b.committed {
		panic("patree: Batch.Commit called twice")
	}
	if len(b.ops) == 0 {
		b.committed = true
		return nil
	}
	db := b.db
	db.mu.RLock()
	if db.closed {
		db.mu.RUnlock()
		return ErrClosed
	}
	if len(db.shards) == 1 {
		db.shards[0].tree.AdmitBatch(b.ops)
	} else {
		for si, ops := range b.perShard() {
			if len(ops) > 0 {
				db.shards[si].tree.AdmitBatch(ops)
			}
		}
	}
	db.mu.RUnlock()
	b.finishCommit()
	return nil
}

// TryCommit is Commit without blocking: if any shard's admission ring
// cannot accept its sub-batch as one contiguous transaction right now
// it returns ErrBacklog and admits nothing anywhere — room is reserved
// on every shard before anything is published, and the reservations of
// the shards that had space are aborted when a later one is full. The
// batch stays staged and may be retried.
func (b *Batch) TryCommit() error {
	if b.committed {
		panic("patree: Batch.TryCommit after Commit")
	}
	if len(b.ops) == 0 {
		b.committed = true
		return nil
	}
	db := b.db
	db.mu.RLock()
	if db.closed {
		db.mu.RUnlock()
		return ErrClosed
	}
	if len(db.shards) == 1 {
		err := db.shards[0].tree.TryAdmitBatch(b.ops)
		db.mu.RUnlock()
		if err != nil {
			return mapErr(err)
		}
		b.finishCommit()
		return nil
	}
	groups := b.perShard()
	reservations := make([]core.Reservation, len(groups))
	for si, ops := range groups {
		r, err := db.shards[si].tree.TryReserve(len(ops))
		if err != nil {
			for _, prev := range reservations[:si] {
				prev.Abort()
			}
			db.mu.RUnlock()
			return mapErr(err)
		}
		reservations[si] = r
	}
	for si, ops := range groups {
		reservations[si].Publish(ops)
	}
	db.mu.RUnlock()
	b.finishCommit()
	return nil
}

// finishCommit drops the admitted ops: they are owned by the trees now
// and will be released by their completions, so the batch must not keep
// references past this point.
func (b *Batch) finishCommit() {
	b.committed = true
	for i := range b.ops {
		b.ops[i] = nil
	}
	b.ops = b.ops[:0]
	b.shardIdx = b.shardIdx[:0]
}

// Wait blocks until every committed operation has completed and returns
// the first error among them in staging order (nil if all succeeded).
func (b *Batch) Wait() error {
	if !b.committed {
		panic("patree: Batch.Wait before Commit")
	}
	var first error
	for _, h := range b.handles {
		if err := h.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Err waits for operation i and returns its error.
func (b *Batch) Err(i int) error { return b.handles[i].Err() }

// Found waits for operation i and reports whether its key existed.
func (b *Batch) Found(i int) bool { return b.handles[i].Found() }

// Value waits for operation i and returns its point-lookup value.
func (b *Batch) Value(i int) []byte { return b.handles[i].Value() }

// Pairs waits for operation i and returns its range-scan results.
func (b *Batch) Pairs(i int) []KV { return b.handles[i].Pairs() }

// Release waits for any committed operations, then returns the batch,
// its handles and any never-committed operations to their pools. Result
// slices previously returned by the accessors stay valid.
func (b *Batch) Release() {
	// Ops still staged (commit never happened, or failed with
	// ErrClosed/ErrBacklog): nothing is in flight, reclaim directly.
	for i, o := range b.ops {
		o.Release()
		b.ops[i] = nil
	}
	b.ops = b.ops[:0]
	b.shardIdx = b.shardIdx[:0]
	for i, h := range b.handles {
		if b.committed {
			h.Release()
		} else {
			h.abandon()
		}
		b.handles[i] = nil
	}
	b.handles = b.handles[:0]
	b.db = nil
	b.committed = false
	batchPool.Put(b)
}
