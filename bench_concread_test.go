package patree

import (
	"sync/atomic"
	"testing"
)

// BenchmarkConcurrentGet measures wall-clock point-lookup throughput of
// the optimistic concurrent-read path against the pipeline control, from
// one caller and from GOMAXPROCS parallel callers. The optimistic
// variant answers on the calling goroutine (no worker hand-off), so the
// single-caller gap is the pipeline's two cross-goroutine hops and the
// parallel variant shows reads scaling past the single worker. Allocs
// are reported for the CI guard (TestConcurrentGetAllocs pins the hit
// path to at most 1 alloc/op).
func BenchmarkConcurrentGet(b *testing.B) {
	const keys = 4096
	mk := func(b *testing.B, conc bool) *DB {
		b.Helper()
		db, err := Open(Options{DeviceBlocks: 1 << 16, Shards: 2, BufferPages: 4096, ConcurrentReads: conc})
		if err != nil {
			b.Fatalf("open: %v", err)
		}
		b.Cleanup(func() { db.Close() })
		for k := uint64(1); k <= keys; k++ {
			if err := db.Put(k, []byte("benchvalue")); err != nil {
				b.Fatalf("put: %v", err)
			}
		}
		// One warm pass so every leaf is buffered (and, with the flag on,
		// published) before the timed section.
		for k := uint64(1); k <= keys; k++ {
			if _, ok, err := db.Get(k); !ok || err != nil {
				b.Fatalf("warm get %d: %v %v", k, ok, err)
			}
		}
		return db
	}
	for _, conc := range []bool{false, true} {
		name := "pipeline"
		if conc {
			name = "optimistic"
		}
		b.Run(name, func(b *testing.B) {
			db := mk(b, conc)
			b.ReportAllocs()
			b.ResetTimer()
			key := uint64(0)
			for i := 0; i < b.N; i++ {
				key = key%keys + 1
				if _, ok, err := db.Get(key); !ok || err != nil {
					b.Fatalf("get %d: %v %v", key, ok, err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e3, "Kops/s")
			if conc {
				m := db.Metrics()
				b.ReportMetric(100*float64(m.Reader.Served)/float64(m.Reader.Attempts), "served%")
			}
		})
		b.Run(name+"-parallel", func(b *testing.B) {
			db := mk(b, conc)
			b.ReportAllocs()
			b.ResetTimer()
			var stripe atomic.Uint64
			b.RunParallel(func(pb *testing.PB) {
				key := stripe.Add(997) % keys // de-correlate the goroutines
				for pb.Next() {
					key = key%keys + 1
					if _, ok, err := db.Get(key); !ok || err != nil {
						b.Fatalf("get %d: %v %v", key, ok, err)
					}
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e3, "Kops/s")
		})
	}
}
