package patree

import (
	"context"

	"github.com/patree/patree/internal/core"
)

// WaitContext blocks until the operation completes or ctx is done,
// whichever comes first.
//
// If it returns nil or an operation error, the handle is still owned by
// the caller exactly as after Wait. If it returns the context's error,
// the handle has been detached: the operation is NOT cancelled — it is
// already in flight on the working thread and completes there, keeping
// the tree consistent — but its result is discarded and the handle is
// reclaimed by the completion. After a detach the caller must not call
// any method on the handle (no Release either; reclamation is the
// completion's job).
func (h *Handle) WaitContext(ctx context.Context) error {
	if h.waited {
		return h.res.Err
	}
	h.checkLive("WaitContext")
	select {
	case <-h.ch:
		h.resolveLazy()
		h.waited = true
		return h.res.Err
	case <-ctx.Done():
		if h.state.CompareAndSwap(hPending, hDetached) {
			// Ownership transferred to the completion callback.
			return ctx.Err()
		}
		// The operation completed concurrently with cancellation; the
		// token is (or is about to be) in the channel, so report the real
		// outcome rather than a spurious cancellation.
		<-h.ch
		h.resolveLazy()
		h.waited = true
		return h.res.Err
	}
}

// execContext is exec with cancellation: on ctx expiry the call returns
// immediately with the context's error while the operation (possibly
// fanned out across shards) finishes — and is discarded — on the
// working threads. admit builds and admits the operation(s), returning
// the future; it is a closure so nothing is allocated or admitted when
// the context is already dead.
func (db *DB) execContext(ctx context.Context, admit func() (*Handle, error)) (core.Result, error) {
	if err := ctx.Err(); err != nil {
		return core.Result{}, err
	}
	h, err := admit()
	if err != nil {
		return core.Result{}, err
	}
	if err := h.WaitContext(ctx); err != nil {
		if h.waited {
			// Operation error; handle still owned.
			res := h.res
			h.recycle()
			return res, err
		}
		// Detached on cancellation; the completion recycles the handle.
		return core.Result{}, err
	}
	res := h.res
	h.recycle()
	return res, nil
}

// PutContext is Put unblocking on ctx cancellation.
func (db *DB) PutContext(ctx context.Context, key uint64, value []byte) error {
	_, err := db.execContext(ctx, func() (*Handle, error) { return db.PutAsync(key, value) })
	return err
}

// GetContext is Get unblocking on ctx cancellation.
func (db *DB) GetContext(ctx context.Context, key uint64) ([]byte, bool, error) {
	res, err := db.execContext(ctx, func() (*Handle, error) { return db.GetAsync(key) })
	return res.Value, res.Found, err
}

// UpdateContext is Update unblocking on ctx cancellation.
func (db *DB) UpdateContext(ctx context.Context, key uint64, value []byte) (bool, error) {
	res, err := db.execContext(ctx, func() (*Handle, error) { return db.UpdateAsync(key, value) })
	return res.Found, err
}

// DeleteContext is Delete unblocking on ctx cancellation.
func (db *DB) DeleteContext(ctx context.Context, key uint64) (bool, error) {
	res, err := db.execContext(ctx, func() (*Handle, error) { return db.DeleteAsync(key) })
	return res.Found, err
}

// ScanContext is Scan unblocking on ctx cancellation.
func (db *DB) ScanContext(ctx context.Context, lo, hi uint64, limit int) ([]KV, error) {
	res, err := db.execContext(ctx, func() (*Handle, error) { return db.ScanAsync(lo, hi, limit) })
	return res.Pairs, err
}

// SyncContext is Sync unblocking on ctx cancellation. Note that a
// cancelled SyncContext does not undo the flush: it proceeds on the
// working thread(s).
func (db *DB) SyncContext(ctx context.Context) error {
	_, err := db.execContext(ctx, func() (*Handle, error) { return db.SyncAsync() })
	return err
}
