package patree

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// This file is the concurrent-reader battery for Options.ConcurrentReads:
// oracle-checked reader/writer races across shard counts, a
// linearizability smoke over per-key registers, a -race hammer mixing
// live reads with observability calls, an allocation guard for the
// optimistic path, and a fuzz target racing the fast path against a flat
// map. Every failure message carries the seed that reproduces it.

// concDB opens a ConcurrentReads DB over a fresh RAM device.
func concDB(t testing.TB, shards int) *DB {
	t.Helper()
	db, err := Open(Options{
		DeviceBlocks:    1 << 16,
		Shards:          shards,
		BufferPages:     4096,
		ConcurrentReads: true,
	})
	if err != nil {
		t.Fatalf("open %d shards: %v", shards, err)
	}
	return db
}

// encVer encodes (key, version) as a value so every read can verify which
// write it observed; decVer reverses it.
func encVer(key, ver uint64) []byte { return []byte(fmt.Sprintf("%d.%d", key, ver)) }

func decVer(t interface{ Errorf(string, ...any) }, label string, key uint64, v []byte) (uint64, bool) {
	var k, ver uint64
	if n, err := fmt.Sscanf(string(v), "%d.%d", &k, &ver); n != 2 || err != nil {
		t.Errorf("%s: undecodable value %q for key %d", label, v, key)
		return 0, false
	}
	if k != key {
		t.Errorf("%s: key %d returned a value written for key %d (%q)", label, key, k, v)
		return 0, false
	}
	return ver, true
}

// TestConcurrentReadersOracle races N reader goroutines against the
// pipeline writer across shard counts, checking, per read, against the
// acked-version oracle:
//
//   - acked-write visibility: a read that begins after version v of a key
//     was acknowledged must observe version >= v;
//   - monotonic reads: one goroutine's successive reads of a key never go
//     backward;
//   - no phantom values: every value decodes to its own key and to a
//     version some writer actually issued.
//
// Writers only add versions (no deletes), so the invariants are exact.
func TestConcurrentReadersOracle(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			const (
				space   = 256
				writes  = 1200
				readers = 3
				seed    = 42
			)
			db := concDB(t, shards)
			defer db.Close()

			var acked [space + 1]atomic.Uint64  // highest acknowledged version per key
			var issued [space + 1]atomic.Uint64 // highest version handed to Put per key
			var done atomic.Bool

			var wg sync.WaitGroup
			wg.Add(1)
			go func() { // single writer: versions per key are unique and ordered
				defer wg.Done()
				defer done.Store(true)
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < writes; i++ {
					key := 1 + uint64(rng.Intn(space))
					ver := issued[key].Add(1)
					if err := db.Put(key, encVer(key, ver)); err != nil {
						t.Errorf("seed=%d shards=%d: put %d v%d: %v", seed, shards, key, ver, err)
						return
					}
					acked[key].Store(ver)
				}
			}()

			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed + int64(r) + 1))
					label := fmt.Sprintf("seed=%d shards=%d reader=%d", seed, shards, r)
					var lastSeen [space + 1]uint64
					for !done.Load() {
						runtime.Gosched() // keep spinning readers from starving the workers
						key := 1 + uint64(rng.Intn(space))
						lo := acked[key].Load() // acked before the read began
						v, found, err := db.Get(key)
						if err != nil {
							t.Errorf("%s: get %d: %v", label, key, err)
							return
						}
						if !found {
							if lo > 0 {
								t.Errorf("%s: key %d invisible after version %d was acked", label, key, lo)
								return
							}
							continue
						}
						ver, ok := decVer(t, label, key, v)
						if !ok {
							return
						}
						if ver < lo {
							t.Errorf("%s: key %d read version %d, but %d was acked before the read began (stale read)", label, key, ver, lo)
							return
						}
						if hi := issued[key].Load(); ver > hi {
							t.Errorf("%s: key %d read version %d, never issued (max %d)", label, key, ver, hi)
							return
						}
						if ver < lastSeen[key] {
							t.Errorf("%s: key %d went backward: read %d after %d (non-monotonic)", label, key, ver, lastSeen[key])
							return
						}
						lastSeen[key] = ver
					}
				}(r)
			}

			// One scanner rides along, checking order, key/value agreement
			// and acked-write visibility of whole ranges.
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + 100))
				label := fmt.Sprintf("seed=%d shards=%d scanner", seed, shards)
				for !done.Load() {
					runtime.Gosched()
					lo := 1 + uint64(rng.Intn(space))
					hi := lo + uint64(rng.Intn(24))
					var ackedAtStart [space + 1]uint64
					for k := lo; k <= hi && k <= space; k++ {
						ackedAtStart[k] = acked[k].Load()
					}
					pairs, err := db.Scan(lo, hi, 0)
					if err != nil {
						t.Errorf("%s: scan [%d,%d]: %v", label, lo, hi, err)
						return
					}
					var prev uint64
					seen := map[uint64]uint64{}
					for i, kv := range pairs {
						if i > 0 && kv.Key <= prev {
							t.Errorf("%s: scan keys not ascending: %d after %d", label, kv.Key, prev)
							return
						}
						prev = kv.Key
						if kv.Key < lo || kv.Key > hi {
							t.Errorf("%s: scan [%d,%d] returned out-of-range key %d", label, lo, hi, kv.Key)
							return
						}
						ver, ok := decVer(t, label, kv.Key, kv.Value)
						if !ok {
							return
						}
						seen[kv.Key] = ver
					}
					for k := lo; k <= hi && k <= space; k++ {
						if want := ackedAtStart[k]; want > 0 {
							got, present := seen[k]
							if !present {
								t.Errorf("%s: scan [%d,%d] missed key %d acked at version %d before the scan", label, lo, hi, k, want)
								return
							}
							if got < want {
								t.Errorf("%s: scan [%d,%d] key %d at version %d, but %d acked before the scan", label, lo, hi, k, got, want)
								return
							}
						}
					}
				}
			}()

			wg.Wait()
			if t.Failed() {
				return
			}

			// Quiesced: every key must read back at exactly its final acked
			// version, through the fast path.
			for key := uint64(1); key <= space; key++ {
				want := acked[key].Load()
				if want == 0 {
					continue
				}
				v, found, err := db.Get(key)
				if err != nil || !found {
					t.Fatalf("seed=%d shards=%d: final get %d: %q/%v err=%v want v%d", seed, shards, key, v, found, err, want)
				}
				if ver, ok := decVer(t, "final", key, v); ok && ver != want {
					t.Fatalf("seed=%d shards=%d: final get %d = version %d, want %d", seed, shards, key, ver, want)
				}
			}
			m := db.Metrics()
			if m.Reader.Served == 0 {
				t.Fatalf("no reads served optimistically; the fast path never engaged (%+v)", m.Reader)
			}
			t.Logf("shards=%d reader stats: %+v", shards, m.Reader)
		})
	}
}

// TestConcurrentReadsMatchPipeline replays the randomized single-goroutine
// oracle stream from the sharded suite on a ConcurrentReads DB: with one
// caller, read-your-writes makes every fast-path answer exactly equal to
// the flat-map model — including deletes, absent keys and limited scans,
// which the multi-goroutine oracle above deliberately avoids.
func TestConcurrentReadsMatchPipeline(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			db, err := Open(Options{DeviceBlocks: 1 << 16, Shards: shards, BufferPages: 1024, ConcurrentReads: true})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			defer db.Close()
			seed := int64(7*shards + 1)
			model := runShardedOps(t, db, shards, seed, 1500)
			checkScan(t, fmt.Sprintf("seed=%d shards=%d final", seed, shards),
				mustScan(t, db, 0, ^uint64(0), 0), oracleScan(model, 0, ^uint64(0), 0))
			if m := db.Metrics(); m.Reader.Served == 0 && m.Reader.ScanServed == 0 {
				t.Fatalf("oracle stream never hit the fast path: %+v", m.Reader)
			}
		})
	}
}

func mustScan(t *testing.T, db *DB, lo, hi uint64, limit int) []KV {
	t.Helper()
	pairs, err := db.Scan(lo, hi, limit)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	return pairs
}

// TestConcurrentReadLinearizability is the per-key register smoke: with a
// single writer issuing uniquely-versioned writes, a read history is
// linearizable iff every read of key k returns a version within
// [acked-before-invoke, issued-after-return] and per-goroutine reads are
// monotonic — exactly the bounds checked here, in the style of the
// Wing & Gong single-register checker. Invoke/return bounds are sampled
// around each call; absent keys must stay absent until first issued.
func TestConcurrentReadLinearizability(t *testing.T) {
	const (
		space   = 64
		writes  = 3000
		readers = 6
		seed    = 1337
	)
	db := concDB(t, 4)
	defer db.Close()

	var issued, acked [space + 1]atomic.Uint64
	var done atomic.Bool
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < writes; i++ {
			key := 1 + uint64(rng.Intn(space))
			ver := issued[key].Add(1) // issued strictly before the call's invoke
			if err := db.Put(key, encVer(key, ver)); err != nil {
				t.Errorf("seed=%d: put %d v%d: %v", seed, key, ver, err)
				return
			}
			acked[key].Store(ver) // acked only after return
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + 1 + int64(r)))
			label := fmt.Sprintf("seed=%d reader=%d", seed, r)
			var lastSeen [space + 1]uint64
			for !done.Load() {
				runtime.Gosched()
				key := 1 + uint64(rng.Intn(space))
				lo := acked[key].Load() // linearization point must be >= this
				v, found, err := db.Get(key)
				hi := issued[key].Load() // ...and <= this
				if err != nil {
					t.Errorf("%s: get %d: %v", label, key, err)
					return
				}
				if !found {
					if lo > 0 {
						t.Errorf("%s: history not linearizable: key %d absent after version %d was acked", label, key, lo)
						return
					}
					continue
				}
				ver, ok := decVer(t, label, key, v)
				if !ok {
					return
				}
				if ver < lo || ver > hi {
					t.Errorf("%s: history not linearizable: key %d read version %d outside [%d, %d]", label, key, ver, lo, hi)
					return
				}
				if ver < lastSeen[key] {
					t.Errorf("%s: history not linearizable: key %d version %d after %d in program order", label, key, ver, lastSeen[key])
					return
				}
				lastSeen[key] = ver
			}
		}(r)
	}
	wg.Wait()
}

// TestConcurrentReadRaceHammer is the -race exercise: readers (blocking
// and async), writers, batch traffic and every observability surface
// (Stats, Metrics, WriteTrace, expvar-style FormatMetrics) run against
// live ConcurrentReads traffic, then races the tail against Close. It
// asserts nothing about values — the race detector and the DB's own
// internal checks are the oracle.
func TestConcurrentReadRaceHammer(t *testing.T) {
	db, err := Open(Options{
		DeviceBlocks:    1 << 16,
		Shards:          4,
		BufferPages:     2048,
		ConcurrentReads: true,
		Trace:           true,
		TraceEvents:     4096,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := 1 + uint64(rng.Intn(512))
				switch rng.Intn(10) {
				case 0, 1:
					_ = db.Put(key, encVer(key, uint64(i)))
				case 2:
					_, _, _ = db.Get(key)
				case 3:
					if h, err := db.GetAsync(key); err == nil {
						_ = h.Wait()
						h.Release()
					}
				case 4:
					_, _ = db.Scan(key, key+64, 16)
				case 5:
					if h, err := db.ScanAsync(key, key+64, 16); err == nil {
						_ = h.Wait()
						h.Release()
					}
				case 6:
					_, _ = db.Delete(key)
				case 7:
					b := db.NewBatch()
					for j := 0; j < 4; j++ {
						b.Get(key + uint64(j))
					}
					if b.Commit() == nil {
						b.Wait()
					}
					b.Release()
				case 8:
					_ = db.Stats()
					_ = FormatMetrics(db.Metrics())
				case 9:
					_ = db.WriteTrace(io.Discard)
				}
			}
		}(g)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	// Tail race: traffic against Close must only ever yield ErrClosed.
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, _, err := db.Get(uint64(i)); err != nil && err != ErrClosed {
					t.Errorf("get during close: %v", err)
					return
				}
			}
		}(g)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	wg.Wait()
}

// TestConcurrentGetAllocs guards the optimistic point read's allocation
// budget: a served hit allocates exactly the returned value copy (1
// alloc), a served miss allocates nothing.
func TestConcurrentGetAllocs(t *testing.T) {
	db := concDB(t, 1)
	defer db.Close()
	for k := uint64(1); k <= 512; k++ {
		if err := db.Put(k, encVer(k, 1)); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	before := db.Metrics().Reader
	if _, found, err := db.Get(100); err != nil || !found {
		t.Fatalf("warm get: found=%v err=%v", found, err)
	}
	if after := db.Metrics().Reader; after.Served == before.Served {
		t.Skipf("fast path not serving (reader stats %+v); alloc budget unmeasurable", after)
	}
	hit := testing.AllocsPerRun(200, func() {
		if _, found, err := db.Get(100); err != nil || !found {
			t.Fatalf("get: found=%v err=%v", found, err)
		}
	})
	if hit > 1 {
		t.Fatalf("served hit allocates %.1f/op, budget 1 (the value copy)", hit)
	}
	miss := testing.AllocsPerRun(200, func() {
		if _, found, err := db.Get(1 << 40); err != nil || found {
			t.Fatalf("get absent: found=%v err=%v", found, err)
		}
	})
	if miss > 0 {
		t.Fatalf("served miss allocates %.1f/op, budget 0", miss)
	}
}

// TestConcurrentReadsOffIsInert pins the default: without the option, no
// publication state exists, reader counters stay zero, and reads flow
// through the pipeline unchanged.
func TestConcurrentReadsOffIsInert(t *testing.T) {
	db, err := Open(Options{DeviceBlocks: 1 << 16, BufferPages: 512})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	if err := db.Put(1, []byte("x")); err != nil {
		t.Fatalf("put: %v", err)
	}
	if v, found, err := db.Get(1); err != nil || !found || !bytes.Equal(v, []byte("x")) {
		t.Fatalf("get = %q/%v/%v", v, found, err)
	}
	m := db.Metrics()
	if m.Reader != (ReaderStats{}) {
		t.Fatalf("reader stats moved with ConcurrentReads off: %+v", m.Reader)
	}
}

// FuzzConcurrentReadOps fuzzes an operation stream against the flat-map
// model on a ConcurrentReads DB, with a background reader goroutine
// continuously exercising the optimistic path while the fuzz body
// mutates. The foreground checks are exact (single-caller
// read-your-writes); the background reader only surfaces races and
// protocol violations via -race and internal invariants.
func FuzzConcurrentReadOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{5, 200, 3, 5, 200, 3, 1, 9, 9, 2, 9, 9})
	f.Add(bytes.Repeat([]byte{0, 7, 13, 4, 99, 21}, 24))
	f.Fuzz(func(t *testing.T, data []byte) {
		const chunk = 4
		if len(data) < chunk || len(data) > 4*400 {
			t.Skip()
		}
		db, err := Open(Options{DeviceBlocks: 1 << 15, Shards: 2, BufferPages: 512, ConcurrentReads: true})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer db.Close()

		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // background optimistic reader
			defer wg.Done()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				runtime.Gosched()
				_, _, _ = db.Get(1 + i%1500)
				if i%16 == 0 {
					_, _ = db.Scan(i%1500, i%1500+32, 8)
				}
			}
		}()

		model := map[uint64][]byte{}
		for i := 0; i+chunk <= len(data); i += chunk {
			b := data[i : i+chunk]
			key := 1 + uint64(b[1])%200 + uint64(b[2])%50*7
			val := []byte(fmt.Sprintf("f%d.%d", i, b[3]))
			switch b[0] % 6 {
			case 0, 1:
				if err := db.Put(key, val); err != nil {
					t.Fatalf("op %d: put %d: %v", i, key, err)
				}
				model[key] = val
			case 2:
				_, existed := model[key]
				found, err := db.Update(key, val)
				if err != nil {
					t.Fatalf("op %d: update %d: %v", i, key, err)
				}
				if found != existed {
					t.Fatalf("op %d: update %d found=%v model=%v", i, key, found, existed)
				}
				if existed {
					model[key] = val
				}
			case 3:
				_, existed := model[key]
				found, err := db.Delete(key)
				if err != nil {
					t.Fatalf("op %d: delete %d: %v", i, key, err)
				}
				if found != existed {
					t.Fatalf("op %d: delete %d found=%v model=%v", i, key, found, existed)
				}
				delete(model, key)
			case 4:
				want, existed := model[key]
				v, found, err := db.Get(key)
				if err != nil {
					t.Fatalf("op %d: get %d: %v", i, key, err)
				}
				if found != existed || (existed && !bytes.Equal(v, want)) {
					t.Fatalf("op %d: get %d = %q/%v, model %q/%v", i, key, v, found, want, existed)
				}
			case 5:
				lo := uint64(b[1])
				hi := lo + uint64(b[2])
				limit := int(b[3]%12) - 1
				pairs, err := db.Scan(lo, hi, limit)
				if err != nil {
					t.Fatalf("op %d: scan [%d,%d] limit %d: %v", i, lo, hi, limit, err)
				}
				checkScan(t, fmt.Sprintf("op %d scan [%d,%d] limit %d", i, lo, hi, limit),
					pairs, oracleScan(model, lo, hi, limit))
			}
		}
		close(stop)
		wg.Wait()
		checkScan(t, "final", mustScan(t, db, 0, ^uint64(0), 0), oracleScan(model, 0, ^uint64(0), 0))
	})
}
