// Command patrain trains the workload-aware probing model of §IV-A
// (equation (1)) on traces generated from the device model and prints the
// coefficient matrix β, plus a held-out accuracy report.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"github.com/patree/patree/internal/probe"
)

func main() {
	seed := flag.Uint64("seed", 1, "training seed")
	window := flag.Duration("window", probe.DefaultWindow, "feature window t")
	slices := flag.Int("slices", probe.DefaultSlices, "time slices n per opcode class")
	run := flag.Duration("run", 40*time.Millisecond, "virtual time per workload grid point")
	flag.Parse()

	cfg := probe.TrainConfig{
		Seed:         *seed,
		Window:       *window,
		Slices:       *slices,
		RunPerConfig: *run,
	}
	start := time.Now()
	model, err := probe.Train(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "training failed:", err)
		os.Exit(1)
	}
	fmt.Printf("trained in %.2fs host time\n\n%s\n", time.Since(start).Seconds(), model)

	// Held-out evaluation on an unseen grid point.
	xs, ys := probe.CollectTrace(cfg, 48, 20, *seed+999)
	var absErr, total float64
	for i := range xs {
		w0, r0 := model.Predict(xs[i])
		absErr += math.Abs(w0-ys[i][0]) + math.Abs(r0-ys[i][1])
		total += ys[i][0] + ys[i][1]
	}
	if total > 0 {
		fmt.Printf("held-out (QD=48, 20%% writes): %d samples, relative |error| = %.1f%%\n",
			len(xs), absErr/total*100)
	}
}
