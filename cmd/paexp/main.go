// Command paexp regenerates the tables and figures of the paper's
// evaluation section on the simulated testbed.
//
// Usage:
//
//	paexp -run fig7              # one experiment (fig3a..fig15, table1, table2)
//	paexp -run all               # everything
//	paexp -run all -full         # paper-scale (minutes of host time)
//	paexp -list                  # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/patree/patree/internal/harness"
)

func main() {
	runID := flag.String("run", "", "experiment id (fig3a, fig3b, fig3c, fig7, fig8, table1, table2, fig9, fig10, fig11, fig12, fig13, fig14, fig15, all)")
	full := flag.Bool("full", false, "paper-scale runs (larger trees, longer windows)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	seed := flag.Uint64("seed", 42, "simulation seed")
	flag.Parse()

	ids := []string{"fig3a", "fig3b", "fig3c", "fig7", "fig8", "table1", "table2",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "figshards", "figreadheavy"}
	if *list {
		fmt.Println(strings.Join(ids, "\n"))
		return
	}
	if *runID == "" {
		flag.Usage()
		os.Exit(2)
	}

	scale := harness.BenchScale()
	if *full {
		scale = harness.FullScale()
	}
	scale.Seed = *seed

	start := time.Now()
	var reports []harness.Report
	needSchemes := func(id string) bool {
		switch id {
		case "fig7", "fig8", "table1", "table2", "fig9", "all":
			return true
		}
		return false
	}
	var rows []harness.SchemeRows
	if needSchemes(*runID) {
		fmt.Fprintln(os.Stderr, "running §V-A scheme comparison (PA-Tree vs shared vs dedicated)...")
		rows = harness.RunSchemes(scale, []int{0, 10, 50})
	}
	add := func(id string) {
		switch id {
		case "fig3a":
			reports = append(reports, harness.Fig3a(scale))
		case "fig3b":
			reports = append(reports, harness.Fig3b(scale))
		case "fig3c":
			reports = append(reports, harness.Fig3c(scale))
		case "fig7":
			reports = append(reports, harness.Fig7(rows, scale))
		case "fig8":
			reports = append(reports, harness.Fig8(rows, scale))
		case "table1":
			reports = append(reports, harness.Table1(rows))
		case "table2":
			reports = append(reports, harness.Table2(rows))
		case "fig9":
			reports = append(reports, harness.Fig9(rows))
		case "fig10":
			reports = append(reports, harness.Fig10(scale))
		case "fig11":
			reports = append(reports, harness.Fig11(scale))
		case "fig12":
			reports = append(reports, harness.Fig12(scale))
		case "fig13":
			reports = append(reports, harness.Fig13(scale))
		case "fig14":
			reports = append(reports, harness.Fig14(scale))
		case "fig15":
			reports = append(reports, harness.Fig15(scale))
		case "figshards":
			reports = append(reports, harness.FigShards(scale))
		case "figreadheavy":
			reports = append(reports, harness.FigReadHeavy(scale))
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "  %s done (%.1fs elapsed)\n", id, time.Since(start).Seconds())
	}
	if *runID == "all" {
		for _, id := range ids {
			add(id)
		}
	} else {
		add(*runID)
	}
	for _, r := range reports {
		fmt.Println(r)
		fmt.Printf("expected shape (paper): %s\n\n", r.Notes)
	}
}
