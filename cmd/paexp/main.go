// Command paexp regenerates the tables and figures of the paper's
// evaluation section on the simulated testbed.
//
// Usage:
//
//	paexp -run fig7              # one experiment (fig3a..fig15, table1, table2)
//	paexp -run all               # everything
//	paexp -run all -full         # paper-scale (minutes of host time)
//	paexp -list                  # list experiment ids
//
// With -bench-out, paexp instead runs a benchmark sweep and writes the
// measurements as a BENCH_*.json trajectory; -bench selects which
// sweep ("multidev" = figmultidev's topologies, "pipeline" =
// figpipeline's classic-vs-pipelined mixes). -baseline compares
// against a committed file and exits non-zero on regressions beyond
// -max-regress. The sweeps run on the deterministic simulator, so the
// gates are immune to CI host noise — a regression means the code
// changed the schedule.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/patree/patree/internal/harness"
	"github.com/patree/patree/internal/loadgen"
)

func main() {
	runID := flag.String("run", "", "experiment id (fig3a, fig3b, fig3c, fig7, fig8, table1, table2, fig9, fig10, fig11, fig12, fig13, fig14, fig15, all)")
	full := flag.Bool("full", false, "paper-scale runs (larger trees, longer windows)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	seed := flag.Uint64("seed", 42, "simulation seed")
	benchOut := flag.String("bench-out", "", "run a benchmark sweep and write BENCH JSON here")
	benchID := flag.String("bench", "multidev", "which sweep -bench-out runs (multidev, pipeline)")
	baseline := flag.String("baseline", "", "compare the sweep against this BENCH JSON")
	maxReg := flag.Float64("max-regress", 0.15, "regression tolerance vs baseline")
	flag.Parse()

	ids := []string{"fig3a", "fig3b", "fig3c", "fig7", "fig8", "table1", "table2",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "figshards", "figmultidev", "figreadheavy", "figpipeline"}
	if *list {
		fmt.Println(strings.Join(ids, "\n"))
		return
	}
	scale := harness.BenchScale()
	if *full {
		scale = harness.FullScale()
	}
	scale.Seed = *seed

	if *benchOut != "" {
		switch *benchID {
		case "multidev":
			multiDevBench(scale, *benchOut, *baseline, *maxReg)
		case "pipeline":
			pipelineBench(scale, *benchOut, *baseline, *maxReg)
		default:
			fmt.Fprintf(os.Stderr, "unknown sweep %q; use multidev or pipeline\n", *benchID)
			os.Exit(2)
		}
		return
	}
	if *runID == "" {
		flag.Usage()
		os.Exit(2)
	}

	start := time.Now()
	var reports []harness.Report
	needSchemes := func(id string) bool {
		switch id {
		case "fig7", "fig8", "table1", "table2", "fig9", "all":
			return true
		}
		return false
	}
	var rows []harness.SchemeRows
	if needSchemes(*runID) {
		fmt.Fprintln(os.Stderr, "running §V-A scheme comparison (PA-Tree vs shared vs dedicated)...")
		rows = harness.RunSchemes(scale, []int{0, 10, 50})
	}
	add := func(id string) {
		switch id {
		case "fig3a":
			reports = append(reports, harness.Fig3a(scale))
		case "fig3b":
			reports = append(reports, harness.Fig3b(scale))
		case "fig3c":
			reports = append(reports, harness.Fig3c(scale))
		case "fig7":
			reports = append(reports, harness.Fig7(rows, scale))
		case "fig8":
			reports = append(reports, harness.Fig8(rows, scale))
		case "table1":
			reports = append(reports, harness.Table1(rows))
		case "table2":
			reports = append(reports, harness.Table2(rows))
		case "fig9":
			reports = append(reports, harness.Fig9(rows))
		case "fig10":
			reports = append(reports, harness.Fig10(scale))
		case "fig11":
			reports = append(reports, harness.Fig11(scale))
		case "fig12":
			reports = append(reports, harness.Fig12(scale))
		case "fig13":
			reports = append(reports, harness.Fig13(scale))
		case "fig14":
			reports = append(reports, harness.Fig14(scale))
		case "fig15":
			reports = append(reports, harness.Fig15(scale))
		case "figshards":
			reports = append(reports, harness.FigShards(scale))
		case "figmultidev":
			reports = append(reports, harness.FigMultiDev(scale))
		case "figreadheavy":
			reports = append(reports, harness.FigReadHeavy(scale))
		case "figpipeline":
			reports = append(reports, harness.FigPipeline(scale))
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "  %s done (%.1fs elapsed)\n", id, time.Since(start).Seconds())
	}
	if *runID == "all" {
		for _, id := range ids {
			add(id)
		}
	} else {
		add(*runID)
	}
	for _, r := range reports {
		fmt.Println(r)
		fmt.Printf("expected shape (paper): %s\n\n", r.Notes)
	}
}

// multiDevBench runs the figmultidev sweep, writes its measurements as a
// bench trajectory and optionally gates them against a committed
// baseline.
func multiDevBench(scale harness.Scale, out, baseline string, maxReg float64) {
	start := time.Now()
	fmt.Fprintln(os.Stderr, "running multi-device scaling sweep...")
	sweep := harness.MultiDevSweep(scale)
	var entries []loadgen.BenchEntry
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	for i, s := range sweep {
		topo := harness.MultiDevTopologies[i]
		prefix := fmt.Sprintf("multidev/%dx%d", topo[0], topo[1])
		entries = append(entries,
			loadgen.BenchEntry{Name: prefix + "/throughput", Unit: "ops/s", Value: s.Throughput,
				Extra: fmt.Sprintf("%d shards on %d devices, %d ops, seed %d", topo[0], topo[1], s.Ops, scale.Seed)},
			loadgen.BenchEntry{Name: prefix + "/mean", Unit: "us", Value: us(s.MeanLatency)},
			loadgen.BenchEntry{Name: prefix + "/p99", Unit: "us", Value: us(s.P99Latency)},
		)
	}
	for _, e := range entries {
		fmt.Fprintf(os.Stderr, "  %-28s %12.1f %s\n", e.Name, e.Value, e.Unit)
	}
	if err := loadgen.WriteBench(out, entries); err != nil {
		fmt.Fprintf(os.Stderr, "paexp: write %s: %v\n", out, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "paexp: wrote %s (%.1fs elapsed)\n", out, time.Since(start).Seconds())
	if baseline == "" {
		return
	}
	base, err := loadgen.ReadBench(baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paexp: baseline: %v\n", err)
		os.Exit(1)
	}
	if regs := loadgen.Compare(entries, base, maxReg); len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "paexp: REGRESSION: %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "paexp: within %.0f%% of %s\n", maxReg*100, baseline)
}

// pipelineBench runs the figpipeline sweep (each committed mix with the
// overlap machinery off and on), writes the measurements as a bench
// trajectory and optionally gates them against a committed baseline.
// The speedup_ops series is what pins the feature's win: the gate fails
// if pipelining stops beating the classic loop by the committed margin.
func pipelineBench(scale harness.Scale, out, baseline string, maxReg float64) {
	start := time.Now()
	fmt.Fprintln(os.Stderr, "running pipeline overlap sweep...")
	sweep := harness.PipelineSweep(scale)
	var entries []loadgen.BenchEntry
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	for _, r := range sweep {
		prefix := "pipeline/" + r.Mix.Name
		extra := fmt.Sprintf("%d%% updates, journal=%v, %d ops, seed %d",
			r.Mix.UpdatePercent, r.Mix.Journal, r.On.Ops, scale.Seed)
		entries = append(entries,
			loadgen.BenchEntry{Name: prefix + "/classic/throughput", Unit: "ops/s", Value: r.Off.Throughput},
			loadgen.BenchEntry{Name: prefix + "/classic/mean", Unit: "us", Value: us(r.Off.MeanLatency)},
			loadgen.BenchEntry{Name: prefix + "/classic/p99", Unit: "us", Value: us(r.Off.P99Latency)},
			loadgen.BenchEntry{Name: prefix + "/pipelined/throughput", Unit: "ops/s", Value: r.On.Throughput, Extra: extra},
			loadgen.BenchEntry{Name: prefix + "/pipelined/mean", Unit: "us", Value: us(r.On.MeanLatency)},
			loadgen.BenchEntry{Name: prefix + "/pipelined/p99", Unit: "us", Value: us(r.On.P99Latency)},
			loadgen.BenchEntry{Name: prefix + "/speedup_ops", Unit: "x", Value: r.On.Throughput / r.Off.Throughput},
		)
	}
	for _, e := range entries {
		fmt.Fprintf(os.Stderr, "  %-40s %14.2f %s\n", e.Name, e.Value, e.Unit)
	}
	if err := loadgen.WriteBench(out, entries); err != nil {
		fmt.Fprintf(os.Stderr, "paexp: write %s: %v\n", out, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "paexp: wrote %s (%.1fs elapsed)\n", out, time.Since(start).Seconds())
	if baseline == "" {
		return
	}
	base, err := loadgen.ReadBench(baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paexp: baseline: %v\n", err)
		os.Exit(1)
	}
	if regs := loadgen.Compare(entries, base, maxReg); len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "paexp: REGRESSION: %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "paexp: within %.0f%% of %s\n", maxReg*100, baseline)
}
