// paserve serves a PA-Tree over the wire protocol.
//
//	go run ./cmd/paserve -addr :7070 -shards 4 -admin :7071
//
// The store is the embedded sharded DB (in-memory device by default);
// clients connect with package client or cmd/pabench. The -admin HTTP
// endpoint exposes the full observability surface:
//
//	/metrics       Prometheus text (engine patree_* + wire patree_server_*)
//	/debug/vars    expvar JSON (engine + server snapshots)
//	/statsz        one JSON document, read by `pacli stats -remote`
//	/trace         merged Chrome trace JSON (with -trace)
//	/debug/pprof/  Go runtime profiles (CPU, heap, block, goroutine);
//	               block profiling is sampled while -admin is set
//
// -trace turns on sampled request-scoped spans (negotiated with v1
// clients), -slowop logs any request slower than the threshold with its
// server-side stage breakdown. -metrics is kept as a legacy alias for
// -admin.
package main

import (
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	patree "github.com/patree/patree"
	"github.com/patree/patree/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":7070", "listen address")
		admin   = flag.String("admin", "", "admin HTTP address (empty = disabled)")
		metrics = flag.String("metrics", "", "legacy alias for -admin")
		shards  = flag.Int("shards", 1, "worker shards")
		inbox   = flag.Int("inbox", 0, "admission ring depth per shard (0 = default)")
		journal = flag.Bool("journal", false, "enable the redo journal")
		weak    = flag.Bool("weak", false, "weak persistence (buffered writes)")
		blocks  = flag.Uint64("blocks", 0, "in-memory device size in 512B blocks (0 = default)")
		burst   = flag.Int("burst", 0, "max pipelined ops per admission burst (0 = default)")
		doTrace = flag.Bool("trace", false, "sample request-scoped spans (engine + wire)")
		slowOp  = flag.Duration("slowop", 0, "log requests slower than this (0 = disabled)")
		pipeln  = flag.Bool("pipelined", false, "overlap I/O and computation in the polled workers (speculative prefetch, pipelined WAL writes, off-worker scan merge)")
	)
	flag.Parse()
	if *admin == "" {
		*admin = *metrics
	}

	opts := patree.Options{
		Shards:       *shards,
		InboxDepth:   *inbox,
		Journal:      *journal,
		DeviceBlocks: *blocks,
		Trace:        *doTrace,
		Pipelined:    *pipeln,
	}
	if *weak {
		opts.Persistence = patree.Weak
	}
	db, err := patree.Open(opts)
	if err != nil {
		log.Fatalf("paserve: open: %v", err)
	}
	defer db.Close()

	srv := server.New(db, server.Options{
		BurstOps: *burst,
		Logf:     log.Printf,
		Trace:    *doTrace,
		TraceNow: db.TraceNow, // one time axis with the engine's spans
		SlowOp:   *slowOp,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("paserve: listen: %v", err)
	}
	log.Printf("paserve: serving on %s (shards=%d journal=%v trace=%v)", ln.Addr(), *shards, *journal, *doTrace)

	if *admin != "" {
		// Sample goroutine-blocking events (one per ~10µs blocked) so the
		// admin endpoint's /debug/pprof/block answers worker-stall
		// questions without a rebuild; cheap enough to leave on whenever
		// the admin surface itself is on.
		runtime.SetBlockProfileRate(10_000)
		db.PublishExpvar("patree")
		srv.PublishExpvar("patree_server")
		h := srv.AdminHandler(server.AdminConfig{
			EngineMetrics: db.MetricsHandler(),
			EngineStats:   func() any { return db.Metrics() },
			EngineProcs:   db.TraceProcesses,
		})
		go func() {
			log.Printf("paserve: admin on http://%s/{metrics,statsz,trace,debug/vars,debug/pprof}", *admin)
			s := &http.Server{Addr: *admin, Handler: h, ReadHeaderTimeout: 5 * time.Second}
			if err := s.ListenAndServe(); err != nil {
				log.Printf("paserve: admin: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case s := <-sig:
		log.Printf("paserve: %v: draining", s)
		srv.Close()
	case err := <-done:
		if err != nil {
			log.Fatalf("paserve: serve: %v", err)
		}
	}
	st := srv.Stats()
	log.Printf("paserve: done: %d conns, %d ops, %d batch ops (%d wire batches), %d busy",
		st.Accepted, st.Ops, st.BatchOps, st.WireBatches, st.Busy)
}
