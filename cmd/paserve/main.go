// paserve serves a PA-Tree over the wire protocol.
//
//	go run ./cmd/paserve -addr :7070 -shards 4
//
// The store is the embedded sharded DB (in-memory device by default);
// clients connect with package client or cmd/pabench. A metrics
// endpoint (Prometheus text format) is optionally exposed with
// -metrics.
package main

import (
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	patree "github.com/patree/patree"
	"github.com/patree/patree/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":7070", "listen address")
		metrics = flag.String("metrics", "", "metrics HTTP address (empty = disabled)")
		shards  = flag.Int("shards", 1, "worker shards")
		inbox   = flag.Int("inbox", 0, "admission ring depth per shard (0 = default)")
		journal = flag.Bool("journal", false, "enable the redo journal")
		weak    = flag.Bool("weak", false, "weak persistence (buffered writes)")
		blocks  = flag.Uint64("blocks", 0, "in-memory device size in 512B blocks (0 = default)")
		burst   = flag.Int("burst", 0, "max pipelined ops per admission burst (0 = default)")
	)
	flag.Parse()

	opts := patree.Options{
		Shards:       *shards,
		InboxDepth:   *inbox,
		Journal:      *journal,
		DeviceBlocks: *blocks,
	}
	if *weak {
		opts.Persistence = patree.Weak
	}
	db, err := patree.Open(opts)
	if err != nil {
		log.Fatalf("paserve: open: %v", err)
	}
	defer db.Close()

	srv := server.New(db, server.Options{
		BurstOps: *burst,
		Logf:     log.Printf,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("paserve: listen: %v", err)
	}
	log.Printf("paserve: serving on %s (shards=%d journal=%v)", ln.Addr(), *shards, *journal)

	if *metrics != "" {
		go func() {
			mux := http.NewServeMux()
			mux.Handle("/metrics", db.MetricsHandler())
			log.Printf("paserve: metrics on http://%s/metrics", *metrics)
			if err := http.ListenAndServe(*metrics, mux); err != nil {
				log.Printf("paserve: metrics: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case s := <-sig:
		log.Printf("paserve: %v: draining", s)
		srv.Close()
	case err := <-done:
		if err != nil {
			log.Fatalf("paserve: serve: %v", err)
		}
	}
	st := srv.Stats()
	log.Printf("paserve: done: %d conns, %d ops, %d batch ops (%d wire batches), %d busy",
		st.Accepted, st.Ops, st.BatchOps, st.WireBatches, st.Busy)
}
