// pabench drives a PA-Tree server with closed- or open-loop load and
// emits a machine-readable benchmark trajectory.
//
//	go run ./cmd/pabench -loopback -mode open -clients 1000 -rate 120000
//	go run ./cmd/pabench -addr host:7070 -mode closed -clients 64
//
// -loopback spins up an in-process server over an in-memory sharded DB
// and benchmarks through real TCP sockets — the full wire path without
// needing a separate process. Latencies in open-loop mode are
// coordinated-omission-safe: each sample is measured from the
// operation's intended Poisson arrival time, so server stalls surface
// in the tail instead of silently suppressing load (see
// internal/loadgen).
//
// With -out the results are written in github-action-benchmark custom
// JSON; with -baseline the run compares against a committed trajectory
// and exits non-zero on >-max-regress regressions.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"runtime/pprof"
	"time"

	patree "github.com/patree/patree"
	"github.com/patree/patree/client"
	"github.com/patree/patree/internal/loadgen"
	"github.com/patree/patree/internal/server"
	"github.com/patree/patree/internal/trace"
)

func main() {
	var (
		addr     = flag.String("addr", "", "server address (empty with -loopback)")
		loopback = flag.Bool("loopback", false, "spin up an in-process server over loopback TCP")
		mode     = flag.String("mode", "closed", "driver: closed or open")
		clients  = flag.Int("clients", 64, "workers (closed) / simulated clients (open)")
		conns    = flag.Int("conns", 4, "pooled TCP connections")
		rate     = flag.Float64("rate", 0, "total intended ops/s (open loop)")
		duration = flag.Duration("duration", 5*time.Second, "measured duration")
		keys     = flag.Uint64("keys", 100_000, "keyspace size")
		preload  = flag.Int64("preload", 0, "keys to preload (0 = keyspace, negative = none)")
		theta    = flag.Float64("theta", 0.99, "zipf skew (0 = uniform)")
		valueSz  = flag.Int("value", 100, "value bytes")
		getPct   = flag.Int("get", 90, "percent gets")
		putPct   = flag.Int("put", 10, "percent puts")
		scanPct  = flag.Int("scan", 0, "percent scans")
		pipeline = flag.Int("pipeline", 1, "closed-loop batch depth per worker")
		seed     = flag.Uint64("seed", 1, "workload seed")
		shards   = flag.Int("shards", 4, "loopback DB shards")
		name     = flag.String("name", "serving", "bench entry name prefix")
		out      = flag.String("out", "", "write BENCH JSON here")
		baseline = flag.String("baseline", "", "compare against this BENCH JSON")
		maxReg   = flag.Float64("max-regress", 0.15, "regression tolerance vs baseline")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile here")
		traceOut = flag.String("trace", "", "write a merged Chrome trace here (client+server+engine with -loopback)")
		sample   = flag.Int("sample", 0, "trace 1 in N requests (0 = client default)")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatalf("pabench: cpuprofile: %v", err)
		}
		pprof.StartCPUProfile(f)
		defer pprof.StopCPUProfile()
	}

	tracing := *traceOut != ""
	target := *addr
	var cleanup func()
	var db *patree.DB
	var srv *server.Server
	if *loopback {
		var err error
		db, err = patree.Open(patree.Options{Shards: *shards, Trace: tracing})
		if err != nil {
			log.Fatalf("pabench: open: %v", err)
		}
		srv = server.New(db, server.Options{
			Trace:    tracing,
			TraceNow: db.TraceNow, // engine, server and client share one time axis
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("pabench: listen: %v", err)
		}
		go srv.Serve(ln)
		target = ln.Addr().String()
		cleanup = func() { srv.Close(); db.Close() }
		log.Printf("pabench: loopback server on %s (shards=%d trace=%v)", target, *shards, tracing)
	} else if target == "" {
		log.Fatal("pabench: need -addr or -loopback")
	}

	copts := client.Options{Trace: tracing, SampleEvery: *sample}
	if db != nil {
		copts.TraceNow = db.TraceNow
	}
	pool, err := client.DialPool(target, *conns, copts)
	if err != nil {
		log.Fatalf("pabench: dial: %v", err)
	}

	rep, err := loadgen.Run(loadgen.Config{
		Store:     pool,
		Mode:      loadgen.Mode(*mode),
		Clients:   *clients,
		Rate:      *rate,
		Duration:  *duration,
		Keys:      *keys,
		Preload:   *preload,
		Theta:     *theta,
		ValueSize: *valueSz,
		GetPct:    *getPct,
		PutPct:    *putPct,
		ScanPct:   *scanPct,
		Pipeline:  *pipeline,
		Seed:      *seed,
	})
	if err != nil {
		log.Fatalf("pabench: run: %v", err)
	}
	st := pool.Stats()
	log.Printf("pabench: %s", rep)
	log.Printf("pabench: wire: %d sent, %d received, %d busy retries", st.Sent, st.Received, st.BusyRetries)

	if tracing {
		if err := writeMergedTrace(*traceOut, pool, srv, db); err != nil {
			log.Fatalf("pabench: trace: %v", err)
		}
		log.Printf("pabench: wrote %s (merged client/server/engine trace)", *traceOut)
	}

	pool.Close()
	if cleanup != nil {
		cleanup()
	}

	prefix := fmt.Sprintf("%s/%s", *name, *mode)
	entries := rep.BenchEntries(prefix)
	entries = append(entries, loadgen.BusyRetryEntry(prefix, st.BusyRetries, st.Received))
	for _, e := range entries {
		log.Printf("pabench:   %-28s %12.1f %s", e.Name, e.Value, e.Unit)
	}
	if *out != "" {
		if err := loadgen.WriteBench(*out, entries); err != nil {
			log.Fatalf("pabench: write %s: %v", *out, err)
		}
		log.Printf("pabench: wrote %s", *out)
	}
	if *baseline != "" {
		base, err := loadgen.ReadBench(*baseline)
		if err != nil {
			log.Fatalf("pabench: baseline: %v", err)
		}
		if regs := loadgen.Compare(entries, base, *maxReg); len(regs) > 0 {
			for _, r := range regs {
				log.Printf("pabench: REGRESSION: %s", r)
			}
			os.Exit(1)
		}
		log.Printf("pabench: within %.0f%% of %s", *maxReg*100, *baseline)
	}
}

// writeMergedTrace snapshots every emitter's trace window — pooled
// client connections, the wire server, the engine shards — stitches the
// sampled spans into flow arrows and writes one Chrome trace JSON file.
// Server and engine processes exist only with -loopback; against a
// remote server the export degrades to the client's side of each span.
func writeMergedTrace(path string, pool *client.Pool, srv *server.Server, db *patree.DB) error {
	procs := pool.TraceProcesses()
	if srv != nil {
		if tp := srv.TraceProcess(""); tp != nil {
			procs = append(procs, *tp)
		}
	}
	if db != nil {
		procs = append(procs, db.TraceProcesses()...)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChromeJSONFlows(f, procs, trace.Stitch(procs)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
