// Command pacli is a small interactive / batch KV shell over a real-time
// PA-Tree, for poking at the library by hand:
//
//	$ pacli
//	> put 42 hello
//	> get 42
//	hello
//	> scan 0 100
//	42 hello
//	> stats
//	...
//
// Shell commands: put <key> <value> | get <key> | del <key> | scan <lo>
// <hi> [limit] | sync | stats | metrics | help | quit. Reads stdin, so
// it also works as a batch processor: `pacli < script.txt`.
//
// Two observability subcommands run a self-contained mixed workload
// instead of the shell:
//
//	pacli stats [-n ops]            run the workload, print the full
//	                                metrics snapshot (stage latency
//	                                breakdown, CPU categories, probe
//	                                model accuracy)
//	pacli stats -remote host:7071   instead of a local workload, fetch
//	                                and print /statsz from a running
//	                                paserve admin endpoint
//	pacli trace [-n ops] [-o file]  same workload with the lifecycle
//	                                tracer on; exports Chrome trace-event
//	                                JSON for Perfetto / chrome://tracing
//
// For profiling a running server (rather than this process), paserve's
// admin endpoint also serves Go pprof at /debug/pprof/ — see `help` in
// the shell.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	patree "github.com/patree/patree"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "stats":
			os.Exit(runStats(os.Args[2:]))
		case "trace":
			os.Exit(runTrace(os.Args[2:]))
		}
	}
	runShell()
}

// demoWorkload drives a mixed batched workload through db: bulk load,
// batched point reads, updates, scans and deletes, then a sync. It
// exercises every pipeline stage (inbox, ready queue, latches, reads,
// write-backs) so the exported metrics and traces have something to say.
func demoWorkload(db *patree.DB, n int) error {
	const batch = 128
	val := []byte("pacli-demo-value-0123456789abcdef")
	for lo := 0; lo < n; lo += batch {
		b := db.NewBatch()
		for k := lo; k < lo+batch && k < n; k++ {
			b.Put(uint64(k), val)
		}
		if err := b.Commit(); err != nil {
			return err
		}
		b.Wait()
		b.Release()
	}
	for lo := 0; lo < n; lo += batch {
		b := db.NewBatch()
		for k := lo; k < lo+batch && k < n; k++ {
			switch k % 8 {
			case 0:
				b.Put(uint64(k), val)
			case 1:
				b.Delete(uint64(k))
			case 2:
				b.Scan(uint64(k), uint64(k+16), 8)
			default:
				b.Get(uint64(k))
			}
		}
		if err := b.Commit(); err != nil {
			return err
		}
		b.Wait()
		b.Release()
	}
	return db.Sync()
}

func runStats(args []string) int {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	n := fs.Int("n", 1<<16, "operations to run before snapshotting")
	remote := fs.String("remote", "", "paserve admin address or URL to read /statsz from")
	fs.Parse(args)
	if *remote != "" {
		return remoteStats(*remote)
	}
	db, err := patree.Open(patree.Options{Persistence: patree.Weak})
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		return 1
	}
	defer db.Close()
	if err := demoWorkload(db, *n); err != nil {
		fmt.Fprintln(os.Stderr, "workload:", err)
		return 1
	}
	fmt.Print(patree.FormatMetrics(db.Metrics()))
	return 0
}

// remoteStats fetches /statsz from a running paserve admin endpoint and
// prints the JSON document. addr may be host:port or a full URL; a bare
// address or URL without a path gets /statsz appended.
func remoteStats(addr string) int {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if !strings.Contains(strings.TrimPrefix(url, "http://"), "/") {
		url += "/statsz"
	}
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fetch:", err)
		return 1
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintln(os.Stderr, "read:", err)
		return 1
	}
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "%s: %s\n%s", url, resp.Status, body)
		return 1
	}
	os.Stdout.Write(body)
	if len(body) > 0 && body[len(body)-1] != '\n' {
		fmt.Println()
	}
	return 0
}

func runTrace(args []string) int {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	n := fs.Int("n", 1<<14, "operations to run while tracing")
	out := fs.String("o", "patree-trace.json", "output file for Chrome trace JSON")
	fs.Parse(args)
	db, err := patree.Open(patree.Options{Persistence: patree.Weak, Trace: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		return 1
	}
	defer db.Close()
	if err := demoWorkload(db, *n); err != nil {
		fmt.Fprintln(os.Stderr, "workload:", err)
		return 1
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "create:", err)
		return 1
	}
	if err := db.WriteTrace(f); err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		f.Close()
		return 1
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "close:", err)
		return 1
	}
	m := db.Metrics()
	fmt.Printf("wrote %s (%d events emitted); open in ui.perfetto.dev or chrome://tracing\n",
		*out, m.TraceEvents)
	return 0
}

func runShell() {
	db, err := patree.Open(patree.Options{Persistence: patree.Weak})
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	defer db.Close()

	sc := bufio.NewScanner(os.Stdin)
	interactive := isTTY()
	if interactive {
		fmt.Println("pa-tree shell; 'help' for commands")
	}
	for {
		if interactive {
			fmt.Print("> ")
		}
		if !sc.Scan() {
			break
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return
		case "help":
			fmt.Println("put <key> <value> | get <key> | del <key> | scan <lo> <hi> [limit] | sync | stats | metrics | quit")
			fmt.Println("profiling a live server: paserve's admin endpoint serves Go pprof at http://<admin>/debug/pprof/ (CPU, heap, block)")
		case "put":
			if len(fields) < 3 {
				fmt.Println("usage: put <key> <value>")
				continue
			}
			k, err := parseKey(fields[1])
			if err != nil {
				fmt.Println(err)
				continue
			}
			if err := db.Put(k, []byte(strings.Join(fields[2:], " "))); err != nil {
				fmt.Println("error:", err)
			}
		case "get":
			k, err := parseKey(fields[1])
			if err != nil {
				fmt.Println(err)
				continue
			}
			v, ok, err := db.Get(k)
			switch {
			case err != nil:
				fmt.Println("error:", err)
			case !ok:
				fmt.Println("(not found)")
			default:
				fmt.Println(string(v))
			}
		case "del":
			k, err := parseKey(fields[1])
			if err != nil {
				fmt.Println(err)
				continue
			}
			ok, err := db.Delete(k)
			if err != nil {
				fmt.Println("error:", err)
			} else if !ok {
				fmt.Println("(not found)")
			}
		case "scan":
			if len(fields) < 3 {
				fmt.Println("usage: scan <lo> <hi> [limit]")
				continue
			}
			lo, err1 := parseKey(fields[1])
			hi, err2 := parseKey(fields[2])
			if err1 != nil || err2 != nil {
				fmt.Println("bad bounds")
				continue
			}
			limit := 0
			if len(fields) > 3 {
				limit, _ = strconv.Atoi(fields[3])
			}
			pairs, err := db.Scan(lo, hi, limit)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			for _, kv := range pairs {
				fmt.Printf("%d %s\n", kv.Key, kv.Value)
			}
		case "sync":
			if err := db.Sync(); err != nil {
				fmt.Println("error:", err)
			}
		case "stats":
			st := db.Stats()
			fmt.Printf("keys=%d height=%d ops=%d reads=%d writes=%d probes=%d bufferHit=%.1f%%\n",
				st.NumKeys, st.Height, st.Ops, st.ReadsIssued, st.WritesIssued, st.Probes, st.BufferHit*100)
		case "metrics":
			fmt.Print(patree.FormatMetrics(db.Metrics()))
		default:
			fmt.Printf("unknown command %q; try help\n", fields[0])
		}
	}
}

func parseKey(s string) (uint64, error) {
	k, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad key %q", s)
	}
	return k, nil
}

func isTTY() bool {
	fi, err := os.Stdin.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}
