// Command pacli is a small interactive / batch KV shell over a real-time
// PA-Tree, for poking at the library by hand:
//
//	$ pacli
//	> put 42 hello
//	> get 42
//	hello
//	> scan 0 100
//	42 hello
//	> stats
//	...
//
// Commands: put <key> <value> | get <key> | del <key> | scan <lo> <hi>
// [limit] | sync | stats | help | quit. Reads stdin, so it also works as
// a batch processor: `pacli < script.txt`.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	patree "github.com/patree/patree"
)

func main() {
	db, err := patree.Open(patree.Options{Persistence: patree.Weak})
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	defer db.Close()

	sc := bufio.NewScanner(os.Stdin)
	interactive := isTTY()
	if interactive {
		fmt.Println("pa-tree shell; 'help' for commands")
	}
	for {
		if interactive {
			fmt.Print("> ")
		}
		if !sc.Scan() {
			break
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return
		case "help":
			fmt.Println("put <key> <value> | get <key> | del <key> | scan <lo> <hi> [limit] | sync | stats | quit")
		case "put":
			if len(fields) < 3 {
				fmt.Println("usage: put <key> <value>")
				continue
			}
			k, err := parseKey(fields[1])
			if err != nil {
				fmt.Println(err)
				continue
			}
			if err := db.Put(k, []byte(strings.Join(fields[2:], " "))); err != nil {
				fmt.Println("error:", err)
			}
		case "get":
			k, err := parseKey(fields[1])
			if err != nil {
				fmt.Println(err)
				continue
			}
			v, ok, err := db.Get(k)
			switch {
			case err != nil:
				fmt.Println("error:", err)
			case !ok:
				fmt.Println("(not found)")
			default:
				fmt.Println(string(v))
			}
		case "del":
			k, err := parseKey(fields[1])
			if err != nil {
				fmt.Println(err)
				continue
			}
			ok, err := db.Delete(k)
			if err != nil {
				fmt.Println("error:", err)
			} else if !ok {
				fmt.Println("(not found)")
			}
		case "scan":
			if len(fields) < 3 {
				fmt.Println("usage: scan <lo> <hi> [limit]")
				continue
			}
			lo, err1 := parseKey(fields[1])
			hi, err2 := parseKey(fields[2])
			if err1 != nil || err2 != nil {
				fmt.Println("bad bounds")
				continue
			}
			limit := 0
			if len(fields) > 3 {
				limit, _ = strconv.Atoi(fields[3])
			}
			pairs, err := db.Scan(lo, hi, limit)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			for _, kv := range pairs {
				fmt.Printf("%d %s\n", kv.Key, kv.Value)
			}
		case "sync":
			if err := db.Sync(); err != nil {
				fmt.Println("error:", err)
			}
		case "stats":
			st := db.Stats()
			fmt.Printf("keys=%d height=%d ops=%d reads=%d writes=%d probes=%d bufferHit=%.1f%%\n",
				st.NumKeys, st.Height, st.Ops, st.ReadsIssued, st.WritesIssue, st.Probes, st.BufferHit*100)
		default:
			fmt.Printf("unknown command %q; try help\n", fields[0])
		}
	}
}

func parseKey(s string) (uint64, error) {
	k, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad key %q", s)
	}
	return k, nil
}

func isTTY() bool {
	fi, err := os.Stdin.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}
