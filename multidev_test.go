package patree

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/patree/patree/internal/nvme"
)

// ramDevices builds m RAM devices sized blocks each, closed on cleanup.
func ramDevices(t testing.TB, m int, blocks uint64) []nvme.Device {
	t.Helper()
	devs := make([]nvme.Device, m)
	for i := range devs {
		d := nvme.NewRAMDevice(nvme.RAMConfig{NumBlocks: blocks})
		t.Cleanup(func() { d.Close() })
		devs[i] = d
	}
	return devs
}

// TestMultiDevicePropertyOps sweeps the topology grid {1,2,4,8} shards ×
// {1,2,4} devices (skipping topologies with more devices than shards)
// and runs the randomized flat-map oracle stream over each: the public
// surface must be indistinguishable from the single-worker tree at every
// topology, and Stats must report the device count.
func TestMultiDevicePropertyOps(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		for _, m := range []int{1, 2, 4} {
			if m > n {
				continue
			}
			n, m := n, m
			t.Run(fmt.Sprintf("shards=%d/devices=%d", n, m), func(t *testing.T) {
				t.Parallel()
				db, err := Open(Options{
					Devices:     ramDevices(t, m, 1<<15),
					Shards:      n,
					BufferPages: 1024,
				})
				if err != nil {
					t.Fatalf("open %d×%d: %v", n, m, err)
				}
				defer db.Close()
				ops := 1500
				if testing.Short() {
					ops = 400
				}
				model := runShardedOps(t, db, n, int64(8800+n*10+m), ops)
				st := db.Stats()
				if st.Shards != n || st.Devices != m {
					t.Fatalf("Stats topology = %d×%d, want %d×%d", st.Shards, st.Devices, n, m)
				}
				if st.NumKeys != uint64(len(model)) {
					t.Fatalf("Stats.NumKeys = %d, oracle %d", st.NumKeys, len(model))
				}
			})
		}
	}
}

// TestMultiDeviceReopen verifies the N×M layout round-trips: keys
// written across shards on several devices survive Close and reopen
// with the same device list, with journaling on.
func TestMultiDeviceReopen(t *testing.T) {
	devs := ramDevices(t, 2, 1<<15)
	open := func() *DB {
		db, err := Open(Options{Devices: devs, Shards: 4, Journal: true})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		return db
	}
	db := open()
	const n = 400
	for k := uint64(1); k <= n; k++ {
		if err := db.Put(k, []byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	db = open()
	defer db.Close()
	for k := uint64(1); k <= n; k++ {
		v, ok, err := db.Get(k)
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", k) {
			t.Fatalf("get %d after reopen: %q/%v/%v", k, v, ok, err)
		}
	}
	if st := db.Stats(); st.NumKeys != n || st.Shards != 4 || st.Devices != 2 {
		t.Fatalf("stats after reopen: %+v", st)
	}
}

// TestMultiDeviceTopologyMismatch verifies the superblock-stamped device
// identity: a set of devices formatted as one topology refuses to open
// as another — fewer devices, more devices, or the same devices in a
// different order — each with an error naming the device mismatch.
func TestMultiDeviceTopologyMismatch(t *testing.T) {
	devs := ramDevices(t, 2, 1<<15)
	db, err := Open(Options{Devices: devs, Shards: 4})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	db.Put(7, []byte("x"))
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	refuse := func(label string, opts Options) {
		t.Helper()
		if db, err := Open(opts); err == nil {
			db.Close()
			t.Fatalf("%s succeeded", label)
		} else if !strings.Contains(err.Error(), "device") {
			t.Fatalf("%s error does not mention the device topology: %v", label, err)
		}
	}
	// Fewer devices than formatted: the first shard's superblock says
	// "device 0 of 2", a single-device open expects 0 of 0.
	refuse("reopening a 4×2 layout on one device", Options{Devices: devs[:1], Shards: 4})
	refuse("reopening a 4×2 layout on one device (classic path)", Options{Device: devs[0], Shards: 4})
	// More devices than formatted.
	extra := ramDevices(t, 1, 1<<15)
	refuse("reopening a 4×2 layout on three devices", Options{Devices: []nvme.Device{devs[0], devs[1], extra[0]}, Shards: 4})
	// Same devices, swapped order: the partition that should hold shard 0
	// (placed on device 0) actually holds a shard stamped device 1.
	refuse("reopening a 4×2 layout with devices swapped", Options{Devices: []nvme.Device{devs[1], devs[0]}, Shards: 4})
	// Same devices, different placement: shard-to-device assignment moved.
	refuse("reopening a 4×2 layout with a different placement", Options{Devices: devs, Shards: 4, Placement: []int{0, 0, 1, 1}})

	// The matching topology still opens, data intact.
	db, err = Open(Options{Devices: devs, Shards: 4})
	if err != nil {
		t.Fatalf("matching reopen: %v", err)
	}
	defer db.Close()
	if v, ok, err := db.Get(7); err != nil || !ok || string(v) != "x" {
		t.Fatalf("get after matching reopen: %q/%v/%v", v, ok, err)
	}
}

// TestMultiDeviceOptionsValidation pins the Open-time refusals: both
// device fields set, more devices than shards, a device left without a
// shard, out-of-range or short placements, and a too-small device.
func TestMultiDeviceOptionsValidation(t *testing.T) {
	devs := ramDevices(t, 2, 1<<15)
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"both device fields", Options{Device: devs[0], Devices: devs, Shards: 2}, "not both"},
		{"more devices than shards", Options{Devices: devs, Shards: 1}, "every device"},
		{"placement starves a device", Options{Devices: devs, Shards: 2, Placement: []int{0, 0}}, "hosts no shards"},
		{"placement out of range", Options{Devices: devs, Shards: 2, Placement: []int{0, 5}}, "placed on device"},
		{"placement too short", Options{Devices: devs, Shards: 4, Placement: []int{0, 1}}, "placement"},
		{"single-device placement out of range", Options{Devices: devs[:1], Shards: 2, Placement: []int{0, 1}}, "have 1 device"},
	}
	for _, tc := range cases {
		if db, err := Open(tc.opts); err == nil {
			db.Close()
			t.Errorf("%s: open succeeded", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}

	// Too small: each of 4 shards on one 2048-block device gets 512
	// blocks, under the per-shard floor.
	small := ramDevices(t, 2, 2048)
	if db, err := Open(Options{Devices: small, Shards: 8}); err == nil {
		db.Close()
		t.Error("8 shards across two 2048-block devices succeeded")
	} else if !strings.Contains(err.Error(), "too small") {
		t.Errorf("too-small error: %v", err)
	}
}

// TestMultiDeviceExplicitPlacement verifies a non-default placement
// works end to end and round-trips: shards packed onto devices
// explicitly, reopened with the same placement.
func TestMultiDeviceExplicitPlacement(t *testing.T) {
	devs := ramDevices(t, 2, 1<<15)
	place := []int{0, 0, 0, 1} // three shards on device 0, one on device 1
	db, err := Open(Options{Devices: devs, Shards: 4, Placement: place})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for k := uint64(1); k <= 300; k++ {
		if err := db.Put(k, []byte{byte(k)}); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	db, err = Open(Options{Devices: devs, Shards: 4, Placement: place})
	if err != nil {
		t.Fatalf("reopen with explicit placement: %v", err)
	}
	defer db.Close()
	for k := uint64(1); k <= 300; k++ {
		v, ok, err := db.Get(k)
		if err != nil || !ok || !bytes.Equal(v, []byte{byte(k)}) {
			t.Fatalf("get %d: %q/%v/%v", k, v, ok, err)
		}
	}
}

// TestMultiDeviceRaceHammer hammers the largest tested topology — 8
// shards over 4 devices with AdmissionWeighting and ConcurrentReads on
// — from many goroutines with Close racing the tail. Run under -race.
// Every handle must resolve with nil or ErrClosed.
func TestMultiDeviceRaceHammer(t *testing.T) {
	db, err := Open(Options{
		Devices:            ramDevices(t, 4, 1<<15),
		Shards:             8,
		AdmissionWeighting: true,
		ConcurrentReads:    true,
		Trace:              true,
		TraceEvents:        4096,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const (
		workers = 8
		opsEach = 250
	)
	var resolved atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*37 + 5))
			for i := 0; i < opsEach; i++ {
				key := 1 + uint64(rng.Intn(512))
				var h *Handle
				var err error
				switch rng.Intn(12) {
				case 0, 1, 2:
					h, err = db.PutAsync(key, []byte(fmt.Sprintf("w%d-%d", w, i)))
				case 3, 4, 5:
					h, err = db.GetAsync(key)
				case 6:
					h, err = db.ScanAsync(key, key+64, 8)
				case 7:
					h, err = db.SyncAsync()
				case 8:
					// Synchronous Get exercises the optimistic read path's
					// throttle bypass directly.
					if _, _, gerr := db.Get(key); gerr != nil && !errors.Is(gerr, ErrClosed) {
						t.Errorf("get: %v", gerr)
					}
					resolved.Add(1)
					continue
				case 9:
					b := db.NewBatch()
					for j := 0; j < 8; j++ {
						b.Put(key+uint64(j), []byte("b"))
					}
					if cerr := b.TryCommit(); cerr != nil {
						if !errors.Is(cerr, ErrBacklog) && !errors.Is(cerr, ErrClosed) {
							t.Errorf("trycommit: %v", cerr)
						}
						b.Release()
						resolved.Add(1)
						continue
					}
					if werr := b.Wait(); werr != nil && !errors.Is(werr, ErrClosed) {
						t.Errorf("batch wait: %v", werr)
					}
					b.Release()
					resolved.Add(1)
					continue
				case 10:
					db.Stats()
					resolved.Add(1)
					continue
				default:
					if rng.Intn(2) == 0 {
						db.Metrics()
					} else {
						db.WriteTrace(io.Discard)
					}
					resolved.Add(1)
					continue
				}
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("admit: %v", err)
					}
					resolved.Add(1)
					continue
				}
				if werr := h.Wait(); werr != nil && !errors.Is(werr, ErrClosed) {
					t.Errorf("handle resolved with unexpected error: %v", werr)
				}
				h.Release()
				resolved.Add(1)
			}
		}(w)
	}
	closeErr := make(chan error, 1)
	go func() { closeErr <- db.Close() }()
	wg.Wait()
	if err := <-closeErr; err != nil {
		t.Fatalf("close: %v", err)
	}
	if got, want := resolved.Load(), uint64(workers*opsEach); got != want {
		t.Fatalf("%d of %d operations resolved", got, want)
	}
}

// FuzzMultiDeviceOps mirrors FuzzShardedOps over a 4-shard × 2-device
// topology: a byte stream becomes a sequence of point ops and scans
// checked against a flat map oracle, with a final close/reopen cycle
// asserting the cross-device layout persisted.
func FuzzMultiDeviceOps(f *testing.F) {
	f.Add([]byte{0, 0, 1, 5, 1, 0, 1, 5, 2, 0, 1, 0})
	f.Add([]byte{4, 1, 0, 3, 0, 1, 0, 7, 3, 0, 0, 0, 2, 1, 0, 0})
	f.Add(bytes.Repeat([]byte{0, 2, 3, 9, 1, 2, 3, 0, 4, 0, 200, 3}, 30))
	f.Fuzz(func(t *testing.T, data []byte) {
		const chunk = 4
		ops := len(data) / chunk
		if ops == 0 {
			t.Skip()
		}
		if ops > 400 {
			ops = 400
		}
		devs := make([]nvme.Device, 2)
		for i := range devs {
			d := nvme.NewRAMDevice(nvme.RAMConfig{NumBlocks: 1 << 14})
			defer d.Close()
			devs[i] = d
		}
		db, err := Open(Options{Devices: devs, Shards: 4, BufferPages: 512})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		model := map[uint64][]byte{}
		for i := 0; i < ops; i++ {
			b := data[i*chunk : (i+1)*chunk]
			key := 1 + uint64(b[1])%200 + uint64(b[2])%50*7
			val := []byte{b[3], byte(key), byte(i)}
			switch b[0] % 6 {
			case 0, 1: // put
				if err := db.Put(key, val); err != nil {
					t.Fatalf("op %d: put %d: %v", i, key, err)
				}
				model[key] = append([]byte(nil), val...)
			case 2: // delete
				_, existed := model[key]
				found, err := db.Delete(key)
				if err != nil {
					t.Fatalf("op %d: delete %d: %v", i, key, err)
				}
				if found != existed {
					t.Fatalf("op %d: delete %d found=%v, model %v", i, key, found, existed)
				}
				delete(model, key)
			case 3: // get
				want, existed := model[key]
				v, found, err := db.Get(key)
				if err != nil {
					t.Fatalf("op %d: get %d: %v", i, key, err)
				}
				if found != existed || (existed && !bytes.Equal(v, want)) {
					t.Fatalf("op %d: get %d = %q/%v, model %q/%v", i, key, v, found, want, existed)
				}
			case 4: // update
				_, existed := model[key]
				found, err := db.Update(key, val)
				if err != nil {
					t.Fatalf("op %d: update %d: %v", i, key, err)
				}
				if found != existed {
					t.Fatalf("op %d: update %d found=%v, model %v", i, key, found, existed)
				}
				if existed {
					model[key] = append([]byte(nil), val...)
				}
			default: // scan
				lo := uint64(b[1])
				hi := lo + uint64(b[3])*3
				limit := int(b[2]) % 5 // 0 = all
				pairs, err := db.Scan(lo, hi, limit)
				if err != nil {
					t.Fatalf("op %d: scan [%d,%d] limit %d: %v", i, lo, hi, limit, err)
				}
				checkScan(t, fmt.Sprintf("op=%d scan[%d,%d]l%d", i, lo, hi, limit),
					pairs, oracleScan(model, lo, hi, limit))
			}
		}
		if err := db.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		db, err = Open(Options{Devices: devs, Shards: 4, BufferPages: 512})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer db.Close()
		pairs, err := db.Scan(0, ^uint64(0), 0)
		if err != nil {
			t.Fatalf("final scan: %v", err)
		}
		checkScan(t, "after reopen", pairs, oracleScan(model, 0, ^uint64(0), 0))
	})
}
