package patree

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/patree/patree/internal/core"
	"github.com/patree/patree/internal/nvme"
)

// shardedDB opens a DB over a fresh RAM device with the given shard
// count. The device is owned by the DB and released on Close.
func shardedDB(t *testing.T, shards int) *DB {
	t.Helper()
	db, err := Open(Options{DeviceBlocks: 1 << 16, Shards: shards, BufferPages: 1024})
	if err != nil {
		t.Fatalf("open %d shards: %v", shards, err)
	}
	return db
}

// oracleScan is the flat-map reference for Scan: ascending pairs with
// keys in [lo, hi], at most limit (<= 0 = all).
func oracleScan(model map[uint64][]byte, lo, hi uint64, limit int) []KV {
	keys := make([]uint64, 0, len(model))
	for k := range model {
		if k >= lo && k <= hi {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if limit > 0 && len(keys) > limit {
		keys = keys[:limit]
	}
	out := make([]KV, len(keys))
	for i, k := range keys {
		out[i] = KV{Key: k, Value: model[k]}
	}
	return out
}

func checkScan(t *testing.T, label string, got, want []KV) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: scan returned %d pairs, oracle %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Key != want[i].Key || !bytes.Equal(got[i].Value, want[i].Value) {
			t.Fatalf("%s: scan[%d] = (%d, %q), oracle (%d, %q)",
				label, i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
		}
	}
}

// runShardedOps drives a randomized stream of point ops, scans and
// batches against one DB and a flat map oracle. Every failure message
// carries the seed and shard count that reproduce it.
func runShardedOps(t *testing.T, db *DB, shards int, seed int64, ops int) map[uint64][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	model := map[uint64][]byte{}
	const space = 1024
	label := func(i int) string { return fmt.Sprintf("seed=%d shards=%d op=%d", seed, shards, i) }
	val := func(i int) []byte { return []byte(fmt.Sprintf("s%d.%d", seed, i)) }
	for i := 0; i < ops; i++ {
		key := 1 + uint64(rng.Intn(space))
		switch rng.Intn(10) {
		case 0, 1, 2:
			v := val(i)
			if err := db.Put(key, v); err != nil {
				t.Fatalf("%s: put %d: %v", label(i), key, err)
			}
			model[key] = v
		case 3:
			_, existed := model[key]
			v := val(i)
			found, err := db.Update(key, v)
			if err != nil {
				t.Fatalf("%s: update %d: %v", label(i), key, err)
			}
			if found != existed {
				t.Fatalf("%s: update %d found=%v, oracle %v", label(i), key, found, existed)
			}
			if existed {
				model[key] = v
			}
		case 4:
			_, existed := model[key]
			found, err := db.Delete(key)
			if err != nil {
				t.Fatalf("%s: delete %d: %v", label(i), key, err)
			}
			if found != existed {
				t.Fatalf("%s: delete %d found=%v, oracle %v", label(i), key, found, existed)
			}
			delete(model, key)
		case 5, 6:
			want, existed := model[key]
			v, found, err := db.Get(key)
			if err != nil {
				t.Fatalf("%s: get %d: %v", label(i), key, err)
			}
			if found != existed || (existed && !bytes.Equal(v, want)) {
				t.Fatalf("%s: get %d = %q/%v, oracle %q/%v", label(i), key, v, found, want, existed)
			}
		case 7, 8:
			lo := uint64(rng.Intn(space))
			hi := lo + uint64(rng.Intn(space/2))
			limit := rng.Intn(12) - 1 // occasionally negative (= all)
			pairs, err := db.Scan(lo, hi, limit)
			if err != nil {
				t.Fatalf("%s: scan [%d,%d] limit %d: %v", label(i), lo, hi, limit, err)
			}
			checkScan(t, fmt.Sprintf("%s scan[%d,%d]l%d", label(i), lo, hi, limit),
				pairs, oracleScan(model, lo, hi, limit))
		default:
			// A batch of mixed point ops. Per-key ordering is preserved
			// because one key always lands on one shard in staging order,
			// so the sequential model stays exact.
			b := db.NewBatch()
			type staged struct {
				idx  int
				kind int
				key  uint64
				val  []byte
				// expectation snapshot at staging time
				want    []byte
				existed bool
			}
			var st []staged
			shadow := map[uint64][]byte{}
			for k, v := range model {
				shadow[k] = v
			}
			n := 1 + rng.Intn(24)
			for j := 0; j < n; j++ {
				k := 1 + uint64(rng.Intn(space))
				kind := rng.Intn(4)
				s := staged{kind: kind, key: k}
				switch kind {
				case 0:
					s.val = val(i*1000 + j)
					s.idx = b.Put(k, s.val)
					shadow[k] = s.val
				case 1:
					s.want, s.existed = shadow[k]
					s.idx = b.Get(k)
				case 2:
					_, s.existed = shadow[k]
					s.idx = b.Delete(k)
					delete(shadow, k)
				default:
					s.val = val(i*1000 + j)
					_, s.existed = shadow[k]
					s.idx = b.Update(k, s.val)
					if s.existed {
						shadow[k] = s.val
					}
				}
				st = append(st, s)
			}
			if rng.Intn(2) == 0 {
				for {
					err := b.TryCommit()
					if err == nil {
						break
					}
					if !errors.Is(err, ErrBacklog) {
						t.Fatalf("%s: trycommit: %v", label(i), err)
					}
				}
			} else if err := b.Commit(); err != nil {
				t.Fatalf("%s: batch commit: %v", label(i), err)
			}
			if err := b.Wait(); err != nil {
				t.Fatalf("%s: batch wait: %v", label(i), err)
			}
			for _, s := range st {
				switch s.kind {
				case 1:
					if b.Found(s.idx) != s.existed || (s.existed && !bytes.Equal(b.Value(s.idx), s.want)) {
						t.Fatalf("%s: batch get %d = %q/%v, oracle %q/%v",
							label(i), s.key, b.Value(s.idx), b.Found(s.idx), s.want, s.existed)
					}
				case 2, 3:
					if b.Found(s.idx) != s.existed {
						t.Fatalf("%s: batch op kind %d key %d found=%v, oracle %v",
							label(i), s.kind, s.key, b.Found(s.idx), s.existed)
					}
				}
			}
			b.Release()
			for k, v := range shadow {
				model[k] = v
			}
			for k := range model {
				if _, ok := shadow[k]; !ok {
					delete(model, k)
				}
			}
		}
	}
	// Full-range scan: the merged cross-shard view must equal the model.
	pairs, err := db.Scan(0, ^uint64(0), 0)
	if err != nil {
		t.Fatalf("seed=%d shards=%d: final scan: %v", seed, shards, err)
	}
	checkScan(t, fmt.Sprintf("seed=%d shards=%d final", seed, shards),
		pairs, oracleScan(model, 0, ^uint64(0), 0))
	return model
}

// TestShardedPropertyOps runs the randomized oracle stream over 1, 2, 4
// and 8 shards: the public surface must be indistinguishable from the
// single-worker tree at every shard count.
func TestShardedPropertyOps(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		n := n
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			t.Parallel()
			db := shardedDB(t, n)
			defer db.Close()
			ops := 2500
			if testing.Short() {
				ops = 600
			}
			model := runShardedOps(t, db, n, int64(7700+n), ops)
			st := db.Stats()
			if st.Shards != n {
				t.Fatalf("Stats.Shards = %d, want %d", st.Shards, n)
			}
			if st.NumKeys != uint64(len(model)) {
				t.Fatalf("shards=%d: Stats.NumKeys = %d, oracle %d", n, st.NumKeys, len(model))
			}
		})
	}
}

// TestScanLimitSingleShard pins the documented limit semantics on the
// classic single-worker path: limit 0 means all, limit 1 returns the
// first pair, and an empty range returns nothing (not everything).
func TestScanLimitSingleShard(t *testing.T) {
	db := shardedDB(t, 1)
	defer db.Close()
	for k := uint64(10); k <= 50; k += 10 {
		if err := db.Put(k, []byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	pairs, err := db.Scan(0, 100, 0)
	if err != nil || len(pairs) != 5 {
		t.Fatalf("limit 0: %d pairs, err %v; want all 5", len(pairs), err)
	}
	pairs, err = db.Scan(0, 100, 1)
	if err != nil || len(pairs) != 1 || pairs[0].Key != 10 {
		t.Fatalf("limit 1: %+v, err %v; want [{10 v10}]", pairs, err)
	}
	pairs, err = db.Scan(11, 19, 0)
	if err != nil || len(pairs) != 0 {
		t.Fatalf("empty range limit 0: %d pairs, err %v; want none", len(pairs), err)
	}
	pairs, err = db.Scan(60, 40, 5)
	if err != nil || len(pairs) != 0 {
		t.Fatalf("inverted range: %d pairs, err %v; want none", len(pairs), err)
	}
}

// TestScanLimitSharded pins the same semantics through the scatter-
// gather merge: the global limit applies to the merged stream, so the
// result is the exact ascending prefix a single tree would return.
func TestScanLimitSharded(t *testing.T) {
	db := shardedDB(t, 4)
	defer db.Close()
	for k := uint64(1); k <= 64; k++ {
		if err := db.Put(k, []byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	pairs, err := db.Scan(0, ^uint64(0), 0)
	if err != nil || len(pairs) != 64 {
		t.Fatalf("limit 0: %d pairs, err %v; want 64", len(pairs), err)
	}
	for _, limit := range []int{1, 3, 17, 64, 100} {
		pairs, err := db.Scan(0, ^uint64(0), limit)
		if err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		want := limit
		if want > 64 {
			want = 64
		}
		if len(pairs) != want {
			t.Fatalf("limit %d: %d pairs, want %d", limit, len(pairs), want)
		}
		for i, p := range pairs {
			if p.Key != uint64(i+1) {
				t.Fatalf("limit %d: pair %d has key %d, want %d (merge must be globally ascending)",
					limit, i, p.Key, i+1)
			}
		}
	}
	if pairs, err = db.Scan(30, 20, 0); err != nil || len(pairs) != 0 {
		t.Fatalf("inverted range: %d pairs, err %v; want none", len(pairs), err)
	}
}

// TestShardedReopen verifies the sharded on-device layout round-trips:
// keys written across shards survive Close and reopen with the same
// shard count, on the same device.
func TestShardedReopen(t *testing.T) {
	dev := nvme.NewRAMDevice(nvme.RAMConfig{NumBlocks: 1 << 16})
	defer dev.Close()
	db, err := Open(Options{Device: dev, Shards: 4, Journal: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const n = 500
	for k := uint64(1); k <= n; k++ {
		if err := db.Put(k, []byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	db, err = Open(Options{Device: dev, Shards: 4, Journal: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db.Close()
	for k := uint64(1); k <= n; k++ {
		v, ok, err := db.Get(k)
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", k) {
			t.Fatalf("get %d after reopen: %q/%v/%v", k, v, ok, err)
		}
	}
	if st := db.Stats(); st.NumKeys != n || st.Shards != 4 {
		t.Fatalf("stats after reopen: %+v", st)
	}
}

// TestShardCountMismatch verifies a device formatted under one shard
// layout refuses to open under another, in both directions.
func TestShardCountMismatch(t *testing.T) {
	dev := nvme.NewRAMDevice(nvme.RAMConfig{NumBlocks: 1 << 16})
	defer dev.Close()
	db, err := Open(Options{Device: dev, Shards: 4})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	db.Put(7, []byte("x"))
	db.Close()

	for _, wrong := range []int{1, 2, 8} {
		if db, err = Open(Options{Device: dev, Shards: wrong}); err == nil {
			db.Close()
			t.Fatalf("reopening a 4-shard device with %d shards succeeded", wrong)
		} else if !strings.Contains(err.Error(), "shard") {
			t.Fatalf("mismatch error does not mention shards: %v", err)
		}
	}
	// The matching count still opens, data intact.
	db, err = Open(Options{Device: dev, Shards: 4})
	if err != nil {
		t.Fatalf("matching reopen: %v", err)
	}
	defer db.Close()
	if v, ok, err := db.Get(7); err != nil || !ok || string(v) != "x" {
		t.Fatalf("get after matching reopen: %q/%v/%v", v, ok, err)
	}

	// And a single-shard device refuses a sharded open.
	dev2 := nvme.NewRAMDevice(nvme.RAMConfig{NumBlocks: 1 << 16})
	defer dev2.Close()
	db2, err := Open(Options{Device: dev2})
	if err != nil {
		t.Fatalf("open flat: %v", err)
	}
	db2.Close()
	if db2, err = Open(Options{Device: dev2, Shards: 4}); err == nil {
		db2.Close()
		t.Fatal("reopening a single-worker device with 4 shards succeeded")
	}
}

// TestShardedTooSmall pins the partition floor: a device too small for
// the requested shard count is refused with a descriptive error.
func TestShardedTooSmall(t *testing.T) {
	dev := nvme.NewRAMDevice(nvme.RAMConfig{NumBlocks: 2048})
	defer dev.Close()
	if db, err := Open(Options{Device: dev, Shards: 16}); err == nil {
		db.Close()
		t.Fatal("16 shards on a 2048-block device succeeded")
	} else if !strings.Contains(err.Error(), "too small") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestShardedRaceHammer hammers every public entry point — async point
// ops, scatter-gather scans, syncs, batches, Stats, Metrics, WriteTrace
// — from many goroutines across 4 shards, with Close racing the tail.
// Run under -race. Every handle must resolve with nil or ErrClosed.
func TestShardedRaceHammer(t *testing.T) {
	db, err := Open(Options{DeviceBlocks: 1 << 16, Shards: 4, Trace: true, TraceEvents: 4096})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const (
		workers = 8
		opsEach = 250
	)
	var resolved atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 31))
			for i := 0; i < opsEach; i++ {
				key := 1 + uint64(rng.Intn(512))
				var h *Handle
				var err error
				switch rng.Intn(10) {
				case 0, 1, 2:
					h, err = db.PutAsync(key, []byte(fmt.Sprintf("w%d-%d", w, i)))
				case 3, 4, 5:
					h, err = db.GetAsync(key)
				case 6:
					h, err = db.ScanAsync(key, key+64, 8)
				case 7:
					h, err = db.SyncAsync()
				case 8:
					db.Stats()
					resolved.Add(1)
					continue
				default:
					if rng.Intn(2) == 0 {
						db.Metrics()
					} else {
						db.WriteTrace(io.Discard)
					}
					resolved.Add(1)
					continue
				}
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("admit: %v", err)
					}
					resolved.Add(1)
					continue
				}
				if werr := h.Wait(); werr != nil && !errors.Is(werr, ErrClosed) {
					t.Errorf("handle resolved with unexpected error: %v", werr)
				}
				h.Release()
				resolved.Add(1)
			}
		}(w)
	}
	closeErr := make(chan error, 1)
	go func() { closeErr <- db.Close() }()
	wg.Wait()
	if err := <-closeErr; err != nil {
		t.Fatalf("close: %v", err)
	}
	if got, want := resolved.Load(), uint64(workers*opsEach); got != want {
		t.Fatalf("%d of %d operations resolved", got, want)
	}
}

// TestShardedTryCommitAllOrNothing forces one shard's sub-batch past
// its ring capacity: TryCommit must return ErrBacklog having admitted
// nothing anywhere, and the batch must stay retryable via Commit.
func TestShardedTryCommitAllOrNothing(t *testing.T) {
	db, err := Open(Options{DeviceBlocks: 1 << 16, Shards: 4, InboxDepth: 16})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	// Collect keys that all route to shard 0, so its sub-batch alone
	// overflows the 16-slot ring while other shards' stay tiny.
	var hot []uint64
	var cold uint64
	for k := uint64(1); len(hot) < 64 || cold == 0; k++ {
		if core.ShardOf(k, 4) == 0 {
			hot = append(hot, k)
		} else if cold == 0 {
			cold = k
		}
	}
	b := db.NewBatch()
	for _, k := range hot {
		b.Put(k, []byte("h"))
	}
	ci := b.Get(cold)
	if err := b.TryCommit(); !errors.Is(err, ErrBacklog) {
		t.Fatalf("TryCommit with an oversized sub-batch: %v, want ErrBacklog", err)
	}
	// Nothing was admitted: the cold shard must not know the key yet and
	// the batch must still commit in full through the blocking path.
	if _, ok, err := db.Get(hot[0]); err != nil || ok {
		t.Fatalf("key leaked from an aborted TryCommit: ok=%v err=%v", ok, err)
	}
	if err := b.Commit(); err != nil {
		t.Fatalf("blocking commit after ErrBacklog: %v", err)
	}
	if err := b.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if b.Found(ci) {
		t.Fatal("cold get found a key that was never put")
	}
	b.Release()
	for _, k := range hot {
		if _, ok, err := db.Get(k); err != nil || !ok {
			t.Fatalf("key %d missing after commit: ok=%v err=%v", k, ok, err)
		}
	}
}

// FuzzShardedOps mirrors internal/fault's FuzzTreeOps through the
// public API over a 4-shard DB: a byte stream becomes a sequence of
// point ops and scans checked against a flat map oracle, with a final
// close/reopen cycle asserting the sharded layout persisted.
func FuzzShardedOps(f *testing.F) {
	f.Add([]byte{0, 0, 1, 5, 1, 0, 1, 5, 2, 0, 1, 0})
	f.Add([]byte{4, 1, 0, 3, 0, 1, 0, 7, 3, 0, 0, 0, 2, 1, 0, 0})
	f.Add(bytes.Repeat([]byte{0, 2, 3, 9, 1, 2, 3, 0, 4, 0, 200, 3}, 30))
	f.Fuzz(func(t *testing.T, data []byte) {
		const chunk = 4
		ops := len(data) / chunk
		if ops == 0 {
			t.Skip()
		}
		if ops > 400 {
			ops = 400
		}
		dev := nvme.NewRAMDevice(nvme.RAMConfig{NumBlocks: 1 << 15})
		defer dev.Close()
		db, err := Open(Options{Device: dev, Shards: 4, BufferPages: 512})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		model := map[uint64][]byte{}
		for i := 0; i < ops; i++ {
			b := data[i*chunk : (i+1)*chunk]
			key := 1 + uint64(b[1])%200 + uint64(b[2])%50*7
			val := []byte{b[3], byte(key), byte(i)}
			switch b[0] % 6 {
			case 0, 1: // put
				if err := db.Put(key, val); err != nil {
					t.Fatalf("op %d: put %d: %v", i, key, err)
				}
				model[key] = append([]byte(nil), val...)
			case 2: // delete
				_, existed := model[key]
				found, err := db.Delete(key)
				if err != nil {
					t.Fatalf("op %d: delete %d: %v", i, key, err)
				}
				if found != existed {
					t.Fatalf("op %d: delete %d found=%v, model %v", i, key, found, existed)
				}
				delete(model, key)
			case 3: // get
				want, existed := model[key]
				v, found, err := db.Get(key)
				if err != nil {
					t.Fatalf("op %d: get %d: %v", i, key, err)
				}
				if found != existed || (existed && !bytes.Equal(v, want)) {
					t.Fatalf("op %d: get %d = %q/%v, model %q/%v", i, key, v, found, want, existed)
				}
			case 4: // update
				_, existed := model[key]
				found, err := db.Update(key, val)
				if err != nil {
					t.Fatalf("op %d: update %d: %v", i, key, err)
				}
				if found != existed {
					t.Fatalf("op %d: update %d found=%v, model %v", i, key, found, existed)
				}
				if existed {
					model[key] = append([]byte(nil), val...)
				}
			default: // scan
				lo := uint64(b[1])
				hi := lo + uint64(b[3])*3
				limit := int(b[2]) % 5 // 0 = all
				pairs, err := db.Scan(lo, hi, limit)
				if err != nil {
					t.Fatalf("op %d: scan [%d,%d] limit %d: %v", i, lo, hi, limit, err)
				}
				checkScan(t, fmt.Sprintf("op=%d scan[%d,%d]l%d", i, lo, hi, limit),
					pairs, oracleScan(model, lo, hi, limit))
			}
		}
		if err := db.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		db, err = Open(Options{Device: dev, Shards: 4, BufferPages: 512})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer db.Close()
		pairs, err := db.Scan(0, ^uint64(0), 0)
		if err != nil {
			t.Fatalf("final scan: %v", err)
		}
		checkScan(t, "after reopen", pairs, oracleScan(model, 0, ^uint64(0), 0))
	})
}

// TestShardedGetAllocs is the alloc guard behind BenchmarkShardedGet:
// routing a cached Get through the shard table must not add admission-
// side allocations over the single-worker budget.
func TestShardedGetAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counting is slow")
	}
	db := shardedDB(t, 4)
	defer db.Close()
	for k := uint64(1); k <= 512; k++ {
		if err := db.Put(k, []byte("v")); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	key := uint64(0)
	got := testing.AllocsPerRun(2000, func() {
		key = key%512 + 1
		if _, ok, err := db.Get(key); !ok || err != nil {
			t.Fatalf("Get(%d) = %v %v", key, ok, err)
		}
	})
	t.Logf("sharded cached Get: %.2f allocs/op", got)
	if got > 2 {
		t.Errorf("sharded cached Get allocates %.2f per op, budget 2", got)
	}
}

// BenchmarkShardedGet measures point-lookup throughput against 1 and 4
// shards over the RAM device (allocations reported for the CI guard).
func BenchmarkShardedGet(b *testing.B) {
	for _, n := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			db, err := Open(Options{DeviceBlocks: 1 << 16, Shards: n, BufferPages: 4096})
			if err != nil {
				b.Fatalf("open: %v", err)
			}
			defer db.Close()
			const keys = 4096
			for k := uint64(1); k <= keys; k++ {
				if err := db.Put(k, []byte("benchvalue")); err != nil {
					b.Fatalf("put: %v", err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			key := uint64(0)
			for i := 0; i < b.N; i++ {
				key = key%keys + 1
				if _, ok, err := db.Get(key); !ok || err != nil {
					b.Fatalf("get %d: %v %v", key, ok, err)
				}
			}
		})
	}
}
