package patree

// Store is the operation surface shared by every PA-Tree access path:
// the embedded engine (*DB) and the network client (client.Conn)
// implement it, so code written against Store runs unchanged whether
// the tree lives in-process or behind a server. The semantics are those
// documented on *DB; implementation-specific behavior (what "admission
// blocks" means over a network, for instance) is documented on the
// respective implementation.
//
// The async variants return this package's *Handle future and NewBatch
// returns this package's *Batch, for both implementations: results,
// pooling, Wait/WaitContext and accessor semantics are identical, which
// is what makes the two interchangeable. Non-embedded implementations
// mint those types through NewRemoteHandle and NewRemoteBatch.
//
// How a read is served is likewise an implementation detail: a *DB
// opened with Options.ConcurrentReads may answer Get/Scan (and their
// Async/Context forms) on the calling goroutine instead of through the
// pipeline, with identical results.
type Store interface {
	// Put inserts or replaces key.
	Put(key uint64, value []byte) error
	// Get returns the value stored under key.
	Get(key uint64) ([]byte, bool, error)
	// Update replaces key only if present, reporting whether it was.
	Update(key uint64, value []byte) (bool, error)
	// Delete removes key, reporting whether it was present.
	Delete(key uint64) (bool, error)
	// Scan returns pairs with keys in [lo, hi] ascending, at most limit
	// (<= 0 = all).
	Scan(lo, hi uint64, limit int) ([]KV, error)
	// Sync makes all acknowledged updates durable.
	Sync() error

	// PutAsync admits an insert-or-replace and returns its future.
	PutAsync(key uint64, value []byte) (*Handle, error)
	// GetAsync admits a point lookup and returns its future.
	GetAsync(key uint64) (*Handle, error)
	// UpdateAsync admits a replace-if-present and returns its future.
	UpdateAsync(key uint64, value []byte) (*Handle, error)
	// DeleteAsync admits a delete and returns its future.
	DeleteAsync(key uint64) (*Handle, error)
	// ScanAsync admits a range scan and returns its future.
	ScanAsync(lo, hi uint64, limit int) (*Handle, error)
	// SyncAsync admits a sync and returns its future.
	SyncAsync() (*Handle, error)

	// NewBatch returns an empty batch bound to this store. Committing it
	// admits every staged operation as one transaction (TryCommit:
	// all-or-nothing, failing with ErrBacklog under backpressure).
	NewBatch() *Batch

	// Close shuts the store down. Operations admitted before Close
	// complete; later ones fail with ErrClosed.
	Close() error
}

// The embedded engine is a Store. (client.Conn asserts the same in its
// own package; the two are drop-in interchangeable.)
var _ Store = (*DB)(nil)
