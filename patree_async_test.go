package patree

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/patree/patree/internal/core"
)

func openTest(t testing.TB, opts Options) *DB {
	t.Helper()
	if opts.DeviceBlocks == 0 {
		opts.DeviceBlocks = 1 << 16
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestAsyncHandles(t *testing.T) {
	db := openTest(t, Options{})
	const n = 256
	handles := make([]*Handle, 0, n)
	for i := uint64(0); i < n; i++ {
		h, err := db.PutAsync(i, []byte(fmt.Sprintf("v%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		if err := h.Wait(); err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	h, err := db.GetAsync(17)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Found() || string(h.Value()) != "v17" {
		t.Fatalf("Get(17) = %q found=%v", h.Value(), h.Found())
	}
	v := h.Value()
	h.Release()
	if string(v) != "v17" { // results survive Release
		t.Fatalf("value mutated by Release: %q", v)
	}
	h, err = db.DeleteAsync(17)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Found() {
		t.Fatal("Delete(17) reported absent")
	}
	h.Release()
	if _, ok, _ := db.Get(17); ok {
		t.Fatal("key 17 still present after delete")
	}
}

func TestBatchHeterogeneous(t *testing.T) {
	db := openTest(t, Options{})
	for i := uint64(0); i < 100; i++ {
		if err := db.Put(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	b := db.NewBatch()
	iGet := b.Get(42)
	iMiss := b.Get(1000)
	iPut := b.Put(200, []byte("two hundred"))
	iDel := b.Delete(7)
	iScan := b.Scan(10, 19, 0)
	iUpd := b.Update(3000, []byte("nope"))
	if b.Len() != 6 {
		t.Fatalf("Len = %d, want 6", b.Len())
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Wait(); err != nil {
		t.Fatal(err)
	}
	if !b.Found(iGet) || !bytes.Equal(b.Value(iGet), []byte{42}) {
		t.Fatalf("batch get: %v %x", b.Found(iGet), b.Value(iGet))
	}
	if b.Found(iMiss) {
		t.Fatal("batch get of absent key reported found")
	}
	if b.Err(iPut) != nil || !b.Found(iDel) {
		t.Fatalf("put err %v, delete found %v", b.Err(iPut), b.Found(iDel))
	}
	if got := len(b.Pairs(iScan)); got != 10 {
		t.Fatalf("scan returned %d pairs, want 10", got)
	}
	if b.Found(iUpd) {
		t.Fatal("update of absent key reported found")
	}
	b.Release()

	// Post-batch state visible to the blocking API.
	if v, ok, _ := db.Get(200); !ok || string(v) != "two hundred" {
		t.Fatalf("Get(200) = %q %v", v, ok)
	}
	if _, ok, _ := db.Get(7); ok {
		t.Fatal("key 7 survived batch delete")
	}

	// A recycled batch starts empty.
	b2 := db.NewBatch()
	if b2.Len() != 0 {
		t.Fatalf("recycled batch has %d staged ops", b2.Len())
	}
	b2.Release()
}

func TestBatchTryCommitBacklog(t *testing.T) {
	db := openTest(t, Options{InboxDepth: 8})
	// A batch larger than the whole ring can never be admitted atomically.
	b := db.NewBatch()
	for i := uint64(0); i < 32; i++ {
		b.Put(i, []byte("x"))
	}
	if err := b.TryCommit(); !errors.Is(err, ErrBacklog) {
		t.Fatalf("TryCommit on oversized batch: %v, want ErrBacklog", err)
	}
	b.Release() // reclaims the never-admitted ops
	// Blocking Commit still works for a batch that fits.
	b = db.NewBatch()
	for i := uint64(0); i < 8; i++ {
		b.Put(i, []byte("y"))
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Wait(); err != nil {
		t.Fatal(err)
	}
	b.Release()
}

func TestContextVariants(t *testing.T) {
	db := openTest(t, Options{})
	ctx := context.Background()
	if err := db.PutContext(ctx, 1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := db.GetContext(ctx, 1); err != nil || !ok || string(v) != "one" {
		t.Fatalf("GetContext = %q %v %v", v, ok, err)
	}
	if ok, err := db.UpdateContext(ctx, 1, []byte("uno")); err != nil || !ok {
		t.Fatalf("UpdateContext = %v %v", ok, err)
	}
	if pairs, err := db.ScanContext(ctx, 0, 10, 0); err != nil || len(pairs) != 1 {
		t.Fatalf("ScanContext = %v %v", pairs, err)
	}
	if err := db.SyncContext(ctx); err != nil {
		t.Fatal(err)
	}
	if ok, err := db.DeleteContext(ctx, 1); err != nil || !ok {
		t.Fatalf("DeleteContext = %v %v", ok, err)
	}
	// An already-cancelled context fails fast without admitting.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, _, err := db.GetContext(cancelled, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("GetContext(cancelled) = %v", err)
	}
}

// TestHandleDetach drives the handle state machine through the
// cancellation race deterministically, playing the working thread's role
// by invoking the completion callback directly: cancellation first
// (detach, completion reclaims), then completion first (real result
// wins over cancellation).
func TestHandleDetach(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	// Detach: the op is still in flight when the context expires.
	h := acquireHandle()
	op := core.AcquireOp().InitNop()
	op.Done = h.doneFn
	if err := h.WaitContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("WaitContext = %v, want Canceled", err)
	}
	// The handle is detached; the late completion must reclaim it without
	// blocking (the channel send is skipped entirely).
	done := make(chan struct{})
	go func() { h.doneFn(op); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("completion of a detached handle blocked")
	}

	// Completion beats cancellation: the real result is reported.
	h = acquireHandle()
	op = core.AcquireOp().InitNop()
	op.Done = h.doneFn
	h.doneFn(op)
	if err := h.WaitContext(ctx); err != nil {
		t.Fatalf("WaitContext after completion = %v, want nil", err)
	}
	h.Release()
}

// TestCloseAdmitRace is the regression test for the Close/exec TOCTOU:
// operations racing Close must each either complete normally or fail
// with ErrClosed — never hang, and never surface core.ErrStopped.
func TestCloseAdmitRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		db := openTest(t, Options{})
		var wg sync.WaitGroup
		var closedSeen atomic.Int64
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; ; i++ {
					var err error
					switch i % 3 {
					case 0:
						err = db.Put(uint64(g*1000+i), []byte("p"))
					case 1:
						_, _, err = db.Get(uint64(g*1000 + i))
					default:
						var h *Handle
						h, err = db.GetAsync(uint64(g*1000 + i))
						if err == nil {
							err = h.Wait()
							h.Release()
						}
					}
					if err != nil {
						if !errors.Is(err, ErrClosed) {
							t.Errorf("op failed with %v, want ErrClosed", err)
						}
						closedSeen.Add(1)
						return
					}
				}
			}(g)
		}
		time.Sleep(time.Duration(round%5) * 100 * time.Microsecond)
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		if got := closedSeen.Load(); got != 8 {
			t.Fatalf("round %d: %d goroutines saw ErrClosed, want 8", round, got)
		}
		if err := db.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
		if err := db.Put(1, nil); !errors.Is(err, ErrClosed) {
			t.Fatalf("Put after Close: %v", err)
		}
		if _, err := db.PutAsync(1, nil); !errors.Is(err, ErrClosed) {
			t.Fatalf("PutAsync after Close: %v", err)
		}
		b := db.NewBatch()
		b.Put(1, nil)
		if err := b.Commit(); !errors.Is(err, ErrClosed) {
			t.Fatalf("Commit after Close: %v", err)
		}
		b.Release()
	}
}

// TestAsyncStress drives blocking, async and batch paths from many
// goroutines concurrently with a Close; meant to run under -race (the CI
// workflow always does).
func TestAsyncStress(t *testing.T) {
	db := openTest(t, Options{InboxDepth: 64})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rngKey := uint64(g)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rngKey = rngKey*6364136223846793005 + 1442695040888963407
				k := rngKey % 4096
				var err error
				switch g % 3 {
				case 0: // blocking mix
					if i%2 == 0 {
						err = db.Put(k, []byte("blk"))
					} else {
						_, _, err = db.Get(k)
					}
				case 1: // async window of 16
					hs := make([]*Handle, 0, 16)
					for j := 0; j < 16 && err == nil; j++ {
						var h *Handle
						if j%4 == 0 {
							h, err = db.PutAsync(k+uint64(j), []byte("as"))
						} else {
							h, err = db.GetAsync(k + uint64(j))
						}
						if err == nil {
							hs = append(hs, h)
						}
					}
					for _, h := range hs {
						if werr := h.Wait(); werr != nil && err == nil {
							err = werr
						}
						h.Release()
					}
				default: // batches
					b := db.NewBatch()
					for j := uint64(0); j < 24; j++ {
						if j%3 == 0 {
							b.Put(k+j, []byte("bat"))
						} else {
							b.Get(k + j)
						}
					}
					err = b.Commit()
					if err == nil {
						err = b.Wait()
					}
					b.Release()
				}
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("goroutine %d: %v", g, err)
					}
					return
				}
			}
		}(g)
	}
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAllocsPerOp guards the pooled hot path: a cached point lookup
// through the full public pipeline (pooled op + handle, ring admission,
// decode-free page search, recycled latches) must stay within 2
// allocations, and a pipeline no-op within 1. Allocation counting is
// process-wide, so the working thread's share is included.
func TestAllocsPerOp(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	db := openTest(t, Options{})
	for i := uint64(0); i < 512; i++ {
		if err := db.Put(i, []byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	// Warm pools and page cache.
	for i := uint64(0); i < 512; i++ {
		if _, ok, err := db.Get(i); !ok || err != nil {
			t.Fatalf("warm Get(%d) = %v %v", i, ok, err)
		}
	}
	key := uint64(0)
	got := testing.AllocsPerRun(2000, func() {
		key = (key + 1) % 512
		if _, ok, err := db.Get(key); !ok || err != nil {
			t.Fatalf("Get(%d) = %v %v", key, ok, err)
		}
	})
	t.Logf("cached Get: %.2f allocs/op", got)
	if got > 2 {
		t.Errorf("cached Get allocates %.2f per op, budget 2", got)
	}
	nop := testing.AllocsPerRun(2000, func() {
		if _, err := db.exec(db.shards[0], core.AcquireOp().InitNop()); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("pipeline no-op: %.2f allocs/op", nop)
	if nop > 1 {
		t.Errorf("pipeline no-op allocates %.2f per op, budget 1", nop)
	}
}
