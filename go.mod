module github.com/patree/patree

go 1.22
