package patree

// One benchmark per table and figure of the paper's evaluation section.
// Each bench regenerates its table/figure at a reduced scale (see
// internal/harness.BenchScale) and reports the headline numbers as custom
// metrics; `cmd/paexp -run all -full` produces the full-scale versions.
//
// These are throughput experiments on a virtual clock: b.N is not the
// unit of work (one iteration = one full experiment), so benches report
// domain metrics (Kops/s, µs latency) rather than ns/op.

import (
	"testing"
	"time"

	"github.com/patree/patree/internal/harness"
)

func benchScale() harness.Scale {
	s := harness.BenchScale()
	s.PreloadKeys = 50_000
	s.Warmup = 20 * time.Millisecond
	s.Measure = 100 * time.Millisecond
	s.Threads = []int{1, 32, 128}
	return s
}

// report prints a regenerated table once per bench run.
func report(b *testing.B, r harness.Report) {
	b.Helper()
	b.Logf("\n%s\nexpected shape: %s", r, r.Notes)
}

func BenchmarkFig3DeviceIOPS(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r := harness.Fig3a(s)
		if i == 0 {
			report(b, r)
		}
	}
}

func BenchmarkFig3DeviceLatency(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r := harness.Fig3b(s)
		if i == 0 {
			report(b, r)
		}
	}
}

func BenchmarkFig3ProbeCycle(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r := harness.Fig3c(s)
		if i == 0 {
			report(b, r)
		}
	}
}

// schemeRows caches the §V-A comparison shared by Fig7/8, Tables I/II and
// Fig9 so the bench suite does not rerun it five times.
var schemeCache []harness.SchemeRows

func schemes(b *testing.B) []harness.SchemeRows {
	b.Helper()
	if schemeCache == nil {
		schemeCache = harness.RunSchemes(benchScale(), []int{0, 10, 50})
	}
	return schemeCache
}

func BenchmarkFig7Throughput(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r := harness.Fig7(schemes(b), s)
		if i == 0 {
			report(b, r)
			row := schemes(b)[1] // default workload
			b.ReportMetric(row.PA.Throughput/1e3, "PA-Kops/s")
			b.ReportMetric(row.Dedic[32].Throughput/1e3, "dedicated32-Kops/s")
		}
	}
}

func BenchmarkFig8Latency(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r := harness.Fig8(schemes(b), s)
		if i == 0 {
			report(b, r)
			row := schemes(b)[1]
			b.ReportMetric(float64(row.PA.MeanLatency)/1e3, "PA-us")
			b.ReportMetric(float64(row.Dedic[128].MeanLatency)/1e3, "dedicated128-us")
		}
	}
}

func BenchmarkTable1Runtime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.Table1(schemes(b))
		if i == 0 {
			report(b, r)
			row := schemes(b)[1]
			b.ReportMetric(row.PA.Outstanding, "PA-outstanding")
			b.ReportMetric(float64(row.PA.CtxSwitches), "PA-ctxswitches")
			b.ReportMetric(float64(row.Dedic[32].CtxSwitches), "dedicated32-ctxswitches")
		}
	}
}

func BenchmarkTable2CPUPerOp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.Table2(schemes(b))
		if i == 0 {
			report(b, r)
			row := schemes(b)[1]
			b.ReportMetric(row.PA.CyclesPerOp, "PA-Kcycles/op")
			b.ReportMetric(row.Shared[32].CyclesPerOp, "shared32-Kcycles/op")
		}
	}
}

func BenchmarkFig9Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.Fig9(schemes(b))
		if i == 0 {
			report(b, r)
			row := schemes(b)[1]
			b.ReportMetric(row.PA.Breakdown[0]*100, "PA-realwork-%")
		}
	}
}

func BenchmarkFig10Probing(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r := harness.Fig10(s)
		if i == 0 {
			report(b, r)
		}
	}
}

func BenchmarkFig11DedicatedPolling(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r := harness.Fig11(s)
		if i == 0 {
			report(b, r)
		}
	}
}

func BenchmarkFig12Priority(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r := harness.Fig12(s)
		if i == 0 {
			report(b, r)
		}
	}
}

func BenchmarkFig13Yield(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r := harness.Fig13(s)
		if i == 0 {
			report(b, r)
		}
	}
}

func BenchmarkFig14Buffering(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r := harness.Fig14(s)
		if i == 0 {
			report(b, r)
		}
	}
}

func BenchmarkFig15EndToEnd(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r := harness.Fig15(s)
		if i == 0 {
			report(b, r)
		}
	}
}

// BenchmarkRealModePut measures the real-time public API (not a paper
// figure; a conventional ns/op bench for library users).
func BenchmarkRealModePut(b *testing.B) {
	db, err := Open(Options{Persistence: Weak})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	val := []byte("benchmark-value")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put(uint64(i), val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRealModeGet measures point lookups through the public API.
func BenchmarkRealModeGet(b *testing.B) {
	db, err := Open(Options{Persistence: Weak})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	const keys = 10000
	for i := uint64(0); i < keys; i++ {
		if err := db.Put(i, []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := db.Get(uint64(i) % keys); !ok || err != nil {
			b.Fatalf("get: %v %v", ok, err)
		}
	}
}

