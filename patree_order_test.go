package patree_test

import (
	"fmt"
	"sync"
	"testing"

	patree "github.com/patree/patree"
	"github.com/patree/patree/internal/sim"
)

// TestBatchReadOwnWriteUnderConcurrency pins per-key program order for
// in-flight point operations. The shard worker pipelines execution, and
// an insert that restarts (optimistic split retry) or suspends on I/O
// used to be overtaken by a later operation on the same key — so a
// batch's Get could miss the Put staged just before it in the same
// batch. The overtake needs concurrent load: foreign latch holders are
// what block the restarted insert long enough for its follower to slip
// past, which is why a sequential test never catches it.
func TestBatchReadOwnWriteUnderConcurrency(t *testing.T) {
	db, err := patree.Open(patree.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var wg sync.WaitGroup
	errCh := make(chan string, 8)
	fail := func(format string, args ...any) {
		select {
		case errCh <- fmt.Sprintf(format, args...):
		default:
		}
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := sim.NewRNG(uint64(100 + g))
			base := uint64(g+1) * 65536
			for i := 0; i < 600; i++ {
				// Narrow per-goroutine key range: plenty of same-key traffic
				// and early leaf splits while the tree is still small.
				k := base + rng.Uint64n(128)
				switch rng.Intn(5) {
				case 0, 1:
					if err := db.Put(k, []byte(fmt.Sprintf("g%d-%d", g, i))); err != nil {
						fail("put: %v", err)
						return
					}
				case 2:
					if _, _, err := db.Get(k); err != nil {
						fail("get: %v", err)
						return
					}
				case 3:
					if _, err := db.Delete(k); err != nil {
						fail("delete: %v", err)
						return
					}
				case 4:
					b := db.NewBatch()
					v := []byte(fmt.Sprintf("gb%d-%d", g, i))
					b.Put(k, v)
					gi := b.Get(k)
					if err := b.Commit(); err != nil {
						fail("commit: %v", err)
						return
					}
					if err := b.Wait(); err != nil {
						fail("wait: %v", err)
						return
					}
					if !b.Found(gi) || string(b.Value(gi)) != string(v) {
						fail("read-own-write violated: g=%d i=%d k=%d found=%v val=%q want %q",
							g, i, k, b.Found(gi), b.Value(gi), v)
						return
					}
					b.Release()
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case e := <-errCh:
		t.Fatal(e)
	default:
	}
}
