package client

import (
	"strconv"
	"sync/atomic"
	"time"

	"github.com/patree/patree/internal/trace"
)

// Client-side trace event codes. Code 0 is the span anchor the stitcher
// looks for (trace.SpanCodeRequest): one slice per sampled request with
// Seq = span id, covering issue → response resolved. The rest break the
// client's share of the latency down: queueing to the writer, the
// socket write, BUSY backoff + retransmit rounds, and response decode.
const (
	ctRequest    = iota // slice: issue → resolved (Seq = span)
	ctEnqueue           // instant: handed to the writer queue
	ctWrite             // instant: frame written to the socket buffer (arg: bytes)
	ctBackoff           // slice: BUSY received → retransmit scheduled (arg: attempt)
	ctRetransmit        // instant: frame re-enqueued after backoff
	ctDecode            // slice: response frame read → result delivered
)

var clientCodeNames = []string{
	trace.SpanCodeRequest, "enqueue", "write", "backoff", "retransmit", "decode",
}

// Class = bare wire kind (proto.KindPut = 1, ...), 0 unused.
var clientClassNames = []string{
	"-", "put", "get", "update", "delete", "scan", "sync", "batch", "hello",
}

// spanIDs mints process-unique, nonzero span ids: unique across every
// Conn (pooled or not) so a merged trace never aliases two requests.
var spanIDs atomic.Uint64

// traceEpoch anchors the default client trace clock. Package-level so
// all pooled connections share one time axis even when dialed at
// different moments.
var traceEpoch = time.Now()

// defaultTraceNow is the clock used when Options.TraceNow is nil.
func defaultTraceNow() int64 { return time.Since(traceEpoch).Nanoseconds() }

// sample decides whether the next request is traced, returning its span
// id (0 = unsampled). Requests are only sampled once the server has
// negotiated trace propagation — before the hello response arrives (or
// against a v0 server, forever) every frame stays plain v0.
func (c *Conn) sample() uint64 {
	if c.tr == nil || !c.traceOK.Load() {
		return 0
	}
	if n := c.opts.SampleEvery; n > 1 && c.sampleN.Add(1)%uint64(n) != 0 {
		return 0
	}
	return spanIDs.Add(1)
}

// TraceProcess snapshots the connection's captured client-side events
// as one trace.Process (default name "client"), ready to merge with the
// server's and engine's processes via trace.WriteChromeJSONFlows. Nil
// when the connection was dialed without Options.Trace.
func (c *Conn) TraceProcess(name string) *trace.Process {
	if c.tr == nil {
		return nil
	}
	if name == "" {
		name = "client"
	}
	return &trace.Process{
		Name:       name,
		Events:     c.tr.Events(),
		CodeNames:  clientCodeNames,
		ClassNames: clientClassNames,
	}
}

// TraceProcesses snapshots every pooled connection's client-side events
// ("client0", "client1", ...). Empty when tracing is off.
func (p *Pool) TraceProcesses() []trace.Process {
	var procs []trace.Process
	for i, c := range p.conns {
		if tp := c.TraceProcess("client" + strconv.Itoa(i)); tp != nil {
			procs = append(procs, *tp)
		}
	}
	return procs
}
