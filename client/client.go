// Package client is the network client for the PA-Tree serving tier
// (internal/server): a pipelined, connection-pooled implementation of
// patree.Store over the internal/proto wire protocol, so code written
// against the Store interface runs unchanged whether the tree is
// embedded in-process or behind a server.
//
// A Conn multiplexes any number of goroutines over one TCP connection:
// requests are pipelined, responses complete out of order keyed by
// request id, and every operation returns the same pooled
// patree.Handle future an embedded caller would get. A Pool stripes
// operations over several Conns.
//
// Flow control: when the server's admission pipeline is full it
// answers StatusBusy — the wire form of patree.ErrBacklog — without
// admitting anything. The Conn backs off (exponential, jittered) and
// retransmits the identical frame under the same request id, so
// blocking and Async calls simply absorb the delay, exactly like an
// embedded caller blocking on a full admission ring. Batch.TryCommit
// is the exception: BUSY surfaces as ErrBacklog and the batch stays
// staged, matching the embedded contract.
package client

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	patree "github.com/patree/patree"
	"github.com/patree/patree/internal/proto"
	"github.com/patree/patree/internal/trace"
)

// Options tunes a Conn. The zero value selects sensible defaults.
type Options struct {
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// BackoffBase/BackoffMax bound the jittered exponential backoff
	// between BUSY retransmits (defaults 100µs and 10ms).
	BackoffBase, BackoffMax time.Duration
	// ReadBuf/WriteBuf size the buffered reader/writer (default 64 KiB).
	ReadBuf, WriteBuf int
	// SendQueue bounds requests queued for the writer (default 1024).
	SendQueue int

	// Trace enables client-side span tracing: the connection offers the
	// protocol handshake at dial and, once the server negotiates trace
	// propagation, samples requests into spans whose ids travel on the
	// wire (see internal/proto). Off by default; when off the connection
	// never sends a hello and behaves exactly like a v0 client.
	Trace bool
	// TraceEvents sizes the client trace ring (default 65536).
	TraceEvents int
	// SampleEvery samples 1 of every N requests when tracing (default
	// 64; 1 traces every request).
	SampleEvery int
	// TraceNow overrides the trace clock (nanoseconds). Point it at the
	// server engine's clock (patree.DB.TraceNow) in loopback benches so
	// the merged export shares one time axis; nil uses a process-local
	// monotonic clock.
	TraceNow func() int64
}

func (o *Options) fill() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 100 * time.Microsecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 10 * time.Millisecond
	}
	if o.ReadBuf <= 0 {
		o.ReadBuf = 64 << 10
	}
	if o.WriteBuf <= 0 {
		o.WriteBuf = 64 << 10
	}
	if o.SendQueue <= 0 {
		o.SendQueue = 1024
	}
	if o.TraceEvents <= 0 {
		o.TraceEvents = 65536
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = 64
	}
	if o.TraceNow == nil {
		o.TraceNow = defaultTraceNow
	}
}

// Stats counts a connection's wire activity.
type Stats struct {
	Sent        uint64 // request frames written (including retransmits)
	Received    uint64 // response frames read
	BusyRetries uint64 // BUSY responses absorbed by backoff + retransmit
}

// pending is one in-flight request: its encoded frame (retained for
// BUSY retransmission) and how to deliver its outcome. Only the reader
// goroutine resolves or removes a registered pending, which is what
// makes delivery exactly-once.
type pending struct {
	id       uint64
	kind     uint8 // bare wire kind; proto.KindBatch for batches
	frame    []byte
	attempts int
	span     uint64 // trace span id (0 = unsampled)
	issuedAt int64  // trace clock at issue; valid when span != 0

	resolve func(patree.Result) // single op

	batchResolve []func(patree.Result) // wire batch
	batchKinds   []uint8
	try          bool
	ack          chan error // try-batch admission outcome
}

// Conn is one pipelined protocol connection. It is safe for concurrent
// use by any number of goroutines and implements patree.Store.
type Conn struct {
	c    net.Conn
	opts Options

	nextID atomic.Uint64
	sendQ  chan *pending
	dead   chan struct{}
	shutOn sync.Once
	user   atomic.Bool // Close() called locally

	pmu      sync.Mutex
	pend     map[uint64]*pending
	terminal error // set once the connection failed; guarded by pmu

	wg sync.WaitGroup

	sent     atomic.Uint64
	received atomic.Uint64
	busy     atomic.Uint64

	// tracing (nil/false when Options.Trace is off)
	tr      *trace.Locked
	traceOK atomic.Bool // server negotiated HelloFlagTrace
	sampleN atomic.Uint64
}

// Conn is a Store: embedded and remote callers are interchangeable.
var _ patree.Store = (*Conn)(nil)

// Dial connects to a PA-Tree server.
func Dial(addr string, opts Options) (*Conn, error) {
	opts.fill()
	nc, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := &Conn{
		c:     nc,
		opts:  opts,
		sendQ: make(chan *pending, opts.SendQueue),
		dead:  make(chan struct{}),
		pend:  make(map[uint64]*pending),
	}
	if opts.Trace {
		c.tr = trace.NewLocked(opts.TraceEvents, clientCodeNames, clientClassNames, opts.TraceNow)
		// Offer the handshake as the connection's first frame, pipelined —
		// never blocking the dial. A v0 server answers StatusBadRequest,
		// which finishHello treats as "version 0": the connection simply
		// keeps sending plain frames and no request is ever sampled.
		hello := &pending{
			id:      c.nextID.Add(1),
			kind:    proto.KindHello,
			resolve: func(patree.Result) {}, // fail() may resolve it; nothing to do
		}
		hello.frame = proto.AppendHello(nil, hello.id, proto.KindHello, proto.Version, proto.HelloFlagTrace)
		c.pend[hello.id] = hello
		c.sendQ <- hello
	}
	c.wg.Add(2)
	go c.writeLoop()
	go c.readLoop()
	return c, nil
}

// shut closes the socket and the dead channel, unblocking both loops.
func (c *Conn) shut() {
	c.shutOn.Do(func() {
		close(c.dead)
		c.c.Close()
	})
}

// Close tears the connection down. In-flight operations resolve with
// ErrClosed; subsequent calls fail with ErrClosed immediately.
func (c *Conn) Close() error {
	c.user.Store(true)
	c.shut()
	c.wg.Wait()
	return nil
}

// Stats snapshots the connection's wire counters.
func (c *Conn) Stats() Stats {
	return Stats{Sent: c.sent.Load(), Received: c.received.Load(), BusyRetries: c.busy.Load()}
}

// register files p under its id, or reports the terminal error if the
// connection already failed (nothing is filed then).
func (c *Conn) register(p *pending) error {
	c.pmu.Lock()
	if c.terminal != nil {
		err := c.terminal
		c.pmu.Unlock()
		return err
	}
	c.pend[p.id] = p
	c.pmu.Unlock()
	return nil
}

// enqueue hands p to the writer. If the connection dies first the
// registered entry is resolved by fail(), so a false return only means
// "the failure path owns delivery now".
func (c *Conn) enqueue(p *pending) {
	select {
	case c.sendQ <- p:
	case <-c.dead:
	}
}

// retransmit re-enqueues the pending registered under id, if it still
// is. Only BUSY-refused requests are retransmitted, and the server
// admitted nothing for them, so the resend can never double-apply.
func (c *Conn) retransmit(id uint64) {
	c.pmu.Lock()
	p := c.pend[id]
	c.pmu.Unlock()
	if p != nil {
		if p.span != 0 {
			c.tr.Emit(ctRetransmit, uint16(p.kind), p.span, uint64(p.attempts), c.tr.NowNanos(), trace.Instant)
		}
		c.enqueue(p)
	}
}

// backoff returns the jittered exponential delay before retransmit
// attempt n.
func (c *Conn) backoff(n int) time.Duration {
	d := c.opts.BackoffBase << uint(n)
	if d > c.opts.BackoffMax || d <= 0 {
		d = c.opts.BackoffMax
	}
	// Full jitter: desynchronizes the retry storms of many clients
	// hammering one saturated server.
	return time.Duration(rand.Int63n(int64(d)) + int64(c.opts.BackoffBase))
}

// fail resolves every in-flight operation with the terminal error and
// refuses all future ones. Called exactly once, by the reader on exit.
func (c *Conn) fail(cause error) {
	c.shut()
	term := error(patree.ErrClosed)
	if !c.user.Load() {
		term = fmt.Errorf("%w: connection lost: %v", patree.ErrBatchAborted, cause)
	}
	c.pmu.Lock()
	c.terminal = term
	m := c.pend
	c.pend = make(map[uint64]*pending)
	c.pmu.Unlock()
	for _, p := range m {
		switch {
		case p.ack != nil:
			// A try-batch that never got its admission answer: report the
			// error to CommitStaged; the handles stay staged/pending and
			// Batch.Release reclaims them.
			p.ack <- term
		case p.batchResolve != nil:
			for _, r := range p.batchResolve {
				r(patree.Result{Err: term})
			}
		default:
			p.resolve(patree.Result{Err: term})
		}
	}
}

// writeLoop streams request frames, coalescing everything queued before
// each flush.
func (c *Conn) writeLoop() {
	defer c.wg.Done()
	bw := bufio.NewWriterSize(c.c, c.opts.WriteBuf)
	for {
		select {
		case p := <-c.sendQ:
			for {
				_, err := bw.Write(p.frame)
				if err != nil {
					c.shut()
					return
				}
				c.sent.Add(1)
				if p.span != 0 {
					c.tr.Emit(ctWrite, uint16(p.kind), p.span, uint64(len(p.frame)), c.tr.NowNanos(), trace.Instant)
				}
				select {
				case p = <-c.sendQ:
					continue
				default:
				}
				break
			}
			if err := bw.Flush(); err != nil {
				c.shut()
				return
			}
		case <-c.dead:
			return
		}
	}
}

// readLoop decodes responses and delivers them; it owns all resolution
// of registered pendings.
func (c *Conn) readLoop() {
	defer c.wg.Done()
	br := bufio.NewReaderSize(c.c, c.opts.ReadBuf)
	var rbuf []byte
	for {
		body, err := proto.ReadFrame(br, rbuf)
		if err != nil {
			if c.user.Load() || err == io.EOF || errors.Is(err, net.ErrClosed) {
				c.fail(io.EOF)
			} else {
				c.fail(err)
			}
			return
		}
		rbuf = body[:0]
		c.received.Add(1)
		id := proto.FrameID(body)
		status := proto.FrameKind(body)
		payload := proto.FrameBody(body)

		c.pmu.Lock()
		p := c.pend[id]
		if p != nil && status == proto.StatusBusy && !p.try {
			// Flow control: leave the entry registered and retransmit the
			// identical frame after a backoff. Nothing was admitted.
			p.attempts++
			c.pmu.Unlock()
			c.busy.Add(1)
			d := c.backoff(p.attempts)
			if p.span != 0 {
				c.tr.Emit(ctBackoff, uint16(p.kind), p.span, uint64(p.attempts), c.tr.NowNanos(), int64(d))
			}
			time.AfterFunc(d, func() { c.retransmit(id) })
			continue
		}
		if p != nil {
			delete(c.pend, id)
		}
		c.pmu.Unlock()
		if p == nil {
			// Response for an entry the failure path already resolved, or
			// a duplicate: ignore.
			continue
		}
		if p.kind == proto.KindHello {
			c.finishHello(status, payload)
			continue
		}
		if p.span == 0 {
			c.deliver(p, status, payload)
			continue
		}
		t0 := c.tr.NowNanos()
		c.deliver(p, status, payload)
		t1 := c.tr.NowNanos()
		c.tr.Emit(ctDecode, uint16(p.kind), p.span, 0, t0, t1-t0)
		// The span anchor: one "request" slice covering the whole
		// client-observed lifetime, Seq = span id for the stitcher.
		c.tr.Emit(ctRequest, uint16(p.kind), p.span, uint64(p.attempts), p.issuedAt, t1-p.issuedAt)
	}
}

// finishHello resolves the handshake: StatusOK carries the negotiated
// (version, flags); anything else — most importantly a v0 server's
// StatusBadRequest for the unknown kind — leaves the connection at
// version 0 with tracing off. Never an error either way.
func (c *Conn) finishHello(status uint8, payload []byte) {
	if status != proto.StatusOK {
		return
	}
	v, f, err := proto.ParseHello(payload)
	if err != nil {
		return
	}
	if v >= 1 && f&proto.HelloFlagTrace != 0 {
		c.traceOK.Store(true)
	}
}

// deliver decodes a final response and resolves its pending.
func (c *Conn) deliver(p *pending, status uint8, payload []byte) {
	if p.kind == proto.KindBatch {
		c.deliverBatch(p, status, payload)
		return
	}
	if status != proto.StatusOK {
		p.resolve(patree.Result{Err: proto.ErrFromStatus(status, statusMsg(payload))})
		return
	}
	if len(payload) < 1 {
		p.resolve(patree.Result{Err: proto.ErrMalformed()})
		return
	}
	res := patree.Result{Found: payload[0]&proto.FoundFlag != 0}
	body := payload[1:]
	switch p.kind {
	case proto.KindGet:
		if len(body) > 0 {
			// The frame buffer is recycled; results handed to the caller
			// must own their bytes.
			res.Value = append([]byte(nil), body...)
		}
	case proto.KindScan:
		pairs, err := proto.DecodePairs(body)
		if err != nil {
			res.Err = err
		} else {
			res.Pairs = pairs
		}
	}
	p.resolve(res)
}

// deliverBatch decodes a wire batch response: admission refusal for a
// try-batch, or the per-op results.
func (c *Conn) deliverBatch(p *pending, status uint8, payload []byte) {
	if status == proto.StatusBusy && p.try {
		p.ack <- patree.ErrBacklog
		return
	}
	if status != proto.StatusOK {
		err := proto.ErrFromStatus(status, statusMsg(payload))
		if p.ack != nil {
			p.ack <- err
			return
		}
		for _, r := range p.batchResolve {
			r(patree.Result{Err: err})
		}
		return
	}
	fail := func(err error) {
		if p.ack != nil {
			// Results are undecodable but the batch WAS admitted; the
			// caller cannot retry it as staged, so resolve the handles
			// with the decode error and ack success of admission.
			p.ack <- nil
			p.ack = nil
		}
		for _, r := range p.batchResolve {
			r(patree.Result{Err: err})
		}
	}
	if len(payload) < 4 {
		fail(proto.ErrMalformed())
		return
	}
	count := binary.LittleEndian.Uint32(payload)
	payload = payload[4:]
	if int(count) != len(p.batchResolve) {
		fail(proto.ErrMalformed())
		return
	}
	results := make([]patree.Result, count)
	for i := uint32(0); i < count; i++ {
		if len(payload) < 6 {
			fail(proto.ErrMalformed())
			return
		}
		st := payload[0]
		flags := payload[1]
		plen := binary.LittleEndian.Uint32(payload[2:])
		payload = payload[6:]
		if uint32(len(payload)) < plen {
			fail(proto.ErrMalformed())
			return
		}
		body := payload[:plen]
		payload = payload[plen:]
		res := &results[i]
		if st != proto.StatusOK {
			res.Err = proto.ErrFromStatus(st, "")
			continue
		}
		res.Found = flags&proto.FoundFlag != 0
		switch p.batchKinds[i] {
		case proto.KindGet:
			if len(body) > 0 {
				res.Value = append([]byte(nil), body...)
			}
		case proto.KindScan:
			pairs, err := proto.DecodePairs(body)
			if err != nil {
				res.Err = err
			} else {
				res.Pairs = pairs
			}
		}
	}
	if p.ack != nil {
		p.ack <- nil
	}
	for i, r := range p.batchResolve {
		r(results[i])
	}
}

func statusMsg(payload []byte) string { return string(payload) }

// issue registers, encodes and sends one single-op request, returning
// its future.
func (c *Conn) issue(kind uint8, key, end uint64, limit int64, value []byte) (*patree.Handle, error) {
	h, resolve := patree.NewRemoteHandle()
	p := &pending{id: c.nextID.Add(1), kind: kind, resolve: resolve, span: c.sample()}
	p.frame = appendSingle(nil, p.id, kind, p.span, key, end, limit, value)
	if p.span != 0 {
		p.issuedAt = c.tr.NowNanos()
	}
	if err := c.register(p); err != nil {
		// Never admitted: reclaim the handle like a refused embedded
		// admission would.
		resolve(patree.Result{Err: err})
		h.Release()
		return nil, err
	}
	c.enqueue(p)
	if p.span != 0 {
		c.tr.Emit(ctEnqueue, uint16(kind), p.span, 0, c.tr.NowNanos(), trace.Instant)
	}
	return h, nil
}

// appendSingle encodes a single-op request frame; a nonzero span
// prefixes the body with the trace context (proto.FlagSpan).
func appendSingle(dst []byte, id uint64, kind uint8, span, key, end uint64, limit int64, value []byte) []byte {
	var at int
	wire := kind
	if span != 0 {
		wire |= proto.FlagSpan
	}
	dst, at = proto.BeginFrame(dst, id, wire)
	if span != 0 {
		dst = binary.LittleEndian.AppendUint64(dst, span)
	}
	switch kind {
	case proto.KindPut, proto.KindUpdate:
		dst = binary.LittleEndian.AppendUint64(dst, key)
		dst = append(dst, value...)
	case proto.KindGet, proto.KindDelete:
		dst = binary.LittleEndian.AppendUint64(dst, key)
	case proto.KindScan:
		dst = binary.LittleEndian.AppendUint64(dst, key)
		dst = binary.LittleEndian.AppendUint64(dst, end)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(limit))
	case proto.KindSync:
	}
	return proto.FinishFrame(dst, at)
}

// PutAsync admits an insert-or-replace and returns its future.
func (c *Conn) PutAsync(key uint64, value []byte) (*patree.Handle, error) {
	return c.issue(proto.KindPut, key, 0, 0, value)
}

// GetAsync admits a point lookup and returns its future.
func (c *Conn) GetAsync(key uint64) (*patree.Handle, error) {
	return c.issue(proto.KindGet, key, 0, 0, nil)
}

// UpdateAsync admits a replace-if-present and returns its future.
func (c *Conn) UpdateAsync(key uint64, value []byte) (*patree.Handle, error) {
	return c.issue(proto.KindUpdate, key, 0, 0, value)
}

// DeleteAsync admits a delete and returns its future.
func (c *Conn) DeleteAsync(key uint64) (*patree.Handle, error) {
	return c.issue(proto.KindDelete, key, 0, 0, nil)
}

// ScanAsync admits a range scan and returns its future.
func (c *Conn) ScanAsync(lo, hi uint64, limit int) (*patree.Handle, error) {
	return c.issue(proto.KindScan, lo, hi, int64(limit), nil)
}

// SyncAsync admits a sync and returns its future.
func (c *Conn) SyncAsync() (*patree.Handle, error) {
	return c.issue(proto.KindSync, 0, 0, 0, nil)
}

// Put inserts or replaces key.
func (c *Conn) Put(key uint64, value []byte) error {
	h, err := c.PutAsync(key, value)
	if err != nil {
		return err
	}
	err = h.Err()
	h.Release()
	return err
}

// Get returns the value stored under key.
func (c *Conn) Get(key uint64) ([]byte, bool, error) {
	h, err := c.GetAsync(key)
	if err != nil {
		return nil, false, err
	}
	v, found, err := h.Value(), h.Found(), h.Err()
	h.Release()
	return v, found, err
}

// Update replaces key only if present, reporting whether it was.
func (c *Conn) Update(key uint64, value []byte) (bool, error) {
	h, err := c.UpdateAsync(key, value)
	if err != nil {
		return false, err
	}
	found, werr := h.Found(), h.Err()
	h.Release()
	return found, werr
}

// Delete removes key, reporting whether it was present.
func (c *Conn) Delete(key uint64) (bool, error) {
	h, err := c.DeleteAsync(key)
	if err != nil {
		return false, err
	}
	found, werr := h.Found(), h.Err()
	h.Release()
	return found, werr
}

// Scan returns pairs with keys in [lo, hi] ascending, at most limit
// (<= 0 = all).
func (c *Conn) Scan(lo, hi uint64, limit int) ([]patree.KV, error) {
	h, err := c.ScanAsync(lo, hi, limit)
	if err != nil {
		return nil, err
	}
	pairs, werr := h.Pairs(), h.Err()
	h.Release()
	return pairs, werr
}

// Sync makes all acknowledged updates durable on the server.
func (c *Conn) Sync() error {
	h, err := c.SyncAsync()
	if err != nil {
		return err
	}
	err = h.Err()
	h.Release()
	return err
}

// NewBatch returns a batch whose commit travels as one wire frame and
// is admitted server-side as one atomic transaction — cross-shard
// TryCommit all-or-nothing semantics hold end to end.
func (c *Conn) NewBatch() *patree.Batch {
	return patree.NewRemoteBatch(committer{c})
}

// committer adapts a Conn to patree.BatchCommitter without widening the
// Conn API.
type committer struct{ c *Conn }

// CommitStaged encodes the staged batch as one frame. try waits for the
// admission answer (BUSY → ErrBacklog, batch stays staged); non-try
// returns once queued, with BUSY absorbed by backoff + retransmit like
// any other request.
func (cm committer) CommitStaged(ops []patree.BatchOp, resolve []func(patree.Result), try bool) error {
	c := cm.c
	// CommitStaged's slices are only valid until it returns; the
	// response arrives later, so keep a copy.
	res := make([]func(patree.Result), len(resolve))
	copy(res, resolve)
	p := &pending{
		id:           c.nextID.Add(1),
		kind:         proto.KindBatch,
		try:          try,
		batchResolve: res,
		batchKinds:   make([]uint8, len(ops)),
		span:         c.sample(),
	}
	wire := proto.KindBatch
	if p.span != 0 {
		wire |= proto.FlagSpan
	}
	frame, at := proto.BeginFrame(nil, p.id, wire)
	if p.span != 0 {
		frame = binary.LittleEndian.AppendUint64(frame, p.span)
	}
	var flags uint8
	if try {
		flags = 1
	}
	frame = append(frame, flags)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(ops)))
	for i, op := range ops {
		wk := proto.WireKind(op.Kind)
		p.batchKinds[i] = wk
		frame = append(frame, wk)
		switch wk {
		case proto.KindPut, proto.KindUpdate:
			frame = binary.LittleEndian.AppendUint64(frame, op.Key)
			frame = binary.LittleEndian.AppendUint32(frame, uint32(len(op.Value)))
			frame = append(frame, op.Value...)
		case proto.KindGet, proto.KindDelete:
			frame = binary.LittleEndian.AppendUint64(frame, op.Key)
		case proto.KindScan:
			frame = binary.LittleEndian.AppendUint64(frame, op.Key)
			frame = binary.LittleEndian.AppendUint64(frame, op.End)
			frame = binary.LittleEndian.AppendUint64(frame, uint64(op.Limit))
		case proto.KindSync:
		default:
			return fmt.Errorf("client: invalid batch op kind %v", op.Kind)
		}
	}
	p.frame = proto.FinishFrame(frame, at)
	if try {
		p.ack = make(chan error, 1)
	}
	if p.span != 0 {
		p.issuedAt = c.tr.NowNanos()
	}
	if err := c.register(p); err != nil {
		return err
	}
	c.enqueue(p)
	if p.span != 0 {
		c.tr.Emit(ctEnqueue, uint16(proto.KindBatch), p.span, uint64(len(ops)), c.tr.NowNanos(), trace.Instant)
	}
	if try {
		return <-p.ack
	}
	return nil
}
