package client

import (
	"sync/atomic"

	patree "github.com/patree/patree"
)

// Pool stripes operations round-robin over several Conns to one server,
// so many issuing goroutines spread across multiple pipelined sockets
// instead of serializing on one reader/writer pair. It implements
// patree.Store; a batch drawn from NewBatch travels whole on one
// connection (it is one frame).
type Pool struct {
	conns []*Conn
	next  atomic.Uint64
}

// Pool is a Store too: swapping a Conn for a Pool changes nothing for
// callers.
var _ patree.Store = (*Pool)(nil)

// DialPool opens n connections to addr. On any dial failure the
// already-opened connections are closed and the error returned.
func DialPool(addr string, n int, opts Options) (*Pool, error) {
	if n <= 0 {
		n = 1
	}
	p := &Pool{conns: make([]*Conn, 0, n)}
	for i := 0; i < n; i++ {
		c, err := Dial(addr, opts)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.conns = append(p.conns, c)
	}
	return p, nil
}

// pick returns the next connection round-robin.
func (p *Pool) pick() *Conn {
	return p.conns[p.next.Add(1)%uint64(len(p.conns))]
}

// Close closes every pooled connection, returning the first error.
func (p *Pool) Close() error {
	var first error
	for _, c := range p.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats sums the wire counters of every pooled connection.
func (p *Pool) Stats() Stats {
	var s Stats
	for _, c := range p.conns {
		cs := c.Stats()
		s.Sent += cs.Sent
		s.Received += cs.Received
		s.BusyRetries += cs.BusyRetries
	}
	return s
}

// Put inserts or replaces key.
func (p *Pool) Put(key uint64, value []byte) error { return p.pick().Put(key, value) }

// Get returns the value stored under key.
func (p *Pool) Get(key uint64) ([]byte, bool, error) { return p.pick().Get(key) }

// Update replaces key only if present, reporting whether it was.
func (p *Pool) Update(key uint64, value []byte) (bool, error) { return p.pick().Update(key, value) }

// Delete removes key, reporting whether it was present.
func (p *Pool) Delete(key uint64) (bool, error) { return p.pick().Delete(key) }

// Scan returns pairs with keys in [lo, hi] ascending, at most limit.
func (p *Pool) Scan(lo, hi uint64, limit int) ([]patree.KV, error) {
	return p.pick().Scan(lo, hi, limit)
}

// Sync makes all acknowledged updates durable on the server.
func (p *Pool) Sync() error { return p.pick().Sync() }

// PutAsync admits an insert-or-replace and returns its future.
func (p *Pool) PutAsync(key uint64, value []byte) (*patree.Handle, error) {
	return p.pick().PutAsync(key, value)
}

// GetAsync admits a point lookup and returns its future.
func (p *Pool) GetAsync(key uint64) (*patree.Handle, error) { return p.pick().GetAsync(key) }

// UpdateAsync admits a replace-if-present and returns its future.
func (p *Pool) UpdateAsync(key uint64, value []byte) (*patree.Handle, error) {
	return p.pick().UpdateAsync(key, value)
}

// DeleteAsync admits a delete and returns its future.
func (p *Pool) DeleteAsync(key uint64) (*patree.Handle, error) { return p.pick().DeleteAsync(key) }

// ScanAsync admits a range scan and returns its future.
func (p *Pool) ScanAsync(lo, hi uint64, limit int) (*patree.Handle, error) {
	return p.pick().ScanAsync(lo, hi, limit)
}

// SyncAsync admits a sync and returns its future.
func (p *Pool) SyncAsync() (*patree.Handle, error) { return p.pick().SyncAsync() }

// NewBatch returns a batch bound to one pooled connection.
func (p *Pool) NewBatch() *patree.Batch { return p.pick().NewBatch() }
