// Asyncbatch: reach the paper's queue depth from one goroutine with the
// future-based async API and batched admission, then compare against the
// blocking API and demonstrate context cancellation.
//
//	go run ./examples/asyncbatch
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	patree "github.com/patree/patree"
)

const (
	keys   = 50_000
	window = 128 // operations kept in flight per caller
)

func main() {
	db, err := patree.Open(patree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Load with batches: each Commit hands the whole window to the
	// working thread in ONE admission-ring transaction.
	start := time.Now()
	for base := uint64(0); base < keys; base += window {
		b := db.NewBatch()
		for k := base; k < base+window && k < keys; k++ {
			b.Put(k, []byte(fmt.Sprintf("value-%d", k)))
		}
		if err := b.Commit(); err != nil {
			log.Fatal(err)
		}
		if err := b.Wait(); err != nil {
			log.Fatal(err)
		}
		b.Release()
	}
	fmt.Printf("batched load:   %d puts in %v\n", keys, time.Since(start).Round(time.Millisecond))

	// Read back with a sliding window of futures: issue ahead, harvest
	// behind, never more than `window` outstanding.
	start = time.Now()
	handles := make([]*patree.Handle, 0, window)
	for k := uint64(0); k < keys; k++ {
		h, err := db.GetAsync(k)
		if err != nil {
			log.Fatal(err)
		}
		handles = append(handles, h)
		if len(handles) == window {
			drain(handles)
			handles = handles[:0]
		}
	}
	drain(handles)
	asyncDur := time.Since(start)
	fmt.Printf("async readback: %d gets in %v\n", keys, asyncDur.Round(time.Millisecond))

	// The same reads through the blocking API: one operation in flight,
	// two goroutine hand-offs each. This is what the async API avoids.
	start = time.Now()
	const blockingSample = keys / 10
	for k := uint64(0); k < blockingSample; k++ {
		if _, ok, err := db.Get(k); !ok || err != nil {
			log.Fatalf("get %d: %v %v", k, ok, err)
		}
	}
	blockingDur := time.Since(start) * (keys / blockingSample)
	fmt.Printf("blocking gets:  %d would take ~%v (%.0fx slower)\n",
		keys, blockingDur.Round(time.Millisecond),
		float64(blockingDur)/float64(asyncDur))

	// A heterogeneous batch: mixed operation kinds complete as a group.
	b := db.NewBatch()
	iGet := b.Get(42)
	iScan := b.Scan(100, 109, 0)
	b.Put(keys+1, []byte("late arrival"))
	iDel := b.Delete(7)
	if err := b.Commit(); err != nil {
		log.Fatal(err)
	}
	if err := b.Wait(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mixed batch:    get(42)=%q scan=%d pairs deleted(7)=%v\n",
		b.Value(iGet), len(b.Pairs(iScan)), b.Found(iDel))
	b.Release()

	// Context cancellation: the call unblocks, the tree stays consistent
	// (the in-flight operation completes on the working thread).
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	if _, _, err := db.GetContext(ctx, 42); err != nil {
		fmt.Printf("cancelled get:  %v\n", err)
	}
	if v, ok, _ := db.Get(42); ok {
		fmt.Printf("tree intact:    key 42 -> %s\n", v)
	}

	st := db.Stats()
	fmt.Printf("stats: keys=%d height=%d ops=%d admit-waits=%d buffer-hit=%.1f%%\n",
		st.NumKeys, st.Height, st.Ops, st.AdmitWaits, st.BufferHit*100)
}

// drain waits for a window of futures and recycles them.
func drain(hs []*patree.Handle) {
	for _, h := range hs {
		if err := h.Wait(); err != nil {
			log.Fatal(err)
		}
		h.Release()
	}
}
