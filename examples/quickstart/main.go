// Quickstart: open a PA-Tree, write, read, scan, inspect stats.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	patree "github.com/patree/patree"
)

func main() {
	// An in-memory device with strong persistence: every Put is on the
	// "device" before it returns.
	db, err := patree.Open(patree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Point writes and reads.
	for i := uint64(1); i <= 1000; i++ {
		if err := db.Put(i, []byte(fmt.Sprintf("value-%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	v, ok, err := db.Get(500)
	if err != nil || !ok {
		log.Fatalf("get: %v %v", ok, err)
	}
	fmt.Printf("key 500 -> %s\n", v)

	// Replace-if-present and delete.
	if ok, _ := db.Update(500, []byte("replaced")); !ok {
		log.Fatal("update missed")
	}
	if ok, _ := db.Delete(666); !ok {
		log.Fatal("delete missed")
	}

	// Range scan.
	pairs, err := db.Scan(495, 505, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("scan [495, 505]:")
	for _, kv := range pairs {
		fmt.Printf("  %d -> %s\n", kv.Key, kv.Value)
	}

	st := db.Stats()
	fmt.Printf("stats: keys=%d height=%d ops=%d buffer-hit=%.1f%%\n",
		st.NumKeys, st.Height, st.Ops, st.BufferHit*100)
}
