// Quickstart: open a PA-Tree, write, read, scan, inspect stats.
//
// The workload half is written against patree.Store — the operation
// surface shared by the embedded engine (*patree.DB) and the network
// client (client.Conn) — so the same code runs in-process here and
// unchanged against a paserve server (see README "Serving over the
// network": swap patree.Open for client.Dial).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	patree "github.com/patree/patree"
)

// demo exercises the full point/range surface of any Store. It neither
// knows nor cares whether s is an embedded tree or a network
// connection.
func demo(s patree.Store) error {
	// Point writes and reads.
	for i := uint64(1); i <= 1000; i++ {
		if err := s.Put(i, []byte(fmt.Sprintf("value-%d", i))); err != nil {
			return err
		}
	}
	v, ok, err := s.Get(500)
	if err != nil || !ok {
		return fmt.Errorf("get: %v %v", ok, err)
	}
	fmt.Printf("key 500 -> %s\n", v)

	// Replace-if-present and delete.
	if ok, err := s.Update(500, []byte("replaced")); err != nil || !ok {
		return fmt.Errorf("update missed: %v", err)
	}
	if ok, err := s.Delete(666); err != nil || !ok {
		return fmt.Errorf("delete missed: %v", err)
	}

	// A batch: one admission transaction, results by staged index.
	b := s.NewBatch()
	b.Put(2000, []byte("batched"))
	gi := b.Get(2000)
	if err := b.Commit(); err != nil {
		return err
	}
	if err := b.Wait(); err != nil {
		return err
	}
	fmt.Printf("batch read-own-write: %s\n", b.Value(gi))
	b.Release()

	// Range scan.
	pairs, err := s.Scan(495, 505, 0)
	if err != nil {
		return err
	}
	fmt.Println("scan [495, 505]:")
	for _, kv := range pairs {
		fmt.Printf("  %d -> %s\n", kv.Key, kv.Value)
	}
	return s.Sync()
}

func main() {
	// An in-memory device with strong persistence: every Put is on the
	// "device" before it returns.
	db, err := patree.Open(patree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if err := demo(db); err != nil {
		log.Fatal(err)
	}

	st := db.Stats()
	fmt.Printf("stats: keys=%d height=%d ops=%d buffer-hit=%.1f%%\n",
		st.NumKeys, st.Height, st.Ops, st.BufferHit*100)
}
