// Faults demonstrates crash recovery: a journaled tree runs over a
// fault-injection wrapper, the "power cord is pulled" mid-workload, and
// reopening the surviving device image replays the write-ahead journal.
// Every acknowledged write comes back; the torn in-flight tail does not.
//
//	go run ./examples/faults
package main

import (
	"errors"
	"fmt"
	"log"

	patree "github.com/patree/patree"
	"github.com/patree/patree/internal/fault"
	"github.com/patree/patree/internal/nvme"
)

func main() {
	ram := nvme.NewRAMDevice(nvme.RAMConfig{NumBlocks: 1 << 16})
	defer ram.Close()
	fdev := fault.New(ram, fault.Config{Seed: 42})

	db, err := patree.Open(patree.Options{Device: fdev, Journal: true, Persistence: patree.Weak})
	if err != nil {
		log.Fatal(err)
	}
	const acked = 500
	for i := uint64(1); i <= acked; i++ {
		if err := db.Put(i, []byte(fmt.Sprintf("v%d", i))); err != nil {
			log.Fatal(err)
		}
	}

	// Pull the cord: in-flight writes are kept, reverted, or torn at a
	// block boundary; everything after fails with ErrDeviceFailed.
	fdev.Crash()
	err = db.Put(acked+1, []byte("never-acked"))
	fmt.Printf("after crash: Put -> %v (ErrDeviceFailed: %v)\n", err, errors.Is(err, patree.ErrDeviceFailed))
	db.Close() // returns the device failure; the image is already frozen

	// Reopen the raw device: Open finds the unclean journal and replays it.
	db, err = patree.Open(patree.Options{Device: ram, Journal: true})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	for i := uint64(1); i <= acked; i++ {
		v, ok, err := db.Get(i)
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			log.Fatalf("acked key %d lost after recovery: %q ok=%v err=%v", i, v, ok, err)
		}
	}
	fmt.Printf("after recovery: all %d acknowledged keys survive, unacked key is absent\n", acked)
}
