// Durability demonstrates the paper's two persistence modes (§III-C):
// strong persistence writes through on every update; weak persistence
// buffers updates and makes them durable in batches via Sync(), trading
// write amplification for a crash window — exactly the trade-off
// Figure 14/15 measure.
//
//	go run ./examples/durability
package main

import (
	"fmt"
	"log"

	patree "github.com/patree/patree"
	"github.com/patree/patree/internal/nvme"
)

func main() {
	// One shared "device" so we can close and reopen trees over it.
	dev := nvme.NewRAMDevice(nvme.RAMConfig{})
	defer dev.Close()

	// Weak persistence: hammer one hot page, then sync once.
	db, err := patree.Open(patree.Options{Device: dev, Persistence: patree.Weak})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := db.Put(7, []byte(fmt.Sprintf("version-%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	st := db.Stats()
	fmt.Printf("weak mode: 1000 updates to one key issued %d device writes before Sync\n", st.WritesIssued)
	if err := db.Sync(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after Sync: %d device writes total (repeated updates merged — the write-amplification saving of §III-C)\n",
		db.Stats().WritesIssued)
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}

	// Reopen from the same device: the synced state is all there.
	db2, err := patree.Open(patree.Options{Device: dev, Persistence: patree.Strong})
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	v, ok, err := db2.Get(7)
	if err != nil || !ok {
		log.Fatalf("reopened get: %v %v", ok, err)
	}
	fmt.Printf("reopened tree sees %q\n", v)

	// Strong persistence: every update is durable when Put returns.
	before := db2.Stats().WritesIssued
	for i := 0; i < 100; i++ {
		if err := db2.Put(uint64(100+i), []byte("durable")); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("strong mode: 100 inserts issued %d device writes (>= one per update)\n",
		db2.Stats().WritesIssued-before)
}
