// Taxirange mirrors the paper's T-Drive workload: taxi position reports
// keyed by the z-order (Morton) code of their grid cell, queried with
// z-code range scans plus an in-rectangle post-filter — the classic way a
// one-dimensional B+ tree serves two-dimensional data.
//
//	go run ./examples/taxirange
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	patree "github.com/patree/patree"
	"github.com/patree/patree/internal/sim"
	"github.com/patree/patree/internal/zorder"
)

const gridBits = 10 // 1024 x 1024 city grid

// reportKey embeds the cell z-code in the high bits and a sequence number
// below, so reports in the same cell stay unique and adjacent.
func reportKey(x, y uint32, seq uint64) uint64 {
	return zorder.Encode(x, y)<<16 | (seq & 0xFFFF)
}

func main() {
	db, err := patree.Open(patree.Options{Persistence: patree.Weak})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A fleet random-walks the grid, reporting positions (70% of the
	// paper's T-Drive operations are exactly these inserts).
	rng := sim.NewRNG(11)
	const taxis = 500
	xs := make([]uint32, taxis)
	ys := make([]uint32, taxis)
	for i := range xs {
		xs[i] = uint32(rng.Uint64n(1 << gridBits))
		ys[i] = uint32(rng.Uint64n(1 << gridBits))
	}
	seq := uint64(0)
	for step := 0; step < 40; step++ {
		for i := 0; i < taxis; i++ {
			xs[i] = walk(rng, xs[i])
			ys[i] = walk(rng, ys[i])
			seq++
			val := make([]byte, 12)
			binary.LittleEndian.PutUint32(val[0:4], uint32(i))
			binary.LittleEndian.PutUint64(val[4:12], seq)
			if err := db.Put(reportKey(xs[i], ys[i], seq), val); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("stored %d position reports (tree height %d)\n", db.Stats().NumKeys, db.Stats().Height)

	// "Which taxis passed through this 16x16-cell neighbourhood?"
	// Centre the window on taxi 0's current position so it is non-empty.
	x0, y0 := xs[0]&^15, ys[0]&^15
	if x0 < 16 {
		x0 = 16
	}
	if y0 < 16 {
		y0 = 16
	}
	x1, y1 := x0+15, y0+15
	lo, hi := zorder.RangeOf(x0, y0, x1, y1)
	pairs, err := db.Scan(lo<<16, hi<<16|0xFFFF, 0)
	if err != nil {
		log.Fatal(err)
	}
	// The z-range covers a superset of the rectangle; post-filter.
	hits := 0
	seen := map[uint32]bool{}
	for _, kv := range pairs {
		if !zorder.InRect(kv.Key>>16, x0, y0, x1, y1) {
			continue
		}
		hits++
		seen[binary.LittleEndian.Uint32(kv.Value[0:4])] = true
	}
	fmt.Printf("z-range scanned %d records, %d inside the rectangle, %d distinct taxis\n",
		len(pairs), hits, len(seen))
}

func walk(rng *sim.RNG, v uint32) uint32 {
	switch rng.Uint64n(3) {
	case 0:
		if v > 0 {
			return v - 1
		}
	case 1:
		if v < (1<<gridBits)-1 {
			return v + 1
		}
	}
	return v
}
