// Sharded: run four paper-style PA-Tree workers behind one DB.
//
// Options.Shards hash-partitions the keyspace across N independent
// working threads, each owning a private slice of the device (its own
// queue pair, inbox, buffers, journal region). The surface stays the
// classic one: point ops route by key, scans scatter-gather into global
// order, batches may span shards, and a crash-recovering reopen replays
// every shard's journal independently.
//
//	go run ./examples/sharded
package main

import (
	"fmt"
	"log"

	patree "github.com/patree/patree"
	"github.com/patree/patree/internal/nvme"
)

func main() {
	// Four shards over a journaled in-memory device. The device is kept
	// external so we can close the DB and reopen the same image below.
	dev := nvme.NewRAMDevice(nvme.RAMConfig{NumBlocks: 1 << 16})
	open := func() *patree.DB {
		db, err := patree.Open(patree.Options{Device: dev, Shards: 4, Journal: true})
		if err != nil {
			log.Fatal(err)
		}
		return db
	}
	db := open()

	// Point ops look unsharded; each key is served by its hash-owner.
	for i := uint64(1); i <= 1000; i++ {
		if err := db.Put(i, []byte(fmt.Sprintf("value-%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	v, ok, err := db.Get(500)
	if err != nil || !ok {
		log.Fatalf("get: %v %v", ok, err)
	}
	fmt.Printf("key 500 -> %s\n", v)

	// A scan fans out to every shard and merges the per-shard sorted
	// runs, so the result is globally ordered despite hash routing.
	pairs, err := db.Scan(495, 505, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("scan [495, 505] (merged across shards):")
	for _, kv := range pairs {
		fmt.Printf("  %d -> %s\n", kv.Key, kv.Value)
	}

	// Batches may span shards: Commit splits into per-shard sub-batches;
	// TryCommit admits on every involved shard or on none (ErrBacklog).
	b := db.NewBatch()
	b.Put(2001, []byte("alpha"))
	b.Put(2002, []byte("beta"))
	g := b.Get(500)
	if err := b.Commit(); err != nil {
		log.Fatal(err)
	}
	b.Wait()
	fmt.Printf("cross-shard batch: key 500 -> %s\n", b.Value(g))
	b.Release()

	st := db.Stats()
	fmt.Printf("stats: shards=%d keys=%d height=%d ops=%d\n",
		st.Shards, st.NumKeys, st.Height, st.Ops)

	// Reopen: the device remembers its shard layout; each shard recovers
	// independently and the merged view is intact.
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}
	db = open()
	defer db.Close()
	if v, ok, _ := db.Get(2002); !ok {
		log.Fatal("key 2002 lost across reopen")
	} else {
		fmt.Printf("after reopen: key 2002 -> %s, keys=%d\n", v, db.Stats().NumKeys)
	}
}
