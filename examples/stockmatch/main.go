// Stockmatch mirrors the paper's SSE workload: an order book stored in a
// PA-Tree under composite (stock, price, seq) keys, so matching an
// incoming order against outstanding ones is a range scan over the
// stock's price band — exactly the access pattern §V describes for the
// Shanghai Stock Exchange traces.
//
//	go run ./examples/stockmatch
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	patree "github.com/patree/patree"
	"github.com/patree/patree/internal/sim"
)

// orderKey packs stock id (12 bits), price in ticks (20 bits) and a
// sequence number (32 bits) so orders cluster by stock and sort by price.
func orderKey(stock int, price uint32, seq uint64) uint64 {
	return uint64(stock&0xFFF)<<52 | uint64(price&0xFFFFF)<<32 | (seq & 0xFFFFFFFF)
}

type order struct {
	stock  int
	price  uint32
	volume uint32
	buy    bool
	seq    uint64
}

func (o order) encode() []byte {
	v := make([]byte, 13)
	binary.LittleEndian.PutUint32(v[0:4], uint32(o.stock))
	binary.LittleEndian.PutUint32(v[4:8], o.price)
	binary.LittleEndian.PutUint32(v[8:12], o.volume)
	if o.buy {
		v[12] = 1
	}
	return v
}

func decodeOrder(key uint64, v []byte) order {
	return order{
		stock:  int(binary.LittleEndian.Uint32(v[0:4])),
		price:  binary.LittleEndian.Uint32(v[4:8]),
		volume: binary.LittleEndian.Uint32(v[8:12]),
		buy:    v[12] == 1,
		seq:    key & 0xFFFFFFFF,
	}
}

func main() {
	db, err := patree.Open(patree.Options{Persistence: patree.Weak})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	rng := sim.NewRNG(7)
	seq := uint64(0)

	// Seed the book with resting sell orders on a few stocks.
	for i := 0; i < 5000; i++ {
		seq++
		o := order{
			stock:  int(rng.Uint64n(8)),
			price:  5000 + uint32(rng.Uint64n(200)),
			volume: 100 + uint32(rng.Uint64n(900)),
			buy:    false,
			seq:    seq,
		}
		if err := db.Put(orderKey(o.stock, o.price, o.seq), o.encode()); err != nil {
			log.Fatal(err)
		}
	}

	// An aggressive buy order arrives: match it against resting sells at
	// or below its limit price, lowest price first.
	buy := order{stock: 3, price: 5060, volume: 2000, buy: true}
	fmt.Printf("incoming: BUY %d of stock %d, limit %d ticks\n", buy.volume, buy.stock, buy.price)

	lo := orderKey(buy.stock, 0, 0)
	hi := orderKey(buy.stock, buy.price, ^uint64(0)&0xFFFFFFFF)
	book, err := db.Scan(lo, hi, 0)
	if err != nil {
		log.Fatal(err)
	}
	remaining := buy.volume
	fills := 0
	for _, kv := range book {
		if remaining == 0 {
			break
		}
		rest := decodeOrder(kv.Key, kv.Value)
		take := rest.volume
		if take > remaining {
			take = remaining
		}
		remaining -= take
		fills++
		fmt.Printf("  fill %4d @ %d ticks (resting order seq %d)\n", take, rest.price, rest.seq)
		if take == rest.volume {
			if _, err := db.Delete(kv.Key); err != nil {
				log.Fatal(err)
			}
		} else {
			rest.volume -= take
			if err := db.Put(kv.Key, rest.encode()); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("matched %d fills, %d unfilled\n", fills, remaining)
	if remaining > 0 {
		seq++
		buy.seq = seq
		if err := db.Put(orderKey(buy.stock, buy.price, seq), buy.encode()); err != nil {
			log.Fatal(err)
		}
		fmt.Println("residual posted to the book")
	}
	if err := db.Sync(); err != nil { // group-commit the batch (§III-C weak persistence)
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("book size %d orders; tree height %d\n", st.NumKeys, st.Height)
}
