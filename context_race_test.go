package patree_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	patree "github.com/patree/patree"
)

// TestWaitContextRacingDelivery drives WaitContext into the window where
// cancellation and completion land simultaneously: each iteration arms a
// context whose deadline is drawn from a spread around the operation's
// actual latency, so over many iterations both CAS outcomes — detach
// wins, completion wins — are exercised. The invariants under -race:
// a context error means the handle was detached (completion reclaims
// it, the caller walks away); any other return means the caller still
// owns the handle and the result must be coherent.
func TestWaitContextRacingDelivery(t *testing.T) {
	db, err := patree.Open(patree.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const goroutines = 4
	const iters = 400
	var detached, owned int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g+1) * 10000
			for i := 0; i < iters; i++ {
				k := base + uint64(i%64)
				h, err := db.PutAsync(k, []byte(fmt.Sprintf("v%d", i)))
				if err != nil {
					errCh <- err
					return
				}
				// Sweep the deadline through the completion window, including
				// an already-expired context (detach before the first wait).
				d := time.Duration(i%40) * 25 * time.Microsecond
				ctx, cancel := context.WithTimeout(context.Background(), d)
				werr := h.WaitContext(ctx)
				cancel()
				switch {
				case werr == nil:
					// Caller still owns the handle: full accessor use then
					// Release must be safe.
					if h.Err() != nil {
						errCh <- fmt.Errorf("Err() = %v after nil WaitContext", h.Err())
						return
					}
					h.Release()
					mu.Lock()
					owned++
					mu.Unlock()
				case errors.Is(werr, context.DeadlineExceeded):
					// Detached: the completion reclaims the handle; touching it
					// again is the misuse the guards catch. Verify the write
					// still lands (cancellation never cancels an admitted op).
					mu.Lock()
					detached++
					mu.Unlock()
				default:
					errCh <- fmt.Errorf("WaitContext = %v", werr)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	// The sweep must have exercised both CAS outcomes, or the race window
	// was never reached and the test proved nothing.
	if detached == 0 || owned == 0 {
		t.Fatalf("race window not exercised: detached=%d owned=%d", detached, owned)
	}
	t.Logf("detached=%d owned=%d", detached, owned)

	// Every write completed on the working thread regardless of
	// detachment: all keys must be present.
	for g := 0; g < goroutines; g++ {
		base := uint64(g+1) * 10000
		pairs, err := db.Scan(base, base+63, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) != 64 {
			t.Fatalf("goroutine %d: %d keys present, want 64 (a detached op was lost)", g, len(pairs))
		}
	}
}
