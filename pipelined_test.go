package patree

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/patree/patree/internal/nvme"
)

// TestPipelinedPropertyOps runs the randomized oracle stream with the
// full overlap machinery on — speculative prefetch, depth-8 WAL write
// pipelining and the off-worker scan merge — over 1 and 4 shards. The
// public surface must be indistinguishable from the classic path.
func TestPipelinedPropertyOps(t *testing.T) {
	for _, n := range []int{1, 4} {
		n := n
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			t.Parallel()
			db, err := Open(Options{
				DeviceBlocks: 1 << 16,
				Shards:       n,
				BufferPages:  64, // tiny: point ops miss, so speculation fires
				Journal:      true,
				Pipelined:    true,
			})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			defer db.Close()
			ops := 2000
			if testing.Short() {
				ops = 500
			}
			model := runShardedOps(t, db, n, int64(8800+n), ops)
			st := db.Stats()
			if st.NumKeys != uint64(len(model)) {
				t.Fatalf("shards=%d: Stats.NumKeys = %d, oracle %d", n, st.NumKeys, len(model))
			}
			// Sharding splits the key space, so at 4 shards each tree fits
			// its buffer and there is nothing to prefetch; only the 1-shard
			// run is guaranteed to miss.
			if n == 1 && st.SpecIssued == 0 {
				t.Fatalf("shards=%d: pipelined DB issued no speculative reads: %+v", n, st)
			}
			if st.SpecHits+st.SpecCancelled+st.SpecWasted > st.SpecIssued {
				t.Fatalf("shards=%d: speculation accounting inconsistent: %+v", n, st)
			}
		})
	}
}

// TestPipelinedOptionsDefaults pins the opt-in surface: the zero
// Options keep every overlap feature off, and Pipelined alone selects
// the documented WAL write depth.
func TestPipelinedOptionsDefaults(t *testing.T) {
	db, err := Open(Options{DeviceBlocks: 1 << 14})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	for k := uint64(1); k <= 256; k++ {
		if err := db.Put(k, []byte("v")); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	for k := uint64(1); k <= 256; k++ {
		if _, _, err := db.Get(k); err != nil {
			t.Fatalf("get: %v", err)
		}
	}
	if st := db.Stats(); st.SpecIssued != 0 || st.SpecHits != 0 || st.SpecCancelled != 0 || st.SpecWasted != 0 {
		t.Fatalf("default options moved speculation counters: %+v", st)
	}
}

// FuzzPipelinedOps is FuzzShardedOps with the overlap machinery on: a
// byte stream becomes point ops and scans over a journaled, pipelined
// 4-shard DB, checked against a flat map oracle, with a close/reopen
// cycle asserting that speculative reads and pipelined WAL writes
// never corrupt the persisted image. CI runs this for a bounded smoke
// window on every push.
func FuzzPipelinedOps(f *testing.F) {
	f.Add([]byte{0, 0, 1, 5, 1, 0, 1, 5, 2, 0, 1, 0})
	f.Add([]byte{4, 1, 0, 3, 0, 1, 0, 7, 3, 0, 0, 0, 2, 1, 0, 0})
	f.Add(bytes.Repeat([]byte{0, 2, 3, 9, 1, 2, 3, 0, 4, 0, 200, 3}, 30))
	f.Fuzz(func(t *testing.T, data []byte) {
		const chunk = 4
		ops := len(data) / chunk
		if ops == 0 {
			t.Skip()
		}
		if ops > 400 {
			ops = 400
		}
		dev := nvme.NewRAMDevice(nvme.RAMConfig{NumBlocks: 1 << 15})
		defer dev.Close()
		open := func() *DB {
			db, err := Open(Options{
				Device:      dev,
				Shards:      4,
				BufferPages: 64,
				Journal:     true,
				Pipelined:   true,
			})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			return db
		}
		db := open()
		model := map[uint64][]byte{}
		for i := 0; i < ops; i++ {
			b := data[i*chunk : (i+1)*chunk]
			key := 1 + uint64(b[1])%200 + uint64(b[2])%50*7
			val := []byte{b[3], byte(key), byte(i)}
			switch b[0] % 6 {
			case 0, 1: // put
				if err := db.Put(key, val); err != nil {
					t.Fatalf("op %d: put %d: %v", i, key, err)
				}
				model[key] = append([]byte(nil), val...)
			case 2: // delete
				_, existed := model[key]
				found, err := db.Delete(key)
				if err != nil {
					t.Fatalf("op %d: delete %d: %v", i, key, err)
				}
				if found != existed {
					t.Fatalf("op %d: delete %d found=%v, model %v", i, key, found, existed)
				}
				delete(model, key)
			case 3: // get
				want, existed := model[key]
				v, found, err := db.Get(key)
				if err != nil {
					t.Fatalf("op %d: get %d: %v", i, key, err)
				}
				if found != existed || (existed && !bytes.Equal(v, want)) {
					t.Fatalf("op %d: get %d = %q/%v, model %q/%v", i, key, v, found, want, existed)
				}
			case 4: // update
				_, existed := model[key]
				found, err := db.Update(key, val)
				if err != nil {
					t.Fatalf("op %d: update %d: %v", i, key, err)
				}
				if found != existed {
					t.Fatalf("op %d: update %d found=%v, model %v", i, key, found, existed)
				}
				if existed {
					model[key] = append([]byte(nil), val...)
				}
			default: // scan (merged off-worker under Pipelined)
				lo := uint64(b[1])
				hi := lo + uint64(b[3])*3
				limit := int(b[2]) % 5 // 0 = all
				pairs, err := db.Scan(lo, hi, limit)
				if err != nil {
					t.Fatalf("op %d: scan [%d,%d] limit %d: %v", i, lo, hi, limit, err)
				}
				checkScan(t, fmt.Sprintf("op=%d scan[%d,%d]l%d", i, lo, hi, limit),
					pairs, oracleScan(model, lo, hi, limit))
			}
		}
		if err := db.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		db = open()
		defer db.Close()
		pairs, err := db.Scan(0, ^uint64(0), 0)
		if err != nil {
			t.Fatalf("final scan: %v", err)
		}
		checkScan(t, "after reopen", pairs, oracleScan(model, 0, ^uint64(0), 0))
	})
}
