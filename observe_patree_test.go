package patree

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// obsLoad pushes n mixed operations through the public batch API — the
// shape a metrics-scraping embedder sees.
func obsLoad(t testing.TB, db *DB, n int) {
	t.Helper()
	for i := 0; i < n; {
		b := db.NewBatch()
		for j := 0; j < 64 && i < n; j++ {
			k := uint64(i) % 2048
			switch i % 4 {
			case 0, 1:
				b.Get(k)
			case 2:
				b.Put(k, []byte("observability-payload"))
			default:
				b.Delete(k)
			}
			i++
		}
		if err := b.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := b.Wait(); err != nil {
			t.Fatal(err)
		}
		b.Release()
	}
}

// TestMetricsUnderConcurrentLoad hammers the DB from several writer
// goroutines while others poll Stats() and Metrics() — the scrape-while-
// busy pattern. Run under -race this is the data-race check for the
// on-worker snapshot path.
func TestMetricsUnderConcurrentLoad(t *testing.T) {
	db := openTest(t, Options{DeviceBlocks: 1 << 16})
	for i := uint64(0); i < 2048; i++ {
		if err := db.Put(i, []byte("seed-value")); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			obsLoad(t, db, 4096)
		}()
	}
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				st := db.Stats()
				m := db.Metrics()
				if m.Ops < st.Ops {
					t.Errorf("later snapshot went backwards: %d < %d", m.Ops, st.Ops)
				}
			}
		}()
	}
	wg.Wait()

	m := db.Metrics()
	if m.Ops == 0 || len(m.Stages) == 0 {
		t.Fatalf("empty metrics after load: ops=%d stages=%d", m.Ops, len(m.Stages))
	}
	for _, s := range m.Stages {
		if s.Count == 0 {
			t.Errorf("%s/%s reported with zero count", s.Stage, s.Op)
		}
		if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max {
			t.Errorf("%s/%s quantiles not monotone: p50=%v p95=%v p99=%v max=%v",
				s.Stage, s.Op, s.P50, s.P95, s.P99, s.Max)
		}
	}
	if m.CPU.Total <= 0 {
		t.Errorf("no CPU accounted: %+v", m.CPU)
	}
}

// TestWriteTraceJSON checks the public trace path end to end: Open with
// tracing, run ops, export, and parse the Chrome trace JSON.
func TestWriteTraceJSON(t *testing.T) {
	db := openTest(t, Options{DeviceBlocks: 1 << 16, Trace: true, TraceEvents: 1 << 14})
	obsLoad(t, db, 2048)
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if doc.Unit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.Unit)
	}
	var slices int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "M", "i":
		case "X":
			slices++
		default:
			t.Fatalf("unexpected phase %v", e["ph"])
		}
	}
	if slices == 0 {
		t.Fatal("trace contains no duration slices")
	}
	if m := db.Metrics(); m.TraceEvents == 0 {
		t.Fatal("Metrics.TraceEvents is zero with tracing on")
	}
}

func TestWriteTraceDisabled(t *testing.T) {
	db := openTest(t, Options{})
	if err := db.WriteTrace(&bytes.Buffer{}); err != ErrTracingDisabled {
		t.Fatalf("err = %v, want ErrTracingDisabled", err)
	}
	if m := db.Metrics(); m.TraceEvents != 0 {
		t.Fatalf("TraceEvents = %d with tracing off", m.TraceEvents)
	}
}

// TestMetricsHandlerServesPrometheus smoke-tests the text exposition.
func TestMetricsHandlerServesPrometheus(t *testing.T) {
	db := openTest(t, Options{DeviceBlocks: 1 << 16})
	obsLoad(t, db, 1024)
	rec := httptest.NewRecorder()
	db.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE patree_ops_total counter",
		"patree_stage_seconds{",
		"patree_cpu_seconds_total{category=",
		"patree_probe_predictions_total{outcome=",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Prometheus text format: every non-comment line is "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "patree_") || !strings.Contains(line, " ") {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}

// TestTraceOffAllocsUnchanged is the guard for the observability PR's
// core promise: with Options.Trace off, the always-on stage metrics add
// no allocations to the cached-Get batch hot path (~1 alloc/op for the
// completion handle).
func TestTraceOffAllocsUnchanged(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	db := openTest(t, Options{DeviceBlocks: 1 << 16})
	for i := uint64(0); i < 2048; i++ {
		if err := db.Put(i, []byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	var i uint64
	got := testing.AllocsPerRun(200, func() {
		b := db.NewBatch()
		for j := 0; j < benchWindow; j++ {
			b.Get(i % 2048)
			i++
		}
		if err := b.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := b.Wait(); err != nil {
			t.Fatal(err)
		}
		b.Release()
	})
	// benchWindow cached gets cost ~1 alloc each (the result copy); allow
	// 1.5x headroom for pool misses before calling it a regression.
	if perOp := got / benchWindow; perOp > 1.5 {
		t.Fatalf("cached batched Get costs %.2f allocs/op with tracing off; budget 1.5", perOp)
	}
}
