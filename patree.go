// Package patree is a polled-mode, asynchronous B+ tree for NVMe-class
// storage, reproducing "PA-Tree: Polled-Mode Asynchronous B+ Tree for
// NVMe" (ICDE 2020).
//
// A PA-Tree processes many index operations in an interleaved fashion on
// a single working thread: when an operation issues an I/O it parks, the
// thread moves on to other operations, and a workload-aware scheduler
// decides when to poll the device's completion queue. This keeps the
// device saturated with asynchronous I/O without the synchronization and
// context-switch costs of a thread-per-request design.
//
// This package is the embedder-facing API: it runs the tree on a real
// goroutine over a memory-backed queue-pair device and offers blocking
// calls that are safe from any goroutine. The deterministic simulation
// used to reproduce the paper's experiments lives under internal/ and is
// driven by cmd/paexp and the benchmarks.
//
//	db, err := patree.Open(patree.Options{})
//	defer db.Close()
//	db.Put(42, []byte("answer"))
//	v, ok, _ := db.Get(42)
//
// The blocking calls admit one operation and wait for it, so a single
// caller goroutine holds at most one operation in flight — the tree's
// pipeline stays empty and the device idle. To reach the paper's queue
// depths from few goroutines, use the asynchronous API: every operation
// has an Async variant returning a *Handle future, and a Batch admits
// many heterogeneous operations in one admission-ring transaction:
//
//	h := db.PutAsync(42, []byte("answer"))
//	// ... issue more work ...
//	err := h.Wait()
//	h.Release()
//
//	b := db.NewBatch()
//	for k := uint64(0); k < 128; k++ {
//		b.Get(k)
//	}
//	b.Commit()
//	b.Wait()
//	v, ok := b.Value(3), b.Found(3)
//	b.Release()
//
// Admission is bounded: when the inbox ring is full, Async calls and
// Batch.Commit block until space frees, while Batch.TryCommit returns
// ErrBacklog without admitting anything. Context-aware variants
// (GetContext, PutContext, ...) additionally unblock on cancellation;
// see DESIGN.md for the detach semantics.
package patree

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/patree/patree/internal/core"
	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/probe"
	"github.com/patree/patree/internal/sched"
	"github.com/patree/patree/internal/storage"
	"github.com/patree/patree/internal/trace"
)

// MaxValueSize is the largest storable value (two max-size entries share
// one 512-byte node; see internal/storage).
const MaxValueSize = storage.MaxValueSize

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("patree: closed")

// ErrBacklog is returned by TryCommit when the admission ring cannot
// accept the whole batch atomically — the device-side pipeline is full
// and the caller should apply backpressure (wait, or shed load).
var ErrBacklog = core.ErrBacklog

// ErrDeviceFailed is returned by every operation once the device has
// failed unrecoverably (an I/O error that survived MaxIORetries
// retries). The DB is then in a terminal degraded state: in-flight and
// future operations drain with this error, and Close still shuts the
// working thread down cleanly. Reopening the device runs journal
// recovery, which restores every acknowledged write the device kept.
var ErrDeviceFailed = core.ErrDeviceFailed

// KV is a key/value pair returned by Scan.
type KV = core.KV

// Persistence selects the §III-C buffering mode.
type Persistence = core.Persistence

// Persistence modes.
const (
	// Strong writes every update through to the device before the
	// operation completes.
	Strong = core.StrongPersistence
	// Weak buffers updates in memory; call Sync to persist them.
	Weak = core.WeakPersistence
)

// Options configures Open.
type Options struct {
	// Device is the backing block device. Nil selects an in-memory
	// device sized by DeviceBlocks.
	Device nvme.Device
	// DeviceBlocks sizes the default in-memory device (default 1M blocks
	// = 512 MiB).
	DeviceBlocks uint64
	// Persistence selects Strong (default) or Weak buffering.
	Persistence Persistence
	// BufferPages is the page-cache capacity (default 4096 pages = 2 MiB).
	BufferPages int
	// InboxDepth bounds the admission ring (rounded up to a power of two;
	// default 4096). A full ring blocks Async calls and Commit, and makes
	// TryCommit return ErrBacklog.
	InboxDepth int
	// Format forces re-initialization even if the device already holds a
	// tree. Devices without a valid meta page are formatted only after
	// crash recovery fails to rebuild one from the redo journal.
	Format bool
	// Journal enables the redo journal: every mutation's page images are
	// appended to an on-device WAL and made durable before the operation
	// is acknowledged, so a crash loses no acknowledged write — Open
	// replays the journal on the next start. Under Weak persistence this
	// buys crash durability while pages stay buffered; under Strong it
	// closes the multi-page torn-update window.
	Journal bool
	// MaxIORetries bounds how many times one operation's failed device
	// command is retried (with exponential backoff) before the DB enters
	// the terminal ErrDeviceFailed state. 0 selects the default (3);
	// negative disables retries.
	MaxIORetries int
	// Trace enables the operation-lifecycle tracer: the working thread
	// records admission, queueing, latch, I/O and completion events into
	// a fixed ring, exported as Chrome trace-event JSON by WriteTrace
	// (viewable in Perfetto). Off by default; when off the hot path pays
	// only a nil check. Stage histograms (Metrics) are always collected.
	Trace bool
	// TraceEvents sizes the trace ring — the window of most recent events
	// retained (default 65536, ≈48 B each). Ignored unless Trace is set.
	TraceEvents int
}

// Stats reports tree activity.
type Stats struct {
	Ops          uint64
	NumKeys      uint64
	Height       int
	Probes       uint64
	ReadsIssued  uint64
	WritesIssued uint64
	// AdmitWaits counts admissions that found the inbox ring full and had
	// to back off — a sustained non-zero rate means callers outpace the
	// working thread and backpressure is engaging.
	AdmitWaits uint64
	BufferHit  float64
	// IOErrors counts device commands that completed with an error;
	// IORetries counts the bounded retries issued in response. A growing
	// gap between the two precedes the terminal ErrDeviceFailed state.
	IOErrors  uint64
	IORetries uint64
	// JournalAppends counts redo records appended to the WAL and
	// Checkpoints the completed journal truncations (both 0 unless
	// Options.Journal).
	JournalAppends uint64
	Checkpoints    uint64
}

// DB is an open PA-Tree.
type DB struct {
	dev     nvme.Device
	ownsDev bool
	tree    *core.Tree
	done    chan struct{}

	// policy and tracer back the observability surface: the policy's
	// accuracy tracker feeds ProbeStats, the tracer (nil unless
	// Options.Trace) feeds WriteTrace.
	policy *sched.Workload
	tracer *trace.Tracer

	// mu orders admissions against Close: admitting paths hold it shared
	// while checking closed and handing the operation to the tree, Close
	// holds it exclusively while setting closed. An operation therefore
	// either observes closed and fails with ErrClosed, or is fully
	// admitted before the tree is told to stop — core.ErrStopped can never
	// leak out of a well-ordered shutdown (and is mapped to ErrClosed
	// defensively anyway).
	mu     sync.RWMutex
	closed bool
}

// Open creates or opens a PA-Tree per opts and starts its working
// goroutine.
func Open(opts Options) (*DB, error) {
	dev := opts.Device
	owns := false
	if dev == nil {
		if opts.DeviceBlocks == 0 {
			opts.DeviceBlocks = 1 << 20
		}
		dev = nvme.NewRAMDevice(nvme.RAMConfig{NumBlocks: opts.DeviceBlocks})
		owns = true
	}
	if opts.BufferPages == 0 {
		opts.BufferPages = 4096
	}
	meta, err := core.ReadMeta(dev)
	switch {
	case opts.Format:
		if meta, err = core.Format(dev); err != nil {
			return nil, fmt.Errorf("patree: format: %w", err)
		}
	case err != nil:
		// The superblock is unreadable — possibly torn by a crash mid
		// meta write. Recovery can rebuild it from the journaled image;
		// only a device with no recoverable tree at all is formatted.
		if m, _, rerr := core.Recover(dev); rerr == nil {
			meta = m
		} else if meta, err = core.Format(dev); err != nil {
			return nil, fmt.Errorf("patree: format: %w", err)
		}
	case meta.WALBlocks != 0:
		// The device describes a journal region: replay whatever an
		// unclean shutdown left there (a no-op after a clean Close).
		m, _, rerr := core.Recover(dev)
		if rerr != nil {
			return nil, fmt.Errorf("patree: recover: %w", rerr)
		}
		meta = m
	}
	env := core.NewRealEnv()
	// Real-time polling: probes are cheap host work, so use a tight
	// probe backstop for low single-operation latency.
	model, err := probe.Default()
	if err != nil {
		return nil, err
	}
	policy := sched.NewWorkload(model, nil, 20*time.Microsecond)
	policy.SetSafety(20 * time.Microsecond)
	// A fresh admission cuts an idle yield short (paired with the
	// RealEnv wakeup), so a batch landing on an idle tree is picked up
	// immediately instead of after a yield quantum.
	policy.SetAdmissionAware(true)
	// Prediction-error introspection is pure observation (it never alters
	// probe decisions), so it is always on and Metrics can report it.
	policy.EnableAccuracy()
	var tracer *trace.Tracer
	if opts.Trace {
		if opts.TraceEvents == 0 {
			opts.TraceEvents = 65536
		}
		tracer = core.NewTracer(opts.TraceEvents)
	}
	tree, err := core.New(dev, core.Config{
		Persistence:  opts.Persistence,
		BufferPages:  opts.BufferPages,
		InboxDepth:   opts.InboxDepth,
		Journal:      opts.Journal,
		MaxIORetries: opts.MaxIORetries,
		Policy:       policy,
		Tracer:       tracer,
	}, env, meta)
	if err != nil {
		return nil, err
	}
	db := &DB{dev: dev, ownsDev: owns, tree: tree, done: make(chan struct{}),
		policy: policy, tracer: tracer}
	go func() {
		// The polled-mode working thread wants a dedicated OS thread, as
		// the paper's design assumes; everything else in the process can
		// share the rest.
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
		tree.Run()
		close(db.done)
	}()
	return db, nil
}

// mapErr translates internal sentinel errors to their public forms.
func mapErr(err error) error {
	if errors.Is(err, core.ErrStopped) {
		return ErrClosed
	}
	return err
}

// admit checks closed and hands op (whose Done is already set) to the
// working thread. It holds the admission lock shared across the whole
// hand-off; see DB.mu.
func (db *DB) admit(op *core.Op) error {
	db.mu.RLock()
	if db.closed {
		db.mu.RUnlock()
		op.Release()
		return ErrClosed
	}
	db.tree.Admit(op)
	db.mu.RUnlock()
	return nil
}

// exec admits op and blocks until the working thread completes it. The
// operation and its completion handle come from pools, so the steady
// state adds no admission-side allocation.
func (db *DB) exec(op *core.Op) (core.Result, error) {
	h := acquireHandle()
	op.Done = h.doneFn
	if err := db.admit(op); err != nil {
		h.abandon()
		return core.Result{}, err
	}
	err := h.Wait()
	res := h.res
	h.recycle()
	return res, err
}

// Put inserts or replaces key.
func (db *DB) Put(key uint64, value []byte) error {
	_, err := db.exec(core.AcquireOp().InitInsert(key, value))
	return err
}

// Get returns the value stored under key.
func (db *DB) Get(key uint64) ([]byte, bool, error) {
	res, err := db.exec(core.AcquireOp().InitSearch(key))
	return res.Value, res.Found, err
}

// Update replaces key only if present, reporting whether it was.
func (db *DB) Update(key uint64, value []byte) (bool, error) {
	res, err := db.exec(core.AcquireOp().InitUpdate(key, value))
	return res.Found, err
}

// Delete removes key, reporting whether it was present.
func (db *DB) Delete(key uint64) (bool, error) {
	res, err := db.exec(core.AcquireOp().InitDelete(key))
	return res.Found, err
}

// Scan returns pairs with keys in [lo, hi], at most limit (0 = all).
func (db *DB) Scan(lo, hi uint64, limit int) ([]KV, error) {
	res, err := db.exec(core.AcquireOp().InitRange(lo, hi, limit))
	return res.Pairs, err
}

// Sync flushes all buffered updates and the meta page to the device
// (meaningful under Weak persistence; cheap under Strong).
func (db *DB) Sync() error {
	_, err := db.exec(core.AcquireOp().InitSync())
	return err
}

// onWorker runs f on the working thread (via a pipeline no-op), giving
// it a quiescent, consistent view of tree state with no racing
// mutations. On a closed DB it waits for the worker to exit and runs f
// directly — the final state is then equally race-free.
func (db *DB) onWorker(f func()) {
	op := core.AcquireOp().InitNop()
	ch := make(chan struct{})
	op.Done = func(o *core.Op) {
		f()
		o.Release()
		close(ch)
	}
	if err := db.admit(op); err != nil {
		<-db.done
		f()
		return
	}
	<-ch
}

// Stats snapshots activity counters; the snapshot is taken on the
// working thread so it is a consistent view.
func (db *DB) Stats() Stats {
	var out Stats
	db.onWorker(func() { out = db.statsLocked() })
	return out
}

// statsLocked builds the Stats snapshot; call only from onWorker.
func (db *DB) statsLocked() Stats {
	st := db.tree.StatsSnapshot()
	return Stats{
		Ops:            st.TotalOps(),
		NumKeys:        db.tree.NumKeys(),
		Height:         db.tree.Height(),
		Probes:         st.Probes,
		ReadsIssued:    st.ReadsIssued,
		WritesIssued:   st.WritesIssued,
		AdmitWaits:     st.AdmitWaits,
		BufferHit:      db.tree.BufferStats().HitRate(),
		IOErrors:       st.IOErrors,
		IORetries:      st.IORetries,
		JournalAppends: st.JournalAppends,
		Checkpoints:    st.Checkpoints,
	}
}

// Close syncs (weak mode), stops the working thread and releases the
// device if this DB created it. Safe to call twice, and safe against
// concurrent operations: anything admitted before Close wins the
// admission lock completes normally; anything after fails with
// ErrClosed.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	// Mark closed before the final sync, not after it: new admissions are
	// refused from this point, so nothing can slip into the inbox between
	// the sync and Stop and then complete with a surprising error.
	db.closed = true
	db.mu.Unlock()
	// Persist buffered state before shutdown. closed is already set, so
	// this sync is admitted directly rather than through db.admit.
	h := acquireHandle()
	op := core.AcquireOp().InitSync()
	op.Done = h.doneFn
	db.tree.Admit(op)
	syncErr := h.Wait()
	h.recycle()
	db.tree.Stop()
	// Wake the worker in case it is idle-yielding with nothing admitted.
	select {
	case <-db.done:
	case <-time.After(10 * time.Second):
		return fmt.Errorf("patree: worker did not stop")
	}
	if db.ownsDev {
		if err := db.dev.Close(); err != nil && syncErr == nil {
			syncErr = err
		}
	}
	return syncErr
}
