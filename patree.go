// Package patree is a polled-mode, asynchronous B+ tree for NVMe-class
// storage, reproducing "PA-Tree: Polled-Mode Asynchronous B+ Tree for
// NVMe" (ICDE 2020).
//
// A PA-Tree processes many index operations in an interleaved fashion on
// a single working thread: when an operation issues an I/O it parks, the
// thread moves on to other operations, and a workload-aware scheduler
// decides when to poll the device's completion queue. This keeps the
// device saturated with asynchronous I/O without the synchronization and
// context-switch costs of a thread-per-request design.
//
// This package is the embedder-facing API: it runs the tree on a real
// goroutine over a memory-backed queue-pair device and offers blocking
// calls that are safe from any goroutine. The deterministic simulation
// used to reproduce the paper's experiments lives under internal/ and is
// driven by cmd/paexp and the benchmarks.
//
//	db, err := patree.Open(patree.Options{})
//	defer db.Close()
//	db.Put(42, []byte("answer"))
//	v, ok, _ := db.Get(42)
//
// The blocking calls admit one operation and wait for it, so a single
// caller goroutine holds at most one operation in flight — the tree's
// pipeline stays empty and the device idle. To reach the paper's queue
// depths from few goroutines, use the asynchronous API: every operation
// has an Async variant returning a *Handle future, and a Batch admits
// many heterogeneous operations in one admission-ring transaction:
//
//	h := db.PutAsync(42, []byte("answer"))
//	// ... issue more work ...
//	err := h.Wait()
//	h.Release()
//
//	b := db.NewBatch()
//	for k := uint64(0); k < 128; k++ {
//		b.Get(k)
//	}
//	b.Commit()
//	b.Wait()
//	v, ok := b.Value(3), b.Found(3)
//	b.Release()
//
// Admission is bounded: when the inbox ring is full, Async calls and
// Batch.Commit block until space frees, while Batch.TryCommit returns
// ErrBacklog without admitting anything. Context-aware variants
// (GetContext, PutContext, ...) additionally unblock on cancellation;
// see DESIGN.md for the detach semantics.
//
// # Sharding
//
// Options.Shards > 1 hash-partitions the keyspace across that many
// independent PA-Tree workers, each with its own working thread, queue
// pair, inbox ring, buffer pool and (optional) journal region, all over
// disjoint partitions of one device. The public surface is unchanged:
// point operations route by key, Scan scatter-gathers and merge-sorts
// across shards under the global limit, Sync/Stats/Metrics/WriteTrace
// aggregate, and Batch.Commit splits into per-shard sub-batches
// (TryCommit reserves room on every shard before admitting anywhere, so
// it stays all-or-nothing). Shards: 0 or 1 is the paper's single-worker
// tree, byte-for-byte. See DESIGN.md §12.
package patree

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/patree/patree/internal/core"
	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/probe"
	"github.com/patree/patree/internal/sched"
	"github.com/patree/patree/internal/storage"
	"github.com/patree/patree/internal/trace"
)

// MaxValueSize is the largest storable value (two max-size entries share
// one 512-byte node; see internal/storage).
const MaxValueSize = storage.MaxValueSize

// KV is a key/value pair returned by Scan.
type KV = core.KV

// Persistence selects the §III-C buffering mode.
type Persistence = core.Persistence

// Persistence modes.
const (
	// Strong writes every update through to the device before the
	// operation completes.
	Strong = core.StrongPersistence
	// Weak buffers updates in memory; call Sync to persist them.
	Weak = core.WeakPersistence
)

// Options configures Open.
type Options struct {
	// Device is the backing block device. Nil selects an in-memory
	// device sized by DeviceBlocks.
	Device nvme.Device
	// DeviceBlocks sizes the default in-memory device (default 1M blocks
	// = 512 MiB).
	DeviceBlocks uint64
	// Persistence selects Strong (default) or Weak buffering.
	Persistence Persistence
	// BufferPages is the total page-cache capacity (default 4096 pages =
	// 2 MiB), split evenly across shards when Shards > 1.
	BufferPages int
	// InboxDepth bounds each worker's admission ring (rounded up to a
	// power of two; default 4096). A full ring blocks Async calls and
	// Commit, and makes TryCommit return ErrBacklog.
	InboxDepth int
	// Format forces re-initialization even if the device already holds a
	// tree. Devices without a valid meta page are formatted only after
	// crash recovery fails to rebuild one from the redo journal.
	Format bool
	// Journal enables the redo journal: every mutation's page images are
	// appended to an on-device WAL and made durable before the operation
	// is acknowledged, so a crash loses no acknowledged write — Open
	// replays the journal on the next start. Under Weak persistence this
	// buys crash durability while pages stay buffered; under Strong it
	// closes the multi-page torn-update window.
	Journal bool
	// MaxIORetries bounds how many times one operation's failed device
	// command is retried (with exponential backoff) before the DB enters
	// the terminal ErrDeviceFailed state. 0 selects the default (3);
	// negative disables retries.
	MaxIORetries int
	// Trace enables the operation-lifecycle tracer: the working thread
	// records admission, queueing, latch, I/O and completion events into
	// a fixed ring, exported as Chrome trace-event JSON by WriteTrace
	// (viewable in Perfetto). Off by default; when off the hot path pays
	// only a nil check. Stage histograms (Metrics) are always collected.
	Trace bool
	// TraceEvents sizes the trace ring — the window of most recent events
	// retained per shard (default 65536, ≈48 B each). Ignored unless
	// Trace is set.
	TraceEvents int
	// Shards hash-partitions the keyspace across this many independent
	// workers over disjoint regions of the device (0 or 1 = the classic
	// single-worker tree). A device formatted with one shard layout
	// refuses to open under another: reformat or match the count.
	Shards int
	// Devices spreads the shards across several block devices instead of
	// one: shard i lives on a partition of Devices[Placement[i]] (or of
	// Devices[i mod len(Devices)] when Placement is nil), so shards on
	// different devices stop sharing one controller's interference
	// accounting — the Fig 3c ceiling that caps single-device scaling.
	// Mutually exclusive with Device; the DB never owns the devices.
	// Shards must be at least len(Devices) (every device hosts at least
	// one shard), and the formatted topology is stamped into each shard's
	// superblock: reopening with a different device count or order is
	// refused. A single-entry Devices is exactly the classic layout.
	Devices []nvme.Device
	// Placement maps shard index to device index (len must equal the
	// shard count; nil = round-robin). Ignored unless Devices is set.
	Placement []int
	// AdmissionWeighting turns on hot-shard adaptation for skewed
	// traffic: each shard's physical admission ring is allocated at twice
	// InboxDepth (heavy writers on a hot shard get the deeper ring), and
	// a per-shard AIMD governor watches the workers' queue-wait EWMAs,
	// imposing a soft admission window on a shard whose wait runs hot
	// relative to its peers (see core.Governor). Writes bound for a
	// throttled shard wait at admission (TryCommit reports ErrBacklog)
	// until the backlog drains, keeping the hot worker's in-engine
	// queue-wait within a bounded factor of the cold shards'; with
	// ConcurrentReads set, optimistically served gets bypass the window
	// entirely and still land on the hot shard. Off by default.
	AdmissionWeighting bool
	// ConcurrentReads lets Get/Scan (and their Async/Context variants) be
	// answered directly on the calling goroutine via an optimistic,
	// seqlock-validated B-link descent over pages the worker has
	// published, instead of queueing through the admission pipeline. The
	// worker remains the sole mutator; readers retry on version changes
	// and escape concurrent splits through right-sibling links. A read
	// whose key has a pending (admitted, unacknowledged) write falls back
	// to the pipeline, preserving read-your-writes per key; scans are
	// unordered with respect to concurrent point writes either way. Off
	// by default — the fast path adds worker-side publication work, and
	// deterministic simulation runs keep it off to stay byte-identical.
	ConcurrentReads bool
	// Pipelined enables the overlapped polled loop (DESIGN.md §17), three
	// coordinated pieces: speculative child prefetch (each worker walks
	// drained operations' predicted descent paths through resident pages
	// and issues the first missing page's read ahead of the operation's
	// turn, budget-bounded and cancelled on mispredict), pipelined WAL
	// block writes (up to WALWriteDepth journal blocks in flight, log
	// order and gate-before-mutation preserved — only meaningful with
	// Journal), and off-worker scan merge (multi-shard Scan results are
	// k-way merged on the waiting goroutine instead of the last-finishing
	// worker). Semantics are identical either way; off by default, and
	// deterministic simulation runs keep it off — speculative reads and
	// deeper WAL pipelining reshape the simulated I/O schedule.
	Pipelined bool
	// SpecBudget caps each shard's speculative prefetch reads in flight
	// (0 = default 16). Ignored unless Pipelined.
	SpecBudget int
	// WALWriteDepth bounds each shard's in-flight journal block writes
	// (0 = 8 when Pipelined, else the classic single-in-flight writer;
	// 1 forces the classic writer even when Pipelined). Ignored unless
	// Journal.
	WALWriteDepth int
}

// Stats reports tree activity, summed across shards.
type Stats struct {
	Ops          uint64
	NumKeys      uint64
	Height       int // tallest shard
	Probes       uint64
	ReadsIssued  uint64
	WritesIssued uint64
	// AdmitWaits counts admissions that found an inbox ring full and had
	// to back off — a sustained non-zero rate means callers outpace the
	// working threads and backpressure is engaging.
	AdmitWaits uint64
	BufferHit  float64
	// IOErrors counts device commands that completed with an error;
	// IORetries counts the bounded retries issued in response. A growing
	// gap between the two precedes the terminal ErrDeviceFailed state.
	IOErrors  uint64
	IORetries uint64
	// JournalAppends counts redo records appended to the WAL and
	// Checkpoints the completed journal truncations (both 0 unless
	// Options.Journal).
	JournalAppends uint64
	Checkpoints    uint64
	// Shards is the number of independent workers backing this DB (1 for
	// the classic single-worker tree) and Devices the number of block
	// devices they are spread over (1 unless Options.Devices named more).
	Shards  int
	Devices int
	// ThrottleWaits counts admissions the hot-shard governor held back
	// (0 unless Options.AdmissionWeighting; see ErrBacklog for the
	// non-blocking paths' behavior).
	ThrottleWaits uint64
	// Speculative-prefetch counters (all 0 unless Options.Pipelined):
	// reads issued ahead of need, operations that coalesced onto one,
	// completions dropped on mispredict, and installs nobody was waiting
	// for. Hits vs issued is the prediction accuracy; cancelled+wasted
	// vs issued is the overhead speculation cost the device.
	SpecIssued    uint64
	SpecHits      uint64
	SpecCancelled uint64
	SpecWasted    uint64
}

// shard is one worker: a tree, its working goroutine, and the
// per-worker observability state behind Metrics and WriteTrace.
type shard struct {
	idx    int
	tree   *core.Tree
	policy *sched.Workload
	tracer *trace.Tracer
	done   chan struct{}
}

// DB is an open PA-Tree.
type DB struct {
	dev     nvme.Device
	ownsDev bool
	shards  []*shard
	devices int // distinct devices backing the shards

	// Hot-shard adaptation (Options.AdmissionWeighting): gov holds the
	// per-shard admission windows, govMu serializes its Adapt calls,
	// admitSeq amortizes them (one evaluation every govAdaptEvery
	// admissions) and throttleWaits counts admissions held back.
	gov           *core.Governor
	govMu         sync.Mutex
	admitSeq      atomic.Uint64
	throttleWaits atomic.Uint64

	// mu orders admissions against Close: admitting paths hold it shared
	// while checking closed and handing operations to the trees, Close
	// holds it exclusively while setting closed. An operation therefore
	// either observes closed and fails with ErrClosed, or is fully
	// admitted before any tree is told to stop — core.ErrStopped can never
	// leak out of a well-ordered shutdown (and is mapped to ErrClosed
	// defensively anyway). Holding it shared across a whole fan-out also
	// makes multi-shard admissions atomic with respect to Close.
	mu     sync.RWMutex
	closed bool

	// concReads mirrors Options.ConcurrentReads; when set, read paths try
	// the optimistic published-page descent before the pipeline.
	concReads bool

	// deferMerge mirrors Options.Pipelined's off-worker merge piece:
	// fanned scans and syncs deliver their k-way merge lazily, to run on
	// the goroutine that waits on the handle rather than on the working
	// thread whose completion closed the scatter.
	deferMerge bool
}

// minShardBlocks is the smallest device partition a shard accepts: room
// for the superblock, a root, and a useful WAL region.
const minShardBlocks = 1024

// govAdaptEvery is how many admissions pass between two governor
// evaluations — frequent enough to track a shifting hot set, amortized
// enough to stay off the admission fast path.
const govAdaptEvery = 1024

// Open creates or opens a PA-Tree per opts and starts its working
// goroutine(s).
func Open(opts Options) (*DB, error) {
	if len(opts.Devices) > 0 && opts.Device != nil {
		return nil, fmt.Errorf("patree: set Options.Device or Options.Devices, not both")
	}
	if len(opts.Devices) == 1 {
		// A one-device topology is exactly the classic layout; normalize
		// so the single- and multi-device paths stay byte-identical.
		for i, d := range opts.Placement {
			if d != 0 {
				return nil, fmt.Errorf("patree: shard %d placed on device %d, have 1 device", i, d)
			}
		}
		opts.Device = opts.Devices[0]
		opts.Devices = nil
	}
	dev := opts.Device
	owns := false
	if dev == nil && len(opts.Devices) == 0 {
		if opts.DeviceBlocks == 0 {
			opts.DeviceBlocks = 1 << 20
		}
		dev = nvme.NewRAMDevice(nvme.RAMConfig{NumBlocks: opts.DeviceBlocks})
		owns = true
	}
	if opts.BufferPages == 0 {
		opts.BufferPages = 4096
	}
	if opts.InboxDepth == 0 {
		opts.InboxDepth = 4096
	}
	n := opts.Shards
	if n <= 1 {
		n = 1
	}
	if n > 1<<16-1 {
		return nil, fmt.Errorf("patree: %d shards exceeds the format limit", n)
	}
	if opts.Pipelined && opts.WALWriteDepth == 0 {
		opts.WALWriteDepth = 8
	}
	db := &DB{dev: dev, ownsDev: owns, devices: 1, concReads: opts.ConcurrentReads, deferMerge: opts.Pipelined}
	if opts.AdmissionWeighting {
		// The governor works the nominal depth; the physical ring is
		// doubled below so a throttled topology still has the deeper ring
		// the hot shard's writers were promised.
		db.gov = core.NewGovernor(n, opts.InboxDepth)
		opts.InboxDepth *= 2
	}
	if len(opts.Devices) > 1 {
		return openMultiDevice(db, opts, n)
	}
	if n == 1 {
		// Single worker: the device is used directly, exactly the
		// pre-sharding layout (shard identity 0/0 in the superblock).
		s, err := openShard(dev, opts, opts.BufferPages, 0, 0, 0, 0)
		if err != nil {
			return nil, err
		}
		db.shards = []*shard{s}
		return db, nil
	}
	per := dev.NumBlocks() / uint64(n)
	if per < minShardBlocks {
		return nil, fmt.Errorf("patree: device of %d blocks too small for %d shards (need %d blocks each)",
			dev.NumBlocks(), n, minShardBlocks)
	}
	bufPer := opts.BufferPages / n
	if bufPer < 64 {
		bufPer = 64
	}
	shards := make([]*shard, n)
	for i := 0; i < n; i++ {
		part, err := nvme.NewPartition(dev, uint64(i)*per, per)
		if err != nil {
			return nil, err
		}
		s, err := openShard(part, opts, bufPer, uint16(i), uint16(n), 0, 0)
		if err != nil {
			// Unwind the workers already started so no goroutine leaks.
			for _, prev := range shards[:i] {
				prev.tree.Stop()
				<-prev.done
			}
			return nil, fmt.Errorf("patree: shard %d/%d: %w", i, n, err)
		}
		s.idx = i
		shards[i] = s
	}
	db.shards = shards
	return db, nil
}

// openMultiDevice opens the N-shards × M-devices topology: each shard
// lives on a partition of its placed device (nvme.ShardPartitions), with
// the placement stamped into the shard's superblock so the same device
// list — same count, same order — is required to reopen it.
func openMultiDevice(db *DB, opts Options, n int) (*DB, error) {
	m := len(opts.Devices)
	if n < m {
		return nil, fmt.Errorf("patree: %d shards cannot cover %d devices — every device must host at least one shard (raise Options.Shards or drop devices)", n, m)
	}
	place := opts.Placement
	if place == nil {
		place = make([]int, n)
		for i := range place {
			place[i] = i % m
		}
	}
	parts, err := nvme.ShardPartitions(opts.Devices, n, place)
	if err != nil {
		return nil, err
	}
	for i, p := range parts {
		if p.NumBlocks() < minShardBlocks {
			return nil, fmt.Errorf("patree: device %d of %d blocks too small for its %d shards (shard %d needs %d blocks)",
				place[i], opts.Devices[place[i]].NumBlocks(), countPlaced(place, place[i]), i, minShardBlocks)
		}
	}
	bufPer := opts.BufferPages / n
	if bufPer < 64 {
		bufPer = 64
	}
	shards := make([]*shard, n)
	for i, part := range parts {
		s, err := openShard(part, opts, bufPer, uint16(i), uint16(n), uint16(place[i]), uint16(m))
		if err != nil {
			for _, prev := range shards[:i] {
				prev.tree.Stop()
				<-prev.done
			}
			return nil, fmt.Errorf("patree: shard %d/%d (device %d/%d): %w", i, n, place[i], m, err)
		}
		s.idx = i
		shards[i] = s
	}
	db.shards = shards
	db.devices = m
	return db, nil
}

// countPlaced counts the shards a placement assigns to device d.
func countPlaced(place []int, d int) int {
	k := 0
	for _, p := range place {
		if p == d {
			k++
		}
	}
	return k
}

// openShard formats/recovers one device (or partition) as shard id of
// count placed on device devID of devCount, verifies its recorded shard
// and device identity, and starts its worker.
func openShard(dev nvme.Device, opts Options, bufferPages int, id, count, devID, devCount uint16) (*shard, error) {
	meta, err := core.ReadMeta(dev)
	switch {
	case opts.Format:
		if meta, err = core.FormatShardDevice(dev, id, count, devID, devCount); err != nil {
			return nil, fmt.Errorf("patree: format: %w", err)
		}
	case err != nil:
		// The superblock is unreadable — possibly torn by a crash mid
		// meta write. Recovery can rebuild it from the journaled image;
		// only a device with no recoverable tree at all is formatted.
		if m, _, rerr := core.Recover(dev); rerr == nil {
			meta = m
		} else if meta, err = core.FormatShardDevice(dev, id, count, devID, devCount); err != nil {
			return nil, fmt.Errorf("patree: format: %w", err)
		}
	case meta.WALBlocks != 0:
		// The device describes a journal region: replay whatever an
		// unclean shutdown left there (a no-op after a clean Close). A
		// topology mismatch is diagnosed first — under the wrong partition
		// geometry the recorded WAL range may not even be addressable.
		if err := checkShardIdentity(meta, id, count, devID, devCount); err != nil {
			return nil, err
		}
		m, _, rerr := core.Recover(dev)
		if rerr != nil {
			return nil, fmt.Errorf("patree: recover: %w", rerr)
		}
		meta = m
	}
	if err := checkShardIdentity(meta, id, count, devID, devCount); err != nil {
		return nil, err
	}
	env := core.NewRealEnv()
	// Real-time polling: probes are cheap host work, so use a tight
	// probe backstop for low single-operation latency.
	model, err := probe.Default()
	if err != nil {
		return nil, err
	}
	policy := sched.NewWorkload(model, nil, 20*time.Microsecond)
	policy.SetSafety(20 * time.Microsecond)
	// A fresh admission cuts an idle yield short (paired with the
	// RealEnv wakeup), so a batch landing on an idle tree is picked up
	// immediately instead of after a yield quantum.
	policy.SetAdmissionAware(true)
	// Prediction-error introspection is pure observation (it never alters
	// probe decisions), so it is always on and Metrics can report it.
	policy.EnableAccuracy()
	var tracer *trace.Tracer
	if opts.Trace {
		if opts.TraceEvents == 0 {
			opts.TraceEvents = 65536
		}
		tracer = core.NewTracer(opts.TraceEvents)
	}
	tree, err := core.New(dev, core.Config{
		Persistence:         opts.Persistence,
		BufferPages:         bufferPages,
		InboxDepth:          opts.InboxDepth,
		Journal:             opts.Journal,
		MaxIORetries:        opts.MaxIORetries,
		Policy:              policy,
		Tracer:              tracer,
		ConcurrentReads:     opts.ConcurrentReads,
		SpeculativePrefetch: opts.Pipelined,
		SpecBudget:          opts.SpecBudget,
		WALWriteDepth:       opts.WALWriteDepth,
	}, env, meta)
	if err != nil {
		return nil, err
	}
	s := &shard{tree: tree, policy: policy, tracer: tracer, done: make(chan struct{})}
	go func() {
		// The polled-mode working thread wants a dedicated OS thread, as
		// the paper's design assumes; everything else in the process can
		// share the rest.
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
		tree.Run()
		close(s.done)
	}()
	return s, nil
}

// checkShardIdentity compares a superblock's recorded shard and device
// placement against the topology it is being opened under. The device
// check runs first so a mis-assembled device list gets the
// device-flavored diagnosis even when the shard ids also disagree.
func checkShardIdentity(meta *storage.Meta, id, count, devID, devCount uint16) error {
	if meta.DeviceID != devID || meta.DeviceCount != devCount {
		return fmt.Errorf("patree: device holds shard %d placed on device %d of %d, opened as device %d of %d — pass Options.Devices in the formatted count and order (or Format to repartition)",
			meta.ShardID, meta.DeviceID, meta.DeviceCount, devID, devCount)
	}
	if meta.ShardID != id || meta.ShardCount != count {
		return fmt.Errorf("patree: device holds shard %d of %d, opened as %d of %d — set Options.Shards to the formatted count (or Format to repartition)",
			meta.ShardID, meta.ShardCount, id, count)
	}
	return nil
}

// mapErr translates internal sentinel errors to their public forms.
func mapErr(err error) error {
	if errors.Is(err, core.ErrStopped) {
		return ErrClosed
	}
	return err
}

// shardFor routes a key to its owning shard (see core.ShardOf).
func (db *DB) shardFor(key uint64) *shard {
	if len(db.shards) == 1 {
		return db.shards[0]
	}
	return db.shards[core.ShardOf(key, len(db.shards))]
}

// throttle holds the caller back while s is under an imposed admission
// window at its cap (Options.AdmissionWeighting). It runs before the
// admission lock is taken, so a throttled producer never delays Close;
// a closed DB releases every waiter (the subsequent admit fails with
// ErrClosed). Observability no-ops (onWorker) skip it — only index
// operations are weighted.
func (db *DB) throttle(s *shard) {
	g := db.gov
	if g == nil {
		return
	}
	db.maybeAdapt()
	if !g.Throttled(s.idx, s.tree.EngineDepth()) {
		return
	}
	db.throttleWaits.Add(1)
	spins := 0
	for g.Throttled(s.idx, s.tree.EngineDepth()) {
		spins++
		if spins%64 == 0 {
			time.Sleep(time.Microsecond)
			db.mu.RLock()
			closed := db.closed
			db.mu.RUnlock()
			if closed {
				return
			}
			// Keep adapting while spinning: recovery of the window is what
			// ends the wait when the worker has drained its backlog.
			db.maybeAdapt()
		} else {
			runtime.Gosched()
		}
	}
}

// maybeAdapt runs one governor evaluation every govAdaptEvery
// admissions, feeding it every shard's live depth and queue-wait EWMA.
func (db *DB) maybeAdapt() {
	if db.admitSeq.Add(1)%govAdaptEvery != 0 {
		return
	}
	db.govMu.Lock()
	defer db.govMu.Unlock()
	depths := make([]int, len(db.shards))
	waits := make([]time.Duration, len(db.shards))
	for i, s := range db.shards {
		depths[i] = s.tree.EngineDepth()
		waits[i] = s.tree.QueueWaitEWMA()
	}
	db.gov.Adapt(depths, waits)
}

// throttledNow reports whether s is at its admission window right now —
// the non-blocking paths' (TryCommit) check.
func (db *DB) throttledNow(s *shard) bool {
	if db.gov == nil {
		return false
	}
	db.maybeAdapt()
	return db.gov.Throttled(s.idx, s.tree.EngineDepth())
}

// admit checks closed and hands op (whose Done is already set) to s's
// working thread. It holds the admission lock shared across the whole
// hand-off; see DB.mu.
func (db *DB) admit(s *shard, op *core.Op) error {
	db.mu.RLock()
	if db.closed {
		db.mu.RUnlock()
		op.Release()
		return ErrClosed
	}
	s.tree.Admit(op)
	db.mu.RUnlock()
	return nil
}

// exec admits op on s and blocks until the working thread completes it.
// The operation and its completion handle come from pools, so the steady
// state adds no admission-side allocation.
func (db *DB) exec(s *shard, op *core.Op) (core.Result, error) {
	h := acquireHandle()
	op.Done = h.doneFn
	db.throttle(s)
	if err := db.admit(s, op); err != nil {
		h.abandon()
		return core.Result{}, err
	}
	err := h.Wait()
	res := h.res
	h.recycle()
	return res, err
}

// Put inserts or replaces key.
func (db *DB) Put(key uint64, value []byte) error {
	_, err := db.exec(db.shardFor(key), core.AcquireOp().InitInsert(key, value))
	return err
}

// Get returns the value stored under key. With Options.ConcurrentReads
// it is answered on the calling goroutine when the optimistic read can
// prove the answer current, falling back to the pipeline otherwise.
func (db *DB) Get(key uint64) ([]byte, bool, error) {
	if db.concReads {
		if res, ok := db.tryConcGet(key); ok {
			return res.Value, res.Found, nil
		}
	}
	res, err := db.exec(db.shardFor(key), core.AcquireOp().InitSearch(key))
	return res.Value, res.Found, err
}

// Update replaces key only if present, reporting whether it was.
func (db *DB) Update(key uint64, value []byte) (bool, error) {
	res, err := db.exec(db.shardFor(key), core.AcquireOp().InitUpdate(key, value))
	return res.Found, err
}

// Delete removes key, reporting whether it was present.
func (db *DB) Delete(key uint64) (bool, error) {
	res, err := db.exec(db.shardFor(key), core.AcquireOp().InitDelete(key))
	return res.Found, err
}

// Scan returns pairs with keys in [lo, hi], at most limit (0 = all).
// Across shards the per-shard results are merge-sorted and the limit
// applies to the merged stream, so the result is the same ascending
// prefix a single tree would return.
func (db *DB) Scan(lo, hi uint64, limit int) ([]KV, error) {
	if db.concReads {
		if res, ok := db.tryConcScan(lo, hi, limit); ok {
			return res.Pairs, nil
		}
	}
	if len(db.shards) == 1 {
		res, err := db.exec(db.shards[0], core.AcquireOp().InitRange(lo, hi, limit))
		return res.Pairs, err
	}
	h, err := db.ScanAsync(lo, hi, limit)
	if err != nil {
		return nil, err
	}
	err = h.Wait()
	pairs := h.res.Pairs
	h.recycle()
	return pairs, err
}

// Sync flushes all buffered updates and the meta pages to the device
// (meaningful under Weak persistence; cheap under Strong). Across
// shards it fans out and waits for every shard's flush.
func (db *DB) Sync() error {
	if len(db.shards) == 1 {
		_, err := db.exec(db.shards[0], core.AcquireOp().InitSync())
		return err
	}
	h, err := db.SyncAsync()
	if err != nil {
		return err
	}
	err = h.Wait()
	h.recycle()
	return err
}

// onWorker runs f on s's working thread (via a pipeline no-op), giving
// it a quiescent, consistent view of that shard's state with no racing
// mutations. On a closed DB it waits for the worker to exit and runs f
// directly — the final state is then equally race-free.
func (db *DB) onWorker(s *shard, f func()) {
	op := core.AcquireOp().InitNop()
	ch := make(chan struct{})
	op.Done = func(o *core.Op) {
		f()
		o.Release()
		close(ch)
	}
	if err := db.admit(s, op); err != nil {
		<-s.done
		f()
		return
	}
	<-ch
}

// Stats snapshots activity counters, summed across shards; each shard's
// contribution is taken on its working thread so it is a consistent
// per-shard view.
func (db *DB) Stats() Stats {
	var out Stats
	var hits, misses uint64
	for _, s := range db.shards {
		var part Stats
		var bs bufferCounts
		db.onWorker(s, func() { part, bs = s.statsSnapshot() })
		out.Ops += part.Ops
		out.NumKeys += part.NumKeys
		if part.Height > out.Height {
			out.Height = part.Height
		}
		out.Probes += part.Probes
		out.ReadsIssued += part.ReadsIssued
		out.WritesIssued += part.WritesIssued
		out.AdmitWaits += part.AdmitWaits
		out.IOErrors += part.IOErrors
		out.IORetries += part.IORetries
		out.JournalAppends += part.JournalAppends
		out.Checkpoints += part.Checkpoints
		out.SpecIssued += part.SpecIssued
		out.SpecHits += part.SpecHits
		out.SpecCancelled += part.SpecCancelled
		out.SpecWasted += part.SpecWasted
		hits += bs.hits
		misses += bs.misses
	}
	if hits+misses > 0 {
		out.BufferHit = float64(hits) / float64(hits+misses)
	}
	out.Shards = len(db.shards)
	out.Devices = db.devices
	out.ThrottleWaits = db.throttleWaits.Load()
	return out
}

// bufferCounts carries raw hit/miss counters out of a shard snapshot so
// the merged hit rate is weighted, not an average of averages.
type bufferCounts struct{ hits, misses uint64 }

// statsSnapshot builds one shard's Stats contribution; call only on the
// shard's working thread (onWorker).
func (s *shard) statsSnapshot() (Stats, bufferCounts) {
	st := s.tree.StatsSnapshot()
	bs := s.tree.BufferStats()
	return Stats{
		Ops:            st.TotalOps(),
		NumKeys:        s.tree.NumKeys(),
		Height:         s.tree.Height(),
		Probes:         st.Probes,
		ReadsIssued:    st.ReadsIssued,
		WritesIssued:   st.WritesIssued,
		AdmitWaits:     st.AdmitWaits,
		IOErrors:       st.IOErrors,
		IORetries:      st.IORetries,
		JournalAppends: st.JournalAppends,
		Checkpoints:    st.Checkpoints,
		SpecIssued:     st.SpecIssued,
		SpecHits:       st.SpecHits,
		SpecCancelled:  st.SpecCancelled,
		SpecWasted:     st.SpecWasted,
	}, bufferCounts{hits: bs.Hits, misses: bs.Misses}
}

// Close syncs (weak mode), stops the working threads and releases the
// device if this DB created it. Safe to call twice, and safe against
// concurrent operations: anything admitted before Close wins the
// admission lock completes normally; anything after fails with
// ErrClosed. Shards are flushed in parallel (each gets a final sync
// before its Stop) and the first error is reported.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	// Mark closed before the final sync, not after it: new admissions are
	// refused from this point, so nothing can slip into the inboxes
	// between the sync and Stop and then complete with a surprising error.
	db.closed = true
	db.mu.Unlock()
	// Persist buffered state before shutdown. closed is already set, so
	// these syncs are admitted directly rather than through db.admit.
	handles := make([]*Handle, len(db.shards))
	for i, s := range db.shards {
		h := acquireHandle()
		op := core.AcquireOp().InitSync()
		op.Done = h.doneFn
		s.tree.Admit(op)
		handles[i] = h
	}
	var syncErr error
	for i, s := range db.shards {
		if err := handles[i].Wait(); err != nil && syncErr == nil {
			syncErr = err
		}
		handles[i].recycle()
		s.tree.Stop()
	}
	for _, s := range db.shards {
		select {
		case <-s.done:
		case <-time.After(10 * time.Second):
			return fmt.Errorf("patree: worker did not stop")
		}
	}
	if db.ownsDev {
		if err := db.dev.Close(); err != nil && syncErr == nil {
			syncErr = err
		}
	}
	return syncErr
}
