// Package patree is a polled-mode, asynchronous B+ tree for NVMe-class
// storage, reproducing "PA-Tree: Polled-Mode Asynchronous B+ Tree for
// NVMe" (ICDE 2020).
//
// A PA-Tree processes many index operations in an interleaved fashion on
// a single working thread: when an operation issues an I/O it parks, the
// thread moves on to other operations, and a workload-aware scheduler
// decides when to poll the device's completion queue. This keeps the
// device saturated with asynchronous I/O without the synchronization and
// context-switch costs of a thread-per-request design.
//
// This package is the embedder-facing API: it runs the tree on a real
// goroutine over a memory-backed queue-pair device and offers blocking
// calls that are safe from any goroutine. The deterministic simulation
// used to reproduce the paper's experiments lives under internal/ and is
// driven by cmd/paexp and the benchmarks.
//
//	db, err := patree.Open(patree.Options{})
//	defer db.Close()
//	db.Put(42, []byte("answer"))
//	v, ok, _ := db.Get(42)
package patree

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/patree/patree/internal/core"
	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/probe"
	"github.com/patree/patree/internal/sched"
	"github.com/patree/patree/internal/storage"
)

// MaxValueSize is the largest storable value (two max-size entries share
// one 512-byte node; see internal/storage).
const MaxValueSize = storage.MaxValueSize

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("patree: closed")

// KV is a key/value pair returned by Scan.
type KV = core.KV

// Persistence selects the §III-C buffering mode.
type Persistence = core.Persistence

// Persistence modes.
const (
	// Strong writes every update through to the device before the
	// operation completes.
	Strong = core.StrongPersistence
	// Weak buffers updates in memory; call Sync to persist them.
	Weak = core.WeakPersistence
)

// Options configures Open.
type Options struct {
	// Device is the backing block device. Nil selects an in-memory
	// device sized by DeviceBlocks.
	Device nvme.Device
	// DeviceBlocks sizes the default in-memory device (default 1M blocks
	// = 512 MiB).
	DeviceBlocks uint64
	// Persistence selects Strong (default) or Weak buffering.
	Persistence Persistence
	// BufferPages is the page-cache capacity (default 4096 pages = 2 MiB).
	BufferPages int
	// Format forces re-initialization even if the device already holds a
	// tree. Devices without a valid meta page are always formatted.
	Format bool
}

// Stats reports tree activity.
type Stats struct {
	Ops         uint64
	NumKeys     uint64
	Height      int
	Probes      uint64
	ReadsIssued uint64
	WritesIssue uint64
	BufferHit   float64
}

// DB is an open PA-Tree.
type DB struct {
	dev     nvme.Device
	ownsDev bool
	tree    *core.Tree
	done    chan struct{}

	mu     sync.Mutex
	closed bool
}

// Open creates or opens a PA-Tree per opts and starts its working
// goroutine.
func Open(opts Options) (*DB, error) {
	dev := opts.Device
	owns := false
	if dev == nil {
		if opts.DeviceBlocks == 0 {
			opts.DeviceBlocks = 1 << 20
		}
		dev = nvme.NewRAMDevice(nvme.RAMConfig{NumBlocks: opts.DeviceBlocks})
		owns = true
	}
	if opts.BufferPages == 0 {
		opts.BufferPages = 4096
	}
	meta, err := core.ReadMeta(dev)
	if err != nil || opts.Format {
		meta, err = core.Format(dev)
		if err != nil {
			return nil, fmt.Errorf("patree: format: %w", err)
		}
	}
	env := core.NewRealEnv()
	// Real-time polling: probes are cheap host work, so use a tight
	// probe backstop for low single-operation latency.
	model, err := probe.Default()
	if err != nil {
		return nil, err
	}
	policy := sched.NewWorkload(model, nil, 20*time.Microsecond)
	policy.SetSafety(20 * time.Microsecond)
	tree, err := core.New(dev, core.Config{
		Persistence: opts.Persistence,
		BufferPages: opts.BufferPages,
		Policy:      policy,
	}, env, meta)
	if err != nil {
		return nil, err
	}
	db := &DB{dev: dev, ownsDev: owns, tree: tree, done: make(chan struct{})}
	go func() {
		// The polled-mode working thread wants a dedicated OS thread, as
		// the paper's design assumes; everything else in the process can
		// share the rest.
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
		tree.Run()
		close(db.done)
	}()
	return db, nil
}

// exec admits op and blocks until the working thread completes it.
func (db *DB) exec(op *core.Op) (core.Result, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return core.Result{}, ErrClosed
	}
	db.mu.Unlock()
	ch := make(chan struct{})
	op.Done = func(*core.Op) { close(ch) }
	db.tree.Admit(op)
	<-ch
	return op.Res, op.Res.Err
}

// Put inserts or replaces key.
func (db *DB) Put(key uint64, value []byte) error {
	_, err := db.exec(core.NewInsert(key, value, nil))
	return err
}

// Get returns the value stored under key.
func (db *DB) Get(key uint64) ([]byte, bool, error) {
	res, err := db.exec(core.NewSearch(key, nil))
	return res.Value, res.Found, err
}

// Update replaces key only if present, reporting whether it was.
func (db *DB) Update(key uint64, value []byte) (bool, error) {
	res, err := db.exec(core.NewUpdate(key, value, nil))
	return res.Found, err
}

// Delete removes key, reporting whether it was present.
func (db *DB) Delete(key uint64) (bool, error) {
	res, err := db.exec(core.NewDelete(key, nil))
	return res.Found, err
}

// Scan returns pairs with keys in [lo, hi], at most limit (0 = all).
func (db *DB) Scan(lo, hi uint64, limit int) ([]KV, error) {
	res, err := db.exec(core.NewRange(lo, hi, limit, nil))
	return res.Pairs, err
}

// Sync flushes all buffered updates and the meta page to the device
// (meaningful under Weak persistence; cheap under Strong).
func (db *DB) Sync() error {
	_, err := db.exec(core.NewSync(nil))
	return err
}

// Stats snapshots activity counters.
func (db *DB) Stats() Stats {
	st := db.tree.StatsSnapshot()
	return Stats{
		Ops:         st.TotalOps(),
		NumKeys:     db.tree.NumKeys(),
		Height:      db.tree.Height(),
		Probes:      st.Probes,
		ReadsIssued: st.ReadsIssued,
		WritesIssue: st.WritesIssued,
		BufferHit:   db.tree.BufferStats().HitRate(),
	}
}

// Close syncs (weak mode), stops the working thread and releases the
// device if this DB created it. Safe to call twice.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.mu.Unlock()
	// Persist buffered state before shutdown.
	syncErr := db.Sync()
	db.mu.Lock()
	db.closed = true
	db.mu.Unlock()
	db.tree.Stop()
	// Wake the worker in case it is idle-yielding with nothing admitted.
	select {
	case <-db.done:
	case <-time.After(10 * time.Second):
		return fmt.Errorf("patree: worker did not stop")
	}
	if db.ownsDev {
		if err := db.dev.Close(); err != nil && syncErr == nil {
			syncErr = err
		}
	}
	return syncErr
}
