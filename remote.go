package patree

import "github.com/patree/patree/internal/core"

// This file is the bridge a non-embedded Store implementation (package
// client, or any other transport) uses to mint this package's *Handle
// and *Batch types, so remote callers get the exact same futures,
// accessors and pooling as embedded ones. Embedders never need these.

// Result is the outcome of one operation as delivered to a Handle by a
// remote Store implementation. The zero value plus Err is a failed
// operation; Found/Value/Pairs follow the semantics of the Handle
// accessors.
type Result struct {
	// Found reports whether the key existed (get/update/delete) or a
	// previous value was replaced (put).
	Found bool
	// Value is the value found by a point lookup.
	Value []byte
	// Pairs are range-scan results in ascending key order.
	Pairs []KV
	// Err is non-nil if the operation failed.
	Err error
}

// NewRemoteHandle returns a pending Handle together with its resolve
// function. The caller (a remote Store implementation) returns the
// handle to the issuing goroutine and arranges for resolve to be called
// exactly once, from any goroutine, when the operation's outcome is
// known — including transport failures, which should resolve with
// ErrBatchAborted (or ErrClosed for a locally initiated shutdown) so
// waiters never block forever. After resolve the handle follows the
// normal lifecycle: the owner Waits, reads results, and Releases.
func NewRemoteHandle() (*Handle, func(Result)) {
	h := acquireHandle()
	return h, h.remoteResolve
}

// remoteResolve adapts a public Result into the handle's single
// fulfilment path. It is a method (not a per-call closure) so a pooled
// handle keeps one resolve function for its whole lifetime.
func (h *Handle) remoteResolve(r Result) {
	h.deliver(core.Result{Found: r.Found, Value: r.Value, Pairs: r.Pairs, Err: r.Err})
}

// OpKind identifies one staged batch operation for a BatchCommitter.
type OpKind uint8

// Staged operation kinds, in the order the stage methods produce them.
const (
	OpPut OpKind = iota + 1
	OpGet
	OpUpdate
	OpDelete
	OpScan
	OpSync
)

// String returns the lowercase wire name of the kind.
func (k OpKind) String() string {
	switch k {
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	case OpSync:
		return "sync"
	}
	return "invalid"
}

// BatchOp is one operation staged on a Batch, in the neutral form
// handed to a BatchCommitter: Key/Value for point ops, Key/End/Limit
// for scans.
type BatchOp struct {
	Kind  OpKind
	Key   uint64
	End   uint64
	Limit int
	Value []byte
	// Span is the operation's trace span id (0 = unsampled). Set via
	// Batch.SetSpan by a serving tier that propagates request-scoped
	// trace context; the embedded backend forwards it to the engine op so
	// the merged trace can link tiers.
	Span uint64
}

// BatchCommitter is the admission backend of a remotely-built Batch
// (see NewRemoteBatch).
type BatchCommitter interface {
	// CommitStaged admits the staged operations as one transaction.
	// resolve[i] must eventually be called exactly once with op i's
	// outcome — unless CommitStaged returns an error, in which case
	// nothing may be resolved and the batch stays staged for a retry
	// (TryCommit returning ErrBacklog relies on this). When try is set
	// the commit must not block on backpressure: refuse with ErrBacklog,
	// atomically, instead. ops and resolve are only valid until
	// CommitStaged returns; retain copies if admission outlives the call.
	CommitStaged(ops []BatchOp, resolve []func(Result), try bool) error
}

// NewRemoteBatch returns an empty Batch whose commit is delegated to c.
// Staging, accessors, Wait and Release behave exactly as on a
// DB-bound batch.
func NewRemoteBatch(c BatchCommitter) *Batch {
	b := batchPool.Get().(*Batch)
	b.committer = c
	b.committed = false
	return b
}
