package patree_test

import (
	"strings"
	"testing"

	patree "github.com/patree/patree"
)

// mustPanic runs f and asserts it panics with a message containing want.
func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic (want one mentioning %q)", want)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v (%T), want string", r, r)
		}
		if !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not mention %q", msg, want)
		}
	}()
	f()
}

// TestBatchAccessorGuards pins the descriptive panics on Batch misuse:
// every accessor rejects out-of-range indexes and reads before Commit,
// staging after Commit is refused, and the commit lifecycle is
// single-shot. Silent misbehavior here would surface as another
// operation's result being read — the panic is the contract.
func TestBatchAccessorGuards(t *testing.T) {
	db, err := patree.Open(patree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	b := db.NewBatch()
	gi := b.Get(1)
	pi := b.Put(2, []byte("v"))
	if gi != 0 || pi != 1 {
		t.Fatalf("staged indexes = %d, %d; want 0, 1", gi, pi)
	}

	// Reads before Commit would block on results that can never arrive.
	mustPanic(t, "before Commit", func() { b.Err(gi) })
	mustPanic(t, "before Commit", func() { b.Found(gi) })
	mustPanic(t, "before Commit", func() { b.Value(gi) })
	mustPanic(t, "before Commit", func() { b.Pairs(gi) })
	mustPanic(t, "before Commit", func() { b.Wait() })

	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Wait(); err != nil {
		t.Fatal(err)
	}

	// Out-of-range indexes would read another operation's slot.
	mustPanic(t, "out of range", func() { b.Err(-1) })
	mustPanic(t, "out of range", func() { b.Err(2) })
	mustPanic(t, "out of range", func() { b.Value(99) })

	// The batch is sealed once committed.
	mustPanic(t, "after Commit", func() { b.Put(3, []byte("late")) })
	mustPanic(t, "after Commit", func() { b.Get(3) })
	mustPanic(t, "Commit called twice", func() { b.Commit() })
	mustPanic(t, "TryCommit after Commit", func() { b.TryCommit() })

	// Valid indexes still read fine after the guards fired.
	if b.Err(gi) != nil || b.Err(pi) != nil {
		t.Fatal("committed ops should have succeeded")
	}

	b.Release()
	// After Release the handles are gone; any index is out of range.
	mustPanic(t, "out of range", func() { b.Err(0) })
}

// TestHandleUseAfterRelease pins the Handle guards: a released handle
// fails loudly instead of reading a recycled slot.
func TestHandleUseAfterRelease(t *testing.T) {
	db, err := patree.Open(patree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	h, err := db.PutAsync(7, []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Err(); err != nil {
		t.Fatal(err)
	}
	h.Release()
	mustPanic(t, "after Release", func() { h.Wait() })
	mustPanic(t, "after Release", func() { h.Found() })
	mustPanic(t, "after Release", func() { h.Value() })
	mustPanic(t, "after Release", func() { h.Pairs() })
}
