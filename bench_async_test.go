package patree

import (
	"testing"
	"time"
)

// Admission-pipeline benchmarks: wall-clock ops/sec of the public API
// from ONE caller goroutine. The blocking API pays two cross-goroutine
// hand-offs per operation (admit + complete) and keeps at most one
// operation in flight, so the working thread idles between operations;
// the async and batch paths keep a window in flight, which is exactly
// the queue depth the paper's design needs to shine. These run on the
// default in-memory device, so the gap shown is pure pipeline overhead —
// on a real NVMe it widens by the device latency that pipelining hides.

const benchWindow = 128

func benchDB(b *testing.B) *DB {
	return benchDBOpts(b, Options{DeviceBlocks: 1 << 16})
}

func benchDBOpts(b *testing.B, opts Options) *DB {
	b.Helper()
	db, err := Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	for i := uint64(0); i < 4096; i++ {
		if err := db.Put(i, []byte("0123456789abcdef")); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func BenchmarkGetBlocking(b *testing.B) {
	db := benchDB(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := db.Get(uint64(i) % 4096); !ok || err != nil {
			b.Fatalf("Get = %v %v", ok, err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e3, "Kops/s")
}

func BenchmarkGetAsync(b *testing.B) {
	db := benchDB(b)
	b.ReportAllocs()
	b.ResetTimer()
	hs := make([]*Handle, 0, benchWindow)
	for i := 0; i < b.N; {
		hs = hs[:0]
		for j := 0; j < benchWindow && i < b.N; j++ {
			h, err := db.GetAsync(uint64(i) % 4096)
			if err != nil {
				b.Fatal(err)
			}
			hs = append(hs, h)
			i++
		}
		for _, h := range hs {
			if !h.Found() {
				b.Fatal("missing key")
			}
			h.Release()
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e3, "Kops/s")
}

func BenchmarkGetBatch(b *testing.B) {
	db := benchDB(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; {
		bt := db.NewBatch()
		for j := 0; j < benchWindow && i < b.N; j++ {
			bt.Get(uint64(i) % 4096)
			i++
		}
		if err := bt.Commit(); err != nil {
			b.Fatal(err)
		}
		if err := bt.Wait(); err != nil {
			b.Fatal(err)
		}
		bt.Release()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e3, "Kops/s")
}

// BenchmarkGetBatchTraced is BenchmarkGetBatch with the lifecycle
// tracer on — committed evidence of what Options.Trace costs. Compare
// the two to see the tracing overhead; with Trace off the pipeline runs
// the exact BenchmarkGetBatch numbers (tracing is a nil check).
func BenchmarkGetBatchTraced(b *testing.B) {
	db := benchDBOpts(b, Options{DeviceBlocks: 1 << 16, Trace: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; {
		bt := db.NewBatch()
		for j := 0; j < benchWindow && i < b.N; j++ {
			bt.Get(uint64(i) % 4096)
			i++
		}
		if err := bt.Commit(); err != nil {
			b.Fatal(err)
		}
		if err := bt.Wait(); err != nil {
			b.Fatal(err)
		}
		bt.Release()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e3, "Kops/s")
}

func BenchmarkPutBatch(b *testing.B) {
	db := benchDB(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; {
		bt := db.NewBatch()
		for j := 0; j < benchWindow && i < b.N; j++ {
			bt.Put(uint64(i)%4096, []byte("0123456789abcdef"))
			i++
		}
		if err := bt.Commit(); err != nil {
			b.Fatal(err)
		}
		if err := bt.Wait(); err != nil {
			b.Fatal(err)
		}
		bt.Release()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e3, "Kops/s")
}

// TestAsyncThroughputAdvantage pins the reason the async API exists: a
// single goroutine must move at least 4x more lookups per second through
// a batch window than through the blocking call. The measurement is
// quick and the true gap is large (an order of magnitude on idle
// machines), so 4x is a conservative floor.
func TestAsyncThroughputAdvantage(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts the pipeline/blocking ratio")
	}
	db := openTest(t, Options{DeviceBlocks: 1 << 16})
	for i := uint64(0); i < 4096; i++ {
		if err := db.Put(i, []byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	measure := func(f func(n int)) float64 {
		f(2048) // warm
		const n = 20000
		start := time.Now()
		f(n)
		return float64(n) / time.Since(start).Seconds()
	}
	blocking := measure(func(n int) {
		for i := 0; i < n; i++ {
			if _, ok, err := db.Get(uint64(i) % 4096); !ok || err != nil {
				t.Fatalf("Get = %v %v", ok, err)
			}
		}
	})
	batched := measure(func(n int) {
		for i := 0; i < n; {
			b := db.NewBatch()
			for j := 0; j < benchWindow && i < n; j++ {
				b.Get(uint64(i) % 4096)
				i++
			}
			if err := b.Commit(); err != nil {
				t.Fatal(err)
			}
			if err := b.Wait(); err != nil {
				t.Fatal(err)
			}
			b.Release()
		}
	})
	ratio := batched / blocking
	t.Logf("blocking %.0f ops/s, batched %.0f ops/s, ratio %.1fx", blocking, batched, ratio)
	if ratio < 4 {
		t.Errorf("batched path only %.1fx blocking, want >= 4x", ratio)
	}
}
