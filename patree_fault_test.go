package patree

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/patree/patree/internal/fault"
	"github.com/patree/patree/internal/nvme"
)

// faultDB opens a journaled DB over a RAM device wrapped with fault
// injection. RAMDevice does not expose its image, so the torn-write and
// crash classes stay off; error and timeout injection is what these
// tests exercise end to end through the public API.
func faultDB(t *testing.T, probs fault.Probs, retries int) (*DB, *fault.Device) {
	t.Helper()
	inner := nvme.NewRAMDevice(nvme.RAMConfig{NumBlocks: 1 << 16})
	// Open formats the device; arm the fault classes only afterwards so
	// even a WriteErr=1 configuration gets a valid tree to kill.
	fdev := fault.New(inner, fault.Config{Seed: 0xdb})
	db, err := Open(Options{
		Device:       fdev,
		Persistence:  Weak,
		Journal:      true,
		MaxIORetries: retries,
		BufferPages:  256,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	fdev.SetProbs(probs)
	return db, fdev
}

// TestFaultRetriesAbsorbTransientErrors drives a journaled workload
// through a device that fails commands constantly; with a generous
// retry budget every operation must still succeed, and the retry
// counters must show the absorbed failures.
func TestFaultRetriesAbsorbTransientErrors(t *testing.T) {
	db, _ := faultDB(t, fault.Probs{ReadErr: 0.05, WriteErr: 0.05, Timeout: 0.02}, 16)
	defer db.Close()
	const n = 400
	for i := uint64(1); i <= n; i++ {
		if err := db.Put(i, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := uint64(1); i <= n; i++ {
		v, ok, err := db.Get(i)
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get %d: v=%q ok=%v err=%v", i, v, ok, err)
		}
	}
	st := db.Stats()
	if st.IOErrors == 0 || st.IORetries == 0 {
		t.Fatalf("fault injection left no trace in stats: %+v", st)
	}
	if st.JournalAppends == 0 {
		t.Fatalf("journal enabled but no appends: %+v", st)
	}
}

// TestFaultExhaustedRetriesFailDevice pins the terminal state: when
// every write fails and the budget runs out, operations return
// ErrDeviceFailed and Close still shuts down cleanly.
func TestFaultExhaustedRetriesFailDevice(t *testing.T) {
	db, _ := faultDB(t, fault.Probs{WriteErr: 1}, 2)
	var failed error
	for i := uint64(1); i <= 50; i++ {
		if err := db.Put(i, []byte("x")); err != nil {
			failed = err
			break
		}
	}
	if !errors.Is(failed, ErrDeviceFailed) {
		t.Fatalf("puts on a dead device returned %v, want ErrDeviceFailed", failed)
	}
	// Everything after the terminal transition fails fast with the same
	// error, reads included.
	if _, _, err := db.Get(1); !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("get after failure: %v, want ErrDeviceFailed", err)
	}
	// Close drains the pipeline instead of wedging; its final sync
	// reports the device failure.
	if err := db.Close(); !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("close after failure: %v, want ErrDeviceFailed", err)
	}
}

// TestFaultRaceAsyncHammer hammers the async API from many goroutines
// while faults fire, with Close racing the tail of the workload. Run
// under -race. Every handle must resolve — with nil, ErrClosed, or
// ErrDeviceFailed — and none may leak or deadlock.
func TestFaultRaceAsyncHammer(t *testing.T) {
	db, _ := faultDB(t, fault.Probs{ReadErr: 0.02, WriteErr: 0.02, Timeout: 0.01}, 16)
	const (
		workers = 8
		opsEach = 300
	)
	var resolved atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < opsEach; i++ {
				key := 1 + uint64(rng.Intn(512))
				var h *Handle
				var err error
				if rng.Intn(2) == 0 {
					h, err = db.PutAsync(key, []byte(fmt.Sprintf("w%d-%d", w, i)))
				} else {
					h, err = db.GetAsync(key)
				}
				if err != nil {
					// Admission refused (DB closed under us): still resolved.
					if !errors.Is(err, ErrClosed) {
						t.Errorf("admit: %v", err)
					}
					resolved.Add(1)
					continue
				}
				werr := h.Wait()
				if werr != nil && !errors.Is(werr, ErrClosed) && !errors.Is(werr, ErrDeviceFailed) {
					t.Errorf("handle resolved with unexpected error: %v", werr)
				}
				h.Release()
				resolved.Add(1)
			}
		}(w)
	}
	// Close while roughly half the workload is still in flight.
	closeErr := make(chan error, 1)
	go func() { closeErr <- db.Close() }()
	wg.Wait()
	if err := <-closeErr; err != nil && !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("close: %v", err)
	}
	if got, want := resolved.Load(), uint64(workers*opsEach); got != want {
		t.Fatalf("%d of %d handles resolved", got, want)
	}
}
