// Package wal implements a block-oriented write-ahead log used by the
// weak-persistence machinery: the LCB-Tree baseline logs every update
// before applying it, the LSM tree logs memtable inserts, and the paper's
// weak-persistent PA-Tree is motivated by exactly this pattern (§III-C:
// "with the help of write ahead log, it is unnecessary to persist every
// single operation").
//
// The log is a fixed region of blocks. Records are framed as
//
//	magic(2) generation(4) length(4) crc32(4) payload
//
// with frames packed back-to-back across block boundaries. The generation
// increments on each Reset so recovery never resurrects frames from a
// previous life of the region; the CRC (over generation, length and
// payload) stops recovery at a torn tail.
package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

const (
	frameMagic  = 0xA55A
	headerBytes = 14 // magic 2 + gen 4 + len 4 + crc 4
)

// Errors.
var (
	ErrLogFull     = errors.New("wal: log region full")
	ErrRecordEmpty = errors.New("wal: empty record")
	ErrTooLarge    = errors.New("wal: record too large for region")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// BlockWriter persists blocks; implementations route through the NVMe
// device (synchronously for the baselines, asynchronously for PA-Tree).
type BlockWriter func(blockIndex uint64, data []byte)

// Log is an appender over a fixed region of capBlocks blocks of blockSize
// bytes each. It buffers appended records in memory until Flush.
type Log struct {
	blockSize int
	capBlocks uint64
	gen       uint32

	flushedBytes int // bytes already persisted (may end mid-block)
	pending      []byte
	// tailKeep holds the already-durable prefix of the current partial
	// block so the next Flush can rewrite that block in full.
	tailKeep []byte
	nextLSN  uint64
}

// NewLog creates a log over capBlocks blocks of blockSize bytes, starting
// at generation 1.
func NewLog(blockSize int, capBlocks uint64) *Log {
	if blockSize <= int(headerBytes) {
		panic("wal: block size too small")
	}
	return &Log{blockSize: blockSize, capBlocks: capBlocks, gen: 1}
}

// Generation returns the current generation number.
func (l *Log) Generation() uint32 { return l.gen }

// SetGeneration overrides the current generation. Recovery uses it to
// continue a reopened log past the generations that are already on the
// device (or fenced out by the superblock), so fresh records always carry
// a strictly newer generation than anything stale in the region.
func (l *Log) SetGeneration(g uint32) {
	if g < 1 {
		g = 1
	}
	l.gen = g
}

// CapBytes returns the region capacity in bytes.
func (l *Log) CapBytes() int { return int(l.capBlocks) * l.blockSize }

// UsedBytes returns the bytes consumed by flushed and pending frames.
func (l *Log) UsedBytes() int { return l.flushedBytes + len(l.pending) }

// Remaining returns the bytes still appendable before ErrLogFull.
func (l *Log) Remaining() int { return l.CapBytes() - l.UsedBytes() }

// FrameOverhead is the per-record framing cost in bytes, exported so
// callers can budget capacity checks before appending.
const FrameOverhead = headerBytes

// NextLSN returns the LSN the next Append will receive.
func (l *Log) NextLSN() uint64 { return l.nextLSN }

// PendingBytes returns the number of appended-but-unflushed bytes.
func (l *Log) PendingBytes() int { return len(l.pending) }

// Append frames rec and buffers it, returning its LSN. The record is not
// durable until Flush. The frame is encoded directly into the staging
// buffer — no per-record scratch allocation — so encode + CRC can run
// while previously staged blocks are still in flight on the device (the
// journal pipelining of DESIGN.md §17); the staged bytes are identical
// to the former copy-through-scratch encoding.
func (l *Log) Append(rec []byte) (uint64, error) {
	if len(rec) == 0 {
		return 0, ErrRecordEmpty
	}
	frameLen := headerBytes + len(rec)
	if uint64(l.flushedBytes+len(l.pending)+frameLen) > l.capBlocks*uint64(l.blockSize) {
		return 0, ErrLogFull
	}
	off := len(l.pending)
	if cap(l.pending) < off+frameLen {
		grown := make([]byte, off, off+frameLen+len(l.pending))
		copy(grown, l.pending)
		l.pending = grown
	}
	l.pending = l.pending[:off+frameLen]
	frame := l.pending[off:]
	binary.LittleEndian.PutUint16(frame[0:2], frameMagic)
	binary.LittleEndian.PutUint32(frame[2:6], l.gen)
	binary.LittleEndian.PutUint32(frame[6:10], uint32(len(rec)))
	copy(frame[headerBytes:], rec)
	crc := crc32.Checksum(frame[2:10], crcTable)
	crc = crc32.Update(crc, crcTable, rec)
	binary.LittleEndian.PutUint32(frame[10:14], crc)
	lsn := l.nextLSN
	l.nextLSN++
	return lsn, nil
}

// Flush emits every block touched by pending records through write, in
// ascending block order, and marks the records durable. The last block is
// zero-padded; it will be rewritten (same index) by the next Flush if more
// records land in it.
func (l *Log) Flush(write BlockWriter) {
	if len(l.pending) == 0 {
		return
	}
	bs := l.blockSize
	// First block index that needs (re)writing: the one containing the
	// first pending byte.
	start := l.flushedBytes / bs
	end := (l.flushedBytes + len(l.pending) + bs - 1) / bs
	// Reconstruct the partial head block content: bytes already flushed in
	// the start block are not retained, so we carry them in pendingHead.
	headOffset := l.flushedBytes % bs
	block := make([]byte, bs)
	p := l.pending
	for b := start; b < end; b++ {
		for i := range block {
			block[i] = 0
		}
		if b == start && headOffset > 0 {
			copy(block, l.tailKeep)
		}
		off := 0
		if b == start {
			off = headOffset
		}
		n := copy(block[off:], p)
		p = p[n:]
		write(uint64(b), block)
		// Remember the partial tail so the next flush can rewrite it.
		if b == end-1 {
			used := off + n
			if used < bs {
				l.tailKeep = append(l.tailKeep[:0], block[:used]...)
			} else {
				l.tailKeep = l.tailKeep[:0]
			}
		}
	}
	l.flushedBytes += len(l.pending)
	l.pending = l.pending[:0]
}

// Reset abandons all content, bumps the generation and rewrites block 0
// so stale frames are never replayed.
func (l *Log) Reset(write BlockWriter) {
	l.gen++
	l.flushedBytes = 0
	l.pending = l.pending[:0]
	l.tailKeep = l.tailKeep[:0]
	l.nextLSN = 0
	write(0, make([]byte, l.blockSize))
}

// Recover scans the raw region content (concatenated blocks, starting at
// block 0) and returns the payloads of all valid frames of the newest
// generation found at the head of the region. Scanning stops at the first
// invalid frame (zero magic, CRC mismatch, or generation change).
func Recover(region []byte) (records [][]byte, gen uint32) {
	off := 0
	first := true
	for off+headerBytes <= len(region) {
		if binary.LittleEndian.Uint16(region[off:off+2]) != frameMagic {
			break
		}
		g := binary.LittleEndian.Uint32(region[off+2 : off+6])
		n := int(binary.LittleEndian.Uint32(region[off+6 : off+10]))
		want := binary.LittleEndian.Uint32(region[off+10 : off+14])
		if off+headerBytes+n > len(region) || n == 0 {
			break
		}
		if first {
			gen = g
			first = false
		} else if g != gen {
			break
		}
		payload := region[off+headerBytes : off+headerBytes+n]
		crc := crc32.Checksum(region[off+2:off+10], crcTable)
		crc = crc32.Update(crc, crcTable, payload)
		if crc != want {
			break
		}
		rec := make([]byte, n)
		copy(rec, payload)
		records = append(records, rec)
		off += headerBytes + n
	}
	return records, gen
}
