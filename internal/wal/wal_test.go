package wal

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

// memRegion collects block writes into a flat region image.
type memRegion struct {
	blockSize int
	blocks    map[uint64][]byte
	writes    int
}

func newMemRegion(blockSize int) *memRegion {
	return &memRegion{blockSize: blockSize, blocks: map[uint64][]byte{}}
}

func (m *memRegion) write(idx uint64, data []byte) {
	b := make([]byte, m.blockSize)
	copy(b, data)
	m.blocks[idx] = b
	m.writes++
}

func (m *memRegion) image(capBlocks uint64) []byte {
	out := make([]byte, int(capBlocks)*m.blockSize)
	for i, b := range m.blocks {
		copy(out[int(i)*m.blockSize:], b)
	}
	return out
}

func TestAppendFlushRecover(t *testing.T) {
	l := NewLog(512, 16)
	r := newMemRegion(512)
	var want [][]byte
	for i := 0; i < 10; i++ {
		rec := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, rec)
		lsn, err := l.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i) {
			t.Fatalf("lsn = %d, want %d", lsn, i)
		}
	}
	l.Flush(r.write)
	got, gen := Recover(r.image(16))
	if gen != 1 {
		t.Fatalf("gen = %d", gen)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestFlushIsIncremental(t *testing.T) {
	l := NewLog(512, 64)
	r := newMemRegion(512)
	big := make([]byte, 1200) // spans 3 blocks
	for i := range big {
		big[i] = byte(i)
	}
	l.Append(big)
	l.Flush(r.write)
	w1 := r.writes
	if w1 < 3 {
		t.Fatalf("first flush wrote %d blocks, want >= 3", w1)
	}
	// A tiny record lands in the partial tail block: exactly one rewrite.
	l.Append([]byte("x"))
	l.Flush(r.write)
	if r.writes != w1+1 {
		t.Fatalf("second flush wrote %d blocks, want 1", r.writes-w1)
	}
	got, _ := Recover(r.image(64))
	if len(got) != 2 || !bytes.Equal(got[0], big) || string(got[1]) != "x" {
		t.Fatalf("recovered %d records", len(got))
	}
}

func TestFlushEmptyNoWrites(t *testing.T) {
	l := NewLog(512, 4)
	r := newMemRegion(512)
	l.Flush(r.write)
	if r.writes != 0 {
		t.Fatal("empty flush wrote blocks")
	}
}

func TestRecoverStopsAtTornTail(t *testing.T) {
	l := NewLog(512, 8)
	r := newMemRegion(512)
	l.Append([]byte("good-1"))
	l.Append([]byte("good-2"))
	l.Flush(r.write)
	img := r.image(8)
	// Corrupt the second record's payload byte.
	img[headerBytes+6+headerBytes] ^= 0xFF
	got, _ := Recover(img)
	if len(got) != 1 || string(got[0]) != "good-1" {
		t.Fatalf("recovered %d records: %q", len(got), got)
	}
}

func TestResetBumpsGenerationAndDropsOldFrames(t *testing.T) {
	l := NewLog(512, 8)
	r := newMemRegion(512)
	l.Append([]byte("old-1"))
	l.Append([]byte("old-2"))
	l.Flush(r.write)
	l.Reset(r.write)
	if l.Generation() != 2 || l.NextLSN() != 0 {
		t.Fatalf("gen=%d lsn=%d", l.Generation(), l.NextLSN())
	}
	// Nothing written since reset: recovery finds nothing.
	got, _ := Recover(r.image(8))
	if len(got) != 0 {
		t.Fatalf("recovered %d stale records", len(got))
	}
	l.Append([]byte("new-1"))
	l.Flush(r.write)
	got, gen := Recover(r.image(8))
	if gen != 2 || len(got) != 1 || string(got[0]) != "new-1" {
		t.Fatalf("gen=%d records=%q", gen, got)
	}
}

func TestGenerationBoundaryStopsScan(t *testing.T) {
	// New gen writes fewer bytes than old gen: recovery of the new image
	// must not continue into leftover old-gen frames.
	l := NewLog(512, 8)
	r := newMemRegion(512)
	for i := 0; i < 30; i++ {
		l.Append([]byte(fmt.Sprintf("old-%d-padddddddddddding", i)))
	}
	l.Flush(r.write)
	l.Reset(r.write)
	l.Append([]byte("fresh"))
	l.Flush(r.write)
	got, gen := Recover(r.image(8))
	if gen != 2 || len(got) != 1 {
		t.Fatalf("gen=%d n=%d (stale frames resurrected?)", gen, len(got))
	}
}

func TestLogFull(t *testing.T) {
	l := NewLog(512, 1)
	if _, err := l.Append(make([]byte, 400)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(make([]byte, 200)); err != ErrLogFull {
		t.Fatalf("err = %v, want ErrLogFull", err)
	}
}

func TestEmptyRecordRejected(t *testing.T) {
	l := NewLog(512, 4)
	if _, err := l.Append(nil); err != ErrRecordEmpty {
		t.Fatalf("err = %v", err)
	}
}

func TestRecoverEmptyRegion(t *testing.T) {
	got, gen := Recover(make([]byte, 4096))
	if len(got) != 0 || gen != 0 {
		t.Fatal("recovered records from zero region")
	}
	got, _ = Recover(nil)
	if len(got) != 0 {
		t.Fatal("recovered from nil region")
	}
}

// Property: any sequence of appends with interleaved flushes recovers to
// exactly the appended records, in order.
func TestWALRoundTripProperty(t *testing.T) {
	f := func(recs [][]byte, flushPattern []bool) bool {
		l := NewLog(512, 1024)
		r := newMemRegion(512)
		var want [][]byte
		for i, rec := range recs {
			if len(rec) == 0 {
				rec = []byte{0}
			}
			if len(rec) > 4000 {
				rec = rec[:4000]
			}
			if _, err := l.Append(rec); err != nil {
				return false
			}
			want = append(want, append([]byte(nil), rec...))
			if i < len(flushPattern) && flushPattern[i] {
				l.Flush(r.write)
			}
		}
		l.Flush(r.write)
		got, _ := Recover(r.image(1024))
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
