package wal

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// TestRecoverEdgeCases pins down Recover's behaviour on the boundary
// images crash recovery actually encounters: empty or garbage regions, a
// final record torn mid-frame, generation counter rollover, and a frame
// whose header survives at the region end but whose payload would span
// past the capacity boundary.
func TestRecoverEdgeCases(t *testing.T) {
	const bs = 512
	mkLog := func(capBlocks uint64, recs ...string) []byte {
		l := NewLog(bs, capBlocks)
		r := newMemRegion(bs)
		for _, rec := range recs {
			if _, err := l.Append([]byte(rec)); err != nil {
				t.Fatalf("append %q: %v", rec, err)
			}
		}
		l.Flush(r.write)
		return r.image(capBlocks)
	}

	cases := []struct {
		name     string
		region   func(t *testing.T) []byte
		wantRecs []string
		wantGen  uint32
	}{
		{
			name:     "empty-zero-region",
			region:   func(t *testing.T) []byte { return make([]byte, 8*bs) },
			wantRecs: nil,
			wantGen:  0,
		},
		{
			name:     "nil-region",
			region:   func(t *testing.T) []byte { return nil },
			wantRecs: nil,
			wantGen:  0,
		},
		{
			name: "garbage-magic",
			region: func(t *testing.T) []byte {
				img := make([]byte, 4*bs)
				for i := range img {
					img[i] = 0xCD
				}
				return img
			},
			wantRecs: nil,
			wantGen:  0,
		},
		{
			name: "region-shorter-than-header",
			region: func(t *testing.T) []byte {
				img := mkLog(1, "tiny")
				return img[:headerBytes-1]
			},
			wantRecs: nil,
			wantGen:  0,
		},
		{
			name: "truncated-final-record-payload",
			region: func(t *testing.T) []byte {
				img := mkLog(8, "first-record", "second-record")
				// Cut the image mid-way through the second frame's payload,
				// as if the crash landed between the two block writes.
				firstEnd := headerBytes + len("first-record")
				return img[:firstEnd+headerBytes+3]
			},
			wantRecs: []string{"first-record"},
			wantGen:  1,
		},
		{
			name: "truncated-final-record-header",
			region: func(t *testing.T) []byte {
				img := mkLog(8, "first-record", "second-record")
				firstEnd := headerBytes + len("first-record")
				return img[:firstEnd+headerBytes/2]
			},
			wantRecs: []string{"first-record"},
			wantGen:  1,
		},
		{
			name: "torn-final-record-crc",
			region: func(t *testing.T) []byte {
				img := mkLog(8, "first-record", "second-record")
				// Flip one payload bit of the last record: CRC mismatch.
				img[headerBytes+len("first-record")+headerBytes+1] ^= 0x01
				return img
			},
			wantRecs: []string{"first-record"},
			wantGen:  1,
		},
		{
			name: "generation-rollover-max-uint32",
			region: func(t *testing.T) []byte {
				l := NewLog(bs, 8)
				l.SetGeneration(math.MaxUint32)
				r := newMemRegion(bs)
				if _, err := l.Append([]byte("last-gen")); err != nil {
					t.Fatal(err)
				}
				l.Flush(r.write)
				return r.image(8)
			},
			wantRecs: []string{"last-gen"},
			wantGen:  math.MaxUint32,
		},
		{
			name: "generation-rollover-reset-wraps",
			region: func(t *testing.T) []byte {
				// Reset at MaxUint32 wraps the counter; the rewritten block 0
				// still fences the old frames, so recovery sees an empty log
				// rather than resurrected MaxUint32-generation records.
				l := NewLog(bs, 8)
				l.SetGeneration(math.MaxUint32)
				r := newMemRegion(bs)
				l.Append([]byte("doomed"))
				l.Flush(r.write)
				l.Reset(r.write)
				if l.Generation() != 0 {
					t.Fatalf("generation after wrap = %d, want 0", l.Generation())
				}
				l.Append([]byte("wrapped"))
				l.Flush(r.write)
				return r.image(8)
			},
			wantRecs: []string{"wrapped"},
			wantGen:  0,
		},
		{
			name: "record-spanning-capacity-wrap",
			region: func(t *testing.T) []byte {
				// A frame header sits legitimately near the region end but
				// declares a payload extending past capacity — the shape left
				// behind when a crash interrupts the tail block rewrite. The
				// scan must stop there, not read out of bounds or wrap.
				img := mkLog(2, "leading-record")
				off := headerBytes + len("leading-record")
				binary.LittleEndian.PutUint16(img[off:], frameMagic)
				binary.LittleEndian.PutUint32(img[off+2:], 1)
				binary.LittleEndian.PutUint32(img[off+6:], uint32(len(img))) // past the end
				binary.LittleEndian.PutUint32(img[off+10:], 0xDEADBEEF)
				return img
			},
			wantRecs: []string{"leading-record"},
			wantGen:  1,
		},
		{
			name: "frame-filling-region-exactly",
			region: func(t *testing.T) []byte {
				l := NewLog(bs, 2)
				r := newMemRegion(bs)
				payload := make([]byte, 2*bs-headerBytes)
				for i := range payload {
					payload[i] = byte(i)
				}
				if _, err := l.Append(payload); err != nil {
					t.Fatalf("append at exact capacity: %v", err)
				}
				l.Flush(r.write)
				return r.image(2)
			},
			wantRecs: []string{string(func() []byte {
				p := make([]byte, 2*bs-headerBytes)
				for i := range p {
					p[i] = byte(i)
				}
				return p
			}())},
			wantGen: 1,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, gen := Recover(tc.region(t))
			if gen != tc.wantGen {
				t.Fatalf("gen = %d, want %d", gen, tc.wantGen)
			}
			if len(got) != len(tc.wantRecs) {
				t.Fatalf("recovered %d records, want %d", len(got), len(tc.wantRecs))
			}
			for i, want := range tc.wantRecs {
				if !bytes.Equal(got[i], []byte(want)) {
					t.Fatalf("record %d = %q, want %q", i, got[i], want)
				}
			}
		})
	}
}

// TestSetGenerationClampsToOne documents that generation 0 is reserved for
// "nothing recovered": SetGeneration(0) lands on 1.
func TestSetGenerationClampsToOne(t *testing.T) {
	l := NewLog(512, 4)
	l.SetGeneration(0)
	if l.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", l.Generation())
	}
	l.SetGeneration(7)
	if l.Generation() != 7 {
		t.Fatalf("generation = %d, want 7", l.Generation())
	}
}

// TestCapacityAccessors pins the bookkeeping the journal's checkpoint
// trigger relies on.
func TestCapacityAccessors(t *testing.T) {
	l := NewLog(512, 4)
	if l.CapBytes() != 2048 || l.UsedBytes() != 0 || l.Remaining() != 2048 {
		t.Fatalf("fresh log: cap=%d used=%d rem=%d", l.CapBytes(), l.UsedBytes(), l.Remaining())
	}
	l.Append(make([]byte, 100))
	wantUsed := 100 + FrameOverhead
	if l.UsedBytes() != wantUsed || l.Remaining() != 2048-wantUsed {
		t.Fatalf("after append: used=%d rem=%d", l.UsedBytes(), l.Remaining())
	}
	r := newMemRegion(512)
	l.Flush(r.write)
	if l.UsedBytes() != wantUsed {
		t.Fatalf("flush changed used bytes: %d", l.UsedBytes())
	}
	l.Reset(r.write)
	if l.UsedBytes() != 0 || l.Remaining() != 2048 {
		t.Fatalf("after reset: used=%d rem=%d", l.UsedBytes(), l.Remaining())
	}
}
