package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	if h.Percentile(50) != 0 {
		t.Fatal("empty percentile != 0")
	}
	if h.Summary() != "n=0" {
		t.Fatalf("summary = %q", h.Summary())
	}
}

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram()
	for _, d := range []time.Duration{10, 20, 30, 40, 50} {
		h.Record(d * time.Microsecond)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 30*time.Microsecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != 10*time.Microsecond || h.Max() != 50*time.Microsecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	h := NewHistogram()
	// Uniform 1..10000 microseconds.
	for i := 1; i <= 10000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	for _, p := range []float64{10, 50, 90, 99} {
		got := float64(h.Percentile(p))
		want := p / 100 * 10000 * float64(time.Microsecond)
		if math.Abs(got-want)/want > 0.05 {
			t.Fatalf("p%v = %v, want ~%v (err > 5%%)", p, time.Duration(got), time.Duration(want))
		}
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5 * time.Second)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatal("negative duration not clamped to zero")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear")
	}
	h.Record(2 * time.Millisecond)
	if h.Count() != 1 || h.Min() != 2*time.Millisecond {
		t.Fatal("histogram unusable after reset")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Record(10 * time.Microsecond)
	b.Record(30 * time.Microsecond)
	a.Merge(b)
	if a.Count() != 2 || a.Mean() != 20*time.Microsecond {
		t.Fatalf("merge: count=%d mean=%v", a.Count(), a.Mean())
	}
	if a.Min() != 10*time.Microsecond || a.Max() != 30*time.Microsecond {
		t.Fatal("merge min/max wrong")
	}
}

func TestBucketRoundTripProperty(t *testing.T) {
	// bucketLow(i) must itself map to bucket i, and buckets must be
	// monotonically ordered.
	f := func(raw int64) bool {
		v := raw
		if v < 0 {
			v = -v
		}
		v %= int64(time.Hour)
		i := bucketIndex(v)
		lo := bucketLow(i)
		hi := bucketLow(i + 1)
		return lo <= v && v < hi && bucketIndex(lo) == i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketRelativeError(t *testing.T) {
	// Bucket width must stay within ~2x of 1/subBuckets relative precision.
	for _, v := range []int64{100, 1000, 55555, 1 << 20, 1 << 30, 1 << 40} {
		i := bucketIndex(v)
		width := bucketLow(i+1) - bucketLow(i)
		if float64(width)/float64(v) > 2.0/subBuckets*2 {
			t.Fatalf("bucket width %d too coarse at %d", width, v)
		}
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestGaugeTimeWeightedAverage(t *testing.T) {
	var g Gauge
	g.Set(0, 10)   // level 10 for [0,100)
	g.Set(100, 30) // level 30 for [100,200)
	avg := g.Avg(200)
	if math.Abs(avg-20) > 1e-9 {
		t.Fatalf("avg = %v, want 20", avg)
	}
	if g.Max() != 30 || g.Level() != 30 {
		t.Fatal("max/level wrong")
	}
}

func TestGaugeAdd(t *testing.T) {
	var g Gauge
	g.Add(0, 5)
	g.Add(50, 5)
	g.Add(100, -10)
	if g.Level() != 0 {
		t.Fatalf("level = %d", g.Level())
	}
	// [0,50): 5, [50,100): 10 => avg 7.5 at t=100
	if math.Abs(g.Avg(100)-7.5) > 1e-9 {
		t.Fatalf("avg = %v", g.Avg(100))
	}
}

func TestCPUAccount(t *testing.T) {
	var a CPUAccount
	a.Charge(CatRealWork, 600*time.Millisecond)
	a.Charge(CatSync, 100*time.Millisecond)
	a.Charge(CatNVMe, 200*time.Millisecond)
	a.Charge(CatSched, 100*time.Millisecond)
	if a.Total() != time.Second {
		t.Fatalf("total = %v", a.Total())
	}
	fr := a.Fractions()
	if math.Abs(fr[0]-0.6) > 1e-9 {
		t.Fatalf("real work fraction = %v", fr[0])
	}
	if !strings.Contains(a.Breakdown(), "real work 60.0%") {
		t.Fatalf("breakdown = %q", a.Breakdown())
	}
	var b CPUAccount
	b.Charge(CatRealWork, 400*time.Millisecond)
	a.Merge(&b)
	if a.Get(CatRealWork) != time.Second {
		t.Fatal("merge failed")
	}
	a.Reset()
	if a.Total() != 0 {
		t.Fatal("reset failed")
	}
}

func TestCPUCategoryNames(t *testing.T) {
	want := []string{"real work", "synchronization", "NVMe", "scheduling", "others"}
	for i, c := range Categories() {
		if c.String() != want[i] {
			t.Fatalf("category %d = %q, want %q", i, c.String(), want[i])
		}
	}
	if CPUCategory(99).String() != "CPUCategory(99)" {
		t.Fatal("unknown category string wrong")
	}
}

func TestCPUChargeOutOfRangeGoesToOther(t *testing.T) {
	var a CPUAccount
	a.Charge(CPUCategory(42), time.Second)
	if a.Get(CatOther) != time.Second {
		t.Fatal("out-of-range charge not redirected to others")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 123456.0)
	s := tb.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header line = %q", lines[0])
	}
	if !strings.Contains(lines[2], "1.50") {
		t.Fatalf("float formatting: %q", lines[2])
	}
	if !strings.Contains(lines[3], "123456") {
		t.Fatalf("integer-valued float formatting: %q", lines[3])
	}
}
