package metrics

import (
	"fmt"
	"strings"
	"time"
)

// CPUCategory labels where CPU cycles went, matching the breakdown in the
// paper's Figure 9.
type CPUCategory int

const (
	// CatRealWork is index-structure access, node search, split and merge.
	CatRealWork CPUCategory = iota
	// CatSync is synchronization: operation latches for PA-Tree, semaphore
	// wait/post for the baselines.
	CatSync
	// CatNVMe is time spent calling into the NVMe driver (submit + probe).
	CatNVMe
	// CatSched is the PA-Tree scheduler's own bookkeeping (priority queue,
	// probe-model evaluation, yield decisions).
	CatSched
	// CatOther is everything else: OS scheduling, context switches, and
	// miscellaneous overhead.
	CatOther

	numCPUCategories
)

// String returns the category name used in Figure 9.
func (c CPUCategory) String() string {
	switch c {
	case CatRealWork:
		return "real work"
	case CatSync:
		return "synchronization"
	case CatNVMe:
		return "NVMe"
	case CatSched:
		return "scheduling"
	case CatOther:
		return "others"
	default:
		return fmt.Sprintf("CPUCategory(%d)", int(c))
	}
}

// Categories lists all categories in display order.
func Categories() []CPUCategory {
	return []CPUCategory{CatRealWork, CatSync, CatNVMe, CatSched, CatOther}
}

// CPUAccount accumulates CPU time per category.
type CPUAccount struct {
	spent [numCPUCategories]time.Duration
}

// Charge adds d of CPU time to category c.
func (a *CPUAccount) Charge(c CPUCategory, d time.Duration) {
	if c < 0 || c >= numCPUCategories {
		c = CatOther
	}
	a.spent[c] += d
}

// Get returns the time charged to category c.
func (a *CPUAccount) Get(c CPUCategory) time.Duration {
	if c < 0 || c >= numCPUCategories {
		return 0
	}
	return a.spent[c]
}

// Total returns the sum over all categories.
func (a *CPUAccount) Total() time.Duration {
	var t time.Duration
	for _, d := range a.spent {
		t += d
	}
	return t
}

// Merge adds all of o's charges into a.
func (a *CPUAccount) Merge(o *CPUAccount) {
	for i := range a.spent {
		a.spent[i] += o.spent[i]
	}
}

// Reset zeroes the account.
func (a *CPUAccount) Reset() { a.spent = [numCPUCategories]time.Duration{} }

// Fractions returns each category's share of the total, in Categories()
// order. All zeros if nothing has been charged.
func (a *CPUAccount) Fractions() []float64 {
	total := a.Total()
	out := make([]float64, numCPUCategories)
	if total == 0 {
		return out
	}
	for i, d := range a.spent {
		out[i] = float64(d) / float64(total)
	}
	return out
}

// Breakdown renders the account as "real work 55.1% | synchronization ..."
func (a *CPUAccount) Breakdown() string {
	fr := a.Fractions()
	parts := make([]string, 0, numCPUCategories)
	for i, c := range Categories() {
		parts = append(parts, fmt.Sprintf("%s %.1f%%", c, fr[i]*100))
	}
	return strings.Join(parts, " | ")
}
