package metrics

import (
	"math"
	"testing"
	"time"
)

// TestHistogramEdgeCases is the table-driven sweep of the quantile and
// min/max corner cases: empty histograms, single samples, and clamped
// percentile arguments.
func TestHistogramEdgeCases(t *testing.T) {
	single := func() *Histogram {
		h := NewHistogram()
		h.Record(42 * time.Microsecond)
		return h
	}
	two := func() *Histogram {
		h := NewHistogram()
		h.Record(10 * time.Microsecond)
		h.Record(90 * time.Microsecond)
		return h
	}
	cases := []struct {
		name  string
		h     func() *Histogram
		p     float64
		want  time.Duration
		exact bool
	}{
		{"empty p0", NewHistogram, 0, 0, true},
		{"empty p50", NewHistogram, 50, 0, true},
		{"empty p100", NewHistogram, 100, 0, true},
		{"empty p-negative", NewHistogram, -10, 0, true},
		{"empty pNaN", NewHistogram, math.NaN(), 0, true},
		{"single p0 is min", single, 0, 42 * time.Microsecond, true},
		{"single p50", single, 50, 42 * time.Microsecond, false},
		{"single p100 is max", single, 100, 42 * time.Microsecond, true},
		{"single p>100 clamped to max", single, 250, 42 * time.Microsecond, true},
		{"single p<0 clamped to min", single, -5, 42 * time.Microsecond, true},
		{"single pNaN treated as min", single, math.NaN(), 42 * time.Microsecond, true},
		{"two p100 is max", two, 100, 90 * time.Microsecond, true},
		{"two p0 is min", two, 0, 10 * time.Microsecond, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.h().Percentile(tc.p)
			if tc.exact {
				if got != tc.want {
					t.Fatalf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
				}
				return
			}
			// Bucketed value: within the histogram's ~3% precision.
			if math.Abs(float64(got-tc.want)) > 0.04*float64(tc.want) {
				t.Fatalf("Percentile(%v) = %v, want ≈%v", tc.p, got, tc.want)
			}
		})
	}
}

func TestHistogramSingleSampleMinMax(t *testing.T) {
	h := NewHistogram()
	h.Record(7 * time.Millisecond)
	if h.Min() != 7*time.Millisecond || h.Max() != 7*time.Millisecond {
		t.Fatalf("min=%v max=%v, want both 7ms", h.Min(), h.Max())
	}
	if h.Mean() != 7*time.Millisecond {
		t.Fatalf("mean = %v", h.Mean())
	}
}

// TestHistogramMergeEdges covers the Merge guards: nil source, empty
// source (whose min/max sentinels must not leak), empty destination, and
// merging after a reset.
func TestHistogramMergeEdges(t *testing.T) {
	t.Run("nil source is no-op", func(t *testing.T) {
		h := NewHistogram()
		h.Record(time.Millisecond)
		h.Merge(nil)
		if h.Count() != 1 || h.Min() != time.Millisecond {
			t.Fatal("nil merge corrupted histogram")
		}
	})
	t.Run("empty source keeps sentinels", func(t *testing.T) {
		h := NewHistogram()
		h.Record(time.Millisecond)
		h.Merge(NewHistogram())
		if h.Count() != 1 || h.Min() != time.Millisecond || h.Max() != time.Millisecond {
			t.Fatalf("empty merge corrupted stats: n=%d min=%v max=%v", h.Count(), h.Min(), h.Max())
		}
	})
	t.Run("into empty destination", func(t *testing.T) {
		src := NewHistogram()
		src.Record(3 * time.Microsecond)
		src.Record(5 * time.Microsecond)
		dst := NewHistogram()
		dst.Merge(src)
		if dst.Count() != 2 || dst.Min() != 3*time.Microsecond || dst.Max() != 5*time.Microsecond {
			t.Fatalf("n=%d min=%v max=%v", dst.Count(), dst.Min(), dst.Max())
		}
	})
	t.Run("after reset", func(t *testing.T) {
		src := NewHistogram()
		src.Record(time.Microsecond)
		dst := NewHistogram()
		dst.Record(time.Second)
		dst.Reset()
		dst.Merge(src)
		if dst.Count() != 1 || dst.Min() != time.Microsecond || dst.Max() != time.Microsecond {
			t.Fatalf("n=%d min=%v max=%v", dst.Count(), dst.Min(), dst.Max())
		}
	})
	t.Run("symmetric totals", func(t *testing.T) {
		a, b := NewHistogram(), NewHistogram()
		for i := 1; i <= 10; i++ {
			a.Record(time.Duration(i) * time.Microsecond)
			b.Record(time.Duration(i*100) * time.Microsecond)
		}
		ab, ba := NewHistogram(), NewHistogram()
		ab.Merge(a)
		ab.Merge(b)
		ba.Merge(b)
		ba.Merge(a)
		if ab.Count() != ba.Count() || ab.Min() != ba.Min() || ab.Max() != ba.Max() ||
			ab.Percentile(50) != ba.Percentile(50) {
			t.Fatal("merge is order-dependent")
		}
	})
}

func TestStageNames(t *testing.T) {
	want := []string{"admit-wait", "inbox", "queue-wait", "latch-wait", "io-wait", "deliver", "total"}
	stages := Stages()
	if len(stages) != len(want) || len(stages) != int(NumStages) {
		t.Fatalf("stage count %d, want %d", len(stages), len(want))
	}
	for i, s := range stages {
		if s.String() != want[i] {
			t.Errorf("stage %d = %q, want %q", i, s, want[i])
		}
	}
	if Stage(99).String() != "Stage(99)" {
		t.Errorf("out-of-range stage name: %q", Stage(99))
	}
}

func TestStageSetRecordAndBounds(t *testing.T) {
	s := NewStageSet(3)
	if s.Classes() != 3 {
		t.Fatalf("classes = %d", s.Classes())
	}
	s.Record(StageInbox, 1, time.Microsecond)
	s.Record(StageInbox, 1, 3*time.Microsecond)
	if h := s.Histogram(StageInbox, 1); h == nil || h.Count() != 2 {
		t.Fatal("record lost")
	}
	if h := s.Histogram(StageInbox, 0); h != nil {
		t.Fatal("untouched class should have a nil (lazy) histogram")
	}
	// Out-of-range class folds into class 0; out-of-range stage drops.
	s.Record(StageTotal, 17, time.Microsecond)
	if h := s.Histogram(StageTotal, 0); h == nil || h.Count() != 1 {
		t.Fatal("out-of-range class not folded into class 0")
	}
	s.Record(Stage(-1), 0, time.Microsecond)
	s.Record(NumStages, 0, time.Microsecond)
	if s.Histogram(Stage(-1), 0) != nil || s.Histogram(NumStages, 0) != nil {
		t.Fatal("out-of-range stage accepted")
	}
}

func TestStageSetMergedInto(t *testing.T) {
	s := NewStageSet(2)
	s.Record(StageIOWait, 0, 10*time.Microsecond)
	s.Record(StageIOWait, 1, 30*time.Microsecond)
	dst := NewHistogram()
	if !s.MergedInto(StageIOWait, dst) {
		t.Fatal("MergedInto found nothing")
	}
	if dst.Count() != 2 || dst.Min() != 10*time.Microsecond || dst.Max() != 30*time.Microsecond {
		t.Fatalf("merged n=%d min=%v max=%v", dst.Count(), dst.Min(), dst.Max())
	}
	if s.MergedInto(StageLatchWait, dst) {
		t.Fatal("MergedInto reported data for an empty stage")
	}
}

func TestStageSetReset(t *testing.T) {
	s := NewStageSet(2)
	s.Record(StageTotal, 1, time.Millisecond)
	s.Reset()
	if h := s.Histogram(StageTotal, 1); h == nil || h.Count() != 0 {
		t.Fatal("Reset should clear in place, keeping the histogram")
	}
	s.Record(StageTotal, 1, time.Millisecond)
	if s.Histogram(StageTotal, 1).Count() != 1 {
		t.Fatal("set unusable after Reset")
	}
}
