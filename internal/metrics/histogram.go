// Package metrics provides the measurement instruments used throughout the
// reproduction: log-bucketed latency histograms, CPU-time accounting broken
// down by the categories of the paper's Figure 9, windowed throughput
// series, and plain-text table rendering for the experiment harness.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"time"
)

// Histogram is a log-linear bucketed histogram of durations, similar in
// spirit to HdrHistogram: values are bucketed with ~3% relative precision
// across nanoseconds to minutes. It is not safe for concurrent use; the
// simulation is single-threaded by construction.
type Histogram struct {
	counts []uint64
	total  uint64
	sum    float64
	min    int64
	max    int64
}

// Bucketing: 64 major buckets (one per power of two of nanoseconds), each
// split into 32 linear sub-buckets.
const (
	subBucketBits  = 5
	subBuckets     = 1 << subBucketBits
	histNumBuckets = 64 * subBuckets
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{
		counts: make([]uint64, histNumBuckets),
		min:    math.MaxInt64,
	}
}

func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v)
	}
	msb := 63 - bits.LeadingZeros64(uint64(v))
	shift := msb - subBucketBits
	sub := int(v>>uint(shift)) - subBuckets // in [0, subBuckets)
	return (shift+1)*subBuckets + sub
}

// bucketLow returns the lowest value mapping to bucket i; used to
// reconstruct approximate values for percentiles.
func bucketLow(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	shift := i/subBuckets - 1
	sub := i % subBuckets
	return int64(subBuckets+sub) << uint(shift)
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	idx := bucketIndex(v)
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
	h.total++
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the mean observation, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(h.total))
}

// Min returns the smallest observation, or 0 if empty.
func (h *Histogram) Min() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Percentile returns the approximate p-th percentile. p is clamped into
// (0, 100]: non-positive (or NaN) p returns the minimum, p >= 100 the
// maximum, and an empty histogram reports 0 for every p.
func (h *Histogram) Percentile(p float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if math.IsNaN(p) || p <= 0 {
		return time.Duration(h.min)
	}
	if p >= 100 {
		return time.Duration(h.max)
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			// Midpoint of the bucket, clamped to observed range.
			lo := bucketLow(i)
			hi := bucketLow(i + 1)
			mid := (lo + hi) / 2
			if mid > h.max {
				mid = h.max
			}
			if mid < h.min {
				mid = h.min
			}
			return time.Duration(mid)
		}
	}
	return time.Duration(h.max)
}

// Reset clears all observations.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = 0
}

// Merge adds all observations of o into h (combining per-stage or
// per-window histograms across resets). A nil or empty o is a no-op, so
// merging never corrupts h's min/max sentinels.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.total == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.total > 0 {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
}

// Summary formats the headline statistics on one line.
func (h *Histogram) Summary() string {
	if h.total == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.total, h.Mean().Round(time.Nanosecond), h.Percentile(50), h.Percentile(99), h.Max())
}

// Counter is a monotonically increasing count.
type Counter struct{ n uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Gauge tracks a level (e.g., outstanding I/Os) and its time-weighted
// average. Times are supplied by the caller so the gauge works with the
// virtual clock.
type Gauge struct {
	level     int64
	weighted  float64 // integral of level over time
	lastT     int64
	startT    int64
	started   bool
	maxLevel  int64
	samples   uint64
}

// Set moves the gauge to level v at time now (nanoseconds).
func (g *Gauge) Set(now int64, v int64) {
	if !g.started {
		g.started = true
		g.startT = now
		g.lastT = now
	}
	g.weighted += float64(g.level) * float64(now-g.lastT)
	g.lastT = now
	g.level = v
	if v > g.maxLevel {
		g.maxLevel = v
	}
	g.samples++
}

// Add adjusts the gauge by delta at time now.
func (g *Gauge) Add(now int64, delta int64) { g.Set(now, g.level+delta) }

// Level returns the instantaneous level.
func (g *Gauge) Level() int64 { return g.level }

// Max returns the highest level seen.
func (g *Gauge) Max() int64 { return g.maxLevel }

// Avg returns the time-weighted average level up to time now.
func (g *Gauge) Avg(now int64) float64 {
	if !g.started || now <= g.startT {
		return float64(g.level)
	}
	w := g.weighted + float64(g.level)*float64(now-g.lastT)
	return w / float64(now-g.startT)
}

// Table renders aligned plain-text tables for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func trimFloat(v float64) string {
	a := math.Abs(v)
	switch {
	case v == math.Trunc(v) && a < 1e15:
		return fmt.Sprintf("%.0f", v)
	case a >= 100:
		return fmt.Sprintf("%.1f", v)
	case a >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
