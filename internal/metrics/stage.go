package metrics

import (
	"fmt"
	"time"
)

// Stage labels one segment of an operation's trip through the admission
// pipeline: from the embedder calling Admit, through the inbox ring, the
// scheduler's ready queue, latch and NVMe waits, to the completion
// callback. The sum of a completed operation's stage times (plus the CPU
// it spent being processed) is its end-to-end latency, so a per-stage
// histogram answers "where does the time go" — backpressure, queueing,
// latches, or the device.
type Stage int

const (
	// StageAdmitWait is time spent blocked in Admit on a full inbox ring
	// (backpressure). Zero for admissions that found room immediately.
	StageAdmitWait Stage = iota
	// StageInbox is residency in the admission ring: published by the
	// producer → drained by the working thread.
	StageInbox
	// StageQueueWait is total ready-queue residency: the sum over every
	// push→pop slice of the operation's life (an op re-enters the ready
	// queue after each latch grant and I/O completion).
	StageQueueWait
	// StageLatchWait is total time spent latch-blocked.
	StageLatchWait
	// StageIOWait is total time between NVMe submission and the probe
	// that detected the completion, summed over the op's I/Os.
	StageIOWait
	// StageDeliver is the completion callback's execution time on the
	// working thread (the cost of handing the result back to the waiter).
	StageDeliver
	// StageTotal is end-to-end latency: Admitted → Completed.
	StageTotal

	NumStages
)

// String names the stage (used as a label in tables, traces and the
// Prometheus exposition).
func (s Stage) String() string {
	switch s {
	case StageAdmitWait:
		return "admit-wait"
	case StageInbox:
		return "inbox"
	case StageQueueWait:
		return "queue-wait"
	case StageLatchWait:
		return "latch-wait"
	case StageIOWait:
		return "io-wait"
	case StageDeliver:
		return "deliver"
	case StageTotal:
		return "total"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Stages lists all stages in pipeline order.
func Stages() []Stage {
	out := make([]Stage, NumStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// StageSet is a (stage × operation-class) matrix of histograms. Classes
// are small integers supplied by the caller (the tree uses its op kinds).
// Histograms are allocated lazily on first record, so an idle pair costs
// one pointer; like Histogram itself the set is single-threaded.
type StageSet struct {
	classes int
	h       [NumStages][]*Histogram
}

// NewStageSet returns an empty set for the given number of classes.
func NewStageSet(classes int) *StageSet {
	if classes < 1 {
		classes = 1
	}
	s := &StageSet{classes: classes}
	for i := range s.h {
		s.h[i] = make([]*Histogram, classes)
	}
	return s
}

// Classes returns the class count the set was built with.
func (s *StageSet) Classes() int { return s.classes }

// Record adds one observation for (stage, class). Out-of-range classes
// are folded into class 0 rather than dropped.
func (s *StageSet) Record(st Stage, class int, d time.Duration) {
	if st < 0 || st >= NumStages {
		return
	}
	if class < 0 || class >= s.classes {
		class = 0
	}
	h := s.h[st][class]
	if h == nil {
		h = NewHistogram()
		s.h[st][class] = h
	}
	h.Record(d)
}

// Histogram returns the histogram for (stage, class), or nil if nothing
// has been recorded there. Treat as read-only.
func (s *StageSet) Histogram(st Stage, class int) *Histogram {
	if st < 0 || st >= NumStages || class < 0 || class >= s.classes {
		return nil
	}
	return s.h[st][class]
}

// MergedInto combines every class histogram of stage st into dst (using
// Histogram.Merge) and reports whether anything was merged.
func (s *StageSet) MergedInto(st Stage, dst *Histogram) bool {
	if st < 0 || st >= NumStages {
		return false
	}
	any := false
	for _, h := range s.h[st] {
		if h != nil && h.Count() > 0 {
			dst.Merge(h)
			any = true
		}
	}
	return any
}

// Merge folds every histogram of o into s, allocating destination
// histograms as needed. Classes beyond s's range fold into class 0,
// mirroring Record. Used to aggregate per-shard stage sets into one
// view; merge into a private copy, never into a live set another thread
// records to.
func (s *StageSet) Merge(o *StageSet) {
	if o == nil {
		return
	}
	for st := range o.h {
		for class, h := range o.h[st] {
			if h == nil || h.Count() == 0 {
				continue
			}
			c := class
			if c < 0 || c >= s.classes {
				c = 0
			}
			dst := s.h[st][c]
			if dst == nil {
				dst = NewHistogram()
				s.h[st][c] = dst
			}
			dst.Merge(h)
		}
	}
}

// Reset clears every histogram in place (capacity retained).
func (s *StageSet) Reset() {
	for st := range s.h {
		for _, h := range s.h[st] {
			if h != nil {
				h.Reset()
			}
		}
	}
}
