// Package lcb implements the LCB-Tree baseline of the paper's Figure 15:
// a log-based consistent B+ tree following the synchronous execution
// paradigm. Every update is recorded in a write-ahead log before being
// applied to the in-place tree; strong persistence flushes the log on
// every update (one log write + device flush per operation), weak
// persistence flushes on Sync(). The tree itself runs with deferred page
// write-back — the log, not the pages, carries durability, and recovery
// replays the log over the last checkpoint.
//
// The published LCB-Tree uses CAS instructions for latch-freedom; this
// reproduction approximates that with the shared CAS-latch primitive for
// log access and the same latch-coupled tree engine as the other
// baselines (see DESIGN.md §1 for the approximation note).
package lcb

import (
	"encoding/binary"
	"fmt"

	"github.com/patree/patree/internal/baseline/syncbtree"
	"github.com/patree/patree/internal/core"
	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/simos"
	"github.com/patree/patree/internal/storage"
	"github.com/patree/patree/internal/wal"
)

// Persistence re-exports the baseline modes.
type Persistence = syncbtree.Persistence

// Modes.
const (
	Strong = syncbtree.Strong
	Weak   = syncbtree.Weak
)

// Config parameterizes an LCB tree.
type Config struct {
	Persistence Persistence
	CachePages  int
	// WALBlocks is the log region size in 512B blocks (default 1M blocks
	// = 512 MB at the top of the device).
	WALBlocks uint64
}

// Tree is the log-based consistent B+ tree.
type Tree struct {
	cfg   Config
	io    syncbtree.IO
	inner *syncbtree.Tree
	log   *wal.Log
	logMu *simos.Mutex

	walStart  uint64
	walBlocks uint64
	updates   uint64
}

// Record opcodes.
const (
	recInsert = 1
	recDelete = 2
)

// New creates an LCB tree over a formatted device region.
func New(sched *simos.Sched, io syncbtree.IO, dev nvme.Device, cfg Config, meta *storage.Meta) *Tree {
	if cfg.WALBlocks == 0 {
		cfg.WALBlocks = 1 << 20
	}
	start := dev.NumBlocks() - cfg.WALBlocks
	return &Tree{
		cfg: cfg,
		io:  io,
		// The inner tree defers page writes (the log provides
		// durability); its cache is the method's 10%-of-index buffer.
		inner: syncbtree.NewTree(sched, io, syncbtree.Config{
			Persistence: syncbtree.Weak,
			CachePages:  cfg.CachePages,
		}, meta),
		log:       wal.NewLog(storage.PageSize, cfg.WALBlocks),
		logMu:     sched.NewMutex(),
		walStart:  start,
		walBlocks: cfg.WALBlocks,
	}
}

// NumKeys returns the key count.
func (t *Tree) NumKeys() uint64 { return t.inner.NumKeys() }

func encodeRec(op byte, key uint64, value []byte) []byte {
	rec := make([]byte, 9+len(value))
	rec[0] = op
	binary.LittleEndian.PutUint64(rec[1:9], key)
	copy(rec[9:], value)
	return rec
}

// logUpdate appends a redo record, flushing per the persistence mode.
func (t *Tree) logUpdate(th *simos.Thread, op byte, key uint64, value []byte) error {
	t.logMu.Lock(th)
	defer t.logMu.Unlock(th)
	if _, err := t.log.Append(encodeRec(op, key, value)); err == wal.ErrLogFull {
		// Checkpoint: flush the tree pages, then recycle the log.
		if err := t.inner.Sync(th); err != nil {
			return err
		}
		t.log.Reset(func(idx uint64, data []byte) {
			t.io.Write(th, t.walStart+idx, data)
		})
		if _, err := t.log.Append(encodeRec(op, key, value)); err != nil {
			return err
		}
	} else if err != nil {
		return err
	}
	if t.cfg.Persistence == Strong {
		var ioErr error
		t.log.Flush(func(idx uint64, data []byte) {
			if err := t.io.Write(th, t.walStart+idx, data); err != nil {
				ioErr = err
			}
		})
		if ioErr != nil {
			return ioErr
		}
		return t.io.Flush(th)
	}
	return nil
}

// Insert logs then applies an insert-or-replace.
func (t *Tree) Insert(th *simos.Thread, key uint64, value []byte) (bool, error) {
	if err := t.logUpdate(th, recInsert, key, value); err != nil {
		return false, err
	}
	t.updates++
	return t.inner.Insert(th, key, value)
}

// Update logs then applies a replace-if-present.
func (t *Tree) Update(th *simos.Thread, key uint64, value []byte) (bool, error) {
	if err := t.logUpdate(th, recInsert, key, value); err != nil {
		return false, err
	}
	t.updates++
	return t.inner.Update(th, key, value)
}

// Delete logs then applies a delete.
func (t *Tree) Delete(th *simos.Thread, key uint64) (bool, error) {
	if err := t.logUpdate(th, recDelete, key, nil); err != nil {
		return false, err
	}
	t.updates++
	return t.inner.Delete(th, key)
}

// Search reads through the inner tree.
func (t *Tree) Search(th *simos.Thread, key uint64) ([]byte, bool, error) {
	return t.inner.Search(th, key)
}

// RangeScan reads through the inner tree.
func (t *Tree) RangeScan(th *simos.Thread, lo, hi uint64, limit int) ([]core.KV, error) {
	return t.inner.RangeScan(th, lo, hi, limit)
}

// Sync makes all updates durable: flush the log, flush tree pages, and
// issue a device flush.
func (t *Tree) Sync(th *simos.Thread) error {
	t.logMu.Lock(th)
	var ioErr error
	t.log.Flush(func(idx uint64, data []byte) {
		if err := t.io.Write(th, t.walStart+idx, data); err != nil {
			ioErr = err
		}
	})
	t.logMu.Unlock(th)
	if ioErr != nil {
		return ioErr
	}
	if err := t.inner.Sync(th); err != nil {
		return err
	}
	return t.io.Flush(th)
}

// RecoverRecords reads the log region of dev directly (setup-path, not
// simulated time) and returns the redo records after the last checkpoint,
// for replay onto a reopened tree.
func RecoverRecords(dev *nvme.SimDevice, cfg Config) ([][]byte, error) {
	if cfg.WALBlocks == 0 {
		cfg.WALBlocks = 1 << 20
	}
	start := dev.NumBlocks() - cfg.WALBlocks
	// Read until the first all-invalid block run; Recover stops at the
	// torn tail anyway, so read a generous prefix.
	const maxScan = 4096
	n := cfg.WALBlocks
	if n > maxScan {
		n = maxScan
	}
	region := make([]byte, int(n)*storage.PageSize)
	dev.ReadAt(start, region)
	recs, _ := wal.Recover(region)
	return recs, nil
}

// Replay applies recovered records to a tree.
func Replay(th *simos.Thread, t *Tree, recs [][]byte) error {
	for _, rec := range recs {
		if len(rec) < 9 {
			return fmt.Errorf("lcb: short record")
		}
		key := binary.LittleEndian.Uint64(rec[1:9])
		switch rec[0] {
		case recInsert:
			if _, err := t.inner.Insert(th, key, rec[9:]); err != nil {
				return err
			}
		case recDelete:
			if _, err := t.inner.Delete(th, key); err != nil {
				return err
			}
		default:
			return fmt.Errorf("lcb: unknown record op %d", rec[0])
		}
	}
	return nil
}
