package lcb

import (
	"fmt"
	"testing"

	"github.com/patree/patree/internal/baseline/syncbtree"
	"github.com/patree/patree/internal/core"
	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/sim"
	"github.com/patree/patree/internal/simos"
)

type rig struct {
	eng  *sim.Engine
	os   *simos.Sched
	dev  *nvme.SimDevice
	io   syncbtree.IO
	tree *Tree
	live map[*simos.Thread]bool
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	r := &rig{live: map[*simos.Thread]bool{}}
	r.eng = sim.NewEngine()
	r.os = simos.New(r.eng, simos.Config{})
	r.dev = nvme.NewSimDevice(r.eng, nvme.SimConfig{Seed: 5})
	meta, err := core.Format(r.dev)
	if err != nil {
		t.Fatal(err)
	}
	r.io = NewIO(r.dev, r.os)
	r.tree = New(r.os, r.io, r.dev, cfg, meta)
	return r
}

// NewIO picks the dedicated discipline for tests.
func NewIO(dev nvme.Device, sched *simos.Sched) syncbtree.IO {
	return syncbtree.NewDedicated(dev, sched)
}

func (r *rig) spawn(name string, body func(*simos.Thread)) {
	var th *simos.Thread
	th = r.os.Spawn(name, func(tt *simos.Thread) {
		defer func() { r.live[tt] = false }()
		body(tt)
	})
	r.live[th] = true
}

func (r *rig) drive(t *testing.T) {
	t.Helper()
	for i := 0; i < 100_000_000; i++ {
		any := false
		for _, l := range r.live {
			if l {
				any = true
				break
			}
		}
		if !any {
			return
		}
		if !r.eng.Step() {
			t.Fatal("deadlock")
		}
	}
	t.Fatal("budget exhausted")
}

func TestLCBBasicOps(t *testing.T) {
	r := newRig(t, Config{Persistence: Weak, CachePages: 4096})
	r.spawn("w", func(th *simos.Thread) {
		for i := 0; i < 300; i++ {
			if _, err := r.tree.Insert(th, uint64(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
		for i := 0; i < 300; i++ {
			val, found, _ := r.tree.Search(th, uint64(i))
			if !found || string(val) != fmt.Sprintf("v%d", i) {
				t.Errorf("search %d: %q %v", i, val, found)
				return
			}
		}
		pairs, _ := r.tree.RangeScan(th, 10, 19, 0)
		if len(pairs) != 10 {
			t.Errorf("range: %d", len(pairs))
		}
		if ok, _ := r.tree.Delete(th, 5); !ok {
			t.Error("delete failed")
		}
	})
	r.drive(t)
	if r.tree.NumKeys() != 299 {
		t.Fatalf("numKeys = %d", r.tree.NumKeys())
	}
}

func TestLCBStrongFlushesPerUpdate(t *testing.T) {
	r := newRig(t, Config{Persistence: Strong, CachePages: 4096})
	r.spawn("w", func(th *simos.Thread) {
		for i := 0; i < 50; i++ {
			r.tree.Insert(th, uint64(i), []byte("v"))
		}
	})
	r.drive(t)
	st := r.dev.Stats()
	// Strong mode: >= one log write and one flush per update.
	if st.CompletedFlushes < 50 {
		t.Fatalf("flushes = %d, want >= 50", st.CompletedFlushes)
	}
	if st.CompletedWrites < 50 {
		t.Fatalf("writes = %d, want >= 50", st.CompletedWrites)
	}
}

func TestLCBWeakDefersLogWrites(t *testing.T) {
	r := newRig(t, Config{Persistence: Weak, CachePages: 4096})
	r.spawn("w", func(th *simos.Thread) {
		for i := 0; i < 200; i++ {
			r.tree.Insert(th, uint64(i), []byte("v"))
		}
	})
	r.drive(t)
	preSync := r.dev.Stats().CompletedWrites
	if preSync > 20 {
		t.Fatalf("weak mode wrote %d blocks before sync", preSync)
	}
	r.spawn("s", func(th *simos.Thread) {
		if err := r.tree.Sync(th); err != nil {
			t.Errorf("sync: %v", err)
		}
	})
	r.drive(t)
	if r.dev.Stats().CompletedWrites <= preSync {
		t.Fatal("sync wrote nothing")
	}
}

func TestLCBRecoveryReplaysLog(t *testing.T) {
	cfg := Config{Persistence: Strong, CachePages: 4096}
	r := newRig(t, cfg)
	r.spawn("w", func(th *simos.Thread) {
		for i := 0; i < 120; i++ {
			r.tree.Insert(th, uint64(i), []byte(fmt.Sprintf("v%d", i)))
		}
		r.tree.Delete(th, 7)
	})
	r.drive(t)
	// Crash: discard the tree (its pages were never flushed — only the
	// log is durable) and recover on a fresh tree from the last
	// checkpoint (the Format-time empty tree) plus the log.
	recs, err := RecoverRecords(r.dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 121 {
		t.Fatalf("recovered %d records, want 121", len(recs))
	}
	meta, err := core.ReadMeta(r.dev)
	if err != nil {
		t.Fatal(err)
	}
	fresh := New(r.os, r.io, r.dev, cfg, meta)
	r.spawn("replay", func(th *simos.Thread) {
		if err := Replay(th, fresh, recs); err != nil {
			t.Errorf("replay: %v", err)
			return
		}
		for i := 0; i < 120; i++ {
			val, found, _ := fresh.Search(th, uint64(i))
			if i == 7 {
				if found {
					t.Error("deleted key resurrected")
				}
				continue
			}
			if !found || string(val) != fmt.Sprintf("v%d", i) {
				t.Errorf("key %d lost in recovery: %q %v", i, val, found)
				return
			}
		}
	})
	r.drive(t)
	if fresh.NumKeys() != 119 {
		t.Fatalf("recovered numKeys = %d", fresh.NumKeys())
	}
}
