// Package blink implements the Blink-Tree baseline [Lehman & Yao] used in
// the paper's end-to-end comparison (Figure 15): a B+ tree whose nodes
// carry a high key and a right-link, so readers traverse without latch
// coupling (chasing right-links when a concurrent split moved their key)
// and writers latch one node at a time with CAS-style locks. Like all the
// paper's baselines it follows the synchronous execution paradigm: every
// node access is a blocking I/O on the issuing thread.
package blink

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"github.com/patree/patree/internal/baseline/syncbtree"
	"github.com/patree/patree/internal/core"
	"github.com/patree/patree/internal/metrics"
	"github.com/patree/patree/internal/simos"
	"github.com/patree/patree/internal/storage"
)

// node layout (512 bytes, little-endian):
//
//	[0]     kind (1=leaf, 2=inner)
//	[1]     level
//	[2:4]   nkeys
//	[4:12]  right-link page id (0 = rightmost)
//	[12:20] high key (valid when right-link != 0; keys >= high live right)
//	[20:24] crc32 (computed with this field zeroed)
//	leaf:  slots (key 8, off 2, len 2) forward; value bytes from the tail.
//	inner: child0 (8), then (key 8, child 8) pairs.
const (
	pageSize   = storage.PageSize
	headerSize = 24
	slotSize   = 12
	innerEntry = 16
	// maxInnerKeys = (512-24-8)/16 = 30
	maxInnerKeys = (pageSize - headerSize - 8) / innerEntry
	// splitMargin keeps room for separator inserts during cascades.
	innerSplitAt = maxInnerKeys - 2
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a checksum failure.
var ErrCorrupt = errors.New("blink: corrupt page")

type node struct {
	id    storage.PageID
	leaf  bool
	level uint8
	right storage.PageID
	high  uint64
	keys  []uint64
	vals  [][]byte         // leaf
	kids  []storage.PageID // inner: len(keys)+1
}

func (n *node) used() int {
	u := headerSize + len(n.keys)*slotSize
	for _, v := range n.vals {
		u += len(v)
	}
	return u
}

func (n *node) fits(vlen int) bool { return n.used()+slotSize+vlen <= pageSize }

func (n *node) encode() []byte {
	buf := make([]byte, pageSize)
	if n.leaf {
		buf[0] = 1
	} else {
		buf[0] = 2
	}
	buf[1] = n.level
	binary.LittleEndian.PutUint16(buf[2:4], uint16(len(n.keys)))
	binary.LittleEndian.PutUint64(buf[4:12], uint64(n.right))
	binary.LittleEndian.PutUint64(buf[12:20], n.high)
	if n.leaf {
		heap := pageSize
		off := headerSize
		for i, k := range n.keys {
			v := n.vals[i]
			heap -= len(v)
			copy(buf[heap:], v)
			binary.LittleEndian.PutUint64(buf[off:], k)
			binary.LittleEndian.PutUint16(buf[off+8:], uint16(heap))
			binary.LittleEndian.PutUint16(buf[off+10:], uint16(len(v)))
			off += slotSize
		}
	} else {
		binary.LittleEndian.PutUint64(buf[headerSize:], uint64(n.kids[0]))
		off := headerSize + 8
		for i, k := range n.keys {
			binary.LittleEndian.PutUint64(buf[off:], k)
			binary.LittleEndian.PutUint64(buf[off+8:], uint64(n.kids[i+1]))
			off += innerEntry
		}
	}
	binary.LittleEndian.PutUint32(buf[20:24], 0)
	binary.LittleEndian.PutUint32(buf[20:24], crc32.Checksum(buf, crcTable))
	return buf
}

func decode(id storage.PageID, buf []byte) (*node, error) {
	if len(buf) < pageSize {
		return nil, ErrCorrupt
	}
	want := binary.LittleEndian.Uint32(buf[20:24])
	tmp := make([]byte, 4)
	copy(tmp, buf[20:24])
	binary.LittleEndian.PutUint32(buf[20:24], 0)
	got := crc32.Checksum(buf[:pageSize], crcTable)
	copy(buf[20:24], tmp)
	if got != want {
		return nil, ErrCorrupt
	}
	n := &node{
		id:    id,
		leaf:  buf[0] == 1,
		level: buf[1],
		right: storage.PageID(binary.LittleEndian.Uint64(buf[4:12])),
		high:  binary.LittleEndian.Uint64(buf[12:20]),
	}
	nk := int(binary.LittleEndian.Uint16(buf[2:4]))
	n.keys = make([]uint64, nk)
	if n.leaf {
		n.vals = make([][]byte, nk)
		off := headerSize
		for i := 0; i < nk; i++ {
			n.keys[i] = binary.LittleEndian.Uint64(buf[off:])
			vo := int(binary.LittleEndian.Uint16(buf[off+8:]))
			vl := int(binary.LittleEndian.Uint16(buf[off+10:]))
			if vo+vl > pageSize || vo < headerSize {
				return nil, fmt.Errorf("blink: bad slot %d", i)
			}
			n.vals[i] = append([]byte(nil), buf[vo:vo+vl]...)
			off += slotSize
		}
	} else {
		n.kids = make([]storage.PageID, nk+1)
		n.kids[0] = storage.PageID(binary.LittleEndian.Uint64(buf[headerSize:]))
		off := headerSize + 8
		for i := 0; i < nk; i++ {
			n.keys[i] = binary.LittleEndian.Uint64(buf[off:])
			n.kids[i+1] = storage.PageID(binary.LittleEndian.Uint64(buf[off+8:]))
			off += innerEntry
		}
	}
	return n, nil
}

func (n *node) searchLeaf(key uint64) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.keys) && n.keys[lo] == key
}

func (n *node) childFor(key uint64) storage.PageID {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if key >= n.keys[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return n.kids[lo]
}

// covers reports whether key belongs to this node (not past its high key).
func (n *node) covers(key uint64) bool {
	return n.right == storage.NilPage || key < n.high
}

// Config parameterizes a Blink tree.
type Config struct {
	Persistence syncbtree.Persistence
	CachePages  int
	Costs       core.CostModel
}

// Tree is a multi-thread Blink tree over blocking I/O.
type Tree struct {
	cfg   Config
	io    syncbtree.IO
	locks *syncbtree.CASLatch
	cache *syncbtree.Cache

	rootID  storage.PageID
	height  int
	numKeys uint64
	alloc   *storage.Allocator
}

// Format initializes an empty Blink tree on the device region via io,
// returning the tree. Must run on a simulated thread.
func Format(th *simos.Thread, sched *simos.Sched, io syncbtree.IO, cfg Config) (*Tree, error) {
	if cfg.Costs == (core.CostModel{}) {
		cfg.Costs = core.DefaultCosts()
	}
	t := &Tree{
		cfg:    cfg,
		io:     io,
		locks:  syncbtree.NewCASLatch(sched),
		cache:  syncbtree.NewCache(cfg.CachePages, io),
		rootID: 1,
		height: 1,
		alloc:  storage.NewAllocator(2),
	}
	root := &node{id: 1, leaf: true}
	if err := io.Write(th, 1, root.encode()); err != nil {
		return nil, err
	}
	return t, nil
}

// NumKeys returns the key count.
func (t *Tree) NumKeys() uint64 { return t.numKeys }

// Height returns the tree height.
func (t *Tree) Height() int { return t.height }

func (t *Tree) read(th *simos.Thread, id storage.PageID) (*node, error) {
	if data, ok := t.cache.Get(id); ok {
		th.Work(metrics.CatRealWork, t.cfg.Costs.NodeVisit)
		return decode(id, data)
	}
	buf := make([]byte, pageSize)
	if err := t.io.Read(th, uint64(id), buf); err != nil {
		return nil, err
	}
	if err := t.cache.FillOnRead(th, id, buf); err != nil {
		return nil, err
	}
	th.Work(metrics.CatRealWork, t.cfg.Costs.NodeVisit)
	return decode(id, buf)
}

func (t *Tree) write(th *simos.Thread, n *node) error {
	data := n.encode()
	if t.cfg.Persistence == syncbtree.Weak {
		return t.cache.Write(th, n.id, data)
	}
	if err := t.io.Write(th, uint64(n.id), data); err != nil {
		return err
	}
	return t.cache.PutClean(th, n.id, data)
}

// Search is a latch-free point lookup: descend, chasing right-links when
// a concurrent split moved the key range.
func (t *Tree) Search(th *simos.Thread, key uint64) ([]byte, bool, error) {
	id := t.rootID
	for {
		n, err := t.read(th, id)
		if err != nil {
			return nil, false, err
		}
		if !n.covers(key) {
			id = n.right
			continue
		}
		if n.leaf {
			if i, found := n.searchLeaf(key); found {
				return n.vals[i], true, nil
			}
			return nil, false, nil
		}
		id = n.childFor(key)
	}
}

// RangeScan collects [lo, hi] with limit (<= 0 unlimited), walking the
// leaf chain through right-links.
func (t *Tree) RangeScan(th *simos.Thread, lo, hi uint64, limit int) ([]core.KV, error) {
	id := t.rootID
	var n *node
	var err error
	for {
		n, err = t.read(th, id)
		if err != nil {
			return nil, err
		}
		if !n.covers(lo) {
			id = n.right
			continue
		}
		if n.leaf {
			break
		}
		id = n.childFor(lo)
	}
	var out []core.KV
	start := lo
	for {
		i, _ := n.searchLeaf(start)
		for ; i < len(n.keys); i++ {
			if n.keys[i] > hi {
				return out, nil
			}
			out = append(out, core.KV{Key: n.keys[i], Value: n.vals[i]})
			if limit > 0 && len(out) >= limit {
				return out, nil
			}
		}
		if n.right == storage.NilPage || n.high > hi {
			return out, nil
		}
		start = 0
		n, err = t.read(th, n.right)
		if err != nil {
			return nil, err
		}
	}
}

// descend records the last inner node visited at each level, for parent
// back-tracking during splits (Lehman-Yao's "stack").
func (t *Tree) descend(th *simos.Thread, key uint64) (storage.PageID, []storage.PageID, error) {
	var stack []storage.PageID
	id := t.rootID
	for {
		n, err := t.read(th, id)
		if err != nil {
			return 0, nil, err
		}
		if !n.covers(key) {
			id = n.right
			continue
		}
		if n.leaf {
			return id, stack, nil
		}
		stack = append(stack, id)
		id = n.childFor(key)
	}
}

// lockCovering locks id, re-reads it, and moves right (lock-coupled)
// until the node covering key is locked. Returns the locked node.
func (t *Tree) lockCovering(th *simos.Thread, id storage.PageID, key uint64) (*node, error) {
	t.locks.Lock(th, id)
	for {
		n, err := t.read(th, id)
		if err != nil {
			t.locks.Unlock(th, id)
			return nil, err
		}
		if n.covers(key) {
			return n, nil
		}
		next := n.right
		t.locks.Lock(th, next)
		t.locks.Unlock(th, id)
		id = next
	}
}

// Insert inserts or replaces key.
func (t *Tree) Insert(th *simos.Thread, key uint64, value []byte) (bool, error) {
	if len(value) > storage.MaxValueSize {
		return false, core.ErrValueTooLarge
	}
	leafID, stack, err := t.descend(th, key)
	if err != nil {
		return false, err
	}
	n, err := t.lockCovering(th, leafID, key)
	if err != nil {
		return false, err
	}
	// Replace in place when it fits.
	wasReplace := false
	if i, found := n.searchLeaf(key); found {
		old := n.vals[i]
		if n.used()-len(old)+len(value) <= pageSize {
			n.vals[i] = append([]byte(nil), value...)
			th.Work(metrics.CatRealWork, t.cfg.Costs.LeafMutate)
			err := t.write(th, n)
			t.locks.Unlock(th, n.id)
			return true, err
		}
		// Delete then fall through to insertion (may split).
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		t.numKeys--
		wasReplace = true
	}
	_, err = t.insertLocked(th, n, stack, key, value, true)
	return wasReplace, err
}

// Update replaces key only if present.
func (t *Tree) Update(th *simos.Thread, key uint64, value []byte) (bool, error) {
	if len(value) > storage.MaxValueSize {
		return false, core.ErrValueTooLarge
	}
	leafID, stack, err := t.descend(th, key)
	if err != nil {
		return false, err
	}
	n, err := t.lockCovering(th, leafID, key)
	if err != nil {
		return false, err
	}
	i, found := n.searchLeaf(key)
	if !found {
		t.locks.Unlock(th, n.id)
		return false, nil
	}
	old := n.vals[i]
	if n.used()-len(old)+len(value) <= pageSize {
		n.vals[i] = append([]byte(nil), value...)
		th.Work(metrics.CatRealWork, t.cfg.Costs.LeafMutate)
		err := t.write(th, n)
		t.locks.Unlock(th, n.id)
		return true, err
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	t.numKeys--
	return t.insertLocked(th, n, stack, key, value, true)
}

// insertLocked inserts (key, value) into the locked leaf n, splitting as
// needed; countKey controls numKeys accounting for fresh inserts.
func (t *Tree) insertLocked(th *simos.Thread, n *node, stack []storage.PageID,
	key uint64, value []byte, countKey bool) (bool, error) {
	replaced := false
	if _, found := n.searchLeaf(key); found {
		replaced = true
	}
	if n.fits(len(value)) || replaced {
		i, found := n.searchLeaf(key)
		v := append([]byte(nil), value...)
		if found {
			n.vals[i] = v
		} else {
			n.keys = append(n.keys, 0)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = key
			n.vals = append(n.vals, nil)
			copy(n.vals[i+1:], n.vals[i:])
			n.vals[i] = v
			if countKey {
				t.numKeys++
			}
		}
		th.Work(metrics.CatRealWork, t.cfg.Costs.LeafMutate)
		err := t.write(th, n)
		t.locks.Unlock(th, n.id)
		return replaced, err
	}
	// Split until the half covering key fits the value; with values
	// capped at storage.MaxValueSize a single-entry leaf always fits one
	// more, so the loop terminates.
	type pending struct {
		sep   uint64
		right storage.PageID
	}
	var seps []pending
	var rights []*node
	target := n
	for !target.fits(len(value)) {
		var sep uint64
		var right *node
		if len(target.keys) >= 2 {
			sep, right = t.splitLeaf(target)
		} else {
			// Positional split: isolate the insertion point so the new
			// value lands in an (almost) empty leaf. Needed because the
			// blink header is larger than the storage-layer one, so two
			// maximal values do not share a leaf.
			i, _ := target.searchLeaf(key)
			right = &node{id: t.alloc.Alloc(), leaf: true, right: target.right, high: target.high}
			right.keys = append(right.keys, target.keys[i:]...)
			right.vals = append(right.vals, target.vals[i:]...)
			if len(right.keys) > 0 {
				sep = right.keys[0]
			} else {
				sep = key
			}
			target.keys = target.keys[:i:i]
			target.vals = target.vals[:i:i]
			target.right = right.id
			target.high = sep
		}
		th.Work(metrics.CatRealWork, t.cfg.Costs.Split)
		seps = append(seps, pending{sep: sep, right: right.id})
		rights = append(rights, right)
		if key >= sep {
			target = right
		}
	}
	i, _ := target.searchLeaf(key)
	v := append([]byte(nil), value...)
	target.keys = append(target.keys, 0)
	copy(target.keys[i+1:], target.keys[i:])
	target.keys[i] = key
	target.vals = append(target.vals, nil)
	copy(target.vals[i+1:], target.vals[i:])
	target.vals[i] = v
	if countKey {
		t.numKeys++
	}
	// Write the new chain rightmost-first so right-links never dangle,
	// then the original (still locked) leaf last.
	for j := len(rights) - 1; j >= 0; j-- {
		if err := t.write(th, rights[j]); err != nil {
			t.locks.Unlock(th, n.id)
			return false, err
		}
	}
	if err := t.write(th, n); err != nil {
		t.locks.Unlock(th, n.id)
		return false, err
	}
	t.locks.Unlock(th, n.id)
	// Propagate every separator into the parent level.
	for _, s := range seps {
		stackCopy := append([]storage.PageID(nil), stack...)
		if err := t.insertSeparator(th, stackCopy, s.sep, s.right, 1); err != nil {
			return false, err
		}
	}
	return replaced, nil
}

// splitLeaf moves the upper half of n to a new node and fixes links.
func (t *Tree) splitLeaf(n *node) (uint64, *node) {
	target := n.used() / 2
	used := headerSize
	cut := 0
	for i := range n.keys {
		used += slotSize + len(n.vals[i])
		if used > target && i > 0 {
			cut = i
			break
		}
		cut = i + 1
	}
	if cut >= len(n.keys) {
		cut = len(n.keys) - 1
	}
	if cut < 1 {
		cut = 1
	}
	right := &node{id: t.alloc.Alloc(), leaf: true, right: n.right, high: n.high}
	right.keys = append(right.keys, n.keys[cut:]...)
	right.vals = append(right.vals, n.vals[cut:]...)
	sep := right.keys[0]
	n.keys = n.keys[:cut:cut]
	n.vals = n.vals[:cut:cut]
	n.right = right.id
	n.high = sep
	return sep, right
}

// insertSeparator inserts (sep -> rightID) into the parent at the given
// level, splitting upward as needed; an empty stack means the root split.
func (t *Tree) insertSeparator(th *simos.Thread, stack []storage.PageID,
	sep uint64, rightID storage.PageID, level uint8) error {
	if len(stack) == 0 {
		return t.growRoot(th, sep, rightID, level)
	}
	parentID := stack[len(stack)-1]
	stack = stack[:len(stack)-1]
	p, err := t.lockCovering(th, parentID, sep)
	if err != nil {
		return err
	}
	// Insert the separator.
	lo, hi := 0, len(p.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if sep >= p.keys[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	p.keys = append(p.keys, 0)
	copy(p.keys[lo+1:], p.keys[lo:])
	p.keys[lo] = sep
	p.kids = append(p.kids, storage.NilPage)
	copy(p.kids[lo+2:], p.kids[lo+1:])
	p.kids[lo+1] = rightID
	if len(p.keys) <= innerSplitAt {
		err := t.write(th, p)
		t.locks.Unlock(th, p.id)
		return err
	}
	// Split the inner node.
	mid := len(p.keys) / 2
	upSep := p.keys[mid]
	right := &node{id: t.alloc.Alloc(), level: p.level, right: p.right, high: p.high}
	right.keys = append(right.keys, p.keys[mid+1:]...)
	right.kids = append(right.kids, p.kids[mid+1:]...)
	p.keys = p.keys[:mid:mid]
	p.kids = p.kids[:mid+1 : mid+1]
	p.right = right.id
	p.high = upSep
	th.Work(metrics.CatRealWork, t.cfg.Costs.Split)
	if err := t.write(th, right); err != nil {
		t.locks.Unlock(th, p.id)
		return err
	}
	if err := t.write(th, p); err != nil {
		t.locks.Unlock(th, p.id)
		return err
	}
	t.locks.Unlock(th, p.id)
	return t.insertSeparator(th, stack, upSep, right.id, p.level+1)
}

// growRoot hoists a new root after a root split, or — when another
// thread already grew the tree past this level — routes the separator to
// the inner node now covering it (the Lehman-Yao race).
func (t *Tree) growRoot(th *simos.Thread, sep uint64, rightID storage.PageID, level uint8) error {
	// Serialize root growth with a lock on the meta slot (page 0).
	t.locks.Lock(th, 0)
	if t.height == int(level) {
		oldRoot := t.rootID
		newRoot := &node{id: t.alloc.Alloc(), level: level,
			kids: []storage.PageID{oldRoot, rightID}, keys: []uint64{sep}}
		if err := t.write(th, newRoot); err != nil {
			t.locks.Unlock(th, 0)
			return err
		}
		t.rootID = newRoot.id
		t.height++
		t.locks.Unlock(th, 0)
		return nil
	}
	t.locks.Unlock(th, 0)
	// The root grew underneath us: descend to the node at `level` that
	// covers sep and insert there.
	id := t.rootID
	for {
		n, err := t.read(th, id)
		if err != nil {
			return err
		}
		if !n.covers(sep) {
			id = n.right
			continue
		}
		if n.level == level {
			return t.insertSeparator(th, []storage.PageID{id}, sep, rightID, level)
		}
		id = n.childFor(sep)
	}
}

// Delete removes key (leaves may become sparse; no merging, like the
// other trees in this reproduction).
func (t *Tree) Delete(th *simos.Thread, key uint64) (bool, error) {
	leafID, _, err := t.descend(th, key)
	if err != nil {
		return false, err
	}
	n, err := t.lockCovering(th, leafID, key)
	if err != nil {
		return false, err
	}
	i, found := n.searchLeaf(key)
	if !found {
		t.locks.Unlock(th, n.id)
		return false, nil
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	t.numKeys--
	th.Work(metrics.CatRealWork, t.cfg.Costs.LeafMutate)
	err = t.write(th, n)
	t.locks.Unlock(th, n.id)
	return true, err
}

// Sync flushes buffered updates (weak persistence).
func (t *Tree) Sync(th *simos.Thread) error { return t.cache.Sync(th) }

// SetPersistence switches the persistence mode and replaces the cache
// (callers must Sync first so no dirty pages are dropped). Used by the
// harness to load fast (weak) and then measure in the target mode.
func (t *Tree) SetPersistence(p syncbtree.Persistence, cachePages int) {
	if t.cache.DirtyCount() > 0 {
		panic("blink: SetPersistence with dirty pages; Sync first")
	}
	t.cfg.Persistence = p
	t.cfg.CachePages = cachePages
	t.cache = syncbtree.NewCache(cachePages, t.io)
}
