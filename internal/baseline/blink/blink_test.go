package blink

import (
	"fmt"
	"testing"
	"time"

	"github.com/patree/patree/internal/baseline/syncbtree"
	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/sim"
	"github.com/patree/patree/internal/simos"
	"github.com/patree/patree/internal/storage"
)

type rig struct {
	eng  *sim.Engine
	os   *simos.Sched
	dev  *nvme.SimDevice
	tree *Tree
	live map[*simos.Thread]bool
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	r := &rig{live: map[*simos.Thread]bool{}}
	r.eng = sim.NewEngine()
	r.os = simos.New(r.eng, simos.Config{})
	r.dev = nvme.NewSimDevice(r.eng, nvme.SimConfig{Seed: 3})
	io := syncbtree.NewDedicated(r.dev, r.os)
	r.os.Spawn("fmt", func(th *simos.Thread) {
		tree, err := Format(th, r.os, io, cfg)
		if err != nil {
			t.Errorf("format: %v", err)
			return
		}
		r.tree = tree
	})
	r.eng.RunFor(10 * time.Millisecond)
	if r.tree == nil {
		t.Fatal("format did not finish")
	}
	return r
}

func (r *rig) spawn(name string, body func(*simos.Thread)) {
	var th *simos.Thread
	th = r.os.Spawn(name, func(tt *simos.Thread) {
		defer func() { r.live[tt] = false }()
		body(tt)
	})
	r.live[th] = true
}

func (r *rig) drive(t *testing.T) {
	t.Helper()
	for i := 0; i < 100_000_000; i++ {
		anyLive := false
		for _, l := range r.live {
			if l {
				anyLive = true
				break
			}
		}
		if !anyLive {
			return
		}
		if !r.eng.Step() {
			t.Fatal("deadlock: engine drained with live workers")
		}
	}
	t.Fatal("step budget exhausted")
}

func TestBlinkNodeRoundTrip(t *testing.T) {
	n := &node{id: 5, leaf: true, right: 9, high: 100}
	n.keys = []uint64{1, 2, 3}
	n.vals = [][]byte{[]byte("a"), {}, []byte("ccc")}
	got, err := decode(5, n.encode())
	if err != nil {
		t.Fatal(err)
	}
	if !got.leaf || got.right != 9 || got.high != 100 || len(got.keys) != 3 {
		t.Fatalf("decoded %+v", got)
	}
	if string(got.vals[2]) != "ccc" {
		t.Fatalf("vals = %q", got.vals)
	}
	inner := &node{id: 6, level: 1, right: 7, high: 50,
		keys: []uint64{10, 20}, kids: []storage.PageID{1, 2, 3}}
	gi, err := decode(6, inner.encode())
	if err != nil {
		t.Fatal(err)
	}
	if gi.leaf || gi.kids[2] != 3 || gi.keys[1] != 20 {
		t.Fatalf("inner = %+v", gi)
	}
	// Corruption rejected.
	buf := n.encode()
	buf[30] ^= 1
	if _, err := decode(5, buf); err != ErrCorrupt {
		t.Fatalf("err = %v", err)
	}
}

func TestBlinkBasicOps(t *testing.T) {
	r := newRig(t, Config{})
	r.spawn("w", func(th *simos.Thread) {
		for i := 0; i < 500; i++ {
			if _, err := r.tree.Insert(th, uint64(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
		}
		for i := 0; i < 500; i++ {
			val, found, err := r.tree.Search(th, uint64(i))
			if err != nil || !found || string(val) != fmt.Sprintf("v%d", i) {
				t.Errorf("search %d: %q %v %v", i, val, found, err)
				return
			}
		}
		if _, found, _ := r.tree.Search(th, 99999); found {
			t.Error("phantom key")
		}
		pairs, err := r.tree.RangeScan(th, 100, 149, 0)
		if err != nil || len(pairs) != 50 {
			t.Errorf("range: %d, %v", len(pairs), err)
		}
		if ok, _ := r.tree.Delete(th, 10); !ok {
			t.Error("delete failed")
		}
		if _, found, _ := r.tree.Search(th, 10); found {
			t.Error("deleted key found")
		}
		if ok, _ := r.tree.Update(th, 20, []byte("new")); !ok {
			t.Error("update failed")
		}
		if ok, _ := r.tree.Update(th, 77777, []byte("x")); ok {
			t.Error("update of absent key succeeded")
		}
	})
	r.drive(t)
	if r.tree.Height() < 2 {
		t.Fatalf("height = %d", r.tree.Height())
	}
	if r.tree.NumKeys() != 499 {
		t.Fatalf("numKeys = %d", r.tree.NumKeys())
	}
}

func TestBlinkConcurrentInserts(t *testing.T) {
	r := newRig(t, Config{})
	const workers = 8
	const per = 150
	for w := 0; w < workers; w++ {
		w := w
		r.spawn(fmt.Sprintf("w%d", w), func(th *simos.Thread) {
			rng := sim.NewRNG(uint64(w + 1))
			for i := 0; i < per; i++ {
				k := uint64(w*10000) + rng.Uint64n(5000)
				if _, err := r.tree.Insert(th, k, []byte("v")); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if _, found, err := r.tree.Search(th, k); !found || err != nil {
					t.Errorf("readback %d: %v %v", k, found, err)
					return
				}
			}
		})
	}
	r.drive(t)
	// Full scan returns sorted unique keys matching NumKeys.
	var n int
	r.spawn("verify", func(th *simos.Thread) {
		pairs, err := r.tree.RangeScan(th, 0, ^uint64(0), 0)
		if err != nil {
			t.Errorf("scan: %v", err)
			return
		}
		for i := 1; i < len(pairs); i++ {
			if pairs[i].Key <= pairs[i-1].Key {
				t.Errorf("scan unordered at %d", i)
				return
			}
		}
		n = len(pairs)
	})
	r.drive(t)
	if uint64(n) != r.tree.NumKeys() {
		t.Fatalf("scan found %d keys, tree says %d", n, r.tree.NumKeys())
	}
}

func TestBlinkLargeValuesMultiSplit(t *testing.T) {
	r := newRig(t, Config{})
	r.spawn("w", func(th *simos.Thread) {
		big := make([]byte, storage.MaxValueSize)
		for i := 0; i < 60; i++ {
			if _, err := r.tree.Insert(th, uint64(i), big); err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
		}
		for i := 0; i < 60; i++ {
			val, found, _ := r.tree.Search(th, uint64(i))
			if !found || len(val) != storage.MaxValueSize {
				t.Errorf("key %d: found=%v len=%d", i, found, len(val))
				return
			}
		}
	})
	r.drive(t)
}

func TestBlinkWeakPersistence(t *testing.T) {
	r := newRig(t, Config{Persistence: syncbtree.Weak, CachePages: 4096})
	r.spawn("w", func(th *simos.Thread) {
		for i := 0; i < 200; i++ {
			r.tree.Insert(th, 1, []byte(fmt.Sprintf("v%d", i)))
		}
		if err := r.tree.Sync(th); err != nil {
			t.Errorf("sync: %v", err)
		}
	})
	r.drive(t)
	if w := r.dev.Stats().CompletedWrites; w > 20 {
		t.Fatalf("weak blink issued %d writes for 200 same-key updates", w)
	}
}

func TestBlinkValueTooLarge(t *testing.T) {
	r := newRig(t, Config{})
	r.spawn("w", func(th *simos.Thread) {
		if _, err := r.tree.Insert(th, 1, make([]byte, storage.MaxValueSize+1)); err == nil {
			t.Error("oversized insert accepted")
		}
	})
	r.drive(t)
}
