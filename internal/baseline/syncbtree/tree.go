package syncbtree

import (

	"github.com/patree/patree/internal/core"
	"github.com/patree/patree/internal/metrics"
	"github.com/patree/patree/internal/simos"
	"github.com/patree/patree/internal/storage"
)

// Persistence mirrors core.Persistence for the baselines.
type Persistence int

// Persistence modes.
const (
	Strong Persistence = iota
	Weak
)

// Config parameterizes a baseline tree.
type Config struct {
	// Persistence selects write-through (strong) or buffered (weak).
	Persistence Persistence
	// CachePages is the shared cache capacity (0 = no cache, the §V-A
	// configuration).
	CachePages int
	// Costs are the index-logic CPU constants, shared with PA-Tree so
	// CPU-efficiency comparisons are fair.
	Costs core.CostModel
}

func (c Config) withDefaults() Config {
	if c.Costs == (core.CostModel{}) {
		c.Costs = core.DefaultCosts()
	}
	return c
}

// Tree is a synchronous-paradigm B+ tree over blocking I/O: identical
// node structure and latch-coupling protocol to PA-Tree, but every I/O
// blocks its thread (§V-A's baselines). Methods must be called from
// simulated threads.
type Tree struct {
	cfg     Config
	io      IO
	latches *Latches
	cache   *Cache

	rootID  storage.PageID
	height  int
	numKeys uint64
	alloc   *storage.Allocator
}

// NewTree opens a baseline tree over io from a meta image.
func NewTree(sched *simos.Sched, io IO, cfg Config, meta *storage.Meta) *Tree {
	cfg = cfg.withDefaults()
	return &Tree{
		cfg:     cfg,
		io:      io,
		latches: NewLatches(sched),
		cache:   NewCache(cfg.CachePages, io),
		rootID:  meta.Root,
		height:  int(meta.Height),
		numKeys: meta.NumKeys,
		alloc:   storage.NewAllocator(meta.Watermark),
	}
}

// NumKeys returns the key count.
func (t *Tree) NumKeys() uint64 { return t.numKeys }

// Height returns the tree height.
func (t *Tree) Height() int { return t.height }

// LatchWaits returns the number of blocked latch acquisitions.
func (t *Tree) LatchWaits() uint64 { return t.latches.Waits() }

// readNode loads and decodes a page (cache first, then blocking I/O).
func (t *Tree) readNode(th *simos.Thread, id storage.PageID) (*storage.Node, error) {
	if data, ok := t.cache.Get(id); ok {
		th.Work(metrics.CatRealWork, t.cfg.Costs.NodeVisit)
		return storage.DecodeNode(id, data)
	}
	buf := make([]byte, storage.PageSize)
	if err := t.io.Read(th, uint64(id), buf); err != nil {
		return nil, err
	}
	if err := t.cache.FillOnRead(th, id, buf); err != nil {
		return nil, err
	}
	th.Work(metrics.CatRealWork, t.cfg.Costs.NodeVisit)
	return storage.DecodeNode(id, buf)
}

// writeNode persists a modified node per the persistence mode.
func (t *Tree) writeNode(th *simos.Thread, n *storage.Node) error {
	data := n.Encode()
	if t.cfg.Persistence == Weak {
		return t.cache.Write(th, n.ID, data)
	}
	if err := t.io.Write(th, uint64(n.ID), data); err != nil {
		return err
	}
	return t.cache.PutClean(th, n.ID, data)
}

func (t *Tree) writeMeta(th *simos.Thread) error {
	meta := &storage.Meta{
		Root:      t.rootID,
		Height:    uint8(t.height),
		Watermark: t.alloc.Watermark(),
		NumKeys:   t.numKeys,
	}
	if t.cfg.Persistence == Weak {
		return t.cache.Write(th, 0, meta.Encode())
	}
	return t.io.Write(th, 0, meta.Encode())
}

// entryLatch acquires the root latch with the root-change recheck.
func (t *Tree) entryLatch(th *simos.Thread, mode Mode) (storage.PageID, error) {
	for {
		id := t.rootID
		t.latches.Acquire(th, id, mode)
		if id == t.rootID {
			return id, nil
		}
		t.latches.Release(th, id, mode)
	}
}

// Search performs a blocking point lookup with S-latch coupling.
func (t *Tree) Search(th *simos.Thread, key uint64) ([]byte, bool, error) {
	id, err := t.entryLatch(th, SLatch)
	if err != nil {
		return nil, false, err
	}
	for {
		node, err := t.readNode(th, id)
		if err != nil {
			t.latches.Release(th, id, SLatch)
			return nil, false, err
		}
		if node.IsLeaf() {
			i, found := node.SearchLeaf(key)
			var val []byte
			if found {
				val = node.Vals[i]
			}
			t.latches.Release(th, id, SLatch)
			return val, found, nil
		}
		child := node.Children[node.ChildIndex(key)]
		t.latches.Acquire(th, child, SLatch)
		t.latches.Release(th, id, SLatch)
		id = child
	}
}

// RangeScan collects pairs in [lo, hi] (limit <= 0 means unlimited),
// coupling S latches down the tree and across the leaf chain.
func (t *Tree) RangeScan(th *simos.Thread, lo, hi uint64, limit int) ([]core.KV, error) {
	id, err := t.entryLatch(th, SLatch)
	if err != nil {
		return nil, err
	}
	// Descend to the first leaf.
	var node *storage.Node
	for {
		node, err = t.readNode(th, id)
		if err != nil {
			t.latches.Release(th, id, SLatch)
			return nil, err
		}
		if node.IsLeaf() {
			break
		}
		child := node.Children[node.ChildIndex(lo)]
		t.latches.Acquire(th, child, SLatch)
		t.latches.Release(th, id, SLatch)
		id = child
	}
	var out []core.KV
	start := lo
	for {
		i, _ := node.SearchLeaf(start)
		for ; i < len(node.Keys); i++ {
			if node.Keys[i] > hi {
				t.latches.Release(th, id, SLatch)
				return out, nil
			}
			out = append(out, core.KV{Key: node.Keys[i], Value: node.Vals[i]})
			if limit > 0 && len(out) >= limit {
				t.latches.Release(th, id, SLatch)
				return out, nil
			}
		}
		if node.Next == storage.NilPage {
			t.latches.Release(th, id, SLatch)
			return out, nil
		}
		next := node.Next
		t.latches.Acquire(th, next, SLatch)
		t.latches.Release(th, id, SLatch)
		id = next
		start = 0
		node, err = t.readNode(th, id)
		if err != nil {
			t.latches.Release(th, id, SLatch)
			return nil, err
		}
	}
}

// pathEntry is one held node on the update descent.
type pathEntry struct {
	id   storage.PageID
	node *storage.Node
}

// Insert inserts or replaces key, with X-latch coupling, preemptive
// splitting and release of split-safe ancestors — the same structural
// protocol as PA-Tree, executed synchronously.
func (t *Tree) Insert(th *simos.Thread, key uint64, value []byte) (bool, error) {
	return t.update(th, key, value, false)
}

// Update replaces key if present.
func (t *Tree) Update(th *simos.Thread, key uint64, value []byte) (bool, error) {
	return t.update(th, key, value, true)
}

func (t *Tree) update(th *simos.Thread, key uint64, value []byte, mustExist bool) (bool, error) {
	if len(value) > storage.MaxValueSize {
		return false, core.ErrValueTooLarge
	}
	// Optimistic pass (same protocol as PA-Tree): shared latches on inner
	// nodes, exclusive only on the leaf; restart pessimistically when the
	// leaf must split.
	if t.height > 1 {
		done, replaced, err := t.optimisticUpdate(th, key, value, mustExist)
		if done {
			return replaced, err
		}
	}
	return t.pessimisticUpdate(th, key, value, mustExist)
}

// optimisticUpdate attempts the S-inner/X-leaf descent; done=false means
// the caller must retry with exclusive coupling.
func (t *Tree) optimisticUpdate(th *simos.Thread, key uint64, value []byte, mustExist bool) (done, replaced bool, err error) {
	id, err := t.entryLatch(th, SLatch)
	if err != nil {
		return true, false, err
	}
	mode := SLatch
	for {
		node, err := t.readNode(th, id)
		if err != nil {
			t.latches.Release(th, id, mode)
			return true, false, err
		}
		if node.IsLeaf() {
			if mode != XLatch {
				// Height shrank to a root leaf mid-flight; retry.
				t.latches.Release(th, id, mode)
				return false, false, nil
			}
			i, found := node.SearchLeaf(key)
			if mustExist && !found {
				t.latches.Release(th, id, mode)
				return true, false, nil
			}
			if t.needsSplit(node, key, value) {
				t.latches.Release(th, id, mode)
				return false, false, nil // pessimistic retry
			}
			_ = i
			rep := node.InsertLeaf(key, value)
			if !rep {
				t.numKeys++
			}
			th.Work(metrics.CatRealWork, t.cfg.Costs.LeafMutate)
			werr := t.writeNode(th, node)
			t.latches.Release(th, id, mode)
			return true, rep, werr
		}
		child := node.Children[node.ChildIndex(key)]
		childMode := SLatch
		if node.Level == 1 {
			childMode = XLatch
		}
		t.latches.Acquire(th, child, childMode)
		t.latches.Release(th, id, mode)
		id, mode = child, childMode
	}
}

func (t *Tree) pessimisticUpdate(th *simos.Thread, key uint64, value []byte, mustExist bool) (bool, error) {
	costs := &t.cfg.Costs
	id, err := t.entryLatch(th, XLatch)
	if err != nil {
		return false, err
	}
	held := []pathEntry{{id: id}}
	var modified []*storage.Node
	releaseAll := func() {
		for _, h := range held {
			t.latches.Release(th, h.id, XLatch)
		}
	}
	isModified := func(id storage.PageID) bool {
		for _, m := range modified {
			if m.ID == id {
				return true
			}
		}
		return false
	}
	// releaseSafe drops all held latches above the current (last) entry
	// that protect unmodified nodes.
	releaseSafe := func() {
		kept := held[:0]
		last := held[len(held)-1].id
		for _, h := range held {
			if h.id == last || isModified(h.id) {
				kept = append(kept, h)
				continue
			}
			t.latches.Release(th, h.id, XLatch)
		}
		held = kept
	}

	rootChanged := false
	var parent *storage.Node
	for {
		cur := &held[len(held)-1]
		if cur.node == nil {
			n, err := t.readNode(th, cur.id)
			if err != nil {
				releaseAll()
				return false, err
			}
			cur.node = n
		}
		node := cur.node

		if t.needsSplit(node, key, value) {
			if mustExist && node.IsLeaf() {
				if _, found := node.SearchLeaf(key); !found {
					releaseAll()
					return false, nil
				}
			}
			t.split(th, &held, &modified, &parent, node, key, value, &rootChanged)
			// The split reshuffled held so its tail is the half covering
			// key; re-enter the loop there.
			continue
		}

		if node.IsLeaf() {
			i, found := node.SearchLeaf(key)
			if mustExist && !found {
				releaseAll()
				return false, nil
			}
			_ = i
			replaced := node.InsertLeaf(key, value)
			if !replaced {
				t.numKeys++
			}
			th.Work(metrics.CatRealWork, costs.LeafMutate)
			t.markMod(&modified, node)
			if err := t.flushModified(th, modified, rootChanged); err != nil {
				releaseAll()
				return false, err
			}
			releaseAll()
			return replaced, nil
		}

		releaseSafe()
		parent = node
		child := node.Children[node.ChildIndex(key)]
		t.latches.Acquire(th, child, XLatch)
		held = append(held, pathEntry{id: child})
	}
}

// addHeld appends an entry if its id is not already held.
func addHeld(held *[]pathEntry, e pathEntry) {
	for _, h := range *held {
		if h.id == e.id {
			return
		}
	}
	*held = append(*held, e)
}

// moveToTail makes the entry for id the last element of held.
func moveToTail(held *[]pathEntry, id storage.PageID) {
	for i, h := range *held {
		if h.id == id {
			*held = append(append((*held)[:i:i], (*held)[i+1:]...), h)
			return
		}
	}
	panic("syncbtree: moveToTail of node not held")
}

func (t *Tree) needsSplit(node *storage.Node, key uint64, value []byte) bool {
	if !node.IsLeaf() {
		return node.NumKeys() >= storage.InnerMaxKeys-6
	}
	if i, found := node.SearchLeaf(key); found {
		return !node.LeafFitsReplace(i, len(value))
	}
	return !node.LeafFits(len(value))
}

// split mirrors core's splitCurrent for the synchronous engine: it splits
// node under its held parent (hoisting a new root when needed), keeping
// every touched node latched and recorded in modified, and reorders held
// so its tail is the half covering key. *parent is updated to the node
// one level above that target.
func (t *Tree) split(th *simos.Thread, held *[]pathEntry, modified *[]*storage.Node,
	parent **storage.Node, node *storage.Node, key uint64, value []byte, rootChanged *bool) {
	costs := &t.cfg.Costs
	if *parent == nil {
		newRootID := t.alloc.Alloc()
		newRoot := storage.NewInner(newRootID, node.Level+1)
		newRoot.Children = []storage.PageID{node.ID}
		t.latches.Acquire(th, newRootID, XLatch)
		addHeld(held, pathEntry{id: newRootID, node: newRoot})
		t.markMod(modified, newRoot)
		t.rootID = newRootID
		t.height++
		*rootChanged = true
		*parent = newRoot
	}
	p := *parent
	target := node
	if !node.IsLeaf() {
		rightID := t.alloc.Alloc()
		sep, right := node.SplitInner(rightID)
		t.latches.Acquire(th, rightID, XLatch)
		p.InsertInner(sep, rightID)
		th.Work(metrics.CatRealWork, costs.Split)
		t.markMod(modified, node)
		t.markMod(modified, right)
		t.markMod(modified, p)
		addHeld(held, pathEntry{id: rightID, node: right})
		if key >= sep {
			target = right
		}
	} else {
		t.markMod(modified, p)
		for {
			var fits bool
			if i, found := target.SearchLeaf(key); found {
				fits = target.LeafFitsReplace(i, len(value))
			} else {
				fits = target.LeafFits(len(value))
			}
			if fits {
				break
			}
			if target.NumKeys() < 2 {
				panic("syncbtree: unsplittable leaf")
			}
			rightID := t.alloc.Alloc()
			sep, right := target.SplitLeaf(rightID)
			t.latches.Acquire(th, rightID, XLatch)
			p.InsertInner(sep, rightID)
			th.Work(metrics.CatRealWork, costs.Split)
			t.markMod(modified, target)
			t.markMod(modified, right)
			addHeld(held, pathEntry{id: rightID, node: right})
			if key >= sep {
				target = right
			}
		}
		if p.NumKeys() > storage.InnerMaxKeys {
			panic("syncbtree: parent overflow after leaf multi-split")
		}
	}
	moveToTail(held, target.ID)
}

func (t *Tree) markMod(modified *[]*storage.Node, n *storage.Node) {
	for _, m := range *modified {
		if m == n {
			return
		}
	}
	*modified = append(*modified, n)
}

// flushModified persists modified nodes children-first, plus the meta
// page when the root changed.
func (t *Tree) flushModified(th *simos.Thread, modified []*storage.Node, rootChanged bool) error {
	mods := append([]*storage.Node(nil), modified...)
	for i := 0; i < len(mods); i++ {
		for j := i + 1; j < len(mods); j++ {
			if mods[j].Level < mods[i].Level {
				mods[i], mods[j] = mods[j], mods[i]
			}
		}
	}
	for _, n := range mods {
		if err := t.writeNode(th, n); err != nil {
			return err
		}
	}
	if rootChanged {
		return t.writeMeta(th)
	}
	return nil
}

// Delete removes key (no structural shrinking, matching PA-Tree).
func (t *Tree) Delete(th *simos.Thread, key uint64) (bool, error) {
	id, err := t.entryLatch(th, XLatch)
	if err != nil {
		return false, err
	}
	for {
		node, err := t.readNode(th, id)
		if err != nil {
			t.latches.Release(th, id, XLatch)
			return false, err
		}
		if node.IsLeaf() {
			i, found := node.SearchLeaf(key)
			if !found {
				t.latches.Release(th, id, XLatch)
				return false, nil
			}
			node.DeleteLeafAt(i)
			t.numKeys--
			th.Work(metrics.CatRealWork, t.cfg.Costs.LeafMutate)
			err := t.writeNode(th, node)
			t.latches.Release(th, id, XLatch)
			return true, err
		}
		child := node.Children[node.ChildIndex(key)]
		t.latches.Acquire(th, child, XLatch)
		t.latches.Release(th, id, XLatch)
		id = child
	}
}

// Sync flushes all buffered updates and the meta page (weak persistence).
func (t *Tree) Sync(th *simos.Thread) error {
	if err := t.writeMeta(th); err != nil {
		return err
	}
	return t.cache.Sync(th)
}

// CacheStats exposes cache effectiveness.
func (t *Tree) CacheStats() (hits, misses uint64) {
	st := t.cache.Stats()
	return st.Hits, st.Misses
}
