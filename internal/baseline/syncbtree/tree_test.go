package syncbtree

import (
	"fmt"
	"testing"
	"time"

	"github.com/patree/patree/internal/core"
	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/sim"
	"github.com/patree/patree/internal/simos"
	"github.com/patree/patree/internal/storage"
)

type rig struct {
	eng  *sim.Engine
	os   *simos.Sched
	dev  *nvme.SimDevice
	tree *Tree
	io   IO
}

func newRig(t *testing.T, shared bool, cfg Config) *rig {
	t.Helper()
	r := &rig{}
	r.eng = sim.NewEngine()
	r.os = simos.New(r.eng, simos.Config{})
	r.dev = nvme.NewSimDevice(r.eng, nvme.SimConfig{Seed: 7})
	meta, err := core.Format(r.dev)
	if err != nil {
		t.Fatal(err)
	}
	if shared {
		sio := NewShared(r.dev, r.os)
		r.io = sio
		t.Cleanup(func() { sio.Stop(); r.eng.RunFor(time.Second) })
	} else {
		r.io = NewDedicated(r.dev, r.os)
	}
	r.tree = NewTree(r.os, r.io, cfg, meta)
	return r
}

// thLive tracks which test workers are still running (the shared-IO
// daemon thread never exits on its own, so Sched.Live cannot be used).
var thLive = map[*simos.Thread]bool{}

func (r *rig) spawnTracked(name string, body func(*simos.Thread)) {
	var th *simos.Thread
	th = r.os.Spawn(name, func(tt *simos.Thread) {
		defer func() { thLive[tt] = false }()
		body(tt)
	})
	thLive[th] = true
}

func TestSyncTreeBasicSingleThread(t *testing.T) {
	for _, shared := range []bool{false, true} {
		name := "dedicated"
		if shared {
			name = "shared"
		}
		t.Run(name, func(t *testing.T) {
			r := newRig(t, shared, Config{})
			doneOps := 0
			r.spawnTracked("w", func(th *simos.Thread) {
				for i := 0; i < 200; i++ {
					if _, err := r.tree.Insert(th, uint64(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
						t.Errorf("insert %d: %v", i, err)
						return
					}
				}
				for i := 0; i < 200; i++ {
					val, found, err := r.tree.Search(th, uint64(i))
					if err != nil || !found || string(val) != fmt.Sprintf("v%d", i) {
						t.Errorf("search %d: %q %v %v", i, val, found, err)
						return
					}
				}
				pairs, err := r.tree.RangeScan(th, 50, 59, 0)
				if err != nil || len(pairs) != 10 {
					t.Errorf("range: %d pairs, %v", len(pairs), err)
				}
				if ok, err := r.tree.Delete(th, 100); !ok || err != nil {
					t.Errorf("delete: %v %v", ok, err)
				}
				if _, found, _ := r.tree.Search(th, 100); found {
					t.Error("deleted key found")
				}
				doneOps++
			})
			driveAll(t, r)
			if doneOps != 1 {
				t.Fatal("worker did not finish")
			}
			if r.tree.NumKeys() != 199 {
				t.Fatalf("numKeys = %d", r.tree.NumKeys())
			}
		})
	}
}

// driveAll steps the engine until all tracked workers finished.
func driveAll(t *testing.T, r *rig) {
	t.Helper()
	deadline := 100_000_000
	for i := 0; i < deadline; i++ {
		live := false
		for th, l := range thLive {
			_ = th
			if l {
				live = true
				break
			}
		}
		if !live {
			return
		}
		if !r.eng.Step() {
			t.Fatal("engine drained with live workers (deadlock)")
		}
	}
	t.Fatal("engine step budget exhausted")
}

func TestSyncTreeMultiThreadedConsistency(t *testing.T) {
	r := newRig(t, false, Config{})
	const workers = 8
	const perWorker = 150
	for w := 0; w < workers; w++ {
		w := w
		r.spawnTracked(fmt.Sprintf("w%d", w), func(th *simos.Thread) {
			for i := 0; i < perWorker; i++ {
				key := uint64(w*perWorker + i)
				if _, err := r.tree.Insert(th, key, []byte("v")); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		})
	}
	driveAll(t, r)
	if r.tree.NumKeys() != workers*perWorker {
		t.Fatalf("numKeys = %d, want %d", r.tree.NumKeys(), workers*perWorker)
	}
	// Verify all keys via a fresh worker.
	missing := 0
	r.spawnTracked("verify", func(th *simos.Thread) {
		for k := uint64(0); k < workers*perWorker; k++ {
			if _, found, _ := r.tree.Search(th, k); !found {
				missing++
			}
		}
	})
	driveAll(t, r)
	if missing != 0 {
		t.Fatalf("%d keys missing after concurrent inserts", missing)
	}
}

func TestSyncTreeSharedDaemonPath(t *testing.T) {
	r := newRig(t, true, Config{})
	const workers = 4
	for w := 0; w < workers; w++ {
		w := w
		r.spawnTracked(fmt.Sprintf("w%d", w), func(th *simos.Thread) {
			for i := 0; i < 60; i++ {
				key := uint64(w*1000 + i)
				if _, err := r.tree.Insert(th, key, []byte("v")); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if _, found, err := r.tree.Search(th, key); !found || err != nil {
					t.Errorf("readback %d: %v %v", key, found, err)
					return
				}
			}
		})
	}
	driveAll(t, r)
	if r.tree.NumKeys() != workers*60 {
		t.Fatalf("numKeys = %d", r.tree.NumKeys())
	}
}

func TestSyncTreeWeakPersistenceAndSync(t *testing.T) {
	r := newRig(t, false, Config{Persistence: Weak, CachePages: 4096})
	r.spawnTracked("w", func(th *simos.Thread) {
		for i := 0; i < 300; i++ {
			r.tree.Insert(th, uint64(i), []byte("v"))
		}
		if err := r.tree.Sync(th); err != nil {
			t.Errorf("sync: %v", err)
		}
	})
	driveAll(t, r)
	// After sync the device holds a consistent tree.
	meta, err := core.ReadMeta(r.dev)
	if err != nil {
		t.Fatal(err)
	}
	if meta.NumKeys != 300 {
		t.Fatalf("meta numKeys = %d", meta.NumKeys)
	}
	buf := make([]byte, storage.PageSize)
	r.dev.ReadAt(uint64(meta.Root), buf)
	if _, err := storage.DecodeNode(meta.Root, buf); err != nil {
		t.Fatalf("root not durable: %v", err)
	}
}

func TestSyncTreeWeakMergesWrites(t *testing.T) {
	r := newRig(t, false, Config{Persistence: Weak, CachePages: 4096})
	r.spawnTracked("w", func(th *simos.Thread) {
		for i := 0; i < 200; i++ {
			r.tree.Insert(th, 1, []byte(fmt.Sprintf("v%d", i)))
		}
	})
	driveAll(t, r)
	if w := r.dev.Stats().CompletedWrites; w > 10 {
		t.Fatalf("weak mode issued %d device writes for 200 same-page updates", w)
	}
}

func TestSyncTreeSplitsUnderContention(t *testing.T) {
	r := newRig(t, false, Config{})
	const workers = 6
	rngs := make([]*sim.RNG, workers)
	for i := range rngs {
		rngs[i] = sim.NewRNG(uint64(100 + i))
	}
	inserted := make([]map[uint64]bool, workers)
	for w := 0; w < workers; w++ {
		w := w
		inserted[w] = map[uint64]bool{}
		r.spawnTracked(fmt.Sprintf("w%d", w), func(th *simos.Thread) {
			for i := 0; i < 120; i++ {
				k := rngs[w].Uint64n(2000)
				r.tree.Insert(th, k, []byte("v"))
				inserted[w][k] = true
			}
		})
	}
	driveAll(t, r)
	all := map[uint64]bool{}
	for _, m := range inserted {
		for k := range m {
			all[k] = true
		}
	}
	if r.tree.NumKeys() != uint64(len(all)) {
		t.Fatalf("numKeys = %d, want %d", r.tree.NumKeys(), len(all))
	}
	missing := 0
	r.spawnTracked("verify", func(th *simos.Thread) {
		for k := range all {
			if _, found, _ := r.tree.Search(th, k); !found {
				missing++
			}
		}
	})
	driveAll(t, r)
	if missing > 0 {
		t.Fatalf("%d keys missing", missing)
	}
}

func TestSyncTreeThroughputScalesThenLatencyGrows(t *testing.T) {
	// The defining property of the sync paradigm (Figures 7-8): one
	// thread is slow; more threads raise throughput; latency grows with
	// thread count.
	run := func(workers int) (opsPerSec float64, meanLat time.Duration) {
		r := newRig(t, false, Config{})
		var totalOps int
		var totalLat time.Duration
		for w := 0; w < workers; w++ {
			w := w
			r.spawnTracked(fmt.Sprintf("w%d", w), func(th *simos.Thread) {
				rng := sim.NewRNG(uint64(w))
				end := sim.Time(200 * time.Millisecond)
				for th.Now() < end {
					start := th.Now()
					r.tree.Search(th, rng.Uint64n(500))
					totalLat += time.Duration(th.Now() - start)
					totalOps++
				}
			})
		}
		// Preload a few keys first via one worker? Searches on a tiny
		// tree still do root I/O; fine for shape purposes.
		driveAll(t, r)
		return float64(totalOps) / 0.2, totalLat / time.Duration(totalOps)
	}
	ops1, lat1 := run(1)
	ops16, lat16 := run(16)
	if ops16 < 4*ops1 {
		t.Fatalf("16 threads %.0f ops/s not much above 1 thread %.0f", ops16, ops1)
	}
	if lat16 < lat1 {
		t.Fatalf("latency did not grow with threads: %v vs %v", lat16, lat1)
	}
}

func TestCASLatch(t *testing.T) {
	r := newRig(t, false, Config{})
	cl := NewCASLatch(r.os)
	inside, maxInside := 0, 0
	for w := 0; w < 4; w++ {
		r.spawnTracked("w", func(th *simos.Thread) {
			for i := 0; i < 20; i++ {
				cl.Lock(th, 42)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				th.Work(0, 5*time.Microsecond)
				inside--
				cl.Unlock(th, 42)
			}
		})
	}
	driveAll(t, r)
	if maxInside != 1 {
		t.Fatalf("CAS latch admitted %d holders", maxInside)
	}
	// TryLock semantics.
	r.spawnTracked("w2", func(th *simos.Thread) {
		if !cl.TryLock(th, 7) {
			t.Error("TryLock on free latch failed")
		}
		if cl.TryLock(th, 7) {
			t.Error("TryLock on held latch succeeded")
		}
		cl.Unlock(th, 7)
	})
	driveAll(t, r)
}

func TestBlockingLatchesFIFO(t *testing.T) {
	r := newRig(t, false, Config{})
	lt := NewLatches(r.os)
	var order []int
	r.spawnTracked("holder", func(th *simos.Thread) {
		lt.Acquire(th, 5, XLatch)
		th.Sleep(time.Millisecond)
		lt.Release(th, 5, XLatch)
	})
	for i := 0; i < 3; i++ {
		i := i
		r.spawnTracked("w", func(th *simos.Thread) {
			th.Sleep(time.Duration(i+1) * 10 * time.Microsecond) // stagger arrival
			lt.Acquire(th, 5, XLatch)
			order = append(order, i)
			lt.Release(th, 5, XLatch)
		})
	}
	driveAll(t, r)
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("wake order = %v", order)
	}
	if lt.Waits() != 3 {
		t.Fatalf("waits = %d", lt.Waits())
	}
	if lt.Active() != 0 {
		t.Fatal("latch state leaked")
	}
}
