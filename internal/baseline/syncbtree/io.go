// Package syncbtree implements the paper's two baseline execution schemes
// (§V-A): B+ trees with exactly the same on-device node structure and
// latch-coupling protocol as PA-Tree, but following the traditional
// synchronous execution paradigm — a working thread that issues an I/O is
// blocked until the I/O completes, so exploiting the NVMe's internal
// parallelism requires many threads.
//
// Two I/O disciplines are provided:
//
//   - Dedicated: each working thread owns a queue pair; after submitting
//     it repeatedly probes its own completion queue, sleeping 100µs
//     between probes (the paper's setting) to avoid burning CPU.
//   - Shared: a global I/O request queue served by one daemon thread that
//     owns the device interaction; working threads block on a semaphore
//     until the daemon signals their completion.
package syncbtree

import (
	"time"

	"github.com/patree/patree/internal/metrics"
	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/simos"
)

// IOCosts are the CPU constants charged for device interaction; they
// match the PA-Tree cost model so CPU comparisons are fair.
type IOCosts struct {
	Submit      time.Duration
	ProbeCall   time.Duration
	ProbePerCQE time.Duration
}

// DefaultIOCosts mirrors core.DefaultCosts.
func DefaultIOCosts() IOCosts {
	return IOCosts{
		Submit:      250 * time.Nanosecond,
		ProbeCall:   300 * time.Nanosecond,
		ProbePerCQE: 60 * time.Nanosecond,
	}
}

// IO is a blocking block-I/O service for simulated threads.
type IO interface {
	// Read fills buf from page id, blocking the thread until complete.
	Read(th *simos.Thread, id uint64, buf []byte) error
	// Write persists data to page id, blocking until complete.
	Write(th *simos.Thread, id uint64, data []byte) error
	// Flush commits the device write cache.
	Flush(th *simos.Thread) error
}

// Dedicated implements IO with one queue pair per thread and a
// 100µs probe sleep (the paper's dedicated approach).
type Dedicated struct {
	dev        nvme.Device
	sched      *simos.Sched
	costs      IOCosts
	probeSleep time.Duration
	qps        map[int]nvme.QueuePair // thread id -> queue pair
}

// NewDedicated creates the dedicated-discipline I/O service.
func NewDedicated(dev nvme.Device, sched *simos.Sched) *Dedicated {
	return &Dedicated{
		dev:        dev,
		sched:      sched,
		costs:      DefaultIOCosts(),
		probeSleep: 100 * time.Microsecond,
		qps:        make(map[int]nvme.QueuePair),
	}
}

func (d *Dedicated) qpFor(th *simos.Thread) nvme.QueuePair {
	qp := d.qps[th.ID()]
	if qp == nil {
		var err error
		qp, err = d.dev.AllocQueuePair(64)
		if err != nil {
			panic("syncbtree: queue pair allocation failed: " + err.Error())
		}
		d.qps[th.ID()] = qp
	}
	return qp
}

func (d *Dedicated) do(th *simos.Thread, cmd *nvme.Command) error {
	qp := d.qpFor(th)
	done := false
	var ioErr error
	cmd.Callback = func(c nvme.Completion) { done = true; ioErr = c.Err }
	th.Work(metrics.CatNVMe, d.costs.Submit)
	if err := qp.Submit(cmd); err != nil {
		return err
	}
	// Synchronous paradigm: block this thread until the I/O completes,
	// probing every probeSleep.
	for !done {
		th.Sleep(d.probeSleep)
		th.Work(metrics.CatNVMe, d.costs.ProbeCall)
		n := qp.Probe(0)
		th.Work(metrics.CatNVMe, time.Duration(n)*d.costs.ProbePerCQE)
	}
	return ioErr
}

// Read implements IO.
func (d *Dedicated) Read(th *simos.Thread, id uint64, buf []byte) error {
	return d.do(th, &nvme.Command{Op: nvme.OpRead, LBA: id, Blocks: 1, Buf: buf})
}

// Write implements IO.
func (d *Dedicated) Write(th *simos.Thread, id uint64, data []byte) error {
	return d.do(th, &nvme.Command{Op: nvme.OpWrite, LBA: id, Blocks: 1, Buf: data})
}

// Flush implements IO.
func (d *Dedicated) Flush(th *simos.Thread) error {
	return d.do(th, &nvme.Command{Op: nvme.OpFlush})
}

// sharedReq is one queued request in the shared discipline.
type sharedReq struct {
	cmd  *nvme.Command
	sem  *simos.Sem
	err  error
	done bool
}

// Shared implements IO with a global request queue and a daemon thread
// that owns all device interaction (the paper's shared approach).
// Synchronization between workers and the daemon uses semaphore
// wait/post, exactly the mechanism whose cost Figure 9 highlights.
type Shared struct {
	dev   nvme.Device
	sched *simos.Sched
	costs IOCosts

	qp      nvme.QueuePair
	mu      *simos.Mutex
	queue   []*sharedReq
	pending *simos.Sem // counts queued requests for the daemon
	stopped bool

	daemonInflight int
}

// NewShared creates the shared-discipline service and starts its daemon
// thread.
func NewShared(dev nvme.Device, sched *simos.Sched) *Shared {
	qp, err := dev.AllocQueuePair(2048)
	if err != nil {
		panic("syncbtree: daemon queue pair allocation failed: " + err.Error())
	}
	s := &Shared{
		dev:     dev,
		sched:   sched,
		costs:   DefaultIOCosts(),
		qp:      qp,
		mu:      sched.NewMutex(),
		pending: sched.NewSem(0),
	}
	sched.Spawn("io-daemon", s.daemon)
	return s
}

// Stop terminates the daemon once in-flight work drains.
func (s *Shared) Stop() {
	s.stopped = true
	s.pending.PostFromEvent() // wake the daemon so it can observe stop
}

// daemon drains the request queue, submits to the device, and probes for
// completions, posting each requester's semaphore.
func (s *Shared) daemon(th *simos.Thread) {
	for {
		// Wait until at least one request is queued (or stop).
		if len(s.queue) == 0 && s.daemonInflight == 0 {
			if s.stopped {
				return
			}
			s.pending.Wait(th)
			continue
		}
		// Submit everything queued.
		s.mu.Lock(th)
		batch := s.queue
		s.queue = nil
		s.mu.Unlock(th)
		for _, r := range batch {
			req := r
			req.cmd.Callback = func(c nvme.Completion) {
				req.err = c.Err
				req.done = true
				s.daemonInflight--
				req.sem.Post(nil) // daemon-side post cost charged below
			}
			th.Work(metrics.CatNVMe, s.costs.Submit)
			th.Work(metrics.CatSync, s.sched.Config().SyscallCost) // future post
			for s.qp.Submit(req.cmd) != nil {
				// Queue full: reap some completions, then retry.
				th.Work(metrics.CatNVMe, s.costs.ProbeCall)
				n := s.qp.Probe(0)
				th.Work(metrics.CatNVMe, time.Duration(n)*s.costs.ProbePerCQE)
				if n == 0 {
					th.Sleep(5 * time.Microsecond)
				}
			}
			s.daemonInflight++
		}
		// Probe for completions; keep the interval short — the daemon is
		// the only prober for every worker, so it polls aggressively
		// (this very behaviour is why the paper's Table I shows the
		// shared approach under-utilizing the device).
		th.Work(metrics.CatNVMe, s.costs.ProbeCall)
		n := s.qp.Probe(0)
		th.Work(metrics.CatNVMe, time.Duration(n)*s.costs.ProbePerCQE)
		if n == 0 && len(s.queue) == 0 {
			th.Sleep(5 * time.Microsecond)
		}
	}
}

func (s *Shared) do(th *simos.Thread, cmd *nvme.Command) error {
	req := &sharedReq{cmd: cmd, sem: s.sched.NewSem(0)}
	s.mu.Lock(th)
	s.queue = append(s.queue, req)
	s.mu.Unlock(th)
	s.pending.PostFromEvent()
	// Block until the daemon signals completion (semaphore wait).
	req.sem.Wait(th)
	return req.err
}

// Read implements IO.
func (s *Shared) Read(th *simos.Thread, id uint64, buf []byte) error {
	return s.do(th, &nvme.Command{Op: nvme.OpRead, LBA: id, Blocks: 1, Buf: buf})
}

// Write implements IO.
func (s *Shared) Write(th *simos.Thread, id uint64, data []byte) error {
	return s.do(th, &nvme.Command{Op: nvme.OpWrite, LBA: id, Blocks: 1, Buf: data})
}

// Flush implements IO.
func (s *Shared) Flush(th *simos.Thread) error {
	return s.do(th, &nvme.Command{Op: nvme.OpFlush})
}
