package syncbtree

import (
	"github.com/patree/patree/internal/metrics"
	"github.com/patree/patree/internal/simos"
	"github.com/patree/patree/internal/storage"
)

// Latches is a blocking latch table for simulated threads: the same
// shared/exclusive semantics and FIFO fairness as PA-Tree's operation
// latches, but implemented — as the paper's baselines are — with
// semaphore-style blocking: a thread that cannot take a latch parks and
// is woken by the releaser, paying syscall and context-switch costs.
type Latches struct {
	sched *simos.Sched
	nodes map[storage.PageID]*blockLatch
	waits uint64
}

type blockWaiter struct {
	mode   Mode
	parker *simos.Parker
}

type blockLatch struct {
	r, w    int
	pending []blockWaiter
}

// Mode aliases the latch modes.
type Mode int

// Latch modes.
const (
	SLatch Mode = iota
	XLatch
)

// NewLatches creates an empty blocking latch table.
func NewLatches(sched *simos.Sched) *Latches {
	return &Latches{sched: sched, nodes: make(map[storage.PageID]*blockLatch)}
}

func (l *blockLatch) admits(m Mode) bool {
	if m == XLatch {
		return l.r == 0 && l.w == 0
	}
	return l.w == 0
}

func (l *blockLatch) take(m Mode) {
	if m == XLatch {
		l.w++
	} else {
		l.r++
	}
}

// Acquire blocks th until the latch on id is held in mode m. Every call
// pays the semaphore syscall cost (CatSync), like sem_wait.
func (t *Latches) Acquire(th *simos.Thread, id storage.PageID, m Mode) {
	th.Work(metrics.CatSync, t.sched.Config().SyscallCost)
	nl := t.nodes[id]
	if nl == nil {
		nl = &blockLatch{}
		t.nodes[id] = nl
	}
	if len(nl.pending) == 0 && nl.admits(m) {
		nl.take(m)
		return
	}
	t.waits++
	p := t.sched.NewParker()
	nl.pending = append(nl.pending, blockWaiter{mode: m, parker: p})
	p.Park(th) // releaser takes the latch on our behalf before unparking
}

// Release drops a latch and wakes eligible waiters in FIFO order, paying
// the sem_post syscall cost per wake.
func (t *Latches) Release(th *simos.Thread, id storage.PageID, m Mode) {
	nl := t.nodes[id]
	if nl == nil {
		panic("syncbtree: release of unlatched node")
	}
	if m == XLatch {
		nl.w--
	} else {
		nl.r--
	}
	if nl.w < 0 || nl.r < 0 {
		panic("syncbtree: latch underflow")
	}
	for len(nl.pending) > 0 && nl.admits(nl.pending[0].mode) {
		wtr := nl.pending[0]
		nl.pending = nl.pending[1:]
		nl.take(wtr.mode)
		th.Work(metrics.CatSync, t.sched.Config().SyscallCost)
		wtr.parker.Unpark()
	}
	if nl.r == 0 && nl.w == 0 && len(nl.pending) == 0 {
		delete(t.nodes, id)
	}
}

// Waits returns how many acquisitions had to block.
func (t *Latches) Waits() uint64 { return t.waits }

// Active returns the number of nodes with latch state.
func (t *Latches) Active() int { return len(t.nodes) }

// CASLatch is a test-and-set spinlock used by the lock-free baselines
// (Blink-Tree, LCB-Tree): acquiring costs only a CAS (no syscall), but
// contention burns CPU spinning and yields between attempts.
type CASLatch struct {
	sched *simos.Sched
	held  map[storage.PageID]bool
}

// NewCASLatch creates a CAS-latch namespace.
func NewCASLatch(sched *simos.Sched) *CASLatch {
	return &CASLatch{sched: sched, held: make(map[storage.PageID]bool)}
}

// Lock spins until the latch on id is taken.
func (c *CASLatch) Lock(th *simos.Thread, id storage.PageID) {
	const casCost = 30 // nanoseconds per CAS attempt
	for {
		th.Work(metrics.CatSync, casCost)
		if !c.held[id] {
			c.held[id] = true
			return
		}
		// Contended: brief spin then yield the core.
		th.Work(metrics.CatSync, 200)
		th.Yield()
	}
}

// TryLock attempts a single CAS.
func (c *CASLatch) TryLock(th *simos.Thread, id storage.PageID) bool {
	th.Work(metrics.CatSync, 30)
	if c.held[id] {
		return false
	}
	c.held[id] = true
	return true
}

// Unlock releases the latch on id.
func (c *CASLatch) Unlock(th *simos.Thread, id storage.PageID) {
	th.Work(metrics.CatSync, 30)
	if !c.held[id] {
		panic("syncbtree: CAS unlock of free latch")
	}
	delete(c.held, id)
}
