package syncbtree

import (
	"github.com/patree/patree/internal/buffer"
	"github.com/patree/patree/internal/simos"
	"github.com/patree/patree/internal/storage"
)

// Cache is a shared page cache for the multi-threaded baselines. The
// underlying LRU is the same implementation PA-Tree uses, wrapped for use
// by many simulated threads: write-back of evicted dirty pages happens
// synchronously on the evicting thread (the baselines' sync paradigm),
// with an in-flight table so concurrent readers never fetch a stale page
// from the device mid-write-back.
//
// The simulation's strict single-step execution means cache operations
// that do not block are naturally atomic; only operations spanning a
// blocking I/O need the in-flight table.
type Cache struct {
	rw        *buffer.ReadWrite
	io        IO
	writeBack map[storage.PageID][]byte
}

// NewCache creates a cache of capacity pages over io (capacity 0
// disables caching).
func NewCache(capacity int, io IO) *Cache {
	return &Cache{rw: buffer.NewReadWrite(capacity), io: io, writeBack: make(map[storage.PageID][]byte)}
}

// Get returns the cached image of id.
func (c *Cache) Get(id storage.PageID) ([]byte, bool) {
	if data, ok := c.rw.Get(id); ok {
		return data, true
	}
	if data, ok := c.writeBack[id]; ok {
		return data, true
	}
	return nil, false
}

// FillOnRead caches a page read from the device, writing back any evicted
// dirty victim synchronously on th.
func (c *Cache) FillOnRead(th *simos.Thread, id storage.PageID, data []byte) error {
	victim, ev := c.rw.FillOnRead(id, data)
	if ev {
		return c.flushVictim(th, victim)
	}
	return nil
}

// Write absorbs a dirty page (weak persistence), writing back any evicted
// victim synchronously.
func (c *Cache) Write(th *simos.Thread, id storage.PageID, data []byte) error {
	victim, ev := c.rw.Write(id, data)
	if ev {
		return c.flushVictim(th, victim)
	}
	return nil
}

// PutClean caches a page known durable (strong mode, after write-through).
func (c *Cache) PutClean(th *simos.Thread, id storage.PageID, data []byte) error {
	return c.FillOnRead(th, id, data)
}

func (c *Cache) flushVictim(th *simos.Thread, victim buffer.Dirty) error {
	c.writeBack[victim.ID] = victim.Data
	err := c.io.Write(th, uint64(victim.ID), victim.Data)
	if cur, ok := c.writeBack[victim.ID]; ok && &cur[0] == &victim.Data[0] {
		delete(c.writeBack, victim.ID)
	}
	if err == nil {
		c.rw.MarkClean(victim.ID, victim.Epoch)
	}
	return err
}

// Sync flushes every dirty page and issues a device flush.
func (c *Cache) Sync(th *simos.Thread) error {
	for _, d := range c.rw.DirtyPages() {
		if err := c.io.Write(th, uint64(d.ID), d.Data); err != nil {
			return err
		}
		c.rw.MarkClean(d.ID, d.Epoch)
	}
	return c.io.Flush(th)
}

// DirtyCount exposes the number of dirty pages.
func (c *Cache) DirtyCount() int { return c.rw.DirtyCount() }

// Stats returns the underlying buffer counters.
func (c *Cache) Stats() buffer.Stats { return c.rw.Stats() }
