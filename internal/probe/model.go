package probe

import (
	"fmt"
	"strings"
)

// Model is the trained estimator (w0, r0) = T·β of equation (1): β is a
// 2n×2 matrix mapping the outstanding-submission feature vector to the
// expected number of write and read completions within the next slice.
type Model struct {
	beta [][]float64 // 2n rows, 2 columns (w0, r0)
	n    int         // slices per opcode class
}

// NewModel wraps a coefficient matrix. beta must be (2n)×2.
func NewModel(beta [][]float64) (*Model, error) {
	if len(beta) == 0 || len(beta)%2 != 0 {
		return nil, fmt.Errorf("probe: beta must have 2n rows, got %d", len(beta))
	}
	for i, row := range beta {
		if len(row) != 2 {
			return nil, fmt.Errorf("probe: beta row %d has %d columns, want 2", i, len(row))
		}
	}
	return &Model{beta: beta, n: len(beta) / 2}, nil
}

// Slices returns n, the per-class slice count the model was trained with.
func (m *Model) Slices() int { return m.n }

// Predict evaluates (w0, r0) = T·β. len(T) must be 2n. Negative
// predictions are clamped to zero (a count cannot be negative).
func (m *Model) Predict(T []float64) (w0, r0 float64) {
	if len(T) != 2*m.n {
		panic(fmt.Sprintf("probe: feature length %d, want %d", len(T), 2*m.n))
	}
	for i, v := range T {
		if v == 0 {
			continue
		}
		w0 += v * m.beta[i][0]
		r0 += v * m.beta[i][1]
	}
	if w0 < 0 {
		w0 = 0
	}
	if r0 < 0 {
		r0 = 0
	}
	return w0, r0
}

// Beta returns the coefficient matrix (not a copy; treat as read-only).
func (m *Model) Beta() [][]float64 { return m.beta }

// String renders the matrix compactly for cmd/patrain.
func (m *Model) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "probe model: n=%d slices per class\n", m.n)
	fmt.Fprintf(&b, "%-8s %12s %12s\n", "feature", "→w0", "→r0")
	for i, row := range m.beta {
		cls, idx := "w", i
		if i >= m.n {
			cls, idx = "r", i-m.n
		}
		fmt.Fprintf(&b, "%s[%02d]   %12.6f %12.6f\n", cls, idx, row[0], row[1])
	}
	return b.String()
}
