package probe

import (
	"testing"
	"time"

	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/sim"
)

func at(us int64) sim.Time { return sim.Time(us * 1000) }

func TestAccuracyMatchesFIFOPerClass(t *testing.T) {
	a := NewAccuracy()
	// Two reads and one write outstanding; completions arrive out of
	// class order but FIFO within each class.
	a.Expect(nvme.OpRead, at(0), at(100))
	a.Expect(nvme.OpWrite, at(1), at(50))
	a.Expect(nvme.OpRead, at(2), at(200))

	a.Observe(nvme.OpWrite, at(80)) // +30µs late
	a.Observe(nvme.OpRead, at(90))  // -10µs early (matches the 100µs pred)
	a.Observe(nvme.OpRead, at(200)) // exactly on time → early bucket

	if a.Matched() != 3 {
		t.Fatalf("matched = %d, want 3", a.Matched())
	}
	if a.Late() != 1 || a.Early() != 2 {
		t.Fatalf("late=%d early=%d, want 1/2", a.Late(), a.Early())
	}
	// Mean signed error: (+30 − 10 + 0)/3 µs.
	want := time.Duration((30000 - 10000) / 3)
	if got := a.Bias(); got != want {
		t.Fatalf("bias = %v, want %v", got, want)
	}
	if a.AbsErr().Count() != 3 {
		t.Fatalf("absErr count = %d", a.AbsErr().Count())
	}
	if max := a.AbsErr().Max(); max != 30*time.Microsecond {
		t.Fatalf("absErr max = %v, want 30µs", max)
	}
}

func TestAccuracyUnmatchedCompletionIgnored(t *testing.T) {
	a := NewAccuracy()
	a.Observe(nvme.OpRead, at(10)) // enabled mid-run: nothing outstanding
	if a.Matched() != 0 || a.AbsErr().Count() != 0 {
		t.Fatal("unmatched completion was recorded")
	}
}

func TestAccuracyBoundedQueueDrops(t *testing.T) {
	a := NewAccuracy()
	for i := 0; i < predQueueCap+10; i++ {
		a.Expect(nvme.OpRead, at(int64(i)), at(int64(i)+100))
	}
	if a.Dropped() != 10 {
		t.Fatalf("dropped = %d, want 10", a.Dropped())
	}
	// The retained predictions still pop FIFO.
	a.Observe(nvme.OpRead, at(100))
	if a.Matched() != 1 {
		t.Fatal("queue unusable after overflow")
	}
}

func TestAccuracyReset(t *testing.T) {
	a := NewAccuracy()
	a.Expect(nvme.OpWrite, at(0), at(10))
	a.Observe(nvme.OpWrite, at(30))
	a.Reset()
	if a.Matched() != 0 || a.Late() != 0 || a.Early() != 0 || a.Dropped() != 0 ||
		a.Bias() != 0 || a.AbsErr().Count() != 0 {
		t.Fatal("Reset left state behind")
	}
	a.Observe(nvme.OpWrite, at(40))
	if a.Matched() != 0 {
		t.Fatal("Reset did not clear the pending queue")
	}
}

func TestAccuracyEmptyBias(t *testing.T) {
	if NewAccuracy().Bias() != 0 {
		t.Fatal("empty tracker bias should be 0")
	}
}
