// Package probe implements the workload-aware probing model of §IV-A: a
// linear regression that maps the recent history of outstanding I/O
// submissions to the expected number of imminent completions, so the
// working thread probes the NVMe interface only when the model predicts a
// completion is (or is about to be) available.
//
// Following the paper, the recent t microseconds are divided into n time
// slices (t=1000, n=20 by default); w[i] and r[i] count the *outstanding*
// write and read I/Os submitted within the i-th slice; the feature vector
// is T = w|r and the estimate is (w0, r0) = T·β, with β trained offline by
// ordinary least squares on traces collected from a variety of workloads.
// The paper trained with pandas; we ship our own OLS solver (ols.go).
package probe

import (
	"time"

	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/sim"
)

// Default window parameters from the paper: "in practice, we set t = 1000
// and n = 20, because 99.9% of I/O requests complete within 1000
// microseconds and n = 20 provides enough resolution".
const (
	DefaultWindow = 1000 * time.Microsecond
	DefaultSlices = 20
)

// Tracker maintains the per-slice outstanding-submission counts that form
// the model's feature vector. It is single-threaded, like everything the
// working thread touches.
type Tracker struct {
	slice  time.Duration
	n      int
	counts map[int64]*[2]int // absolute slice index -> [writes, reads]
}

// NewTracker creates a tracker with window w split into n slices.
func NewTracker(w time.Duration, n int) *Tracker {
	if w <= 0 {
		w = DefaultWindow
	}
	if n <= 0 {
		n = DefaultSlices
	}
	return &Tracker{slice: w / time.Duration(n), n: n, counts: make(map[int64]*[2]int)}
}

// Slices returns n.
func (tr *Tracker) Slices() int { return tr.n }

// SliceDur returns the duration of one slice.
func (tr *Tracker) SliceDur() time.Duration { return tr.slice }

func (tr *Tracker) sliceIndex(at sim.Time) int64 {
	return int64(at) / int64(tr.slice)
}

func (tr *Tracker) bucket(idx int64) *[2]int {
	b := tr.counts[idx]
	if b == nil {
		b = &[2]int{}
		tr.counts[idx] = b
	}
	return b
}

// OnSubmit records an I/O submission at time at.
func (tr *Tracker) OnSubmit(op nvme.Opcode, at sim.Time) {
	b := tr.bucket(tr.sliceIndex(at))
	if op == nvme.OpWrite {
		b[0]++
	} else {
		b[1]++
	}
}

// OnComplete removes a completed I/O from the outstanding counts, given
// its original submission time.
func (tr *Tracker) OnComplete(op nvme.Opcode, submittedAt sim.Time) {
	idx := tr.sliceIndex(submittedAt)
	b := tr.counts[idx]
	if b == nil {
		return // fell off the window long ago
	}
	if op == nvme.OpWrite {
		if b[0] > 0 {
			b[0]--
		}
	} else {
		if b[1] > 0 {
			b[1]--
		}
	}
	if b[0] == 0 && b[1] == 0 {
		delete(tr.counts, idx)
	}
}

// Vector builds the feature vector T = w|r as of time now, optionally
// shifted shiftSlices into the future (pretending time advanced with no
// new submissions — used for the yield decision of Algorithm 2).
// Length is 2n: w slices first (most recent first), then r slices.
func (tr *Tracker) Vector(now sim.Time, shiftSlices int) []float64 {
	out := make([]float64, 2*tr.n)
	tr.FillVector(out, now, shiftSlices)
	return out
}

// FillVector is Vector without the allocation; out must have length 2n.
func (tr *Tracker) FillVector(out []float64, now sim.Time, shiftSlices int) {
	cur := tr.sliceIndex(now) + int64(shiftSlices)
	for i := 0; i < tr.n; i++ {
		idx := cur - int64(i)
		if b := tr.counts[idx]; b != nil {
			out[i] = float64(b[0])
			out[tr.n+i] = float64(b[1])
		} else {
			out[i] = 0
			out[tr.n+i] = 0
		}
	}
}

// Outstanding returns the total outstanding (writes, reads) inside the
// window as of now.
func (tr *Tracker) Outstanding(now sim.Time) (w, r int) {
	cur := tr.sliceIndex(now)
	for i := 0; i < tr.n; i++ {
		if b := tr.counts[cur-int64(i)]; b != nil {
			w += b[0]
			r += b[1]
		}
	}
	return w, r
}

// Prune drops state older than the window; call occasionally to bound
// memory on long runs.
func (tr *Tracker) Prune(now sim.Time) {
	cutoff := tr.sliceIndex(now) - int64(tr.n)
	for idx := range tr.counts {
		if idx < cutoff {
			delete(tr.counts, idx)
		}
	}
}
