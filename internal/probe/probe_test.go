package probe

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/sim"
)

func TestTrackerSubmitCompleteBalance(t *testing.T) {
	tr := NewTracker(DefaultWindow, DefaultSlices)
	now := sim.Time(10 * time.Microsecond)
	tr.OnSubmit(nvme.OpRead, now)
	tr.OnSubmit(nvme.OpWrite, now)
	tr.OnSubmit(nvme.OpRead, now+sim.Time(60*time.Microsecond))
	w, r := tr.Outstanding(now + sim.Time(100*time.Microsecond))
	if w != 1 || r != 2 {
		t.Fatalf("outstanding = (%d,%d)", w, r)
	}
	tr.OnComplete(nvme.OpRead, now)
	w, r = tr.Outstanding(now + sim.Time(100*time.Microsecond))
	if w != 1 || r != 1 {
		t.Fatalf("after complete = (%d,%d)", w, r)
	}
}

func TestTrackerVectorPlacement(t *testing.T) {
	tr := NewTracker(DefaultWindow, DefaultSlices) // 50us slices
	// now = 525us is inside slice 10; a write at 405us is in slice 8,
	// i.e. 2 positions back; a read now lands in position 0.
	now := sim.Time(525 * time.Microsecond)
	tr.OnSubmit(nvme.OpWrite, now-sim.Time(120*time.Microsecond))
	tr.OnSubmit(nvme.OpRead, now)
	v := tr.Vector(now, 0)
	n := tr.Slices()
	if v[2] != 1 {
		t.Fatalf("write slice: vector = %v", v[:5])
	}
	if v[n] != 1 {
		t.Fatalf("read slice: v[n]=%v", v[n])
	}
	var sum float64
	for _, x := range v {
		sum += x
	}
	if sum != 2 {
		t.Fatalf("vector total = %v", sum)
	}
}

func TestTrackerVectorShift(t *testing.T) {
	tr := NewTracker(DefaultWindow, DefaultSlices)
	now := sim.Time(500 * time.Microsecond)
	tr.OnSubmit(nvme.OpRead, now)
	v := tr.Vector(now, 3)
	n := tr.Slices()
	if v[n+3] != 1 {
		t.Fatalf("shifted read should appear 3 slices back; v=%v", v[n:n+5])
	}
}

func TestTrackerOldSubmissionsFallOff(t *testing.T) {
	tr := NewTracker(DefaultWindow, DefaultSlices)
	tr.OnSubmit(nvme.OpRead, 0)
	later := sim.Time(2 * time.Millisecond) // beyond the 1ms window
	v := tr.Vector(later, 0)
	for i, x := range v {
		if x != 0 {
			t.Fatalf("stale submission visible at slice %d", i)
		}
	}
	// Completion of an ancient command must not underflow anything.
	tr.OnComplete(nvme.OpRead, 0)
	tr.Prune(later)
}

func TestSolveLinearKnownSystem(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{2, 3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 2 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := SolveLinear(a, b); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestOLSRecoversPlantedCoefficients(t *testing.T) {
	// y = 2*x0 - 0.5*x1 (+ tiny noise); OLS should recover the plant.
	rng := sim.NewRNG(4)
	var xs, ys [][]float64
	for i := 0; i < 500; i++ {
		x0, x1 := rng.Float64()*10, rng.Float64()*10
		noise := (rng.Float64() - 0.5) * 1e-3
		xs = append(xs, []float64{x0, x1})
		ys = append(ys, []float64{2*x0 - 0.5*x1 + noise})
	}
	beta, err := OLS(xs, ys, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[0][0]-2) > 1e-2 || math.Abs(beta[1][0]+0.5) > 1e-2 {
		t.Fatalf("beta = %v", beta)
	}
}

func TestOLSShapeErrors(t *testing.T) {
	if _, err := OLS(nil, nil, 0); err == nil {
		t.Fatal("empty OLS accepted")
	}
	if _, err := OLS([][]float64{{1}}, [][]float64{{1}, {2}}, 0); err == nil {
		t.Fatal("mismatched OLS accepted")
	}
	if _, err := OLS([][]float64{{1, 2}, {1}}, [][]float64{{1}, {2}}, 0); err == nil {
		t.Fatal("ragged OLS accepted")
	}
}

// Property: SolveLinear solutions actually satisfy the system.
func TestSolveLinearProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		n := 2 + int(seed%5)
		a := make([][]float64, n)
		orig := make([][]float64, n)
		b := make([]float64, n)
		origB := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				a[i][j] = rng.Float64()*4 - 2
			}
			a[i][i] += float64(n) // diagonally dominant: non-singular
			orig[i] = append([]float64(nil), a[i]...)
			b[i] = rng.Float64()*10 - 5
			origB[i] = b[i]
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += orig[i][j] * x[j]
			}
			if math.Abs(s-origB[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestModelValidation(t *testing.T) {
	if _, err := NewModel(nil); err == nil {
		t.Fatal("empty beta accepted")
	}
	if _, err := NewModel([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged beta accepted")
	}
	m, err := NewModel([][]float64{{1, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	w0, r0 := m.Predict([]float64{3, 4})
	if w0 != 3 || r0 != 4 {
		t.Fatalf("predict = (%v,%v)", w0, r0)
	}
}

func TestModelClampsNegative(t *testing.T) {
	m, _ := NewModel([][]float64{{-1, -1}, {0, 0}})
	w0, r0 := m.Predict([]float64{5, 0})
	if w0 != 0 || r0 != 0 {
		t.Fatalf("negative prediction not clamped: (%v,%v)", w0, r0)
	}
}

// TestTrainedModelQuality trains on the device model and checks the
// estimator is actually informative: with a saturated queue it predicts
// completions; with an empty device it predicts ~none.
func TestTrainedModelQuality(t *testing.T) {
	m, err := Train(TrainConfig{Seed: 42, RunPerConfig: 20 * time.Millisecond,
		QueueDepths: []int{1, 8, 32, 64}, WritePercents: []int{0, 10, 50}})
	if err != nil {
		t.Fatal(err)
	}
	// Empty vector → no predicted completions.
	zero := make([]float64, 2*m.Slices())
	w0, r0 := m.Predict(zero)
	if w0 > 0.2 || r0 > 0.2 {
		t.Fatalf("empty device predicted (%v,%v)", w0, r0)
	}
	// 32 reads submitted ~75-150us ago (typical service age) → at least
	// one read completion predicted within the next 50us slice.
	v := make([]float64, 2*m.Slices())
	v[m.Slices()+2] = 16
	v[m.Slices()+3] = 16
	_, r0 = m.Predict(v)
	if r0 < 1 {
		t.Fatalf("mature reads predicted only %v completions", r0)
	}
}

// TestTrainedModelAccuracy replays a fresh workload and measures the
// model's slice-level prediction error against actual completions.
func TestTrainedModelAccuracy(t *testing.T) {
	m, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	// Fresh trace at a grid point the model never saw (qd=48, 20% writes).
	xs, ys := collect(TrainConfig{Seed: 999}.withDefaults(), 48, 20, 999)
	if len(xs) < 100 {
		t.Fatalf("only %d samples", len(xs))
	}
	var absErr, total float64
	for i := range xs {
		w0, r0 := m.Predict(xs[i])
		absErr += math.Abs(w0-ys[i][0]) + math.Abs(r0-ys[i][1])
		total += ys[i][0] + ys[i][1]
	}
	if total == 0 {
		t.Fatal("trace had no completions")
	}
	rel := absErr / total
	if rel > 0.5 {
		t.Fatalf("relative prediction error %.2f too high", rel)
	}
}

func TestDefaultModelCachedAndDeterministic(t *testing.T) {
	m1, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := Default()
	if m1 != m2 {
		t.Fatal("Default not cached")
	}
	if m1.Slices() != DefaultSlices {
		t.Fatalf("slices = %d", m1.Slices())
	}
	if len(m1.String()) == 0 {
		t.Fatal("empty String()")
	}
}
