package probe

import (
	"time"

	"github.com/patree/patree/internal/metrics"
	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/sim"
)

// Accuracy measures the probing model's prediction quality online, the
// introspection behind the paper's probe-frequency sensitivity analysis:
// at submission time the policy derives a model-implied completion time
// for the I/O, and when the completion is detected the signed error
// (detected − predicted) is folded into histograms. A model that tracks
// the device keeps the absolute error near the probe granularity; a
// mispredicting model shows up as a fat late tail (completions the probe
// gate left sitting in the queue) or a large early count (wasted probes).
//
// Matching is FIFO per opcode class: NVMe completions of same-class
// commands arrive approximately in submission order, and the error
// statistics only need aggregate fidelity, so the tracker avoids any
// per-command identity plumbing. Queues are bounded; submissions beyond
// the bound are dropped (counted) rather than grown.
//
// Like the rest of the probing machinery, Accuracy is single-threaded
// and purely observational: it never charges CPU or perturbs schedules.
type Accuracy struct {
	pend    [2]predQueue // [write, read]
	absErr  *metrics.Histogram
	sumErr  float64 // signed error sum, ns
	matched uint64
	late    uint64 // detected after the predicted time
	early   uint64 // detected at or before the predicted time
	dropped uint64
}

// predQueue is a bounded FIFO of predicted completion times.
type predQueue struct {
	buf  []int64
	head int
	n    int
}

const predQueueCap = 4096

func (q *predQueue) push(v int64) bool {
	if q.buf == nil {
		q.buf = make([]int64, predQueueCap)
	}
	if q.n == len(q.buf) {
		return false
	}
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
	return true
}

func (q *predQueue) pop() (int64, bool) {
	if q.n == 0 {
		return 0, false
	}
	v := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return v, true
}

// NewAccuracy returns an empty tracker.
func NewAccuracy() *Accuracy {
	return &Accuracy{absErr: metrics.NewHistogram()}
}

func classOf(op nvme.Opcode) int {
	if op == nvme.OpWrite {
		return 0
	}
	return 1
}

// Expect records that an I/O of class op submitted at `at` is predicted
// to complete at predictedAt.
func (a *Accuracy) Expect(op nvme.Opcode, at, predictedAt sim.Time) {
	_ = at
	if !a.pend[classOf(op)].push(int64(predictedAt)) {
		a.dropped++
	}
}

// Observe matches a detected completion against the oldest outstanding
// prediction of its class and records the error. Completions with no
// outstanding prediction (tracker enabled mid-run, or queue overflow)
// are ignored.
func (a *Accuracy) Observe(op nvme.Opcode, now sim.Time) {
	pred, ok := a.pend[classOf(op)].pop()
	if !ok {
		return
	}
	err := int64(now) - pred
	a.matched++
	a.sumErr += float64(err)
	if err > 0 {
		a.late++
	} else {
		a.early++
	}
	if err < 0 {
		err = -err
	}
	a.absErr.Record(time.Duration(err))
}

// Matched returns the number of completions matched to a prediction.
func (a *Accuracy) Matched() uint64 { return a.matched }

// Late returns completions detected after their predicted time.
func (a *Accuracy) Late() uint64 { return a.late }

// Early returns completions detected at or before their predicted time.
func (a *Accuracy) Early() uint64 { return a.early }

// Dropped returns submissions not tracked because the queue was full.
func (a *Accuracy) Dropped() uint64 { return a.dropped }

// AbsErr returns the |detected − predicted| histogram (read-only).
func (a *Accuracy) AbsErr() *metrics.Histogram { return a.absErr }

// Bias returns the mean signed error: positive means completions are
// detected later than the model predicts.
func (a *Accuracy) Bias() time.Duration {
	if a.matched == 0 {
		return 0
	}
	return time.Duration(a.sumErr / float64(a.matched))
}

// Reset clears all state.
func (a *Accuracy) Reset() {
	a.pend[0] = predQueue{}
	a.pend[1] = predQueue{}
	a.absErr.Reset()
	a.sumErr = 0
	a.matched, a.late, a.early, a.dropped = 0, 0, 0, 0
}
