package probe

import (
	"sync"
	"time"

	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/sim"
)

// TrainConfig controls training-trace generation.
type TrainConfig struct {
	// Window and Slices define the feature geometry (defaults: paper's
	// t=1000µs, n=20).
	Window time.Duration
	Slices int
	// QueueDepths and WritePercents enumerate the workload grid; the paper
	// "generates training data from a variety of workloads with different
	// read/write ratio and workload intensity".
	QueueDepths   []int
	WritePercents []int
	// RunPerConfig is the virtual time simulated per grid point.
	RunPerConfig time.Duration
	// Ridge is the damping added to the normal equations.
	Ridge float64
	// Seed drives the generator and the device model.
	Seed uint64
	// Device overrides the device model parameters (zero = calibrated
	// defaults). Training on the same model the experiments use mirrors
	// the paper training on the same SSD it evaluates on.
	Device nvme.SimConfig
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.Slices <= 0 {
		c.Slices = DefaultSlices
	}
	if len(c.QueueDepths) == 0 {
		c.QueueDepths = []int{1, 4, 8, 16, 32, 64, 128, 256}
	}
	if len(c.WritePercents) == 0 {
		c.WritePercents = []int{0, 10, 30, 50, 70, 100}
	}
	if c.RunPerConfig <= 0 {
		c.RunPerConfig = 40 * time.Millisecond
	}
	if c.Ridge == 0 {
		c.Ridge = 1e-6
	}
	return c
}

// Train runs the workload grid against the simulated device, collects
// (feature, next-slice completions) samples, and fits the model by OLS.
func Train(cfg TrainConfig) (*Model, error) {
	cfg = cfg.withDefaults()
	var xs, ys [][]float64
	rootRNG := sim.NewRNG(cfg.Seed ^ 0x7e57ab1e)
	for _, qd := range cfg.QueueDepths {
		for _, wp := range cfg.WritePercents {
			x, y := collect(cfg, qd, wp, rootRNG.Uint64())
			xs = append(xs, x...)
			ys = append(ys, y...)
		}
	}
	beta, err := OLS(xs, ys, cfg.Ridge)
	if err != nil {
		return nil, err
	}
	return NewModel(beta)
}

// CollectTrace gathers (feature, next-slice completions) samples for one
// (queue depth, write percent) grid point; exported for cmd/patrain's
// held-out evaluation.
func CollectTrace(cfg TrainConfig, qd, writePct int, seed uint64) (xs, ys [][]float64) {
	return collect(cfg.withDefaults(), qd, writePct, seed)
}

// collect gathers samples for one (queue depth, write percent) point.
func collect(cfg TrainConfig, qd, writePct int, seed uint64) (xs, ys [][]float64) {
	eng := sim.NewEngine()
	devCfg := cfg.Device
	devCfg.Seed = seed
	dev := nvme.NewSimDevice(eng, devCfg)
	qp, err := dev.AllocQueuePair(qd + 8)
	if err != nil {
		panic(err)
	}
	rng := sim.NewRNG(seed ^ 0xfeed)
	tr := NewTracker(cfg.Window, cfg.Slices)
	buf := make([]byte, dev.BlockSize())

	inflight := 0
	type meta struct {
		op nvme.Opcode
		at sim.Time
	}
	submit := func() {
		for inflight < qd {
			op := nvme.OpRead
			if rng.Intn(100) < writePct {
				op = nvme.OpWrite
			}
			m := meta{op: op, at: eng.Now()}
			cmd := &nvme.Command{Op: op, LBA: rng.Uint64n(4096), Blocks: 1, Buf: buf}
			cmd.Callback = func(nvme.Completion) {
				inflight--
				tr.OnComplete(m.op, m.at)
			}
			if qp.Submit(cmd) != nil {
				return
			}
			tr.OnSubmit(op, eng.Now())
			inflight++
		}
	}

	slice := tr.SliceDur()
	var lastW, lastR uint64
	var prevFeature []float64
	var tick func()
	tick = func() {
		// Close out the previous sample: completions posted during the
		// elapsed slice (from device-side counters, independent of what we
		// happened to reap).
		st := dev.Stats()
		if prevFeature != nil {
			ys = append(ys, []float64{float64(st.CompletedWrites - lastW), float64(st.CompletedReads - lastR)})
			xs = append(xs, prevFeature)
		}
		lastW, lastR = st.CompletedWrites, st.CompletedReads
		qp.Probe(0)
		submit()
		f := tr.Vector(eng.Now(), 0)
		prevFeature = f
		eng.After(slice, tick)
	}
	submit()
	eng.After(slice, tick)
	eng.RunUntil(sim.Time(cfg.RunPerConfig))
	return xs, ys
}

var (
	defaultOnce  sync.Once
	defaultModel *Model
	defaultErr   error
)

// Default returns the lazily-trained package default model (seed 1,
// calibrated device). Training is deterministic and takes well under a
// second of host time.
func Default() (*Model, error) {
	defaultOnce.Do(func() {
		defaultModel, defaultErr = Train(TrainConfig{Seed: 1})
	})
	return defaultModel, defaultErr
}
