package probe

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular reports an unsolvable normal-equation system.
var ErrSingular = errors.New("probe: singular system (add ridge damping or more varied training data)")

// SolveLinear solves A·x = b in place by Gaussian elimination with
// partial pivoting. A is row-major n×n; A and b are clobbered.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("probe: bad system shape %dx%d", n, len(b))
	}
	for col := 0; col < n; col++ {
		// Pivot: largest magnitude in this column.
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			a[r][col] = 0
			for c := col + 1; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}

// OLS fits Y ≈ X·β by ridge-damped least squares: β = (XᵀX + λI)⁻¹ XᵀY.
// X is m×p (m samples of p features), Y is m×q; the result is p×q.
// A small λ (e.g. 1e-6) keeps the system well conditioned when some
// feature slices are always zero in the training traces.
func OLS(x [][]float64, y [][]float64, lambda float64) ([][]float64, error) {
	m := len(x)
	if m == 0 || len(y) != m {
		return nil, fmt.Errorf("probe: OLS needs matching non-empty X (%d) and Y (%d)", m, len(y))
	}
	p := len(x[0])
	q := len(y[0])
	// Gram matrix XᵀX (+λI) and XᵀY.
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([][]float64, p)
	for i := range xty {
		xty[i] = make([]float64, q)
	}
	for s := 0; s < m; s++ {
		row := x[s]
		if len(row) != p || len(y[s]) != q {
			return nil, fmt.Errorf("probe: ragged sample %d", s)
		}
		for i := 0; i < p; i++ {
			if row[i] == 0 {
				continue
			}
			for j := i; j < p; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			for j := 0; j < q; j++ {
				xty[i][j] += row[i] * y[s][j]
			}
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
		xtx[i][i] += lambda
	}
	// Solve one column of β per output dimension.
	beta := make([][]float64, p)
	for i := range beta {
		beta[i] = make([]float64, q)
	}
	for j := 0; j < q; j++ {
		// Copy the system (SolveLinear clobbers).
		a := make([][]float64, p)
		bb := make([]float64, p)
		for i := 0; i < p; i++ {
			a[i] = append([]float64(nil), xtx[i]...)
			bb[i] = xty[i][j]
		}
		col, err := SolveLinear(a, bb)
		if err != nil {
			return nil, err
		}
		for i := 0; i < p; i++ {
			beta[i][j] = col[i]
		}
	}
	return beta, nil
}
