package workload

import (
	"encoding/binary"

	"github.com/patree/patree/internal/core"
	"github.com/patree/patree/internal/sim"
	"github.com/patree/patree/internal/zorder"
)

// TDriveConfig parameterizes the synthetic taxi-trajectory workload
// standing in for the proprietary T-Drive dataset: taxis random-walk a
// city grid (with a hot centre, like Beijing's), each position report is
// inserted under a key built from the z-order code of its cell, and
// queries ask for all records within a z-code range. The paper reports
// the workload is extremely update-heavy: 70% updates.
type TDriveConfig struct {
	// Taxis is the fleet size (paper: >10,000).
	Taxis int
	// GridBits is the per-axis resolution (2^GridBits × 2^GridBits cells).
	GridBits uint
	// PreloadRecords is the number of initial position records.
	PreloadRecords int
	// UpdatePercent is the share of inserts (default 70, per the paper).
	UpdatePercent int
	// RangeCells is the query window edge length in cells.
	RangeCells uint32
	// Seed drives the walk.
	Seed uint64
}

func (c TDriveConfig) withDefaults() TDriveConfig {
	if c.Taxis <= 0 {
		c.Taxis = 10000
	}
	if c.GridBits == 0 {
		c.GridBits = 12
	}
	if c.PreloadRecords <= 0 {
		c.PreloadRecords = 1 << 20
	}
	if c.UpdatePercent <= 0 {
		c.UpdatePercent = 70
	}
	if c.RangeCells == 0 {
		c.RangeCells = 4
	}
	return c
}

// TDrive generates the taxi workload.
type TDrive struct {
	cfg  TDriveConfig
	rng  *sim.RNG
	x, y []uint32 // taxi positions
	seq  uint64
	max  uint32
}

// NewTDrive builds the generator; taxis start clustered around the city
// centre with a normal spread (creating the spatial skew real GPS traces
// have).
func NewTDrive(cfg TDriveConfig) *TDrive {
	cfg = cfg.withDefaults()
	t := &TDrive{cfg: cfg, rng: sim.NewRNG(cfg.Seed ^ 0x7d51fe)}
	t.max = uint32(1)<<cfg.GridBits - 1
	centre := float64(t.max) / 2
	spread := float64(t.max) / 8
	for i := 0; i < cfg.Taxis; i++ {
		t.x = append(t.x, t.clamp(t.rng.Norm(centre, spread)))
		t.y = append(t.y, t.clamp(t.rng.Norm(centre, spread)))
	}
	return t
}

func (t *TDrive) clamp(v float64) uint32 {
	if v < 0 {
		return 0
	}
	if v > float64(t.max) {
		return t.max
	}
	return uint32(v)
}

// Name implements Generator.
func (t *TDrive) Name() string { return "t-drive" }

// keyFor builds the index key: z-code in the high bits, a sequence number
// in the low 16 bits so multiple reports per cell stay unique (the paper
// stores taxi id + timestamp attributes; the value carries them here).
func (t *TDrive) keyFor(x, y uint32) uint64 {
	t.seq++
	return zorder.Encode(x, y)<<16 | (t.seq & 0xFFFF)
}

// record encodes (taxi, timestamp-ish seq) as the stored value.
func record(taxi int, seq uint64) []byte {
	v := make([]byte, 12)
	binary.LittleEndian.PutUint32(v[0:4], uint32(taxi))
	binary.LittleEndian.PutUint64(v[4:12], seq)
	return v
}

// step moves a taxi one random-walk step.
func (t *TDrive) step(i int) {
	dx := int64(t.rng.Uint64n(3)) - 1
	dy := int64(t.rng.Uint64n(3)) - 1
	t.x[i] = t.clamp(float64(int64(t.x[i]) + dx))
	t.y[i] = t.clamp(float64(int64(t.y[i]) + dy))
}

// Preload implements Generator.
func (t *TDrive) Preload() []core.KV {
	pairs := make([]core.KV, 0, t.cfg.PreloadRecords)
	for r := 0; r < t.cfg.PreloadRecords; r++ {
		i := t.rng.Intn(t.cfg.Taxis)
		t.step(i)
		pairs = append(pairs, core.KV{Key: t.keyFor(t.x[i], t.y[i]), Value: record(i, t.seq)})
	}
	sortKVs(pairs)
	return dedupKVs(pairs)
}

// Next implements Generator: 70% position-report inserts, 30% z-code
// range queries around a (skewed) random taxi.
func (t *TDrive) Next() Op {
	i := t.rng.Intn(t.cfg.Taxis)
	if int(t.rng.Uint64n(100)) < t.cfg.UpdatePercent {
		t.step(i)
		return Op{Kind: OpInsert, Key: t.keyFor(t.x[i], t.y[i]), Value: record(i, t.seq)}
	}
	// Query the window around taxi i's position.
	w := t.cfg.RangeCells
	x0, y0 := t.x[i], t.y[i]
	x1, y1 := x0+w, y0+w
	if x1 > t.max {
		x1 = t.max
	}
	if y1 > t.max {
		y1 = t.max
	}
	lo, hi := zorder.RangeOf(x0, y0, x1, y1)
	return Op{Kind: OpRange, Key: lo << 16, EndKey: hi<<16 | 0xFFFF, Limit: 256}
}
