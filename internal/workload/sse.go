package workload

import (
	"encoding/binary"

	"github.com/patree/patree/internal/core"
	"github.com/patree/patree/internal/sim"
)

// SSEConfig parameterizes the synthetic stock-order workload standing in
// for the proprietary Shanghai Stock Exchange traces: orders on
// Zipf-popular stocks at mean-reverting prices, stored under composite
// (stock, price, seq) keys so a new order can be matched against
// outstanding orders with a range lookup. Records average 108 bytes and
// 28% of operations are updates, per the paper.
type SSEConfig struct {
	// Stocks is the number of listed instruments.
	Stocks int
	// PreloadOrders is the initial book size.
	PreloadOrders int
	// UpdatePercent is the share of order insertions (default 28).
	UpdatePercent int
	// RecordBytes is the order record size (default 108).
	RecordBytes int
	// Theta is the stock-popularity skew.
	Theta float64
	// Seed drives the generator.
	Seed uint64
}

func (c SSEConfig) withDefaults() SSEConfig {
	if c.Stocks <= 0 {
		c.Stocks = 2000
	}
	if c.PreloadOrders <= 0 {
		c.PreloadOrders = 1 << 20
	}
	if c.UpdatePercent <= 0 {
		c.UpdatePercent = 28
	}
	if c.RecordBytes <= 0 {
		c.RecordBytes = 108
	}
	if c.Theta == 0 {
		c.Theta = 0.6
	}
	return c
}

// SSE generates the order-book workload.
type SSE struct {
	cfg    SSEConfig
	rng    *sim.RNG
	zipf   *Zipf
	prices []float64 // per-stock mid price (ticks)
	seq    uint64
}

// NewSSE builds the generator.
func NewSSE(cfg SSEConfig) *SSE {
	cfg = cfg.withDefaults()
	rng := sim.NewRNG(cfg.Seed ^ 0x55e)
	s := &SSE{
		cfg:  cfg,
		rng:  rng,
		zipf: NewZipf(rng.Split(), uint64(cfg.Stocks), cfg.Theta),
	}
	for i := 0; i < cfg.Stocks; i++ {
		s.prices = append(s.prices, 1000+rng.Float64()*9000)
	}
	return s
}

// Name implements Generator.
func (s *SSE) Name() string { return "sse" }

// Key layout: stock id (high 12 bits) | price in ticks (20 bits) | seq
// (low 32 bits). Orders of one stock cluster; within a stock they sort by
// price — exactly the structure order matching scans.
func sseKey(stock int, price uint32, seq uint64) uint64 {
	return uint64(stock&0xFFF)<<52 | uint64(price&0xFFFFF)<<32 | (seq & 0xFFFFFFFF)
}

// tick evolves a stock price (mean-reverting noise).
func (s *SSE) tick(stock int) uint32 {
	p := s.prices[stock]
	p += s.rng.Norm(0, 5) - (p-5000)*0.001
	if p < 1 {
		p = 1
	}
	if p > (1<<20)-1 {
		p = (1 << 20) - 1
	}
	s.prices[stock] = p
	return uint32(p)
}

// order builds a ~108-byte order record.
func (s *SSE) order(stock int, price uint32) []byte {
	v := make([]byte, s.cfg.RecordBytes)
	binary.LittleEndian.PutUint32(v[0:4], uint32(stock))
	binary.LittleEndian.PutUint32(v[4:8], price)
	binary.LittleEndian.PutUint64(v[8:16], s.seq)
	s.rng.FillBytes(v[16:]) // user id, volume, flags, padding
	return v
}

// Preload implements Generator.
func (s *SSE) Preload() []core.KV {
	pairs := make([]core.KV, 0, s.cfg.PreloadOrders)
	for i := 0; i < s.cfg.PreloadOrders; i++ {
		stock := int(s.zipf.Next())
		price := s.tick(stock)
		s.seq++
		pairs = append(pairs, core.KV{Key: sseKey(stock, price, s.seq), Value: s.order(stock, price)})
	}
	sortKVs(pairs)
	return dedupKVs(pairs)
}

// Next implements Generator: 28% new-order inserts; the rest are matching
// lookups — range scans over the price band of a stock.
func (s *SSE) Next() Op {
	stock := int(s.zipf.Next())
	price := s.tick(stock)
	if int(s.rng.Uint64n(100)) < s.cfg.UpdatePercent {
		s.seq++
		return Op{Kind: OpInsert, Key: sseKey(stock, price, s.seq), Value: s.order(stock, price)}
	}
	// Match window: orders of this stock within ±16 ticks.
	loPrice := uint32(0)
	if price > 16 {
		loPrice = price - 16
	}
	hiPrice := price + 16
	if hiPrice > (1<<20)-1 {
		hiPrice = (1 << 20) - 1
	}
	return Op{
		Kind:   OpRange,
		Key:    sseKey(stock, loPrice, 0),
		EndKey: sseKey(stock, hiPrice, 0xFFFFFFFF),
		Limit:  64,
	}
}
