// Package workload generates the paper's three evaluation workloads:
//
//   - YCSB-like synthetic mixes with Zipfian key popularity (§V: default
//     10% updates / 90% reads, update-heavy 50/50, read-only; skewness
//     α = 0.3 unless varied; 8-byte keys and payloads);
//   - a synthetic T-Drive: taxis random-walking a city grid, positions
//     z-order coded into keys, 70% updates, z-code range queries;
//   - a synthetic SSE order book: Zipf-popular stocks, mean-reverting
//     prices, composite (stock, price, seq) keys, ~108-byte records,
//     28% updates.
//
// The real T-Drive and SSE datasets are proprietary; DESIGN.md §1
// documents why these synthetic equivalents preserve the index-relevant
// properties (key distribution, operation mix, record sizes).
package workload

import (
	"math"

	"github.com/patree/patree/internal/core"
	"github.com/patree/patree/internal/sim"
)

// OpKind is the operation requested by a workload.
type OpKind int

// Operation kinds.
const (
	OpSearch OpKind = iota
	OpInsert
	OpUpdate
	OpDelete
	OpRange
)

// Op is one generated request.
type Op struct {
	Kind   OpKind
	Key    uint64
	EndKey uint64
	Limit  int
	Value  []byte
}

// Generator produces an operation stream plus the initial dataset.
type Generator interface {
	// Name identifies the workload in experiment output.
	Name() string
	// Preload returns the sorted, unique initial pairs to bulk-load.
	Preload() []core.KV
	// Next returns the next operation.
	Next() Op
}

// Zipf samples ranks in [0, n) with P(i) ∝ 1/(i+1)^theta, using the
// Gray et al. method YCSB popularized. theta = 0 degenerates to uniform.
type Zipf struct {
	rng     *sim.RNG
	n       uint64
	theta   float64
	alpha   float64
	zetan   float64
	eta     float64
	zeta2   float64
	powHalf float64 // cached 0.5^theta: Next is called per operation
}

// NewZipf builds a sampler over [0, n) with skew theta (the paper's α).
func NewZipf(rng *sim.RNG, n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("workload: zipf over empty domain")
	}
	z := &Zipf{rng: rng, n: n, theta: theta}
	if theta <= 0 {
		return z
	}
	if theta >= 1 {
		// The Gray formulas need theta != 1; nudge.
		z.theta = 0.9999
	}
	z.zetan = zetaStatic(n, z.theta)
	z.zeta2 = zetaStatic(2, z.theta)
	z.alpha = 1 / (1 - z.theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-z.theta)) / (1 - z.zeta2/z.zetan)
	z.powHalf = math.Pow(0.5, z.theta)
	return z
}

// Clone returns a sampler drawing from rng but sharing z's precomputed
// constants. zetaStatic is O(n); a load generator spinning up thousands
// of workers over the same (n, theta) builds one Zipf and clones it.
func (z *Zipf) Clone(rng *sim.RNG) *Zipf {
	c := *z
	c.rng = rng
	return &c
}

func zetaStatic(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns a rank; rank 0 is the most popular.
func (z *Zipf) Next() uint64 {
	if z.theta <= 0 {
		return z.rng.Uint64n(z.n)
	}
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.powHalf {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// scramble spreads ranks across the key domain so popular keys are not
// physically adjacent (YCSB's scrambled zipfian), via a 64-bit mix.
func scramble(rank uint64) uint64 {
	z := rank + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// YCSBConfig parameterizes the synthetic workload.
type YCSBConfig struct {
	// Keys is the number of distinct keys (preloaded).
	Keys uint64
	// UpdatePercent is the share of update operations (0, 10 or 50 in the
	// paper).
	UpdatePercent int
	// Theta is the Zipfian skewness α (default 0.3).
	Theta float64
	// ValueSize is the payload size (default 8 bytes).
	ValueSize int
	// RangePercent is the share of short range scans (YCSB-E style);
	// the default 0 keeps the paper's point-only mixes.
	RangePercent int
	// RangeLimit is how many pairs each scan asks for (default 64 when
	// RangePercent > 0).
	RangeLimit int
	// Seed drives the generator.
	Seed uint64
}

// YCSB is the synthetic workload generator.
type YCSB struct {
	cfg  YCSBConfig
	rng  *sim.RNG
	zipf *Zipf
	val  []byte
	name string
}

// NewYCSB builds a generator. Keys are the scrambled ranks 0..Keys-1, so
// the preload and the op stream address the same domain.
func NewYCSB(cfg YCSBConfig) *YCSB {
	if cfg.Keys == 0 {
		cfg.Keys = 1 << 20
	}
	if cfg.Theta == 0 {
		cfg.Theta = 0.3
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 8
	}
	if cfg.RangePercent > 0 && cfg.RangeLimit <= 0 {
		cfg.RangeLimit = 64
	}
	rng := sim.NewRNG(cfg.Seed ^ 0x9c5b)
	name := "ycsb-default"
	switch {
	case cfg.UpdatePercent == 0:
		name = "ycsb-read-only"
	case cfg.UpdatePercent >= 50:
		name = "ycsb-update-heavy"
	}
	return &YCSB{
		cfg:  cfg,
		rng:  rng,
		zipf: NewZipf(rng.Split(), cfg.Keys, cfg.Theta),
		val:  make([]byte, cfg.ValueSize),
		name: name,
	}
}

// Name implements Generator.
func (y *YCSB) Name() string { return y.name }

// KeyOf maps a rank to its key.
func (y *YCSB) KeyOf(rank uint64) uint64 { return scramble(rank) }

// Preload implements Generator.
func (y *YCSB) Preload() []core.KV {
	pairs := make([]core.KV, 0, y.cfg.Keys)
	for r := uint64(0); r < y.cfg.Keys; r++ {
		pairs = append(pairs, core.KV{Key: scramble(r), Value: make([]byte, y.cfg.ValueSize)})
	}
	sortKVs(pairs)
	return dedupKVs(pairs)
}

// Next implements Generator.
func (y *YCSB) Next() Op {
	key := scramble(y.zipf.Next())
	r := int(y.rng.Uint64n(100))
	if r < y.cfg.UpdatePercent {
		v := make([]byte, y.cfg.ValueSize)
		y.rng.FillBytes(v)
		return Op{Kind: OpUpdate, Key: key, Value: v}
	}
	if r < y.cfg.UpdatePercent+y.cfg.RangePercent {
		// Scans start at a popular key and take the next RangeLimit pairs
		// in key order, whatever they are (the scrambled domain makes the
		// span a random slice of the tree).
		return Op{Kind: OpRange, Key: key, EndKey: ^uint64(0), Limit: y.cfg.RangeLimit}
	}
	return Op{Kind: OpSearch, Key: key}
}

func sortKVs(pairs []core.KV) {
	// Simple in-place sort; the preload path is setup-only.
	quickSortKV(pairs)
}

func quickSortKV(p []core.KV) {
	if len(p) < 2 {
		return
	}
	if len(p) < 16 {
		for i := 1; i < len(p); i++ {
			for j := i; j > 0 && p[j].Key < p[j-1].Key; j-- {
				p[j], p[j-1] = p[j-1], p[j]
			}
		}
		return
	}
	pivot := p[len(p)/2].Key
	lo, hi := 0, len(p)-1
	for lo <= hi {
		for p[lo].Key < pivot {
			lo++
		}
		for p[hi].Key > pivot {
			hi--
		}
		if lo <= hi {
			p[lo], p[hi] = p[hi], p[lo]
			lo++
			hi--
		}
	}
	quickSortKV(p[:hi+1])
	quickSortKV(p[lo:])
}

func dedupKVs(pairs []core.KV) []core.KV {
	out := pairs[:0]
	for i, kv := range pairs {
		if i > 0 && kv.Key == out[len(out)-1].Key {
			continue
		}
		out = append(out, kv)
	}
	return out
}
