package workload

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/patree/patree/internal/core"
	"github.com/patree/patree/internal/sim"
	"github.com/patree/patree/internal/zorder"
)

func TestZipfSkewOrdering(t *testing.T) {
	const n = 1000
	const draws = 200000
	countTop := func(theta float64) int {
		z := NewZipf(sim.NewRNG(1), n, theta)
		top := 0
		for i := 0; i < draws; i++ {
			if z.Next() < 10 {
				top++
			}
		}
		return top
	}
	uniform := countTop(0)
	mild := countTop(0.3)
	heavy := countTop(0.9)
	if !(uniform < mild && mild < heavy) {
		t.Fatalf("top-10 shares not increasing with skew: %d, %d, %d", uniform, mild, heavy)
	}
	// Uniform should put ~1% in the top 10.
	if f := float64(uniform) / draws; math.Abs(f-0.01) > 0.005 {
		t.Fatalf("uniform top-10 share = %v", f)
	}
}

func TestZipfRanksInRange(t *testing.T) {
	f := func(seed uint64) bool {
		z := NewZipf(sim.NewRNG(seed), 500, 0.99)
		for i := 0; i < 200; i++ {
			if z.Next() >= 500 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestYCSBMixAndDomain(t *testing.T) {
	y := NewYCSB(YCSBConfig{Keys: 10000, UpdatePercent: 10, Seed: 3})
	pre := y.Preload()
	if len(pre) == 0 || len(pre) > 10000 {
		t.Fatalf("preload size %d", len(pre))
	}
	if !sort.SliceIsSorted(pre, func(i, j int) bool { return pre[i].Key < pre[j].Key }) {
		t.Fatal("preload unsorted")
	}
	keys := map[uint64]bool{}
	for _, kv := range pre {
		if keys[kv.Key] {
			t.Fatal("duplicate preload key")
		}
		keys[kv.Key] = true
	}
	updates, searches := 0, 0
	for i := 0; i < 20000; i++ {
		op := y.Next()
		switch op.Kind {
		case OpUpdate:
			updates++
			if len(op.Value) != 8 {
				t.Fatalf("value size %d", len(op.Value))
			}
		case OpSearch:
			searches++
		default:
			t.Fatalf("unexpected kind %v", op.Kind)
		}
		if !keys[op.Key] {
			t.Fatal("op key outside preloaded domain")
		}
	}
	frac := float64(updates) / float64(updates+searches)
	if frac < 0.08 || frac > 0.12 {
		t.Fatalf("update fraction = %v, want ~0.10", frac)
	}
}

func TestYCSBNames(t *testing.T) {
	if NewYCSB(YCSBConfig{UpdatePercent: 0, Keys: 10}).Name() != "ycsb-read-only" {
		t.Fatal("read-only name")
	}
	if NewYCSB(YCSBConfig{UpdatePercent: 10, Keys: 10}).Name() != "ycsb-default" {
		t.Fatal("default name")
	}
	if NewYCSB(YCSBConfig{UpdatePercent: 50, Keys: 10}).Name() != "ycsb-update-heavy" {
		t.Fatal("update-heavy name")
	}
}

func TestZOrderRoundTripProperty(t *testing.T) {
	f := func(x, y uint32) bool {
		gx, gy := zorder.Decode(zorder.Encode(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZOrderLocality(t *testing.T) {
	// Adjacent cells in a small square must fall within the z-range of
	// that square.
	lo, hi := zorder.RangeOf(100, 200, 103, 203)
	for x := uint32(100); x <= 103; x++ {
		for y := uint32(200); y <= 203; y++ {
			z := zorder.Encode(x, y)
			if z < lo || z > hi {
				t.Fatalf("cell (%d,%d) outside range", x, y)
			}
			if !zorder.InRect(z, 100, 200, 103, 203) {
				t.Fatal("InRect false for inside cell")
			}
		}
	}
	if zorder.InRect(zorder.Encode(99, 200), 100, 200, 103, 203) {
		t.Fatal("InRect true for outside cell")
	}
}

func TestCellOf(t *testing.T) {
	if zorder.CellOf(0, 0, 100, 10) != 0 {
		t.Fatal("min not cell 0")
	}
	if got := zorder.CellOf(99.999, 0, 100, 10); got != 1023 {
		t.Fatalf("max cell = %d", got)
	}
	if got := zorder.CellOf(50, 0, 100, 10); got != 512 {
		t.Fatalf("mid cell = %d", got)
	}
	if zorder.CellOf(-5, 0, 100, 10) != 0 || zorder.CellOf(200, 0, 100, 10) != 1023 {
		t.Fatal("clamping failed")
	}
}

func TestTDriveMixAndKeys(t *testing.T) {
	g := NewTDrive(TDriveConfig{Taxis: 100, PreloadRecords: 5000, Seed: 4})
	pre := g.Preload()
	if len(pre) < 4000 {
		t.Fatalf("preload %d", len(pre))
	}
	if !sort.SliceIsSorted(pre, func(i, j int) bool { return pre[i].Key < pre[j].Key }) {
		t.Fatal("preload unsorted")
	}
	inserts, ranges := 0, 0
	for i := 0; i < 10000; i++ {
		op := g.Next()
		switch op.Kind {
		case OpInsert:
			inserts++
			if len(op.Value) != 12 {
				t.Fatalf("record size %d", len(op.Value))
			}
		case OpRange:
			ranges++
			if op.EndKey <= op.Key {
				t.Fatal("empty range")
			}
		default:
			t.Fatalf("kind %v", op.Kind)
		}
	}
	frac := float64(inserts) / 10000
	if frac < 0.67 || frac > 0.73 {
		t.Fatalf("update fraction = %v, want ~0.70", frac)
	}
}

func TestSSEMixAndRecordSize(t *testing.T) {
	g := NewSSE(SSEConfig{Stocks: 50, PreloadOrders: 3000, Seed: 5})
	pre := g.Preload()
	if len(pre) < 2900 {
		t.Fatalf("preload %d", len(pre))
	}
	for _, kv := range pre[:10] {
		if len(kv.Value) != 108 {
			t.Fatalf("record size %d, want 108", len(kv.Value))
		}
	}
	inserts, ranges := 0, 0
	for i := 0; i < 10000; i++ {
		op := g.Next()
		switch op.Kind {
		case OpInsert:
			inserts++
		case OpRange:
			ranges++
			// A match scan stays within one stock (high 12 bits equal).
			if op.Key>>52 != op.EndKey>>52 {
				t.Fatal("range crosses stocks")
			}
		}
	}
	frac := float64(inserts) / 10000
	if frac < 0.25 || frac > 0.31 {
		t.Fatalf("update fraction = %v, want ~0.28", frac)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := NewTDrive(TDriveConfig{Taxis: 10, PreloadRecords: 100, Seed: 9})
	b := NewTDrive(TDriveConfig{Taxis: 10, PreloadRecords: 100, Seed: 9})
	a.Preload()
	b.Preload()
	for i := 0; i < 100; i++ {
		oa, ob := a.Next(), b.Next()
		if oa.Kind != ob.Kind || oa.Key != ob.Key {
			t.Fatal("t-drive nondeterministic")
		}
	}
}

func TestSortAndDedupKVs(t *testing.T) {
	check := func(keys []uint64) {
		t.Helper()
		kvs := make([]core.KV, len(keys))
		for i, k := range keys {
			kvs[i] = core.KV{Key: k}
		}
		sortKVs(kvs)
		out := dedupKVs(kvs)
		if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i].Key < out[j].Key }) {
			t.Fatalf("not sorted: %v", out)
		}
		for i := 1; i < len(out); i++ {
			if out[i].Key == out[i-1].Key {
				t.Fatal("dup survived")
			}
		}
	}
	for _, pattern := range [][]uint64{
		{5, 4, 3, 2, 1}, {1, 1, 2, 2, 3}, {}, {42},
		{9, 1, 8, 2, 7, 3, 6, 4, 5, 5, 5},
	} {
		check(pattern)
	}
	f := func(keys []uint64) bool {
		kvs := make([]core.KV, len(keys))
		for i, k := range keys {
			kvs[i] = core.KV{Key: k}
		}
		sortKVs(kvs)
		out := dedupKVs(kvs)
		return sort.SliceIsSorted(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
