package server_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	patree "github.com/patree/patree"
	"github.com/patree/patree/client"
	"github.com/patree/patree/internal/fault"
	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/proto"
	"github.com/patree/patree/internal/server"
	"github.com/patree/patree/internal/sim"
)

// startServer spins up a DB + server on loopback and returns the
// address plus a shutdown func.
func startServer(t *testing.T, dbOpts patree.Options, srvOpts server.Options) (string, *server.Server, func()) {
	t.Helper()
	db, err := patree.Open(dbOpts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	srv := server.New(db, srvOpts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		db.Close()
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	return ln.Addr().String(), srv, func() {
		srv.Close()
		db.Close()
	}
}

// TestWireOracle drives the full wire path — client, protocol, server,
// sharded DB — with a deterministic mixed workload and checks every
// result against a flat-map oracle.
func TestWireOracle(t *testing.T) {
	addr, _, stop := startServer(t, patree.Options{Shards: 4}, server.Options{})
	defer stop()
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	oracle := map[uint64][]byte{}
	rng := sim.NewRNG(7)
	val := func(k uint64) []byte { return []byte(fmt.Sprintf("v%d-%d", k, rng.Uint64n(1000))) }

	const keys = 512
	for i := 0; i < 4000; i++ {
		k := rng.Uint64n(keys) + 1
		switch rng.Intn(6) {
		case 0, 1: // put
			v := val(k)
			if err := c.Put(k, v); err != nil {
				t.Fatalf("op %d: put(%d): %v", i, k, err)
			}
			oracle[k] = v
		case 2: // get
			v, found, err := c.Get(k)
			if err != nil {
				t.Fatalf("op %d: get(%d): %v", i, k, err)
			}
			want, ok := oracle[k]
			if found != ok || (ok && !bytes.Equal(v, want)) {
				t.Fatalf("op %d: get(%d) = %q/%v, want %q/%v", i, k, v, found, want, ok)
			}
		case 3: // update
			v := val(k)
			found, err := c.Update(k, v)
			if err != nil {
				t.Fatalf("op %d: update(%d): %v", i, k, err)
			}
			if _, ok := oracle[k]; found != ok {
				t.Fatalf("op %d: update(%d) found=%v, oracle %v", i, k, found, ok)
			}
			if found {
				oracle[k] = v
			}
		case 4: // delete
			found, err := c.Delete(k)
			if err != nil {
				t.Fatalf("op %d: delete(%d): %v", i, k, err)
			}
			if _, ok := oracle[k]; found != ok {
				t.Fatalf("op %d: delete(%d) found=%v, oracle %v", i, k, found, ok)
			}
			delete(oracle, k)
		case 5: // scan a window
			lo := rng.Uint64n(keys) + 1
			hi := lo + 16
			pairs, err := c.Scan(lo, hi, 0)
			if err != nil {
				t.Fatalf("op %d: scan: %v", i, err)
			}
			want := map[uint64][]byte{}
			for k, v := range oracle {
				if k >= lo && k <= hi {
					want[k] = v
				}
			}
			if len(pairs) != len(want) {
				t.Fatalf("op %d: scan[%d,%d] = %d pairs, want %d", i, lo, hi, len(pairs), len(want))
			}
			var prev uint64
			for j, kv := range pairs {
				if j > 0 && kv.Key <= prev {
					t.Fatalf("op %d: scan out of order", i)
				}
				prev = kv.Key
				if !bytes.Equal(kv.Value, want[kv.Key]) {
					t.Fatalf("op %d: scan key %d = %q, want %q", i, kv.Key, kv.Value, want[kv.Key])
				}
			}
		}
	}
	if err := c.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
}

// TestWireBatchOracle exercises wire batches — the protocol's atomicity
// unit — including Commit and cross-shard TryCommit, against the
// oracle.
func TestWireBatchOracle(t *testing.T) {
	addr, srv, stop := startServer(t, patree.Options{Shards: 4}, server.Options{})
	defer stop()
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	oracle := map[uint64][]byte{}
	rng := sim.NewRNG(11)
	for round := 0; round < 200; round++ {
		b := c.NewBatch()
		type staged struct {
			idx  int
			kind patree.OpKind
			key  uint64
			val  []byte
		}
		var ops []staged
		n := rng.Intn(12) + 1
		for j := 0; j < n; j++ {
			// Keys spread over the whole space so batches regularly cross
			// shards.
			k := rng.Uint64n(4096) + 1
			switch rng.Intn(4) {
			case 0, 1:
				v := []byte(fmt.Sprintf("b%d-%d", round, j))
				ops = append(ops, staged{b.Put(k, v), patree.OpPut, k, v})
			case 2:
				ops = append(ops, staged{b.Get(k), patree.OpGet, k, nil})
			case 3:
				ops = append(ops, staged{b.Delete(k), patree.OpDelete, k, nil})
			}
		}
		// Alternate blocking Commit and TryCommit; both must hold the
		// all-or-nothing contract (TryCommit may refuse, in which case the
		// batch stays staged and is retried).
		if round%2 == 0 {
			if err := b.Commit(); err != nil {
				t.Fatalf("round %d: commit: %v", round, err)
			}
		} else {
			for {
				err := b.TryCommit()
				if err == nil {
					break
				}
				if !errors.Is(err, patree.ErrBacklog) {
					t.Fatalf("round %d: trycommit: %v", round, err)
				}
			}
		}
		// Check results in staging order against the oracle, applying
		// mutations as the worker would have seen them.
		for _, op := range ops {
			if err := b.Err(op.idx); err != nil {
				t.Fatalf("round %d: op %d: %v", round, op.idx, err)
			}
			_, existed := oracle[op.key]
			switch op.kind {
			case patree.OpPut:
				oracle[op.key] = op.val
			case patree.OpGet:
				want := oracle[op.key]
				if b.Found(op.idx) != existed || !bytes.Equal(b.Value(op.idx), want) {
					t.Fatalf("round %d: batch get(%d) = %q/%v, want %q/%v",
						round, op.key, b.Value(op.idx), b.Found(op.idx), want, existed)
				}
			case patree.OpDelete:
				if b.Found(op.idx) != existed {
					t.Fatalf("round %d: batch delete(%d) found=%v, want %v", round, op.key, b.Found(op.idx), existed)
				}
				delete(oracle, op.key)
			}
		}
		b.Release()
	}
	if srv.Stats().WireBatches == 0 {
		t.Fatal("no wire batches admitted — the batch path was not exercised")
	}
	// Final sweep: the whole tree must equal the oracle.
	pairs, err := c.Scan(0, ^uint64(0), 0)
	if err != nil {
		t.Fatalf("final scan: %v", err)
	}
	if len(pairs) != len(oracle) {
		t.Fatalf("final scan = %d keys, oracle %d", len(pairs), len(oracle))
	}
	for _, kv := range pairs {
		if !bytes.Equal(kv.Value, oracle[kv.Key]) {
			t.Fatalf("final scan key %d = %q, want %q", kv.Key, kv.Value, oracle[kv.Key])
		}
	}
}

// TestWireConcurrent hammers the server from many goroutines over a
// connection pool under -race: each goroutine owns a disjoint key
// stripe so the final state is deterministic per stripe and verifiable
// against a local oracle.
func TestWireConcurrent(t *testing.T) {
	addr, _, stop := startServer(t, patree.Options{Shards: 4}, server.Options{})
	defer stop()
	pool, err := client.DialPool(addr, 3, client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer pool.Close()

	const goroutines = 8
	const stripe = 1 << 16
	var wg sync.WaitGroup
	oracles := make([]map[uint64][]byte, goroutines)
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := sim.NewRNG(uint64(100 + g))
			oracle := map[uint64][]byte{}
			oracles[g] = oracle
			base := uint64(g+1) * stripe
			fail := func(format string, args ...any) {
				select {
				case errCh <- fmt.Errorf(format, args...):
				default:
				}
			}
			for i := 0; i < 600; i++ {
				k := base + rng.Uint64n(128)
				switch rng.Intn(5) {
				case 0, 1:
					v := []byte(fmt.Sprintf("g%d-%d", g, i))
					if err := pool.Put(k, v); err != nil {
						fail("put: %w", err)
						return
					}
					oracle[k] = v
				case 2:
					v, found, err := pool.Get(k)
					if err != nil {
						fail("get: %w", err)
						return
					}
					want, ok := oracle[k]
					if found != ok || (ok && !bytes.Equal(v, want)) {
						fail("get(%d) = %q/%v, want %q/%v", k, v, found, want, ok)
						return
					}
				case 3:
					if _, err := pool.Delete(k); err != nil {
						fail("delete: %w", err)
						return
					}
					delete(oracle, k)
				case 4:
					b := pool.NewBatch()
					v := []byte(fmt.Sprintf("gb%d-%d", g, i))
					b.Put(k, v)
					gi := b.Get(k)
					if err := b.Commit(); err != nil {
						fail("batch: %w", err)
						return
					}
					if err := b.Wait(); err != nil {
						fail("batch wait: %w", err)
						return
					}
					if !bytes.Equal(b.Value(gi), v) {
						fail("batch read-own-write (g=%d i=%d k=%d): found=%v err=%v %q != %q",
							g, i, k, b.Found(gi), b.Err(gi), b.Value(gi), v)
						return
					}
					b.Release()
					oracle[k] = v
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	// Verify every stripe against its oracle with scans.
	for g := 0; g < goroutines; g++ {
		base := uint64(g+1) * stripe
		pairs, err := pool.Scan(base, base+stripe-1, 0)
		if err != nil {
			t.Fatalf("stripe %d scan: %v", g, err)
		}
		if len(pairs) != len(oracles[g]) {
			t.Fatalf("stripe %d = %d keys, oracle %d", g, len(pairs), len(oracles[g]))
		}
		for _, kv := range pairs {
			if !bytes.Equal(kv.Value, oracles[g][kv.Key]) {
				t.Fatalf("stripe %d key %d = %q, want %q", g, kv.Key, kv.Value, oracles[g][kv.Key])
			}
		}
	}
}

// TestBusyBackoff saturates a tiny admission ring behind a deliberately
// slow device and checks that wire flow control engages: the client
// absorbs StatusBusy with backoff + retransmission, no operation is
// dropped, and every acknowledged write is really there.
func TestBusyBackoff(t *testing.T) {
	slow := fault.New(
		nvme.NewRAMDevice(nvme.RAMConfig{NumBlocks: 1 << 16}),
		fault.Config{Seed: 3, Probs: fault.Probs{LatencySpike: 1}},
	)
	addr, srv, stop := startServer(t,
		patree.Options{Device: slow, InboxDepth: 8},
		// Bursts far larger than the ring: the split-admission path must
		// keep making progress anyway.
		server.Options{BurstOps: 64},
	)
	defer stop()
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	// Pipeline far more writes than the ring holds.
	const n = 512
	handles := make([]*patree.Handle, n)
	for i := range handles {
		h, err := c.PutAsync(uint64(i+1), []byte{byte(i)})
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		handles[i] = h
	}
	for i, h := range handles {
		if err := h.Err(); err != nil {
			t.Fatalf("put %d failed: %v", i, err)
		}
		h.Release()
	}
	if busy := srv.Stats().Busy; busy == 0 {
		t.Fatal("server never refused with StatusBusy — the ring was never saturated")
	}
	if retries := c.Stats().BusyRetries; retries == 0 {
		t.Fatal("client never saw StatusBusy")
	}
	// Every acknowledged write must be present despite the refusals.
	pairs, err := c.Scan(1, n, 0)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(pairs) != n {
		t.Fatalf("scan = %d keys, want %d (BUSY dropped writes)", len(pairs), n)
	}
	t.Logf("busy refusals: server=%d client retries=%d", srv.Stats().Busy, c.Stats().BusyRetries)
}

// rawFrame builds a single-op request frame byte-for-byte.
func rawFrame(id uint64, kind uint8, body []byte) []byte {
	return proto.AppendFrame(nil, id, kind, body)
}

// TestConnDropMidBatch severs a connection that has pipelined singles
// and a wire batch in flight and checks the server abandons the work
// cleanly: no goroutine leaks, and the server keeps serving.
func TestConnDropMidBatch(t *testing.T) {
	addr, srv, stop := startServer(t, patree.Options{Shards: 2}, server.Options{})
	defer stop()

	base := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		var buf []byte
		// A spray of pipelined singles...
		for i := 0; i < 64; i++ {
			key := binary.LittleEndian.AppendUint64(nil, uint64(i+1))
			buf = append(buf, rawFrame(uint64(i+1), proto.KindPut, append(key, 'x'))...)
		}
		// ...and a wire batch (flags=0, 32 puts).
		batch, at := proto.BeginFrame(nil, 1000, proto.KindBatch)
		batch = append(batch, 0)
		batch = binary.LittleEndian.AppendUint32(batch, 32)
		for i := 0; i < 32; i++ {
			batch = append(batch, proto.KindPut)
			batch = binary.LittleEndian.AppendUint64(batch, uint64(1000+i))
			batch = binary.LittleEndian.AppendUint32(batch, 1)
			batch = append(batch, 'y')
		}
		buf = append(buf, proto.FinishFrame(batch, at)...)
		if _, err := nc.Write(buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		// Sever without reading a single response.
		nc.Close()
	}

	// The dropped connections' dispatchers must drain and exit. Poll
	// rather than sleep: the deadline only bites on failure.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= base+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after conn drops: %d -> %d", base, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The server must still be fully functional.
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial after drops: %v", err)
	}
	defer c.Close()
	if err := c.Put(1, []byte("alive")); err != nil {
		t.Fatalf("put after drops: %v", err)
	}
	v, found, err := c.Get(1)
	if err != nil || !found || string(v) != "alive" {
		t.Fatalf("get after drops = %q/%v/%v", v, found, err)
	}
	if a := srv.Stats().Active; a != 1 {
		t.Fatalf("active connections = %d, want 1", a)
	}
}

// TestClientCloseResolvesInflight closes the client with operations in
// flight: every handle must resolve (with ErrClosed or success), no
// waiter may block forever, and later calls fail fast with ErrClosed.
func TestClientCloseResolvesInflight(t *testing.T) {
	addr, _, stop := startServer(t, patree.Options{}, server.Options{})
	defer stop()
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	var handles []*patree.Handle
	for i := 0; i < 256; i++ {
		h, err := c.PutAsync(uint64(i+1), []byte("v"))
		if err != nil {
			break
		}
		handles = append(handles, h)
	}
	c.Close()
	for _, h := range handles {
		// Must return promptly: either the op completed before the close
		// or it was failed with the taxonomy's close error.
		if err := h.Err(); err != nil && !errors.Is(err, patree.ErrClosed) {
			t.Fatalf("in-flight op after Close: %v", err)
		}
		h.Release()
	}
	if err := c.Put(1, []byte("late")); !errors.Is(err, patree.ErrClosed) {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
	if _, _, err := c.Get(1); !errors.Is(err, patree.ErrClosed) {
		t.Fatalf("Get after Close = %v, want ErrClosed", err)
	}
}

// TestServerCloseFailsClients stops the server under live clients: all
// in-flight and subsequent client operations must resolve with a
// taxonomy error (never hang), and handles must not leak.
func TestServerCloseFailsClients(t *testing.T) {
	addr, srv, stop := startServer(t, patree.Options{}, server.Options{})
	defer stop()
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	var handles []*patree.Handle
	for i := 0; i < 128; i++ {
		h, err := c.PutAsync(uint64(i+1), []byte("v"))
		if err != nil {
			break
		}
		handles = append(handles, h)
	}
	srv.Close()
	for _, h := range handles {
		if err := h.Err(); err != nil &&
			!errors.Is(err, patree.ErrBatchAborted) && !errors.Is(err, patree.ErrClosed) {
			t.Fatalf("in-flight op after server close: %v", err)
		}
		h.Release()
	}
	// The connection is dead now; new ops must fail with the transport
	// sentinel, not hang.
	err = c.Put(999, []byte("x"))
	if err == nil {
		// The write may have been buffered before the reader noticed; the
		// next one must fail.
		err = c.Put(999, []byte("x"))
	}
	if err != nil && !errors.Is(err, patree.ErrBatchAborted) && !errors.Is(err, patree.ErrClosed) {
		t.Fatalf("op after server close = %v, want taxonomy error", err)
	}
}

// TestMalformedFrames sends structurally broken requests and checks the
// server answers BadRequest (or drops the connection for unframeable
// garbage) without harming other connections.
func TestMalformedFrames(t *testing.T) {
	addr, srv, stop := startServer(t, patree.Options{}, server.Options{})
	defer stop()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	var buf []byte
	buf = append(buf, rawFrame(1, proto.KindGet, []byte{1, 2, 3})...)                           // short get
	buf = append(buf, rawFrame(2, proto.KindScan, make([]byte, 7))...)                          // short scan
	buf = append(buf, rawFrame(3, 99, nil)...)                                                  // unknown kind
	buf = append(buf, rawFrame(4, proto.KindBatch, []byte{0, 1, 0, 0, 0})...)                   // batch with truncated sub-op
	buf = append(buf, rawFrame(5, proto.KindGet, binary.LittleEndian.AppendUint64(nil, 42))...) // valid
	if _, err := nc.Write(buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Collect the five responses.
	statuses := map[uint64]uint8{}
	rd := make([]byte, 0, 256)
	for len(statuses) < 5 {
		nc.SetReadDeadline(time.Now().Add(5 * time.Second))
		body, err := proto.ReadFrame(nc, rd)
		if err != nil {
			t.Fatalf("read (%d responses in): %v", len(statuses), err)
		}
		rd = body[:0]
		statuses[proto.FrameID(body)] = proto.FrameKind(body)
	}
	for id := uint64(1); id <= 4; id++ {
		if statuses[id] != proto.StatusBadRequest {
			t.Errorf("frame %d: status %d, want BadRequest", id, statuses[id])
		}
	}
	if statuses[5] != proto.StatusOK {
		t.Errorf("valid frame after garbage: status %d, want OK", statuses[5])
	}
	if srv.Stats().BadFrames != 4 {
		t.Errorf("BadFrames = %d, want 4", srv.Stats().BadFrames)
	}
}

var _ io.Reader = (*net.TCPConn)(nil) // keep io imported alongside net
