// Package server is the PA-Tree network serving tier: it speaks the
// internal/proto framing over any net.Listener and feeds every
// connection's operations straight into a patree.Store's admission
// pipeline.
//
// The design extends the paper's polled-mode admission path across the
// network boundary:
//
//   - Each connection's reader goroutine decodes pipelined request
//     frames and stages them on a patree.Batch — one admission-ring
//     transaction per network read burst, so a burst of N pipelined
//     requests costs one ring hand-off, exactly like an embedded
//     caller using the batch API.
//   - Admission is always non-blocking (Batch.TryCommit). When a
//     shard's MPSC ring is full, ErrBacklog surfaces to the client as
//     one StatusBusy response per refused request — wire-level flow
//     control the client backs off on, never a dropped ack and never a
//     reader goroutine wedged against a saturated worker.
//   - A bounded pool of completion dispatchers waits on the admitted
//     batches' handles and streams responses back through a writer
//     goroutine that coalesces frames per flush. Responses complete
//     out of order across bursts, keyed by request id.
//   - A wire batch frame (proto.KindBatch) is admitted as one
//     patree.Batch TryCommit, so its atomicity — including cross-shard
//     all-or-nothing — holds end to end.
//
// The server programs only against patree.Store, so it can front an
// embedded *DB or, in principle, another remote store.
package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	patree "github.com/patree/patree"
	"github.com/patree/patree/internal/proto"
	"github.com/patree/patree/internal/trace"
)

// Options tunes a Server. The zero value selects sensible defaults.
type Options struct {
	// BurstOps caps how many pipelined single-op requests are staged
	// into one admission transaction (default 256). It must not exceed
	// the store's admission ring depth or bursts could never admit.
	BurstOps int
	// Dispatchers bounds the per-connection completion dispatchers, and
	// with them the admitted-but-unanswered bursts in flight (default
	// 8). When all are busy the reader stalls, pushing backpressure
	// into the TCP window.
	Dispatchers int
	// ReadBuf/WriteBuf size the per-connection buffered reader/writer
	// (default 64 KiB).
	ReadBuf, WriteBuf int
	// Logf, when set, receives connection-level error logs and the
	// slow-op log.
	Logf func(format string, args ...any)

	// Trace enables server-side span recording for requests that arrive
	// carrying a trace context (proto.FlagSpan). The handshake is always
	// answered — version negotiation costs nothing — but without Trace
	// the server offers no trace flag, so clients never sample.
	Trace bool
	// TraceEvents sizes the server trace ring (default 65536).
	TraceEvents int
	// TraceNow overrides the trace/metrics clock (nanoseconds). Point it
	// at the engine's clock (patree.DB.TraceNow) so the merged export
	// shares one time axis; nil uses a process-local monotonic clock.
	TraceNow func() int64
	// SlowOp, when positive, logs any request whose wire latency
	// (arrival → response enqueued) exceeds it, with the full server-side
	// stage breakdown, through Logf.
	SlowOp time.Duration
}

func (o *Options) fill() {
	if o.BurstOps <= 0 {
		o.BurstOps = 256
	}
	if o.Dispatchers <= 0 {
		o.Dispatchers = 8
	}
	if o.ReadBuf <= 0 {
		o.ReadBuf = 64 << 10
	}
	if o.WriteBuf <= 0 {
		o.WriteBuf = 64 << 10
	}
	if o.TraceEvents <= 0 {
		o.TraceEvents = 65536
	}
	if o.TraceNow == nil {
		o.TraceNow = defaultServerNow
	}
}

// serverEpoch anchors the default server clock; package-level so every
// Server in a process shares one time axis.
var serverEpoch = time.Now()

func defaultServerNow() int64 { return time.Since(serverEpoch).Nanoseconds() }

// Stats is a snapshot of server activity counters.
type Stats struct {
	Accepted    uint64 // connections accepted over the server's lifetime
	Active      uint64 // connections currently open
	Ops         uint64 // single operations admitted
	BatchOps    uint64 // operations admitted inside wire batches
	WireBatches uint64 // wire batch frames admitted
	Busy        uint64 // requests refused with StatusBusy (flow control)
	BadFrames   uint64 // malformed requests answered with StatusBadRequest
}

// Server serves the PA-Tree wire protocol over a Store.
type Server struct {
	store patree.Store
	opts  Options

	mu     sync.Mutex
	lns    map[net.Listener]struct{}
	conns  map[*srvConn]struct{}
	closed bool
	wg     sync.WaitGroup

	accepted    atomic.Uint64
	active      atomic.Uint64
	ops         atomic.Uint64
	batchOps    atomic.Uint64
	wireBatches atomic.Uint64
	busy        atomic.Uint64
	badFrames   atomic.Uint64
	bytesIn     atomic.Uint64
	bytesOut    atomic.Uint64

	met srvMetrics    // always-on wire instrumentation
	tr  *trace.Locked // sampled spans; nil when Options.Trace is off
	now func() int64
}

// New returns a Server fronting store.
func New(store patree.Store, opts Options) *Server {
	opts.fill()
	s := &Server{
		store: store,
		opts:  opts,
		lns:   make(map[net.Listener]struct{}),
		conns: make(map[*srvConn]struct{}),
		now:   opts.TraceNow,
	}
	if opts.Trace {
		s.tr = trace.NewLocked(opts.TraceEvents, serverCodeNames, serverClassNames, opts.TraceNow)
	}
	return s
}

// Stats snapshots the activity counters.
func (s *Server) Stats() Stats {
	return Stats{
		Accepted:    s.accepted.Load(),
		Active:      s.active.Load(),
		Ops:         s.ops.Load(),
		BatchOps:    s.batchOps.Load(),
		WireBatches: s.wireBatches.Load(),
		Busy:        s.busy.Load(),
		BadFrames:   s.badFrames.Load(),
	}
}

// Serve accepts connections on ln until Close (or a listener error) and
// blocks meanwhile. Multiple Serve calls on different listeners are
// allowed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return patree.ErrClosed
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.lns, ln)
		s.mu.Unlock()
	}()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		sc := newSrvConn(s, c)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[sc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.accepted.Add(1)
		s.active.Add(1)
		go sc.run()
	}
}

// Close stops accepting, tears down every connection and waits for all
// connection goroutines to drain. Operations already admitted to the
// store complete there; their responses are dropped with the
// connections. The store itself is not closed — it belongs to the
// caller.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	for ln := range s.lns {
		ln.Close()
	}
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.shut()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// respBufPool recycles response frame buffers between dispatchers and
// the writer.
var respBufPool = sync.Pool{New: func() any { return make([]byte, 0, 512) }}

// burstState accumulates one read burst of pipelined single-op
// requests in neutral form. Ops are kept decoded (not staged on a
// Batch) until flush so that a backlogged admission can retry smaller
// prefixes without re-decoding.
type burstState struct {
	ids   []uint64
	kinds []uint8
	ops   []patree.BatchOp
	arr   []int64  // arrival timestamps (server clock), for wire latency
	spans []uint64 // trace span ids (0 = unsampled), parallel to ops
}

func (b *burstState) len() int { return len(b.ops) }

var burstPool = sync.Pool{New: func() any { return new(burstState) }}

// srvConn is one client connection.
type srvConn struct {
	s    *Server
	c    net.Conn
	br   *bufio.Reader
	resp chan []byte
	dead chan struct{}
	once sync.Once
	wg   sync.WaitGroup // writer + dispatchers
	sem  chan struct{}  // dispatcher slots
}

func newSrvConn(s *Server, c net.Conn) *srvConn {
	return &srvConn{
		s:    s,
		c:    c,
		br:   bufio.NewReaderSize(c, s.opts.ReadBuf),
		resp: make(chan []byte, 4*s.opts.Dispatchers),
		dead: make(chan struct{}),
		sem:  make(chan struct{}, s.opts.Dispatchers),
	}
}

// shut tears the connection down: it unblocks the reader and writer by
// closing the socket and signals the dispatchers to stop enqueueing.
// Idempotent and safe from any goroutine.
func (c *srvConn) shut() {
	c.once.Do(func() {
		close(c.dead)
		c.c.Close()
	})
}

// run is the connection's reader loop; it owns teardown.
func (c *srvConn) run() {
	defer func() {
		c.shut()
		c.wg.Wait() // writer + dispatchers (they drain their batches first)
		c.s.mu.Lock()
		delete(c.s.conns, c)
		c.s.mu.Unlock()
		c.s.active.Add(^uint64(0))
		c.s.wg.Done()
	}()
	c.wg.Add(1)
	go c.writeLoop()

	var (
		rbuf  []byte
		burst *burstState
	)
	for {
		body, err := proto.ReadFrame(c.br, rbuf)
		if err != nil {
			if burst != nil {
				c.flushBurst(burst)
			}
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				c.s.logf("patree/server: %s: read: %v", c.c.RemoteAddr(), err)
			}
			return
		}
		c.s.bytesIn.Add(uint64(4 + len(body)))
		rbuf = body[:0]
		id := proto.FrameID(body)
		rawKind := proto.FrameKind(body)
		kind, span, payload, ok := proto.SplitSpan(rawKind, proto.FrameBody(body))
		if !ok {
			c.s.badFrames.Add(1)
			c.sendStatus(id, proto.StatusBadRequest, "short span prefix")
			continue
		}
		arrival := c.s.now()
		if span != 0 && c.s.tr != nil {
			c.s.tr.Emit(stRecv, uint16(kind), span, id, arrival, trace.Instant)
		}

		if kind == proto.KindHello {
			// Negotiate version/flags. The hello is a pipeline barrier like
			// a wire batch: admit the pending burst first so the response
			// order mirrors admission order.
			if burst != nil {
				burst = c.flushBurst(burst)
			}
			c.handleHello(id, payload)
			continue
		}
		if kind == proto.KindBatch {
			// A wire batch is its own atomicity unit; admit the pending
			// burst first so per-connection admission order is preserved.
			if burst != nil {
				burst = c.flushBurst(burst)
			}
			c.handleWireBatch(id, span, payload, arrival)
			continue
		}
		if burst == nil {
			burst = burstPool.Get().(*burstState)
		}
		if !c.stageSingle(burst, id, kind, span, payload, arrival) {
			// Malformed op: answered with BadRequest, nothing staged.
			c.s.badFrames.Add(1)
		}
		// Admit when the burst is full or the next complete frame is not
		// already buffered — blocking on the socket with staged-but-
		// unadmitted work would stall the pipeline.
		if burst.len() >= c.s.opts.BurstOps || !c.frameBuffered() {
			burst = c.flushBurst(burst)
		}
	}
}

// frameBuffered reports whether a complete frame is already waiting in
// the read buffer.
func (c *srvConn) frameBuffered() bool {
	if c.br.Buffered() < 4 {
		return false
	}
	hdr, err := c.br.Peek(4)
	if err != nil {
		return false
	}
	return c.br.Buffered() >= 4+int(binary.LittleEndian.Uint32(hdr))
}

// handleHello answers the protocol handshake: the offered (version,
// flags) clamped to what this build speaks, with the trace flag only
// granted when the server itself records spans.
func (c *srvConn) handleHello(id uint64, p []byte) {
	v, f, err := proto.ParseHello(p)
	if err != nil {
		c.s.badFrames.Add(1)
		c.sendStatus(id, proto.StatusBadRequest, "malformed hello")
		return
	}
	v, f = proto.Negotiate(v, f)
	if c.s.tr == nil {
		f &^= proto.HelloFlagTrace
	}
	buf := respBufPool.Get().([]byte)[:0]
	buf = proto.AppendHello(buf, id, proto.StatusOK, v, f)
	c.s.met.recordStatus(proto.StatusOK)
	c.send(buf)
}

// stageSingle decodes one single-op request into the burst, returning
// false (after answering BadRequest) when malformed.
func (c *srvConn) stageSingle(burst *burstState, id uint64, kind uint8, span uint64, p []byte, arrival int64) bool {
	bad := func(msg string) bool {
		c.sendStatus(id, proto.StatusBadRequest, msg)
		return false
	}
	var op patree.BatchOp
	switch kind {
	case proto.KindPut, proto.KindUpdate:
		if len(p) < 8 {
			return bad("short put/update")
		}
		// The frame buffer is recycled for the next read, but the value
		// travels into the tree: copy it.
		v := make([]byte, len(p)-8)
		copy(v, p[8:])
		op = patree.BatchOp{Kind: patree.OpPut, Key: binary.LittleEndian.Uint64(p), Value: v}
		if kind == proto.KindUpdate {
			op.Kind = patree.OpUpdate
		}
	case proto.KindGet:
		if len(p) != 8 {
			return bad("short get")
		}
		op = patree.BatchOp{Kind: patree.OpGet, Key: binary.LittleEndian.Uint64(p)}
	case proto.KindDelete:
		if len(p) != 8 {
			return bad("short delete")
		}
		op = patree.BatchOp{Kind: patree.OpDelete, Key: binary.LittleEndian.Uint64(p)}
	case proto.KindScan:
		if len(p) != 24 {
			return bad("short scan")
		}
		op = patree.BatchOp{
			Kind:  patree.OpScan,
			Key:   binary.LittleEndian.Uint64(p),
			End:   binary.LittleEndian.Uint64(p[8:]),
			Limit: int(int64(binary.LittleEndian.Uint64(p[16:]))),
		}
	case proto.KindSync:
		if len(p) != 0 {
			return bad("malformed sync")
		}
		op = patree.BatchOp{Kind: patree.OpSync}
	default:
		return bad(fmt.Sprintf("unknown op kind %d", kind))
	}
	op.Span = span
	burst.ids = append(burst.ids, id)
	burst.kinds = append(burst.kinds, kind)
	burst.ops = append(burst.ops, op)
	burst.arr = append(burst.arr, arrival)
	burst.spans = append(burst.spans, span)
	return true
}

// stageOn replays a decoded op onto a batch, propagating its trace
// context to the engine.
func stageOn(b *patree.Batch, op patree.BatchOp) {
	var i int
	switch op.Kind {
	case patree.OpPut:
		i = b.Put(op.Key, op.Value)
	case patree.OpGet:
		i = b.Get(op.Key)
	case patree.OpUpdate:
		i = b.Update(op.Key, op.Value)
	case patree.OpDelete:
		i = b.Delete(op.Key)
	case patree.OpScan:
		i = b.Scan(op.Key, op.End, op.Limit)
	case patree.OpSync:
		i = b.Sync()
	default:
		return
	}
	if op.Span != 0 {
		b.SetSpan(i, op.Span)
	}
}

// flushBurst admits the pending burst as one ring transaction when it
// fits. When the rings are backlogged it degrades gracefully instead of
// livelocking: progressively smaller prefixes are tried (the ops are
// independent pipelined singles, so splitting them is semantically
// free), and ops that cannot be admitted even alone are refused with
// StatusBusy — wire flow control the client backs off and retransmits
// on. This also removes any coupling between BurstOps and the store's
// ring depth: a burst larger than the ring admits in chunks. Any
// non-backlog admission error maps through the taxonomy. Always returns
// nil, for `burst = c.flushBurst(burst)` call sites.
func (c *srvConn) flushBurst(burst *burstState) *burstState {
	flushed := c.s.now()
	c.s.met.recordBurst(len(burst.ops))
	i := 0
	for i < len(burst.ops) {
		n := len(burst.ops) - i
		attempts := 0
		for {
			attempts++
			b := c.s.store.NewBatch()
			for _, op := range burst.ops[i : i+n] {
				stageOn(b, op)
			}
			err := b.TryCommit()
			if err == nil {
				c.s.ops.Add(uint64(n))
				admitted := c.s.now()
				if c.s.tr != nil {
					for _, op := range burst.ops[i : i+n] {
						if op.Span != 0 {
							c.s.tr.Emit(stAdmit, uint16(proto.WireKind(op.Kind)), op.Span,
								uint64(attempts), flushed, admitted-flushed)
						}
					}
				}
				if n == len(burst.ops) && i == 0 {
					// Common case: the whole burst admitted at once; the
					// dispatcher takes ownership of the state's slices.
					c.dispatch(b, burst.ids, burst.kinds, burst.arr, burst.spans, admitted, attempts,
						func() { releaseBurst(burst) })
					return nil
				}
				// Split admission: copy the chunk's ids/kinds/arrivals, the
				// state is reused for the rest of the loop.
				ids := append([]uint64(nil), burst.ids[i:i+n]...)
				kinds := append([]uint8(nil), burst.kinds[i:i+n]...)
				arr := append([]int64(nil), burst.arr[i:i+n]...)
				spans := append([]uint64(nil), burst.spans[i:i+n]...)
				c.dispatch(b, ids, kinds, arr, spans, admitted, attempts, nil)
				i += n
				break
			}
			b.Release()
			if status := proto.StatusOf(err); status != proto.StatusBusy {
				// Terminal (closed, device failed): refuse everything left.
				for _, id := range burst.ids[i:] {
					c.sendStatus(id, status, "")
				}
				releaseBurst(burst)
				return nil
			}
			if n == 1 {
				c.s.busy.Add(1)
				now := c.s.now()
				c.s.met.recordLatency(burst.kinds[i], proto.StatusBusy,
					time.Duration(now-burst.arr[i]))
				if span := burst.spans[i]; span != 0 && c.s.tr != nil {
					c.s.tr.Emit(stBusy, uint16(burst.kinds[i]), span, uint64(attempts),
						now, trace.Instant)
				}
				c.sendStatus(burst.ids[i], proto.StatusBusy, "")
				i++
				break
			}
			n /= 2
		}
	}
	releaseBurst(burst)
	return nil
}

func releaseBurst(b *burstState) {
	b.ids = b.ids[:0]
	b.kinds = b.kinds[:0]
	for i := range b.ops {
		b.ops[i] = patree.BatchOp{} // drop value references
	}
	b.ops = b.ops[:0]
	b.arr = b.arr[:0]
	b.spans = b.spans[:0]
	burstPool.Put(b)
}

// dispatch claims a dispatcher slot — blocking the reader when all are
// busy, which pushes backpressure into the TCP window — and hands the
// committed batch to a goroutine that streams its responses. cleanup,
// if set, runs after the batch is released.
func (c *srvConn) dispatch(b *patree.Batch, ids []uint64, kinds []uint8, arr []int64, spans []uint64, admitted int64, attempts int, cleanup func()) {
	c.sem <- struct{}{}
	c.wg.Add(1)
	go c.dispatchBurst(b, ids, kinds, arr, spans, admitted, attempts, cleanup)
}

// dispatchBurst waits for each operation of an admitted burst in
// staging order and streams its responses. Waiting in order is cheap —
// the batch completes as a group — while responses across concurrently
// dispatched bursts interleave freely (out-of-order completion, keyed
// by request id).
func (c *srvConn) dispatchBurst(b *patree.Batch, ids []uint64, kinds []uint8, arr []int64, spans []uint64, admitted int64, attempts int, cleanup func()) {
	defer func() {
		b.Release() // waits for any completions not yet consumed
		if cleanup != nil {
			cleanup()
		}
		<-c.sem
		c.wg.Done()
	}()
	// All of a burst's response frames ride in one buffer: one channel
	// hand-off and (usually) one writer syscall per burst instead of per
	// operation — the response-side mirror of burst admission.
	buf := respBufPool.Get().([]byte)[:0]
	for i, id := range ids {
		var t0 int64
		span := spans[i]
		if span != 0 && c.s.tr != nil {
			t0 = c.s.now()
		}
		status := proto.StatusOf(b.Err(i))
		buf = appendOpResponse(buf, b, i, id, kinds[i], status)
		done := c.s.now()
		d := time.Duration(done - arr[i])
		c.s.met.recordOp(kinds[i], status, d)
		if span != 0 && c.s.tr != nil {
			c.s.tr.Emit(stRespond, uint16(kinds[i]), span, id, t0, done-t0)
		}
		if slow := c.s.opts.SlowOp; slow > 0 && d > slow {
			// arr[i]..flushed is folded into the admit stage here: the
			// flush timestamp lives with the burst, and admitted-arr[i]
			// is the full pre-engine wait either way.
			c.s.slowOp(id, span, kinds[i], status, attempts, arr[i], arr[i], admitted, done)
		}
		if len(buf) >= 32<<10 {
			if !c.send(buf) {
				// Connection gone: stop encoding, but fall through to
				// Release, which waits out the remaining completions so no
				// handle or op leaks.
				return
			}
			buf = respBufPool.Get().([]byte)[:0]
		}
	}
	if len(buf) > 0 {
		c.send(buf)
	} else {
		respBufPool.Put(buf[:0]) //nolint:staticcheck
	}
}

// appendOpResponse encodes operation i's result as a single-op response
// frame. status is proto.StatusOf(b.Err(i)), computed by the caller for
// its metrics.
func appendOpResponse(buf []byte, b *patree.Batch, i int, id uint64, kind, status uint8) []byte {
	if status != proto.StatusOK {
		return proto.AppendFrame(buf, id, status, nil)
	}
	var at int
	buf, at = proto.BeginFrame(buf, id, proto.StatusOK)
	var flags uint8
	if b.Found(i) {
		flags = proto.FoundFlag
	}
	buf = append(buf, flags)
	switch kind {
	case proto.KindGet:
		buf = append(buf, b.Value(i)...)
	case proto.KindScan:
		buf = proto.AppendPairs(buf, b.Pairs(i))
	}
	return proto.FinishFrame(buf, at)
}

// handleWireBatch decodes and admits one wire batch frame as a single
// patree.Batch TryCommit — the protocol's atomic unit. A frame-level
// span covers every sub-op: the batch is one request to the client.
func (c *srvConn) handleWireBatch(id, span uint64, p []byte, arrival int64) {
	if len(p) < 5 {
		c.s.badFrames.Add(1)
		c.sendStatus(id, proto.StatusBadRequest, "short batch")
		return
	}
	count := binary.LittleEndian.Uint32(p[1:])
	p = p[5:]
	b := c.s.store.NewBatch()
	kinds := make([]uint8, 0, count)
	for n := uint32(0); n < count; n++ {
		var ok bool
		var kind uint8
		kind, p, ok = stageSub(b, p)
		if !ok {
			b.Release()
			c.s.badFrames.Add(1)
			c.sendStatus(id, proto.StatusBadRequest, "malformed batch op")
			return
		}
		kinds = append(kinds, kind)
	}
	if len(p) != 0 {
		b.Release()
		c.s.badFrames.Add(1)
		c.sendStatus(id, proto.StatusBadRequest, "trailing batch bytes")
		return
	}
	if span != 0 {
		for i := range kinds {
			b.SetSpan(i, span)
		}
	}
	if err := b.TryCommit(); err != nil {
		status := proto.StatusOf(err)
		if status == proto.StatusBusy {
			c.s.busy.Add(1)
			c.s.met.recordLatency(proto.KindBatch, status, time.Duration(c.s.now()-arrival))
			if span != 0 && c.s.tr != nil {
				c.s.tr.Emit(stBusy, uint16(proto.KindBatch), span, 1, c.s.now(), trace.Instant)
			}
		}
		b.Release()
		c.sendStatus(id, status, "")
		return
	}
	admitted := c.s.now()
	if span != 0 && c.s.tr != nil {
		c.s.tr.Emit(stAdmit, uint16(proto.KindBatch), span, 1, arrival, admitted-arrival)
	}
	c.s.wireBatches.Add(1)
	c.s.batchOps.Add(uint64(len(kinds)))
	c.sem <- struct{}{}
	c.wg.Add(1)
	go c.dispatchWireBatch(b, id, span, kinds, arrival, admitted)
}

// stageSub decodes one batch sub-op and stages it, returning its kind
// and the remaining bytes.
func stageSub(b *patree.Batch, p []byte) (uint8, []byte, bool) {
	if len(p) < 1 {
		return 0, nil, false
	}
	kind := p[0]
	p = p[1:]
	switch kind {
	case proto.KindPut, proto.KindUpdate:
		if len(p) < 12 {
			return 0, nil, false
		}
		key := binary.LittleEndian.Uint64(p)
		vlen := binary.LittleEndian.Uint32(p[8:])
		p = p[12:]
		if uint32(len(p)) < vlen {
			return 0, nil, false
		}
		v := make([]byte, vlen)
		copy(v, p[:vlen])
		p = p[vlen:]
		if kind == proto.KindPut {
			b.Put(key, v)
		} else {
			b.Update(key, v)
		}
	case proto.KindGet:
		if len(p) < 8 {
			return 0, nil, false
		}
		b.Get(binary.LittleEndian.Uint64(p))
		p = p[8:]
	case proto.KindDelete:
		if len(p) < 8 {
			return 0, nil, false
		}
		b.Delete(binary.LittleEndian.Uint64(p))
		p = p[8:]
	case proto.KindScan:
		if len(p) < 24 {
			return 0, nil, false
		}
		lo := binary.LittleEndian.Uint64(p)
		hi := binary.LittleEndian.Uint64(p[8:])
		limit := int(int64(binary.LittleEndian.Uint64(p[16:])))
		b.Scan(lo, hi, limit)
		p = p[24:]
	case proto.KindSync:
		b.Sync()
	default:
		return 0, nil, false
	}
	return kind, p, true
}

// dispatchWireBatch waits out an admitted wire batch and sends its one
// aggregated response: per-op status, flags and payload.
func (c *srvConn) dispatchWireBatch(b *patree.Batch, id, span uint64, kinds []uint8, arrival, admitted int64) {
	defer func() {
		b.Release()
		<-c.sem
		c.wg.Done()
	}()
	buf := respBufPool.Get().([]byte)[:0]
	t0 := c.s.now()
	var at int
	buf, at = proto.BeginFrame(buf, id, proto.StatusOK)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(kinds)))
	for i, kind := range kinds {
		err := b.Err(i)
		buf = append(buf, proto.StatusOf(err))
		var flags uint8
		if err == nil && b.Found(i) {
			flags = proto.FoundFlag
		}
		buf = append(buf, flags)
		lenAt := len(buf)
		buf = append(buf, 0, 0, 0, 0)
		if err == nil {
			switch kind {
			case proto.KindGet:
				buf = append(buf, b.Value(i)...)
			case proto.KindScan:
				buf = proto.AppendPairs(buf, b.Pairs(i))
			}
		}
		binary.LittleEndian.PutUint32(buf[lenAt:], uint32(len(buf)-lenAt-4))
	}
	buf = proto.FinishFrame(buf, at)
	done := c.s.now()
	d := time.Duration(done - arrival)
	c.s.met.recordOp(proto.KindBatch, proto.StatusOK, d)
	if span != 0 && c.s.tr != nil {
		c.s.tr.Emit(stRespond, uint16(proto.KindBatch), span, id, t0, done-t0)
	}
	if slow := c.s.opts.SlowOp; slow > 0 && d > slow {
		c.s.slowOp(id, span, proto.KindBatch, proto.StatusOK, 1, arrival, arrival, admitted, done)
	}
	c.send(buf)
}

// sendStatus enqueues a bare status response (and counts it).
func (c *srvConn) sendStatus(id uint64, status uint8, msg string) {
	c.s.met.recordStatus(status)
	buf := respBufPool.Get().([]byte)[:0]
	buf = proto.AppendFrame(buf, id, status, []byte(msg))
	c.send(buf)
}

// send enqueues one encoded response frame for the writer, reporting
// false when the connection died instead of blocking forever.
func (c *srvConn) send(buf []byte) bool {
	select {
	case c.resp <- buf:
		return true
	case <-c.dead:
		respBufPool.Put(buf[:0]) //nolint:staticcheck // slice header reuse is intended
		return false
	}
}

// writeLoop streams response frames, coalescing every frame available
// before each flush.
func (c *srvConn) writeLoop() {
	defer c.wg.Done()
	bw := bufio.NewWriterSize(c.c, c.s.opts.WriteBuf)
	for {
		select {
		case buf := <-c.resp:
			for {
				_, err := bw.Write(buf)
				c.s.bytesOut.Add(uint64(len(buf)))
				respBufPool.Put(buf[:0]) //nolint:staticcheck
				if err != nil {
					c.shut()
					return
				}
				select {
				case buf = <-c.resp:
					continue
				default:
				}
				break
			}
			if err := bw.Flush(); err != nil {
				c.shut()
				return
			}
		case <-c.dead:
			return
		}
	}
}
