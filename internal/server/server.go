// Package server is the PA-Tree network serving tier: it speaks the
// internal/proto framing over any net.Listener and feeds every
// connection's operations straight into a patree.Store's admission
// pipeline.
//
// The design extends the paper's polled-mode admission path across the
// network boundary:
//
//   - Each connection's reader goroutine decodes pipelined request
//     frames and stages them on a patree.Batch — one admission-ring
//     transaction per network read burst, so a burst of N pipelined
//     requests costs one ring hand-off, exactly like an embedded
//     caller using the batch API.
//   - Admission is always non-blocking (Batch.TryCommit). When a
//     shard's MPSC ring is full, ErrBacklog surfaces to the client as
//     one StatusBusy response per refused request — wire-level flow
//     control the client backs off on, never a dropped ack and never a
//     reader goroutine wedged against a saturated worker.
//   - A bounded pool of completion dispatchers waits on the admitted
//     batches' handles and streams responses back through a writer
//     goroutine that coalesces frames per flush. Responses complete
//     out of order across bursts, keyed by request id.
//   - A wire batch frame (proto.KindBatch) is admitted as one
//     patree.Batch TryCommit, so its atomicity — including cross-shard
//     all-or-nothing — holds end to end.
//
// The server programs only against patree.Store, so it can front an
// embedded *DB or, in principle, another remote store.
package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	patree "github.com/patree/patree"
	"github.com/patree/patree/internal/proto"
)

// Options tunes a Server. The zero value selects sensible defaults.
type Options struct {
	// BurstOps caps how many pipelined single-op requests are staged
	// into one admission transaction (default 256). It must not exceed
	// the store's admission ring depth or bursts could never admit.
	BurstOps int
	// Dispatchers bounds the per-connection completion dispatchers, and
	// with them the admitted-but-unanswered bursts in flight (default
	// 8). When all are busy the reader stalls, pushing backpressure
	// into the TCP window.
	Dispatchers int
	// ReadBuf/WriteBuf size the per-connection buffered reader/writer
	// (default 64 KiB).
	ReadBuf, WriteBuf int
	// Logf, when set, receives connection-level error logs.
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if o.BurstOps <= 0 {
		o.BurstOps = 256
	}
	if o.Dispatchers <= 0 {
		o.Dispatchers = 8
	}
	if o.ReadBuf <= 0 {
		o.ReadBuf = 64 << 10
	}
	if o.WriteBuf <= 0 {
		o.WriteBuf = 64 << 10
	}
}

// Stats is a snapshot of server activity counters.
type Stats struct {
	Accepted    uint64 // connections accepted over the server's lifetime
	Active      uint64 // connections currently open
	Ops         uint64 // single operations admitted
	BatchOps    uint64 // operations admitted inside wire batches
	WireBatches uint64 // wire batch frames admitted
	Busy        uint64 // requests refused with StatusBusy (flow control)
	BadFrames   uint64 // malformed requests answered with StatusBadRequest
}

// Server serves the PA-Tree wire protocol over a Store.
type Server struct {
	store patree.Store
	opts  Options

	mu     sync.Mutex
	lns    map[net.Listener]struct{}
	conns  map[*srvConn]struct{}
	closed bool
	wg     sync.WaitGroup

	accepted    atomic.Uint64
	active      atomic.Uint64
	ops         atomic.Uint64
	batchOps    atomic.Uint64
	wireBatches atomic.Uint64
	busy        atomic.Uint64
	badFrames   atomic.Uint64
}

// New returns a Server fronting store.
func New(store patree.Store, opts Options) *Server {
	opts.fill()
	return &Server{
		store: store,
		opts:  opts,
		lns:   make(map[net.Listener]struct{}),
		conns: make(map[*srvConn]struct{}),
	}
}

// Stats snapshots the activity counters.
func (s *Server) Stats() Stats {
	return Stats{
		Accepted:    s.accepted.Load(),
		Active:      s.active.Load(),
		Ops:         s.ops.Load(),
		BatchOps:    s.batchOps.Load(),
		WireBatches: s.wireBatches.Load(),
		Busy:        s.busy.Load(),
		BadFrames:   s.badFrames.Load(),
	}
}

// Serve accepts connections on ln until Close (or a listener error) and
// blocks meanwhile. Multiple Serve calls on different listeners are
// allowed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return patree.ErrClosed
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.lns, ln)
		s.mu.Unlock()
	}()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		sc := newSrvConn(s, c)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[sc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.accepted.Add(1)
		s.active.Add(1)
		go sc.run()
	}
}

// Close stops accepting, tears down every connection and waits for all
// connection goroutines to drain. Operations already admitted to the
// store complete there; their responses are dropped with the
// connections. The store itself is not closed — it belongs to the
// caller.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	for ln := range s.lns {
		ln.Close()
	}
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.shut()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// respBufPool recycles response frame buffers between dispatchers and
// the writer.
var respBufPool = sync.Pool{New: func() any { return make([]byte, 0, 512) }}

// burstState accumulates one read burst of pipelined single-op
// requests in neutral form. Ops are kept decoded (not staged on a
// Batch) until flush so that a backlogged admission can retry smaller
// prefixes without re-decoding.
type burstState struct {
	ids   []uint64
	kinds []uint8
	ops   []patree.BatchOp
}

func (b *burstState) len() int { return len(b.ops) }

var burstPool = sync.Pool{New: func() any { return new(burstState) }}

// srvConn is one client connection.
type srvConn struct {
	s    *Server
	c    net.Conn
	br   *bufio.Reader
	resp chan []byte
	dead chan struct{}
	once sync.Once
	wg   sync.WaitGroup // writer + dispatchers
	sem  chan struct{}  // dispatcher slots
}

func newSrvConn(s *Server, c net.Conn) *srvConn {
	return &srvConn{
		s:    s,
		c:    c,
		br:   bufio.NewReaderSize(c, s.opts.ReadBuf),
		resp: make(chan []byte, 4*s.opts.Dispatchers),
		dead: make(chan struct{}),
		sem:  make(chan struct{}, s.opts.Dispatchers),
	}
}

// shut tears the connection down: it unblocks the reader and writer by
// closing the socket and signals the dispatchers to stop enqueueing.
// Idempotent and safe from any goroutine.
func (c *srvConn) shut() {
	c.once.Do(func() {
		close(c.dead)
		c.c.Close()
	})
}

// run is the connection's reader loop; it owns teardown.
func (c *srvConn) run() {
	defer func() {
		c.shut()
		c.wg.Wait() // writer + dispatchers (they drain their batches first)
		c.s.mu.Lock()
		delete(c.s.conns, c)
		c.s.mu.Unlock()
		c.s.active.Add(^uint64(0))
		c.s.wg.Done()
	}()
	c.wg.Add(1)
	go c.writeLoop()

	var (
		rbuf  []byte
		burst *burstState
	)
	for {
		body, err := proto.ReadFrame(c.br, rbuf)
		if err != nil {
			if burst != nil {
				c.flushBurst(burst)
			}
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				c.s.logf("patree/server: %s: read: %v", c.c.RemoteAddr(), err)
			}
			return
		}
		rbuf = body[:0]
		id := proto.FrameID(body)
		kind := proto.FrameKind(body)
		payload := proto.FrameBody(body)

		if kind == proto.KindBatch {
			// A wire batch is its own atomicity unit; admit the pending
			// burst first so per-connection admission order is preserved.
			if burst != nil {
				burst = c.flushBurst(burst)
			}
			c.handleWireBatch(id, payload)
			continue
		}
		if burst == nil {
			burst = burstPool.Get().(*burstState)
		}
		if !c.stageSingle(burst, id, kind, payload) {
			// Malformed op: answered with BadRequest, nothing staged.
			c.s.badFrames.Add(1)
		}
		// Admit when the burst is full or the next complete frame is not
		// already buffered — blocking on the socket with staged-but-
		// unadmitted work would stall the pipeline.
		if burst.len() >= c.s.opts.BurstOps || !c.frameBuffered() {
			burst = c.flushBurst(burst)
		}
	}
}

// frameBuffered reports whether a complete frame is already waiting in
// the read buffer.
func (c *srvConn) frameBuffered() bool {
	if c.br.Buffered() < 4 {
		return false
	}
	hdr, err := c.br.Peek(4)
	if err != nil {
		return false
	}
	return c.br.Buffered() >= 4+int(binary.LittleEndian.Uint32(hdr))
}

// stageSingle decodes one single-op request into the burst, returning
// false (after answering BadRequest) when malformed.
func (c *srvConn) stageSingle(burst *burstState, id uint64, kind uint8, p []byte) bool {
	bad := func(msg string) bool {
		c.sendStatus(id, proto.StatusBadRequest, msg)
		return false
	}
	var op patree.BatchOp
	switch kind {
	case proto.KindPut, proto.KindUpdate:
		if len(p) < 8 {
			return bad("short put/update")
		}
		// The frame buffer is recycled for the next read, but the value
		// travels into the tree: copy it.
		v := make([]byte, len(p)-8)
		copy(v, p[8:])
		op = patree.BatchOp{Kind: patree.OpPut, Key: binary.LittleEndian.Uint64(p), Value: v}
		if kind == proto.KindUpdate {
			op.Kind = patree.OpUpdate
		}
	case proto.KindGet:
		if len(p) != 8 {
			return bad("short get")
		}
		op = patree.BatchOp{Kind: patree.OpGet, Key: binary.LittleEndian.Uint64(p)}
	case proto.KindDelete:
		if len(p) != 8 {
			return bad("short delete")
		}
		op = patree.BatchOp{Kind: patree.OpDelete, Key: binary.LittleEndian.Uint64(p)}
	case proto.KindScan:
		if len(p) != 24 {
			return bad("short scan")
		}
		op = patree.BatchOp{
			Kind:  patree.OpScan,
			Key:   binary.LittleEndian.Uint64(p),
			End:   binary.LittleEndian.Uint64(p[8:]),
			Limit: int(int64(binary.LittleEndian.Uint64(p[16:]))),
		}
	case proto.KindSync:
		if len(p) != 0 {
			return bad("malformed sync")
		}
		op = patree.BatchOp{Kind: patree.OpSync}
	default:
		return bad(fmt.Sprintf("unknown op kind %d", kind))
	}
	burst.ids = append(burst.ids, id)
	burst.kinds = append(burst.kinds, kind)
	burst.ops = append(burst.ops, op)
	return true
}

// stageOn replays a decoded op onto a batch.
func stageOn(b *patree.Batch, op patree.BatchOp) {
	switch op.Kind {
	case patree.OpPut:
		b.Put(op.Key, op.Value)
	case patree.OpGet:
		b.Get(op.Key)
	case patree.OpUpdate:
		b.Update(op.Key, op.Value)
	case patree.OpDelete:
		b.Delete(op.Key)
	case patree.OpScan:
		b.Scan(op.Key, op.End, op.Limit)
	case patree.OpSync:
		b.Sync()
	}
}

// flushBurst admits the pending burst as one ring transaction when it
// fits. When the rings are backlogged it degrades gracefully instead of
// livelocking: progressively smaller prefixes are tried (the ops are
// independent pipelined singles, so splitting them is semantically
// free), and ops that cannot be admitted even alone are refused with
// StatusBusy — wire flow control the client backs off and retransmits
// on. This also removes any coupling between BurstOps and the store's
// ring depth: a burst larger than the ring admits in chunks. Any
// non-backlog admission error maps through the taxonomy. Always returns
// nil, for `burst = c.flushBurst(burst)` call sites.
func (c *srvConn) flushBurst(burst *burstState) *burstState {
	i := 0
	for i < len(burst.ops) {
		n := len(burst.ops) - i
		for {
			b := c.s.store.NewBatch()
			for _, op := range burst.ops[i : i+n] {
				stageOn(b, op)
			}
			err := b.TryCommit()
			if err == nil {
				c.s.ops.Add(uint64(n))
				if n == len(burst.ops) && i == 0 {
					// Common case: the whole burst admitted at once; the
					// dispatcher takes ownership of the state's slices.
					c.dispatch(b, burst.ids, burst.kinds, func() { releaseBurst(burst) })
					return nil
				}
				// Split admission: copy the chunk's ids/kinds, the state
				// is reused for the rest of the loop.
				ids := append([]uint64(nil), burst.ids[i:i+n]...)
				kinds := append([]uint8(nil), burst.kinds[i:i+n]...)
				c.dispatch(b, ids, kinds, nil)
				i += n
				break
			}
			b.Release()
			if status := proto.StatusOf(err); status != proto.StatusBusy {
				// Terminal (closed, device failed): refuse everything left.
				for _, id := range burst.ids[i:] {
					c.sendStatus(id, status, "")
				}
				releaseBurst(burst)
				return nil
			}
			if n == 1 {
				c.s.busy.Add(1)
				c.sendStatus(burst.ids[i], proto.StatusBusy, "")
				i++
				break
			}
			n /= 2
		}
	}
	releaseBurst(burst)
	return nil
}

func releaseBurst(b *burstState) {
	b.ids = b.ids[:0]
	b.kinds = b.kinds[:0]
	for i := range b.ops {
		b.ops[i] = patree.BatchOp{} // drop value references
	}
	b.ops = b.ops[:0]
	burstPool.Put(b)
}

// dispatch claims a dispatcher slot — blocking the reader when all are
// busy, which pushes backpressure into the TCP window — and hands the
// committed batch to a goroutine that streams its responses. cleanup,
// if set, runs after the batch is released.
func (c *srvConn) dispatch(b *patree.Batch, ids []uint64, kinds []uint8, cleanup func()) {
	c.sem <- struct{}{}
	c.wg.Add(1)
	go c.dispatchBurst(b, ids, kinds, cleanup)
}

// dispatchBurst waits for each operation of an admitted burst in
// staging order and streams its responses. Waiting in order is cheap —
// the batch completes as a group — while responses across concurrently
// dispatched bursts interleave freely (out-of-order completion, keyed
// by request id).
func (c *srvConn) dispatchBurst(b *patree.Batch, ids []uint64, kinds []uint8, cleanup func()) {
	defer func() {
		b.Release() // waits for any completions not yet consumed
		if cleanup != nil {
			cleanup()
		}
		<-c.sem
		c.wg.Done()
	}()
	// All of a burst's response frames ride in one buffer: one channel
	// hand-off and (usually) one writer syscall per burst instead of per
	// operation — the response-side mirror of burst admission.
	buf := respBufPool.Get().([]byte)[:0]
	for i, id := range ids {
		buf = appendOpResponse(buf, b, i, id, kinds[i])
		if len(buf) >= 32<<10 {
			if !c.send(buf) {
				// Connection gone: stop encoding, but fall through to
				// Release, which waits out the remaining completions so no
				// handle or op leaks.
				return
			}
			buf = respBufPool.Get().([]byte)[:0]
		}
	}
	if len(buf) > 0 {
		c.send(buf)
	} else {
		respBufPool.Put(buf[:0]) //nolint:staticcheck
	}
}

// appendOpResponse encodes operation i's result as a single-op response
// frame.
func appendOpResponse(buf []byte, b *patree.Batch, i int, id uint64, kind uint8) []byte {
	err := b.Err(i)
	if err != nil {
		return proto.AppendFrame(buf, id, proto.StatusOf(err), nil)
	}
	var at int
	buf, at = proto.BeginFrame(buf, id, proto.StatusOK)
	var flags uint8
	if b.Found(i) {
		flags = proto.FoundFlag
	}
	buf = append(buf, flags)
	switch kind {
	case proto.KindGet:
		buf = append(buf, b.Value(i)...)
	case proto.KindScan:
		buf = proto.AppendPairs(buf, b.Pairs(i))
	}
	return proto.FinishFrame(buf, at)
}

// handleWireBatch decodes and admits one wire batch frame as a single
// patree.Batch TryCommit — the protocol's atomic unit.
func (c *srvConn) handleWireBatch(id uint64, p []byte) {
	if len(p) < 5 {
		c.s.badFrames.Add(1)
		c.sendStatus(id, proto.StatusBadRequest, "short batch")
		return
	}
	count := binary.LittleEndian.Uint32(p[1:])
	p = p[5:]
	b := c.s.store.NewBatch()
	kinds := make([]uint8, 0, count)
	for n := uint32(0); n < count; n++ {
		var ok bool
		var kind uint8
		kind, p, ok = stageSub(b, p)
		if !ok {
			b.Release()
			c.s.badFrames.Add(1)
			c.sendStatus(id, proto.StatusBadRequest, "malformed batch op")
			return
		}
		kinds = append(kinds, kind)
	}
	if len(p) != 0 {
		b.Release()
		c.s.badFrames.Add(1)
		c.sendStatus(id, proto.StatusBadRequest, "trailing batch bytes")
		return
	}
	if err := b.TryCommit(); err != nil {
		status := proto.StatusOf(err)
		if status == proto.StatusBusy {
			c.s.busy.Add(1)
		}
		b.Release()
		c.sendStatus(id, status, "")
		return
	}
	c.s.wireBatches.Add(1)
	c.s.batchOps.Add(uint64(len(kinds)))
	c.sem <- struct{}{}
	c.wg.Add(1)
	go c.dispatchWireBatch(b, id, kinds)
}

// stageSub decodes one batch sub-op and stages it, returning its kind
// and the remaining bytes.
func stageSub(b *patree.Batch, p []byte) (uint8, []byte, bool) {
	if len(p) < 1 {
		return 0, nil, false
	}
	kind := p[0]
	p = p[1:]
	switch kind {
	case proto.KindPut, proto.KindUpdate:
		if len(p) < 12 {
			return 0, nil, false
		}
		key := binary.LittleEndian.Uint64(p)
		vlen := binary.LittleEndian.Uint32(p[8:])
		p = p[12:]
		if uint32(len(p)) < vlen {
			return 0, nil, false
		}
		v := make([]byte, vlen)
		copy(v, p[:vlen])
		p = p[vlen:]
		if kind == proto.KindPut {
			b.Put(key, v)
		} else {
			b.Update(key, v)
		}
	case proto.KindGet:
		if len(p) < 8 {
			return 0, nil, false
		}
		b.Get(binary.LittleEndian.Uint64(p))
		p = p[8:]
	case proto.KindDelete:
		if len(p) < 8 {
			return 0, nil, false
		}
		b.Delete(binary.LittleEndian.Uint64(p))
		p = p[8:]
	case proto.KindScan:
		if len(p) < 24 {
			return 0, nil, false
		}
		lo := binary.LittleEndian.Uint64(p)
		hi := binary.LittleEndian.Uint64(p[8:])
		limit := int(int64(binary.LittleEndian.Uint64(p[16:])))
		b.Scan(lo, hi, limit)
		p = p[24:]
	case proto.KindSync:
		b.Sync()
	default:
		return 0, nil, false
	}
	return kind, p, true
}

// dispatchWireBatch waits out an admitted wire batch and sends its one
// aggregated response: per-op status, flags and payload.
func (c *srvConn) dispatchWireBatch(b *patree.Batch, id uint64, kinds []uint8) {
	defer func() {
		b.Release()
		<-c.sem
		c.wg.Done()
	}()
	buf := respBufPool.Get().([]byte)[:0]
	var at int
	buf, at = proto.BeginFrame(buf, id, proto.StatusOK)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(kinds)))
	for i, kind := range kinds {
		err := b.Err(i)
		buf = append(buf, proto.StatusOf(err))
		var flags uint8
		if err == nil && b.Found(i) {
			flags = proto.FoundFlag
		}
		buf = append(buf, flags)
		lenAt := len(buf)
		buf = append(buf, 0, 0, 0, 0)
		if err == nil {
			switch kind {
			case proto.KindGet:
				buf = append(buf, b.Value(i)...)
			case proto.KindScan:
				buf = proto.AppendPairs(buf, b.Pairs(i))
			}
		}
		binary.LittleEndian.PutUint32(buf[lenAt:], uint32(len(buf)-lenAt-4))
	}
	buf = proto.FinishFrame(buf, at)
	c.send(buf)
}

// sendStatus enqueues a bare status response.
func (c *srvConn) sendStatus(id uint64, status uint8, msg string) {
	buf := respBufPool.Get().([]byte)[:0]
	buf = proto.AppendFrame(buf, id, status, []byte(msg))
	c.send(buf)
}

// send enqueues one encoded response frame for the writer, reporting
// false when the connection died instead of blocking forever.
func (c *srvConn) send(buf []byte) bool {
	select {
	case c.resp <- buf:
		return true
	case <-c.dead:
		respBufPool.Put(buf[:0]) //nolint:staticcheck // slice header reuse is intended
		return false
	}
}

// writeLoop streams response frames, coalescing every frame available
// before each flush.
func (c *srvConn) writeLoop() {
	defer c.wg.Done()
	bw := bufio.NewWriterSize(c.c, c.s.opts.WriteBuf)
	for {
		select {
		case buf := <-c.resp:
			for {
				_, err := bw.Write(buf)
				respBufPool.Put(buf[:0]) //nolint:staticcheck
				if err != nil {
					c.shut()
					return
				}
				select {
				case buf = <-c.resp:
					continue
				default:
				}
				break
			}
			if err := bw.Flush(); err != nil {
				c.shut()
				return
			}
		case <-c.dead:
			return
		}
	}
}
