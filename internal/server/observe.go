// Server-side observability: always-on wire metrics, sampled
// request-scoped spans, and the slow-op log.
//
// The metrics path is allocation-free per operation: counters are
// atomics, latency observations land in lazily-allocated log-bucketed
// histograms behind one mutex (internal/metrics.Histogram is
// single-threaded by design), and timestamps ride in the pooled
// burstState arrays next to the decoded ops. Span tracing reuses the
// same ring tracer as the engine, wrapped for concurrent emitters, and
// costs nothing when no frame carries a span.
package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"github.com/patree/patree/internal/metrics"
	"github.com/patree/patree/internal/trace"
)

// Server trace event codes. Code 1 is the span anchor the stitcher
// looks for (trace.SpanCodeAdmit): one slice per sampled op covering
// burst-flush start → admission, Arg = TryCommit attempts (shrinking-
// prefix re-admissions included).
const (
	stRecv    = iota // instant: request frame decoded (Seq = span)
	stAdmit          // slice: flush start → admitted (Seq = span, Arg = attempts)
	stBusy           // instant: refused with StatusBusy (Seq = span, Arg = attempts)
	stRespond        // slice: response encode → enqueued to the writer (Seq = span)
)

var serverCodeNames = []string{"recv", trace.SpanCodeAdmit, "busy", trace.SpanCodeRespond}

// Class = bare wire kind (proto.KindPut = 1, ...), 0 unused.
var serverClassNames = []string{
	"-", "put", "get", "update", "delete", "scan", "sync", "batch", "hello",
}

const (
	numWireKinds    = 9 // class table above
	numWireStatuses = 8 // proto.StatusOK..StatusInternal
)

var wireStatusNames = []string{
	"ok", "busy", "closed", "device-failed", "batch-aborted",
	"too-large", "bad-request", "internal",
}

// srvMetrics is the always-on wire instrumentation. One per Server,
// shared by every connection; the mutex is uncontended relative to the
// syscalls surrounding each observation.
type srvMetrics struct {
	mu        sync.Mutex
	latKind   [numWireKinds]*metrics.Histogram    // request latency by wire kind
	latStatus [numWireStatuses]*metrics.Histogram // request latency by response status
	burst     *metrics.Histogram                  // ops per admitted read burst
	status    [numWireStatuses]uint64             // responses sent by status
}

// recordBurst notes one read burst's size at flush.
func (m *srvMetrics) recordBurst(n int) {
	m.mu.Lock()
	if m.burst == nil {
		m.burst = metrics.NewHistogram()
	}
	m.burst.Record(time.Duration(n))
	m.mu.Unlock()
}

// recordOp notes one finished request whose response frame bypasses
// sendStatus: its wire latency (arrival → response enqueued) bucketed
// by kind and by status, plus the status count.
func (m *srvMetrics) recordOp(kind, status uint8, d time.Duration) {
	m.recordLatency(kind, status, d)
	m.recordStatus(status)
}

// recordLatency records the latency histograms only; the status count
// is taken by the sendStatus path the frame travels through.
func (m *srvMetrics) recordLatency(kind, status uint8, d time.Duration) {
	if kind >= numWireKinds {
		kind = 0
	}
	if status >= numWireStatuses {
		status = numWireStatuses - 1
	}
	m.mu.Lock()
	h := m.latKind[kind]
	if h == nil {
		h = metrics.NewHistogram()
		m.latKind[kind] = h
	}
	h.Record(d)
	h = m.latStatus[status]
	if h == nil {
		h = metrics.NewHistogram()
		m.latStatus[status] = h
	}
	h.Record(d)
	m.mu.Unlock()
}

// recordStatus counts a response that has no measured arrival (bad
// frames, terminal refusals answered from the read loop).
func (m *srvMetrics) recordStatus(status uint8) {
	if status >= numWireStatuses {
		status = numWireStatuses - 1
	}
	m.mu.Lock()
	m.status[status]++
	m.mu.Unlock()
}

// HistSummary is the JSON-safe headline view of one histogram.
type HistSummary struct {
	Count uint64        `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
}

func summarize(h *metrics.Histogram) HistSummary {
	if h == nil || h.Count() == 0 {
		return HistSummary{}
	}
	return HistSummary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P95:   h.Percentile(95),
		P99:   h.Percentile(99),
		Max:   h.Max(),
	}
}

// Metrics is a snapshot of the server's wire instrumentation: the
// lifetime counters plus the always-on latency and burst histograms.
// All fields are JSON-safe for the /statsz admin endpoint.
type Metrics struct {
	Stats
	BytesIn       uint64                 `json:"bytes_in"`
	BytesOut      uint64                 `json:"bytes_out"`
	BurstSize     HistSummary            `json:"burst_size"`
	WireLatency   map[string]HistSummary `json:"wire_latency"`   // by request kind
	StatusLatency map[string]HistSummary `json:"status_latency"` // by response status
	StatusCounts  map[string]uint64      `json:"status_counts"`
	// BusyRate is Busy / (Ops + BatchOps + Busy): the fraction of
	// admission attempts refused with StatusBusy — the server-side view
	// of the client's retransmit rate.
	BusyRate float64 `json:"busy_rate"`
}

// Metrics snapshots the wire instrumentation. Safe to call from any
// goroutine, concurrently with live traffic.
func (s *Server) Metrics() Metrics {
	m := Metrics{
		Stats:         s.Stats(),
		BytesIn:       s.bytesIn.Load(),
		BytesOut:      s.bytesOut.Load(),
		WireLatency:   map[string]HistSummary{},
		StatusLatency: map[string]HistSummary{},
		StatusCounts:  map[string]uint64{},
	}
	s.met.mu.Lock()
	m.BurstSize = summarize(s.met.burst)
	for k := 1; k < numWireKinds; k++ {
		if h := s.met.latKind[k]; h != nil && h.Count() > 0 {
			m.WireLatency[serverClassNames[k]] = summarize(h)
		}
	}
	for st := 0; st < numWireStatuses; st++ {
		if h := s.met.latStatus[st]; h != nil && h.Count() > 0 {
			m.StatusLatency[wireStatusNames[st]] = summarize(h)
		}
		if n := s.met.status[st]; n > 0 {
			m.StatusCounts[wireStatusNames[st]] = n
		}
	}
	s.met.mu.Unlock()
	if att := m.Ops + m.BatchOps + m.Busy; att > 0 {
		m.BusyRate = float64(m.Busy) / float64(att)
	}
	return m
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format under the patree_server_* namespace, for the paserve admin
// endpoint.
func (s *Server) WritePrometheus(w io.Writer) error {
	m := s.Metrics()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("# TYPE patree_server_connections_accepted_total counter\n")
	p("patree_server_connections_accepted_total %d\n", m.Accepted)
	p("# TYPE patree_server_connections_active gauge\n")
	p("patree_server_connections_active %d\n", m.Active)
	p("# TYPE patree_server_ops_total counter\n")
	p("patree_server_ops_total %d\n", m.Ops)
	p("# TYPE patree_server_batch_ops_total counter\n")
	p("patree_server_batch_ops_total %d\n", m.BatchOps)
	p("# TYPE patree_server_wire_batches_total counter\n")
	p("patree_server_wire_batches_total %d\n", m.WireBatches)
	p("# TYPE patree_server_busy_total counter\n")
	p("patree_server_busy_total %d\n", m.Busy)
	p("# TYPE patree_server_busy_rate gauge\n")
	p("patree_server_busy_rate %g\n", m.BusyRate)
	p("# TYPE patree_server_bad_frames_total counter\n")
	p("patree_server_bad_frames_total %d\n", m.BadFrames)
	p("# TYPE patree_server_bytes_in_total counter\n")
	p("patree_server_bytes_in_total %d\n", m.BytesIn)
	p("# TYPE patree_server_bytes_out_total counter\n")
	p("patree_server_bytes_out_total %d\n", m.BytesOut)
	p("# TYPE patree_server_burst_ops summary\n")
	p("patree_server_burst_ops{quantile=\"0.5\"} %d\n", m.BurstSize.P50)
	p("patree_server_burst_ops{quantile=\"0.99\"} %d\n", m.BurstSize.P99)
	p("patree_server_burst_ops_count %d\n", m.BurstSize.Count)
	p("# TYPE patree_server_responses_total counter\n")
	for _, st := range sortedKeys(m.StatusCounts) {
		p("patree_server_responses_total{status=%q} %d\n", st, m.StatusCounts[st])
	}
	p("# TYPE patree_server_wire_latency_seconds summary\n")
	for _, kind := range sortedKeys(m.WireLatency) {
		h := m.WireLatency[kind]
		p("patree_server_wire_latency_seconds{kind=%q,quantile=\"0.5\"} %g\n", kind, h.P50.Seconds())
		p("patree_server_wire_latency_seconds{kind=%q,quantile=\"0.99\"} %g\n", kind, h.P99.Seconds())
		p("patree_server_wire_latency_seconds_count{kind=%q} %d\n", kind, h.Count)
	}
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TraceProcess snapshots the server's sampled span events as one
// trace.Process (default name "server"), ready to merge with the
// client's and engine's processes. Nil when Options.Trace is off.
func (s *Server) TraceProcess(name string) *trace.Process {
	if s.tr == nil {
		return nil
	}
	if name == "" {
		name = "server"
	}
	return &trace.Process{
		Name:       name,
		Events:     s.tr.Events(),
		CodeNames:  serverCodeNames,
		ClassNames: serverClassNames,
	}
}

// slowOp logs one request that blew past Options.SlowOp with its full
// server-side stage breakdown. kindName indexes serverClassNames.
func (s *Server) slowOp(id, span uint64, kind, status uint8, attempts int, arrival, flushed, admitted, responded int64) {
	if kind >= numWireKinds {
		kind = 0
	}
	if status >= numWireStatuses {
		status = numWireStatuses - 1
	}
	s.logf("patree/server: slow op: kind=%s id=%d span=%d status=%s total=%v stage_read=%v stage_admit=%v attempts=%d stage_engine_respond=%v",
		serverClassNames[kind], id, span, wireStatusNames[status],
		time.Duration(responded-arrival),
		time.Duration(flushed-arrival),
		time.Duration(admitted-flushed),
		attempts,
		time.Duration(responded-admitted))
}
