package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	patree "github.com/patree/patree"
	"github.com/patree/patree/client"
	"github.com/patree/patree/internal/server"
	"github.com/patree/patree/internal/trace"
)

// startTracedServer is startServer plus the DB handle, for tests that
// stitch engine processes into the export.
func startTracedServer(t *testing.T, dbOpts patree.Options, srvOpts server.Options) (string, *patree.DB, *server.Server, func()) {
	t.Helper()
	db, err := patree.Open(dbOpts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	srvOpts.TraceNow = db.TraceNow
	srv := server.New(db, srvOpts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		db.Close()
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	return ln.Addr().String(), db, srv, func() {
		srv.Close()
		db.Close()
	}
}

// countByName counts p's events whose code resolves to name through the
// process's own code-name table.
func countByName(p *trace.Process, name string) int {
	idx := -1
	for i, n := range p.CodeNames {
		if n == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0
	}
	n := 0
	for _, e := range p.Events {
		if int(e.Code) == idx {
			n++
		}
	}
	return n
}

// waitSampled drives single ops until the client's trace shows a
// request span — the hello response is pipelined, so sampling engages
// only once negotiation lands.
func waitSampled(t *testing.T, c *client.Conn) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for k := uint64(0); ; k++ {
		if err := c.Put(k, []byte("warm")); err != nil {
			t.Fatalf("put: %v", err)
		}
		if tp := c.TraceProcess(""); tp != nil && countByName(tp, trace.SpanCodeRequest) > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("sampling never engaged: trace negotiation did not complete")
		}
	}
}

// TestEndToEndTrace drives the full wire path with tracing on in every
// tier and checks the acceptance property of the merged export: one
// trace whose flow arrows link the client's request span to the
// server's admit span to the engine operation on some shard.
func TestEndToEndTrace(t *testing.T) {
	addr, db, srv, stop := startTracedServer(t,
		patree.Options{Shards: 2, Trace: true},
		server.Options{Trace: true})
	defer stop()

	c, err := client.Dial(addr, client.Options{
		Trace: true, SampleEvery: 1, TraceNow: db.TraceNow,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	waitSampled(t, c)

	for k := uint64(0); k < 64; k++ {
		if err := c.Put(k, []byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatalf("put: %v", err)
		}
		if _, _, err := c.Get(k); err != nil {
			t.Fatalf("get: %v", err)
		}
	}
	b := c.NewBatch()
	for k := uint64(100); k < 116; k++ {
		b.Put(k, []byte("batched"))
	}
	if err := b.Commit(); err != nil {
		t.Fatalf("batch: %v", err)
	}
	b.Wait()
	b.Release()

	cp := c.TraceProcess("")
	sp := srv.TraceProcess("")
	if cp == nil || sp == nil {
		t.Fatal("trace processes missing despite Options.Trace")
	}
	procs := append([]trace.Process{*cp, *sp}, db.TraceProcesses()...)
	if len(procs) != 4 { // client + server + 2 shards
		t.Fatalf("got %d processes, want 4", len(procs))
	}

	if n := countByName(cp, trace.SpanCodeRequest); n < 64 {
		t.Fatalf("client request spans = %d, want >= 64", n)
	}
	if n := countByName(sp, trace.SpanCodeAdmit); n == 0 {
		t.Fatal("server emitted no admit spans")
	}
	links := 0
	for i := 2; i < len(procs); i++ {
		links += countByName(&procs[i], trace.SpanCodeLink)
	}
	if links == 0 {
		t.Fatal("engine emitted no span link instants")
	}

	flows := trace.Stitch(procs)
	if len(flows) == 0 {
		t.Fatal("stitcher produced no flows")
	}
	full := 0
	for _, f := range flows {
		if len(f.Steps) == 1 {
			full++
		}
	}
	if full == 0 {
		t.Fatal("no client→server→engine chain survived stitching")
	}

	var buf bytes.Buffer
	if err := trace.WriteChromeJSONFlows(&buf, procs, flows); err != nil {
		t.Fatalf("export: %v", err)
	}
	out := buf.String()
	for _, want := range []string{`"ph":"s"`, `"ph":"t"`, `"ph":"f"`, `"bp":"e"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("merged export missing %s", want)
		}
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	t.Logf("merged trace: %d events, %d flows (%d full chains)", len(doc.TraceEvents), len(flows), full)
}

// TestTraceNegotiationOff pins the compat contract: a tracing client
// against a server that answers hello without the trace flag (tracing
// disabled) must never sample, so every frame stays plain v0.
func TestTraceNegotiationOff(t *testing.T) {
	addr, _, stop := startServer(t, patree.Options{}, server.Options{})
	defer stop()
	c, err := client.Dial(addr, client.Options{Trace: true, SampleEvery: 1})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	for k := uint64(0); k < 50; k++ {
		if err := c.Put(k, []byte("x")); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	tp := c.TraceProcess("")
	if tp == nil {
		t.Fatal("TraceProcess nil with Options.Trace on")
	}
	if len(tp.Events) != 0 {
		t.Fatalf("client sampled %d events against a non-tracing server", len(tp.Events))
	}
}

// TestSlowOpLog pins the structured slow-op log: with a 1ns threshold
// every request is slow, and each line carries the stage breakdown.
func TestSlowOpLog(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	logf := func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	addr, _, _, stop := startTracedServer(t,
		patree.Options{},
		server.Options{SlowOp: time.Nanosecond, Logf: logf})
	defer stop()
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := c.Put(1, []byte("v")); err != nil {
		t.Fatalf("put: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		var slow string
		for _, l := range lines {
			if strings.Contains(l, "slow op") {
				slow = l
				break
			}
		}
		mu.Unlock()
		if slow != "" {
			for _, want := range []string{"kind=put", "status=ok", "stage_admit=", "stage_engine_respond=", "attempts="} {
				if !strings.Contains(slow, want) {
					t.Fatalf("slow-op line missing %s: %q", want, slow)
				}
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no slow-op line logged")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdminEndpoints exercises the admin mux end to end over HTTP:
// merged Prometheus exposition, the /statsz JSON document pacli reads,
// and /trace's disabled-vs-enabled behavior.
func TestAdminEndpoints(t *testing.T) {
	addr, db, srv, stop := startTracedServer(t,
		patree.Options{Trace: true},
		server.Options{Trace: true})
	defer stop()
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	for k := uint64(0); k < 32; k++ {
		if err := c.Put(k, []byte("v")); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	c.Close()

	ts := httptest.NewServer(srv.AdminHandler(server.AdminConfig{
		EngineMetrics: db.MetricsHandler(),
		EngineStats:   func() any { return db.Metrics() },
		EngineProcs:   db.TraceProcesses,
	}))
	defer ts.Close()
	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{"patree_ops_total", "patree_server_ops_total", "patree_server_bytes_in_total", "patree_server_burst_ops_count"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %s", want)
		}
	}

	code, body = get("/statsz")
	if code != http.StatusOK {
		t.Fatalf("/statsz: %d", code)
	}
	var doc struct {
		Server server.Metrics  `json:"server"`
		Engine json.RawMessage `json:"engine"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/statsz is not valid JSON: %v", err)
	}
	if doc.Server.Ops != 32 {
		t.Fatalf("/statsz server ops = %d, want 32", doc.Server.Ops)
	}
	if len(doc.Engine) == 0 {
		t.Fatal("/statsz missing engine snapshot")
	}
	if len(doc.Server.WireLatency) == 0 || doc.Server.BurstSize.Count == 0 {
		t.Fatalf("/statsz missing histograms: %+v", doc.Server)
	}

	if code, _ = get("/trace"); code != http.StatusOK {
		t.Fatalf("/trace: %d", code)
	}
	if code, _ = get("/debug/vars"); code != http.StatusOK {
		t.Fatalf("/debug/vars: %d", code)
	}

	// A server without tracing must refuse /trace rather than emit an
	// empty document.
	db2, err := patree.Open(patree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	srv2 := server.New(db2, server.Options{})
	ts2 := httptest.NewServer(srv2.AdminHandler(server.AdminConfig{}))
	defer ts2.Close()
	resp, err := http.Get(ts2.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/trace with tracing off: %d, want 404", resp.StatusCode)
	}
}

// TestConcurrentObservability hammers every read-side observability
// surface — server metrics, Prometheus rendering, engine metrics, trace
// snapshots and exports — concurrently with live TCP traffic. Run under
// -race this pins that observation never tears the serving path.
func TestConcurrentObservability(t *testing.T) {
	// Small trace rings: each observer pass serializes the full window,
	// and the point here is interleaving, not volume.
	addr, db, srv, stop := startTracedServer(t,
		patree.Options{Shards: 2, Trace: true, TraceEvents: 1 << 12},
		server.Options{Trace: true, TraceEvents: 1 << 12, SlowOp: 50 * time.Millisecond})
	defer stop()

	pool, err := client.DialPool(addr, 2, client.Options{
		Trace: true, SampleEvery: 1, TraceEvents: 1 << 12, TraceNow: db.TraceNow,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer pool.Close()

	const (
		writers = 4
		opsEach = 200
		readers = 3
	)
	var writeWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < opsEach; i++ {
				k := uint64(w*opsEach + i)
				if err := pool.Put(k, []byte("cv")); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if _, _, err := pool.Get(k); err != nil {
					t.Errorf("get: %v", err)
					return
				}
			}
		}(w)
	}

	done := make(chan struct{})
	var readWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				srv.Metrics()
				if err := srv.WritePrometheus(io.Discard); err != nil {
					t.Errorf("prometheus: %v", err)
					return
				}
				db.Metrics()
				if err := db.WriteTrace(io.Discard); err != nil {
					t.Errorf("trace: %v", err)
					return
				}
				srv.TraceProcess("")
				procs := append(pool.TraceProcesses(), db.TraceProcesses()...)
				trace.Stitch(procs)
				// Pace like a scraper: each engine snapshot costs a pipeline
				// no-op per shard, and an unthrottled loop starves traffic.
				time.Sleep(10 * time.Millisecond)
			}
		}()
	}

	writeWG.Wait()
	close(done)
	readWG.Wait()
	if st := srv.Stats(); st.Ops < writers*opsEach*2 {
		t.Fatalf("server saw %d ops, want %d", st.Ops, writers*opsEach*2)
	}
}
