package server

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"

	"github.com/patree/patree/internal/trace"
)

// AdminConfig carries the engine-side hooks the admin endpoint merges
// with the server's own wire instrumentation. All fields are optional:
// a nil hook simply leaves that engine view out.
type AdminConfig struct {
	// EngineMetrics serves the engine's Prometheus exposition (e.g.
	// patree.DB.MetricsHandler()); it is rendered first on /metrics,
	// followed by the server's patree_server_* families.
	EngineMetrics http.Handler
	// EngineStats snapshots the engine's JSON metrics for /statsz.
	EngineStats func() any
	// EngineProcs snapshots the engine's trace processes for /trace
	// (e.g. patree.DB.TraceProcesses), merged and stitched with the
	// server's span process.
	EngineProcs func() []trace.Process
}

// AdminHandler returns the paserve admin mux:
//
//	/metrics       Prometheus text: engine families, then patree_server_*
//	/debug/vars    the process expvar registry (JSON)
//	/statsz        one JSON document: server wire metrics + engine metrics
//	/trace         merged Chrome trace JSON (server spans + engine ops,
//	               stitched with flow arrows); 404 when tracing is off
//	/debug/pprof/  Go runtime profiles (CPU, heap, block, mutex, ...) —
//	               the admin mux is private, so these are wired here
//	               explicitly rather than through the default mux, and a
//	               worker-stall investigation never needs a rebuild
func (s *Server) AdminHandler(cfg AdminConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if cfg.EngineMetrics != nil {
			cfg.EngineMetrics.ServeHTTP(w, r)
		}
		s.WritePrometheus(w) //nolint:errcheck // best-effort stream to the scraper
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		var doc struct {
			Server Metrics `json:"server"`
			Engine any     `json:"engine,omitempty"`
		}
		doc.Server = s.Metrics()
		if cfg.EngineStats != nil {
			doc.Engine = cfg.EngineStats()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc) //nolint:errcheck
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		tp := s.TraceProcess("")
		if tp == nil {
			http.Error(w, "tracing disabled (start paserve with -trace)", http.StatusNotFound)
			return
		}
		var procs []trace.Process
		if cfg.EngineProcs != nil {
			procs = append(procs, cfg.EngineProcs()...)
		}
		procs = append(procs, *tp)
		w.Header().Set("Content-Type", "application/json")
		trace.WriteChromeJSONFlows(w, procs, trace.Stitch(procs)) //nolint:errcheck
	})
	return mux
}

// PublishExpvar publishes the server's wire Metrics under name in the
// process expvar registry (served at /debug/vars). Each read takes a
// fresh snapshot. Like expvar.Publish it panics if name is already
// registered, so use distinct names for multiple servers.
func (s *Server) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any { return s.Metrics() }))
}
