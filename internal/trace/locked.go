package trace

import "sync"

// Locked wraps the single-threaded ring Tracer for emitters that are
// inherently concurrent — the serving tier's client and server, where
// issuing goroutines, read/write loops and backoff timers all record
// into one window. The engine keeps using the bare Tracer: its single
// working thread needs no lock, and the serving tier's mutex cost only
// exists when tracing is enabled (a nil *Locked drops everything).
type Locked struct {
	mu  sync.Mutex
	tr  *Tracer
	now func() int64
}

// NewLocked builds a locked ring tracer with the given name tables and
// clock (nanoseconds; shared with the other emitters of a merged
// export so all processes line up on one time axis).
func NewLocked(capacity int, codeNames, classNames []string, now func() int64) *Locked {
	return &Locked{tr: New(capacity, codeNames, classNames), now: now}
}

// NowNanos reads the tracer's clock; 0 on a nil tracer.
func (l *Locked) NowNanos() int64 {
	if l == nil {
		return 0
	}
	return l.now()
}

// Emit records one event. Safe from any goroutine; a nil receiver
// drops the event.
func (l *Locked) Emit(code, class uint16, seq, arg uint64, ts, dur int64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.tr.Emit(code, class, seq, arg, ts, dur)
	l.mu.Unlock()
}

// Events snapshots the held events in emission order.
func (l *Locked) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tr.Events()
}
