package trace

import "sort"

// Span-model conventions shared by the serving tier's emitters. The
// stitcher matches events by code *name* (each Process carries its own
// table), so client, server and engine can number their codes freely:
//
//   - the client emits one "request" slice per sampled request with
//     Seq = span id (issue → response delivered);
//   - the server emits one "admit" slice per sampled operation with
//     Seq = span id (burst flush start → admission), Arg = attempts;
//   - the engine emits a "span" instant per traced operation with
//     Seq = its own op sequence number and Arg = the span id (the
//     cross-process link), next to its usual "op" slice keyed by Seq.
const (
	SpanCodeRequest = "request"
	SpanCodeAdmit   = "admit"
	SpanCodeLink    = "span"
	SpanCodeOp      = "op"
	// SpanCodeRespond labels the server's response-encode slice. It is
	// part of the span vocabulary but not a stitch anchor: the arrow ends
	// at the engine op, and the respond slice reads as an ordinary lane.
	SpanCodeRespond = "respond"
)

// Stitch computes the flow arrows of a merged serving trace: for every
// span id that appears as a client "request" slice it links the request
// to the server's "admit" slice and on to the engine operation the
// admission produced (located through the engine's "span" link
// instants). Chains missing a tier degrade gracefully — a client-only
// span yields no arrow, a client+server span ends at the admit slice.
// The result is ordered by span id, so identical inputs stitch
// identically.
func Stitch(procs []Process) []Flow {
	type engineOp struct{ proc, seq uint64 }
	var (
		requests = map[uint64]FlowPoint{} // span → client request slice
		admits   = map[uint64]FlowPoint{} // span → server admit slice
		links    = map[uint64]engineOp{}  // span → engine (proc, seq)
		ops      = map[engineOp]FlowPoint{}
	)
	for pi := range procs {
		p := &procs[pi]
		names := map[uint16]string{}
		for _, e := range p.Events {
			if _, done := names[e.Code]; !done {
				names[e.Code] = p.codeName(e.Code, func(uint16) string { return "" })
			}
		}
		for _, e := range p.Events {
			switch names[e.Code] {
			case SpanCodeRequest:
				if e.Dur >= 0 && e.Seq != 0 {
					if _, dup := requests[e.Seq]; !dup {
						requests[e.Seq] = FlowPoint{Proc: pi, Code: e.Code, TS: e.TS}
					}
				}
			case SpanCodeAdmit:
				if e.Dur >= 0 && e.Seq != 0 {
					if _, dup := admits[e.Seq]; !dup {
						admits[e.Seq] = FlowPoint{Proc: pi, Code: e.Code, TS: e.TS}
					}
				}
			case SpanCodeLink:
				if e.Arg != 0 {
					links[e.Arg] = engineOp{proc: uint64(pi), seq: e.Seq}
				}
			case SpanCodeOp:
				if e.Dur >= 0 {
					ops[engineOp{proc: uint64(pi), seq: e.Seq}] = FlowPoint{Proc: pi, Code: e.Code, TS: e.TS}
				}
			}
		}
	}

	spans := make([]uint64, 0, len(requests))
	for span := range requests {
		spans = append(spans, span)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i] < spans[j] })

	flows := make([]Flow, 0, len(spans))
	for _, span := range spans {
		f := Flow{ID: span, Name: "span", Start: requests[span]}
		admit, hasAdmit := admits[span]
		var end FlowPoint
		hasEnd := false
		if link, ok := links[span]; ok {
			if op, ok := ops[engineOp{proc: link.proc, seq: link.seq}]; ok {
				end, hasEnd = op, true
			}
		}
		switch {
		case hasAdmit && hasEnd:
			f.Steps = []FlowPoint{admit}
			f.End = end
		case hasAdmit:
			f.End = admit
		case hasEnd:
			f.End = end
		default:
			continue // nothing beyond the client: no arrow to draw
		}
		flows = append(flows, f)
	}
	return flows
}
