package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestZeroValueDropsEvents(t *testing.T) {
	var tr Tracer
	tr.Emit(0, 0, 1, 0, 10, 5)
	if tr.Len() != 0 || tr.Emitted() != 0 {
		t.Fatalf("zero-value tracer stored an event: len=%d emitted=%d", tr.Len(), tr.Emitted())
	}
	var nilTr *Tracer
	nilTr.Emit(0, 0, 1, 0, 10, 5) // must not panic
	if nilTr.Len() != 0 || nilTr.Cap() != 0 || nilTr.Events() != nil {
		t.Fatal("nil tracer accessors not inert")
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := New(16, nil, nil)
	for i := 0; i < 40; i++ {
		tr.Emit(0, 0, uint64(i), 0, int64(i), 1)
	}
	if tr.Len() != 16 {
		t.Fatalf("len = %d, want 16", tr.Len())
	}
	if tr.Emitted() != 40 {
		t.Fatalf("emitted = %d, want 40", tr.Emitted())
	}
	evs := tr.Events()
	for i, e := range evs {
		if want := uint64(24 + i); e.Seq != want {
			t.Fatalf("event %d: seq %d, want %d (oldest-first order broken)", i, e.Seq, want)
		}
	}
}

func TestMinimumCapacity(t *testing.T) {
	tr := New(1, nil, nil)
	if tr.Cap() != 16 {
		t.Fatalf("cap = %d, want clamped minimum 16", tr.Cap())
	}
}

func TestReset(t *testing.T) {
	tr := New(16, nil, nil)
	for i := 0; i < 20; i++ {
		tr.Emit(0, 0, uint64(i), 0, int64(i), 1)
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Emitted() != 0 {
		t.Fatal("Reset left events behind")
	}
	tr.Emit(0, 0, 99, 0, 1, 1)
	if evs := tr.Events(); len(evs) != 1 || evs[0].Seq != 99 {
		t.Fatal("tracer unusable after Reset")
	}
}

func TestChromeJSONWellFormed(t *testing.T) {
	tr := New(64, []string{"alpha", "beta"}, []string{"search", "insert"})
	tr.Emit(0, 0, 1, 7, 1500, 2500)     // slice on track alpha
	tr.Emit(1, 1, 2, 0, 4000, Instant)  // instant on track beta
	tr.Emit(9, 0, 3, 0, -250, 10)       // out-of-range code, negative ts
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.Unit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.Unit)
	}
	var meta, slices, instants int
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "M":
			meta++
			if args, ok := e["args"].(map[string]any); ok {
				if n, ok := args["name"].(string); ok {
					names[n] = true
				}
			}
		case "X":
			slices++
		case "i":
			instants++
		default:
			t.Fatalf("unexpected phase %v", e["ph"])
		}
	}
	if slices != 2 || instants != 1 {
		t.Fatalf("got %d slices, %d instants; want 2, 1", slices, instants)
	}
	// Process name + one thread row per appearing code (0, 1, 9).
	if meta != 4 {
		t.Fatalf("got %d metadata rows, want 4", meta)
	}
	for _, want := range []string{"patree", "alpha", "beta", "code9"} {
		if !names[want] {
			t.Fatalf("missing metadata name %q (have %v)", want, names)
		}
	}
	if !strings.Contains(buf.String(), `"ts":1.500`) {
		t.Fatalf("microsecond formatting broken:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `"ts":-0.250`) {
		t.Fatalf("negative timestamp formatting broken:\n%s", buf.String())
	}
}

func TestChromeJSONDeterministic(t *testing.T) {
	build := func() []byte {
		tr := New(32, []string{"a"}, []string{"k"})
		for i := 0; i < 50; i++ {
			tr.Emit(0, 0, uint64(i), uint64(i*3), int64(i)*1000, int64(i%5)*100)
		}
		var buf bytes.Buffer
		if err := tr.WriteChromeJSON(&buf, tr.Events()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("identical event sequences produced different JSON")
	}
}

func TestEventsIsACopy(t *testing.T) {
	tr := New(16, nil, nil)
	tr.Emit(0, 0, 1, 0, 1, 1)
	evs := tr.Events()
	for i := 0; i < 32; i++ {
		tr.Emit(0, 0, uint64(100+i), 0, 1, 1)
	}
	if evs[0].Seq != 1 {
		t.Fatal("Events() snapshot mutated by later emission")
	}
}
