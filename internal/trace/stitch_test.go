package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// decode parses an export into its event list, failing the test on
// malformed JSON.
func decode(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if doc.Unit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.Unit)
	}
	return doc.TraceEvents
}

// TestProcsZeroEvents: an export with no processes at all must still be
// a valid, empty trace document.
func TestProcsZeroEvents(t *testing.T) {
	tr := New(16, []string{"a"}, []string{"k"})
	var buf bytes.Buffer
	if err := tr.WriteChromeJSONProcs(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if evs := decode(t, buf.Bytes()); len(evs) != 0 {
		t.Fatalf("empty export produced %d events", len(evs))
	}
}

// TestProcsEmptyShardProcess: a shard that captured nothing (an idle
// worker) must still appear as a named process row — operators should
// see the shard exists, not wonder where it went — with no event rows.
func TestProcsEmptyShardProcess(t *testing.T) {
	tr := New(16, []string{"op"}, []string{"search"})
	procs := []Process{
		{Name: "patree-shard0", Events: []Event{{TS: 10, Dur: 5, Code: 0, Class: 0, Seq: 1}}},
		{Name: "patree-shard1"}, // idle: zero events
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeJSONProcs(&buf, procs); err != nil {
		t.Fatal(err)
	}
	evs := decode(t, buf.Bytes())
	var procNames []string
	slices := 0
	for _, e := range evs {
		if e["ph"] == "M" {
			if e["name"] == "process_name" {
				procNames = append(procNames, e["args"].(map[string]any)["name"].(string))
			}
			continue
		}
		if e["ph"] == "X" {
			slices++
			if e["pid"].(float64) != 1 {
				t.Fatalf("slice on pid %v, want 1", e["pid"])
			}
		}
	}
	if len(procNames) != 2 || procNames[0] != "patree-shard0" || procNames[1] != "patree-shard1" {
		t.Fatalf("process rows = %v, want both shards", procNames)
	}
	if slices != 1 {
		t.Fatalf("got %d slices, want 1", slices)
	}
}

// TestProcsPerProcessTables: a process carrying its own name tables
// must not be labelled by the exporting tracer's vocabulary.
func TestProcsPerProcessTables(t *testing.T) {
	tr := New(16, []string{"engine-op"}, []string{"search"})
	procs := []Process{
		{Name: "engine", Events: []Event{{TS: 1, Dur: 1}}},
		{
			Name:       "client",
			Events:     []Event{{TS: 2, Dur: 1, Code: 0, Class: 1}},
			CodeNames:  []string{"request"},
			ClassNames: []string{"-", "get"},
		},
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeJSONProcs(&buf, procs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"request"`, `"engine-op"`, `"op":"get"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %s in:\n%s", want, out)
		}
	}
}

// servingProcs builds a miniature three-tier capture: one sampled
// request (span 7) traversing client → server → engine op seq 42, plus
// an unsampled engine op that must not produce an arrow.
func servingProcs() []Process {
	return []Process{
		{
			Name:       "client",
			CodeNames:  []string{SpanCodeRequest},
			ClassNames: []string{"-", "put", "get"},
			Events: []Event{
				{TS: 1000, Dur: 9000, Code: 0, Class: 2, Seq: 7}, // request span 7
			},
		},
		{
			Name:       "server",
			CodeNames:  []string{"recv", SpanCodeAdmit},
			ClassNames: []string{"-", "put", "get"},
			Events: []Event{
				{TS: 2000, Dur: -1, Code: 0, Class: 2, Seq: 7},  // recv instant
				{TS: 2500, Dur: 800, Code: 1, Class: 2, Seq: 7}, // admit span 7
			},
		},
		{
			Name:       "patree-shard0",
			CodeNames:  []string{SpanCodeOp, SpanCodeLink},
			ClassNames: []string{"search"},
			Events: []Event{
				{TS: 4000, Dur: 3000, Code: 0, Seq: 42},       // op seq 42
				{TS: 7000, Dur: -1, Code: 1, Seq: 42, Arg: 7}, // span link 42→7
				{TS: 8000, Dur: 1000, Code: 0, Seq: 43},       // unsampled op
			},
		},
	}
}

func TestStitchLinksTiers(t *testing.T) {
	flows := Stitch(servingProcs())
	if len(flows) != 1 {
		t.Fatalf("got %d flows, want 1", len(flows))
	}
	f := flows[0]
	if f.ID != 7 {
		t.Fatalf("flow id = %d, want span 7", f.ID)
	}
	if f.Start.Proc != 0 || f.Start.TS != 1000 {
		t.Fatalf("flow start = %+v, want client request", f.Start)
	}
	if len(f.Steps) != 1 || f.Steps[0].Proc != 1 || f.Steps[0].TS != 2500 {
		t.Fatalf("flow steps = %+v, want server admit", f.Steps)
	}
	if f.End.Proc != 2 || f.End.TS != 4000 {
		t.Fatalf("flow end = %+v, want engine op", f.End)
	}
}

func TestStitchDegradesWithoutEngine(t *testing.T) {
	procs := servingProcs()[:2] // client + server only
	flows := Stitch(procs)
	if len(flows) != 1 {
		t.Fatalf("got %d flows, want 1", len(flows))
	}
	if f := flows[0]; len(f.Steps) != 0 || f.End.Proc != 1 {
		t.Fatalf("client+server flow = %+v, want end at admit", f)
	}
	// Client-only: nothing to link, no arrow.
	if flows := Stitch(procs[:1]); len(flows) != 0 {
		t.Fatalf("client-only capture produced %d flows", len(flows))
	}
}

// TestFlowsExport: the merged writer must emit a well-formed document
// with s/t/f flow phases at the stitched coordinates, deterministically.
func TestFlowsExport(t *testing.T) {
	build := func() []byte {
		procs := servingProcs()
		var buf bytes.Buffer
		if err := WriteChromeJSONFlows(&buf, procs, Stitch(procs)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	out := build()
	phases := map[string]int{}
	for _, e := range decode(t, out) {
		phases[e["ph"].(string)]++
	}
	if phases["s"] != 1 || phases["t"] != 1 || phases["f"] != 1 {
		t.Fatalf("flow phases = %v, want one each of s/t/f", phases)
	}
	if phases["X"] != 4 || phases["i"] != 2 {
		t.Fatalf("event phases = %v, want 4 slices + 2 instants", phases)
	}
	if !bytes.Equal(out, build()) {
		t.Fatal("identical inputs produced different merged JSON")
	}
	// An export with zero flows is still valid.
	var buf bytes.Buffer
	if err := WriteChromeJSONFlows(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	decode(t, buf.Bytes())
}
