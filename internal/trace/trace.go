// Package trace is a low-overhead, fixed-capacity ring-buffer event
// tracer for the PA-Tree pipeline. The emitting layer (internal/core's
// working thread) records compact binary events — no allocation, no
// formatting, no locks — and the ring keeps the most recent N of them.
// Export renders the captured window as Chrome trace-event JSON, which
// loads directly into Perfetto (ui.perfetto.dev) or chrome://tracing for
// stage-by-stage visual inspection of a workload run.
//
// Timestamps are int64 nanoseconds on whatever clock the emitter uses:
// the simulation's virtual clock and RealEnv's wall clock both work, and
// because events carry their own timestamps the export is byte-identical
// for identical runs (the determinism the simulated experiments rely on).
//
// The tracer is single-threaded by design: every event is emitted from
// the working thread (producer-side facts like admission wait arrive as
// timestamps on the operation and are emitted retroactively at drain
// time), so a nil check is the only cost tracing adds when disabled.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// Event is one captured trace record. Code indexes the emitter's code
// name table (one Perfetto track per code), Class its class name table
// (e.g. the operation kind). Dur < 0 marks an instant event.
type Event struct {
	TS    int64 // ns on the emitter's clock
	Dur   int64 // ns; < 0 = instant
	Code  uint16
	Class uint16
	Seq   uint64 // operation sequence number (0 = none)
	Arg   uint64 // code-specific argument (page id, count, ...)
}

// Instant is the Dur value marking an instantaneous event.
const Instant int64 = -1

// Tracer is the bounded ring. Construct with New; the zero value drops
// every event.
type Tracer struct {
	buf        []Event
	next       int
	wrapped    bool
	emitted    uint64
	codeNames  []string
	classNames []string
}

// New returns a tracer keeping the most recent capacity events (minimum
// 16). codeNames and classNames label Code/Class values in the export;
// out-of-range values render numerically.
func New(capacity int, codeNames, classNames []string) *Tracer {
	if capacity < 16 {
		capacity = 16
	}
	return &Tracer{buf: make([]Event, capacity), codeNames: codeNames, classNames: classNames}
}

// Emit records one event, overwriting the oldest once the ring is full.
func (t *Tracer) Emit(code, class uint16, seq, arg uint64, ts, dur int64) {
	if t == nil || len(t.buf) == 0 {
		return
	}
	t.buf[t.next] = Event{TS: ts, Dur: dur, Code: code, Class: class, Seq: seq, Arg: arg}
	t.next++
	t.emitted++
	if t.next == len(t.buf) {
		t.next = 0
		t.wrapped = true
	}
}

// Len returns the number of events currently held.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	if t.wrapped {
		return len(t.buf)
	}
	return t.next
}

// Emitted returns the total number of events ever emitted (held + lost
// to ring overwrite).
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	return t.emitted
}

// Cap returns the ring capacity.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Events returns the held events in emission order (oldest first). The
// returned slice is a copy; safe to use after further emission.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if !t.wrapped {
		return append([]Event(nil), t.buf[:t.next]...)
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	return append(out, t.buf[:t.next]...)
}

// Reset drops every held event (capacity and name tables retained).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.next = 0
	t.wrapped = false
	t.emitted = 0
}

func (t *Tracer) codeName(c uint16) string {
	if int(c) < len(t.codeNames) {
		return t.codeNames[c]
	}
	return "code" + strconv.Itoa(int(c))
}

func (t *Tracer) className(c uint16) string {
	if int(c) < len(t.classNames) {
		return t.classNames[c]
	}
	return "class" + strconv.Itoa(int(c))
}

// WriteChromeJSON renders events as a Chrome trace-event JSON object.
// Slices become "X" (complete) events and instants become "i" events,
// each on a per-code track (pid 1, tid = code + 1) named by the code
// table; thread-name metadata rows come first. Timestamps are emitted in
// microseconds with nanosecond precision, formatted deterministically,
// so identical event sequences produce byte-identical JSON.
//
// Pass the events explicitly (usually Tracer.Events()) so a snapshot
// taken on the working thread can be exported from any goroutine.
func (t *Tracer) WriteChromeJSON(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	comma := func() {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteByte('\n')
	}
	comma()
	fmt.Fprintf(bw, `{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"patree"}}`)
	// One named track per code that actually appears, in code order.
	seen := map[uint16]bool{}
	for _, e := range events {
		seen[e.Code] = true
	}
	for c := 0; c < 1<<16; c++ {
		if !seen[uint16(c)] {
			continue
		}
		comma()
		fmt.Fprintf(bw, `{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%q}}`,
			c+1, t.codeName(uint16(c)))
		delete(seen, uint16(c))
		if len(seen) == 0 {
			break
		}
	}
	for _, e := range events {
		comma()
		if e.Dur < 0 {
			fmt.Fprintf(bw, `{"ph":"i","s":"t","pid":1,"tid":%d,"ts":%s,"name":%q,"cat":"patree","args":{"op":%q,"seq":%d,"arg":%d}}`,
				e.Code+1, usec(e.TS), t.codeName(e.Code), t.className(e.Class), e.Seq, e.Arg)
		} else {
			fmt.Fprintf(bw, `{"ph":"X","pid":1,"tid":%d,"ts":%s,"dur":%s,"name":%q,"cat":"patree","args":{"op":%q,"seq":%d,"arg":%d}}`,
				e.Code+1, usec(e.TS), usec(e.Dur), t.codeName(e.Code), t.className(e.Class), e.Seq, e.Arg)
		}
	}
	if _, err := bw.WriteString("\n],\"displayTimeUnit\":\"ns\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// Process is one Chrome-trace process in a multi-process export: a
// display name and the event window captured by that process's tracer.
// Used by sharded exports, where every shard becomes its own process
// row with the familiar per-code thread lanes underneath, and by the
// serving tier's merged client/server/engine export.
type Process struct {
	Name   string
	Events []Event
	// CodeNames/ClassNames, when non-nil, label this process's events
	// instead of the exporting tracer's tables — the merged serving
	// export mixes processes from different emitters (client, server,
	// engine), each with its own vocabulary. Nil keeps the old behavior:
	// the exporting tracer's tables apply.
	CodeNames  []string
	ClassNames []string
}

func (p *Process) codeName(c uint16, fallback func(uint16) string) string {
	if p.CodeNames != nil {
		if int(c) < len(p.CodeNames) {
			return p.CodeNames[c]
		}
		return "code" + strconv.Itoa(int(c))
	}
	return fallback(c)
}

func (p *Process) className(c uint16, fallback func(uint16) string) string {
	if p.ClassNames != nil {
		if int(c) < len(p.ClassNames) {
			return p.ClassNames[c]
		}
		return "class" + strconv.Itoa(int(c))
	}
	return fallback(c)
}

// WriteChromeJSONProcs renders several event windows as one Chrome
// trace-event JSON object, one trace process per entry (pid = index+1,
// process_name metadata first, then the entry's thread-name metadata
// and events). The receiver supplies the code and class name tables
// for every process — shards share one emitter configuration, so their
// tables are identical. Formatting matches WriteChromeJSON, so the
// output is byte-identical for identical inputs.
func (t *Tracer) WriteChromeJSONProcs(w io.Writer, procs []Process) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	comma := func() {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteByte('\n')
	}
	for pi := range procs {
		writeProc(bw, comma, pi+1, &procs[pi], t.codeName, t.className)
	}
	if _, err := bw.WriteString("\n],\"displayTimeUnit\":\"ns\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// writeProc emits one process's metadata rows and events. fallbackCode/
// fallbackClass label events of processes that carry no tables of their
// own.
func writeProc(bw *bufio.Writer, comma func(), pid int, p *Process,
	fallbackCode, fallbackClass func(uint16) string) {
	comma()
	fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":%q}}`, pid, p.Name)
	seen := map[uint16]bool{}
	for _, e := range p.Events {
		seen[e.Code] = true
	}
	for c := 0; c < 1<<16; c++ {
		if !seen[uint16(c)] {
			continue
		}
		comma()
		fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%q}}`,
			pid, c+1, p.codeName(uint16(c), fallbackCode))
		delete(seen, uint16(c))
		if len(seen) == 0 {
			break
		}
	}
	for _, e := range p.Events {
		comma()
		if e.Dur < 0 {
			fmt.Fprintf(bw, `{"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%s,"name":%q,"cat":"patree","args":{"op":%q,"seq":%d,"arg":%d}}`,
				pid, e.Code+1, usec(e.TS), p.codeName(e.Code, fallbackCode), p.className(e.Class, fallbackClass), e.Seq, e.Arg)
		} else {
			fmt.Fprintf(bw, `{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":%q,"cat":"patree","args":{"op":%q,"seq":%d,"arg":%d}}`,
				pid, e.Code+1, usec(e.TS), usec(e.Dur), p.codeName(e.Code, fallbackCode), p.className(e.Class, fallbackClass), e.Seq, e.Arg)
		}
	}
}

// FlowPoint is one end of a flow arrow: a (process, code track, time)
// coordinate. The point must fall inside a slice on that track for the
// viewer to bind the arrow to it (Chrome flow events attach to the
// enclosing slice).
type FlowPoint struct {
	Proc int // index into the procs slice passed to the writer
	Code uint16
	TS   int64 // ns, on the same clock as the process's events
}

// Flow is one flow arrow chain linking a request's spans across
// processes: start → steps → end, all sharing the span id. Rendered as
// Chrome "s"/"t"/"f" flow events, which Perfetto draws as arrows
// between the slices enclosing each point.
type Flow struct {
	ID    uint64 // span id; must be unique per chain within one export
	Name  string
	Start FlowPoint
	Steps []FlowPoint
	End   FlowPoint
}

// WriteChromeJSONFlows renders several processes plus flow arrows as
// one Chrome trace-event JSON object. Unlike WriteChromeJSONProcs it is
// a package function: every process carries its own name tables (the
// merged serving export mixes client, server and engine vocabularies),
// with numeric fallbacks for processes that bring none. Output is
// deterministic for identical inputs.
func WriteChromeJSONFlows(w io.Writer, procs []Process, flows []Flow) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	comma := func() {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteByte('\n')
	}
	numericCode := func(c uint16) string { return "code" + strconv.Itoa(int(c)) }
	numericClass := func(c uint16) string { return "class" + strconv.Itoa(int(c)) }
	for pi := range procs {
		writeProc(bw, comma, pi+1, &procs[pi], numericCode, numericClass)
	}
	point := func(ph string, f *Flow, p FlowPoint, bind string) {
		comma()
		fmt.Fprintf(bw, `{"ph":%q,%s"cat":"span","id":%d,"pid":%d,"tid":%d,"ts":%s,"name":%q}`,
			ph, bind, f.ID, p.Proc+1, p.Code+1, usec(p.TS), f.Name)
	}
	for i := range flows {
		f := &flows[i]
		point("s", f, f.Start, "")
		for _, s := range f.Steps {
			point("t", f, s, "")
		}
		// bp:"e" binds the arrow head to the enclosing slice rather than
		// the next slice on the track, which is what a span chain means.
		point("f", f, f.End, `"bp":"e",`)
	}
	if _, err := bw.WriteString("\n],\"displayTimeUnit\":\"ns\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// usec formats ns as a decimal microsecond literal ("12.345"), the unit
// the trace-event format expects, without float formatting jitter.
func usec(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return neg + strconv.FormatInt(ns/1000, 10) + "." + fmt.Sprintf("%03d", ns%1000)
}
