package sched

import (
	"testing"
	"time"

	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/probe"
	"github.com/patree/patree/internal/sim"
)

func TestFIFOOrder(t *testing.T) {
	q := NewFIFO()
	for i := uint64(0); i < 5; i++ {
		q.Push(Entry{Seq: i, HoldsWrite: i%2 == 0})
	}
	for i := uint64(0); i < 5; i++ {
		e, ok := q.Pop()
		if !ok || e.Seq != i {
			t.Fatalf("pop %d = %+v, %v", i, e, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
}

func TestPriorityWriteHoldersFirst(t *testing.T) {
	q := NewPriority()
	q.Push(Entry{Seq: 1})
	q.Push(Entry{Seq: 2, HoldsWrite: true})
	q.Push(Entry{Seq: 0})
	q.Push(Entry{Seq: 3, HoldsWrite: true})
	wantSeq := []uint64{2, 3, 0, 1}
	for i, w := range wantSeq {
		e, ok := q.Pop()
		if !ok || e.Seq != w {
			t.Fatalf("pop %d: seq = %d, want %d", i, e.Seq, w)
		}
	}
}

func TestPriorityAdmissionOrderWithinClass(t *testing.T) {
	q := NewPriority()
	for _, s := range []uint64{5, 1, 9, 3} {
		q.Push(Entry{Seq: s})
	}
	prev := uint64(0)
	for q.Len() > 0 {
		e, _ := q.Pop()
		if e.Seq < prev {
			t.Fatalf("out of order: %d after %d", e.Seq, prev)
		}
		prev = e.Seq
	}
}

func TestQueueLen(t *testing.T) {
	for _, q := range []ReadyQueue{NewFIFO(), NewPriority()} {
		if q.Len() != 0 {
			t.Fatal("fresh queue nonempty")
		}
		q.Push(Entry{Seq: 1})
		q.Push(Entry{Seq: 2})
		if q.Len() != 2 {
			t.Fatalf("len = %d", q.Len())
		}
		q.Pop()
		if q.Len() != 1 {
			t.Fatalf("len after pop = %d", q.Len())
		}
	}
}

func TestAlwaysProbe(t *testing.T) {
	p := NewAlwaysProbe()
	if !p.ShouldProbe(0, 1) {
		t.Fatal("naive with blocked IO must probe")
	}
	if p.ShouldProbe(0, 0) {
		t.Fatal("probe with no blocked IO")
	}
	if p.YieldFor(0, 0) != 0 {
		t.Fatal("naive must not yield")
	}
}

func TestFixedCyclePeriod(t *testing.T) {
	p := NewFixedCycle(100 * time.Microsecond)
	now := sim.Time(1000)
	if !p.ShouldProbe(now, 1) {
		t.Fatal("first probe denied")
	}
	p.OnProbe(now)
	if p.ShouldProbe(now.Add(50*time.Microsecond), 1) {
		t.Fatal("probed before cycle elapsed")
	}
	if !p.ShouldProbe(now.Add(100*time.Microsecond), 1) {
		t.Fatal("probe denied after cycle")
	}
}

func TestAvgLatencyAdapts(t *testing.T) {
	p := NewAvgLatency()
	now := sim.Time(time.Second)
	// Feed completions with 80us latency.
	for i := 0; i < 100; i++ {
		at := now.Add(time.Duration(i) * time.Microsecond)
		p.OnDetected(nvme.OpRead, at-sim.Time(80*time.Microsecond), at)
	}
	if got := p.avg(); got < 79*time.Microsecond || got > 81*time.Microsecond {
		t.Fatalf("avg = %v, want ~80us", got)
	}
	p.OnProbe(now)
	if p.ShouldProbe(now.Add(40*time.Microsecond), 1) {
		t.Fatal("probed before avg elapsed")
	}
	if !p.ShouldProbe(now.Add(85*time.Microsecond), 1) {
		t.Fatal("probe denied after avg elapsed")
	}
}

func TestAvgLatencyWindowExpires(t *testing.T) {
	p := NewAvgLatency()
	p.OnDetected(nvme.OpRead, 0, sim.Time(100*time.Microsecond))
	// 2 seconds later all buckets rotated out: fallback applies.
	later := sim.Time(2 * time.Second)
	p.OnDetected(nvme.OpRead, later-sim.Time(50*time.Microsecond), later)
	if got := p.avg(); got != 50*time.Microsecond {
		t.Fatalf("avg = %v, want 50us (old sample must have expired)", got)
	}
}

func newWorkloadPolicy(t *testing.T, yield time.Duration) *Workload {
	t.Helper()
	m, err := probe.Default()
	if err != nil {
		t.Fatal(err)
	}
	return NewWorkload(m, nil, yield)
}

func TestWorkloadProbeGating(t *testing.T) {
	p := newWorkloadPolicy(t, 0)
	now := sim.Time(10 * time.Millisecond)
	if p.ShouldProbe(now, 0) {
		t.Fatal("probe with no blocked IO")
	}
	// Fresh submissions (0-50us old): nothing should be predicted yet,
	// and the safety deadline hasn't passed (we just probed).
	p.OnProbe(now)
	// A single fresh read: expected completions within the next slice are
	// well under 1, so the model must hold off.
	p.OnSubmit(nvme.OpRead, now)
	if p.ShouldProbe(now.Add(5*time.Microsecond), 1) {
		t.Fatal("probed for one fresh read")
	}
	// A full queue of mature reads (75us mean service, ~120us old): the
	// model must call for a probe.
	for i := 0; i < 31; i++ {
		p.OnSubmit(nvme.OpRead, now)
	}
	if !p.ShouldProbe(now.Add(120*time.Microsecond), 32) {
		t.Fatal("no probe despite mature in-flight reads")
	}
}

func TestWorkloadSafetyDeadline(t *testing.T) {
	p := newWorkloadPolicy(t, 0)
	now := sim.Time(time.Millisecond)
	p.OnProbe(now)
	// No tracked submissions at all, but one op is blocked (model blind
	// spot): the safety deadline must force a probe eventually.
	if p.ShouldProbe(now.Add(50*time.Microsecond), 1) {
		t.Fatal("probed before safety deadline with zero prediction")
	}
	if !p.ShouldProbe(now.Add(250*time.Microsecond), 1) {
		t.Fatal("safety deadline did not force probe")
	}
}

func TestWorkloadYield(t *testing.T) {
	p := newWorkloadPolicy(t, 50*time.Microsecond)
	now := sim.Time(10 * time.Millisecond)
	// Idle: yield.
	if got := p.YieldFor(now, 0); got != 50*time.Microsecond {
		t.Fatalf("idle yield = %v", got)
	}
	// In-flight mature reads: must not yield (completions imminent).
	for i := 0; i < 8; i++ {
		p.OnSubmit(nvme.OpRead, now)
	}
	if got := p.YieldFor(now.Add(40*time.Microsecond), 8); got != 0 {
		t.Fatalf("yield = %v with imminent completions", got)
	}
	// Yield disabled.
	p2 := newWorkloadPolicy(t, 0)
	if p2.YieldFor(now, 0) != 0 {
		t.Fatal("disabled yield returned nonzero")
	}
}

func TestPolicyNamesAndOverheads(t *testing.T) {
	m, _ := probe.Default()
	ps := []Policy{NewAlwaysProbe(), NewFixedCycle(time.Microsecond), NewAvgLatency(), NewWorkload(m, nil, 0)}
	seen := map[string]bool{}
	for _, p := range ps {
		if p.Name() == "" || seen[p.Name()] {
			t.Fatalf("bad/duplicate name %q", p.Name())
		}
		seen[p.Name()] = true
		if p.Overhead() <= 0 {
			t.Fatalf("%s overhead = %v", p.Name(), p.Overhead())
		}
	}
}
