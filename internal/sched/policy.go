package sched

import (
	"time"

	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/probe"
	"github.com/patree/patree/internal/sim"
)

// Policy decides when the working thread probes the NVMe interface and
// when it may yield its CPU. Implementations are fed every submission and
// every detected completion so they can track the instantaneous workload.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// OnSubmit observes an I/O submission.
	OnSubmit(op nvme.Opcode, now sim.Time)
	// OnDetected observes a completion at detection time, with the
	// command's original submission time.
	OnDetected(op nvme.Opcode, submittedAt, now sim.Time)
	// OnProbe observes that a probe was just performed.
	OnProbe(now sim.Time)
	// OnAdmit observes that n operations entered the admission queue
	// since the last drain; a batch lands as one call. Policies may use
	// it to cut a yield short when fresh work arrives.
	OnAdmit(n int, now sim.Time)
	// ShouldProbe reports whether to probe now, given the number of
	// I/O-blocked operations.
	ShouldProbe(now sim.Time, ioBlocked int) bool
	// YieldFor returns how long the thread should yield its CPU when the
	// ready set is empty (0 = keep spinning).
	YieldFor(now sim.Time, ioBlocked int) time.Duration
	// Overhead is the CPU cost the tree charges (as scheduling work) per
	// ShouldProbe evaluation; the model-based policy pays for its
	// prediction, the trivial ones are nearly free.
	Overhead() time.Duration
}

// AlwaysProbe is the naive Algorithm 1 behaviour: probe on every loop
// iteration that has blocked I/O, never yield.
type AlwaysProbe struct{}

// NewAlwaysProbe returns the naive policy.
func NewAlwaysProbe() *AlwaysProbe { return &AlwaysProbe{} }

// Name implements Policy.
func (*AlwaysProbe) Name() string { return "naive" }

// OnSubmit implements Policy.
func (*AlwaysProbe) OnSubmit(nvme.Opcode, sim.Time) {}

// OnDetected implements Policy.
func (*AlwaysProbe) OnDetected(nvme.Opcode, sim.Time, sim.Time) {}

// OnProbe implements Policy.
func (*AlwaysProbe) OnProbe(sim.Time) {}

// OnAdmit implements Policy.
func (*AlwaysProbe) OnAdmit(int, sim.Time) {}

// ShouldProbe implements Policy.
func (*AlwaysProbe) ShouldProbe(_ sim.Time, ioBlocked int) bool { return ioBlocked > 0 }

// YieldFor implements Policy.
func (*AlwaysProbe) YieldFor(sim.Time, int) time.Duration { return 0 }

// Overhead implements Policy.
func (*AlwaysProbe) Overhead() time.Duration { return 20 * time.Nanosecond }

// FixedCycle probes at a fixed period, the strawman swept in Figure 10.
type FixedCycle struct {
	cycle     time.Duration
	lastProbe sim.Time
}

// NewFixedCycle returns a fixed-period policy.
func NewFixedCycle(cycle time.Duration) *FixedCycle {
	return &FixedCycle{cycle: cycle, lastProbe: -1 << 62}
}

// Name implements Policy.
func (p *FixedCycle) Name() string { return "fixed(" + p.cycle.String() + ")" }

// OnSubmit implements Policy.
func (*FixedCycle) OnSubmit(nvme.Opcode, sim.Time) {}

// OnDetected implements Policy.
func (*FixedCycle) OnDetected(nvme.Opcode, sim.Time, sim.Time) {}

// OnProbe implements Policy.
func (p *FixedCycle) OnProbe(now sim.Time) { p.lastProbe = now }

// OnAdmit implements Policy.
func (*FixedCycle) OnAdmit(int, sim.Time) {}

// ShouldProbe implements Policy.
func (p *FixedCycle) ShouldProbe(now sim.Time, ioBlocked int) bool {
	return ioBlocked > 0 && now.Sub(p.lastProbe) >= p.cycle
}

// YieldFor implements Policy.
func (*FixedCycle) YieldFor(sim.Time, int) time.Duration { return 0 }

// Overhead implements Policy.
func (*FixedCycle) Overhead() time.Duration { return 20 * time.Nanosecond }

// AvgLatency probes every avg(t) µs where avg(t) is the mean I/O
// completion latency over the last second — the first strawman of §V-B.
// The sliding window is implemented as rotating 100ms buckets.
type AvgLatency struct {
	buckets   [10]struct{ sum, count float64 }
	curBucket int64
	lastProbe sim.Time
	fallback  time.Duration
}

// NewAvgLatency returns the average-latency policy.
func NewAvgLatency() *AvgLatency {
	return &AvgLatency{lastProbe: -1 << 62, fallback: 100 * time.Microsecond}
}

// Name implements Policy.
func (*AvgLatency) Name() string { return "avg-latency" }

// OnSubmit implements Policy.
func (*AvgLatency) OnSubmit(nvme.Opcode, sim.Time) {}

const avgBucketWidth = 100 * time.Millisecond

// OnDetected implements Policy.
func (p *AvgLatency) OnDetected(_ nvme.Opcode, submittedAt, now sim.Time) {
	b := int64(now) / int64(avgBucketWidth)
	if b != p.curBucket {
		// Zero every bucket that rotated past since the last sample.
		steps := b - p.curBucket
		if steps > int64(len(p.buckets)) {
			steps = int64(len(p.buckets))
		}
		for i := int64(1); i <= steps; i++ {
			idx := (p.curBucket + i) % int64(len(p.buckets))
			p.buckets[idx] = struct{ sum, count float64 }{}
		}
		p.curBucket = b
	}
	idx := b % int64(len(p.buckets))
	p.buckets[idx].sum += float64(now.Sub(submittedAt))
	p.buckets[idx].count++
}

// OnProbe implements Policy.
func (p *AvgLatency) OnProbe(now sim.Time) { p.lastProbe = now }

// OnAdmit implements Policy.
func (*AvgLatency) OnAdmit(int, sim.Time) {}

// avg returns the windowed mean completion latency.
func (p *AvgLatency) avg() time.Duration {
	var sum, count float64
	for _, b := range p.buckets {
		sum += b.sum
		count += b.count
	}
	if count == 0 {
		return p.fallback
	}
	return time.Duration(sum / count)
}

// ShouldProbe implements Policy.
func (p *AvgLatency) ShouldProbe(now sim.Time, ioBlocked int) bool {
	return ioBlocked > 0 && now.Sub(p.lastProbe) >= p.avg()
}

// YieldFor implements Policy.
func (*AvgLatency) YieldFor(sim.Time, int) time.Duration { return 0 }

// Overhead implements Policy.
func (*AvgLatency) Overhead() time.Duration { return 40 * time.Nanosecond }

// Workload is the workload-aware policy of Algorithm 2: it probes when
// the linear model predicts at least one completion is (or is imminently)
// available, and yields the CPU when the ready set is empty and the model
// predicts no completion within the yield granularity.
type Workload struct {
	model   *probe.Model
	tracker *probe.Tracker
	// YieldGranularity is the t µs of Algorithm 2; zero disables yielding
	// (the Figure 13 "without CPU yielding" configuration).
	yieldGranularity time.Duration
	// safety is a probe-deadline backstop: if the model mispredicts, we
	// still probe after this interval so no completion waits unboundedly.
	// (Implementation addition, see DESIGN.md; it fires rarely.)
	safety time.Duration
	// batch is the expected-available count that makes a probe worth its
	// driver interference; minInterval bounds the probe rate when load is
	// light so single completions are still detected promptly.
	batch       float64
	minInterval time.Duration
	lastProbe   sim.Time
	vecBuf      []float64

	// admissionAware makes a fresh admission suppress yielding for one
	// safety interval, so a batch landing right as the ready set drains is
	// picked up immediately instead of after a full yield quantum. Off by
	// default: the simulated experiments predate admission signals and
	// must keep byte-identical schedules.
	admissionAware bool
	lastAdmit      sim.Time

	// acc, when enabled, scores the model's predictions against observed
	// completion times (probe introspection). Pure observation: it never
	// changes probe or yield decisions.
	acc *probe.Accuracy
}

// NewWorkload builds the workload-aware policy around a trained model.
func NewWorkload(m *probe.Model, tr *probe.Tracker, yieldGranularity time.Duration) *Workload {
	if tr == nil {
		tr = probe.NewTracker(probe.DefaultWindow, m.Slices())
	}
	return &Workload{
		model:            m,
		tracker:          tr,
		yieldGranularity: yieldGranularity,
		safety:           200 * time.Microsecond,
		batch:            4,
		minInterval:      25 * time.Microsecond,
		lastProbe:        -1 << 62,
		lastAdmit:        -1 << 62,
		vecBuf:           make([]float64, 2*m.Slices()),
	}
}

// Name implements Policy.
func (*Workload) Name() string { return "workload-aware" }

// SetBatch adjusts the expected-available threshold that makes a probe
// worth its driver interference (ablation studies; default 4).
func (p *Workload) SetBatch(b float64) {
	if b < 1 {
		b = 1
	}
	p.batch = b
}

// SetSafety adjusts the probe-deadline backstop. The real-time backend
// uses a tight deadline (its probes are cheap host work); the simulated
// experiments keep the default 200µs so the model, not the backstop,
// drives probing.
func (p *Workload) SetSafety(d time.Duration) { p.safety = d }

// Tracker exposes the tracker (tests and the dedicated-poller variant).
func (p *Workload) Tracker() *probe.Tracker { return p.tracker }

// EnableAccuracy starts scoring the model's completion-time predictions
// (see probe.Accuracy) and returns the tracker. Idempotent.
func (p *Workload) EnableAccuracy() *probe.Accuracy {
	if p.acc == nil {
		p.acc = probe.NewAccuracy()
	}
	return p.acc
}

// Accuracy returns the prediction-error tracker, or nil when disabled.
func (p *Workload) Accuracy() *probe.Accuracy { return p.acc }

// OnSubmit implements Policy.
func (p *Workload) OnSubmit(op nvme.Opcode, now sim.Time) {
	p.tracker.OnSubmit(op, now)
	if p.acc != nil {
		p.acc.Expect(op, now, now.Add(p.predictLatency(op, now)))
	}
}

// predictLatency derives the model-implied completion latency for an I/O
// submitted now: the model estimates the per-slice completion rate, and
// with k same-class I/Os already outstanding the new one is expected
// after (k+1)/rate. A zero rate (cold model, empty window) falls back to
// the tracker window; the result is clamped to [1µs, 100ms] so a wild
// misprediction scores as a large-but-finite error.
func (p *Workload) predictLatency(op nvme.Opcode, now sim.Time) time.Duration {
	p.tracker.FillVector(p.vecBuf, now, 0)
	w0, r0 := p.model.Predict(p.vecBuf)
	wOut, rOut := p.tracker.Outstanding(now)
	pred, out := r0, rOut
	if op == nvme.OpWrite {
		pred, out = w0, wOut
	}
	if out < 1 {
		out = 1 // the tracker already counts this submission
	}
	var lat time.Duration
	if pred <= 0 {
		lat = probe.DefaultWindow
	} else {
		// pred completions per slice → out/pred slices until this one.
		lat = time.Duration(float64(out) / pred * float64(p.tracker.SliceDur()))
	}
	if lat < time.Microsecond {
		lat = time.Microsecond
	}
	if lat > 100*time.Millisecond {
		lat = 100 * time.Millisecond
	}
	return lat
}

// OnDetected implements Policy.
func (p *Workload) OnDetected(op nvme.Opcode, submittedAt, now sim.Time) {
	p.tracker.OnComplete(op, submittedAt)
	if p.acc != nil {
		p.acc.Observe(op, now)
	}
}

// OnProbe implements Policy.
func (p *Workload) OnProbe(now sim.Time) { p.lastProbe = now }

// SetAdmissionAware toggles admission-aware yield suppression (see the
// field comment). The real-time backend turns it on; simulated
// experiments leave it off.
func (p *Workload) SetAdmissionAware(on bool) { p.admissionAware = on }

// OnAdmit implements Policy.
func (p *Workload) OnAdmit(_ int, now sim.Time) {
	if p.admissionAware {
		p.lastAdmit = now
	}
}

// ShouldProbe implements Policy: probe when the model predicts completed
// I/Os are available to reap (Algorithm 2 lines 6–8). The model estimates
// the per-slice completion rate (w0, r0) = T·β; the number available
// since the last probe is rate × elapsed. Probing is worth its driver
// interference when a small batch has accumulated, or after a modest
// interval when at least one completion is expected; the safety deadline
// bounds mispredictions.
func (p *Workload) ShouldProbe(now sim.Time, ioBlocked int) bool {
	if ioBlocked == 0 {
		return false
	}
	elapsed := now.Sub(p.lastProbe)
	if elapsed >= p.safety {
		return true
	}
	p.tracker.FillVector(p.vecBuf, now, 0)
	w0, r0 := p.model.Predict(p.vecBuf)
	rate := (w0 + r0) / float64(p.tracker.SliceDur()) // completions per ns
	available := rate * float64(elapsed)
	if available >= p.batch {
		return true
	}
	return available >= 1 && elapsed >= p.minInterval
}

// YieldFor implements Policy (Algorithm 2 lines 9–11): with the feature
// vector shifted t µs into the future, yield when the completions
// expected within the yield granularity fall short of a probe batch —
// spinning would only wait for work the probe gate will not reap yet, so
// sleeping loses nothing and saves the CPU (Figure 13).
func (p *Workload) YieldFor(now sim.Time, ioBlocked int) time.Duration {
	if p.yieldGranularity <= 0 {
		return 0
	}
	if p.admissionAware && now.Sub(p.lastAdmit) < p.safety {
		// Work just landed; stay hot rather than parking for a quantum.
		return 0
	}
	if ioBlocked == 0 {
		// Nothing in flight: nothing can become ready except new
		// admissions, which the yield period bounds.
		return p.yieldGranularity
	}
	shift := int(p.yieldGranularity / p.tracker.SliceDur())
	if shift < 1 {
		shift = 1
	}
	p.tracker.FillVector(p.vecBuf, now, shift)
	w0, r0 := p.model.Predict(p.vecBuf)
	expected := (w0 + r0) / float64(p.tracker.SliceDur()) * float64(p.yieldGranularity)
	if expected < p.batch {
		return p.yieldGranularity
	}
	return 0
}

// Overhead implements Policy: evaluating a 40-feature dot product.
func (*Workload) Overhead() time.Duration { return 150 * time.Nanosecond }
