// Package sched implements the scheduling machinery of §IV: the ready-
// operation queue (FIFO for the naive Algorithm 1, prioritized for the
// workload-aware Algorithm 2) and the probe-timing policies the paper
// compares in Figures 10–11 (always-probe, fixed cycle, average-latency,
// and the linear-model workload-aware policy with CPU yielding).
package sched

import "container/heap"

// Entry is a ready-state operation reference with its scheduling keys.
type Entry struct {
	// Seq is the admission sequence number; earlier operations get
	// priority (§IV-B intuition (a): reduce individual latency).
	Seq uint64
	// HoldsWrite reports whether the operation currently holds any write
	// latch; such operations are processed first so their latches release
	// sooner (§IV-B intuition (b): improve concurrency).
	HoldsWrite bool
	// Op is the operation payload (an opaque pointer for the tree).
	Op any
}

// ReadyQueue holds ready-state operations awaiting processing.
type ReadyQueue interface {
	Push(e Entry)
	// Pop removes the next operation per the queue's discipline.
	Pop() (Entry, bool)
	Len() int
}

// fifo is the naive discipline: strict admission order of pushes.
type fifo struct {
	items []Entry
	head  int
}

// NewFIFO returns a plain first-in-first-out ready queue.
func NewFIFO() ReadyQueue { return &fifo{} }

func (q *fifo) Push(e Entry) { q.items = append(q.items, e) }

func (q *fifo) Pop() (Entry, bool) {
	if q.head >= len(q.items) {
		return Entry{}, false
	}
	e := q.items[q.head]
	q.items[q.head] = Entry{}
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return e, true
}

func (q *fifo) Len() int { return len(q.items) - q.head }

// prioQueue orders by (HoldsWrite desc, Seq asc).
type prioQueue []Entry

func (p prioQueue) Len() int { return len(p) }
func (p prioQueue) Less(i, j int) bool {
	if p[i].HoldsWrite != p[j].HoldsWrite {
		return p[i].HoldsWrite
	}
	return p[i].Seq < p[j].Seq
}
func (p prioQueue) Swap(i, j int) { p[i], p[j] = p[j], p[i] }
func (p *prioQueue) Push(x any)   { *p = append(*p, x.(Entry)) }
func (p *prioQueue) Pop() any {
	old := *p
	n := len(old)
	e := old[n-1]
	old[n-1] = Entry{}
	*p = old[:n-1]
	return e
}

type prio struct{ h prioQueue }

// NewPriority returns the prioritized ready queue of §IV-B.
func NewPriority() ReadyQueue { return &prio{} }

func (q *prio) Push(e Entry) { heap.Push(&q.h, e) }

func (q *prio) Pop() (Entry, bool) {
	if len(q.h) == 0 {
		return Entry{}, false
	}
	return heap.Pop(&q.h).(Entry), true
}

func (q *prio) Len() int { return len(q.h) }
