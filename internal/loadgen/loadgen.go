// Package loadgen drives a patree.Store — embedded or over the wire —
// with closed- and open-loop workloads and records
// coordinated-omission-safe latency.
//
// The closed-loop driver is the classic benchmark shape: N workers
// issuing back-to-back operations, each latency measured from issue to
// completion. It measures the store's capacity but, like every closed
// loop, coordinates with the system under test: when the store stalls,
// the workers stop offering load, so the stall barely shows in the
// percentiles.
//
// The open-loop driver avoids that trap. Each simulated client has its
// own arrival process (Poisson, at rate/clients per second) whose
// intended arrival times march forward independently of how the store
// is doing, and every latency is measured from the *intended* arrival
// time — not from when the stalled client finally got to issue the
// operation. A one-second server stall therefore shows up as what it
// is: a pile of operations with near-one-second latencies, exactly as
// HdrHistogram's coordinated-omission correction would reconstruct.
// Thousands of simulated clients are multiplexed over however many
// connections the Store implementation pools underneath.
package loadgen

import (
	"fmt"
	"sync"
	"time"

	patree "github.com/patree/patree"
	"github.com/patree/patree/internal/metrics"
	"github.com/patree/patree/internal/sim"
	"github.com/patree/patree/internal/workload"
)

// Mode selects the driver shape.
type Mode string

const (
	// Closed runs Clients workers back-to-back (capacity probe).
	Closed Mode = "closed"
	// Open runs Clients independent arrival processes at Rate total
	// ops/sec with CO-safe latency recording.
	Open Mode = "open"
)

// Config parameterizes one load-generation run.
type Config struct {
	// Store is the system under test. Not closed by the run.
	Store patree.Store
	// Mode selects closed- or open-loop driving (default Closed).
	Mode Mode
	// Clients is the number of workers (closed) or simulated arrival
	// processes (open). Default 64.
	Clients int
	// Rate is the total intended throughput in ops/sec, split evenly
	// across clients. Open loop only; required there.
	Rate float64
	// Duration bounds the measured phase (default 5s).
	Duration time.Duration
	// Keys is the keyspace size (default 100_000). Keys are 1-based so
	// key 0 never appears.
	Keys uint64
	// Preload inserts keys [1, Preload] before measuring (default Keys).
	// Set negative to skip preloading entirely.
	Preload int64
	// Theta is the Zipf skew over the keyspace (default 0.99, the YCSB
	// default; 0 = uniform).
	Theta float64
	// ValueSize is the payload size for writes (default 100 bytes).
	ValueSize int
	// GetPct/PutPct/ScanPct is the operation mix in percent; the
	// remainder after Get+Put+Scan goes to Update. Defaults 90/10/0.
	GetPct, PutPct, ScanPct int
	// ScanLimit bounds staged scans (default 16).
	ScanLimit int
	// Pipeline is the closed-loop batch depth: each worker stages this
	// many operations per Batch commit (default 1 = plain blocking ops).
	Pipeline int
	// Issuers is the number of goroutines the open loop multiplexes its
	// simulated clients over (default 4). Thousands of sleeping
	// goroutines would cost a scheduler wakeup per operation; a few
	// issuers draining every due arrival as one pipelined burst of async
	// operations keeps the arrival processes and the latency accounting
	// identical at a fraction of the coordination cost.
	Issuers int
	// Seed makes key and arrival sequences reproducible (default 1).
	Seed uint64
}

func (c *Config) fill() error {
	if c.Store == nil {
		return fmt.Errorf("loadgen: Config.Store is required")
	}
	if c.Mode == "" {
		c.Mode = Closed
	}
	if c.Mode != Closed && c.Mode != Open {
		return fmt.Errorf("loadgen: unknown mode %q", c.Mode)
	}
	if c.Clients <= 0 {
		c.Clients = 64
	}
	if c.Mode == Open && c.Rate <= 0 {
		return fmt.Errorf("loadgen: open loop requires Rate > 0")
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Keys == 0 {
		c.Keys = 100_000
	}
	if c.Preload == 0 {
		c.Preload = int64(c.Keys)
	}
	if c.Theta == 0 {
		c.Theta = 0.99
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 100
	}
	if c.GetPct == 0 && c.PutPct == 0 && c.ScanPct == 0 {
		c.GetPct, c.PutPct = 90, 10
	}
	if c.GetPct+c.PutPct+c.ScanPct > 100 {
		return fmt.Errorf("loadgen: operation mix exceeds 100%%")
	}
	if c.ScanLimit <= 0 {
		c.ScanLimit = 16
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 1
	}
	if c.Issuers <= 0 {
		c.Issuers = 4
	}
	if c.Issuers > c.Clients {
		c.Issuers = c.Clients
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// Report is the outcome of one run.
type Report struct {
	Mode     Mode
	Clients  int
	Ops      uint64 // completed operations (including failed ones)
	Errors   uint64 // operations that returned an error
	Duration time.Duration

	// Throughput is completed ops per second of wall time.
	Throughput float64
	// Latency percentiles. Open loop: measured from intended arrival
	// (coordinated-omission-safe). Closed loop: from issue.
	P50, P90, P95, P99, Max, Mean time.Duration

	// Hist is the merged latency histogram, for custom percentiles.
	Hist *metrics.Histogram
}

// String renders the report for logs.
func (r *Report) String() string {
	return fmt.Sprintf("%s loop, %d clients: %.0f ops/s (%d ops, %d errors) p50=%v p95=%v p99=%v max=%v",
		r.Mode, r.Clients, r.Throughput, r.Ops, r.Errors, r.P50, r.P95, r.P99, r.Max)
}

// worker is one driver goroutine's private state. In closed mode it is
// one client; in open mode it multiplexes nclients simulated clients.
type worker struct {
	cfg      *Config
	rng      *sim.RNG
	zipf     *workload.Zipf
	val      []byte
	hist     *metrics.Histogram
	nclients int
	ops      uint64
	errs     uint64
}

func newWorker(cfg *Config, id int, zipf *workload.Zipf) *worker {
	rng := sim.NewRNG(cfg.Seed + uint64(id)*0x9e3779b97f4a7c15)
	w := &worker{
		cfg:      cfg,
		rng:      rng,
		zipf:     zipf.Clone(rng.Split()),
		val:      make([]byte, cfg.ValueSize),
		hist:     metrics.NewHistogram(),
		nclients: 1,
	}
	rng.FillBytes(w.val)
	return w
}

// key draws the next Zipf-popular key (1-based).
func (w *worker) key() uint64 { return w.zipf.Next() + 1 }

// op issues one operation from the configured mix and returns its error.
func (w *worker) op(s patree.Store) error {
	w.ops++
	p := w.rng.Intn(100)
	var err error
	switch {
	case p < w.cfg.GetPct:
		_, _, err = s.Get(w.key())
	case p < w.cfg.GetPct+w.cfg.PutPct:
		err = s.Put(w.key(), w.val)
	case p < w.cfg.GetPct+w.cfg.PutPct+w.cfg.ScanPct:
		lo := w.key()
		_, err = s.Scan(lo, lo+uint64(w.cfg.ScanLimit), w.cfg.ScanLimit)
	default:
		_, err = s.Update(w.key(), w.val)
	}
	if err != nil {
		w.errs++
	}
	return err
}

// stageOp stages one mixed operation on a batch.
func (w *worker) stageOp(b *patree.Batch) {
	w.ops++
	p := w.rng.Intn(100)
	switch {
	case p < w.cfg.GetPct:
		b.Get(w.key())
	case p < w.cfg.GetPct+w.cfg.PutPct:
		b.Put(w.key(), w.val)
	case p < w.cfg.GetPct+w.cfg.PutPct+w.cfg.ScanPct:
		lo := w.key()
		b.Scan(lo, lo+uint64(w.cfg.ScanLimit), w.cfg.ScanLimit)
	default:
		b.Update(w.key(), w.val)
	}
}

// Preload bulk-inserts keys [1, n] through store in batches. Exposed so
// benchmark commands can preload once and measure many times.
func Preload(store patree.Store, n int64, valueSize int, seed uint64) error {
	if n <= 0 {
		return nil
	}
	rng := sim.NewRNG(seed)
	val := make([]byte, valueSize)
	rng.FillBytes(val)
	const chunk = 256
	for lo := int64(1); lo <= n; lo += chunk {
		b := store.NewBatch()
		for k := lo; k < lo+chunk && k <= n; k++ {
			b.Put(uint64(k), val)
		}
		if err := b.Commit(); err != nil {
			b.Release()
			return fmt.Errorf("loadgen: preload commit: %w", err)
		}
		err := b.Wait()
		b.Release()
		if err != nil {
			return fmt.Errorf("loadgen: preload: %w", err)
		}
	}
	return nil
}

// Run executes the configured workload and returns its report.
func Run(cfg Config) (*Report, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if cfg.Preload > 0 {
		if err := Preload(cfg.Store, cfg.Preload, cfg.ValueSize, cfg.Seed); err != nil {
			return nil, err
		}
	}
	// One Zipf constant set for the whole run: zetaStatic is O(Keys) and
	// thousands of workers would otherwise each recompute it.
	zipf := workload.NewZipf(sim.NewRNG(cfg.Seed), cfg.Keys, cfg.Theta)
	nworkers := cfg.Clients
	if cfg.Mode == Open {
		nworkers = cfg.Issuers
	}
	workers := make([]*worker, nworkers)
	for i := range workers {
		workers[i] = newWorker(&cfg, i, zipf)
	}
	if cfg.Mode == Open {
		// Spread the simulated clients across the issuers.
		for i := range workers {
			w := workers[i]
			w.nclients = cfg.Clients / nworkers
			if i < cfg.Clients%nworkers {
				w.nclients++
			}
		}
	}

	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			if cfg.Mode == Open {
				w.runOpen(start, deadline)
			} else {
				w.runClosed(deadline)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{Mode: cfg.Mode, Clients: cfg.Clients, Duration: elapsed, Hist: metrics.NewHistogram()}
	for _, w := range workers {
		rep.Ops += w.ops
		rep.Errors += w.errs
		rep.Hist.Merge(w.hist)
	}
	rep.Throughput = float64(rep.Ops) / elapsed.Seconds()
	rep.P50 = rep.Hist.Percentile(50)
	rep.P90 = rep.Hist.Percentile(90)
	rep.P95 = rep.Hist.Percentile(95)
	rep.P99 = rep.Hist.Percentile(99)
	rep.Max = rep.Hist.Max()
	rep.Mean = rep.Hist.Mean()
	return rep, nil
}

// runClosed issues operations back-to-back until the deadline. With
// Pipeline > 1 each iteration commits one batch of that depth and
// records the per-batch latency once per operation (every operation in
// the batch experienced it).
func (w *worker) runClosed(deadline time.Time) {
	s := w.cfg.Store
	for time.Now().Before(deadline) {
		if w.cfg.Pipeline == 1 {
			t0 := time.Now()
			w.op(s)
			w.hist.Record(time.Since(t0))
			continue
		}
		b := s.NewBatch()
		for i := 0; i < w.cfg.Pipeline; i++ {
			w.stageOp(b)
		}
		t0 := time.Now()
		if err := b.Commit(); err != nil {
			w.errs += uint64(w.cfg.Pipeline)
			b.Release()
			continue
		}
		if err := b.Wait(); err != nil {
			// Count every failed member, not just the first.
			for i := 0; i < w.cfg.Pipeline; i++ {
				if b.Err(i) != nil {
					w.errs++
				}
			}
		}
		lat := time.Since(t0)
		b.Release()
		for i := 0; i < w.cfg.Pipeline; i++ {
			w.hist.Record(lat)
		}
	}
}

// issueAsync admits one mixed operation asynchronously.
func (w *worker) issueAsync(s patree.Store) (*patree.Handle, error) {
	w.ops++
	p := w.rng.Intn(100)
	switch {
	case p < w.cfg.GetPct:
		return s.GetAsync(w.key())
	case p < w.cfg.GetPct+w.cfg.PutPct:
		return s.PutAsync(w.key(), w.val)
	case p < w.cfg.GetPct+w.cfg.PutPct+w.cfg.ScanPct:
		lo := w.key()
		return s.ScanAsync(lo, lo+uint64(w.cfg.ScanLimit), w.cfg.ScanLimit)
	default:
		return s.UpdateAsync(w.key(), w.val)
	}
}

// inflight is one issued open-loop operation awaiting harvest.
type inflight struct {
	h        *patree.Handle
	intended time.Time
	client   int
}

// runOpen drives w.nclients simulated clients, each with its own
// Poisson arrival process at rate/clients per second. The intended
// arrival clocks advance by exponential inter-arrival gaps regardless
// of how the store is doing, and every latency is completion minus
// *intended* arrival — so an operation that could only be issued late,
// because its client's previous one was stuck behind a server stall,
// is charged the full queueing delay it actually suffered. That is the
// coordinated-omission-safe measurement.
//
// The clients are multiplexed, not one goroutine each: every loop
// iteration issues an async operation for every idle client whose
// arrival is due (one pipelined burst on the wire) and then harvests
// all of them. A client is never given a second in-flight operation;
// overdue arrivals issue back-to-back, exactly as a dedicated
// goroutine would, but a burst of N operations costs a handful of
// scheduler wakeups instead of 2N.
func (w *worker) runOpen(start, deadline time.Time) {
	s := w.cfg.Store
	mean := time.Duration(float64(time.Second) * float64(w.cfg.Clients) / w.cfg.Rate)
	next := make([]time.Time, w.nclients)
	for i := range next {
		// Desynchronize the first arrivals across clients.
		next[i] = start.Add(time.Duration(w.rng.Float64() * float64(mean)))
	}
	fl := make([]inflight, 0, w.nclients)
	done := 0 // clients whose arrival process passed the deadline
	for done < w.nclients {
		now := time.Now()
		for i := range next {
			if next[i].IsZero() {
				continue
			}
			if next[i].After(deadline) {
				next[i] = time.Time{}
				done++
				continue
			}
			if next[i].After(now) {
				continue
			}
			h, err := w.issueAsync(s)
			if err != nil {
				w.errs++
				next[i] = next[i].Add(w.rng.Exp(mean))
				continue
			}
			fl = append(fl, inflight{h: h, intended: next[i], client: i})
			next[i] = time.Time{} // busy until harvested
		}
		if len(fl) > 0 {
			// Harvest the whole burst. The first wait may park; by the
			// time it returns the pipelined rest have usually completed
			// too and their waits are token reads.
			for _, f := range fl {
				if f.h.Err() != nil {
					w.errs++
				}
				f.h.Release()
				w.hist.Record(time.Since(f.intended))
				next[f.client] = f.intended.Add(w.rng.Exp(mean))
			}
			fl = fl[:0]
			continue
		}
		// Nothing in flight and nothing due: sleep to the earliest
		// arrival.
		wake := time.Time{}
		for _, t := range next {
			if !t.IsZero() && (wake.IsZero() || t.Before(wake)) {
				wake = t
			}
		}
		if wake.IsZero() {
			return
		}
		if d := wake.Sub(now); d > 0 {
			time.Sleep(d)
		}
	}
}
