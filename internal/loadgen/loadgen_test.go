package loadgen

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	patree "github.com/patree/patree"
)

// stallStore is a Store whose every operation completes after a fixed
// service delay, simulating a saturated server. It resolves handles
// from timer goroutines like a real network client would.
type stallStore struct {
	delay time.Duration
}

func (s *stallStore) resolveLater(res patree.Result) *patree.Handle {
	h, resolve := patree.NewRemoteHandle()
	time.AfterFunc(s.delay, func() { resolve(res) })
	return h
}

func (s *stallStore) Put(key uint64, value []byte) error {
	h := s.resolveLater(patree.Result{})
	defer h.Release()
	return h.Err()
}

func (s *stallStore) Get(key uint64) ([]byte, bool, error) {
	h := s.resolveLater(patree.Result{Found: true, Value: []byte("v")})
	defer h.Release()
	return h.Value(), h.Found(), h.Err()
}

func (s *stallStore) Update(key uint64, value []byte) (bool, error) {
	h := s.resolveLater(patree.Result{Found: true})
	defer h.Release()
	return h.Found(), h.Err()
}

func (s *stallStore) Delete(key uint64) (bool, error) {
	h := s.resolveLater(patree.Result{})
	defer h.Release()
	return h.Found(), h.Err()
}

func (s *stallStore) Scan(lo, hi uint64, limit int) ([]patree.KV, error) {
	h := s.resolveLater(patree.Result{})
	defer h.Release()
	return h.Pairs(), h.Err()
}

func (s *stallStore) Sync() error {
	h := s.resolveLater(patree.Result{})
	defer h.Release()
	return h.Err()
}

func (s *stallStore) PutAsync(key uint64, value []byte) (*patree.Handle, error) {
	return s.resolveLater(patree.Result{}), nil
}

func (s *stallStore) GetAsync(key uint64) (*patree.Handle, error) {
	return s.resolveLater(patree.Result{Found: true, Value: []byte("v")}), nil
}

func (s *stallStore) UpdateAsync(key uint64, value []byte) (*patree.Handle, error) {
	return s.resolveLater(patree.Result{Found: true}), nil
}

func (s *stallStore) DeleteAsync(key uint64) (*patree.Handle, error) {
	return s.resolveLater(patree.Result{}), nil
}

func (s *stallStore) ScanAsync(lo, hi uint64, limit int) (*patree.Handle, error) {
	return s.resolveLater(patree.Result{}), nil
}

func (s *stallStore) SyncAsync() (*patree.Handle, error) {
	return s.resolveLater(patree.Result{}), nil
}

type stallCommitter struct{ s *stallStore }

func (c stallCommitter) CommitStaged(ops []patree.BatchOp, resolve []func(patree.Result), try bool) error {
	res := make([]func(patree.Result), len(resolve))
	copy(res, resolve)
	time.AfterFunc(c.s.delay, func() {
		for _, r := range res {
			r(patree.Result{Found: true})
		}
	})
	return nil
}

func (s *stallStore) NewBatch() *patree.Batch { return patree.NewRemoteBatch(stallCommitter{s}) }
func (s *stallStore) Close() error            { return nil }

var _ patree.Store = (*stallStore)(nil)

// TestOpenLoopCoordinatedOmissionSafe pins the property the open-loop
// driver exists for: latency is measured from the INTENDED arrival, not
// from issue. The store serves every op in a fixed 5ms; each simulated
// client wants an op every ~2ms, so backlog grows and intended arrivals
// fall ever further behind. A coordinated-omission-blind harness would
// report ~5ms at every percentile; the safe one must show queueing
// delay far above the service time in the tail.
func TestOpenLoopCoordinatedOmissionSafe(t *testing.T) {
	store := &stallStore{delay: 5 * time.Millisecond}
	rep, err := Run(Config{
		Store:    store,
		Mode:     Open,
		Clients:  20,
		Rate:     10_000, // 0.5ms mean gap per client: far beyond capacity
		Duration: 1 * time.Second,
		Keys:     1000,
		Preload:  -1,
		GetPct:   100,
		Issuers:  2,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops == 0 {
		t.Fatal("no ops completed")
	}
	if rep.Errors != 0 {
		t.Fatalf("%d errors", rep.Errors)
	}
	// Service time is 5ms. With one outstanding op per client, each
	// client completes ~200 ops/s against a 500 ops/s intention: by the
	// end of the second the intended arrivals trail by hundreds of ms.
	if rep.P99 < 50*time.Millisecond {
		t.Fatalf("p99 = %v, want >> 5ms service time: the driver is hiding queueing delay (coordinated omission)", rep.P99)
	}
	if rep.P50 < 2*rep.Mean/10 {
		t.Logf("p50=%v mean=%v", rep.P50, rep.Mean)
	}
	t.Logf("%s", rep.String())
}

// TestClosedLoopRuns smoke-tests the closed-loop driver against the
// fake store, including pipelined batches.
func TestClosedLoopRuns(t *testing.T) {
	store := &stallStore{delay: 100 * time.Microsecond}
	rep, err := Run(Config{
		Store:    store,
		Mode:     Closed,
		Clients:  4,
		Duration: 300 * time.Millisecond,
		Keys:     100,
		Preload:  -1,
		Pipeline: 8,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops == 0 || rep.Errors != 0 {
		t.Fatalf("ops=%d errors=%d", rep.Ops, rep.Errors)
	}
}

// TestBenchRoundTrip pins the github-action-benchmark JSON shape and
// the Write/Read round trip.
func TestBenchRoundTrip(t *testing.T) {
	rep := &Report{
		Mode: Open, Clients: 10, Ops: 1000, Errors: 2,
		Duration: time.Second, Throughput: 1000,
		P50: time.Millisecond, P95: 2 * time.Millisecond,
		P99: 3 * time.Millisecond, Max: 4 * time.Millisecond,
	}
	entries := rep.BenchEntries("serving")
	names := map[string]bool{}
	for _, e := range entries {
		names[e.Name] = true
		if e.Name == "serving/throughput" {
			if e.Unit != "ops/s" || e.Value != 1000 {
				t.Fatalf("throughput entry = %+v", e)
			}
			if !strings.Contains(e.Extra, "10 clients") {
				t.Fatalf("throughput Extra = %q", e.Extra)
			}
		}
	}
	for _, want := range []string{"serving/throughput", "serving/p50", "serving/p95", "serving/p99", "serving/max"} {
		if !names[want] {
			t.Fatalf("missing entry %q in %v", want, entries)
		}
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteBench(path, entries); err != nil {
		t.Fatal(err)
	}
	// The file must be plain github-action-benchmark customSmallerIsBetter
	// style JSON: a top-level array of {name, unit, value}.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var generic []map[string]any
	if err := json.Unmarshal(raw, &generic); err != nil {
		t.Fatalf("not a JSON array of objects: %v", err)
	}
	back, err := ReadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(entries) {
		t.Fatalf("round trip lost entries: %d != %d", len(back), len(entries))
	}
	for i := range back {
		if back[i].Name != entries[i].Name || back[i].Value != entries[i].Value {
			t.Fatalf("entry %d mismatch: %+v != %+v", i, back[i], entries[i])
		}
	}
}

// TestCompareDirections pins the regression directions: lower
// throughput is a regression, higher latency is a regression, both
// within tolerance pass, and metrics missing from the baseline are
// skipped rather than failed.
func TestCompareDirections(t *testing.T) {
	base := []BenchEntry{
		{Name: "serving/throughput", Unit: "ops/s", Value: 100_000},
		{Name: "serving/p99", Unit: "us", Value: 10_000},
		{Name: "serving/max", Unit: "us", Value: 50_000},
	}
	cases := []struct {
		name    string
		current []BenchEntry
		regress bool
	}{
		{"throughput drop beyond tolerance", []BenchEntry{{Name: "serving/throughput", Unit: "ops/s", Value: 80_000}}, true},
		{"throughput drop within tolerance", []BenchEntry{{Name: "serving/throughput", Unit: "ops/s", Value: 90_000}}, false},
		{"throughput gain", []BenchEntry{{Name: "serving/throughput", Unit: "ops/s", Value: 140_000}}, false},
		{"p99 inflation beyond tolerance", []BenchEntry{{Name: "serving/p99", Unit: "us", Value: 12_000}}, true},
		{"p99 inflation within tolerance", []BenchEntry{{Name: "serving/p99", Unit: "us", Value: 11_000}}, false},
		{"p99 improvement", []BenchEntry{{Name: "serving/p99", Unit: "us", Value: 2_000}}, false},
		{"metric not in baseline", []BenchEntry{{Name: "serving/p50", Unit: "us", Value: 1}}, false},
		{"max is charted but never gated", []BenchEntry{{Name: "serving/max", Unit: "us", Value: 900_000}}, false},
	}
	for _, tc := range cases {
		regressions := Compare(tc.current, base, 0.15)
		if got := len(regressions) > 0; got != tc.regress {
			t.Errorf("%s: regressions = %v, want regress=%v", tc.name, regressions, tc.regress)
		}
	}
}

// TestBusyRetryEntry pins the wire flow-control series: rate =
// retransmits per delivered response, zero-safe, lower is better, and
// gated only against a baseline with a meaningful rate.
func TestBusyRetryEntry(t *testing.T) {
	e := BusyRetryEntry("serving/open", 150, 1000)
	if e.Name != "serving/open/busy_retry_rate" {
		t.Fatalf("name = %q", e.Name)
	}
	if e.Value != 0.15 {
		t.Fatalf("rate = %v, want 0.15", e.Value)
	}
	if z := BusyRetryEntry("serving/open", 0, 0); z.Value != 0 {
		t.Fatalf("zero-op rate = %v, want 0", z.Value)
	}

	name := e.Name
	cases := []struct {
		name    string
		base    float64
		cur     float64
		regress bool
	}{
		{"meaningful baseline, rate doubles", 0.10, 0.20, true},
		{"meaningful baseline, rate within tolerance", 0.10, 0.11, false},
		{"meaningful baseline, rate drops", 0.10, 0.01, false},
		{"near-zero baseline is charted but not gated", 0.001, 0.40, false},
		{"zero baseline skipped", 0, 0.40, false},
	}
	for _, tc := range cases {
		base := []BenchEntry{{Name: name, Unit: "retries/op", Value: tc.base}}
		cur := []BenchEntry{{Name: name, Unit: "retries/op", Value: tc.cur}}
		regressions := Compare(cur, base, 0.15)
		if got := len(regressions) > 0; got != tc.regress {
			t.Errorf("%s: regressions = %v, want regress=%v", tc.name, regressions, tc.regress)
		}
	}
}
