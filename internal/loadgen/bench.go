package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// BenchEntry is one measurement in the github-action-benchmark "custom
// JSON" format: a BENCH_*.json file is a flat array of these, so the
// serving tier's throughput and tail latencies chart as a trajectory
// across commits.
type BenchEntry struct {
	Name  string  `json:"name"`
	Unit  string  `json:"unit"`
	Value float64 `json:"value"`
	Extra string  `json:"extra,omitempty"`
}

// BenchEntries flattens a report into bench entries under prefix (e.g.
// "serving/open"). Latencies are emitted in microseconds.
func (r *Report) BenchEntries(prefix string) []BenchEntry {
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	extra := fmt.Sprintf("%s loop, %d clients, %d ops, %d errors", r.Mode, r.Clients, r.Ops, r.Errors)
	return []BenchEntry{
		{Name: prefix + "/throughput", Unit: "ops/s", Value: r.Throughput, Extra: extra},
		{Name: prefix + "/p50", Unit: "us", Value: us(r.P50)},
		{Name: prefix + "/p95", Unit: "us", Value: us(r.P95)},
		{Name: prefix + "/p99", Unit: "us", Value: us(r.P99)},
		{Name: prefix + "/max", Unit: "us", Value: us(r.Max)},
	}
}

// BusyRetryEntry builds the wire-level flow-control entry: BUSY-driven
// retransmits per delivered response. It charts the serving tier's
// backpressure trajectory next to throughput and tails — a rising rate
// means clients are burning round-trips re-offering refused work.
func BusyRetryEntry(prefix string, busyRetries, received uint64) BenchEntry {
	var rate float64
	if received > 0 {
		rate = float64(busyRetries) / float64(received)
	}
	return BenchEntry{
		Name:  prefix + "/busy_retry_rate",
		Unit:  "retries/op",
		Value: rate,
		Extra: fmt.Sprintf("%d retransmits / %d responses", busyRetries, received),
	}
}

// WriteBench writes entries as a BENCH_*.json file.
func WriteBench(path string, entries []BenchEntry) error {
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBench loads a BENCH_*.json file.
func ReadBench(path string) ([]BenchEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []BenchEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("loadgen: %s: %w", path, err)
	}
	return entries, nil
}

// biggerIsBetter reports the improvement direction of a metric by name:
// throughput counts up, everything else (latencies) counts down.
func biggerIsBetter(name string) bool {
	return strings.Contains(name, "throughput") || strings.Contains(name, "ops")
}

// minGatedBusyRate is the baseline busy_retry_rate below which the
// series is charted but not gated: a relative tolerance against a
// near-zero rate turns scheduler noise into spurious failures.
const minGatedBusyRate = 0.05

// Compare checks current against baseline and returns one human-readable
// line per regression beyond tolerance (e.g. 0.15 = 15%). Metrics
// missing from either side are skipped — the trajectory may legitimately
// gain or lose series across commits. "max" series are charted but
// never gated: the single worst sample is an extreme-value statistic
// with run-to-run variance far beyond any useful tolerance. The
// busy_retry_rate series (lower is better) gates only when the baseline
// itself shows a meaningful rate.
func Compare(current, baseline []BenchEntry, tolerance float64) []string {
	base := make(map[string]BenchEntry, len(baseline))
	for _, e := range baseline {
		base[e.Name] = e
	}
	var regressions []string
	for _, cur := range current {
		b, ok := base[cur.Name]
		if !ok || b.Value == 0 || strings.HasSuffix(cur.Name, "/max") {
			continue
		}
		if strings.HasSuffix(cur.Name, "/busy_retry_rate") && b.Value < minGatedBusyRate {
			continue
		}
		if biggerIsBetter(cur.Name) {
			if cur.Value < b.Value*(1-tolerance) {
				regressions = append(regressions,
					fmt.Sprintf("%s: %.1f %s vs baseline %.1f %s (-%.1f%%, tolerance %.0f%%)",
						cur.Name, cur.Value, cur.Unit, b.Value, b.Unit,
						100*(1-cur.Value/b.Value), 100*tolerance))
			}
		} else if cur.Value > b.Value*(1+tolerance) {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.1f %s vs baseline %.1f %s (+%.1f%%, tolerance %.0f%%)",
					cur.Name, cur.Value, cur.Unit, b.Value, b.Unit,
					100*(cur.Value/b.Value-1), 100*tolerance))
		}
	}
	return regressions
}
