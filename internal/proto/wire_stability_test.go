package proto

import (
	"bytes"
	"testing"
)

// TestWireStability pins the exact bytes of version-0 frames and the
// numeric values of every constant version 1 adds. A v0 frame encoded
// by this build must be bit-identical to one encoded before the
// handshake existed — old clients and servers parse by these offsets —
// and the new kind/flag bytes must never collide with or renumber the
// old ones.
func TestWireStability(t *testing.T) {
	// v0 Put frame: len=0x12 | id=0x0102030405060708 | kind=1 | key | value.
	frame := AppendFrame(nil, 0x0102030405060708, KindPut,
		append([]byte{0xEF, 0xBE, 0, 0, 0, 0, 0, 0}, []byte("v")...))
	want := []byte{
		0x12, 0x00, 0x00, 0x00, // length: 9 header + 8 key + 1 value
		0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, // id, little-endian
		0x01,                                           // KindPut
		0xEF, 0xBE, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // key
		'v',
	}
	if !bytes.Equal(frame, want) {
		t.Fatalf("v0 put frame drifted:\n got %x\nwant %x", frame, want)
	}

	// Kind values are wire-stable; KindHello extends, never renumbers.
	kinds := map[string]uint8{
		"Put": 1, "Get": 2, "Update": 3, "Delete": 4,
		"Scan": 5, "Sync": 6, "Batch": 7, "Hello": 8,
	}
	got := map[string]uint8{
		"Put": KindPut, "Get": KindGet, "Update": KindUpdate, "Delete": KindDelete,
		"Scan": KindScan, "Sync": KindSync, "Batch": KindBatch, "Hello": KindHello,
	}
	for name, w := range kinds {
		if got[name] != w {
			t.Errorf("Kind%s = %d, want %d (wire-stable)", name, got[name], w)
		}
	}

	// The span flag lives in bit 7, above every kind value, so a flagged
	// kind byte can never be mistaken for a different bare kind.
	if FlagSpan != 0x80 || KindMask != 0x7f {
		t.Fatalf("FlagSpan/KindMask = %#x/%#x, want 0x80/0x7f", FlagSpan, KindMask)
	}
	for name, k := range got {
		if k&FlagSpan != 0 {
			t.Errorf("Kind%s = %d collides with FlagSpan", name, k)
		}
		if (k|FlagSpan)&KindMask != k {
			t.Errorf("KindMask does not recover Kind%s from a flagged byte", name)
		}
	}
	if Version != 1 || HelloFlagTrace != 1 {
		t.Fatalf("Version/HelloFlagTrace = %d/%d, want 1/1", Version, HelloFlagTrace)
	}
}

// TestHelloRoundTrip pins the handshake frame layout and negotiation.
func TestHelloRoundTrip(t *testing.T) {
	frame := AppendHello(nil, 9, KindHello, Version, HelloFlagTrace)
	want := []byte{
		0x0b, 0x00, 0x00, 0x00, // length: 9 header + 2 body
		0x09, 0, 0, 0, 0, 0, 0, 0, // id
		0x08,       // KindHello
		0x01, 0x01, // version 1, HelloFlagTrace
	}
	if !bytes.Equal(frame, want) {
		t.Fatalf("hello frame drifted:\n got %x\nwant %x", frame, want)
	}
	body, err := ReadFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatal(err)
	}
	v, f, err := ParseHello(FrameBody(body))
	if err != nil || v != Version || f != HelloFlagTrace {
		t.Fatalf("ParseHello = (%d, %d, %v), want (1, 1, nil)", v, f, err)
	}
	if _, _, err := ParseHello([]byte{1}); err == nil {
		t.Fatal("short hello body must not parse")
	}

	// Negotiation: minimum version wins, unknown flags are dropped.
	if v, f := Negotiate(Version, HelloFlagTrace); v != 1 || f != HelloFlagTrace {
		t.Fatalf("Negotiate(1,trace) = (%d,%d), want (1,1)", v, f)
	}
	if v, f := Negotiate(99, 0xff); v != Version || f != HelloFlagTrace {
		t.Fatalf("Negotiate(99,0xff) = (%d,%d): future offers must clamp", v, f)
	}
	if v, f := Negotiate(0, HelloFlagTrace); v != 0 || f != 0 {
		t.Fatalf("Negotiate(0,trace) = (%d,%d): v0 carries no flags", v, f)
	}
}

// TestSplitSpan pins the trace-context prefix: a flagged frame's body
// starts with the u64 span id; an unflagged body passes through intact.
func TestSplitSpan(t *testing.T) {
	payload := []byte{0xAA, 0xBB}
	body := append([]byte{0x2A, 0, 0, 0, 0, 0, 0, 0}, payload...)
	kind, span, rest, ok := SplitSpan(KindGet|FlagSpan, body)
	if !ok || kind != KindGet || span != 0x2A || !bytes.Equal(rest, payload) {
		t.Fatalf("SplitSpan(flagged) = (%d, %d, %x, %v)", kind, span, rest, ok)
	}
	kind, span, rest, ok = SplitSpan(KindGet, body)
	if !ok || kind != KindGet || span != 0 || !bytes.Equal(rest, body) {
		t.Fatalf("SplitSpan(bare) = (%d, %d, %x, %v)", kind, span, rest, ok)
	}
	if _, _, _, ok := SplitSpan(KindGet|FlagSpan, []byte{1, 2}); ok {
		t.Fatal("flagged frame shorter than a span id must not parse")
	}
}
