// Package proto is the wire protocol shared by the PA-Tree server
// (internal/server) and the network client (package client): a compact
// length-prefixed binary framing with pipelined, out-of-order
// completion keyed by request id, plus the stable mapping between the
// public error taxonomy and protocol status codes.
//
// Every frame, in both directions, is
//
//	u32  length of the remainder (little-endian, < MaxFrame)
//	u64  request id (echoed verbatim in the response)
//	u8   kind (requests) / status (responses)
//	...  body
//
// Request bodies:
//
//	Put/Update: key u64 | value bytes (rest of frame)
//	Get/Delete: key u64
//	Scan:       lo u64 | hi u64 | limit i64
//	Sync:       (empty)
//	Batch:      flags u8 | count u32 | count × sub-op
//	            sub-op: kind u8 | body (Put/Update carry an explicit
//	            vlen u32 before the value, since they are not
//	            frame-delimited)
//
// Response bodies:
//
//	status OK, single op:  flags u8 (bit0 = found) | payload
//	                       (Get: value bytes; Scan: encoded pairs)
//	status OK, batch:      count u32 | count × (status u8 | flags u8 |
//	                       plen u32 | payload)
//	status != OK:          error message (optional, UTF-8)
//
// Encoded pairs: count u32 | count × (key u64 | vlen u32 | value).
//
// A batch frame is the protocol's atomicity unit: the server admits it
// through Batch.TryCommit, so a cross-shard batch applies all-or-
// nothing and a full admission ring yields one StatusBusy response for
// the whole frame with nothing admitted. StatusBusy is the wire form of
// ErrBacklog — flow control, never a dropped ack: the client backs off
// and retransmits the identical frame under the same request id.
//
// # Protocol versions and trace propagation
//
// The frames above are protocol version 0 and remain valid forever: a
// client that sends nothing else talks to every server, old or new.
// Version 1 adds an optional handshake and request-scoped trace
// propagation on top, negotiated so that neither side ever sends a
// frame its peer cannot parse:
//
//   - A Hello request (KindHello, body: version u8 | flags u8) offered
//     by the client right after dialing. A v1 server answers StatusOK
//     with the same body shape carrying the negotiated (minimum)
//     version and the intersection of the offered flags. A v0 server
//     answers StatusBadRequest ("unknown op kind"), which the client
//     treats as "version 0 negotiated" — the conversation continues in
//     plain v0 frames.
//   - After a handshake that negotiated HelloFlagTrace, a request's
//     kind byte may carry FlagSpan (bit 7). The body is then prefixed
//     with the request's span id (u64, nonzero) before the v0 payload:
//     the client's trace context, propagated so the server and engine
//     can attribute their side of the request to the same span.
//     A span id's presence is the sampled flag; unsampled requests stay
//     plain v0 frames even on a v1 connection, so trace propagation
//     costs nothing when sampling is off.
//
// Response frames never carry FlagSpan: the client already knows the
// span, so echoing it would be 8 wasted bytes per response.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	patree "github.com/patree/patree"
)

// Request kinds.
const (
	KindPut uint8 = iota + 1
	KindGet
	KindUpdate
	KindDelete
	KindScan
	KindSync
	KindBatch
	KindHello
)

// Version is the highest protocol version this build speaks. Version 0
// is the implicit pre-handshake protocol; version 1 adds the Hello
// handshake and span propagation.
const Version = 1

// Hello flag bits (offered by the client, intersected by the server).
const (
	// HelloFlagTrace: the connection may carry FlagSpan trace contexts.
	HelloFlagTrace uint8 = 1 << 0
)

// FlagSpan is bit 7 of a request's kind byte: the body is prefixed with
// a u64 span id. Only valid after a handshake negotiating
// HelloFlagTrace. KindMask strips it.
const (
	FlagSpan uint8 = 0x80
	KindMask uint8 = 0x7f
)

// Response status codes. The numeric values are wire-stable: changing
// one is a protocol break.
const (
	StatusOK           uint8 = 0
	StatusBusy         uint8 = 1
	StatusClosed       uint8 = 2
	StatusDeviceFailed uint8 = 3
	StatusBatchAborted uint8 = 4
	StatusTooLarge     uint8 = 5
	StatusBadRequest   uint8 = 6
	StatusInternal     uint8 = 7
)

// FoundFlag is bit0 of a response's flags byte.
const FoundFlag = 1

// MaxFrame is the largest frame either side accepts (length prefix
// excluded). It bounds a batch and a scan result; both sides enforce it.
const MaxFrame = 16 << 20

// HeaderLen is the fixed prefix of every frame body: id + kind/status.
const HeaderLen = 8 + 1

// ErrFrameTooLarge reports a frame exceeding MaxFrame; the connection
// is unrecoverable afterwards (framing is lost).
var ErrFrameTooLarge = errors.New("proto: frame exceeds MaxFrame")

// StatusOf maps an operation error to its wire status code. Unknown
// errors map to StatusInternal; their message travels in the body.
func StatusOf(err error) uint8 {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, patree.ErrBacklog):
		return StatusBusy
	case errors.Is(err, patree.ErrClosed):
		return StatusClosed
	case errors.Is(err, patree.ErrDeviceFailed):
		return StatusDeviceFailed
	case errors.Is(err, patree.ErrBatchAborted):
		return StatusBatchAborted
	case errors.Is(err, patree.ErrValueTooLarge):
		return StatusTooLarge
	default:
		return StatusInternal
	}
}

// ErrFromStatus maps a wire status back to the public taxonomy: the
// same sentinel the server observed, so errors.Is gives identical
// answers on both sides of the wire. A non-empty remote message is
// attached by wrapping, preserving errors.Is.
func ErrFromStatus(status uint8, msg string) error {
	var base error
	switch status {
	case StatusOK:
		return nil
	case StatusBusy:
		base = patree.ErrBacklog
	case StatusClosed:
		base = patree.ErrClosed
	case StatusDeviceFailed:
		base = patree.ErrDeviceFailed
	case StatusBatchAborted:
		base = patree.ErrBatchAborted
	case StatusTooLarge:
		base = patree.ErrValueTooLarge
	case StatusBadRequest:
		if msg == "" {
			msg = "malformed request"
		}
		return fmt.Errorf("patree: remote: bad request: %s", msg)
	default:
		if msg == "" {
			msg = "internal error"
		}
		return fmt.Errorf("patree: remote: %s", msg)
	}
	if msg == "" {
		return base
	}
	return fmt.Errorf("%w (remote: %s)", base, msg)
}

// WireKind maps a staged BatchOp kind to its wire kind.
func WireKind(k patree.OpKind) uint8 {
	switch k {
	case patree.OpPut:
		return KindPut
	case patree.OpGet:
		return KindGet
	case patree.OpUpdate:
		return KindUpdate
	case patree.OpDelete:
		return KindDelete
	case patree.OpScan:
		return KindScan
	case patree.OpSync:
		return KindSync
	}
	return 0
}

// AppendFrame appends a complete frame (length prefix, id, kind, body)
// to dst and returns the extended slice.
func AppendFrame(dst []byte, id uint64, kind uint8, body []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(HeaderLen+len(body)))
	dst = binary.LittleEndian.AppendUint64(dst, id)
	dst = append(dst, kind)
	return append(dst, body...)
}

// BeginFrame appends the length placeholder plus header and returns the
// extended slice and the offset of the placeholder; FinishFrame patches
// the length once the body is in place. This builds a frame in one
// buffer without assembling the body separately.
func BeginFrame(dst []byte, id uint64, kind uint8) ([]byte, int) {
	at := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = binary.LittleEndian.AppendUint64(dst, id)
	dst = append(dst, kind)
	return dst, at
}

// FinishFrame patches the length prefix begun at offset at.
func FinishFrame(dst []byte, at int) []byte {
	binary.LittleEndian.PutUint32(dst[at:], uint32(len(dst)-at-4))
	return dst
}

// ReadFrame reads one frame body (id onward) into buf, growing it as
// needed, and returns the filled slice. The returned slice aliases buf
// and is only valid until the next call.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < HeaderLen || n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// FrameID returns the request id of a frame body returned by ReadFrame.
func FrameID(body []byte) uint64 { return binary.LittleEndian.Uint64(body) }

// FrameKind returns the kind/status byte of a frame body.
func FrameKind(body []byte) uint8 { return body[8] }

// FrameBody returns the payload after the id and kind/status byte.
func FrameBody(body []byte) []byte { return body[HeaderLen:] }

// AppendPairs appends the wire encoding of scan results.
func AppendPairs(dst []byte, pairs []patree.KV) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(pairs)))
	for _, kv := range pairs {
		dst = binary.LittleEndian.AppendUint64(dst, kv.Key)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(kv.Value)))
		dst = append(dst, kv.Value...)
	}
	return dst
}

// DecodePairs decodes AppendPairs output. The returned values are
// copies; they do not alias b.
func DecodePairs(b []byte) ([]patree.KV, error) {
	if len(b) < 4 {
		return nil, errMalformed
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if n == 0 {
		return nil, nil
	}
	pairs := make([]patree.KV, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(b) < 12 {
			return nil, errMalformed
		}
		key := binary.LittleEndian.Uint64(b)
		vlen := binary.LittleEndian.Uint32(b[8:])
		b = b[12:]
		if uint32(len(b)) < vlen {
			return nil, errMalformed
		}
		v := make([]byte, vlen)
		copy(v, b[:vlen])
		b = b[vlen:]
		pairs = append(pairs, patree.KV{Key: key, Value: v})
	}
	return pairs, nil
}

var errMalformed = errors.New("proto: malformed frame")

// ErrMalformed reports a structurally invalid frame body.
func ErrMalformed() error { return errMalformed }

// AppendHello appends a Hello request (or its StatusOK response — the
// body shape is shared) offering version and flags.
func AppendHello(dst []byte, id uint64, kindOrStatus uint8, version, flags uint8) []byte {
	return AppendFrame(dst, id, kindOrStatus, []byte{version, flags})
}

// ParseHello decodes a Hello body (request or response).
func ParseHello(body []byte) (version, flags uint8, err error) {
	if len(body) != 2 {
		return 0, 0, errMalformed
	}
	return body[0], body[1], nil
}

// Negotiate resolves an offered (version, flags) pair against this
// build: the lower version wins and only mutually understood flags
// survive.
func Negotiate(version, flags uint8) (uint8, uint8) {
	if version > Version {
		version = Version
	}
	if version < 1 {
		return version, 0
	}
	return version, flags & HelloFlagTrace
}

// SplitSpan strips a request frame's trace context: given the raw kind
// byte and payload it returns the bare kind, the span id (0 when the
// frame carries none) and the payload with the span prefix removed.
// A FlagSpan frame too short to hold the span id reports ok=false.
func SplitSpan(kind uint8, p []byte) (bare uint8, span uint64, rest []byte, ok bool) {
	if kind&FlagSpan == 0 {
		return kind, 0, p, true
	}
	if len(p) < 8 {
		return kind & KindMask, 0, p, false
	}
	return kind & KindMask, binary.LittleEndian.Uint64(p), p[8:], true
}
