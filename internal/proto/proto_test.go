package proto

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	patree "github.com/patree/patree"
)

// TestStatusRoundTrip pins the satellite contract: every public
// sentinel maps to a stable wire status and back to the *same* sentinel
// under errors.Is, so error handling written against the embedded DB
// behaves identically against the network client.
func TestStatusRoundTrip(t *testing.T) {
	sentinels := []struct {
		err    error
		status uint8
	}{
		{patree.ErrBacklog, StatusBusy},
		{patree.ErrClosed, StatusClosed},
		{patree.ErrDeviceFailed, StatusDeviceFailed},
		{patree.ErrBatchAborted, StatusBatchAborted},
		{patree.ErrValueTooLarge, StatusTooLarge},
	}
	for _, s := range sentinels {
		if got := StatusOf(s.err); got != s.status {
			t.Errorf("StatusOf(%v) = %d, want %d", s.err, got, s.status)
		}
		back := ErrFromStatus(s.status, "")
		if !errors.Is(back, s.err) {
			t.Errorf("ErrFromStatus(%d) = %v, not errors.Is %v", s.status, back, s.err)
		}
		// Wrapped forms (as the server produces them) must keep mapping.
		if got := StatusOf(fmt.Errorf("context: %w", s.err)); got != s.status {
			t.Errorf("StatusOf(wrapped %v) = %d, want %d", s.err, got, s.status)
		}
		// A remote message must not break the sentinel identity.
		withMsg := ErrFromStatus(s.status, "shard 3 ring full")
		if !errors.Is(withMsg, s.err) {
			t.Errorf("ErrFromStatus(%d, msg) = %v, not errors.Is %v", s.status, withMsg, s.err)
		}
	}
	if StatusOf(nil) != StatusOK {
		t.Error("StatusOf(nil) != StatusOK")
	}
	if ErrFromStatus(StatusOK, "") != nil {
		t.Error("ErrFromStatus(StatusOK) != nil")
	}
	if StatusOf(errors.New("novel")) != StatusInternal {
		t.Error("unknown errors must map to StatusInternal")
	}
	if err := ErrFromStatus(StatusBadRequest, "short frame"); err == nil {
		t.Error("StatusBadRequest must map to a non-nil error")
	}
}

// TestStatusCodesStable pins the numeric wire values; changing any is a
// protocol break that must be made consciously.
func TestStatusCodesStable(t *testing.T) {
	want := map[string]uint8{
		"OK": 0, "Busy": 1, "Closed": 2, "DeviceFailed": 3,
		"BatchAborted": 4, "TooLarge": 5, "BadRequest": 6, "Internal": 7,
	}
	got := map[string]uint8{
		"OK": StatusOK, "Busy": StatusBusy, "Closed": StatusClosed,
		"DeviceFailed": StatusDeviceFailed, "BatchAborted": StatusBatchAborted,
		"TooLarge": StatusTooLarge, "BadRequest": StatusBadRequest, "Internal": StatusInternal,
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("Status%s = %d, want %d (wire-stable)", name, got[name], w)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frame := AppendFrame(nil, 42, KindPut, []byte("hello"))
	buf.Write(frame)
	frame2, at := BeginFrame(nil, 7, KindScan)
	frame2 = append(frame2, []byte("world!")...)
	buf.Write(FinishFrame(frame2, at))

	body, err := ReadFrame(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if FrameID(body) != 42 || FrameKind(body) != KindPut || string(FrameBody(body)) != "hello" {
		t.Fatalf("frame 1 = id %d kind %d body %q", FrameID(body), FrameKind(body), FrameBody(body))
	}
	body, err = ReadFrame(&buf, body[:0])
	if err != nil {
		t.Fatal(err)
	}
	if FrameID(body) != 7 || FrameKind(body) != KindScan || string(FrameBody(body)) != "world!" {
		t.Fatalf("frame 2 = id %d kind %d body %q", FrameID(body), FrameKind(body), FrameBody(body))
	}
	if _, err := ReadFrame(&buf, body[:0]); err != io.EOF {
		t.Fatalf("empty stream = %v, want EOF", err)
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	var hdr [4]byte
	hdr[0] = 0xff
	hdr[1] = 0xff
	hdr[2] = 0xff
	hdr[3] = 0x7f
	if _, err := ReadFrame(bytes.NewReader(hdr[:]), nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize frame = %v, want ErrFrameTooLarge", err)
	}
	// A length below the header minimum is equally invalid.
	if _, err := ReadFrame(bytes.NewReader([]byte{1, 0, 0, 0}), nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("undersize frame = %v, want ErrFrameTooLarge", err)
	}
}

func TestPairsRoundTrip(t *testing.T) {
	in := []patree.KV{
		{Key: 1, Value: []byte("a")},
		{Key: 2, Value: nil},
		{Key: 1 << 60, Value: bytes.Repeat([]byte("x"), 300)},
	}
	enc := AppendPairs(nil, in)
	out, err := DecodePairs(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d pairs, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Key != in[i].Key || !bytes.Equal(out[i].Value, in[i].Value) {
			t.Fatalf("pair %d = %+v, want %+v", i, out[i], in[i])
		}
	}
	// Decoded values must not alias the encoding buffer.
	enc[len(enc)-1] ^= 0xff
	if out[2].Value[len(out[2].Value)-1] != 'x' {
		t.Fatal("DecodePairs aliases its input")
	}
	if _, err := DecodePairs(enc[:3]); err == nil {
		t.Fatal("truncated pairs must not decode")
	}
}

func TestWireKind(t *testing.T) {
	kinds := map[patree.OpKind]uint8{
		patree.OpPut: KindPut, patree.OpGet: KindGet, patree.OpUpdate: KindUpdate,
		patree.OpDelete: KindDelete, patree.OpScan: KindScan, patree.OpSync: KindSync,
	}
	for k, want := range kinds {
		if got := WireKind(k); got != want {
			t.Errorf("WireKind(%v) = %d, want %d", k, got, want)
		}
	}
	if WireKind(patree.OpKind(99)) != 0 {
		t.Error("invalid kind must map to 0")
	}
}
