package storage

import "fmt"

// SearchStep is the outcome of SearchPage on one page image: either the
// next child to descend into (inner page) or the point-lookup result
// (leaf page).
type SearchStep struct {
	// Leaf reports which arm of the union is valid.
	Leaf bool
	// Child is the page to follow next (inner pages).
	Child PageID
	// Found and Value are the lookup result (leaf pages). Value is a
	// fresh copy; it does not alias buf.
	Found bool
	Value []byte
}

// SearchPage advances a point lookup one level directly on a sealed page
// image, without materializing a Node: the binary search runs over the
// encoded slot array and, on a leaf hit, only the matched value is
// copied out. It performs the same checksum and structure validation as
// DecodeNode for the slots it touches, and its search semantics mirror
// Node.ChildIndex / Node.SearchLeaf exactly (the property page_search
// tests pin down). This is the allocation-free fast path for cached
// reads; mutating operations still decode.
func SearchPage(buf []byte, key uint64) (SearchStep, error) {
	if len(buf) < PageSize {
		return SearchStep{}, fmt.Errorf("storage: short page (%d bytes)", len(buf))
	}
	if !checkSeal(buf[:PageSize]) {
		return SearchStep{}, ErrCorruptPage
	}
	kind := buf[0]
	level := buf[1]
	nkeys := int(getU16(buf[2:4]))
	switch kind {
	case KindLeaf:
		if level != 0 {
			return SearchStep{}, fmt.Errorf("storage: leaf with level %d: %w", level, ErrBadKind)
		}
		// Binary search the slot array: slot i is at
		// headerSize + i*slotSize = (key 8, valueOffset 2, valueLen 2).
		lo, hi := 0, nkeys
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if getU64(buf[headerSize+mid*slotSize:]) < key {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo >= nkeys || getU64(buf[headerSize+lo*slotSize:]) != key {
			return SearchStep{Leaf: true}, nil
		}
		vo := int(getU16(buf[headerSize+lo*slotSize+8:]))
		vl := int(getU16(buf[headerSize+lo*slotSize+10:]))
		if vo+vl > PageSize || vo < headerSize {
			return SearchStep{}, fmt.Errorf("storage: leaf slot %d out of range", lo)
		}
		v := make([]byte, vl)
		copy(v, buf[vo:vo+vl])
		return SearchStep{Leaf: true, Found: true, Value: v}, nil

	case KindInner:
		if level == 0 {
			return SearchStep{}, fmt.Errorf("storage: inner with level 0: %w", ErrBadKind)
		}
		// Separator i is at headerSize + 8 + i*innerEntry; child i+1
		// follows it. Child 0 sits right after the header.
		lo, hi := 0, nkeys
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if key >= getU64(buf[headerSize+8+mid*innerEntry:]) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		var child PageID
		if lo == 0 {
			child = PageID(getU64(buf[headerSize:]))
		} else {
			child = PageID(getU64(buf[headerSize+8+(lo-1)*innerEntry+8:]))
		}
		return SearchStep{Child: child}, nil

	default:
		return SearchStep{}, fmt.Errorf("storage: kind %d: %w", kind, ErrBadKind)
	}
}
