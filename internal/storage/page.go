// Package storage defines the on-device layout of PA-Tree: 512-byte pages
// (the NVMe minimal access granularity, which the paper adopts as the
// index node size to minimize read/write amplification), the B+ tree node
// encodings, the meta page, and the page allocator.
//
// Layouts (all little-endian):
//
//	common header (16 bytes)
//	  [0]     kind (1=leaf, 2=inner, 3=meta)
//	  [1]     level (0 for leaves)
//	  [2:4]   nkeys
//	  [4:12]  next (right-sibling page id at the same level; 0 = none)
//	  [12:16] crc32 of the page with this field zeroed
//
//	inner node: header, children[0] (8 bytes), then nkeys * (key 8, child 8).
//	  Keys separate children: subtree children[i] holds keys < Keys[i];
//	  children[i+1] holds keys >= Keys[i].
//
//	leaf node: header, then a slot array growing forward — each slot is
//	  (key 8, valueOffset 2, valueLen 2) — with value bytes packed at the
//	  tail of the page growing backward.
package storage

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// PageSize is the node size in bytes; one NVMe block.
const PageSize = 512

// PageID addresses a page; it equals the device LBA (block index).
// 0 is the meta page, so 0 never identifies a tree node and doubles as
// the nil page id.
type PageID uint64

// NilPage is the absent-page sentinel.
const NilPage PageID = 0

// Node kinds.
const (
	KindLeaf  = 1
	KindInner = 2
	KindMeta  = 3
)

const (
	headerSize = 16
	slotSize   = 12 // key(8) + valueOffset(2) + valueLen(2)
	innerEntry = 16 // key(8) + child(8)

	// InnerMaxKeys is the inner-node fanout minus one:
	// (512 - 16 header - 8 child0) / 16 = 30 keys, 31 children.
	InnerMaxKeys = (PageSize - headerSize - 8) / innerEntry

	// MaxValueSize bounds a single value so that two maximal entries fit
	// one leaf: 2*(slot + value) <= PageSize - header, i.e. value <= 236.
	// This guarantees the insert-path split loop always converges — a
	// single-entry leaf can absorb one more maximal value — without
	// overflow pages (the paper's 108-byte SSE records fit comfortably).
	MaxValueSize = (PageSize-headerSize)/2 - slotSize
)

// Errors.
var (
	ErrValueTooLarge = errors.New("storage: value exceeds MaxValueSize")
	ErrCorruptPage   = errors.New("storage: page checksum mismatch")
	ErrBadKind       = errors.New("storage: unexpected page kind")
	ErrNodeFull      = errors.New("storage: node full")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Node is the in-memory form of a tree node. Ops decode device pages into
// Nodes, mutate them, and encode them back; Nodes are never shared between
// operations (the latch protocol orders access to the underlying page).
type Node struct {
	ID    PageID
	Level uint8 // 0 = leaf
	Keys  []uint64
	// Children has len(Keys)+1 entries on inner nodes, nil on leaves.
	Children []PageID
	// Vals has len(Keys) entries on leaves, nil on inner nodes.
	Vals [][]byte
	// Next is the right-sibling page at the same level (NilPage for the
	// rightmost node of a level). Maintained by SplitLeaf and SplitInner;
	// nodes that never split leave it NilPage.
	Next PageID
}

// NewLeaf returns an empty leaf node with the given id.
func NewLeaf(id PageID) *Node { return &Node{ID: id, Level: 0} }

// NewInner returns an empty inner node at the given level (>= 1).
func NewInner(id PageID, level uint8) *Node { return &Node{ID: id, Level: level} }

// IsLeaf reports whether n is a leaf.
func (n *Node) IsLeaf() bool { return n.Level == 0 }

// NumKeys returns the number of keys.
func (n *Node) NumKeys() int { return len(n.Keys) }

func putU16(b []byte, v uint16) { b[0] = byte(v); b[1] = byte(v >> 8) }
func getU16(b []byte) uint16    { return uint16(b[0]) | uint16(b[1])<<8 }

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func putU32(b []byte, v uint32) {
	for i := 0; i < 4; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU32(b []byte) uint32 {
	var v uint32
	for i := 0; i < 4; i++ {
		v |= uint32(b[i]) << (8 * i)
	}
	return v
}

// seal computes and stores the page checksum.
func seal(buf []byte) {
	putU32(buf[12:16], 0)
	putU32(buf[12:16], crc32.Checksum(buf, crcTable))
}

// checkSeal verifies the page checksum.
func checkSeal(buf []byte) bool {
	want := getU32(buf[12:16])
	putU32(buf[12:16], 0)
	got := crc32.Checksum(buf, crcTable)
	putU32(buf[12:16], want)
	return got == want
}

// VerifyPage reports whether buf holds a full page whose checksum matches
// its contents. It is how readers detect bit-rot and torn writes before
// trusting a page image; VerifyPage may briefly restore the checksum field
// in place, so buf must not be read concurrently.
func VerifyPage(buf []byte) bool {
	return len(buf) >= PageSize && checkSeal(buf[:PageSize])
}

// LeafUsed returns the bytes a leaf currently occupies (header + slots +
// values).
func (n *Node) LeafUsed() int {
	used := headerSize + len(n.Keys)*slotSize
	for _, v := range n.Vals {
		used += len(v)
	}
	return used
}

// LeafFits reports whether a new pair with the given value length fits.
func (n *Node) LeafFits(valueLen int) bool {
	return n.LeafUsed()+slotSize+valueLen <= PageSize
}

// LeafFitsReplace reports whether replacing the value at index i with one
// of newLen bytes fits.
func (n *Node) LeafFitsReplace(i, newLen int) bool {
	return n.LeafUsed()-len(n.Vals[i])+newLen <= PageSize
}

// EncodeTo serializes n into buf (len >= PageSize) and seals the checksum.
// It panics if the node does not fit — callers must have checked capacity
// via LeafFits / InnerMaxKeys, so overflow here is a logic bug.
func (n *Node) EncodeTo(buf []byte) {
	for i := range buf[:PageSize] {
		buf[i] = 0
	}
	if n.IsLeaf() {
		buf[0] = KindLeaf
	} else {
		buf[0] = KindInner
	}
	buf[1] = n.Level
	putU16(buf[2:4], uint16(len(n.Keys)))
	putU64(buf[4:12], uint64(n.Next))
	if n.IsLeaf() {
		if n.LeafUsed() > PageSize {
			panic(fmt.Sprintf("storage: leaf %d overflow: %d bytes", n.ID, n.LeafUsed()))
		}
		heap := PageSize
		off := headerSize
		for i, k := range n.Keys {
			v := n.Vals[i]
			heap -= len(v)
			copy(buf[heap:], v)
			putU64(buf[off:], k)
			putU16(buf[off+8:], uint16(heap))
			putU16(buf[off+10:], uint16(len(v)))
			off += slotSize
		}
	} else {
		if len(n.Keys) > InnerMaxKeys {
			panic(fmt.Sprintf("storage: inner %d overflow: %d keys", n.ID, len(n.Keys)))
		}
		if len(n.Children) != len(n.Keys)+1 {
			panic(fmt.Sprintf("storage: inner %d has %d keys but %d children", n.ID, len(n.Keys), len(n.Children)))
		}
		putU64(buf[headerSize:], uint64(n.Children[0]))
		off := headerSize + 8
		for i, k := range n.Keys {
			putU64(buf[off:], k)
			putU64(buf[off+8:], uint64(n.Children[i+1]))
			off += innerEntry
		}
	}
	seal(buf[:PageSize])
}

// Encode allocates and returns a sealed page image.
func (n *Node) Encode() []byte {
	buf := make([]byte, PageSize)
	n.EncodeTo(buf)
	return buf
}

// DecodeNode parses a sealed page image into a Node with the given id.
func DecodeNode(id PageID, buf []byte) (*Node, error) {
	if len(buf) < PageSize {
		return nil, fmt.Errorf("storage: short page (%d bytes)", len(buf))
	}
	if !checkSeal(buf[:PageSize]) {
		return nil, ErrCorruptPage
	}
	kind := buf[0]
	n := &Node{ID: id, Level: buf[1]}
	nkeys := int(getU16(buf[2:4]))
	n.Next = PageID(getU64(buf[4:12]))
	switch kind {
	case KindLeaf:
		if n.Level != 0 {
			return nil, fmt.Errorf("storage: leaf with level %d: %w", n.Level, ErrBadKind)
		}
		n.Keys = make([]uint64, nkeys)
		n.Vals = make([][]byte, nkeys)
		off := headerSize
		for i := 0; i < nkeys; i++ {
			n.Keys[i] = getU64(buf[off:])
			vo := int(getU16(buf[off+8:]))
			vl := int(getU16(buf[off+10:]))
			if vo+vl > PageSize || vo < headerSize {
				return nil, fmt.Errorf("storage: leaf slot %d out of range", i)
			}
			v := make([]byte, vl)
			copy(v, buf[vo:vo+vl])
			n.Vals[i] = v
			off += slotSize
		}
	case KindInner:
		if n.Level == 0 {
			return nil, fmt.Errorf("storage: inner with level 0: %w", ErrBadKind)
		}
		n.Keys = make([]uint64, nkeys)
		n.Children = make([]PageID, nkeys+1)
		n.Children[0] = PageID(getU64(buf[headerSize:]))
		off := headerSize + 8
		for i := 0; i < nkeys; i++ {
			n.Keys[i] = getU64(buf[off:])
			n.Children[i+1] = PageID(getU64(buf[off+8:]))
			off += innerEntry
		}
	default:
		return nil, fmt.Errorf("storage: kind %d: %w", kind, ErrBadKind)
	}
	return n, nil
}

// SearchLeaf returns the index of key in a leaf and whether it is present;
// when absent, the index is the insertion point.
func (n *Node) SearchLeaf(key uint64) (int, bool) {
	lo, hi := 0, len(n.Keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if n.Keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.Keys) && n.Keys[lo] == key
}

// ChildIndex returns the index in Children to follow for key on an inner
// node: the child whose subtree covers key (keys >= Keys[i] go right).
func (n *Node) ChildIndex(key uint64) int {
	lo, hi := 0, len(n.Keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if key >= n.Keys[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// InsertLeaf inserts or replaces (key, value) in a leaf, assuming it fits.
// Returns whether an existing value was replaced.
func (n *Node) InsertLeaf(key uint64, value []byte) bool {
	i, found := n.SearchLeaf(key)
	v := make([]byte, len(value))
	copy(v, value)
	if found {
		n.Vals[i] = v
		return true
	}
	n.Keys = append(n.Keys, 0)
	copy(n.Keys[i+1:], n.Keys[i:])
	n.Keys[i] = key
	n.Vals = append(n.Vals, nil)
	copy(n.Vals[i+1:], n.Vals[i:])
	n.Vals[i] = v
	return false
}

// DeleteLeafAt removes the pair at index i.
func (n *Node) DeleteLeafAt(i int) {
	n.Keys = append(n.Keys[:i], n.Keys[i+1:]...)
	n.Vals = append(n.Vals[:i], n.Vals[i+1:]...)
}

// InsertInner inserts (sep, right) after the child at position idx, i.e.
// records that the child there was split with separator sep and new right
// sibling right.
func (n *Node) InsertInner(sep uint64, right PageID) {
	i := n.ChildIndex(sep)
	n.Keys = append(n.Keys, 0)
	copy(n.Keys[i+1:], n.Keys[i:])
	n.Keys[i] = sep
	n.Children = append(n.Children, NilPage)
	copy(n.Children[i+2:], n.Children[i+1:])
	n.Children[i+1] = right
}

// SplitLeaf moves the upper half of n into a fresh leaf with id rightID
// and returns (separator, right node). The separator is the first key of
// the right node (keys >= separator live right). Sibling links are fixed
// so n -> right -> old next.
func (n *Node) SplitLeaf(rightID PageID) (uint64, *Node) {
	// Split by bytes, not count, so variable-length values balance.
	target := n.LeafUsed() / 2
	used := headerSize
	cut := 0
	for i := range n.Keys {
		used += slotSize + len(n.Vals[i])
		if used > target && i > 0 {
			cut = i
			break
		}
		cut = i + 1
	}
	if cut >= len(n.Keys) {
		cut = len(n.Keys) - 1
	}
	if cut < 1 {
		cut = 1
	}
	right := NewLeaf(rightID)
	right.Keys = append(right.Keys, n.Keys[cut:]...)
	right.Vals = append(right.Vals, n.Vals[cut:]...)
	right.Next = n.Next
	n.Keys = n.Keys[:cut:cut]
	n.Vals = n.Vals[:cut:cut]
	n.Next = rightID
	return right.Keys[0], right
}

// SplitInner splits a full inner node: the middle key moves up as the
// separator, the upper keys/children move to a fresh inner node rightID.
// Sibling links are fixed so n -> right -> old next, mirroring SplitLeaf:
// every level forms a B-link chain that optimistic readers can escape
// along when a concurrent split moves their key range right.
func (n *Node) SplitInner(rightID PageID) (uint64, *Node) {
	mid := len(n.Keys) / 2
	sep := n.Keys[mid]
	right := NewInner(rightID, n.Level)
	right.Keys = append(right.Keys, n.Keys[mid+1:]...)
	right.Children = append(right.Children, n.Children[mid+1:]...)
	right.Next = n.Next
	n.Keys = n.Keys[:mid:mid]
	n.Children = n.Children[:mid+1 : mid+1]
	n.Next = rightID
	return sep, right
}

// Clone returns a deep copy of n.
func (n *Node) Clone() *Node {
	c := &Node{ID: n.ID, Level: n.Level, Next: n.Next}
	c.Keys = append([]uint64(nil), n.Keys...)
	if n.Children != nil {
		c.Children = append([]PageID(nil), n.Children...)
	}
	if n.Vals != nil {
		c.Vals = make([][]byte, len(n.Vals))
		for i, v := range n.Vals {
			c.Vals[i] = append([]byte(nil), v...)
		}
	}
	return c
}
