package storage

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"
)

func TestLeafEncodeDecodeRoundTrip(t *testing.T) {
	n := NewLeaf(5)
	n.Next = 9
	n.InsertLeaf(30, []byte("thirty"))
	n.InsertLeaf(10, []byte("ten"))
	n.InsertLeaf(20, []byte{})
	buf := n.Encode()
	got, err := DecodeNode(5, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsLeaf() || got.Next != 9 || got.NumKeys() != 3 {
		t.Fatalf("decoded = %+v", got)
	}
	wantKeys := []uint64{10, 20, 30}
	wantVals := [][]byte{[]byte("ten"), {}, []byte("thirty")}
	for i := range wantKeys {
		if got.Keys[i] != wantKeys[i] || !bytes.Equal(got.Vals[i], wantVals[i]) {
			t.Fatalf("entry %d = (%d, %q)", i, got.Keys[i], got.Vals[i])
		}
	}
}

func TestInnerEncodeDecodeRoundTrip(t *testing.T) {
	n := NewInner(7, 2)
	n.Children = []PageID{100}
	n.InsertInner(50, 101)
	n.InsertInner(25, 102)
	n.InsertInner(75, 103)
	buf := n.Encode()
	got, err := DecodeNode(7, buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.IsLeaf() || got.Level != 2 {
		t.Fatalf("decoded = %+v", got)
	}
	wantKeys := []uint64{25, 50, 75}
	wantChildren := []PageID{100, 102, 101, 103}
	for i := range wantKeys {
		if got.Keys[i] != wantKeys[i] {
			t.Fatalf("keys = %v", got.Keys)
		}
	}
	for i := range wantChildren {
		if got.Children[i] != wantChildren[i] {
			t.Fatalf("children = %v", got.Children)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	n := NewLeaf(1)
	n.InsertLeaf(1, []byte("x"))
	buf := n.Encode()
	buf[100] ^= 0xFF
	if _, err := DecodeNode(1, buf); err != ErrCorruptPage {
		t.Fatalf("err = %v, want ErrCorruptPage", err)
	}
	if _, err := DecodeNode(1, buf[:10]); err == nil {
		t.Fatal("short page accepted")
	}
	// Wrong kind byte (with checksum recomputed) must be rejected too.
	buf2 := n.Encode()
	buf2[0] = 9
	seal(buf2)
	if _, err := DecodeNode(1, buf2); err == nil {
		t.Fatal("bad kind accepted")
	}
}

func TestSearchLeaf(t *testing.T) {
	n := NewLeaf(1)
	for _, k := range []uint64{10, 20, 30, 40} {
		n.InsertLeaf(k, []byte("v"))
	}
	if i, ok := n.SearchLeaf(30); !ok || i != 2 {
		t.Fatalf("SearchLeaf(30) = %d,%v", i, ok)
	}
	if i, ok := n.SearchLeaf(35); ok || i != 3 {
		t.Fatalf("SearchLeaf(35) = %d,%v", i, ok)
	}
	if i, ok := n.SearchLeaf(5); ok || i != 0 {
		t.Fatalf("SearchLeaf(5) = %d,%v", i, ok)
	}
	if i, ok := n.SearchLeaf(45); ok || i != 4 {
		t.Fatalf("SearchLeaf(45) = %d,%v", i, ok)
	}
}

func TestChildIndex(t *testing.T) {
	n := NewInner(1, 1)
	n.Keys = []uint64{10, 20, 30}
	n.Children = []PageID{1, 2, 3, 4}
	cases := []struct {
		key  uint64
		want int
	}{{5, 0}, {10, 1}, {15, 1}, {20, 2}, {29, 2}, {30, 3}, {99, 3}}
	for _, c := range cases {
		if got := n.ChildIndex(c.key); got != c.want {
			t.Fatalf("ChildIndex(%d) = %d, want %d", c.key, got, c.want)
		}
	}
}

func TestInsertLeafReplace(t *testing.T) {
	n := NewLeaf(1)
	if n.InsertLeaf(1, []byte("a")) {
		t.Fatal("fresh insert reported replace")
	}
	if !n.InsertLeaf(1, []byte("b")) {
		t.Fatal("overwrite not reported as replace")
	}
	if n.NumKeys() != 1 || string(n.Vals[0]) != "b" {
		t.Fatalf("node = %+v", n)
	}
}

func TestInsertLeafCopiesValue(t *testing.T) {
	n := NewLeaf(1)
	v := []byte("abc")
	n.InsertLeaf(1, v)
	v[0] = 'X'
	if string(n.Vals[0]) != "abc" {
		t.Fatal("InsertLeaf aliased caller's buffer")
	}
}

func TestDeleteLeafAt(t *testing.T) {
	n := NewLeaf(1)
	for _, k := range []uint64{1, 2, 3} {
		n.InsertLeaf(k, []byte{byte(k)})
	}
	n.DeleteLeafAt(1)
	if n.NumKeys() != 2 || n.Keys[0] != 1 || n.Keys[1] != 3 {
		t.Fatalf("keys = %v", n.Keys)
	}
	if n.Vals[1][0] != 3 {
		t.Fatal("values out of sync with keys")
	}
}

func TestLeafCapacityAccounting(t *testing.T) {
	n := NewLeaf(1)
	// 8-byte values: each entry costs 12+8=20; capacity (512-16)/20 = 24.
	count := 0
	for n.LeafFits(8) {
		n.InsertLeaf(uint64(count), make([]byte, 8))
		count++
	}
	if count != 24 {
		t.Fatalf("fixed 8B-value capacity = %d, want 24", count)
	}
	// Encode must succeed at exactly full.
	n.Encode()
}

func TestLeafFitsReplace(t *testing.T) {
	n := NewLeaf(1)
	n.InsertLeaf(1, make([]byte, 400))
	if !n.LeafFitsReplace(0, 480) {
		t.Fatal("replace to 480 should fit")
	}
	if n.LeafFitsReplace(0, 500) {
		t.Fatal("replace to 500 cannot fit")
	}
}

func TestSplitLeafBalancesAndChains(t *testing.T) {
	n := NewLeaf(1)
	n.Next = 99
	for i := 0; i < 20; i++ {
		n.InsertLeaf(uint64(i), make([]byte, 8))
	}
	sep, right := n.SplitLeaf(2)
	if sep != right.Keys[0] {
		t.Fatalf("separator %d != right first key %d", sep, right.Keys[0])
	}
	if n.Next != 2 || right.Next != 99 {
		t.Fatalf("sibling chain: left.Next=%d right.Next=%d", n.Next, right.Next)
	}
	if n.NumKeys() == 0 || right.NumKeys() == 0 {
		t.Fatal("split produced an empty side")
	}
	if n.Keys[len(n.Keys)-1] >= right.Keys[0] {
		t.Fatal("split did not preserve order")
	}
	if n.NumKeys()+right.NumKeys() != 20 {
		t.Fatal("split lost entries")
	}
}

func TestSplitLeafVariableSizes(t *testing.T) {
	// One huge value followed by small ones: byte-based split must not
	// put everything on one side.
	n := NewLeaf(1)
	n.InsertLeaf(1, make([]byte, 300))
	for i := 2; i <= 10; i++ {
		n.InsertLeaf(uint64(i), make([]byte, 8))
	}
	_, right := n.SplitLeaf(2)
	if n.NumKeys() == 0 || right.NumKeys() == 0 {
		t.Fatal("degenerate split")
	}
	// Left should hold just the big value (300 bytes ~ half of page).
	if n.NumKeys() > 3 {
		t.Fatalf("left kept %d keys despite byte-weighted split", n.NumKeys())
	}
}

func TestSplitInner(t *testing.T) {
	n := NewInner(1, 1)
	n.Children = []PageID{100}
	for i := 1; i <= InnerMaxKeys; i++ {
		n.InsertInner(uint64(i*10), PageID(100+i))
	}
	sep, right := n.SplitInner(2)
	if n.NumKeys()+right.NumKeys()+1 != InnerMaxKeys {
		t.Fatalf("keys %d + %d + sep != %d", n.NumKeys(), right.NumKeys(), InnerMaxKeys)
	}
	if len(n.Children) != n.NumKeys()+1 || len(right.Children) != right.NumKeys()+1 {
		t.Fatal("children counts wrong after split")
	}
	if n.Keys[len(n.Keys)-1] >= sep || right.Keys[0] <= sep {
		t.Fatal("separator does not divide key ranges")
	}
	// Round-trip both halves.
	if _, err := DecodeNode(1, n.Encode()); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeNode(2, right.Encode()); err != nil {
		t.Fatal(err)
	}
}

func TestClone(t *testing.T) {
	n := NewLeaf(1)
	n.InsertLeaf(1, []byte("abc"))
	c := n.Clone()
	c.Vals[0][0] = 'X'
	c.Keys[0] = 99
	if n.Vals[0][0] != 'a' || n.Keys[0] != 1 {
		t.Fatal("clone shares storage with original")
	}
}

// Property: any set of (key, value) pairs that fits a leaf round-trips
// through encode/decode preserving sorted order and content.
func TestLeafRoundTripProperty(t *testing.T) {
	f := func(keys []uint64, blob []byte) bool {
		n := NewLeaf(3)
		inserted := map[uint64][]byte{}
		bi := 0
		for _, k := range keys {
			vlen := 0
			if len(blob) > 0 {
				vlen = int(k % 40)
			}
			if bi+vlen > len(blob) {
				bi = 0
			}
			var v []byte
			if vlen > 0 && bi+vlen <= len(blob) {
				v = blob[bi : bi+vlen]
				bi += vlen
			}
			if _, found := n.SearchLeaf(k); !found && !n.LeafFits(len(v)) {
				continue
			}
			if i, found := n.SearchLeaf(k); found && !n.LeafFitsReplace(i, len(v)) {
				continue
			}
			n.InsertLeaf(k, v)
			inserted[k] = append([]byte(nil), v...)
		}
		got, err := DecodeNode(3, n.Encode())
		if err != nil {
			return false
		}
		if got.NumKeys() != len(inserted) {
			return false
		}
		if !sort.SliceIsSorted(got.Keys, func(i, j int) bool { return got.Keys[i] < got.Keys[j] }) {
			return false
		}
		for i, k := range got.Keys {
			want, ok := inserted[k]
			if !ok || !bytes.Equal(got.Vals[i], want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: inner nodes round-trip for any key count within capacity.
func TestInnerRoundTripProperty(t *testing.T) {
	f := func(seed uint64, count uint8) bool {
		nkeys := int(count) % (InnerMaxKeys + 1)
		n := NewInner(4, 1)
		n.Children = []PageID{PageID(seed | 1)}
		for i := 0; i < nkeys; i++ {
			n.Keys = append(n.Keys, seed+uint64(i)*7919)
			n.Children = append(n.Children, PageID(seed+uint64(i)+2))
		}
		sort.Slice(n.Keys, func(i, j int) bool { return n.Keys[i] < n.Keys[j] })
		got, err := DecodeNode(4, n.Encode())
		if err != nil {
			return false
		}
		if got.NumKeys() != nkeys || len(got.Children) != nkeys+1 {
			return false
		}
		for i := range n.Keys {
			if got.Keys[i] != n.Keys[i] || got.Children[i+1] != n.Children[i+1] {
				return false
			}
		}
		return got.Children[0] == n.Children[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMetaRoundTrip(t *testing.T) {
	m := &Meta{Root: 17, Height: 3, Watermark: 1234, NumKeys: 99999, SyncEpoch: 7}
	got, err := DecodeMeta(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *m {
		t.Fatalf("meta = %+v, want %+v", got, m)
	}
}

func TestMetaRejectsGarbage(t *testing.T) {
	buf := make([]byte, PageSize)
	if _, err := DecodeMeta(buf); err == nil {
		t.Fatal("zero page accepted as meta")
	}
	n := NewLeaf(0)
	if _, err := DecodeMeta(n.Encode()); err != ErrNotMeta {
		t.Fatalf("leaf page as meta: err = %v", err)
	}
	m := &Meta{Root: 1}
	buf = m.Encode()
	buf[20] ^= 1
	if _, err := DecodeMeta(buf); err != ErrCorruptPage {
		t.Fatalf("corrupt meta: err = %v", err)
	}
}

func TestAllocator(t *testing.T) {
	a := NewAllocator(1)
	p1, p2 := a.Alloc(), a.Alloc()
	if p1 != 1 || p2 != 2 {
		t.Fatalf("alloc = %d, %d", p1, p2)
	}
	a.Free(p1)
	if a.FreeCount() != 1 {
		t.Fatal("free count wrong")
	}
	if got := a.Alloc(); got != p1 {
		t.Fatalf("recycled = %d, want %d", got, p1)
	}
	if a.Watermark() != 3 {
		t.Fatalf("watermark = %d", a.Watermark())
	}
}

func TestAllocatorPanicsOnBadFree(t *testing.T) {
	a := NewAllocator(5)
	for _, id := range []PageID{0, 5, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Free(%d) did not panic", id)
				}
			}()
			a.Free(id)
		}()
	}
}

func TestAllocatorZeroWatermarkClamped(t *testing.T) {
	a := NewAllocator(0)
	if got := a.Alloc(); got != 1 {
		t.Fatalf("first alloc = %d, want 1 (page 0 reserved for meta)", got)
	}
}

// Property: allocator never hands out duplicates among live pages.
func TestAllocatorNoDuplicatesProperty(t *testing.T) {
	f := func(ops []bool) bool {
		a := NewAllocator(1)
		live := map[PageID]bool{}
		var order []PageID
		for _, alloc := range ops {
			if alloc || len(order) == 0 {
				id := a.Alloc()
				if live[id] {
					return false
				}
				live[id] = true
				order = append(order, id)
			} else {
				id := order[len(order)-1]
				order = order[:len(order)-1]
				delete(live, id)
				a.Free(id)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxValueFitsFreshLeaf(t *testing.T) {
	n := NewLeaf(1)
	if !n.LeafFits(MaxValueSize) {
		t.Fatal("MaxValueSize does not fit an empty leaf")
	}
	n.InsertLeaf(1, make([]byte, MaxValueSize))
	got, err := DecodeNode(1, n.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Vals[0]) != MaxValueSize {
		t.Fatal("max value truncated")
	}
}
