package storage

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// TestSearchPageMatchesDecodedLeaf pins the fast path to the decoded
// semantics: for random leaves and probe keys, SearchPage must agree
// with DecodeNode + SearchLeaf on presence and value.
func TestSearchPageMatchesDecodedLeaf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := NewLeaf(7)
		nkeys := rng.Intn(20)
		key := uint64(rng.Intn(50))
		for i := 0; i < nkeys; i++ {
			key += uint64(1 + rng.Intn(10))
			v := make([]byte, rng.Intn(12))
			rng.Read(v)
			if !n.LeafFits(len(v)) {
				break
			}
			n.InsertLeaf(key, v)
		}
		buf := n.Encode()
		dec, err := DecodeNode(7, buf)
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 30; probe++ {
			k := uint64(rng.Intn(int(key + 10)))
			step, err := SearchPage(buf, k)
			if err != nil {
				t.Fatalf("SearchPage(%d): %v", k, err)
			}
			if !step.Leaf {
				t.Fatalf("leaf page reported as inner")
			}
			i, found := dec.SearchLeaf(k)
			if step.Found != found {
				t.Fatalf("key %d: SearchPage found=%v, SearchLeaf found=%v", k, step.Found, found)
			}
			if found && !bytes.Equal(step.Value, dec.Vals[i]) {
				t.Fatalf("key %d: value %x, want %x", k, step.Value, dec.Vals[i])
			}
		}
	}
}

// TestSearchPageMatchesDecodedInner does the same for inner pages and
// ChildIndex.
func TestSearchPageMatchesDecodedInner(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := NewInner(9, 1)
		nkeys := 1 + rng.Intn(InnerMaxKeys)
		n.Children = append(n.Children, PageID(1000))
		key := uint64(rng.Intn(50))
		for i := 0; i < nkeys; i++ {
			key += uint64(1 + rng.Intn(10))
			n.Keys = append(n.Keys, key)
			n.Children = append(n.Children, PageID(1001+i))
		}
		buf := n.Encode()
		dec, err := DecodeNode(9, buf)
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 30; probe++ {
			k := uint64(rng.Intn(int(key + 10)))
			step, err := SearchPage(buf, k)
			if err != nil {
				t.Fatalf("SearchPage(%d): %v", k, err)
			}
			if step.Leaf {
				t.Fatalf("inner page reported as leaf")
			}
			want := dec.Children[dec.ChildIndex(k)]
			if step.Child != want {
				t.Fatalf("key %d: child %d, want %d", k, step.Child, want)
			}
		}
	}
}

func TestSearchPageErrors(t *testing.T) {
	if _, err := SearchPage(make([]byte, 10), 1); err == nil {
		t.Fatal("short page accepted")
	}
	n := NewLeaf(3)
	n.InsertLeaf(5, []byte("v"))
	buf := n.Encode()
	buf[20] ^= 0xff // corrupt a slot byte under the checksum
	if _, err := SearchPage(buf, 5); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("corrupt page: err = %v, want ErrCorruptPage", err)
	}
	meta := make([]byte, PageSize)
	meta[0] = KindMeta
	seal(meta)
	if _, err := SearchPage(meta, 5); !errors.Is(err, ErrBadKind) {
		t.Fatalf("meta page: err = %v, want ErrBadKind", err)
	}
}

// BenchmarkSearchPage documents why the fast path exists: stepping a
// lookup without decoding allocates only the value copy, where
// DecodeNode materializes every key and value.
func BenchmarkSearchPage(b *testing.B) {
	n := NewLeaf(1)
	// 12 entries is the most a 512-byte page holds at this value size.
	for k := uint64(0); k < 12; k++ {
		n.InsertLeaf(k*3, []byte("0123456789abcdef"))
	}
	buf := n.Encode()
	b.Run("searchpage", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := SearchPage(buf, 30); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			nd, err := DecodeNode(1, buf)
			if err != nil {
				b.Fatal(err)
			}
			nd.SearchLeaf(30)
		}
	})
}
