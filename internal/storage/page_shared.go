package storage

import (
	"fmt"
	"hash/crc32"
)

// This file is the concurrent-reader view of a page image. SearchPage and
// checkSeal briefly zero the checksum field in place, which is fine on the
// worker's private buffers but a data race on an image shared with other
// goroutines. The *Shared variants below never write to buf: the checksum
// is recomputed by streaming the header prefix, four zero bytes standing in
// for the stored CRC, and the payload through crc32.Update. They exist for
// the optimistic read path, where page images are published as immutable
// byte slices and may be examined by any number of readers at once.

// zeroCRC stands in for the zeroed checksum field during verification.
var zeroCRC [4]byte

// checkSealShared verifies the page checksum without mutating buf.
func checkSealShared(buf []byte) bool {
	want := getU32(buf[12:16])
	got := crc32.Update(0, crcTable, buf[:12])
	got = crc32.Update(got, crcTable, zeroCRC[:])
	got = crc32.Update(got, crcTable, buf[16:PageSize])
	return got == want
}

// VerifyPageShared is VerifyPage for concurrently-read images: it reports
// whether buf holds a full page with a matching checksum, without ever
// writing to buf.
func VerifyPageShared(buf []byte) bool {
	return len(buf) >= PageSize && checkSealShared(buf[:PageSize])
}

// PageNext extracts the right-sibling link from a sealed page image
// without decoding it. The caller must have verified the image.
func PageNext(buf []byte) PageID { return PageID(getU64(buf[4:12])) }

// PageIsLeaf reports whether a sealed page image encodes a leaf. The
// caller must have verified the image.
func PageIsLeaf(buf []byte) bool { return buf[0] == KindLeaf }

// SearchPageShared is SearchPage for concurrently-read images: the same
// decode-free binary search over the encoded slot array, with the same
// single value-copy allocation on a leaf hit, but using the non-mutating
// checksum so any number of goroutines can search one image at once.
func SearchPageShared(buf []byte, key uint64) (SearchStep, error) {
	if len(buf) < PageSize {
		return SearchStep{}, fmt.Errorf("storage: short page (%d bytes)", len(buf))
	}
	if !checkSealShared(buf[:PageSize]) {
		return SearchStep{}, ErrCorruptPage
	}
	return searchSealed(buf, key)
}

// searchSealed runs the kind dispatch and binary search of SearchPage on
// an already-verified image. Factored out so shared readers can verify an
// image once at publication and search it many times.
func searchSealed(buf []byte, key uint64) (SearchStep, error) {
	kind := buf[0]
	level := buf[1]
	nkeys := int(getU16(buf[2:4]))
	switch kind {
	case KindLeaf:
		if level != 0 {
			return SearchStep{}, fmt.Errorf("storage: leaf with level %d: %w", level, ErrBadKind)
		}
		lo, hi := 0, nkeys
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if getU64(buf[headerSize+mid*slotSize:]) < key {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo >= nkeys || getU64(buf[headerSize+lo*slotSize:]) != key {
			return SearchStep{Leaf: true}, nil
		}
		vo := int(getU16(buf[headerSize+lo*slotSize+8:]))
		vl := int(getU16(buf[headerSize+lo*slotSize+10:]))
		if vo+vl > PageSize || vo < headerSize {
			return SearchStep{}, fmt.Errorf("storage: leaf slot %d out of range", lo)
		}
		v := make([]byte, vl)
		copy(v, buf[vo:vo+vl])
		return SearchStep{Leaf: true, Found: true, Value: v}, nil

	case KindInner:
		if level == 0 {
			return SearchStep{}, fmt.Errorf("storage: inner with level 0: %w", ErrBadKind)
		}
		lo, hi := 0, nkeys
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if key >= getU64(buf[headerSize+8+mid*innerEntry:]) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		var child PageID
		if lo == 0 {
			child = PageID(getU64(buf[headerSize:]))
		} else {
			child = PageID(getU64(buf[headerSize+8+(lo-1)*innerEntry+8:]))
		}
		return SearchStep{Child: child}, nil

	default:
		return SearchStep{}, fmt.Errorf("storage: kind %d: %w", kind, ErrBadKind)
	}
}

// LeafRangeShared iterates the pairs of a verified leaf image that fall in
// [lo, hi], emitting each (key, fresh value copy) in key order until emit
// returns false. It returns the leaf's right-sibling link and whether the
// range is exhausted: beyond=true means a key > hi was seen (or emit
// stopped the walk), so no page further right can contribute. It never
// writes to buf; the caller must have verified the image.
func LeafRangeShared(buf []byte, lo, hi uint64, emit func(key uint64, val []byte) bool) (next PageID, beyond bool, err error) {
	if buf[0] != KindLeaf || buf[1] != 0 {
		return NilPage, false, fmt.Errorf("storage: kind %d level %d in leaf walk: %w", buf[0], buf[1], ErrBadKind)
	}
	nkeys := int(getU16(buf[2:4]))
	next = PageID(getU64(buf[4:12]))
	// Binary search for the first slot >= lo, then emit forward.
	i, j := 0, nkeys
	for i < j {
		mid := int(uint(i+j) >> 1)
		if getU64(buf[headerSize+mid*slotSize:]) < lo {
			i = mid + 1
		} else {
			j = mid
		}
	}
	for ; i < nkeys; i++ {
		k := getU64(buf[headerSize+i*slotSize:])
		if k > hi {
			return next, true, nil
		}
		vo := int(getU16(buf[headerSize+i*slotSize+8:]))
		vl := int(getU16(buf[headerSize+i*slotSize+10:]))
		if vo+vl > PageSize || vo < headerSize {
			return NilPage, false, fmt.Errorf("storage: leaf slot %d out of range", i)
		}
		v := make([]byte, vl)
		copy(v, buf[vo:vo+vl])
		if !emit(k, v) {
			return next, true, nil
		}
	}
	return next, false, nil
}
