package storage

import (
	"errors"
	"fmt"
)

// MetaMagic identifies a PA-Tree meta page.
const MetaMagic = 0x50415452 // "PATR"

// MetaVersion is the current layout version.
const MetaVersion = 1

// Meta is the tree superblock stored in page 0.
//
//	[0]     kind = KindMeta
//	[1]     version
//	[2:4]   reserved
//	[4:12]  reserved (next field of common header unused)
//	[12:16] crc32 (common header position)
//	[16:20] magic
//	[20:28] root page id
//	[28:29] height (levels, 1 = single leaf)
//	[29:32] reserved
//	[32:40] watermark (first never-allocated page id)
//	[40:48] number of keys in the tree
//	[48:56] sync epoch (incremented by each durable sync)
type Meta struct {
	Root      PageID
	Height    uint8
	Watermark PageID
	NumKeys   uint64
	SyncEpoch uint64
}

// ErrNotMeta reports a page that is not a valid meta page.
var ErrNotMeta = errors.New("storage: not a meta page")

// EncodeTo serializes the meta page into buf and seals it.
func (m *Meta) EncodeTo(buf []byte) {
	for i := range buf[:PageSize] {
		buf[i] = 0
	}
	buf[0] = KindMeta
	buf[1] = MetaVersion
	putU32(buf[16:20], MetaMagic)
	putU64(buf[20:28], uint64(m.Root))
	buf[28] = m.Height
	putU64(buf[32:40], uint64(m.Watermark))
	putU64(buf[40:48], m.NumKeys)
	putU64(buf[48:56], m.SyncEpoch)
	seal(buf[:PageSize])
}

// Encode allocates and returns a sealed meta page image.
func (m *Meta) Encode() []byte {
	buf := make([]byte, PageSize)
	m.EncodeTo(buf)
	return buf
}

// DecodeMeta parses a meta page image.
func DecodeMeta(buf []byte) (*Meta, error) {
	if len(buf) < PageSize {
		return nil, fmt.Errorf("storage: short meta page (%d bytes)", len(buf))
	}
	if !checkSeal(buf[:PageSize]) {
		return nil, ErrCorruptPage
	}
	if buf[0] != KindMeta || getU32(buf[16:20]) != MetaMagic {
		return nil, ErrNotMeta
	}
	if buf[1] != MetaVersion {
		return nil, fmt.Errorf("storage: meta version %d unsupported", buf[1])
	}
	return &Meta{
		Root:      PageID(getU64(buf[20:28])),
		Height:    buf[28],
		Watermark: PageID(getU64(buf[32:40])),
		NumKeys:   getU64(buf[40:48]),
		SyncEpoch: getU64(buf[48:56]),
	}, nil
}

// Allocator hands out page ids. Allocation is an in-memory decision (the
// watermark is persisted via the meta page); freed pages are recycled
// within a session. Pages freed after the last durable meta write are not
// reclaimed across restarts — a deliberate simplification documented in
// DESIGN.md (the paper does not address space reclamation at all).
type Allocator struct {
	watermark PageID
	free      []PageID
}

// NewAllocator starts allocating at watermark (page ids below it are
// considered in use; watermark must be >= 1 so page 0 stays the meta page).
func NewAllocator(watermark PageID) *Allocator {
	if watermark < 1 {
		watermark = 1
	}
	return &Allocator{watermark: watermark}
}

// Alloc returns a fresh page id.
func (a *Allocator) Alloc() PageID {
	if n := len(a.free); n > 0 {
		id := a.free[n-1]
		a.free = a.free[:n-1]
		return id
	}
	id := a.watermark
	a.watermark++
	return id
}

// Free recycles a page id. Freeing the meta page or a never-allocated id
// panics: both indicate tree corruption.
func (a *Allocator) Free(id PageID) {
	if id == NilPage || id >= a.watermark {
		panic(fmt.Sprintf("storage: freeing invalid page %d (watermark %d)", id, a.watermark))
	}
	a.free = append(a.free, id)
}

// Watermark returns the first never-allocated page id.
func (a *Allocator) Watermark() PageID { return a.watermark }

// FreeCount returns the number of recyclable pages.
func (a *Allocator) FreeCount() int { return len(a.free) }
