package storage

import (
	"errors"
	"fmt"
)

// MetaMagic identifies a PA-Tree meta page.
const MetaMagic = 0x50415452 // "PATR"

// MetaVersion is the current layout version.
const MetaVersion = 1

// Meta is the tree superblock stored in page 0.
//
//	[0]     kind = KindMeta
//	[1]     version
//	[2:4]   reserved
//	[4:12]  reserved (next field of common header unused)
//	[12:16] crc32 (common header position)
//	[16:20] magic
//	[20:28] root page id
//	[28:29] height (levels, 1 = single leaf)
//	[29:32] reserved
//	[32:40] watermark (first never-allocated page id)
//	[40:48] number of keys in the tree
//	[48:56] sync epoch (incremented by each durable sync)
//	[56:64] WAL region start block (0 = no journal region)
//	[64:72] WAL region length in blocks
//	[72:76] WAL generation fence: recovery replays only records whose
//	        generation is >= this value, so records retired by a
//	        checkpoint can never resurrect
//	[76:78] shard id (0-based position in a sharded DB)
//	[78:80] shard count (0 = unsharded single-worker tree)
//	[80:82] device id (0-based index in a multi-device topology)
//	[82:84] device count (0 = single-device layout)
//
// The WAL, shard and device fields decode as zero on images written
// before they existed, which reads as "no journal region", "unsharded"
// and "single device" — older images stay openable.
type Meta struct {
	Root        PageID
	Height      uint8
	Watermark   PageID
	NumKeys     uint64
	SyncEpoch   uint64
	WALStart    uint64 // first block of the journal region (0 = none)
	WALBlocks   uint64 // journal region length in blocks
	WALGen      uint32 // minimum live journal generation
	ShardID     uint16 // position of this tree in a sharded keyspace
	ShardCount  uint16 // total shards (0 = unsharded)
	DeviceID    uint16 // index of the device this shard was placed on
	DeviceCount uint16 // total devices in the topology (0 = single device)
}

// ErrNotMeta reports a page that is not a valid meta page.
var ErrNotMeta = errors.New("storage: not a meta page")

// EncodeTo serializes the meta page into buf and seals it.
func (m *Meta) EncodeTo(buf []byte) {
	for i := range buf[:PageSize] {
		buf[i] = 0
	}
	buf[0] = KindMeta
	buf[1] = MetaVersion
	putU32(buf[16:20], MetaMagic)
	putU64(buf[20:28], uint64(m.Root))
	buf[28] = m.Height
	putU64(buf[32:40], uint64(m.Watermark))
	putU64(buf[40:48], m.NumKeys)
	putU64(buf[48:56], m.SyncEpoch)
	putU64(buf[56:64], m.WALStart)
	putU64(buf[64:72], m.WALBlocks)
	putU32(buf[72:76], m.WALGen)
	putU16(buf[76:78], m.ShardID)
	putU16(buf[78:80], m.ShardCount)
	putU16(buf[80:82], m.DeviceID)
	putU16(buf[82:84], m.DeviceCount)
	seal(buf[:PageSize])
}

// Encode allocates and returns a sealed meta page image.
func (m *Meta) Encode() []byte {
	buf := make([]byte, PageSize)
	m.EncodeTo(buf)
	return buf
}

// DecodeMeta parses a meta page image.
func DecodeMeta(buf []byte) (*Meta, error) {
	if len(buf) < PageSize {
		return nil, fmt.Errorf("storage: short meta page (%d bytes)", len(buf))
	}
	if !checkSeal(buf[:PageSize]) {
		return nil, ErrCorruptPage
	}
	if buf[0] != KindMeta || getU32(buf[16:20]) != MetaMagic {
		return nil, ErrNotMeta
	}
	if buf[1] != MetaVersion {
		return nil, fmt.Errorf("storage: meta version %d unsupported", buf[1])
	}
	return &Meta{
		Root:        PageID(getU64(buf[20:28])),
		Height:      buf[28],
		Watermark:   PageID(getU64(buf[32:40])),
		NumKeys:     getU64(buf[40:48]),
		SyncEpoch:   getU64(buf[48:56]),
		WALStart:    getU64(buf[56:64]),
		WALBlocks:   getU64(buf[64:72]),
		WALGen:      getU32(buf[72:76]),
		ShardID:     getU16(buf[76:78]),
		ShardCount:  getU16(buf[78:80]),
		DeviceID:    getU16(buf[80:82]),
		DeviceCount: getU16(buf[82:84]),
	}, nil
}

// Allocator hands out page ids. Allocation is an in-memory decision (the
// watermark is persisted via the meta page); freed pages are recycled
// within a session. Pages freed after the last durable meta write are not
// reclaimed across restarts — a deliberate simplification documented in
// DESIGN.md (the paper does not address space reclamation at all).
type Allocator struct {
	watermark PageID
	free      []PageID
}

// NewAllocator starts allocating at watermark (page ids below it are
// considered in use; watermark must be >= 1 so page 0 stays the meta page).
func NewAllocator(watermark PageID) *Allocator {
	if watermark < 1 {
		watermark = 1
	}
	return &Allocator{watermark: watermark}
}

// Alloc returns a fresh page id.
func (a *Allocator) Alloc() PageID {
	if n := len(a.free); n > 0 {
		id := a.free[n-1]
		a.free = a.free[:n-1]
		return id
	}
	id := a.watermark
	a.watermark++
	return id
}

// Free recycles a page id. Freeing the meta page or a never-allocated id
// panics: both indicate tree corruption.
func (a *Allocator) Free(id PageID) {
	if id == NilPage || id >= a.watermark {
		panic(fmt.Sprintf("storage: freeing invalid page %d (watermark %d)", id, a.watermark))
	}
	a.free = append(a.free, id)
}

// Watermark returns the first never-allocated page id.
func (a *Allocator) Watermark() PageID { return a.watermark }

// FreeCount returns the number of recyclable pages.
func (a *Allocator) FreeCount() int { return len(a.free) }
