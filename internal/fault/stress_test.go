package fault

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/patree/patree/internal/core"
	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/sim"
	"github.com/patree/patree/internal/simos"
	"github.com/patree/patree/internal/storage"
)

// The stress harness runs a seed-reproducible randomized op stream
// against a journaled tree over a fault-injecting device, crashes the
// device at a random point in each of several phases, recovers the
// surviving image, and checks it against an in-memory oracle:
//
//   - every acknowledged write must survive the crash;
//   - an unacknowledged write may surface fully or not at all, never
//     half-visible (its key maps to the old value, the new value, or is
//     absent for a delete — anything else fails the run);
//   - with faults disabled and a clean shutdown, the image must equal
//     the oracle exactly.
//
// Every failure message carries the seed, which reproduces the entire
// run bit-for-bit.

// ambState is one acceptable post-crash state for a key whose operation
// completed with an error (its effect is ambiguous).
type ambState struct {
	present bool
	val     []byte
}

const (
	stressDevBlocks = 1 << 14
	stressPhases    = 6 // crash in the first 5, clean close in the last
	stressOpsPhase  = 150
	stressKeySpace  = 512
	stressWindow    = 16
)

func stressProbs() Probs {
	return Probs{ReadErr: 0.02, WriteErr: 0.02, Timeout: 0.01, BitRot: 0.01, TornWrite: 0.02, LatencySpike: 0.05}
}

// runStress executes one full multi-phase run and returns a determinism
// digest: a text transcript of everything observable (fault counts,
// recovery reports, stats, image checksums). Two runs with the same
// seed must produce identical digests.
func runStress(t *testing.T, seed uint64) string {
	t.Helper()
	rng := sim.NewRNG(seed ^ 0x57e55eed)
	persistence := core.WeakPersistence
	if seed%2 == 1 {
		persistence = core.StrongPersistence
	}
	model := map[uint64][]byte{}  // acked state
	amb := map[uint64][]ambState{} // additional acceptable states per key
	var img map[uint64][]byte
	var digest strings.Builder
	fmt.Fprintf(&digest, "seed=%d persistence=%s\n", seed, persistence)

	for phase := 0; phase < stressPhases; phase++ {
		crashPhase := phase < stressPhases-1
		eng := sim.NewEngine()
		sd := nvme.NewSimDevice(eng, nvme.SimConfig{Seed: seed + uint64(phase)*977, NumBlocks: stressDevBlocks})
		var meta *storage.Meta
		var err error
		if img == nil {
			if meta, err = core.Format(sd); err != nil {
				t.Fatalf("seed %d phase %d: format: %v", seed, phase, err)
			}
		} else {
			sd.LoadImage(img)
			var rep *core.RecoverReport
			meta, rep, err = core.Recover(sd)
			if err != nil {
				t.Fatalf("seed %d phase %d: recover: %v", seed, phase, err)
			}
			fmt.Fprintf(&digest, "phase=%d recover gen=%d recs=%d groups=%d dropped=%d stale=%d redone=%d keys=%d repaired=%v\n",
				phase, rep.Generation, rep.Records, rep.Groups, rep.DroppedTail, rep.StaleSkipped, rep.PagesRedone, rep.KeysCounted, rep.MetaRepaired)
			t.Logf("phase %d reopen: %+v", phase, *rep)
			pairs := collectPairs(t, seed, phase, sd, meta)
			verifyOracle(t, seed, phase, pairs, model, amb)
			// Ambiguity resolved: adopt what actually survived.
			model = pairs
			amb = map[uint64][]ambState{}
			fmt.Fprintf(&digest, "phase=%d image crc=%08x keys=%d\n", phase, pairsCRC(pairs), len(pairs))
		}

		fcfg := Config{Seed: seed*1000003 + uint64(phase), Now: eng.Now}
		if crashPhase {
			fcfg.Probs = stressProbs()
		}
		fdev := New(sd, fcfg)

		osched := simos.New(eng, simos.Config{})
		var tree *core.Tree
		th := osched.Spawn("patree", func(*simos.Thread) { tree.Run() })
		tree, err = core.New(fdev, core.Config{
			Persistence: persistence,
			BufferPages: 96,
			Journal:     true,
			MaxIORetries: 8,
		}, core.SimEnv{T: th}, meta)
		if err != nil {
			t.Fatalf("seed %d phase %d: new tree: %v", seed, phase, err)
		}

		pending := map[uint64]bool{}
		admitted, resolved, acked, failed := 0, 0, 0, 0
		crashAt := -1
		if crashPhase {
			crashAt = 30 + rng.Intn(90)
		}
		crashCalled := false
		opCounter := 0

		makeOp := func() *core.Op {
			kind := rng.Intn(100)
			key := 1 + rng.Uint64n(stressKeySpace)
			for pending[key] {
				key = 1 + rng.Uint64n(stressKeySpace)
			}
			pending[key] = true
			opCounter++
			switch {
			case kind < 55:
				val := []byte(fmt.Sprintf("s%d.p%d.o%d", seed, phase, opCounter))
				var op *core.Op
				op = core.NewInsert(key, val, func(*core.Op) {
					resolved++
					delete(pending, key)
					if op.Res.Err == nil {
						acked++
						model[key] = val
					} else {
						failed++
						amb[key] = append(amb[key], ambState{present: true, val: val})
					}
				})
				return op
			case kind < 75:
				var op *core.Op
				op = core.NewDelete(key, func(*core.Op) {
					resolved++
					delete(pending, key)
					if op.Res.Err == nil {
						acked++
						delete(model, key)
					} else {
						failed++
						amb[key] = append(amb[key], ambState{present: false})
					}
				})
				return op
			default:
				var op *core.Op
				op = core.NewSearch(key, func(*core.Op) {
					resolved++
					delete(pending, key)
					if op.Res.Err != nil {
						failed++
						return
					}
					acked++
					want, ok := model[key]
					if op.Res.Found != ok {
						t.Errorf("seed %d phase %d: search %d found=%v, oracle=%v", seed, phase, key, op.Res.Found, ok)
					} else if ok && !bytes.Equal(op.Res.Value, want) {
						t.Errorf("seed %d phase %d: search %d = %q, oracle %q", seed, phase, key, op.Res.Value, want)
					}
				})
				return op
			}
		}

		for {
			if !crashCalled && admitted < stressOpsPhase && len(pending) < stressWindow {
				n := stressWindow - len(pending)
				if n > stressOpsPhase-admitted {
					n = stressOpsPhase - admitted
				}
				batch := make([]*core.Op, 0, n)
				for i := 0; i < n; i++ {
					batch = append(batch, makeOp())
				}
				admitted += len(batch)
				eng.After(0, func() {
					for _, op := range batch {
						tree.Admit(op)
					}
				})
			}
			if crashPhase && !crashCalled && resolved >= crashAt {
				crashCalled = true
				eng.After(0, func() {
					if err := fdev.Crash(); err != nil {
						t.Errorf("seed %d phase %d: crash: %v", seed, phase, err)
					}
				})
			}
			if resolved == admitted && (crashCalled || admitted == stressOpsPhase) {
				break
			}
			if !eng.Step() {
				t.Fatalf("seed %d phase %d: simulation wedged with %d/%d ops resolved",
					seed, phase, resolved, admitted)
			}
		}

		if !crashPhase {
			// Clean close: checkpoint, then stop.
			syncDone := false
			syncOp := core.NewSync(func(*core.Op) { syncDone = true })
			eng.After(0, func() { tree.Admit(syncOp) })
			for !syncDone && eng.Step() {
			}
			if !syncDone {
				t.Fatalf("seed %d phase %d: final sync wedged", seed, phase)
			}
			if syncOp.Res.Err != nil {
				t.Fatalf("seed %d phase %d: final sync: %v", seed, phase, syncOp.Res.Err)
			}
		}
		tree.Stop()
		eng.RunFor(time.Second)

		st := tree.StatsSnapshot()
		c := fdev.Counts()
		fmt.Fprintf(&digest, "phase=%d admitted=%d acked=%d failed=%d appends=%d ckpts=%d ioerrs=%d retries=%d faults=%+v\n",
			phase, admitted, acked, failed, st.JournalAppends, st.Checkpoints, st.IOErrors, st.IORetries, c)

		img, err = fdev.Snapshot()
		if err != nil {
			t.Fatalf("seed %d phase %d: snapshot: %v", seed, phase, err)
		}
	}

	// Final gate: recover the cleanly-closed image; it must match the
	// oracle exactly — no ambiguity is tolerated after a clean close.
	eng := sim.NewEngine()
	sd := nvme.NewSimDevice(eng, nvme.SimConfig{Seed: seed ^ 0xf1a1, NumBlocks: stressDevBlocks})
	sd.LoadImage(img)
	meta, rep, err := core.Recover(sd)
	if err != nil {
		t.Fatalf("seed %d: final recover: %v", seed, err)
	}
	if rep.PagesRedone != 0 {
		t.Errorf("seed %d: clean close left %d pages to redo", seed, rep.PagesRedone)
	}
	pairs := collectPairs(t, seed, stressPhases, sd, meta)
	if len(pairs) != len(model) {
		t.Fatalf("seed %d: final image has %d keys, oracle %d", seed, len(pairs), len(model))
	}
	for k, v := range model {
		if got, ok := pairs[k]; !ok || !bytes.Equal(got, v) {
			t.Fatalf("seed %d: final image key %d = %q (present=%v), oracle %q", seed, k, got, ok, v)
		}
	}
	fmt.Fprintf(&digest, "final crc=%08x keys=%d\n", pairsCRC(pairs), len(pairs))
	return digest.String()
}

// collectPairs walks the on-device tree image (no buffers) and returns
// every key/value pair, failing the test on any unreadable page.
func collectPairs(t *testing.T, seed uint64, phase int, sd *nvme.SimDevice, meta *storage.Meta) map[uint64][]byte {
	t.Helper()
	read := func(id storage.PageID) *storage.Node {
		buf := make([]byte, storage.PageSize)
		sd.ReadAt(uint64(id), buf)
		n, err := storage.DecodeNode(id, buf)
		if err != nil {
			t.Fatalf("seed %d phase %d: page %d unreadable: %v", seed, phase, id, err)
		}
		return n
	}
	n := read(meta.Root)
	for !n.IsLeaf() {
		n = read(n.Children[0])
	}
	pairs := map[uint64][]byte{}
	for {
		for i, k := range n.Keys {
			v := make([]byte, len(n.Vals[i]))
			copy(v, n.Vals[i])
			pairs[k] = v
		}
		if n.Next == storage.NilPage {
			break
		}
		n = read(n.Next)
	}
	return pairs
}

// verifyOracle checks a recovered image against the acked model plus
// the per-key ambiguity sets left by failed operations.
func verifyOracle(t *testing.T, seed uint64, phase int, pairs, model map[uint64][]byte, amb map[uint64][]ambState) {
	t.Helper()
	matches := func(key uint64, got []byte, present bool) bool {
		// The acked state is always acceptable...
		want, acked := model[key]
		if present == acked && (!present || bytes.Equal(got, want)) {
			return true
		}
		// ...and so is the atomic effect of any failed op on the key.
		for _, a := range amb[key] {
			if present == a.present && (!present || bytes.Equal(got, a.val)) {
				return true
			}
		}
		return false
	}
	for k, v := range model {
		got, ok := pairs[k]
		if !matches(k, got, ok) {
			t.Fatalf("seed %d phase %d: acked key %d lost or mangled: image=%q(present=%v) oracle=%q amb=%d",
				seed, phase, k, got, ok, v, len(amb[k]))
		}
	}
	for k, got := range pairs {
		if _, ok := model[k]; ok {
			continue
		}
		if !matches(k, got, true) {
			t.Fatalf("seed %d phase %d: phantom key %d = %q surfaced (never acked, no failed op explains it)",
				seed, phase, k, got)
		}
	}
}

// pairsCRC hashes an image's pairs in sorted key order.
func pairsCRC(pairs map[uint64][]byte) uint32 {
	keys := make([]uint64, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	h := crc32.NewIEEE()
	var kb [8]byte
	for _, k := range keys {
		for i := 0; i < 8; i++ {
			kb[i] = byte(k >> (8 * i))
		}
		h.Write(kb[:])
		h.Write(pairs[k])
	}
	return h.Sum32()
}

// TestFaultStressSeeds runs the oracle-checked crash harness across many
// distinct seeds (alternating weak/strong persistence by parity). Each
// run performs 5 random crash points plus a clean close. On failure,
// reproduce with the printed seed.
func TestFaultStressSeeds(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 6
	}
	for s := 1; s <= seeds; s++ {
		seed := uint64(s)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runStress(t, seed)
		})
	}
}

// TestStressDeterminism is the deflake guard: the same seed, run twice
// in-process, must produce a byte-identical digest of every observable
// (fault schedule, recovery reports, stats, image checksums). If this
// fails, the harness — or the tree — picked up a source of
// nondeterminism, and every other stress failure stops being
// reproducible.
func TestStressDeterminism(t *testing.T) {
	const seed = 9001
	d1 := runStress(t, seed)
	d2 := runStress(t, seed)
	if d1 != d2 {
		t.Fatalf("seed %d diverged between two in-process runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", seed, d1, d2)
	}
}
