package fault

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/patree/patree/internal/core"
	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/sim"
	"github.com/patree/patree/internal/simos"
	"github.com/patree/patree/internal/storage"
)

// The sharded stress harness is the N-worker port of stress_test.go:
// one simulated device carved into N shard partitions, N journaled
// trees over ONE fault-injecting wrapper (so a crash hits every shard
// at the same device instant), a randomized stream of cross-shard
// batches, and per-shard recovery checked against a global oracle:
//
//   - every acknowledged write must survive, whatever shard owns it;
//   - a batch whose members were ALL acknowledged must never be torn by
//     the crash: each member's effect survives unless a later
//     acknowledged operation overwrote that key (shards recover
//     independently, so this is exactly the cross-shard guarantee the
//     per-shard journals must add up to);
//   - after a clean close the merged image equals the oracle exactly.
//
// Every failure message carries the seed and shard count, which
// reproduce the run bit-for-bit.

const (
	shardedStressShards   = 4
	shardedShardBlocks    = 1 << 12 // per shard; 4 shards = the flat harness's 1<<14
	shardedStressPhases   = 5       // crash in the first 4, clean close in the last
	shardedBatchesPhase   = 30
	shardedBatchSize      = 6
	shardedStressKeySpace = 512
	shardedWindow         = 3 // concurrent in-flight batches
)

// sbMember is one mutation inside a cross-shard batch.
type sbMember struct {
	key uint64
	del bool
	val []byte
	// ackIdx is the global acknowledgement sequence number of this
	// member's op; the member is authoritative for its key iff no later
	// acked op touched the key.
	ackIdx int
}

// sBatch tracks one batch's lifecycle across shards.
type sBatch struct {
	id       int
	members  []sbMember
	resolved int
	failed   int
}

// runShardedStress executes one multi-phase sharded run and returns a
// determinism digest (see runStress).
func runShardedStress(t *testing.T, seed uint64, shards int) string {
	t.Helper()
	rng := sim.NewRNG(seed ^ 0x5ade)
	persistence := core.WeakPersistence
	if seed%2 == 1 {
		persistence = core.StrongPersistence
	}
	totalBlocks := uint64(shards) * shardedShardBlocks
	model := map[uint64][]byte{}
	amb := map[uint64][]ambState{}
	lastAck := map[uint64]int{}
	ackSeq := 0
	var fullyAcked []*sBatch
	var img map[uint64][]byte
	var digest strings.Builder
	fmt.Fprintf(&digest, "seed=%d shards=%d persistence=%s\n", seed, shards, persistence)

	// verifyBatches asserts no fully-acked batch was torn: every member
	// still authoritative for its key must have its effect in pairs.
	verifyBatches := func(phase int, pairs map[uint64][]byte) {
		for _, b := range fullyAcked {
			for _, m := range b.members {
				if lastAck[m.key] != m.ackIdx {
					continue // a later acked op owns the key now
				}
				if len(amb[m.key]) > 0 {
					continue // a failed op left the key ambiguous; verifyOracle covers it
				}
				got, ok := pairs[m.key]
				if m.del && ok {
					t.Fatalf("seed %d shards %d phase %d: torn batch %d: deleted key %d resurfaced as %q",
						seed, shards, phase, b.id, m.key, got)
				}
				if !m.del && (!ok || !bytes.Equal(got, m.val)) {
					t.Fatalf("seed %d shards %d phase %d: torn batch %d: member key %d = %q(present=%v), want %q",
						seed, shards, phase, b.id, m.key, got, ok, m.val)
				}
			}
		}
	}

	batchID := 0
	for phase := 0; phase < shardedStressPhases; phase++ {
		crashPhase := phase < shardedStressPhases-1
		eng := sim.NewEngine()
		sd := nvme.NewSimDevice(eng, nvme.SimConfig{Seed: seed + uint64(phase)*977, NumBlocks: totalBlocks})
		metas := make([]*storage.Meta, shards)
		if img == nil {
			for i := 0; i < shards; i++ {
				part, err := nvme.NewPartition(sd, uint64(i)*shardedShardBlocks, shardedShardBlocks)
				if err != nil {
					t.Fatalf("seed %d shards %d: partition %d: %v", seed, shards, i, err)
				}
				if metas[i], err = core.FormatShard(part, uint16(i), uint16(shards)); err != nil {
					t.Fatalf("seed %d shards %d phase %d: format shard %d: %v", seed, shards, phase, i, err)
				}
			}
		} else {
			sd.LoadImage(img)
			for i := 0; i < shards; i++ {
				part, err := nvme.NewPartition(sd, uint64(i)*shardedShardBlocks, shardedShardBlocks)
				if err != nil {
					t.Fatalf("seed %d shards %d: partition %d: %v", seed, shards, i, err)
				}
				m, rep, rerr := core.Recover(part)
				if rerr != nil {
					t.Fatalf("seed %d shards %d phase %d: recover shard %d: %v", seed, shards, phase, i, rerr)
				}
				metas[i] = m
				fmt.Fprintf(&digest, "phase=%d shard=%d recover gen=%d recs=%d redone=%d keys=%d repaired=%v\n",
					phase, i, rep.Generation, rep.Records, rep.PagesRedone, rep.KeysCounted, rep.MetaRepaired)
			}
			pairs := collectShardedPairs(t, seed, shards, phase, sd, metas)
			verifyOracle(t, seed, phase, pairs, model, amb)
			verifyBatches(phase, pairs)
			model = pairs
			amb = map[uint64][]ambState{}
			fullyAcked = fullyAcked[:0]
			fmt.Fprintf(&digest, "phase=%d image crc=%08x keys=%d\n", phase, pairsCRC(pairs), len(pairs))
		}

		fcfg := Config{Seed: seed*1000003 + uint64(phase), Now: eng.Now}
		if crashPhase {
			fcfg.Probs = stressProbs()
		}
		fdev := New(sd, fcfg)

		osched := simos.New(eng, simos.Config{})
		trees := make([]*core.Tree, shards)
		for i := 0; i < shards; i++ {
			part, err := nvme.NewPartition(fdev, uint64(i)*shardedShardBlocks, shardedShardBlocks)
			if err != nil {
				t.Fatalf("seed %d shards %d: fault partition %d: %v", seed, shards, i, err)
			}
			i := i
			th := osched.Spawn(fmt.Sprintf("patree-shard%d", i), func(*simos.Thread) { trees[i].Run() })
			trees[i], err = core.New(part, core.Config{
				Persistence:  persistence,
				BufferPages:  48,
				Journal:      true,
				MaxIORetries: 8,
			}, core.SimEnv{T: th}, metas[i])
			if err != nil {
				t.Fatalf("seed %d shards %d phase %d: new tree %d: %v", seed, shards, phase, i, err)
			}
		}

		pending := map[uint64]bool{}
		inFlight := 0
		admitted, resolved, acked, failed := 0, 0, 0, 0
		crashAt := -1
		if crashPhase {
			crashAt = shardedBatchSize * (2 + rng.Intn(3*shardedBatchesPhase/4))
		}
		crashCalled := false

		// makeBatch builds one cross-shard batch of mutations on unique,
		// currently-idle keys and returns its ops routed per shard.
		makeBatch := func() []*core.Op {
			b := &sBatch{id: batchID}
			batchID++
			inFlight++
			ops := make([]*core.Op, 0, shardedBatchSize)
			for j := 0; j < shardedBatchSize; j++ {
				key := 1 + rng.Uint64n(shardedStressKeySpace)
				for pending[key] {
					key = 1 + rng.Uint64n(shardedStressKeySpace)
				}
				pending[key] = true
				mi := len(b.members)
				if rng.Intn(100) < 70 {
					val := []byte(fmt.Sprintf("s%d.p%d.b%d.%d", seed, phase, b.id, j))
					b.members = append(b.members, sbMember{key: key, val: val})
					var op *core.Op
					op = core.NewInsert(key, val, func(*core.Op) {
						resolved++
						b.resolved++
						delete(pending, key)
						if op.Res.Err == nil {
							acked++
							ackSeq++
							model[key] = val
							lastAck[key] = ackSeq
							b.members[mi].ackIdx = ackSeq
						} else {
							failed++
							b.failed++
							amb[key] = append(amb[key], ambState{present: true, val: val})
						}
						if b.resolved == len(b.members) {
							inFlight--
							if b.failed == 0 {
								fullyAcked = append(fullyAcked, b)
							}
						}
					})
					ops = append(ops, op)
				} else {
					b.members = append(b.members, sbMember{key: key, del: true})
					var op *core.Op
					op = core.NewDelete(key, func(*core.Op) {
						resolved++
						b.resolved++
						delete(pending, key)
						if op.Res.Err == nil {
							acked++
							ackSeq++
							delete(model, key)
							lastAck[key] = ackSeq
							b.members[mi].ackIdx = ackSeq
						} else {
							failed++
							b.failed++
							amb[key] = append(amb[key], ambState{present: false})
						}
						if b.resolved == len(b.members) {
							inFlight--
							if b.failed == 0 {
								fullyAcked = append(fullyAcked, b)
							}
						}
					})
					ops = append(ops, op)
				}
			}
			return ops
		}

		target := shardedBatchesPhase * shardedBatchSize
		for {
			if !crashCalled && admitted < target && inFlight < shardedWindow {
				ops := makeBatch()
				admitted += len(ops)
				eng.After(0, func() {
					// All members land at the same device instant across
					// their shards — the crash point falls mid-batch often.
					for _, op := range ops {
						trees[core.ShardOf(op.Key(), shards)].Admit(op)
					}
				})
			}
			if crashPhase && !crashCalled && resolved >= crashAt {
				crashCalled = true
				eng.After(0, func() {
					if err := fdev.Crash(); err != nil {
						t.Errorf("seed %d shards %d phase %d: crash: %v", seed, shards, phase, err)
					}
				})
			}
			if resolved == admitted && (crashCalled || admitted >= target) {
				break
			}
			if !eng.Step() {
				t.Fatalf("seed %d shards %d phase %d: simulation wedged with %d/%d ops resolved",
					seed, shards, phase, resolved, admitted)
			}
		}

		if !crashPhase {
			// Clean close: checkpoint every shard, then stop.
			syncsDone := 0
			syncOps := make([]*core.Op, shards)
			for i := range trees {
				syncOps[i] = core.NewSync(func(*core.Op) { syncsDone++ })
				i := i
				eng.After(0, func() { trees[i].Admit(syncOps[i]) })
			}
			for syncsDone < shards && eng.Step() {
			}
			if syncsDone < shards {
				t.Fatalf("seed %d shards %d phase %d: final syncs wedged (%d/%d)", seed, shards, phase, syncsDone, shards)
			}
			for i, op := range syncOps {
				if op.Res.Err != nil {
					t.Fatalf("seed %d shards %d phase %d: final sync shard %d: %v", seed, shards, phase, i, op.Res.Err)
				}
			}
		}
		for _, tr := range trees {
			tr.Stop()
		}
		eng.RunFor(time.Second)

		var appends, ckpts, ioerrs, retries uint64
		for _, tr := range trees {
			st := tr.StatsSnapshot()
			appends += st.JournalAppends
			ckpts += st.Checkpoints
			ioerrs += st.IOErrors
			retries += st.IORetries
		}
		c := fdev.Counts()
		fmt.Fprintf(&digest, "phase=%d admitted=%d acked=%d failed=%d appends=%d ckpts=%d ioerrs=%d retries=%d faults=%+v\n",
			phase, admitted, acked, failed, appends, ckpts, ioerrs, retries, c)

		var err error
		img, err = fdev.Snapshot()
		if err != nil {
			t.Fatalf("seed %d shards %d phase %d: snapshot: %v", seed, shards, phase, err)
		}
	}

	// Final gate: recover the cleanly-closed image shard by shard; the
	// merged view must match the oracle exactly.
	eng := sim.NewEngine()
	sd := nvme.NewSimDevice(eng, nvme.SimConfig{Seed: seed ^ 0xf1a1, NumBlocks: totalBlocks})
	sd.LoadImage(img)
	metas := make([]*storage.Meta, shards)
	for i := 0; i < shards; i++ {
		part, err := nvme.NewPartition(sd, uint64(i)*shardedShardBlocks, shardedShardBlocks)
		if err != nil {
			t.Fatalf("seed %d shards %d: final partition %d: %v", seed, shards, i, err)
		}
		m, rep, err := core.Recover(part)
		if err != nil {
			t.Fatalf("seed %d shards %d: final recover shard %d: %v", seed, shards, i, err)
		}
		if rep.PagesRedone != 0 {
			t.Errorf("seed %d shards %d: clean close left %d pages to redo on shard %d", seed, shards, rep.PagesRedone, i)
		}
		metas[i] = m
	}
	pairs := collectShardedPairs(t, seed, shards, shardedStressPhases, sd, metas)
	if len(pairs) != len(model) {
		t.Fatalf("seed %d shards %d: final image has %d keys, oracle %d", seed, shards, len(pairs), len(model))
	}
	for k, v := range model {
		if got, ok := pairs[k]; !ok || !bytes.Equal(got, v) {
			t.Fatalf("seed %d shards %d: final image key %d = %q (present=%v), oracle %q", seed, shards, k, got, ok, v)
		}
	}
	fmt.Fprintf(&digest, "final crc=%08x keys=%d\n", pairsCRC(pairs), len(pairs))
	return digest.String()
}

// collectShardedPairs walks every shard's on-device image (partition-
// relative page ids offset to absolute LBAs) and merges the disjoint
// key sets into one map.
func collectShardedPairs(t *testing.T, seed uint64, shards, phase int, sd *nvme.SimDevice, metas []*storage.Meta) map[uint64][]byte {
	t.Helper()
	pairs := map[uint64][]byte{}
	for i, meta := range metas {
		base := uint64(i) * shardedShardBlocks
		read := func(id storage.PageID) *storage.Node {
			buf := make([]byte, storage.PageSize)
			sd.ReadAt(base+uint64(id), buf)
			n, err := storage.DecodeNode(id, buf)
			if err != nil {
				t.Fatalf("seed %d shards %d phase %d: shard %d page %d unreadable: %v", seed, shards, phase, i, id, err)
			}
			return n
		}
		n := read(meta.Root)
		for !n.IsLeaf() {
			n = read(n.Children[0])
		}
		for {
			for j, k := range n.Keys {
				if core.ShardOf(k, shards) != i {
					t.Fatalf("seed %d shards %d phase %d: key %d found on shard %d, ShardOf says %d",
						seed, shards, phase, k, i, core.ShardOf(k, shards))
				}
				if _, dup := pairs[k]; dup {
					t.Fatalf("seed %d shards %d phase %d: key %d present on two shards", seed, shards, phase, k)
				}
				v := make([]byte, len(n.Vals[j]))
				copy(v, n.Vals[j])
				pairs[k] = v
			}
			if n.Next == storage.NilPage {
				break
			}
			n = read(n.Next)
		}
	}
	return pairs
}

// TestShardedStressSeeds runs the cross-shard crash harness across many
// seeds (alternating weak/strong persistence by parity). Each run
// crashes all shards at 4 random mid-batch points plus a clean close.
// On failure, reproduce with the printed seed and shard count.
func TestShardedStressSeeds(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	for s := 1; s <= seeds; s++ {
		seed := uint64(s)
		t.Run(fmt.Sprintf("shards=%d/seed=%d", shardedStressShards, seed), func(t *testing.T) {
			runShardedStress(t, seed, shardedStressShards)
		})
	}
}

// TestShardedStressDeterminism guards reproducibility: the same seed,
// run twice in-process over 4 shards, must produce byte-identical
// digests — otherwise no sharded stress failure is debuggable.
func TestShardedStressDeterminism(t *testing.T) {
	const seed = 4242
	d1 := runShardedStress(t, seed, shardedStressShards)
	d2 := runShardedStress(t, seed, shardedStressShards)
	if d1 != d2 {
		t.Fatalf("seed %d shards %d diverged between two in-process runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			seed, shardedStressShards, d1, d2)
	}
}
