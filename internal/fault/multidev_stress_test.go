package fault

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/patree/patree/internal/core"
	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/sim"
	"github.com/patree/patree/internal/simos"
	"github.com/patree/patree/internal/storage"
)

// The multi-device stress harness extends sharded_stress_test.go to the
// topology the multi-device store runs in production: N shards placed
// round-robin over M devices, each device behind its OWN fault wrapper.
// Crash() is called on exactly one device per crash phase, which is the
// failure mode sharding across devices exists to contain:
//
//   - acked writes on the untouched device must survive WITHOUT journal
//     replay — its shards were checkpointed and closed cleanly after the
//     peer device died, so recovery must report zero pages redone;
//   - acked writes on the crashed device must survive via replay, same
//     as the single-device harness;
//   - a cross-shard batch admitted at one instant to shards on BOTH
//     devices (the multi-device TryCommit shape) must stay
//     all-or-nothing: if every member was acknowledged, each member's
//     effect survives the one-device crash unless a later acked op
//     overwrote that key;
//   - the untouched device keeps serving after the peer crashes: ops
//     acked there post-crash enter the oracle and must also survive.
//
// Every failure message carries the seed, which reproduces the run
// bit-for-bit.

const (
	mdStressShards    = 4
	mdStressDevices   = 2
	mdStressShardBlks = 1 << 12
	mdStressPhases    = 5 // crash one device in the first 4, clean close in the last
	mdBatchesPhase    = 30
	mdBatchSize       = 6
	mdStressKeySpace  = 512
	mdStressWindow    = 3 // concurrent in-flight batches
)

// mdDevOf and mdBaseOf mirror nvme.ShardPartitions' round-robin layout:
// shard i lives on device i%M, and the shards a device hosts split it
// equally in shard order.
func mdDevOf(shard int) int     { return shard % mdStressDevices }
func mdBaseOf(shard int) uint64 { return uint64(shard/mdStressDevices) * mdStressShardBlks }

func mdDevBlocks() uint64 {
	return uint64(mdStressShards/mdStressDevices) * mdStressShardBlks
}

// runMultiDevStress executes one multi-phase run over the N×M topology
// and returns a determinism digest (see runStress).
func runMultiDevStress(t *testing.T, seed uint64) string {
	t.Helper()
	rng := sim.NewRNG(seed ^ 0x3d5de55)
	persistence := core.WeakPersistence
	if seed%2 == 1 {
		persistence = core.StrongPersistence
	}
	model := map[uint64][]byte{}
	amb := map[uint64][]ambState{}
	lastAck := map[uint64]int{}
	ackSeq := 0
	var fullyAcked []*sBatch
	var imgs []map[uint64][]byte
	// cleanShard marks shards that were checkpointed and closed cleanly
	// in the previous phase; their recovery must redo nothing.
	cleanShard := make([]bool, mdStressShards)
	var digest strings.Builder
	fmt.Fprintf(&digest, "seed=%d shards=%d devices=%d persistence=%s\n",
		seed, mdStressShards, mdStressDevices, persistence)

	verifyBatches := func(phase int, pairs map[uint64][]byte) {
		for _, b := range fullyAcked {
			for _, m := range b.members {
				if lastAck[m.key] != m.ackIdx {
					continue // a later acked op owns the key now
				}
				if len(amb[m.key]) > 0 {
					continue // a failed op left the key ambiguous
				}
				got, ok := pairs[m.key]
				if m.del && ok {
					t.Fatalf("seed %d phase %d: torn cross-device batch %d: deleted key %d resurfaced as %q",
						seed, phase, b.id, m.key, got)
				}
				if !m.del && (!ok || !bytes.Equal(got, m.val)) {
					t.Fatalf("seed %d phase %d: torn cross-device batch %d: member key %d = %q(present=%v), want %q",
						seed, phase, b.id, m.key, got, ok, m.val)
				}
			}
		}
	}

	batchID := 0
	for phase := 0; phase < mdStressPhases; phase++ {
		crashPhase := phase < mdStressPhases-1
		crashDev := -1
		if crashPhase {
			crashDev = rng.Intn(mdStressDevices)
		}
		eng := sim.NewEngine()
		devs := make([]*nvme.SimDevice, mdStressDevices)
		for d := range devs {
			devs[d] = nvme.NewSimDevice(eng, nvme.SimConfig{
				Seed:      seed + uint64(phase)*977 + uint64(d)*131071,
				NumBlocks: mdDevBlocks(),
			})
		}
		metas := make([]*storage.Meta, mdStressShards)
		if imgs == nil {
			for i := 0; i < mdStressShards; i++ {
				part, err := nvme.NewPartition(devs[mdDevOf(i)], mdBaseOf(i), mdStressShardBlks)
				if err != nil {
					t.Fatalf("seed %d: partition %d: %v", seed, i, err)
				}
				metas[i], err = core.FormatShardDevice(part, uint16(i), mdStressShards,
					uint16(mdDevOf(i)), mdStressDevices)
				if err != nil {
					t.Fatalf("seed %d phase %d: format shard %d: %v", seed, phase, i, err)
				}
			}
		} else {
			for d := range devs {
				devs[d].LoadImage(imgs[d])
			}
			for i := 0; i < mdStressShards; i++ {
				part, err := nvme.NewPartition(devs[mdDevOf(i)], mdBaseOf(i), mdStressShardBlks)
				if err != nil {
					t.Fatalf("seed %d: partition %d: %v", seed, i, err)
				}
				m, rep, rerr := core.Recover(part)
				if rerr != nil {
					t.Fatalf("seed %d phase %d: recover shard %d (device %d): %v", seed, phase, i, mdDevOf(i), rerr)
				}
				if cleanShard[i] && rep.PagesRedone != 0 {
					t.Fatalf("seed %d phase %d: shard %d on the untouched device %d needed %d pages of replay — a crash on one device must not dirty its peers",
						seed, phase, i, mdDevOf(i), rep.PagesRedone)
				}
				if m.DeviceID != uint16(mdDevOf(i)) || m.DeviceCount != mdStressDevices {
					t.Fatalf("seed %d phase %d: shard %d device identity %d/%d did not survive, want %d/%d",
						seed, phase, i, m.DeviceID, m.DeviceCount, mdDevOf(i), mdStressDevices)
				}
				metas[i] = m
				fmt.Fprintf(&digest, "phase=%d shard=%d dev=%d recover gen=%d recs=%d redone=%d keys=%d repaired=%v\n",
					phase, i, mdDevOf(i), rep.Generation, rep.Records, rep.PagesRedone, rep.KeysCounted, rep.MetaRepaired)
			}
			pairs := collectMultiDevPairs(t, seed, phase, devs, metas)
			verifyOracle(t, seed, phase, pairs, model, amb)
			verifyBatches(phase, pairs)
			model = pairs
			amb = map[uint64][]ambState{}
			fullyAcked = fullyAcked[:0]
			fmt.Fprintf(&digest, "phase=%d image crc=%08x keys=%d\n", phase, pairsCRC(pairs), len(pairs))
		}

		// One fault wrapper per device. Only the crash-target device also
		// gets mild random injection: the untouched device must stay
		// error-free so its end-of-phase checkpoint provably succeeds.
		fdevs := make([]*Device, mdStressDevices)
		for d := range fdevs {
			fcfg := Config{Seed: seed*1000003 + uint64(phase)*17 + uint64(d), Now: eng.Now}
			if crashPhase && d == crashDev {
				fcfg.Probs = Probs{ReadErr: 0.01, WriteErr: 0.01, LatencySpike: 0.05}
			}
			fdevs[d] = New(devs[d], fcfg)
		}

		osched := simos.New(eng, simos.Config{})
		trees := make([]*core.Tree, mdStressShards)
		for i := 0; i < mdStressShards; i++ {
			part, err := nvme.NewPartition(fdevs[mdDevOf(i)], mdBaseOf(i), mdStressShardBlks)
			if err != nil {
				t.Fatalf("seed %d: fault partition %d: %v", seed, i, err)
			}
			i := i
			th := osched.Spawn(fmt.Sprintf("patree-shard%d", i), func(*simos.Thread) { trees[i].Run() })
			trees[i], err = core.New(part, core.Config{
				Persistence:  persistence,
				BufferPages:  48,
				Journal:      true,
				MaxIORetries: 8,
			}, core.SimEnv{T: th}, metas[i])
			if err != nil {
				t.Fatalf("seed %d phase %d: new tree %d: %v", seed, phase, i, err)
			}
		}

		pending := map[uint64]bool{}
		inFlight := 0
		admitted, resolved, acked, failed := 0, 0, 0, 0
		crashAt := -1
		if crashPhase {
			crashAt = mdBatchSize * (2 + rng.Intn(3*mdBatchesPhase/4))
		}
		crashCalled := false

		// pickKey draws a unique idle key; with dev >= 0 it resamples until
		// the key's shard lives on that device, so every batch provably
		// spans both devices (the cross-device TryCommit shape).
		pickKey := func(dev int) uint64 {
			for {
				key := 1 + rng.Uint64n(mdStressKeySpace)
				if pending[key] {
					continue
				}
				if dev >= 0 && mdDevOf(core.ShardOf(key, mdStressShards)) != dev {
					continue
				}
				return key
			}
		}

		// makeBatch builds one batch of mutations. Before the crash every
		// batch spans all devices (its first M members pin one per device);
		// after the crash new batches route entirely to live devices — the
		// crashed device's trees get no fresh work, the survivors keep
		// serving and their acks join the oracle.
		makeBatch := func() []*core.Op {
			b := &sBatch{id: batchID}
			batchID++
			inFlight++
			ops := make([]*core.Op, 0, mdBatchSize)
			for j := 0; j < mdBatchSize; j++ {
				var key uint64
				switch {
				case crashCalled:
					key = pickKey((crashDev + 1 + j%(mdStressDevices-1)) % mdStressDevices)
				case j < mdStressDevices:
					key = pickKey(j) // first M members pin one per device
				default:
					key = pickKey(-1)
				}
				pending[key] = true
				mi := len(b.members)
				onDone := func(op *core.Op, key uint64, del bool, val []byte) func(*core.Op) {
					return func(*core.Op) {
						resolved++
						b.resolved++
						delete(pending, key)
						if op.Res.Err == nil {
							acked++
							ackSeq++
							if del {
								delete(model, key)
							} else {
								model[key] = val
							}
							lastAck[key] = ackSeq
							b.members[mi].ackIdx = ackSeq
						} else {
							failed++
							b.failed++
							amb[key] = append(amb[key], ambState{present: !del, val: val})
						}
						if b.resolved == len(b.members) {
							inFlight--
							if b.failed == 0 {
								fullyAcked = append(fullyAcked, b)
							}
						}
					}
				}
				if rng.Intn(100) < 70 {
					val := []byte(fmt.Sprintf("s%d.p%d.b%d.%d", seed, phase, b.id, j))
					b.members = append(b.members, sbMember{key: key, val: val})
					var op *core.Op
					op = core.NewInsert(key, val, func(o *core.Op) { onDone(op, key, false, val)(o) })
					ops = append(ops, op)
				} else {
					b.members = append(b.members, sbMember{key: key, del: true})
					var op *core.Op
					op = core.NewDelete(key, func(o *core.Op) { onDone(op, key, true, nil)(o) })
					ops = append(ops, op)
				}
			}
			return ops
		}

		target := mdBatchesPhase * mdBatchSize
		for {
			// Keep admitting after the crash: the untouched device must go
			// on serving, and its post-crash acks join the oracle.
			if admitted < target && inFlight < mdStressWindow {
				ops := makeBatch()
				admitted += len(ops)
				eng.After(0, func() {
					for _, op := range ops {
						trees[core.ShardOf(op.Key(), mdStressShards)].Admit(op)
					}
				})
			}
			if crashPhase && !crashCalled && resolved >= crashAt {
				crashCalled = true
				eng.After(0, func() {
					if err := fdevs[crashDev].Crash(); err != nil {
						t.Errorf("seed %d phase %d: crash device %d: %v", seed, phase, crashDev, err)
					}
				})
			}
			if resolved == admitted && admitted >= target {
				break
			}
			if !eng.Step() {
				t.Fatalf("seed %d phase %d: simulation wedged with %d/%d ops resolved",
					seed, phase, resolved, admitted)
			}
		}

		// Checkpoint and cleanly close every shard the crash did not touch
		// (all of them in the final phase); their recovery next phase must
		// redo nothing.
		cleanShard = make([]bool, mdStressShards)
		var syncOps []*core.Op
		var syncShards []int
		syncsDone := 0
		for i := range trees {
			if crashPhase && mdDevOf(i) == crashDev {
				continue
			}
			op := core.NewSync(func(*core.Op) { syncsDone++ })
			syncOps = append(syncOps, op)
			syncShards = append(syncShards, i)
			i := i
			eng.After(0, func() { trees[i].Admit(op) })
		}
		for syncsDone < len(syncOps) && eng.Step() {
		}
		if syncsDone < len(syncOps) {
			t.Fatalf("seed %d phase %d: final syncs wedged (%d/%d)", seed, phase, syncsDone, len(syncOps))
		}
		for j, op := range syncOps {
			if op.Res.Err != nil {
				t.Fatalf("seed %d phase %d: final sync shard %d: %v", seed, phase, syncShards[j], op.Res.Err)
			}
			cleanShard[syncShards[j]] = true
		}
		for _, tr := range trees {
			tr.Stop()
		}
		eng.RunFor(time.Second)

		var appends, ckpts, ioerrs, retries uint64
		for _, tr := range trees {
			st := tr.StatsSnapshot()
			appends += st.JournalAppends
			ckpts += st.Checkpoints
			ioerrs += st.IOErrors
			retries += st.IORetries
		}
		fmt.Fprintf(&digest, "phase=%d crashdev=%d admitted=%d acked=%d failed=%d appends=%d ckpts=%d ioerrs=%d retries=%d\n",
			phase, crashDev, admitted, acked, failed, appends, ckpts, ioerrs, retries)
		imgs = make([]map[uint64][]byte, mdStressDevices)
		for d := range fdevs {
			var err error
			if imgs[d], err = fdevs[d].Snapshot(); err != nil {
				t.Fatalf("seed %d phase %d: snapshot device %d: %v", seed, phase, d, err)
			}
			fmt.Fprintf(&digest, "phase=%d dev=%d faults=%+v\n", phase, d, fdevs[d].Counts())
		}
	}

	// Final gate: recover the cleanly-closed images; every shard must redo
	// nothing and the merged view must match the oracle exactly.
	eng := sim.NewEngine()
	devs := make([]*nvme.SimDevice, mdStressDevices)
	for d := range devs {
		devs[d] = nvme.NewSimDevice(eng, nvme.SimConfig{Seed: seed ^ 0xf1a1 ^ uint64(d), NumBlocks: mdDevBlocks()})
		devs[d].LoadImage(imgs[d])
	}
	metas := make([]*storage.Meta, mdStressShards)
	for i := 0; i < mdStressShards; i++ {
		part, err := nvme.NewPartition(devs[mdDevOf(i)], mdBaseOf(i), mdStressShardBlks)
		if err != nil {
			t.Fatalf("seed %d: final partition %d: %v", seed, i, err)
		}
		m, rep, rerr := core.Recover(part)
		if rerr != nil {
			t.Fatalf("seed %d: final recover shard %d: %v", seed, i, rerr)
		}
		if rep.PagesRedone != 0 {
			t.Errorf("seed %d: clean close left %d pages to redo on shard %d", seed, rep.PagesRedone, i)
		}
		metas[i] = m
	}
	pairs := collectMultiDevPairs(t, seed, mdStressPhases, devs, metas)
	if len(pairs) != len(model) {
		t.Fatalf("seed %d: final image has %d keys, oracle %d", seed, len(pairs), len(model))
	}
	for k, v := range model {
		if got, ok := pairs[k]; !ok || !bytes.Equal(got, v) {
			t.Fatalf("seed %d: final image key %d = %q (present=%v), oracle %q", seed, k, got, ok, v)
		}
	}
	fmt.Fprintf(&digest, "final crc=%08x keys=%d\n", pairsCRC(pairs), len(pairs))
	return digest.String()
}

// collectMultiDevPairs walks every shard's on-device image across the
// device set and merges the disjoint key sets into one map.
func collectMultiDevPairs(t *testing.T, seed uint64, phase int, devs []*nvme.SimDevice, metas []*storage.Meta) map[uint64][]byte {
	t.Helper()
	pairs := map[uint64][]byte{}
	for i, meta := range metas {
		sd := devs[mdDevOf(i)]
		base := mdBaseOf(i)
		read := func(id storage.PageID) *storage.Node {
			buf := make([]byte, storage.PageSize)
			sd.ReadAt(base+uint64(id), buf)
			n, err := storage.DecodeNode(id, buf)
			if err != nil {
				t.Fatalf("seed %d phase %d: shard %d page %d unreadable: %v", seed, phase, i, id, err)
			}
			return n
		}
		n := read(meta.Root)
		for !n.IsLeaf() {
			n = read(n.Children[0])
		}
		for {
			for j, k := range n.Keys {
				if core.ShardOf(k, mdStressShards) != i {
					t.Fatalf("seed %d phase %d: key %d found on shard %d, ShardOf says %d",
						seed, phase, k, i, core.ShardOf(k, mdStressShards))
				}
				if _, dup := pairs[k]; dup {
					t.Fatalf("seed %d phase %d: key %d present on two shards", seed, phase, k)
				}
				v := make([]byte, len(n.Vals[j]))
				copy(v, n.Vals[j])
				pairs[k] = v
			}
			if n.Next == storage.NilPage {
				break
			}
			n = read(n.Next)
		}
	}
	return pairs
}

// TestMultiDevStressSeeds runs the one-device-crash harness across many
// seeds (alternating weak/strong persistence by parity). Each run
// crashes a single randomly-chosen device at 4 random mid-batch points
// plus a clean close; the peer device's shards must survive every crash
// without replay. On failure, reproduce with the printed seed.
func TestMultiDevStressSeeds(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	for s := 1; s <= seeds; s++ {
		seed := uint64(s)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runMultiDevStress(t, seed)
		})
	}
}

// TestMultiDevStressDeterminism guards reproducibility: the same seed,
// run twice in-process, must produce byte-identical digests.
func TestMultiDevStressDeterminism(t *testing.T) {
	const seed = 2424
	d1 := runMultiDevStress(t, seed)
	d2 := runMultiDevStress(t, seed)
	if d1 != d2 {
		t.Fatalf("seed %d diverged between two in-process runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			seed, d1, d2)
	}
}
