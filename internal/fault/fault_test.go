package fault

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/sim"
)

const bs = 512

// testRig couples an engine, a simulated device and a fault wrapper.
type testRig struct {
	eng *sim.Engine
	sd  *nvme.SimDevice
	dev *Device
	qp  nvme.QueuePair
}

func newTestRig(t *testing.T, cfg Config) *testRig {
	t.Helper()
	eng := sim.NewEngine()
	sd := nvme.NewSimDevice(eng, nvme.SimConfig{Seed: 7, NumBlocks: 1024})
	if cfg.Now == nil {
		cfg.Now = eng.Now
	}
	dev := New(sd, cfg)
	qp, err := dev.AllocQueuePair(64)
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{eng: eng, sd: sd, dev: dev, qp: qp}
}

// do submits one command and drives the simulation until its completion
// is delivered, returning the completion error.
func (r *testRig) do(t *testing.T, cmd *nvme.Command) error {
	t.Helper()
	done := false
	var got error
	cmd.Callback = func(c nvme.Completion) { done = true; got = c.Err }
	if err := r.qp.Submit(cmd); err != nil {
		t.Fatalf("submit: %v", err)
	}
	for i := 0; i < 1000 && !done; i++ {
		r.sd.Advance()
		r.qp.Probe(0)
		if !done {
			r.eng.RunFor(time.Millisecond)
		}
	}
	if !done {
		t.Fatal("completion never delivered")
	}
	return got
}

func pattern(b byte) []byte {
	buf := make([]byte, bs)
	for i := range buf {
		buf[i] = b
	}
	return buf
}

func TestPassthroughWhenDisabled(t *testing.T) {
	r := newTestRig(t, Config{Seed: 1, Probs: Probs{ReadErr: 1, WriteErr: 1, Timeout: 1}})
	r.dev.SetEnabled(false)
	if err := r.do(t, &nvme.Command{Op: nvme.OpWrite, LBA: 3, Blocks: 1, Buf: pattern(0xAA)}); err != nil {
		t.Fatalf("disabled write: %v", err)
	}
	buf := make([]byte, bs)
	if err := r.do(t, &nvme.Command{Op: nvme.OpRead, LBA: 3, Blocks: 1, Buf: buf}); err != nil {
		t.Fatalf("disabled read: %v", err)
	}
	if !bytes.Equal(buf, pattern(0xAA)) {
		t.Fatal("disabled wrapper corrupted data")
	}
	if c := r.dev.Counts(); c != (Counts{}) {
		t.Fatalf("faults injected while disabled: %+v", c)
	}
}

func TestErrorClasses(t *testing.T) {
	t.Run("write-err-leaves-media-untouched", func(t *testing.T) {
		r := newTestRig(t, Config{Seed: 2})
		r.dev.SetEnabled(false)
		r.do(t, &nvme.Command{Op: nvme.OpWrite, LBA: 5, Blocks: 1, Buf: pattern(0x11)})
		r.dev.SetEnabled(true)
		r.dev.cfg.Probs = Probs{WriteErr: 1}
		if err := r.do(t, &nvme.Command{Op: nvme.OpWrite, LBA: 5, Blocks: 1, Buf: pattern(0x22)}); err != nvme.ErrMedia {
			t.Fatalf("err = %v, want ErrMedia", err)
		}
		buf := make([]byte, bs)
		r.sd.ReadAt(5, buf)
		if !bytes.Equal(buf, pattern(0x11)) {
			t.Fatal("failed write modified the media")
		}
		if r.dev.Counts().WriteErrs != 1 {
			t.Fatalf("counts: %+v", r.dev.Counts())
		}
	})
	t.Run("read-err", func(t *testing.T) {
		r := newTestRig(t, Config{Seed: 3, Probs: Probs{ReadErr: 1}})
		buf := make([]byte, bs)
		if err := r.do(t, &nvme.Command{Op: nvme.OpRead, LBA: 1, Blocks: 1, Buf: buf}); err != nvme.ErrMedia {
			t.Fatalf("err = %v, want ErrMedia", err)
		}
	})
	t.Run("timeout", func(t *testing.T) {
		r := newTestRig(t, Config{Seed: 4, Probs: Probs{Timeout: 1}})
		if err := r.do(t, &nvme.Command{Op: nvme.OpFlush}); err != nvme.ErrTimeout {
			t.Fatalf("err = %v, want ErrTimeout", err)
		}
	})
}

func TestTornWrite(t *testing.T) {
	wide := func(b byte, blocks int) []byte {
		buf := make([]byte, bs*blocks)
		for i := range buf {
			buf[i] = b
		}
		return buf
	}
	r := newTestRig(t, Config{Seed: 5})
	r.dev.SetEnabled(false)
	r.do(t, &nvme.Command{Op: nvme.OpWrite, LBA: 9, Blocks: 4, Buf: wide(0x55, 4)})
	r.dev.SetEnabled(true)
	r.dev.cfg.Probs = Probs{TornWrite: 1}
	if err := r.do(t, &nvme.Command{Op: nvme.OpWrite, LBA: 9, Blocks: 4, Buf: wide(0xAA, 4)}); err != nvme.ErrMedia {
		t.Fatalf("torn write err = %v, want ErrMedia", err)
	}
	buf := make([]byte, 4*bs)
	r.sd.ReadAt(9, buf)
	cut := 0
	for cut < 4*bs && buf[cut] == 0xAA {
		cut++
	}
	if cut == 0 || cut == 4*bs {
		t.Fatalf("torn write left no tear (cut=%d)", cut)
	}
	if cut%bs != 0 {
		t.Fatalf("tear at byte %d is not block-aligned", cut)
	}
	if !bytes.Equal(buf[cut:], wide(0x55, 4)[cut:]) {
		t.Fatal("torn write suffix is not the old content")
	}
	if r.dev.Counts().TornWrites != 1 {
		t.Fatalf("counts: %+v", r.dev.Counts())
	}
}

// TestTornWriteSingleBlockAtomic pins the per-LBA atomicity contract: a
// single-block write is never torn even with the probability at 1.
func TestTornWriteSingleBlockAtomic(t *testing.T) {
	r := newTestRig(t, Config{Seed: 5})
	r.dev.SetEnabled(false)
	r.do(t, &nvme.Command{Op: nvme.OpWrite, LBA: 9, Blocks: 1, Buf: pattern(0x55)})
	r.dev.SetEnabled(true)
	r.dev.cfg.Probs = Probs{TornWrite: 1}
	if err := r.do(t, &nvme.Command{Op: nvme.OpWrite, LBA: 9, Blocks: 1, Buf: pattern(0xAA)}); err != nil {
		t.Fatalf("single-block write with TornWrite=1: %v", err)
	}
	buf := make([]byte, bs)
	r.sd.ReadAt(9, buf)
	if !bytes.Equal(buf, pattern(0xAA)) {
		t.Fatal("single-block write was torn")
	}
	if c := r.dev.Counts(); c.TornWrites != 0 {
		t.Fatalf("counts: %+v", c)
	}
}

func TestBitRot(t *testing.T) {
	r := newTestRig(t, Config{Seed: 6})
	r.dev.SetEnabled(false)
	r.do(t, &nvme.Command{Op: nvme.OpWrite, LBA: 2, Blocks: 1, Buf: pattern(0x00)})
	r.dev.SetEnabled(true)
	r.dev.cfg.Probs = Probs{BitRot: 1}
	buf := make([]byte, bs)
	if err := r.do(t, &nvme.Command{Op: nvme.OpRead, LBA: 2, Blocks: 1, Buf: buf}); err != nil {
		t.Fatalf("bit-rot read must report success, got %v", err)
	}
	flipped := 0
	for _, b := range buf {
		for ; b != 0; b &= b - 1 {
			flipped++
		}
	}
	if flipped != 1 {
		t.Fatalf("%d bits flipped, want exactly 1", flipped)
	}
	// The media itself is clean: re-read without injection.
	r.dev.SetEnabled(false)
	clean := make([]byte, bs)
	r.do(t, &nvme.Command{Op: nvme.OpRead, LBA: 2, Blocks: 1, Buf: clean})
	if !bytes.Equal(clean, pattern(0x00)) {
		t.Fatal("bit-rot corrupted the media, not just the transfer")
	}
}

func TestLatencySpike(t *testing.T) {
	r := newTestRig(t, Config{Seed: 7, Probs: Probs{LatencySpike: 1}, SpikeDelay: 5 * time.Millisecond})
	done := false
	cmd := &nvme.Command{Op: nvme.OpWrite, LBA: 1, Blocks: 1, Buf: pattern(0x77)}
	cmd.Callback = func(nvme.Completion) { done = true }
	if err := r.qp.Submit(cmd); err != nil {
		t.Fatal(err)
	}
	r.sd.Advance() // inner completion lands, delivery is deferred
	r.qp.Probe(0)
	if done {
		t.Fatal("spiked completion delivered before the delay")
	}
	r.eng.RunFor(10 * time.Millisecond)
	r.qp.Probe(0)
	if !done {
		t.Fatal("spiked completion never delivered")
	}
	if r.dev.Counts().Spikes != 1 {
		t.Fatalf("counts: %+v", r.dev.Counts())
	}
}

func TestCrashResolvesInflightWrites(t *testing.T) {
	wide := func(b byte) []byte {
		buf := make([]byte, 2*bs)
		for i := range buf {
			buf[i] = b
		}
		return buf
	}
	r := newTestRig(t, Config{Seed: 8})
	r.dev.SetEnabled(false)
	for i := uint64(0); i < 8; i++ {
		r.do(t, &nvme.Command{Op: nvme.OpWrite, LBA: 2 * i, Blocks: 2, Buf: wide(0x0F)})
	}
	// Eight two-block overwrites in flight: submitted, never probed.
	results := make([]error, 8)
	delivered := 0
	for i := uint64(0); i < 8; i++ {
		i := i
		cmd := &nvme.Command{Op: nvme.OpWrite, LBA: 2 * i, Blocks: 2, Buf: wide(0xF0)}
		cmd.Callback = func(c nvme.Completion) { results[i] = c.Err; delivered++ }
		if err := r.qp.Submit(cmd); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.dev.Crash(); err != nil {
		t.Fatal(err)
	}
	r.qp.Probe(0)
	if delivered != 8 {
		t.Fatalf("%d completions after crash, want 8", delivered)
	}
	for i, err := range results {
		if err != ErrCrashed {
			t.Fatalf("write %d: err = %v, want ErrCrashed", i, err)
		}
	}
	c := r.dev.Counts()
	if c.CrashKept+c.CrashReverted+c.CrashTorn != 8 {
		t.Fatalf("crash resolution counts don't sum to 8: %+v", c)
	}
	// Each individual block must be wholly old or wholly new (per-LBA
	// atomicity), and a torn command is a prefix of new blocks followed
	// by old ones — never interleaved garbage.
	torn := 0
	for i := uint64(0); i < 8; i++ {
		buf := make([]byte, 2*bs)
		r.sd.ReadAt(2*i, buf)
		isNew := func(blk []byte) bool { return bytes.Equal(blk, pattern(0xF0)) }
		isOld := func(blk []byte) bool { return bytes.Equal(blk, pattern(0x0F)) }
		b0, b1 := buf[:bs], buf[bs:]
		switch {
		case isNew(b0) && isNew(b1): // kept
		case isOld(b0) && isOld(b1): // reverted
		case isNew(b0) && isOld(b1): // torn at the block boundary
			torn++
		default:
			t.Fatalf("write %d left blocks in an impossible state", i)
		}
	}
	if int(c.CrashTorn) != torn {
		t.Fatalf("observed %d torn writes, counters say %d", torn, c.CrashTorn)
	}
	// The device is dead: new submissions complete with ErrCrashed.
	var postErr error
	post := &nvme.Command{Op: nvme.OpRead, LBA: 0, Blocks: 1, Buf: make([]byte, bs)}
	post.Callback = func(c nvme.Completion) { postErr = c.Err }
	if err := r.qp.Submit(post); err != nil {
		t.Fatal(err)
	}
	r.qp.Probe(0)
	if postErr != ErrCrashed {
		t.Fatalf("post-crash submit: err = %v, want ErrCrashed", postErr)
	}
}

// TestDeterministicSchedule pins the seed-reproducibility contract: the
// same seed and workload produce the identical fault sequence; a
// different seed produces a different one.
func TestDeterministicSchedule(t *testing.T) {
	run := func(seed uint64) (string, Counts) {
		r := newTestRig(t, Config{Seed: seed, Probs: Probs{
			ReadErr: 0.2, WriteErr: 0.2, Timeout: 0.1, BitRot: 0.1, TornWrite: 0.2, LatencySpike: 0.1,
		}})
		var trace bytes.Buffer
		for i := 0; i < 200; i++ {
			lba := uint64(i % 32)
			var err error
			if i%2 == 0 {
				err = r.do(t, &nvme.Command{Op: nvme.OpWrite, LBA: lba, Blocks: 1, Buf: pattern(byte(i))})
			} else {
				err = r.do(t, &nvme.Command{Op: nvme.OpRead, LBA: lba, Blocks: 1, Buf: make([]byte, bs)})
			}
			fmt.Fprintf(&trace, "%d:%v\n", i, err)
		}
		return trace.String(), r.dev.Counts()
	}
	t1, c1 := run(42)
	t2, c2 := run(42)
	if t1 != t2 || c1 != c2 {
		t.Fatalf("same seed diverged:\ncounts %+v vs %+v", c1, c2)
	}
	t3, c3 := run(43)
	if t1 == t3 && c1 == c3 {
		t.Fatal("different seeds produced identical schedules")
	}
}
