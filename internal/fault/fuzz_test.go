package fault

import (
	"bytes"
	"encoding/binary"
	"sort"
	"testing"
	"time"

	"github.com/patree/patree/internal/core"
	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/sim"
	"github.com/patree/patree/internal/simos"
)

// FuzzTreeOps decodes the fuzzer's byte stream into a tree operation
// sequence and cross-checks every result against an in-memory model —
// the same oracle idea as the stress harness, but driven by
// coverage-guided input mutation instead of seeded randomness. The tree
// runs journaled over a deterministic simulated device, so any corpus
// file that trips an assertion replays exactly.
func FuzzTreeOps(f *testing.F) {
	f.Add([]byte{0, 0, 1, 5, 1, 0, 1, 5, 2, 0, 1, 0})
	f.Add([]byte{0, 1, 0, 3, 0, 1, 0, 7, 3, 0, 0, 0, 2, 1, 0, 0})
	f.Add(bytes.Repeat([]byte{0, 2, 3, 9, 1, 2, 3, 0}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		const chunk = 4
		ops := len(data) / chunk
		if ops == 0 {
			t.Skip()
		}
		if ops > 600 {
			ops = 600
		}
		eng := sim.NewEngine()
		sd := nvme.NewSimDevice(eng, nvme.SimConfig{Seed: 99, NumBlocks: 1 << 13})
		meta, err := core.Format(sd)
		if err != nil {
			t.Fatalf("format: %v", err)
		}
		osched := simos.New(eng, simos.Config{})
		var tree *core.Tree
		th := osched.Spawn("patree", func(*simos.Thread) { tree.Run() })
		tree, err = core.New(sd, core.Config{
			Persistence: core.WeakPersistence,
			BufferPages: 32,
			Journal:     true,
		}, core.SimEnv{T: th}, meta)
		if err != nil {
			t.Fatalf("new: %v", err)
		}
		defer func() {
			tree.Stop()
			eng.RunFor(time.Second)
		}()

		do := func(op *core.Op) core.Result {
			done := false
			op.Done = func(*core.Op) { done = true }
			eng.After(0, func() { tree.Admit(op) })
			for !done {
				if !eng.Step() {
					t.Fatal("simulation wedged")
				}
			}
			return op.Res
		}

		model := map[uint64][]byte{}
		for i := 0; i < ops; i++ {
			b := data[i*chunk : (i+1)*chunk]
			key := 1 + uint64(binary.LittleEndian.Uint16(b[1:3]))%256
			val := []byte{b[3], byte(key), byte(i)}
			switch b[0] % 5 {
			case 0, 1: // insert (upsert)
				_, existed := model[key]
				res := do(core.NewInsert(key, val, nil))
				if res.Err != nil {
					t.Fatalf("op %d: insert %d: %v", i, key, res.Err)
				}
				if res.Found != existed {
					t.Fatalf("op %d: insert %d replaced=%v, model %v", i, key, res.Found, existed)
				}
				model[key] = append([]byte(nil), val...)
			case 2: // delete
				_, existed := model[key]
				res := do(core.NewDelete(key, nil))
				if res.Err != nil {
					t.Fatalf("op %d: delete %d: %v", i, key, res.Err)
				}
				if res.Found != existed {
					t.Fatalf("op %d: delete %d found=%v, model %v", i, key, res.Found, existed)
				}
				delete(model, key)
			case 3: // search
				want, existed := model[key]
				res := do(core.NewSearch(key, nil))
				if res.Err != nil {
					t.Fatalf("op %d: search %d: %v", i, key, res.Err)
				}
				if res.Found != existed || (existed && !bytes.Equal(res.Value, want)) {
					t.Fatalf("op %d: search %d = %q/%v, model %q/%v", i, key, res.Value, res.Found, want, existed)
				}
			default: // range scan across the whole model
				res := do(core.NewRange(0, ^uint64(0), 0, nil))
				if res.Err != nil {
					t.Fatalf("op %d: scan: %v", i, res.Err)
				}
				if len(res.Pairs) != len(model) {
					t.Fatalf("op %d: scan saw %d keys, model %d", i, len(res.Pairs), len(model))
				}
				keys := make([]uint64, 0, len(model))
				for k := range model {
					keys = append(keys, k)
				}
				sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
				for j, kv := range res.Pairs {
					if kv.Key != keys[j] || !bytes.Equal(kv.Value, model[kv.Key]) {
						t.Fatalf("op %d: scan[%d] = %d/%q, model %d/%q",
							i, j, kv.Key, kv.Value, keys[j], model[keys[j]])
					}
				}
			}
		}
		// Final pass: everything the model holds must be in the tree.
		for k, want := range model {
			res := do(core.NewSearch(k, nil))
			if res.Err != nil || !res.Found || !bytes.Equal(res.Value, want) {
				t.Fatalf("final: key %d = %q/%v (err %v), model %q", k, res.Value, res.Found, res.Err, want)
			}
		}
	})
}
