// Package fault wraps an nvme.Device with deterministic fault injection
// for crash-recovery and robustness testing. Keyed by a seeded RNG and
// per-class probabilities, the wrapper injects command failures (media
// error, timeout), read bit-rot, torn multi-block writes and latency
// spikes — all decided at submission time in submission order, so a
// given seed and workload replays the exact same fault schedule.
//
// Crash() freezes the device mid-flight: every write whose completion
// was not yet delivered is resolved to fully-applied, torn, or reverted
// (RNG-chosen), all undelivered completions become ErrCrashed, and the
// surviving bytes can be snapshotted and reopened as a fresh device —
// the shape of a power loss under load.
package fault

import (
	"errors"
	"sync"
	"time"

	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/sim"
)

// ErrCrashed is the status of every command completion after Crash().
// It is deliberately not one of the nvme transient statuses: a robust
// caller must treat it as a dead device, not retry it.
var ErrCrashed = errors.New("fault: device crashed")

// Probs are per-command injection probabilities in [0, 1], drawn
// independently per submitted command.
type Probs struct {
	// ReadErr / WriteErr complete the command with nvme.ErrMedia without
	// executing it (a failed write changes nothing on the device).
	ReadErr  float64
	WriteErr float64
	// Timeout completes any command with nvme.ErrTimeout without
	// executing it.
	Timeout float64
	// BitRot flips one random bit of a read's returned buffer while
	// reporting success — the fault checksums exist to catch.
	BitRot float64
	// TornWrite applies a block-aligned prefix of a multi-block write
	// (the remaining blocks keep their previous content) and completes
	// with nvme.ErrMedia. Single-block writes are atomic and never torn.
	// Requires the wrapped device to support direct image access.
	TornWrite float64
	// LatencySpike delays the command's completion delivery by
	// Config.SpikeDelay.
	LatencySpike float64
}

// Imager is the direct image access torn writes and crash resolution
// need; *nvme.SimDevice implements it. Wrapping a device without it
// (e.g. *nvme.RAMDevice) disables TornWrite and Crash but keeps every
// other fault class.
type Imager interface {
	ReadAt(lba uint64, buf []byte)
	WriteAt(lba uint64, buf []byte)
}

// Config parameterizes the wrapper.
type Config struct {
	// Seed keys the injection RNG; identical seed + workload =>
	// identical fault schedule.
	Seed uint64
	// Probs are the per-class probabilities.
	Probs Probs
	// SpikeDelay is the extra completion delay of a LatencySpike fault
	// (default 2ms of the supplied clock).
	SpikeDelay time.Duration
	// Now supplies the virtual clock used for spike due-times. When nil,
	// spiked completions are simply deferred to the probe after next.
	Now func() sim.Time
}

// Counts reports how many faults of each class were injected.
type Counts struct {
	ReadErrs   uint64
	WriteErrs  uint64
	Timeouts   uint64
	BitRots    uint64
	TornWrites uint64
	Spikes     uint64
	// CrashTorn / CrashReverted / CrashKept classify how Crash resolved
	// the writes that were in flight at the crash instant.
	CrashTorn     uint64
	CrashReverted uint64
	CrashKept     uint64
}

// flight is one passthrough command whose completion has not been
// delivered to the caller yet. Writes carry byte snapshots of the old
// and new content so Crash can resolve them either way.
type flight struct {
	qp  *faultQP
	cmd *nvme.Command
	// cb is the caller's original callback: cmd.Callback is replaced by
	// the tracking wrapper at submit, so crash delivery must not use it.
	cb    func(nvme.Completion)
	pre   []byte // previous content (writes with an Imager)
	post  []byte // submitted content (writes with an Imager)
	start uint64 // first byte offset = LBA * blockSize
}

// Device wraps an nvme.Device with fault injection.
type Device struct {
	inner nvme.Device
	img   Imager // nil when inner has no direct image access

	// mu guards every mutable field below plus each queue pair's synth
	// buffer. In the deterministic simulation all calls arrive from one
	// cooperative thread and the lock is uncontended; over a real-time
	// device it makes Crash/Counts safe to call from another goroutine
	// while the working thread submits and probes. User callbacks and
	// inner Probe/Submit calls that can re-enter the wrapper are never
	// made while holding it.
	mu      sync.Mutex
	cfg     Config
	rng     *sim.RNG
	enabled bool
	crashed bool
	counts  Counts
	flights []*flight // undelivered passthrough commands, submit order
}

// New wraps inner. Injection starts enabled.
func New(inner nvme.Device, cfg Config) *Device {
	if cfg.SpikeDelay <= 0 {
		cfg.SpikeDelay = 2 * time.Millisecond
	}
	d := &Device{
		inner:   inner,
		cfg:     cfg,
		rng:     sim.NewRNG(cfg.Seed ^ 0xfa17dead),
		enabled: true,
	}
	if img, ok := inner.(Imager); ok {
		d.img = img
	}
	return d
}

// Inner returns the wrapped device.
func (d *Device) Inner() nvme.Device { return d.inner }

// SetEnabled toggles fault injection (crash tracking continues either
// way). Disable it while loading fixtures, enable it for the measured
// phase.
func (d *Device) SetEnabled(on bool) {
	d.mu.Lock()
	d.enabled = on
	d.mu.Unlock()
}

// SetProbs swaps the injection probabilities, e.g. to run a clean setup
// phase before arming the fault classes under test. The RNG stream is
// unaffected, so a fixed seed and workload stay reproducible.
func (d *Device) SetProbs(p Probs) {
	d.mu.Lock()
	d.cfg.Probs = p
	d.mu.Unlock()
}

// Counts returns a snapshot of the injection counters.
func (d *Device) Counts() Counts {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.counts
}

// Crashed reports whether Crash has been called.
func (d *Device) Crashed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed
}

// BlockSize implements nvme.Device.
func (d *Device) BlockSize() int { return d.inner.BlockSize() }

// NumBlocks implements nvme.Device.
func (d *Device) NumBlocks() uint64 { return d.inner.NumBlocks() }

// Close implements nvme.Device.
func (d *Device) Close() error { return d.inner.Close() }

// Advance forwards the simulation hook of a SimDevice-backed inner
// device, so wrappers layered above (an nvme.Partition per shard) can
// still drive setup and recovery I/O deterministically. No-op on
// real-time inners.
func (d *Device) Advance() {
	if a, ok := d.inner.(interface{ Advance() }); ok {
		a.Advance()
	}
}

// AllocQueuePair implements nvme.Device.
func (d *Device) AllocQueuePair(depth int) (nvme.QueuePair, error) {
	qp, err := d.inner.AllocQueuePair(depth)
	if err != nil {
		return nil, err
	}
	return &faultQP{d: d, inner: qp}, nil
}

// Crash freezes the device at this instant, as a power loss would:
// every write still in flight is resolved — kept in full, torn at a
// random block boundary, or reverted entirely — and every undelivered
// completion (in-flight, spiked, or synthesized) is replaced by an
// ErrCrashed completion. Subsequent submissions also complete with
// ErrCrashed. Requires an Imager-capable inner device.
//
// Tears happen only between the blocks of a multi-block command: a
// single-block write either lands in full or not at all, matching the
// per-LBA atomic-write guarantee NVMe devices provide (and that the
// tree's WAL tail-rewrite protocol depends on). Because overlapping
// in-flight writes to the same LBA are resolved in submission order,
// every outcome — including "kept" — rewrites the media explicitly.
func (d *Device) Crash() error {
	if d.img == nil {
		return errors.New("fault: inner device does not expose its image; cannot crash")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return nil
	}
	d.crashed = true
	bs := uint64(d.inner.BlockSize())
	for _, fl := range d.flights {
		if fl.cmd.Op == nvme.OpWrite && fl.pre != nil {
			outcome := d.rng.Intn(3)
			if outcome == 2 && fl.cmd.Blocks < 2 {
				outcome = 1 // single-block writes are atomic: never torn
			}
			switch outcome {
			case 0: // fully applied
				d.img.WriteAt(fl.start/bs, fl.post)
				d.counts.CrashKept++
			case 1: // reverted: the write never reached the media
				d.img.WriteAt(fl.start/bs, fl.pre)
				d.counts.CrashReverted++
			default: // torn: a block-aligned prefix of the new bytes landed
				cut := int(bs) * (1 + d.rng.Intn(fl.cmd.Blocks-1))
				mix := make([]byte, len(fl.post))
				copy(mix, fl.post[:cut])
				copy(mix[cut:], fl.pre[cut:])
				d.img.WriteAt(fl.start/bs, mix)
				d.counts.CrashTorn++
			}
		}
		// The caller never hears a good completion for anything that was
		// in flight, regardless of how the bytes were resolved.
		fl.qp.enqueue(synthCQE{cb: fl.cb, c: nvme.Completion{Cmd: fl.cmd, Err: ErrCrashed}})
	}
	d.flights = d.flights[:0]
	return nil
}

// Snapshot returns a deep copy of the surviving device image (after a
// crash, the bytes a reopened device would see). Supported only for
// inner devices exposing ImageSnapshot.
func (d *Device) Snapshot() (map[uint64][]byte, error) {
	type snapper interface{ ImageSnapshot() map[uint64][]byte }
	s, ok := d.inner.(snapper)
	if !ok {
		return nil, errors.New("fault: inner device does not support snapshots")
	}
	return s.ImageSnapshot(), nil
}

func (d *Device) track(fl *flight) { d.flights = append(d.flights, fl) }

func (d *Device) untrack(fl *flight) {
	for i, f := range d.flights {
		if f == fl {
			d.flights = append(d.flights[:i], d.flights[i+1:]...)
			return
		}
	}
}

// synthCQE is a completion the wrapper delivers itself: a synthesized
// failure, a spiked (delayed) real completion, or a post-crash error.
type synthCQE struct {
	cb     func(nvme.Completion)
	c      nvme.Completion
	due    sim.Time
	hasDue bool
}

// faultQP wraps one queue pair.
type faultQP struct {
	d     *Device
	inner nvme.QueuePair
	synth []synthCQE
	freed bool
}

func (q *faultQP) enqueue(s synthCQE) { q.synth = append(q.synth, s) }

// Submit implements nvme.QueuePair. Fault decisions are drawn here, in
// submission order, so the schedule is a pure function of seed and
// workload.
func (q *faultQP) Submit(cmd *nvme.Command) error {
	if cmd == nil {
		return nvme.ErrBadCommand
	}
	d := q.d
	d.mu.Lock()
	defer d.mu.Unlock()
	if q.freed {
		return nvme.ErrQueueFreed
	}
	if d.crashed {
		q.enqueue(synthCQE{cb: cmd.Callback, c: nvme.Completion{Cmd: cmd, Err: ErrCrashed}})
		return nil
	}
	p := d.cfg.Probs
	spike := false
	bitrot := -1
	if d.enabled {
		if p.Timeout > 0 && d.rng.Float64() < p.Timeout {
			d.counts.Timeouts++
			q.enqueue(synthCQE{cb: cmd.Callback, c: nvme.Completion{Cmd: cmd, Err: nvme.ErrTimeout}})
			return nil
		}
		switch cmd.Op {
		case nvme.OpRead:
			if p.ReadErr > 0 && d.rng.Float64() < p.ReadErr {
				d.counts.ReadErrs++
				q.enqueue(synthCQE{cb: cmd.Callback, c: nvme.Completion{Cmd: cmd, Err: nvme.ErrMedia}})
				return nil
			}
			if p.BitRot > 0 && d.rng.Float64() < p.BitRot {
				bitrot = d.rng.Intn(cmd.Blocks * d.inner.BlockSize() * 8)
			}
		case nvme.OpWrite:
			if p.WriteErr > 0 && d.rng.Float64() < p.WriteErr {
				d.counts.WriteErrs++
				q.enqueue(synthCQE{cb: cmd.Callback, c: nvme.Completion{Cmd: cmd, Err: nvme.ErrMedia}})
				return nil
			}
			if p.TornWrite > 0 && d.img != nil && cmd.Blocks > 1 && d.rng.Float64() < p.TornWrite {
				d.counts.TornWrites++
				q.tearWrite(cmd)
				return nil
			}
		}
		if p.LatencySpike > 0 && d.rng.Float64() < p.LatencySpike {
			d.counts.Spikes++
			spike = true
		}
	}
	return q.passthrough(cmd, bitrot, spike)
}

// tearWrite applies a block-aligned prefix of a multi-block write and
// fails it: the first blocks hold new bytes, the rest old ones, exactly
// what a power cut between per-LBA programs leaves behind. Single-block
// writes are atomic and never reach here.
func (q *faultQP) tearWrite(cmd *nvme.Command) {
	d := q.d
	bs := d.inner.BlockSize()
	n := cmd.Blocks * bs
	pre := make([]byte, n)
	d.img.ReadAt(cmd.LBA, pre)
	cut := bs * (1 + d.rng.Intn(cmd.Blocks-1))
	mix := make([]byte, n)
	copy(mix, cmd.Buf[:cut])
	copy(mix[cut:], pre[cut:])
	d.img.WriteAt(cmd.LBA, mix)
	q.enqueue(synthCQE{cb: cmd.Callback, c: nvme.Completion{Cmd: cmd, Err: nvme.ErrMedia}})
}

// passthrough forwards cmd to the real device, tracking it for crash
// resolution and applying bit-rot / spike post-processing on completion.
func (q *faultQP) passthrough(cmd *nvme.Command, bitrot int, spike bool) error {
	d := q.d
	fl := &flight{qp: q, cmd: cmd, cb: cmd.Callback}
	if cmd.Op == nvme.OpWrite && d.img != nil {
		n := cmd.Blocks * d.inner.BlockSize()
		fl.pre = make([]byte, n)
		d.img.ReadAt(cmd.LBA, fl.pre)
		fl.post = make([]byte, n)
		copy(fl.post, cmd.Buf[:n])
		fl.start = cmd.LBA * uint64(d.inner.BlockSize())
	}
	realCb := cmd.Callback
	buf := cmd.Buf
	cmd.Callback = func(c nvme.Completion) {
		// Runs from inner Probe, which the wrapper calls unlocked.
		d.mu.Lock()
		d.untrack(fl)
		if d.crashed {
			// Unreachable in the simulated setup (the wrapper stops probing
			// the inner device after a crash), kept as a hard stop.
			d.mu.Unlock()
			return
		}
		if bitrot >= 0 && c.Err == nil {
			buf[bitrot/8] ^= 1 << (bitrot % 8)
			d.counts.BitRots++
		}
		if spike {
			s := synthCQE{cb: realCb, c: c}
			if d.cfg.Now != nil {
				s.due = d.cfg.Now().Add(sim.Duration(d.cfg.SpikeDelay))
				s.hasDue = true
			}
			q.enqueue(s)
			d.mu.Unlock()
			return
		}
		d.mu.Unlock()
		if realCb != nil {
			realCb(c)
		}
	}
	if err := q.inner.Submit(cmd); err != nil {
		cmd.Callback = realCb
		return err
	}
	d.track(fl)
	return nil
}

// Probe implements nvme.QueuePair: reap the inner device (unless
// crashed), then deliver due synthesized completions FIFO. Both the
// inner probe and the synthesized callbacks run without the wrapper
// lock held, so completion handlers may re-enter Submit.
func (q *faultQP) Probe(max int) int {
	d := q.d
	d.mu.Lock()
	crashed := d.crashed
	d.mu.Unlock()
	n := 0
	if !crashed {
		n = q.inner.Probe(max)
	}
	d.mu.Lock()
	if len(q.synth) == 0 {
		d.mu.Unlock()
		return n
	}
	limit := -1
	if max > 0 {
		limit = max - n
		if limit <= 0 {
			d.mu.Unlock()
			return n
		}
	}
	var now sim.Time
	if d.cfg.Now != nil {
		now = d.cfg.Now()
	}
	var deliver []synthCQE
	rest := q.synth[:0]
	for _, s := range q.synth {
		ready := !s.hasDue || d.cfg.Now == nil || now >= s.due
		// After a crash the clock may never advance again; release
		// everything so pending operations can drain.
		if d.crashed {
			ready = true
			s.c.Err = ErrCrashed
		}
		if ready && (limit < 0 || len(deliver) < limit) {
			deliver = append(deliver, s)
		} else {
			rest = append(rest, s)
		}
	}
	q.synth = rest
	d.mu.Unlock()
	for _, s := range deliver {
		if s.cb != nil {
			s.cb(s.c)
		}
	}
	return n + len(deliver)
}

// Outstanding implements nvme.QueuePair.
func (q *faultQP) Outstanding() int {
	q.d.mu.Lock()
	pending := len(q.synth)
	crashed := q.d.crashed
	q.d.mu.Unlock()
	if crashed {
		return pending
	}
	return q.inner.Outstanding() + pending
}

// Free implements nvme.QueuePair.
func (q *faultQP) Free() error {
	q.d.mu.Lock()
	q.freed = true
	q.d.mu.Unlock()
	return q.inner.Free()
}
