// Package buffer implements the two software buffers of §III-C over the
// NVMe interface.
//
// The strong-persistence buffer (ReadOnly) caches clean page images only.
// Crucially, a page written by an update operation enters the cache only
// after its write I/O *completes* — never at submission — so cached data
// is always consistent with the NVM contents and a power failure can never
// expose a cached-but-unpersisted page (the rule §III-C derives).
//
// The weak-persistence buffer (ReadWrite) additionally absorbs writes in
// memory, marking pages dirty; dirty pages reach the device only on
// eviction or Sync(), which merges multiple updates of a hot page into one
// NVMe write and cuts the write-amplification factor.
//
// Buffers are passive: they never perform I/O. Eviction hands dirty
// victims back to the caller, which owns scheduling the write-back.
package buffer

import "github.com/patree/patree/internal/storage"

// Stats counts buffer effectiveness.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// WriteMerges counts writes absorbed into an already-dirty page — the
	// write-amplification savings of weak persistence.
	WriteMerges uint64
}

// HitRate returns Hits / (Hits + Misses), or 0 when no lookups happened.
func (s Stats) HitRate() float64 {
	tot := s.Hits + s.Misses
	if tot == 0 {
		return 0
	}
	return float64(s.Hits) / float64(tot)
}

// entry is an LRU node.
type entry struct {
	id    storage.PageID
	data  []byte
	dirty bool
	// epoch is a globally unique stamp assigned on each dirtying write;
	// it guards MarkClean. Global monotonicity matters: if epochs were
	// per-entry they would restart when a page is evicted and re-cached,
	// and a stale write-back completion could then clean a newer dirty
	// version, silently losing an update.
	epoch      uint64
	prev, next *entry
}

// lru is an intrusive LRU list with a map index. Capacity is in pages;
// capacity 0 disables the cache entirely.
type lru struct {
	cap       int
	m         map[storage.PageID]*entry
	head      entry // most-recent sentinel
	stats     Stats
	nextEpoch uint64
	// onEvict, when set, observes every page leaving the buffer — both
	// capacity evictions and explicit removals. The optimistic read path
	// mirrors buffer residency in its published-page table, and this hook
	// is how a departure reaches it.
	onEvict func(storage.PageID)
}

func newLRU(capacity int) *lru {
	l := &lru{cap: capacity, m: make(map[storage.PageID]*entry)}
	l.head.prev = &l.head
	l.head.next = &l.head
	return l
}

func (l *lru) unlink(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (l *lru) pushFront(e *entry) {
	e.prev = &l.head
	e.next = l.head.next
	l.head.next.prev = e
	l.head.next = e
}

func (l *lru) get(id storage.PageID) *entry {
	e := l.m[id]
	if e == nil {
		l.stats.Misses++
		return nil
	}
	l.stats.Hits++
	l.unlink(e)
	l.pushFront(e)
	return e
}

// peek looks up without touching recency or stats.
func (l *lru) peek(id storage.PageID) *entry { return l.m[id] }

// put inserts or refreshes id with data, returning an evicted entry (if
// the capacity forced one out) for the caller to handle.
func (l *lru) put(id storage.PageID, data []byte, dirty bool) (evicted *entry) {
	if l.cap <= 0 {
		return nil
	}
	if e := l.m[id]; e != nil {
		e.data = data
		if dirty {
			if e.dirty {
				l.stats.WriteMerges++
			}
			e.dirty = true
			l.nextEpoch++
			e.epoch = l.nextEpoch
		}
		l.unlink(e)
		l.pushFront(e)
		return nil
	}
	e := &entry{id: id, data: data, dirty: dirty}
	if dirty {
		l.nextEpoch++
		e.epoch = l.nextEpoch
	}
	l.m[id] = e
	l.pushFront(e)
	if len(l.m) > l.cap {
		victim := l.head.prev
		l.unlink(victim)
		delete(l.m, victim.id)
		l.stats.Evictions++
		if l.onEvict != nil {
			l.onEvict(victim.id)
		}
		return victim
	}
	return nil
}

func (l *lru) remove(id storage.PageID) {
	if e := l.m[id]; e != nil {
		l.unlink(e)
		delete(l.m, id)
		if l.onEvict != nil {
			l.onEvict(id)
		}
	}
}

// ReadOnly is the strong-persistence buffer: clean pages only.
type ReadOnly struct{ l *lru }

// NewReadOnly creates a read-only buffer holding up to capacity pages.
// Capacity 0 disables caching (every Get misses).
func NewReadOnly(capacity int) *ReadOnly { return &ReadOnly{l: newLRU(capacity)} }

// Get returns the cached image of id, if present. The returned slice is
// owned by the buffer; callers must not mutate it.
func (b *ReadOnly) Get(id storage.PageID) ([]byte, bool) {
	if e := b.l.get(id); e != nil {
		return e.data, true
	}
	return nil, false
}

// FillOnRead caches data after a read I/O completed. The buffer takes
// ownership of data.
func (b *ReadOnly) FillOnRead(id storage.PageID, data []byte) {
	b.l.put(id, data, false)
}

// FillOnWriteComplete caches data after a write I/O *completed*. Callers
// must not invoke this at submission time — see the package comment.
func (b *ReadOnly) FillOnWriteComplete(id storage.PageID, data []byte) {
	b.l.put(id, data, false)
}

// Invalidate drops id from the cache (e.g. when a page is freed).
func (b *ReadOnly) Invalidate(id storage.PageID) { b.l.remove(id) }

// SetOnEvict registers fn to observe every page leaving the buffer
// (capacity eviction or Invalidate). fn runs synchronously under the
// buffer's caller; it must not call back into the buffer.
func (b *ReadOnly) SetOnEvict(fn func(storage.PageID)) { b.l.onEvict = fn }

// Cap returns the configured capacity in pages (0 = caching disabled).
func (b *ReadOnly) Cap() int { return b.l.cap }

// Len returns the number of cached pages.
func (b *ReadOnly) Len() int { return len(b.l.m) }

// Stats returns cumulative counters.
func (b *ReadOnly) Stats() Stats { return b.l.stats }

// ResetStats zeroes the counters.
func (b *ReadOnly) ResetStats() { b.l.stats = Stats{} }

// Dirty describes a dirty page handed back by the ReadWrite buffer.
type Dirty struct {
	ID    storage.PageID
	Data  []byte
	Epoch uint64
}

// ReadWrite is the weak-persistence buffer.
type ReadWrite struct{ l *lru }

// NewReadWrite creates a read-write buffer holding up to capacity pages.
// Capacity 0 disables caching.
func NewReadWrite(capacity int) *ReadWrite { return &ReadWrite{l: newLRU(capacity)} }

// Get returns the cached image of id, if present.
func (b *ReadWrite) Get(id storage.PageID) ([]byte, bool) {
	if e := b.l.get(id); e != nil {
		return e.data, true
	}
	return nil, false
}

// FillOnRead caches a clean page after a read I/O completed. If filling
// evicts a dirty victim, it is returned for write-back.
func (b *ReadWrite) FillOnRead(id storage.PageID, data []byte) (Dirty, bool) {
	return wrapEvict(b.l.put(id, data, false))
}

// Write absorbs a page update in memory, marking it dirty. No I/O happens;
// if the insert evicts a dirty victim, it is returned for write-back.
func (b *ReadWrite) Write(id storage.PageID, data []byte) (Dirty, bool) {
	return wrapEvict(b.l.put(id, data, true))
}

func wrapEvict(e *entry) (Dirty, bool) {
	if e == nil || !e.dirty {
		return Dirty{}, false
	}
	return Dirty{ID: e.id, Data: e.data, Epoch: e.epoch}, true
}

// DirtyPages snapshots all dirty pages (for Sync). Order is eviction
// order, coldest first.
func (b *ReadWrite) DirtyPages() []Dirty {
	var out []Dirty
	for e := b.l.head.prev; e != &b.l.head; e = e.prev {
		if e.dirty {
			out = append(out, Dirty{ID: e.id, Data: e.data, Epoch: e.epoch})
		}
	}
	return out
}

// MarkClean marks id clean if its dirty epoch still equals epoch; a page
// rewritten after the snapshot keeps its dirty bit, so no update can be
// lost between a Sync snapshot and its write-back completions.
func (b *ReadWrite) MarkClean(id storage.PageID, epoch uint64) {
	if e := b.l.peek(id); e != nil && e.dirty && e.epoch == epoch {
		e.dirty = false
	}
}

// Invalidate drops id, returning its content if it was dirty so the
// caller can decide what to do with the lost update (used when freeing
// pages: the answer is "nothing").
func (b *ReadWrite) Invalidate(id storage.PageID) (Dirty, bool) {
	e := b.l.peek(id)
	if e == nil {
		return Dirty{}, false
	}
	b.l.remove(id)
	if e.dirty {
		return Dirty{ID: e.id, Data: e.data, Epoch: e.epoch}, true
	}
	return Dirty{}, false
}

// SetOnEvict registers fn to observe every page leaving the buffer
// (capacity eviction or Invalidate). fn runs synchronously under the
// buffer's caller; it must not call back into the buffer.
func (b *ReadWrite) SetOnEvict(fn func(storage.PageID)) { b.l.onEvict = fn }

// Cap returns the configured capacity in pages (0 = caching disabled).
func (b *ReadWrite) Cap() int { return b.l.cap }

// DirtyCount returns the number of dirty pages.
func (b *ReadWrite) DirtyCount() int {
	n := 0
	for e := b.l.head.next; e != &b.l.head; e = e.next {
		if e.dirty {
			n++
		}
	}
	return n
}

// Len returns the number of cached pages.
func (b *ReadWrite) Len() int { return len(b.l.m) }

// Stats returns cumulative counters.
func (b *ReadWrite) Stats() Stats { return b.l.stats }

// ResetStats zeroes the counters.
func (b *ReadWrite) ResetStats() { b.l.stats = Stats{} }
