package buffer

import (
	"testing"
	"testing/quick"

	"github.com/patree/patree/internal/storage"
)

func pid(i int) storage.PageID { return storage.PageID(i) }

func TestReadOnlyBasicHitMiss(t *testing.T) {
	b := NewReadOnly(2)
	if _, ok := b.Get(pid(1)); ok {
		t.Fatal("hit on empty buffer")
	}
	b.FillOnRead(pid(1), []byte("one"))
	got, ok := b.Get(pid(1))
	if !ok || string(got) != "one" {
		t.Fatalf("get = %q, %v", got, ok)
	}
	st := b.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", st.HitRate())
	}
}

func TestReadOnlyLRUEviction(t *testing.T) {
	b := NewReadOnly(2)
	b.FillOnRead(pid(1), []byte("1"))
	b.FillOnRead(pid(2), []byte("2"))
	b.Get(pid(1)) // 1 becomes most recent
	b.FillOnRead(pid(3), []byte("3"))
	if _, ok := b.Get(pid(2)); ok {
		t.Fatal("LRU victim 2 still cached")
	}
	if _, ok := b.Get(pid(1)); !ok {
		t.Fatal("recently-used 1 evicted")
	}
	if _, ok := b.Get(pid(3)); !ok {
		t.Fatal("new page 3 missing")
	}
	if b.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", b.Stats().Evictions)
	}
}

func TestReadOnlyZeroCapacityDisabled(t *testing.T) {
	b := NewReadOnly(0)
	b.FillOnRead(pid(1), []byte("1"))
	if b.Len() != 0 {
		t.Fatal("zero-capacity buffer cached a page")
	}
	if _, ok := b.Get(pid(1)); ok {
		t.Fatal("zero-capacity buffer hit")
	}
}

func TestReadOnlyWriteCompleteUpdates(t *testing.T) {
	b := NewReadOnly(4)
	b.FillOnRead(pid(1), []byte("old"))
	b.FillOnWriteComplete(pid(1), []byte("new"))
	got, _ := b.Get(pid(1))
	if string(got) != "new" {
		t.Fatalf("got %q", got)
	}
	if b.Len() != 1 {
		t.Fatalf("len = %d", b.Len())
	}
}

func TestReadOnlyInvalidate(t *testing.T) {
	b := NewReadOnly(4)
	b.FillOnRead(pid(1), []byte("1"))
	b.Invalidate(pid(1))
	if _, ok := b.Get(pid(1)); ok {
		t.Fatal("invalidated page still cached")
	}
	b.Invalidate(pid(42)) // no-op must not panic
}

func TestReadWriteDirtyLifecycle(t *testing.T) {
	b := NewReadWrite(4)
	if _, ev := b.Write(pid(1), []byte("v1")); ev {
		t.Fatal("unexpected eviction")
	}
	if b.DirtyCount() != 1 {
		t.Fatalf("dirty = %d", b.DirtyCount())
	}
	dirty := b.DirtyPages()
	if len(dirty) != 1 || dirty[0].ID != pid(1) || string(dirty[0].Data) != "v1" {
		t.Fatalf("dirty pages = %+v", dirty)
	}
	b.MarkClean(pid(1), dirty[0].Epoch)
	if b.DirtyCount() != 0 {
		t.Fatal("MarkClean did not clean")
	}
	// Page stays cached after cleaning.
	if got, ok := b.Get(pid(1)); !ok || string(got) != "v1" {
		t.Fatal("clean page lost")
	}
}

func TestReadWriteMarkCleanEpochGuard(t *testing.T) {
	b := NewReadWrite(4)
	b.Write(pid(1), []byte("v1"))
	snap := b.DirtyPages()
	// A second write lands between snapshot and write-back completion.
	b.Write(pid(1), []byte("v2"))
	b.MarkClean(pid(1), snap[0].Epoch)
	if b.DirtyCount() != 1 {
		t.Fatal("stale MarkClean wiped a newer update")
	}
	cur := b.DirtyPages()
	b.MarkClean(pid(1), cur[0].Epoch)
	if b.DirtyCount() != 0 {
		t.Fatal("current-epoch MarkClean failed")
	}
}

func TestReadWriteWriteMergeCounting(t *testing.T) {
	b := NewReadWrite(4)
	b.Write(pid(1), []byte("a"))
	b.Write(pid(1), []byte("b"))
	b.Write(pid(1), []byte("c"))
	if got := b.Stats().WriteMerges; got != 2 {
		t.Fatalf("write merges = %d, want 2", got)
	}
	got, _ := b.Get(pid(1))
	if string(got) != "c" {
		t.Fatalf("content = %q", got)
	}
}

func TestReadWriteEvictionReturnsDirtyVictim(t *testing.T) {
	b := NewReadWrite(2)
	b.Write(pid(1), []byte("1"))
	b.FillOnRead(pid(2), []byte("2"))
	// Insert a third page; LRU victim is dirty page 1.
	victim, ev := b.FillOnRead(pid(3), []byte("3"))
	if !ev || victim.ID != pid(1) || string(victim.Data) != "1" {
		t.Fatalf("victim = %+v, %v", victim, ev)
	}
	// Clean victims are not surfaced.
	_, ev = b.Write(pid(4), []byte("4")) // evicts clean page 2
	if ev {
		t.Fatal("clean victim surfaced as dirty")
	}
}

func TestReadWriteInvalidateDirty(t *testing.T) {
	b := NewReadWrite(4)
	b.Write(pid(1), []byte("1"))
	d, wasDirty := b.Invalidate(pid(1))
	if !wasDirty || string(d.Data) != "1" {
		t.Fatalf("invalidate = %+v, %v", d, wasDirty)
	}
	if _, ok := b.Get(pid(1)); ok {
		t.Fatal("page still present")
	}
	if _, wasDirty := b.Invalidate(pid(9)); wasDirty {
		t.Fatal("absent page reported dirty")
	}
}

func TestDirtyPagesColdestFirst(t *testing.T) {
	b := NewReadWrite(8)
	b.Write(pid(1), []byte("1"))
	b.Write(pid(2), []byte("2"))
	b.Write(pid(3), []byte("3"))
	b.Get(pid(1)) // 1 becomes hottest
	d := b.DirtyPages()
	if len(d) != 3 || d[0].ID != pid(2) || d[2].ID != pid(1) {
		t.Fatalf("order = %v", []storage.PageID{d[0].ID, d[1].ID, d[2].ID})
	}
}

// Property: cache never exceeds capacity, and a Get after Fill returns the
// last value written for that id (whichever of Write/FillOnRead came last)
// as long as the page was not evicted.
func TestBufferConsistencyProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		const capacity = 8
		b := NewReadWrite(capacity)
		shadow := map[storage.PageID][]byte{} // last value per id
		for _, o := range ops {
			id := pid(int(o % 16))
			val := []byte{byte(o >> 8)}
			switch (o / 16) % 3 {
			case 0:
				b.Write(id, val)
				shadow[id] = val
			case 1:
				b.FillOnRead(id, val)
				shadow[id] = val
			case 2:
				if got, ok := b.Get(id); ok {
					want := shadow[id]
					if want == nil || got[0] != want[0] {
						return false
					}
				}
			}
			if b.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: no dirty data is ever silently lost — every dirtying Write is
// either still dirty in the buffer, or was handed out via eviction /
// invalidation, or superseded by a newer write to the same page.
func TestNoSilentDirtyLossProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		const capacity = 4
		b := NewReadWrite(capacity)
		pending := map[storage.PageID]bool{} // dirty writes not yet accounted
		for _, o := range ops {
			id := pid(int(o % 8))
			switch (o / 8) % 2 {
			case 0:
				if v, ev := b.Write(id, []byte{byte(o)}); ev {
					delete(pending, v.ID)
				}
				pending[id] = true
			case 1:
				// The tree only fills pages it had to read from the device,
				// i.e. pages not currently buffered dirty; mirror that here.
				if pending[id] {
					continue
				}
				if v, ev := b.FillOnRead(id, []byte{byte(o)}); ev {
					delete(pending, v.ID)
				}
			}
			// Every pending page must still be dirty in the buffer.
			dirtyNow := map[storage.PageID]bool{}
			for _, d := range b.DirtyPages() {
				dirtyNow[d.ID] = true
			}
			for id := range pending {
				if !dirtyNow[id] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
