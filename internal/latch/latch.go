// Package latch implements the operation latches of §III-B: per-node
// shared/exclusive logical flags managed entirely by the working thread.
// No OS synchronization is involved — a latch is plain data, and granting
// one is a function call — which is exactly the property that lets PA-Tree
// avoid the semaphore and context-switch costs the baselines pay.
//
// Per the paper, each node has a read latch count r, a write latch count
// w, and a FIFO pending queue. A write latch is granted when r==0 && w==0,
// a read latch when w==0. Grants are first-request-first-grant: a request
// that arrives while others are queued waits behind them, and a release
// promotes pending requests from the front until the first non-grantable
// one.
//
// Because latches are worker-private data, they cannot and need not
// protect the ConcurrentReads fast path: optimistic readers on other
// goroutines never take latches, relying instead on the seqlock-versioned
// published-page table (core's pubTable) and B-link right-links for
// consistency.
package latch

import (
	"fmt"

	"github.com/patree/patree/internal/storage"
)

// Mode is the ownership flavor of a latch.
type Mode int

const (
	// Shared is read ownership; any number may hold it concurrently.
	Shared Mode = iota
	// Exclusive is write ownership; it excludes all other holders.
	Exclusive
)

// String returns "S" or "X".
func (m Mode) String() string {
	if m == Exclusive {
		return "X"
	}
	return "S"
}

// request is a queued latch request.
type request struct {
	mode  Mode
	grant func()
}

// nodeLatch is the per-node latch state.
type nodeLatch struct {
	r, w    int
	pending []request
}

// Table holds latch state for all nodes. State is allocated lazily and
// reclaimed when a node returns to fully-unlatched with no waiters, so the
// table's size tracks the working set, not the tree.
type Table struct {
	nodes map[storage.PageID]*nodeLatch
	// free recycles reclaimed nodeLatch records (and their pending-queue
	// capacity), so the steady-state acquire/release cycle of an
	// uncontended node allocates nothing.
	free   []*nodeLatch
	grants uint64
	waits  uint64
}

// NewTable returns an empty latch table.
func NewTable() *Table {
	return &Table{nodes: make(map[storage.PageID]*nodeLatch)}
}

// Acquire requests a latch on id in the given mode. If the latch is
// granted immediately it returns true (grant is NOT called). Otherwise
// the request is queued and grant will be called by a later Release, at
// which point the latch is held.
func (t *Table) Acquire(id storage.PageID, mode Mode, grant func()) bool {
	nl := t.nodes[id]
	if nl == nil {
		if n := len(t.free); n > 0 {
			nl = t.free[n-1]
			t.free[n-1] = nil
			t.free = t.free[:n-1]
		} else {
			nl = &nodeLatch{}
		}
		t.nodes[id] = nl
	}
	// First-request-first-grant: if anyone is queued, go behind them even
	// if the current counts would admit us (prevents writer starvation).
	if len(nl.pending) == 0 && nl.admits(mode) {
		nl.take(mode)
		t.grants++
		return true
	}
	nl.pending = append(nl.pending, request{mode: mode, grant: grant})
	t.waits++
	return false
}

// admits reports whether a latch in the given mode can be taken now.
func (nl *nodeLatch) admits(mode Mode) bool {
	if mode == Exclusive {
		return nl.r == 0 && nl.w == 0
	}
	return nl.w == 0
}

func (nl *nodeLatch) take(mode Mode) {
	if mode == Exclusive {
		nl.w++
	} else {
		nl.r++
	}
}

// Release drops a latch held on id in the given mode, then promotes
// pending requests from the front of the queue until the first one that
// cannot be granted. Each promoted request's grant callback runs before
// Release returns; callbacks must not re-enter the table for the same id
// synchronously (PA-Tree's callbacks only move operations to the ready
// set, satisfying this).
func (t *Table) Release(id storage.PageID, mode Mode) {
	nl := t.nodes[id]
	if nl == nil {
		panic(fmt.Sprintf("latch: release of unlatched node %d", id))
	}
	if mode == Exclusive {
		if nl.w == 0 {
			panic(fmt.Sprintf("latch: X-release with w=0 on node %d", id))
		}
		nl.w--
	} else {
		if nl.r == 0 {
			panic(fmt.Sprintf("latch: S-release with r=0 on node %d", id))
		}
		nl.r--
	}
	for len(nl.pending) > 0 && nl.admits(nl.pending[0].mode) {
		req := nl.pending[0]
		// Shift-dequeue so the slice keeps its base pointer and capacity
		// for reuse via the free list; queues are short, the copy is cheap.
		copy(nl.pending, nl.pending[1:])
		nl.pending[len(nl.pending)-1] = request{}
		nl.pending = nl.pending[:len(nl.pending)-1]
		nl.take(req.mode)
		t.grants++
		req.grant()
	}
	if nl.r == 0 && nl.w == 0 && len(nl.pending) == 0 {
		delete(t.nodes, id)
		t.free = append(t.free, nl)
	}
}

// Held reports the current (r, w) counts for id.
func (t *Table) Held(id storage.PageID) (r, w int) {
	if nl := t.nodes[id]; nl != nil {
		return nl.r, nl.w
	}
	return 0, 0
}

// PendingCount returns the number of queued requests on id.
func (t *Table) PendingCount(id storage.PageID) int {
	if nl := t.nodes[id]; nl != nil {
		return len(nl.pending)
	}
	return 0
}

// ActiveNodes returns the number of nodes with any latch state.
func (t *Table) ActiveNodes() int { return len(t.nodes) }

// Grants returns the cumulative number of granted latches.
func (t *Table) Grants() uint64 { return t.grants }

// Waits returns the cumulative number of requests that had to queue —
// the contention measure used by the Figure 12 analysis.
func (t *Table) Waits() uint64 { return t.waits }

// ResetStats zeroes the cumulative counters.
func (t *Table) ResetStats() { t.grants, t.waits = 0, 0 }

// Dump describes all latch state for diagnostics.
func (t *Table) Dump() string {
	s := ""
	for id, nl := range t.nodes {
		s += fmt.Sprintf("node %d: r=%d w=%d pending=%d; ", id, nl.r, nl.w, len(nl.pending))
	}
	return s
}
