package latch

import (
	"testing"
	"testing/quick"

	"github.com/patree/patree/internal/storage"
)

const nodeA = storage.PageID(1)

func TestSharedLatchesCoexist(t *testing.T) {
	tb := NewTable()
	for i := 0; i < 3; i++ {
		if !tb.Acquire(nodeA, Shared, nil) {
			t.Fatal("shared latch blocked with no writers")
		}
	}
	if r, w := tb.Held(nodeA); r != 3 || w != 0 {
		t.Fatalf("held = (%d,%d)", r, w)
	}
}

func TestExclusiveExcludes(t *testing.T) {
	tb := NewTable()
	if !tb.Acquire(nodeA, Exclusive, nil) {
		t.Fatal("first X blocked")
	}
	grantedS, grantedX := false, false
	if tb.Acquire(nodeA, Shared, func() { grantedS = true }) {
		t.Fatal("S granted while X held")
	}
	if tb.Acquire(nodeA, Exclusive, func() { grantedX = true }) {
		t.Fatal("second X granted while X held")
	}
	tb.Release(nodeA, Exclusive)
	if !grantedS {
		t.Fatal("queued S not promoted on release")
	}
	if grantedX {
		t.Fatal("X promoted while S head held") // S was first in queue
	}
	tb.Release(nodeA, Shared)
	if !grantedX {
		t.Fatal("X not promoted after S released")
	}
}

func TestWriteBlockedByReaders(t *testing.T) {
	tb := NewTable()
	tb.Acquire(nodeA, Shared, nil)
	tb.Acquire(nodeA, Shared, nil)
	granted := false
	if tb.Acquire(nodeA, Exclusive, func() { granted = true }) {
		t.Fatal("X granted with readers present")
	}
	tb.Release(nodeA, Shared)
	if granted {
		t.Fatal("X granted with one reader remaining")
	}
	tb.Release(nodeA, Shared)
	if !granted {
		t.Fatal("X not granted after last reader left")
	}
}

func TestFIFOPreventsReaderOvertaking(t *testing.T) {
	// Reader → queued writer → new reader: the new reader must queue
	// behind the writer (first-request-first-grant), not sneak in.
	tb := NewTable()
	tb.Acquire(nodeA, Shared, nil)
	var order []string
	tb.Acquire(nodeA, Exclusive, func() { order = append(order, "w") })
	if tb.Acquire(nodeA, Shared, func() { order = append(order, "r2") }) {
		t.Fatal("late reader overtook queued writer")
	}
	tb.Release(nodeA, Shared)
	// Writer granted; r2 still waiting.
	if len(order) != 1 || order[0] != "w" {
		t.Fatalf("order = %v", order)
	}
	tb.Release(nodeA, Exclusive)
	if len(order) != 2 || order[1] != "r2" {
		t.Fatalf("order = %v", order)
	}
}

func TestBatchPromotionOfReaders(t *testing.T) {
	// X held; queue = [S, S, X, S]. On X release the two leading S are
	// granted together; the queued X waits; the trailing S stays behind X.
	tb := NewTable()
	tb.Acquire(nodeA, Exclusive, nil)
	granted := make([]bool, 4)
	tb.Acquire(nodeA, Shared, func() { granted[0] = true })
	tb.Acquire(nodeA, Shared, func() { granted[1] = true })
	tb.Acquire(nodeA, Exclusive, func() { granted[2] = true })
	tb.Acquire(nodeA, Shared, func() { granted[3] = true })
	tb.Release(nodeA, Exclusive)
	if !granted[0] || !granted[1] || granted[2] || granted[3] {
		t.Fatalf("granted = %v, want [true true false false]", granted)
	}
	if r, _ := tb.Held(nodeA); r != 2 {
		t.Fatalf("r = %d", r)
	}
}

func TestReleasePanicsWhenNotHeld(t *testing.T) {
	tb := NewTable()
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		f()
	}
	mustPanic(func() { tb.Release(nodeA, Shared) })
	tb.Acquire(nodeA, Shared, nil)
	mustPanic(func() { tb.Release(nodeA, Exclusive) })
}

func TestStateReclaimed(t *testing.T) {
	tb := NewTable()
	tb.Acquire(nodeA, Shared, nil)
	tb.Acquire(storage.PageID(2), Exclusive, nil)
	if tb.ActiveNodes() != 2 {
		t.Fatalf("active = %d", tb.ActiveNodes())
	}
	tb.Release(nodeA, Shared)
	tb.Release(storage.PageID(2), Exclusive)
	if tb.ActiveNodes() != 0 {
		t.Fatalf("active after release = %d", tb.ActiveNodes())
	}
}

func TestStats(t *testing.T) {
	tb := NewTable()
	tb.Acquire(nodeA, Exclusive, nil)
	tb.Acquire(nodeA, Shared, func() {})
	if tb.Grants() != 1 || tb.Waits() != 1 {
		t.Fatalf("grants=%d waits=%d", tb.Grants(), tb.Waits())
	}
	tb.Release(nodeA, Exclusive) // promotes the S
	if tb.Grants() != 2 {
		t.Fatalf("grants=%d", tb.Grants())
	}
	tb.ResetStats()
	if tb.Grants() != 0 || tb.Waits() != 0 {
		t.Fatal("reset failed")
	}
}

func TestModeString(t *testing.T) {
	if Shared.String() != "S" || Exclusive.String() != "X" {
		t.Fatal("mode strings wrong")
	}
}

// Property: under any sequence of acquires and releases the invariants
// hold: w <= 1, never r > 0 and w > 0 simultaneously, and every queued
// request is eventually granted once all held latches are released.
func TestLatchInvariantsProperty(t *testing.T) {
	f := func(raw []byte) bool {
		tb := NewTable()
		id := storage.PageID(7)
		type held struct{ mode Mode }
		var holds []held
		queued := 0
		grantsPending := 0
		onGrant := func(m Mode) func() {
			return func() {
				holds = append(holds, held{m})
				grantsPending--
			}
		}
		check := func() bool {
			r, w := tb.Held(id)
			if w > 1 || (r > 0 && w > 0) {
				return false
			}
			nr, nw := 0, 0
			for _, h := range holds {
				if h.mode == Exclusive {
					nw++
				} else {
					nr++
				}
			}
			return r == nr && w == nw
		}
		for _, b := range raw {
			if b%3 != 0 || len(holds) == 0 { // acquire
				mode := Shared
				if b%2 == 0 {
					mode = Exclusive
				}
				grantsPending++
				if tb.Acquire(id, mode, onGrant(mode)) {
					holds = append(holds, held{mode})
					grantsPending--
				} else {
					queued++
				}
			} else { // release a random holder
				h := holds[int(b)%len(holds)]
				holds = append(holds[:int(b)%len(holds)], holds[int(b)%len(holds)+1:]...)
				tb.Release(id, h.mode)
			}
			if !check() {
				return false
			}
		}
		// Drain: release everything; all queued grants must fire.
		for len(holds) > 0 {
			h := holds[len(holds)-1]
			holds = holds[:len(holds)-1]
			tb.Release(id, h.mode)
			if !check() {
				return false
			}
		}
		return grantsPending == 0 && tb.ActiveNodes() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
