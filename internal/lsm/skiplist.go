// Package lsm implements a LevelDB-style log-structured merge tree from
// scratch: a skiplist memtable, a write-ahead log, sorted-run SSTables on
// the device, L0→L1 compaction and merging iterators. It is the LSM
// baseline of the paper's Figure 15 — in particular it reproduces
// LevelDB's behaviour that strong persistence requires a sync() system
// call per write, which the paper observes to be catastrophically slow.
package lsm

import "github.com/patree/patree/internal/sim"

const maxSkipLevel = 16

type skipNode struct {
	key       uint64
	value     []byte
	tombstone bool
	next      [maxSkipLevel]*skipNode
}

// skiplist is the memtable: sorted by key, last-writer-wins, with
// tombstones for deletes. Single simulated-step operations are atomic in
// the simulation; callers serialize with the tree mutex anyway.
type skiplist struct {
	head  *skipNode
	rng   *sim.RNG
	count int
	bytes int
}

func newSkiplist(seed uint64) *skiplist {
	return &skiplist{head: &skipNode{}, rng: sim.NewRNG(seed)}
}

func (s *skiplist) randLevel() int {
	lvl := 1
	for lvl < maxSkipLevel && s.rng.Uint64()&3 == 0 {
		lvl++
	}
	return lvl
}

// put inserts or replaces key.
func (s *skiplist) put(key uint64, value []byte, tombstone bool) {
	var update [maxSkipLevel]*skipNode
	x := s.head
	for i := maxSkipLevel - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
		update[i] = x
	}
	if n := x.next[0]; n != nil && n.key == key {
		s.bytes += len(value) - len(n.value)
		n.value = value
		n.tombstone = tombstone
		return
	}
	n := &skipNode{key: key, value: value, tombstone: tombstone}
	lvl := s.randLevel()
	for i := 0; i < lvl; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	s.count++
	s.bytes += 10 + len(value)
}

// get returns (value, tombstone, found).
func (s *skiplist) get(key uint64) ([]byte, bool, bool) {
	x := s.head
	for i := maxSkipLevel - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
	}
	if n := x.next[0]; n != nil && n.key == key {
		return n.value, n.tombstone, true
	}
	return nil, false, false
}

// seek returns the first node with key >= target.
func (s *skiplist) seek(target uint64) *skipNode {
	x := s.head
	for i := maxSkipLevel - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < target {
			x = x.next[i]
		}
	}
	return x.next[0]
}

// first returns the smallest node.
func (s *skiplist) first() *skipNode { return s.head.next[0] }
