package lsm

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/patree/patree/internal/baseline/syncbtree"
	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/sim"
	"github.com/patree/patree/internal/simos"
)

type rig struct {
	eng  *sim.Engine
	os   *simos.Sched
	dev  *nvme.SimDevice
	tree *Tree
	live map[*simos.Thread]bool
}

func newRig(t *testing.T, cfg Config) *rig {
	if t != nil {
		t.Helper()
	}
	r := &rig{live: map[*simos.Thread]bool{}}
	r.eng = sim.NewEngine()
	r.os = simos.New(r.eng, simos.Config{})
	r.dev = nvme.NewSimDevice(r.eng, nvme.SimConfig{Seed: 13})
	io := syncbtree.NewDedicated(r.dev, r.os)
	r.tree = New(r.os, io, r.dev, cfg)
	return r
}

func (r *rig) spawn(body func(*simos.Thread)) {
	var th *simos.Thread
	th = r.os.Spawn("w", func(tt *simos.Thread) {
		defer func() { r.live[tt] = false }()
		body(tt)
	})
	r.live[th] = true
}

func (r *rig) drive(t *testing.T) {
	t.Helper()
	for i := 0; i < 200_000_000; i++ {
		any := false
		for _, l := range r.live {
			if l {
				any = true
				break
			}
		}
		if !any {
			return
		}
		if !r.eng.Step() {
			t.Fatal("deadlock")
		}
	}
	t.Fatal("budget exhausted")
}

func TestSkiplistOrderedAndReplace(t *testing.T) {
	s := newSkiplist(1)
	rng := sim.NewRNG(2)
	model := map[uint64]byte{}
	for i := 0; i < 5000; i++ {
		k := rng.Uint64n(2000)
		v := byte(i)
		s.put(k, []byte{v}, false)
		model[k] = v
	}
	if s.count != len(model) {
		t.Fatalf("count = %d, want %d", s.count, len(model))
	}
	// In-order traversal is sorted and matches the model.
	prev := uint64(0)
	seen := 0
	for n := s.first(); n != nil; n = n.next[0] {
		if seen > 0 && n.key <= prev {
			t.Fatal("skiplist unordered")
		}
		if model[n.key] != n.value[0] {
			t.Fatalf("key %d = %d, want %d", n.key, n.value[0], model[n.key])
		}
		prev = n.key
		seen++
	}
	if seen != len(model) {
		t.Fatalf("traversed %d, want %d", seen, len(model))
	}
	// seek semantics.
	if n := s.seek(0); n == nil || n != s.first() {
		t.Fatal("seek(0) != first")
	}
	if n := s.seek(1 << 62); n != nil {
		t.Fatal("seek past end returned node")
	}
}

func TestBlockRoundTrip(t *testing.T) {
	es := []entry{
		{key: 1, value: []byte("a")},
		{key: 2, value: nil, tombstone: true},
		{key: 3, value: make([]byte, 100)},
	}
	got, err := decodeBlock(encodeBlock(es))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1].tombstone != true || len(got[2].value) != 100 {
		t.Fatalf("decoded %+v", got)
	}
}

func TestSpanAlloc(t *testing.T) {
	a := newSpanAlloc(10, 100)
	s1, _ := a.alloc(20)
	s2, _ := a.alloc(30)
	if s1 != 10 || s2 != 30 {
		t.Fatalf("allocs = %d, %d", s1, s2)
	}
	a.release(s1, 20)
	s3, _ := a.alloc(15)
	if s3 != 10 {
		t.Fatalf("first-fit reuse failed: %d", s3)
	}
	// Coalescing.
	a.release(s3, 15)
	a.release(25, 5) // remainder of the first span
	s4, _ := a.alloc(20)
	if s4 != 10 {
		t.Fatalf("coalesce failed: %d", s4)
	}
	if _, err := a.alloc(1000); err == nil {
		t.Fatal("overallocation accepted")
	}
}

func TestLSMBasicPutGetDelete(t *testing.T) {
	r := newRig(t, Config{Persistence: syncbtree.Weak})
	r.spawn(func(th *simos.Thread) {
		for i := 0; i < 500; i++ {
			if err := r.tree.Put(th, uint64(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Errorf("put: %v", err)
				return
			}
		}
		for i := 0; i < 500; i++ {
			v, found, _ := r.tree.Get(th, uint64(i))
			if !found || string(v) != fmt.Sprintf("v%d", i) {
				t.Errorf("get %d: %q %v", i, v, found)
				return
			}
		}
		r.tree.Delete(th, 100)
		if _, found, _ := r.tree.Get(th, 100); found {
			t.Error("deleted key found")
		}
		if _, found, _ := r.tree.Get(th, 99999); found {
			t.Error("phantom key")
		}
	})
	r.drive(t)
	if r.tree.NumKeys() != 499 {
		t.Fatalf("numKeys = %d", r.tree.NumKeys())
	}
}

func TestLSMFlushAndCompaction(t *testing.T) {
	// Small memtable forces flushes; L0Limit forces compaction.
	r := newRig(t, Config{Persistence: syncbtree.Weak, MemtableBytes: 4 << 10, L0Limit: 3})
	const n = 3000
	rng := sim.NewRNG(9)
	model := map[uint64]string{}
	r.spawn(func(th *simos.Thread) {
		for i := 0; i < n; i++ {
			k := rng.Uint64n(5000)
			v := fmt.Sprintf("v%d-%d", k, i)
			if err := r.tree.Put(th, k, []byte(v)); err != nil {
				t.Errorf("put: %v", err)
				return
			}
			model[k] = v
		}
	})
	r.drive(t)
	if r.tree.Flushes == 0 || r.tree.Compactions == 0 {
		t.Fatalf("flushes=%d compactions=%d; config did not exercise them", r.tree.Flushes, r.tree.Compactions)
	}
	// Every key readable with its latest value.
	bad := 0
	r.spawn(func(th *simos.Thread) {
		for k, v := range model {
			got, found, err := r.tree.Get(th, k)
			if err != nil || !found || string(got) != v {
				bad++
			}
		}
	})
	r.drive(t)
	if bad > 0 {
		t.Fatalf("%d keys wrong after flush+compaction", bad)
	}
	l0, l1 := r.tree.Levels()
	if l1 == 0 {
		t.Fatalf("levels = (%d, %d); compaction produced no L1", l0, l1)
	}
}

func TestLSMRangeScanAcrossSources(t *testing.T) {
	r := newRig(t, Config{Persistence: syncbtree.Weak, MemtableBytes: 2 << 10, L0Limit: 3})
	r.spawn(func(th *simos.Thread) {
		// Interleave keys so ranges span memtable, L0 and L1.
		for i := 0; i < 1200; i++ {
			k := uint64((i * 7) % 1500)
			r.tree.Put(th, k, []byte(fmt.Sprintf("v%d", k)))
		}
		r.tree.Delete(th, 500)
		pairs, err := r.tree.RangeScan(th, 490, 510, 0)
		if err != nil {
			t.Errorf("scan: %v", err)
			return
		}
		for i := 1; i < len(pairs); i++ {
			if pairs[i].Key <= pairs[i-1].Key {
				t.Error("scan unordered")
				return
			}
		}
		for _, kv := range pairs {
			if kv.Key == 500 {
				t.Error("tombstoned key in scan")
			}
			if string(kv.Value) != fmt.Sprintf("v%d", kv.Key) {
				t.Errorf("key %d value %q", kv.Key, kv.Value)
			}
		}
		// Limit respected.
		limited, _ := r.tree.RangeScan(th, 0, 10000, 5)
		if len(limited) != 5 {
			t.Errorf("limit: %d", len(limited))
		}
	})
	r.drive(t)
}

func TestLSMStrongSyncPerWrite(t *testing.T) {
	r := newRig(t, Config{Persistence: syncbtree.Strong})
	r.spawn(func(th *simos.Thread) {
		for i := 0; i < 40; i++ {
			r.tree.Put(th, uint64(i), []byte("v"))
		}
	})
	r.drive(t)
	st := r.dev.Stats()
	if st.CompletedFlushes < 40 {
		t.Fatalf("flushes = %d; strong LSM must fsync per write", st.CompletedFlushes)
	}
}

func TestLSMWeakDefersAllIO(t *testing.T) {
	r := newRig(t, Config{Persistence: syncbtree.Weak})
	r.spawn(func(th *simos.Thread) {
		for i := 0; i < 200; i++ {
			r.tree.Put(th, uint64(i), []byte("v"))
		}
	})
	r.drive(t)
	if w := r.dev.Stats().CompletedWrites; w > 5 {
		t.Fatalf("weak LSM wrote %d blocks without sync", w)
	}
	r.spawn(func(th *simos.Thread) {
		if err := r.tree.Sync(th); err != nil {
			t.Errorf("sync: %v", err)
		}
	})
	r.drive(t)
	if r.dev.Stats().CompletedWrites == 0 {
		t.Fatal("sync wrote nothing")
	}
}

func TestLSMConcurrentWriters(t *testing.T) {
	r := newRig(t, Config{Persistence: syncbtree.Weak, MemtableBytes: 8 << 10})
	const workers = 6
	for w := 0; w < workers; w++ {
		w := w
		r.spawn(func(th *simos.Thread) {
			for i := 0; i < 200; i++ {
				k := uint64(w*100000 + i)
				if err := r.tree.Put(th, k, []byte("v")); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		})
	}
	r.drive(t)
	if r.tree.NumKeys() != workers*200 {
		t.Fatalf("numKeys = %d", r.tree.NumKeys())
	}
	missing := 0
	r.spawn(func(th *simos.Thread) {
		for w := 0; w < workers; w++ {
			for i := 0; i < 200; i++ {
				if _, found, _ := r.tree.Get(th, uint64(w*100000+i)); !found {
					missing++
				}
			}
		}
	})
	r.drive(t)
	if missing > 0 {
		t.Fatalf("%d keys missing", missing)
	}
}

// Property: LSM behaves like a map under random put/delete/get sequences.
func TestLSMModelProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := newRig(nil, Config{Persistence: syncbtree.Weak, MemtableBytes: 2 << 10, L0Limit: 2, Seed: seed})
		rng := sim.NewRNG(seed)
		model := map[uint64][]byte{}
		ok := true
		r.spawn(func(th *simos.Thread) {
			for i := 0; i < 400; i++ {
				k := rng.Uint64n(300)
				switch rng.Intn(3) {
				case 0, 1:
					v := []byte{byte(rng.Uint64())}
					r.tree.Put(th, k, v)
					model[k] = v
				case 2:
					r.tree.Delete(th, k)
					delete(model, k)
				}
				if rng.Intn(10) == 0 {
					got, found, _ := r.tree.Get(th, k)
					want, exists := model[k]
					if found != exists || (found && got[0] != want[0]) {
						ok = false
						return
					}
				}
			}
		})
		for i := 0; i < 200_000_000; i++ {
			any := false
			for _, l := range r.live {
				if l {
					any = true
					break
				}
			}
			if !any {
				break
			}
			if !r.eng.Step() {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
