package lsm

import (
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/patree/patree/internal/baseline/syncbtree"
	"github.com/patree/patree/internal/simos"
	"github.com/patree/patree/internal/storage"
)

// entry is one key/value (or tombstone) in a table or memtable dump.
type entry struct {
	key       uint64
	value     []byte
	tombstone bool
}

// Data block layout (512 bytes): [0:2] count, then per entry
// [key 8][len 2] [value...]; the high bit of len marks a tombstone.
// Entries never span blocks.
const (
	blockHeader = 2
	tombBit     = 0x8000
)

func encodeBlock(entries []entry) []byte {
	buf := make([]byte, storage.PageSize)
	binary.LittleEndian.PutUint16(buf[0:2], uint16(len(entries)))
	off := blockHeader
	for _, e := range entries {
		binary.LittleEndian.PutUint64(buf[off:], e.key)
		l := uint16(len(e.value))
		if e.tombstone {
			l |= tombBit
		}
		binary.LittleEndian.PutUint16(buf[off+8:], l)
		copy(buf[off+10:], e.value)
		off += 10 + len(e.value)
	}
	return buf
}

func decodeBlock(buf []byte) ([]entry, error) {
	n := int(binary.LittleEndian.Uint16(buf[0:2]))
	out := make([]entry, 0, n)
	off := blockHeader
	for i := 0; i < n; i++ {
		if off+10 > len(buf) {
			return nil, fmt.Errorf("lsm: truncated block")
		}
		key := binary.LittleEndian.Uint64(buf[off:])
		l := binary.LittleEndian.Uint16(buf[off+8:])
		tomb := l&tombBit != 0
		vl := int(l &^ tombBit)
		if off+10+vl > len(buf) {
			return nil, fmt.Errorf("lsm: bad entry length")
		}
		v := append([]byte(nil), buf[off+10:off+10+vl]...)
		out = append(out, entry{key: key, value: v, tombstone: tomb})
		off += 10 + vl
	}
	return out, nil
}

func entrySize(e entry) int { return 10 + len(e.value) }

// table is an immutable sorted run on the device.
type table struct {
	id         uint64
	startBlock uint64
	numBlocks  uint64
	count      int
	minKey     uint64
	maxKey     uint64
	// firstKeys[i] is the first key in data block i (in-memory index).
	firstKeys []uint64
}

func (t *table) overlaps(lo, hi uint64) bool {
	return t.count > 0 && t.minKey <= hi && lo <= t.maxKey
}

// blockFor returns the index of the block that may contain key.
func (t *table) blockFor(key uint64) int {
	i := sort.Search(len(t.firstKeys), func(i int) bool { return t.firstKeys[i] > key })
	if i == 0 {
		return 0
	}
	return i - 1
}

// spanAlloc hands out contiguous block ranges with a first-fit free list,
// so compaction can recycle the space of dead tables.
type spanAlloc struct {
	next uint64 // bump pointer
	end  uint64
	free []span // sorted by start
}

type span struct{ start, n uint64 }

func newSpanAlloc(start, end uint64) *spanAlloc {
	return &spanAlloc{next: start, end: end}
}

func (a *spanAlloc) alloc(n uint64) (uint64, error) {
	for i, s := range a.free {
		if s.n >= n {
			start := s.start
			if s.n == n {
				a.free = append(a.free[:i], a.free[i+1:]...)
			} else {
				a.free[i] = span{start: s.start + n, n: s.n - n}
			}
			return start, nil
		}
	}
	if a.next+n > a.end {
		return 0, fmt.Errorf("lsm: table region full")
	}
	start := a.next
	a.next += n
	return start, nil
}

func (a *spanAlloc) release(start, n uint64) {
	a.free = append(a.free, span{start: start, n: n})
	sort.Slice(a.free, func(i, j int) bool { return a.free[i].start < a.free[j].start })
	// Coalesce adjacent spans.
	out := a.free[:0]
	for _, s := range a.free {
		if len(out) > 0 && out[len(out)-1].start+out[len(out)-1].n == s.start {
			out[len(out)-1].n += s.n
		} else {
			out = append(out, s)
		}
	}
	a.free = out
}

// writeTable persists sorted entries as a new table via blocking I/O.
func writeTable(th *simos.Thread, io syncbtree.IO, alloc *spanAlloc, id uint64, entries []entry) (*table, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("lsm: empty table")
	}
	// Pack entries into blocks.
	var blocks [][]byte
	var firstKeys []uint64
	var cur []entry
	curBytes := blockHeader
	flush := func() {
		if len(cur) == 0 {
			return
		}
		firstKeys = append(firstKeys, cur[0].key)
		blocks = append(blocks, encodeBlock(cur))
		cur = nil
		curBytes = blockHeader
	}
	for _, e := range entries {
		if curBytes+entrySize(e) > storage.PageSize {
			flush()
		}
		cur = append(cur, e)
		curBytes += entrySize(e)
	}
	flush()
	start, err := alloc.alloc(uint64(len(blocks)))
	if err != nil {
		return nil, err
	}
	for i, b := range blocks {
		if err := io.Write(th, start+uint64(i), b); err != nil {
			return nil, err
		}
	}
	return &table{
		id:         id,
		startBlock: start,
		numBlocks:  uint64(len(blocks)),
		count:      len(entries),
		minKey:     entries[0].key,
		maxKey:     entries[len(entries)-1].key,
		firstKeys:  firstKeys,
	}, nil
}
