package lsm

import (
	"encoding/binary"
	"sort"

	"github.com/patree/patree/internal/baseline/syncbtree"
	"github.com/patree/patree/internal/core"
	"github.com/patree/patree/internal/metrics"
	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/simos"
	"github.com/patree/patree/internal/storage"
	"github.com/patree/patree/internal/wal"
)

// Config parameterizes the LSM tree.
type Config struct {
	// Persistence: strong flushes the WAL (plus a device flush — the
	// sync() LevelDB issues) on every update; weak flushes on Sync().
	Persistence syncbtree.Persistence
	// MemtableBytes triggers a flush to L0 (default 128 KiB).
	MemtableBytes int
	// L0Limit is the number of L0 runs that triggers compaction into L1
	// (default 4, LevelDB's write-slowdown point).
	L0Limit int
	// WALBlocks is the log region size (default 1M blocks).
	WALBlocks uint64
	// CachePages is the read block cache size.
	CachePages int
	// Seed drives the skiplist.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.MemtableBytes <= 0 {
		c.MemtableBytes = 128 << 10
	}
	if c.L0Limit <= 0 {
		c.L0Limit = 4
	}
	if c.WALBlocks == 0 {
		c.WALBlocks = 1 << 20
	}
	return c
}

// Tree is the LSM store. The big-mutex design mirrors LevelDB: writers
// serialize on mu; memtable flushes and compactions run on the thread
// that triggered them (modelling LevelDB's write stalls).
type Tree struct {
	cfg   Config
	io    syncbtree.IO
	cache *syncbtree.Cache
	mu    *simos.Mutex

	mem *skiplist
	log *wal.Log

	l0, l1  []*table // l0 newest first; l1 sorted by minKey, disjoint
	alloc   *spanAlloc
	nextID  uint64
	numKeys int

	walStart uint64

	// Stats.
	Flushes     uint64
	Compactions uint64
}

// New creates an empty LSM tree over dev. The WAL occupies the top
// WALBlocks of the device; tables grow from block 1.
func New(sched *simos.Sched, io syncbtree.IO, dev nvme.Device, cfg Config) *Tree {
	cfg = cfg.withDefaults()
	walStart := dev.NumBlocks() - cfg.WALBlocks
	return &Tree{
		cfg:      cfg,
		io:       io,
		cache:    syncbtree.NewCache(cfg.CachePages, io),
		mu:       sched.NewMutex(),
		mem:      newSkiplist(cfg.Seed ^ 0x15f),
		log:      wal.NewLog(storage.PageSize, cfg.WALBlocks),
		alloc:    newSpanAlloc(1, walStart),
		walStart: walStart,
	}
}

// NumKeys returns the approximate live-key count (inserts minus deletes
// of present keys, counted at memtable level).
func (t *Tree) NumKeys() int { return t.numKeys }

// Levels reports the current (L0, L1) table counts.
func (t *Tree) Levels() (int, int) { return len(t.l0), len(t.l1) }

func encodeWALRec(key uint64, value []byte, tomb bool) []byte {
	rec := make([]byte, 9+len(value))
	if tomb {
		rec[0] = 1
	}
	binary.LittleEndian.PutUint64(rec[1:9], key)
	copy(rec[9:], value)
	return rec
}

func (t *Tree) flushWAL(th *simos.Thread) error {
	var ioErr error
	t.log.Flush(func(idx uint64, data []byte) {
		if err := t.io.Write(th, t.walStart+idx, data); err != nil {
			ioErr = err
		}
	})
	if ioErr != nil {
		return ioErr
	}
	return t.io.Flush(th)
}

// put is the shared write path.
func (t *Tree) put(th *simos.Thread, key uint64, value []byte, tomb bool) error {
	t.mu.Lock(th)
	if _, err := t.log.Append(encodeWALRec(key, value, tomb)); err != nil {
		t.mu.Unlock(th)
		return err
	}
	_, wasTomb, existed := t.mem.get(key)
	t.mem.put(key, append([]byte(nil), value...), tomb)
	if tomb {
		if !existed || !wasTomb {
			t.numKeys--
		}
	} else if !existed || wasTomb {
		t.numKeys++
	}
	th.Work(metrics.CatRealWork, 400)
	var err error
	if t.mem.bytes >= t.cfg.MemtableBytes {
		err = t.flushMemtable(th)
	}
	t.mu.Unlock(th)
	if err != nil {
		return err
	}
	if t.cfg.Persistence == syncbtree.Strong {
		// LevelDB with sync=true: every write costs a log write + fsync.
		t.mu.Lock(th)
		err = t.flushWAL(th)
		t.mu.Unlock(th)
	}
	return err
}

// Put inserts or replaces a key.
func (t *Tree) Put(th *simos.Thread, key uint64, value []byte) error {
	return t.put(th, key, value, false)
}

// Delete writes a tombstone.
func (t *Tree) Delete(th *simos.Thread, key uint64) error {
	return t.put(th, key, nil, true)
}

// flushMemtable dumps the memtable as a new L0 run (mu held).
func (t *Tree) flushMemtable(th *simos.Thread) error {
	var entries []entry
	for n := t.mem.first(); n != nil; n = n.next[0] {
		entries = append(entries, entry{key: n.key, value: n.value, tombstone: n.tombstone})
	}
	if len(entries) == 0 {
		return nil
	}
	t.nextID++
	tbl, err := writeTable(th, t.io, t.alloc, t.nextID, entries)
	if err != nil {
		return err
	}
	// The WAL content is now redundant: flush it once (cheap) and reset.
	if err := t.flushWAL(th); err != nil {
		return err
	}
	t.log.Reset(func(idx uint64, data []byte) { t.io.Write(th, t.walStart+idx, data) })
	t.mem = newSkiplist(t.cfg.Seed ^ t.nextID)
	t.l0 = append([]*table{tbl}, t.l0...)
	t.Flushes++
	if len(t.l0) >= t.cfg.L0Limit {
		return t.compact(th)
	}
	return nil
}

// compact merges all L0 runs with the overlapping part of L1 into fresh
// disjoint L1 tables (mu held).
func (t *Tree) compact(th *simos.Thread) error {
	lo, hi := ^uint64(0), uint64(0)
	for _, tb := range t.l0 {
		if tb.minKey < lo {
			lo = tb.minKey
		}
		if tb.maxKey > hi {
			hi = tb.maxKey
		}
	}
	var keep, merge []*table
	for _, tb := range t.l1 {
		if tb.overlaps(lo, hi) {
			merge = append(merge, tb)
		} else {
			keep = append(keep, tb)
		}
	}
	// Sources ordered newest-first: L0 runs (already newest-first), then
	// the old L1 tables (older than any L0).
	sources := append(append([]*table(nil), t.l0...), merge...)
	merged, err := t.mergeTables(th, sources)
	if err != nil {
		return err
	}
	// Write merged entries as ~256-block tables, dropping tombstones
	// (single-level compaction makes this safe: nothing older remains).
	var newTables []*table
	var cur []entry
	curBytes := 0
	emit := func() error {
		if len(cur) == 0 {
			return nil
		}
		t.nextID++
		tbl, err := writeTable(th, t.io, t.alloc, t.nextID, cur)
		if err != nil {
			return err
		}
		newTables = append(newTables, tbl)
		cur = nil
		curBytes = 0
		return nil
	}
	for _, e := range merged {
		if e.tombstone {
			continue
		}
		cur = append(cur, e)
		curBytes += entrySize(e)
		if curBytes >= 256*storage.PageSize {
			if err := emit(); err != nil {
				return err
			}
		}
	}
	if err := emit(); err != nil {
		return err
	}
	// Retire the inputs.
	for _, tb := range sources {
		t.alloc.release(tb.startBlock, tb.numBlocks)
	}
	t.l0 = nil
	t.l1 = append(keep, newTables...)
	sort.Slice(t.l1, func(i, j int) bool { return t.l1[i].minKey < t.l1[j].minKey })
	t.Compactions++
	th.Work(metrics.CatRealWork, 20000)
	return nil
}

// mergeTables performs an n-way merge; sources must be ordered newest
// first (earlier sources win on duplicate keys).
func (t *Tree) mergeTables(th *simos.Thread, sources []*table) ([]entry, error) {
	var lists [][]entry
	for _, tb := range sources {
		es, err := t.readAll(th, tb)
		if err != nil {
			return nil, err
		}
		lists = append(lists, es)
	}
	var out []entry
	mergeEntryLists(lists, func(e entry) bool {
		out = append(out, e)
		return true
	})
	return out, nil
}

// mergeEntryLists k-way merges entry lists ordered newest first: the
// newest occurrence of each key wins and shadows the rest. emit returns
// false to stop early.
func mergeEntryLists(lists [][]entry, emit func(entry) bool) {
	core.MergeRuns(len(lists),
		func(i int) int { return len(lists[i]) },
		func(i, j int) uint64 { return lists[i][j].key },
		true,
		func(i, j int) bool { return emit(lists[i][j]) })
}

// readAll loads every entry of a table.
func (t *Tree) readAll(th *simos.Thread, tb *table) ([]entry, error) {
	var out []entry
	for b := uint64(0); b < tb.numBlocks; b++ {
		es, err := t.readBlock(th, tb.startBlock+b)
		if err != nil {
			return nil, err
		}
		out = append(out, es...)
	}
	return out, nil
}

func (t *Tree) readBlock(th *simos.Thread, blk uint64) ([]entry, error) {
	if data, ok := t.cache.Get(storage.PageID(blk)); ok {
		th.Work(metrics.CatRealWork, 300)
		return decodeBlock(data)
	}
	buf := make([]byte, storage.PageSize)
	if err := t.io.Read(th, blk, buf); err != nil {
		return nil, err
	}
	if err := t.cache.FillOnRead(th, storage.PageID(blk), buf); err != nil {
		return nil, err
	}
	th.Work(metrics.CatRealWork, 300)
	return decodeBlock(buf)
}

// searchTable looks key up in one table.
func (t *Tree) searchTable(th *simos.Thread, tb *table, key uint64) ([]byte, bool, bool, error) {
	if key < tb.minKey || key > tb.maxKey {
		return nil, false, false, nil
	}
	es, err := t.readBlock(th, tb.startBlock+uint64(tb.blockFor(key)))
	if err != nil {
		return nil, false, false, err
	}
	i := sort.Search(len(es), func(i int) bool { return es[i].key >= key })
	if i < len(es) && es[i].key == key {
		return es[i].value, es[i].tombstone, true, nil
	}
	return nil, false, false, nil
}

// Get returns the value for key.
func (t *Tree) Get(th *simos.Thread, key uint64) ([]byte, bool, error) {
	t.mu.Lock(th)
	if v, tomb, ok := t.mem.get(key); ok {
		t.mu.Unlock(th)
		th.Work(metrics.CatRealWork, 300)
		return v, !tomb, nil
	}
	l0 := append([]*table(nil), t.l0...)
	l1 := append([]*table(nil), t.l1...)
	t.mu.Unlock(th)
	for _, tb := range l0 {
		v, tomb, found, err := t.searchTable(th, tb, key)
		if err != nil {
			return nil, false, err
		}
		if found {
			return v, !tomb, nil
		}
	}
	// L1 tables are disjoint; binary-search the covering table.
	i := sort.Search(len(l1), func(i int) bool { return l1[i].minKey > key })
	if i > 0 {
		v, tomb, found, err := t.searchTable(th, l1[i-1], key)
		if err != nil {
			return nil, false, err
		}
		if found {
			return v, !tomb, nil
		}
	}
	return nil, false, nil
}

// RangeScan merges the memtable and all tables over [lo, hi].
func (t *Tree) RangeScan(th *simos.Thread, lo, hi uint64, limit int) ([]core.KV, error) {
	t.mu.Lock(th)
	var lists [][]entry
	var memEntries []entry
	for n := t.mem.seek(lo); n != nil && n.key <= hi; n = n.next[0] {
		memEntries = append(memEntries, entry{key: n.key, value: n.value, tombstone: n.tombstone})
	}
	lists = append(lists, memEntries)
	l0 := append([]*table(nil), t.l0...)
	l1 := append([]*table(nil), t.l1...)
	t.mu.Unlock(th)

	collect := func(tb *table) error {
		if !tb.overlaps(lo, hi) {
			return nil
		}
		var es []entry
		for b := uint64(tb.blockFor(lo)); b < tb.numBlocks; b++ {
			blockEs, err := t.readBlock(th, tb.startBlock+b)
			if err != nil {
				return err
			}
			stop := false
			for _, e := range blockEs {
				if e.key > hi {
					stop = true
					break
				}
				if e.key >= lo {
					es = append(es, e)
				}
			}
			if stop {
				break
			}
		}
		lists = append(lists, es)
		return nil
	}
	for _, tb := range l0 {
		if err := collect(tb); err != nil {
			return nil, err
		}
	}
	for _, tb := range l1 {
		if err := collect(tb); err != nil {
			return nil, err
		}
	}
	// Merge newest-first (memtable first, then L0 newest-first, then L1).
	var out []core.KV
	mergeEntryLists(lists, func(e entry) bool {
		if !e.tombstone {
			out = append(out, core.KV{Key: e.key, Value: e.value})
			if limit > 0 && len(out) >= limit {
				return false
			}
		}
		return true
	})
	return out, nil
}

// SetPersistence switches the persistence mode, returning the previous
// one; the harness loads with weak persistence and measures in the
// target mode.
func (t *Tree) SetPersistence(p syncbtree.Persistence) syncbtree.Persistence {
	old := t.cfg.Persistence
	t.cfg.Persistence = p
	return old
}

// Sync makes all buffered updates durable (weak persistence's sync()).
func (t *Tree) Sync(th *simos.Thread) error {
	t.mu.Lock(th)
	err := t.flushWAL(th)
	t.mu.Unlock(th)
	return err
}
