package nvme

import "fmt"

// Partition is a Device view of a contiguous LBA range of a parent
// device. Each PA-Tree shard opens its own Partition and allocates its
// own queue pairs through it, so N shards drive N queue pairs into ONE
// underlying device: the parent's controller-interference and internal-
// parallelism accounting stay shared across all shards (a SimDevice
// parent still reproduces the Fig 3c interference shapes with every
// shard contributing load).
//
// A Partition does not own the parent: Close is a no-op and the parent
// must outlive all partitions carved from it.
type Partition struct {
	parent Device
	start  uint64
	blocks uint64
}

// NewPartition carves the block range [start, start+blocks) out of
// parent as a standalone Device.
func NewPartition(parent Device, start, blocks uint64) (*Partition, error) {
	if blocks == 0 || start+blocks < start || start+blocks > parent.NumBlocks() {
		return nil, fmt.Errorf("nvme: partition [%d,+%d) exceeds device of %d blocks: %w",
			start, blocks, parent.NumBlocks(), ErrOutOfRange)
	}
	return &Partition{parent: parent, start: start, blocks: blocks}, nil
}

// BlockSize implements Device.
func (p *Partition) BlockSize() int { return p.parent.BlockSize() }

// NumBlocks implements Device: the partition's size, not the parent's.
func (p *Partition) NumBlocks() uint64 { return p.blocks }

// Start returns the partition's first LBA on the parent device.
func (p *Partition) Start() uint64 { return p.start }

// Parent returns the device this partition was carved from. Multi-device
// topologies use it to reason about which shards share a controller: two
// partitions interfere only when their parents are the same device.
func (p *Partition) Parent() Device { return p.parent }

// ShardPartitions carves one partition per shard across several parent
// devices: placement[i] names shard i's device, and the shards assigned
// to one device split it equally, in shard order. It is the one layout
// routine shared by the embedder's multi-device open, the simulation
// harness and the fault tests, so all three agree on where a shard's
// blocks live. A nil placement defaults to round-robin (shard i on
// device i mod len(devs)); a placement entry out of range, a device with
// no shards, or a device too small for its share is an error.
func ShardPartitions(devs []Device, shards int, placement []int) ([]*Partition, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("nvme: no devices to place %d shards on", shards)
	}
	if placement == nil {
		placement = make([]int, shards)
		for i := range placement {
			placement[i] = i % len(devs)
		}
	}
	if len(placement) != shards {
		return nil, fmt.Errorf("nvme: placement names %d shards, topology has %d", len(placement), shards)
	}
	perDev := make([]int, len(devs))
	for i, d := range placement {
		if d < 0 || d >= len(devs) {
			return nil, fmt.Errorf("nvme: shard %d placed on device %d, have %d devices", i, d, len(devs))
		}
		perDev[d]++
	}
	for d, k := range perDev {
		if k == 0 {
			return nil, fmt.Errorf("nvme: device %d hosts no shards — remove it from the topology", d)
		}
	}
	// next[d] is the index (on device d) of the next shard assigned there.
	next := make([]int, len(devs))
	parts := make([]*Partition, shards)
	for i, d := range placement {
		per := devs[d].NumBlocks() / uint64(perDev[d])
		p, err := NewPartition(devs[d], uint64(next[d])*per, per)
		if err != nil {
			return nil, fmt.Errorf("nvme: shard %d on device %d: %w", i, d, err)
		}
		next[d]++
		parts[i] = p
	}
	return parts, nil
}

// Close implements Device as a no-op; the parent owns the backing.
func (p *Partition) Close() error { return nil }

// Advance forwards to the parent's simulation hook when it has one
// (SimDevice, or a fault wrapper over one), so setup and recovery I/O
// that drives the engine directly keeps working on a partition view.
// On real-time parents it does nothing and callers fall back to
// wall-clock polling.
func (p *Partition) Advance() {
	if a, ok := p.parent.(interface{ Advance() }); ok {
		a.Advance()
	}
}

// ReadAt gives direct image access relative to the partition when the
// parent supports it (SimDevice, RAMDevice). It panics otherwise; it
// exists for bulk loading and test harnesses, not the I/O path.
func (p *Partition) ReadAt(lba uint64, buf []byte) {
	p.parent.(interface{ ReadAt(uint64, []byte) }).ReadAt(p.start+lba, buf)
}

// WriteAt is the write counterpart of ReadAt.
func (p *Partition) WriteAt(lba uint64, buf []byte) {
	p.parent.(interface{ WriteAt(uint64, []byte) }).WriteAt(p.start+lba, buf)
}

// AllocQueuePair implements Device: the pair is allocated on the parent
// and wrapped so commands are validated against the partition and
// translated to parent LBAs on the way down, with completions carrying
// the caller's original command on the way back up.
func (p *Partition) AllocQueuePair(depth int) (QueuePair, error) {
	inner, err := p.parent.AllocQueuePair(depth)
	if err != nil {
		return nil, err
	}
	return &partQP{p: p, inner: inner}, nil
}

// partQP translates LBAs between partition and parent space. Like every
// QueuePair it is owned by a single thread, so the locally-failed list
// needs no lock.
type partQP struct {
	p     *Partition
	inner QueuePair
	// failed holds completions for commands rejected against the
	// partition bounds; they are delivered by Probe like device errors
	// so the caller sees one completion discipline.
	failed []Completion
}

// Submit implements QueuePair.
func (q *partQP) Submit(cmd *Command) error {
	if cmd == nil {
		return ErrBadCommand
	}
	if err := validate(q.p, cmd); err != nil {
		q.failed = append(q.failed, Completion{Cmd: cmd, Err: err})
		return nil
	}
	fwd := *cmd
	if fwd.Op != OpFlush {
		fwd.LBA += q.p.start
	}
	orig := cmd
	fwd.Callback = func(c Completion) {
		if orig.Callback != nil {
			c.Cmd = orig
			orig.Callback(c)
		}
	}
	return q.inner.Submit(&fwd)
}

// Probe implements QueuePair: locally-rejected commands complete first,
// then the parent queue is reaped for the remaining budget.
func (q *partQP) Probe(max int) int {
	n := 0
	if len(q.failed) > 0 {
		take := len(q.failed)
		if max > 0 && take > max {
			take = max
		}
		batch := q.failed[:take]
		q.failed = append(q.failed[:0], q.failed[take:]...)
		for _, c := range batch {
			if c.Cmd.Callback != nil {
				c.Cmd.Callback(c)
			}
		}
		n = take
		if max > 0 {
			max -= take
			if max == 0 {
				return n
			}
		}
	}
	return n + q.inner.Probe(max)
}

// Outstanding implements QueuePair.
func (q *partQP) Outstanding() int { return q.inner.Outstanding() + len(q.failed) }

// Free implements QueuePair.
func (q *partQP) Free() error { return q.inner.Free() }
