// Partition edge-case coverage lives in an external test package so it
// can exercise partitions over the fault-injection wrapper (internal/
// fault imports nvme; the reverse import is only legal from _test).
package nvme_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/patree/patree/internal/fault"
	"github.com/patree/patree/internal/nvme"
)

// syncIO submits one command on qp and polls until its completion is
// delivered, returning the completion error.
func syncIO(t *testing.T, qp nvme.QueuePair, cmd *nvme.Command) error {
	t.Helper()
	done := false
	var got error
	cmd.Callback = func(c nvme.Completion) { done = true; got = c.Err }
	if err := qp.Submit(cmd); err != nil {
		t.Fatalf("submit: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !done {
		qp.Probe(0)
		if time.Now().After(deadline) {
			t.Fatal("completion never delivered")
		}
	}
	return got
}

func TestNewPartitionRefusals(t *testing.T) {
	dev := nvme.NewRAMDevice(nvme.RAMConfig{NumBlocks: 1024})
	defer dev.Close()
	cases := []struct {
		name          string
		start, blocks uint64
	}{
		{"zero blocks", 0, 0},
		{"zero blocks offset", 512, 0},
		{"start beyond device", 2048, 1},
		{"start at device end", 1024, 1},
		{"length beyond device", 0, 1025},
		{"tail overrun", 1000, 100},
		{"start+blocks wraps uint64", ^uint64(0) - 10, 100},
	}
	for _, tc := range cases {
		if p, err := nvme.NewPartition(dev, tc.start, tc.blocks); err == nil {
			t.Errorf("%s: NewPartition(%d, %d) succeeded (%d blocks)", tc.name, tc.start, tc.blocks, p.NumBlocks())
		} else if !errors.Is(err, nvme.ErrOutOfRange) {
			t.Errorf("%s: error %v does not wrap ErrOutOfRange", tc.name, err)
		}
	}
	// The full device and the last single block are both legal.
	if _, err := nvme.NewPartition(dev, 0, 1024); err != nil {
		t.Errorf("full-device partition refused: %v", err)
	}
	if _, err := nvme.NewPartition(dev, 1023, 1); err != nil {
		t.Errorf("last-block partition refused: %v", err)
	}
}

// boundaryRoundTrip drives writes and reads at a partition's first and
// last block through its queue pair, verifying translation against the
// parent's raw image, and that one-past-the-end is refused with
// ErrOutOfRange delivered as a completion (the queue-pair discipline),
// not a submit error.
func boundaryRoundTrip(t *testing.T, parent nvme.Device, img interface {
	ReadAt(uint64, []byte)
}, start, blocks uint64) {
	t.Helper()
	p, err := nvme.NewPartition(parent, start, blocks)
	if err != nil {
		t.Fatalf("partition [%d,+%d): %v", start, blocks, err)
	}
	if p.Start() != start || p.NumBlocks() != blocks {
		t.Fatalf("geometry: start=%d blocks=%d, want %d/%d", p.Start(), p.NumBlocks(), start, blocks)
	}
	qp, err := p.AllocQueuePair(16)
	if err != nil {
		t.Fatalf("alloc qp: %v", err)
	}
	defer qp.Free()

	bs := p.BlockSize()
	for _, lba := range []uint64{0, blocks - 1} {
		want := bytes.Repeat([]byte{byte(0xA0 + lba)}, bs)
		if err := syncIO(t, qp, &nvme.Command{Op: nvme.OpWrite, LBA: lba, Blocks: 1, Buf: append([]byte(nil), want...)}); err != nil {
			t.Fatalf("write lba %d: %v", lba, err)
		}
		// The parent image must hold the bytes at the translated LBA.
		raw := make([]byte, bs)
		img.ReadAt(start+lba, raw)
		if !bytes.Equal(raw, want) {
			t.Fatalf("lba %d landed wrong on parent: got %x... want %x...", lba, raw[:4], want[:4])
		}
		got := make([]byte, bs)
		if err := syncIO(t, qp, &nvme.Command{Op: nvme.OpRead, LBA: lba, Blocks: 1, Buf: got}); err != nil {
			t.Fatalf("read lba %d: %v", lba, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("read back lba %d: got %x... want %x...", lba, got[:4], want[:4])
		}
	}

	// One past the end, and a multi-block overrun straddling the
	// boundary: refused at the partition, delivered as error
	// completions.
	for _, bad := range []*nvme.Command{
		{Op: nvme.OpRead, LBA: blocks, Blocks: 1, Buf: make([]byte, bs)},
		{Op: nvme.OpWrite, LBA: blocks, Blocks: 1, Buf: make([]byte, bs)},
		{Op: nvme.OpRead, LBA: blocks - 1, Blocks: 2, Buf: make([]byte, 2*bs)},
	} {
		if err := syncIO(t, qp, bad); !errors.Is(err, nvme.ErrOutOfRange) {
			t.Fatalf("op %v lba %d blocks %d: %v, want ErrOutOfRange", bad.Op, bad.LBA, bad.Blocks, err)
		}
	}
	// The parent block just past the partition must be untouched by the
	// refused write.
	if start+blocks < parent.NumBlocks() {
		raw := make([]byte, bs)
		img.ReadAt(start+blocks, raw)
		if !bytes.Equal(raw, make([]byte, bs)) {
			t.Fatalf("refused write leaked past the partition end")
		}
	}
}

func TestPartitionBoundaryIO(t *testing.T) {
	dev := nvme.NewRAMDevice(nvme.RAMConfig{NumBlocks: 4096})
	defer dev.Close()
	// Middle of the device: both edges are interior, so translation
	// mistakes in either direction would land on a live parent block.
	boundaryRoundTrip(t, dev, dev, 1024, 512)
	// Tail of the device: the last partition block is the last device
	// block.
	boundaryRoundTrip(t, dev, dev, 4096-256, 256)
}

// TestPartitionBoundaryIOFaultWrapped repeats the boundary round-trip
// with the partition carved from a fault wrapper (injection enabled,
// all probabilities zero): the passthrough path must preserve LBA
// translation and the partition's range checks exactly.
func TestPartitionBoundaryIOFaultWrapped(t *testing.T) {
	ram := nvme.NewRAMDevice(nvme.RAMConfig{NumBlocks: 4096})
	defer ram.Close()
	fdev := fault.New(ram, fault.Config{Seed: 42})
	boundaryRoundTrip(t, fdev, ram, 2048, 1024)
	if c := fdev.Counts(); c.ReadErrs+c.WriteErrs+c.Timeouts+c.BitRots != 0 {
		t.Fatalf("zero-probability wrapper injected faults: %+v", c)
	}
}

func TestShardPartitionsValidation(t *testing.T) {
	mk := func(blocks uint64) nvme.Device {
		d := nvme.NewRAMDevice(nvme.RAMConfig{NumBlocks: blocks})
		t.Cleanup(func() { d.Close() })
		return d
	}
	devs := []nvme.Device{mk(4096), mk(4096)}

	if _, err := nvme.ShardPartitions(nil, 4, nil); err == nil {
		t.Error("no devices accepted")
	}
	if _, err := nvme.ShardPartitions(devs, 4, []int{0, 1}); err == nil {
		t.Error("short placement accepted")
	}
	if _, err := nvme.ShardPartitions(devs, 2, []int{0, 2}); err == nil {
		t.Error("out-of-range placement accepted")
	}
	if _, err := nvme.ShardPartitions(devs, 2, []int{0, -1}); err == nil {
		t.Error("negative placement accepted")
	}
	if _, err := nvme.ShardPartitions(devs, 2, []int{1, 1}); err == nil {
		t.Error("starved device accepted")
	}

	// Round-robin default: shards alternate devices, each device's
	// shards split it equally in shard order.
	parts, err := nvme.ShardPartitions(devs, 4, nil)
	if err != nil {
		t.Fatalf("round-robin: %v", err)
	}
	wantParent := []nvme.Device{devs[0], devs[1], devs[0], devs[1]}
	wantStart := []uint64{0, 0, 2048, 2048}
	for i, p := range parts {
		if p.Parent() != wantParent[i] || p.Start() != wantStart[i] || p.NumBlocks() != 2048 {
			t.Errorf("shard %d: parent/start/blocks = %p/%d/%d, want %p/%d/2048",
				i, p.Parent(), p.Start(), p.NumBlocks(), wantParent[i], wantStart[i])
		}
	}

	// Uneven split truncates: 3 shards on one 4096-block device get 1365
	// blocks each, in shard order.
	single := []nvme.Device{mk(4096)}
	parts, err = nvme.ShardPartitions(single, 3, nil)
	if err != nil {
		t.Fatalf("uneven split: %v", err)
	}
	for i, p := range parts {
		if p.NumBlocks() != 1365 || p.Start() != uint64(i)*1365 {
			t.Errorf("uneven shard %d: start=%d blocks=%d, want %d/1365", i, p.Start(), p.NumBlocks(), uint64(i)*1365)
		}
	}

	// Explicit packing: all shards on one device of two is refused (the
	// other hosts none), but a 3:1 split is honored.
	parts, err = nvme.ShardPartitions(devs, 4, []int{0, 0, 0, 1})
	if err != nil {
		t.Fatalf("3:1 placement: %v", err)
	}
	if parts[3].Parent() != devs[1] || parts[3].NumBlocks() != 4096 {
		t.Errorf("lone shard should own its whole device: %d blocks", parts[3].NumBlocks())
	}
	for i := 0; i < 3; i++ {
		if parts[i].Parent() != devs[0] || parts[i].NumBlocks() != 1365 {
			t.Errorf("packed shard %d: %d blocks on %p", i, parts[i].NumBlocks(), parts[i].Parent())
		}
	}
}
