package nvme

import (
	"testing"
	"time"

	"github.com/patree/patree/internal/sim"
)

func newTestDev(eng *sim.Engine) *SimDevice {
	return NewSimDevice(eng, SimConfig{Seed: 1})
}

func TestSimReadWriteRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	d := newTestDev(eng)
	qp, err := d.AllocQueuePair(64)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]byte, 512)
	for i := range src {
		src[i] = byte(i)
	}
	var wrote, read bool
	dst := make([]byte, 512)
	wcmd := &Command{Op: OpWrite, LBA: 7, Blocks: 1, Buf: src,
		Callback: func(c Completion) {
			if c.Err != nil {
				t.Fatalf("write err: %v", c.Err)
			}
			wrote = true
		}}
	if err := qp.Submit(wcmd); err != nil {
		t.Fatal(err)
	}
	// Drain until write completes.
	for !wrote {
		if !eng.Step() {
			qp.Probe(0)
			if !wrote {
				t.Fatal("write never completed")
			}
			break
		}
		qp.Probe(0)
	}
	rcmd := &Command{Op: OpRead, LBA: 7, Blocks: 1, Buf: dst,
		Callback: func(c Completion) {
			if c.Err != nil {
				t.Fatalf("read err: %v", c.Err)
			}
			read = true
		}}
	if err := qp.Submit(rcmd); err != nil {
		t.Fatal(err)
	}
	for !read && eng.Step() {
		qp.Probe(0)
	}
	qp.Probe(0)
	if !read {
		t.Fatal("read never completed")
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("byte %d = %d, want %d", i, dst[i], src[i])
		}
	}
}

func TestSimSubmitReturnsImmediately(t *testing.T) {
	eng := sim.NewEngine()
	d := newTestDev(eng)
	qp, _ := d.AllocQueuePair(64)
	buf := make([]byte, 512)
	before := eng.Now()
	if err := qp.Submit(&Command{Op: OpRead, LBA: 0, Blocks: 1, Buf: buf}); err != nil {
		t.Fatal(err)
	}
	if eng.Now() != before {
		t.Fatal("Submit advanced virtual time")
	}
	if qp.Outstanding() != 1 {
		t.Fatalf("outstanding = %d", qp.Outstanding())
	}
}

func TestSimQueueFull(t *testing.T) {
	eng := sim.NewEngine()
	d := newTestDev(eng)
	qp, _ := d.AllocQueuePair(4)
	buf := make([]byte, 512)
	for i := 0; i < 4; i++ {
		if err := qp.Submit(&Command{Op: OpRead, LBA: uint64(i), Blocks: 1, Buf: buf}); err != nil {
			t.Fatal(err)
		}
	}
	if err := qp.Submit(&Command{Op: OpRead, LBA: 9, Blocks: 1, Buf: buf}); err != ErrQueueFull {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	// Completions free slots only after probing.
	eng.RunFor(time.Millisecond)
	if qp.Outstanding() != 4 {
		t.Fatalf("outstanding before probe = %d", qp.Outstanding())
	}
	if n := qp.Probe(0); n != 4 {
		t.Fatalf("probed %d, want 4", n)
	}
	if err := qp.Submit(&Command{Op: OpRead, LBA: 9, Blocks: 1, Buf: buf}); err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
}

func TestSimErrorCompletions(t *testing.T) {
	eng := sim.NewEngine()
	d := newTestDev(eng)
	qp, _ := d.AllocQueuePair(16)
	buf := make([]byte, 512)
	var gotErr error
	cmd := &Command{Op: OpRead, LBA: d.NumBlocks(), Blocks: 1, Buf: buf,
		Callback: func(c Completion) { gotErr = c.Err }}
	if err := qp.Submit(cmd); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(time.Millisecond)
	qp.Probe(0)
	if gotErr != ErrOutOfRange {
		t.Fatalf("completion err = %v, want ErrOutOfRange", gotErr)
	}
	// Short buffer.
	gotErr = nil
	qp.Submit(&Command{Op: OpRead, LBA: 0, Blocks: 2, Buf: buf,
		Callback: func(c Completion) { gotErr = c.Err }})
	eng.RunFor(time.Millisecond)
	qp.Probe(0)
	if gotErr != ErrShortBuffer {
		t.Fatalf("completion err = %v, want ErrShortBuffer", gotErr)
	}
}

func TestSimOutOfOrderCompletion(t *testing.T) {
	eng := sim.NewEngine()
	d := newTestDev(eng)
	qp, _ := d.AllocQueuePair(256)
	var order []uint64
	buf := make([]byte, 512)
	for i := 0; i < 64; i++ {
		lba := uint64(i)
		qp.Submit(&Command{Op: OpRead, LBA: lba, Blocks: 1, Buf: buf,
			Callback: func(c Completion) { order = append(order, c.Cmd.LBA) }})
	}
	for len(order) < 64 && eng.Step() {
		qp.Probe(0)
	}
	inOrder := true
	for i := range order {
		if order[i] != uint64(i) {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("64 jittered commands completed strictly in order; expected out-of-order")
	}
}

func TestSimWriteSnapshotAtSubmit(t *testing.T) {
	eng := sim.NewEngine()
	d := newTestDev(eng)
	qp, _ := d.AllocQueuePair(16)
	buf := make([]byte, 512)
	buf[0] = 0xAA
	qp.Submit(&Command{Op: OpWrite, LBA: 3, Blocks: 1, Buf: buf})
	buf[0] = 0xBB // mutate after submit; device must have snapshotted
	eng.RunFor(time.Millisecond)
	qp.Probe(0)
	out := make([]byte, 512)
	d.ReadAt(3, out)
	if out[0] != 0xAA {
		t.Fatalf("device stored %#x, want snapshot 0xAA", out[0])
	}
}

// TestSimIOPSVsQueueDepth checks the Figure 3a shape: IOPS at QD 32 is an
// order of magnitude above QD 1, and QD 256 adds little over QD 64.
func TestSimIOPSVsQueueDepth(t *testing.T) {
	iops := func(qd int) float64 {
		eng := sim.NewEngine()
		d := newTestDev(eng)
		qp, _ := d.AllocQueuePair(512)
		buf := make([]byte, 512)
		inflight := 0
		var completed uint64
		submit := func() {
			for inflight < qd {
				qp.Submit(&Command{Op: OpRead, LBA: uint64(completed % 1000), Blocks: 1, Buf: buf,
					Callback: func(Completion) { inflight--; completed++ }})
				inflight++
			}
		}
		submit()
		// Poll every 20us of virtual time for 200ms.
		var tick func()
		tick = func() {
			qp.Probe(0)
			submit()
			eng.After(20*time.Microsecond, tick)
		}
		eng.After(20*time.Microsecond, tick)
		eng.RunUntil(sim.Time(200 * time.Millisecond))
		return float64(completed) / 0.2
	}
	i1, i32, i64, i256 := iops(1), iops(32), iops(64), iops(256)
	if i32 < 8*i1 {
		t.Fatalf("IOPS(32)=%.0f not ~10x IOPS(1)=%.0f", i32, i1)
	}
	if i256 > 1.25*i64 {
		t.Fatalf("IOPS(256)=%.0f should be near IOPS(64)=%.0f (saturation)", i256, i64)
	}
	// Sanity: saturated read IOPS in the 300-500K band.
	if i256 < 300e3 || i256 > 550e3 {
		t.Fatalf("saturated IOPS = %.0f, want ~400K", i256)
	}
}

// TestSimWriteRateLowersIOPS checks the Fig 3a write-rate trend.
func TestSimWriteRateLowersIOPS(t *testing.T) {
	run := func(writePct int) float64 {
		eng := sim.NewEngine()
		d := NewSimDevice(eng, SimConfig{Seed: 2})
		qp, _ := d.AllocQueuePair(512)
		rng := sim.NewRNG(3)
		buf := make([]byte, 512)
		inflight, completed := 0, uint64(0)
		submit := func() {
			for inflight < 64 {
				op := OpRead
				if rng.Intn(100) < writePct {
					op = OpWrite
				}
				qp.Submit(&Command{Op: op, LBA: rng.Uint64n(1000), Blocks: 1, Buf: buf,
					Callback: func(Completion) { inflight--; completed++ }})
				inflight++
			}
		}
		submit()
		var tick func()
		tick = func() {
			qp.Probe(0)
			submit()
			eng.After(20*time.Microsecond, tick)
		}
		eng.After(20*time.Microsecond, tick)
		eng.RunUntil(sim.Time(200 * time.Millisecond))
		return float64(completed) / 0.2
	}
	r0, r50 := run(0), run(50)
	if r50 >= r0 {
		t.Fatalf("write-heavy IOPS %.0f >= read-only %.0f", r50, r0)
	}
	if r50 > 0.8*r0 {
		t.Fatalf("50%% writes only reduced IOPS to %.2f of read-only; want a clear drop", r50/r0)
	}
}

// TestSimLatencyGrowsWithQueueDepth checks the Fig 3b shape.
func TestSimLatencyGrowsWithQueueDepth(t *testing.T) {
	meanLat := func(qd int) time.Duration {
		eng := sim.NewEngine()
		d := newTestDev(eng)
		qp, _ := d.AllocQueuePair(512)
		buf := make([]byte, 512)
		inflight := 0
		submit := func() {
			for inflight < qd {
				qp.Submit(&Command{Op: OpRead, LBA: 1, Blocks: 1, Buf: buf,
					Callback: func(Completion) { inflight-- }})
				inflight++
			}
		}
		submit()
		var tick func()
		tick = func() {
			qp.Probe(0)
			submit()
			eng.After(20*time.Microsecond, tick)
		}
		eng.After(20*time.Microsecond, tick)
		eng.RunUntil(sim.Time(100 * time.Millisecond))
		return d.Stats().ReadLatency.Mean()
	}
	l1, l256 := meanLat(1), meanLat(256)
	if l256 < 4*l1 {
		t.Fatalf("latency(QD256)=%v not clearly above latency(QD1)=%v", l256, l1)
	}
}

// TestSimProbeInterference checks the Fig 3c shape: probing every
// microsecond depresses IOPS versus probing every ~50us.
func TestSimProbeInterference(t *testing.T) {
	iops := func(probeCycle time.Duration) float64 {
		eng := sim.NewEngine()
		d := newTestDev(eng)
		qp, _ := d.AllocQueuePair(512)
		buf := make([]byte, 512)
		inflight, completed := 0, uint64(0)
		submit := func() {
			for inflight < 64 {
				qp.Submit(&Command{Op: OpRead, LBA: 1, Blocks: 1, Buf: buf,
					Callback: func(Completion) { inflight--; completed++ }})
				inflight++
			}
		}
		submit()
		var tick func()
		tick = func() {
			qp.Probe(0)
			submit()
			eng.After(probeCycle, tick)
		}
		eng.After(probeCycle, tick)
		eng.RunUntil(sim.Time(200 * time.Millisecond))
		return float64(completed) / 0.2
	}
	fast := iops(1 * time.Microsecond)
	good := iops(50 * time.Microsecond)
	slow := iops(2 * time.Millisecond)
	if fast >= 0.8*good {
		t.Fatalf("1us probing IOPS %.0f not clearly below 50us probing %.0f", fast, good)
	}
	if slow >= 0.8*good {
		t.Fatalf("2ms probing IOPS %.0f not clearly below 50us probing %.0f", slow, good)
	}
}

func TestSimStatsAndReset(t *testing.T) {
	eng := sim.NewEngine()
	d := newTestDev(eng)
	qp, _ := d.AllocQueuePair(64)
	buf := make([]byte, 512)
	qp.Submit(&Command{Op: OpWrite, LBA: 0, Blocks: 1, Buf: buf})
	qp.Submit(&Command{Op: OpRead, LBA: 0, Blocks: 1, Buf: buf})
	eng.RunFor(2 * time.Millisecond)
	qp.Probe(0)
	st := d.Stats()
	if st.CompletedReads != 1 || st.CompletedWrites != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ReadLatency.Count() != 1 || st.ReadLatency.Mean() <= 0 {
		t.Fatal("read latency not recorded")
	}
	if st.MaxOutstanding != 2 {
		t.Fatalf("max outstanding = %d", st.MaxOutstanding)
	}
	d.ResetStats()
	st = d.Stats()
	if st.CompletedReads != 0 || st.Probes != 0 {
		t.Fatal("reset failed")
	}
}

func TestSimQueuePairLimits(t *testing.T) {
	eng := sim.NewEngine()
	d := NewSimDevice(eng, SimConfig{MaxQueuePairs: 2, Seed: 1})
	if _, err := d.AllocQueuePair(8); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AllocQueuePair(8); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AllocQueuePair(8); err != ErrTooManyQP {
		t.Fatalf("err = %v, want ErrTooManyQP", err)
	}
}

func TestSimFreedQP(t *testing.T) {
	eng := sim.NewEngine()
	d := newTestDev(eng)
	qp, _ := d.AllocQueuePair(8)
	qp.Free()
	if err := qp.Submit(&Command{Op: OpFlush}); err != ErrQueueFreed {
		t.Fatalf("err = %v, want ErrQueueFreed", err)
	}
	if qp.Probe(0) != 0 {
		t.Fatal("probe on freed qp returned completions")
	}
}

func TestSimFlush(t *testing.T) {
	eng := sim.NewEngine()
	d := newTestDev(eng)
	qp, _ := d.AllocQueuePair(8)
	done := false
	qp.Submit(&Command{Op: OpFlush, Callback: func(c Completion) {
		if c.Err != nil {
			t.Fatalf("flush err: %v", c.Err)
		}
		done = true
	}})
	eng.RunFor(time.Millisecond)
	qp.Probe(0)
	if !done {
		t.Fatal("flush never completed")
	}
	if d.Stats().CompletedFlushes != 1 {
		t.Fatal("flush not counted")
	}
}

func TestSimDeterminism(t *testing.T) {
	run := func() (uint64, time.Duration) {
		eng := sim.NewEngine()
		d := NewSimDevice(eng, SimConfig{Seed: 77})
		qp, _ := d.AllocQueuePair(256)
		buf := make([]byte, 512)
		inflight, completed := 0, uint64(0)
		submit := func() {
			for inflight < 48 {
				qp.Submit(&Command{Op: OpRead, LBA: uint64(completed % 100), Blocks: 1, Buf: buf,
					Callback: func(Completion) { inflight--; completed++ }})
				inflight++
			}
		}
		submit()
		var tick func()
		tick = func() {
			qp.Probe(0)
			submit()
			eng.After(30*time.Microsecond, tick)
		}
		eng.After(30*time.Microsecond, tick)
		eng.RunUntil(sim.Time(50 * time.Millisecond))
		return completed, d.Stats().ReadLatency.Mean()
	}
	c1, m1 := run()
	c2, m2 := run()
	if c1 != c2 || m1 != m2 {
		t.Fatalf("nondeterministic: (%d,%v) vs (%d,%v)", c1, m1, c2, m2)
	}
}
