package nvme

import (
	"testing"
	"time"
)

func TestRAMReadWriteRoundTrip(t *testing.T) {
	d := NewRAMDevice(RAMConfig{})
	defer d.Close()
	qp, err := d.AllocQueuePair(64)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]byte, 1024)
	for i := range src {
		src[i] = byte(i * 7)
	}
	done := make(chan struct{})
	qp.Submit(&Command{Op: OpWrite, LBA: 10, Blocks: 2, Buf: src,
		Callback: func(c Completion) {
			if c.Err != nil {
				t.Errorf("write err: %v", c.Err)
			}
			close(done)
		}})
	waitProbe(t, qp, done)

	dst := make([]byte, 1024)
	done2 := make(chan struct{})
	qp.Submit(&Command{Op: OpRead, LBA: 10, Blocks: 2, Buf: dst,
		Callback: func(c Completion) {
			if c.Err != nil {
				t.Errorf("read err: %v", c.Err)
			}
			close(done2)
		}})
	waitProbe(t, qp, done2)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("byte %d mismatch", i)
		}
	}
}

// waitProbe polls the queue pair until ch closes or a timeout elapses.
func waitProbe(t *testing.T, qp QueuePair, ch chan struct{}) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		qp.Probe(0)
		select {
		case <-ch:
			return
		case <-deadline:
			t.Fatal("timed out waiting for completion")
		default:
			time.Sleep(50 * time.Microsecond)
		}
	}
}

func TestRAMWriteSnapshot(t *testing.T) {
	d := NewRAMDevice(RAMConfig{})
	defer d.Close()
	qp, _ := d.AllocQueuePair(16)
	buf := make([]byte, 512)
	buf[0] = 1
	done := make(chan struct{})
	qp.Submit(&Command{Op: OpWrite, LBA: 0, Blocks: 1, Buf: buf,
		Callback: func(Completion) { close(done) }})
	buf[0] = 2 // must not affect the stored block
	waitProbe(t, qp, done)

	out := make([]byte, 512)
	done2 := make(chan struct{})
	qp.Submit(&Command{Op: OpRead, LBA: 0, Blocks: 1, Buf: out,
		Callback: func(Completion) { close(done2) }})
	waitProbe(t, qp, done2)
	if out[0] != 1 {
		t.Fatalf("stored %d, want snapshot 1", out[0])
	}
}

func TestRAMErrorCompletion(t *testing.T) {
	d := NewRAMDevice(RAMConfig{NumBlocks: 100})
	defer d.Close()
	qp, _ := d.AllocQueuePair(16)
	buf := make([]byte, 512)
	var gotErr error
	done := make(chan struct{})
	qp.Submit(&Command{Op: OpRead, LBA: 100, Blocks: 1, Buf: buf,
		Callback: func(c Completion) { gotErr = c.Err; close(done) }})
	waitProbe(t, qp, done)
	if gotErr != ErrOutOfRange {
		t.Fatalf("err = %v, want ErrOutOfRange", gotErr)
	}
}

func TestRAMManyConcurrentCommands(t *testing.T) {
	d := NewRAMDevice(RAMConfig{Workers: 4})
	defer d.Close()
	qp, _ := d.AllocQueuePair(256)
	const n = 200
	completed := 0
	bufs := make([][]byte, n)
	for i := 0; i < n; i++ {
		bufs[i] = make([]byte, 512)
		bufs[i][0] = byte(i)
		if err := qp.Submit(&Command{Op: OpWrite, LBA: uint64(i), Blocks: 1, Buf: bufs[i],
			Callback: func(Completion) { completed++ }}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for completed < n {
		qp.Probe(0)
		if time.Now().After(deadline) {
			t.Fatalf("completed %d of %d", completed, n)
		}
	}
	if qp.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", qp.Outstanding())
	}
}

func TestRAMCloseStopsSubmission(t *testing.T) {
	d := NewRAMDevice(RAMConfig{})
	qp, _ := d.AllocQueuePair(16)
	d.Close()
	err := qp.Submit(&Command{Op: OpFlush})
	if err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if _, err := d.AllocQueuePair(8); err != ErrClosed {
		t.Fatalf("alloc err = %v, want ErrClosed", err)
	}
	// Double close is fine.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpcodeString(t *testing.T) {
	if OpRead.String() != "READ" || OpWrite.String() != "WRITE" || OpFlush.String() != "FLUSH" {
		t.Fatal("opcode strings wrong")
	}
	if Opcode(9).String() != "Opcode(9)" {
		t.Fatal("unknown opcode string wrong")
	}
}
