package nvme

import (
	"time"

	"github.com/patree/patree/internal/metrics"
	"github.com/patree/patree/internal/sim"
)

// SimConfig parameterizes the simulated device. The defaults are
// calibrated so the device reproduces the behavioural shapes of the
// paper's Figure 3 for a ~400K read IOPS enterprise NVMe SSD of the
// i3.x2large class (see DESIGN.md §1).
type SimConfig struct {
	// BlockSize is the minimal access granularity (default 512 bytes,
	// matching the paper's device and the PA-Tree node size).
	BlockSize int
	// NumBlocks is the capacity in blocks (default 64M blocks = 32 GiB).
	NumBlocks uint64
	// Parallelism is the number of internal channels that serve commands
	// concurrently; queue depths beyond it only add queueing delay.
	// Default 32: with 75µs reads this saturates at ~427K read IOPS,
	// roughly 32x the QD1 rate — the "order of magnitude" of Fig 3a.
	Parallelism int
	// ReadService and WriteService are the per-command channel occupancy
	// times. Writes are slower (flash program time), which produces the
	// write-rate sensitivity of Fig 3a/3b. Defaults 75µs / 150µs.
	ReadService  time.Duration
	WriteService time.Duration
	// FlushService is the cost of a flush command. Default 100µs.
	FlushService time.Duration
	// ServiceJitter is the relative spread of service times (uniform in
	// [1-j, 1+j]); it makes completions genuinely out of order.
	// Default 0.25.
	ServiceJitter float64
	// SubmitOverhead is the controller occupancy per command intake.
	// Default 150ns.
	SubmitOverhead time.Duration
	// CompleteOverhead is the controller occupancy to post a completion
	// entry; a completion only becomes visible to Probe once posted.
	// Default 150ns.
	CompleteOverhead time.Duration
	// ProbeOverhead is the controller occupancy per Probe call — the
	// "interruption to the NVMe" of §II (doorbell reads and driver work
	// serialized with command intake). Because intake and completion
	// posting share the controller, frequent probing starves them and
	// collapses IOPS (Fig 3c, Table I). Default 3µs — calibrated so the
	// baselines' per-thread 100µs probe loops depress device throughput
	// the way the paper's Table I reports.
	ProbeOverhead time.Duration
	// PerCQEOverhead is the extra controller occupancy per reaped
	// completion. Default 50ns.
	PerCQEOverhead time.Duration
	// MaxQueuePairs and MaxQueueDepth bound AllocQueuePair (the paper's
	// SSD: 256 pairs of depth 2048).
	MaxQueuePairs int
	MaxQueueDepth int
	// Seed drives service-time jitter.
	Seed uint64
}

// WithDefaults fills zero fields with calibrated defaults.
func (c SimConfig) WithDefaults() SimConfig {
	if c.BlockSize <= 0 {
		c.BlockSize = 512
	}
	if c.NumBlocks == 0 {
		c.NumBlocks = 64 << 20
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 32
	}
	if c.ReadService <= 0 {
		c.ReadService = 75 * time.Microsecond
	}
	if c.WriteService <= 0 {
		c.WriteService = 150 * time.Microsecond
	}
	if c.FlushService <= 0 {
		c.FlushService = 100 * time.Microsecond
	}
	if c.ServiceJitter == 0 {
		c.ServiceJitter = 0.25
	}
	if c.SubmitOverhead <= 0 {
		c.SubmitOverhead = 150 * time.Nanosecond
	}
	if c.CompleteOverhead <= 0 {
		c.CompleteOverhead = 150 * time.Nanosecond
	}
	if c.ProbeOverhead <= 0 {
		c.ProbeOverhead = 3 * time.Microsecond
	}
	if c.PerCQEOverhead <= 0 {
		c.PerCQEOverhead = 50 * time.Nanosecond
	}
	if c.MaxQueuePairs <= 0 {
		c.MaxQueuePairs = 256
	}
	if c.MaxQueueDepth <= 0 {
		c.MaxQueueDepth = 2048
	}
	return c
}

// Stats are cumulative device-side measurements.
type Stats struct {
	CompletedReads   uint64
	CompletedWrites  uint64
	CompletedFlushes uint64
	Probes           uint64
	// ReadLatency/WriteLatency are device-side completion latencies
	// (submission to completion-queue entry).
	ReadLatency  *metrics.Histogram
	WriteLatency *metrics.Histogram
	// AvgOutstanding is the time-weighted average number of outstanding
	// commands.
	AvgOutstanding float64
	MaxOutstanding int64
}

// inflight tracks one command inside the device.
type inflight struct {
	cmd       *Command
	qp        *simQP
	submitted sim.Time
	err       error
}

// SimDevice is the virtual-clock device model. All methods must be called
// from simulation context (DES events or simulated thread bodies); the
// model is single-threaded by construction.
type SimDevice struct {
	eng *sim.Engine
	cfg SimConfig
	rng *sim.RNG

	data   map[uint64][]byte // LBA -> block content (sparse)
	qps    []*simQP
	nextQP int

	// Controller serialization point: next instant the controller is free.
	ctrlFree sim.Time

	// Channel pool.
	busyUnits int
	pending   []*inflight // intaken commands waiting for a free channel

	outstanding metrics.Gauge // submitted but not yet reaped
	inDevice    int           // intaken but not yet completed
	unposted    int           // submitted but completion not yet posted

	stats struct {
		reads, writes, flushes metrics.Counter
		probes                 metrics.Counter
		readLat, writeLat      *metrics.Histogram
	}
	closed bool
}

// NewSimDevice creates a simulated device on eng.
func NewSimDevice(eng *sim.Engine, cfg SimConfig) *SimDevice {
	cfg = cfg.WithDefaults()
	d := &SimDevice{
		eng:  eng,
		cfg:  cfg,
		rng:  sim.NewRNG(cfg.Seed ^ 0x5dee7a11),
		data: make(map[uint64][]byte),
	}
	d.stats.readLat = metrics.NewHistogram()
	d.stats.writeLat = metrics.NewHistogram()
	return d
}

// Config returns the effective configuration.
func (d *SimDevice) Config() SimConfig { return d.cfg }

// BlockSize implements Device.
func (d *SimDevice) BlockSize() int { return d.cfg.BlockSize }

// NumBlocks implements Device.
func (d *SimDevice) NumBlocks() uint64 { return d.cfg.NumBlocks }

// Close implements Device.
func (d *SimDevice) Close() error {
	d.closed = true
	return nil
}

// Outstanding returns the current number of submitted-but-unreaped
// commands across all queue pairs.
func (d *SimDevice) Outstanding() int { return int(d.outstanding.Level()) }

// Stats returns a snapshot of cumulative statistics.
func (d *SimDevice) Stats() Stats {
	now := int64(d.eng.Now())
	rl, wl := metrics.NewHistogram(), metrics.NewHistogram()
	rl.Merge(d.stats.readLat)
	wl.Merge(d.stats.writeLat)
	return Stats{
		CompletedReads:   d.stats.reads.Value(),
		CompletedWrites:  d.stats.writes.Value(),
		CompletedFlushes: d.stats.flushes.Value(),
		Probes:           d.stats.probes.Value(),
		ReadLatency:      rl,
		WriteLatency:     wl,
		AvgOutstanding:   d.outstanding.Avg(now),
		MaxOutstanding:   d.outstanding.Max(),
	}
}

// ResetStats clears cumulative statistics (the outstanding gauge restarts
// its time-weighted average from now).
func (d *SimDevice) ResetStats() {
	d.stats.reads.Reset()
	d.stats.writes.Reset()
	d.stats.flushes.Reset()
	d.stats.probes.Reset()
	d.stats.readLat.Reset()
	d.stats.writeLat.Reset()
	lvl := d.outstanding.Level()
	d.outstanding = metrics.Gauge{}
	d.outstanding.Set(int64(d.eng.Now()), lvl)
}

// ReadAt copies block contents without going through a queue pair; used by
// recovery/verification code in tests, not by the index hot paths.
func (d *SimDevice) ReadAt(lba uint64, buf []byte) {
	bs := d.cfg.BlockSize
	for i := 0; i*bs < len(buf); i++ {
		blk := d.data[lba+uint64(i)]
		dst := buf[i*bs : min(len(buf), (i+1)*bs)]
		if blk == nil {
			for j := range dst {
				dst[j] = 0
			}
		} else {
			copy(dst, blk)
		}
	}
}

// WriteAt stores block contents directly, bypassing queues and timing;
// used by bulk loaders to pre-populate the device before timed runs.
func (d *SimDevice) WriteAt(lba uint64, buf []byte) {
	bs := d.cfg.BlockSize
	for i := 0; i*bs < len(buf); i++ {
		blk := make([]byte, bs)
		copy(blk, buf[i*bs:min(len(buf), (i+1)*bs)])
		d.data[lba+uint64(i)] = blk
	}
}

// ImageSnapshot deep-copies the device's current block image. Combined
// with LoadImage on a fresh device it lets crash-recovery tests freeze a
// device mid-run and reopen the surviving bytes under a new engine.
func (d *SimDevice) ImageSnapshot() map[uint64][]byte {
	img := make(map[uint64][]byte, len(d.data))
	for lba, blk := range d.data {
		cp := make([]byte, len(blk))
		copy(cp, blk)
		img[lba] = cp
	}
	return img
}

// LoadImage replaces the device's block image with a deep copy of img.
func (d *SimDevice) LoadImage(img map[uint64][]byte) {
	d.data = make(map[uint64][]byte, len(img))
	for lba, blk := range img {
		cp := make([]byte, len(blk))
		copy(cp, blk)
		d.data[lba] = cp
	}
}

// Advance steps the simulation engine until every submitted command has
// posted its completion. Intended for setup and recovery code (Format,
// Open, bulk loading) that runs before the simulated workload starts;
// it executes whatever engine events are pending, so do not call it while
// simulated threads are live.
func (d *SimDevice) Advance() {
	for d.unposted > 0 && d.eng.Step() {
	}
}

// AllocQueuePair implements Device.
func (d *SimDevice) AllocQueuePair(depth int) (QueuePair, error) {
	if d.closed {
		return nil, ErrClosed
	}
	if d.nextQP >= d.cfg.MaxQueuePairs {
		return nil, ErrTooManyQP
	}
	if depth <= 0 || depth > d.cfg.MaxQueueDepth {
		depth = d.cfg.MaxQueueDepth
	}
	d.nextQP++
	qp := &simQP{dev: d, id: d.nextQP, depth: depth}
	d.qps = append(d.qps, qp)
	return qp, nil
}

// occupyController reserves dur of controller time starting no earlier
// than now, returning when the reservation ends.
func (d *SimDevice) occupyController(dur time.Duration) sim.Time {
	now := d.eng.Now()
	start := d.ctrlFree
	if start < now {
		start = now
	}
	d.ctrlFree = start.Add(dur)
	return d.ctrlFree
}

// serviceTime draws the channel occupancy for cmd.
func (d *SimDevice) serviceTime(op Opcode) time.Duration {
	var base time.Duration
	switch op {
	case OpRead:
		base = d.cfg.ReadService
	case OpWrite:
		base = d.cfg.WriteService
	default:
		base = d.cfg.FlushService
	}
	j := d.cfg.ServiceJitter
	f := 1 - j + 2*j*d.rng.Float64()
	return time.Duration(float64(base) * f)
}

// intake is called when the controller finishes accepting a command.
func (d *SimDevice) intake(inf *inflight) {
	d.inDevice++
	d.pending = append(d.pending, inf)
	d.tryDispatch()
}

// tryDispatch starts pending commands on free channels.
func (d *SimDevice) tryDispatch() {
	for d.busyUnits < d.cfg.Parallelism && len(d.pending) > 0 {
		inf := d.pending[0]
		d.pending = d.pending[1:]
		d.busyUnits++
		svc := d.serviceTime(inf.cmd.Op)
		d.eng.After(svc, func() { d.complete(inf) })
	}
}

// complete finishes channel-side processing: performs the data transfer,
// frees the channel, and hands the completion to the controller for
// posting. The CQ entry becomes visible to Probe only once the controller
// has posted it, so controller pressure (e.g. from over-frequent probing)
// delays completion visibility and, transitively, throughput.
func (d *SimDevice) complete(inf *inflight) {
	d.busyUnits--
	cmd := inf.cmd
	if inf.err == nil {
		switch cmd.Op {
		case OpRead:
			d.ReadAt(cmd.LBA, cmd.Buf[:cmd.Blocks*d.cfg.BlockSize])
		case OpWrite:
			// Data was snapshotted at submit; nothing further to do.
		case OpFlush:
			// Cache flush: data map is already durable in the model.
		}
	}
	postAt := d.occupyController(d.cfg.CompleteOverhead)
	d.eng.At(postAt, func() { d.post(inf) })
	d.tryDispatch()
}

// post places the completion entry on the owning queue pair's CQ.
func (d *SimDevice) post(inf *inflight) {
	d.inDevice--
	d.unposted--
	cmd := inf.cmd
	now := d.eng.Now()
	lat := now.Sub(inf.submitted)
	switch cmd.Op {
	case OpRead:
		d.stats.reads.Inc()
		d.stats.readLat.Record(lat)
	case OpWrite:
		d.stats.writes.Inc()
		d.stats.writeLat.Record(lat)
	default:
		d.stats.flushes.Inc()
	}
	inf.qp.cq = append(inf.qp.cq, Completion{Cmd: cmd, Err: inf.err, Latency: lat})
}

// simQP is a queue pair on a SimDevice.
type simQP struct {
	dev   *SimDevice
	id    int
	depth int
	inSQ  int // commands submitted and not yet reaped (ring occupancy)
	cq    []Completion
	freed bool
}

// Submit implements QueuePair. The write payload is snapshotted
// immediately, so callers may reuse Buf after Submit returns.
func (q *simQP) Submit(cmd *Command) error {
	if cmd == nil {
		return ErrBadCommand
	}
	if q.freed {
		return ErrQueueFreed
	}
	if q.dev.closed {
		return ErrClosed
	}
	if q.inSQ >= q.depth {
		return ErrQueueFull
	}
	inf := &inflight{cmd: cmd, qp: q, submitted: q.dev.eng.Now()}
	if err := validate(q.dev, cmd); err != nil {
		// Invalid commands still complete (with an error status), like a
		// real controller posting an error CQE.
		inf.err = err
	} else if cmd.Op == OpWrite {
		q.dev.WriteAt(cmd.LBA, cmd.Buf[:cmd.Blocks*q.dev.cfg.BlockSize])
	}
	q.inSQ++
	q.dev.unposted++
	q.dev.outstanding.Add(int64(q.dev.eng.Now()), 1)
	readyAt := q.dev.occupyController(q.dev.cfg.SubmitOverhead)
	q.dev.eng.At(readyAt, func() { q.dev.intake(inf) })
	return nil
}

// Probe implements QueuePair: reaps up to max completions, invoking
// callbacks, and charges the controller the probe interference cost.
func (q *simQP) Probe(max int) int {
	if q.freed || q.dev.closed {
		return 0
	}
	d := q.dev
	d.stats.probes.Inc()
	n := len(q.cq)
	if max > 0 && n > max {
		n = max
	}
	d.occupyController(d.cfg.ProbeOverhead + time.Duration(n)*d.cfg.PerCQEOverhead)
	if n == 0 {
		return 0
	}
	batch := make([]Completion, n)
	copy(batch, q.cq)
	q.cq = q.cq[n:]
	q.inSQ -= n
	d.outstanding.Add(int64(d.eng.Now()), -int64(n))
	for _, c := range batch {
		if c.Cmd.Callback != nil {
			c.Cmd.Callback(c)
		}
	}
	return n
}

// Outstanding implements QueuePair.
func (q *simQP) Outstanding() int { return q.inSQ }

// Completions returns the number of reapable CQ entries without reaping
// them (used by tests; a real driver cannot peek for free, so the index
// never relies on this).
func (q *simQP) Completions() int { return len(q.cq) }

// Free implements QueuePair.
func (q *simQP) Free() error {
	q.freed = true
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
