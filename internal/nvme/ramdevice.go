package nvme

import (
	"sync"
	"time"
)

// RAMConfig parameterizes the real-time memory-backed device.
type RAMConfig struct {
	// BlockSize is the access granularity (default 512).
	BlockSize int
	// NumBlocks is the capacity in blocks (default 1M blocks = 512 MiB).
	NumBlocks uint64
	// Workers is the number of goroutines serving commands; it plays the
	// role of the device's internal parallelism (default 8).
	Workers int
	// Latency, if nonzero, is an artificial per-command service delay so
	// example programs can observe asynchrony. Sub-millisecond sleeps are
	// at the mercy of the host timer; use 0 for pure functionality.
	Latency time.Duration
	// MaxQueuePairs and MaxQueueDepth bound AllocQueuePair.
	MaxQueuePairs int
	MaxQueueDepth int
}

func (c RAMConfig) withDefaults() RAMConfig {
	if c.BlockSize <= 0 {
		c.BlockSize = 512
	}
	if c.NumBlocks == 0 {
		c.NumBlocks = 1 << 20
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.MaxQueuePairs <= 0 {
		c.MaxQueuePairs = 256
	}
	if c.MaxQueueDepth <= 0 {
		c.MaxQueueDepth = 2048
	}
	return c
}

// RAMDevice is a real-time Device backed by host memory. Submission
// enqueues work for a goroutine pool; completions are buffered per queue
// pair and reaped by Probe, preserving the polled-mode programming model
// on real hardware threads.
type RAMDevice struct {
	cfg  RAMConfig
	mu   sync.Mutex
	data map[uint64][]byte
	work chan *ramJob
	wg   sync.WaitGroup

	qpMu   sync.Mutex
	nextQP int
	closed bool
}

type ramJob struct {
	cmd       *Command
	qp        *ramQP
	submitted time.Time
	snapshot  []byte // write payload copied at submit
}

// NewRAMDevice creates and starts a memory-backed device.
func NewRAMDevice(cfg RAMConfig) *RAMDevice {
	cfg = cfg.withDefaults()
	d := &RAMDevice{
		cfg:  cfg,
		data: make(map[uint64][]byte),
		work: make(chan *ramJob, 4096),
	}
	for i := 0; i < cfg.Workers; i++ {
		d.wg.Add(1)
		go d.worker()
	}
	return d
}

// BlockSize implements Device.
func (d *RAMDevice) BlockSize() int { return d.cfg.BlockSize }

// NumBlocks implements Device.
func (d *RAMDevice) NumBlocks() uint64 { return d.cfg.NumBlocks }

// Close implements Device: it stops the workers and waits for them.
func (d *RAMDevice) Close() error {
	d.qpMu.Lock()
	if d.closed {
		d.qpMu.Unlock()
		return nil
	}
	d.closed = true
	d.qpMu.Unlock()
	close(d.work)
	d.wg.Wait()
	return nil
}

// AllocQueuePair implements Device.
func (d *RAMDevice) AllocQueuePair(depth int) (QueuePair, error) {
	d.qpMu.Lock()
	defer d.qpMu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	if d.nextQP >= d.cfg.MaxQueuePairs {
		return nil, ErrTooManyQP
	}
	if depth <= 0 || depth > d.cfg.MaxQueueDepth {
		depth = d.cfg.MaxQueueDepth
	}
	d.nextQP++
	return &ramQP{dev: d, depth: depth}, nil
}

// ReadAt copies blocks starting at lba into buf (len must be a multiple
// of the block size), bypassing the queue pairs. Unwritten blocks read
// as zeros. Together with WriteAt it gives test harnesses (fault
// injection, crash simulation) direct image access.
func (d *RAMDevice) ReadAt(lba uint64, buf []byte) {
	bs := d.cfg.BlockSize
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := 0; i*bs < len(buf); i++ {
		dst := buf[i*bs : (i+1)*bs]
		if blk := d.data[lba+uint64(i)]; blk != nil {
			copy(dst, blk)
		} else {
			for j := range dst {
				dst[j] = 0
			}
		}
	}
}

// WriteAt stores buf (a whole number of blocks) at lba, bypassing the
// queue pairs.
func (d *RAMDevice) WriteAt(lba uint64, buf []byte) {
	bs := d.cfg.BlockSize
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := 0; i*bs < len(buf); i++ {
		blk := make([]byte, bs)
		copy(blk, buf[i*bs:(i+1)*bs])
		d.data[lba+uint64(i)] = blk
	}
}

// ImageSnapshot returns a deep copy of every written block, keyed by
// LBA — the surviving bytes a crash-recovery test reopens.
func (d *RAMDevice) ImageSnapshot() map[uint64][]byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	img := make(map[uint64][]byte, len(d.data))
	for lba, blk := range d.data {
		cp := make([]byte, len(blk))
		copy(cp, blk)
		img[lba] = cp
	}
	return img
}

// LoadImage replaces the device content with img (deep-copied), the
// counterpart of ImageSnapshot for reopen-after-crash tests.
func (d *RAMDevice) LoadImage(img map[uint64][]byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.data = make(map[uint64][]byte, len(img))
	for lba, blk := range img {
		cp := make([]byte, len(blk))
		copy(cp, blk)
		d.data[lba] = cp
	}
}

func (d *RAMDevice) worker() {
	defer d.wg.Done()
	bs := d.cfg.BlockSize
	for job := range d.work {
		if d.cfg.Latency > 0 {
			time.Sleep(d.cfg.Latency)
		}
		cmd := job.cmd
		var err error
		d.mu.Lock()
		switch cmd.Op {
		case OpRead:
			for i := 0; i < cmd.Blocks; i++ {
				dst := cmd.Buf[i*bs : (i+1)*bs]
				if blk := d.data[cmd.LBA+uint64(i)]; blk != nil {
					copy(dst, blk)
				} else {
					for j := range dst {
						dst[j] = 0
					}
				}
			}
		case OpWrite:
			for i := 0; i < cmd.Blocks; i++ {
				blk := make([]byte, bs)
				copy(blk, job.snapshot[i*bs:(i+1)*bs])
				d.data[cmd.LBA+uint64(i)] = blk
			}
		case OpFlush:
			// RAM backing is always "durable" for the model's purposes.
		}
		d.mu.Unlock()
		job.qp.completed(Completion{
			Cmd:     cmd,
			Err:     err,
			Latency: time.Since(job.submitted),
		})
	}
}

// ramQP is a queue pair on a RAMDevice. Submit/Probe must be called from
// a single owner goroutine (per the QueuePair contract); the cq buffer is
// still locked because device workers append to it concurrently.
type ramQP struct {
	dev   *RAMDevice
	depth int

	mu    sync.Mutex
	cq    []Completion
	inSQ  int
	freed bool
}

// Submit implements QueuePair.
func (q *ramQP) Submit(cmd *Command) error {
	if cmd == nil {
		return ErrBadCommand
	}
	q.mu.Lock()
	if q.freed {
		q.mu.Unlock()
		return ErrQueueFreed
	}
	if q.inSQ >= q.depth {
		q.mu.Unlock()
		return ErrQueueFull
	}
	q.inSQ++
	q.mu.Unlock()

	job := &ramJob{cmd: cmd, qp: q, submitted: time.Now()}
	if err := validate(q.dev, cmd); err != nil {
		q.completed(Completion{Cmd: cmd, Err: err})
		return nil
	}
	if cmd.Op == OpWrite {
		n := cmd.Blocks * q.dev.cfg.BlockSize
		job.snapshot = make([]byte, n)
		copy(job.snapshot, cmd.Buf[:n])
	}
	q.dev.qpMu.Lock()
	closed := q.dev.closed
	q.dev.qpMu.Unlock()
	if closed {
		return ErrClosed
	}
	q.dev.work <- job
	return nil
}

func (q *ramQP) completed(c Completion) {
	q.mu.Lock()
	q.cq = append(q.cq, c)
	q.mu.Unlock()
}

// Probe implements QueuePair.
func (q *ramQP) Probe(max int) int {
	q.mu.Lock()
	n := len(q.cq)
	if max > 0 && n > max {
		n = max
	}
	if n == 0 {
		q.mu.Unlock()
		return 0
	}
	batch := make([]Completion, n)
	copy(batch, q.cq)
	q.cq = append(q.cq[:0], q.cq[n:]...)
	q.inSQ -= n
	q.mu.Unlock()
	for _, c := range batch {
		if c.Cmd.Callback != nil {
			c.Cmd.Callback(c)
		}
	}
	return n
}

// Outstanding implements QueuePair.
func (q *ramQP) Outstanding() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.inSQ
}

// Free implements QueuePair.
func (q *ramQP) Free() error {
	q.mu.Lock()
	q.freed = true
	q.mu.Unlock()
	return nil
}
