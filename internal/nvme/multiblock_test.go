package nvme

import (
	"testing"
	"time"

	"github.com/patree/patree/internal/sim"
)

func TestSimMultiBlockRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	d := NewSimDevice(eng, SimConfig{Seed: 2})
	qp, _ := d.AllocQueuePair(16)
	const blocks = 5
	src := make([]byte, blocks*512)
	for i := range src {
		src[i] = byte(i * 13)
	}
	qp.Submit(&Command{Op: OpWrite, LBA: 100, Blocks: blocks, Buf: src})
	eng.RunFor(2 * time.Millisecond)
	qp.Probe(0)
	dst := make([]byte, blocks*512)
	done := false
	qp.Submit(&Command{Op: OpRead, LBA: 100, Blocks: blocks, Buf: dst,
		Callback: func(c Completion) {
			if c.Err != nil {
				t.Errorf("read err: %v", c.Err)
			}
			done = true
		}})
	eng.RunFor(2 * time.Millisecond)
	qp.Probe(0)
	if !done {
		t.Fatal("read never completed")
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("byte %d mismatch", i)
		}
	}
	// Partial overlap read: last two blocks.
	dst2 := make([]byte, 2*512)
	qp.Submit(&Command{Op: OpRead, LBA: 103, Blocks: 2, Buf: dst2})
	eng.RunFor(2 * time.Millisecond)
	qp.Probe(0)
	for i := range dst2 {
		if dst2[i] != src[3*512+i] {
			t.Fatalf("overlap byte %d mismatch", i)
		}
	}
}

func TestSimUnwrittenBlocksReadZero(t *testing.T) {
	eng := sim.NewEngine()
	d := NewSimDevice(eng, SimConfig{Seed: 2})
	qp, _ := d.AllocQueuePair(8)
	buf := []byte{1, 2, 3}
	dst := make([]byte, 512)
	copy(dst, buf)
	qp.Submit(&Command{Op: OpRead, LBA: 999, Blocks: 1, Buf: dst})
	eng.RunFor(2 * time.Millisecond)
	qp.Probe(0)
	for i, b := range dst {
		if b != 0 {
			t.Fatalf("unwritten block byte %d = %d", i, b)
		}
	}
}

func TestSimProbeMaxBatch(t *testing.T) {
	eng := sim.NewEngine()
	d := NewSimDevice(eng, SimConfig{Seed: 2})
	qp, _ := d.AllocQueuePair(64)
	buf := make([]byte, 512)
	for i := 0; i < 10; i++ {
		qp.Submit(&Command{Op: OpRead, LBA: uint64(i), Blocks: 1, Buf: buf})
	}
	eng.RunFor(5 * time.Millisecond)
	if n := qp.Probe(3); n != 3 {
		t.Fatalf("Probe(3) reaped %d", n)
	}
	if n := qp.Probe(0); n != 7 {
		t.Fatalf("Probe(0) reaped %d, want the remaining 7", n)
	}
}

func TestSimBadCommandCompletions(t *testing.T) {
	eng := sim.NewEngine()
	d := NewSimDevice(eng, SimConfig{Seed: 2})
	qp, _ := d.AllocQueuePair(8)
	var errs []error
	cb := func(c Completion) { errs = append(errs, c.Err) }
	qp.Submit(&Command{Op: OpRead, LBA: 0, Blocks: 0, Buf: nil, Callback: cb})
	if err := qp.Submit(nil); err != ErrBadCommand {
		t.Fatalf("nil submit err = %v", err)
	}
	eng.RunFor(2 * time.Millisecond)
	qp.Probe(0)
	if len(errs) != 1 || errs[0] != ErrBadCommand {
		t.Fatalf("errs = %v", errs)
	}
}
