// Package nvme models the NVMe interface of §II of the paper: queue pairs
// made of a submission ring and a completion ring, asynchronous submission
// that returns immediately, polled completion via Probe, out-of-order
// completion, bounded internal parallelism, asymmetric read/write service
// times, and per-probe controller interference.
//
// Two backends implement the same Device/QueuePair interface:
//
//   - SimDevice: a deterministic device model on the internal/sim virtual
//     clock. It substitutes for the paper's SPDK-driven Intel NVMe SSD and
//     is calibrated to reproduce the behavioural shapes of the paper's
//     Figure 3 (IOPS vs queue depth, latency vs queue depth and write
//     rate, sensitivity to probe frequency).
//   - RAMDevice: a real-time, memory-backed device served by worker
//     goroutines, so the examples are ordinary runnable programs.
package nvme

import (
	"errors"
	"fmt"
	"time"
)

// Opcode identifies an NVMe command type.
type Opcode uint8

const (
	// OpRead reads Blocks blocks starting at LBA into Buf.
	OpRead Opcode = iota
	// OpWrite writes Blocks blocks from Buf starting at LBA.
	OpWrite
	// OpFlush commits the device write cache; LBA/Buf are ignored.
	OpFlush
)

// String returns the opcode mnemonic.
func (o Opcode) String() string {
	switch o {
	case OpRead:
		return "READ"
	case OpWrite:
		return "WRITE"
	case OpFlush:
		return "FLUSH"
	default:
		return fmt.Sprintf("Opcode(%d)", uint8(o))
	}
}

// Command is one I/O command. The caller keeps ownership of Buf until the
// completion callback fires; for writes the device copies the data at
// submission (like a DMA snapshot), so the buffer may be reused as soon as
// Submit returns.
type Command struct {
	Op     Opcode
	LBA    uint64
	Blocks int
	Buf    []byte
	// Callback runs inside Probe on the polling thread when the command's
	// completion is reaped, mirroring SPDK's completion callbacks.
	Callback func(Completion)
}

// Completion reports the outcome of a command.
type Completion struct {
	Cmd *Command
	Err error
	// Latency is the time from submission to device-side completion
	// (not including the probe detection delay).
	Latency time.Duration
}

// Errors returned by devices. ErrQueueFull, ErrOutOfRange, ErrBadCommand,
// ErrNilBuffer and ErrShortBuffer describe the command; ErrMedia and
// ErrTimeout describe the device (transient command statuses a robust
// caller may retry); the rest describe the queue-pair lifecycle.
var (
	ErrQueueFull   = errors.New("nvme: submission queue full")
	ErrOutOfRange  = errors.New("nvme: LBA out of range")
	ErrBadCommand  = errors.New("nvme: malformed command")
	ErrClosed      = errors.New("nvme: device closed")
	ErrTooManyQP   = errors.New("nvme: queue pair limit reached")
	ErrNilBuffer   = errors.New("nvme: nil buffer for data command")
	ErrShortBuffer = errors.New("nvme: buffer smaller than Blocks*BlockSize")
	ErrQueueFreed  = errors.New("nvme: queue pair freed")
	ErrMedia       = errors.New("nvme: media error")
	ErrTimeout     = errors.New("nvme: command timeout")
)

// Device is a block device exposing the NVMe queue-pair interface.
type Device interface {
	// AllocQueuePair creates a submission/completion queue pair with the
	// given depth (clamped to the device maximum).
	AllocQueuePair(depth int) (QueuePair, error)
	// BlockSize returns the minimal access granularity in bytes (512 for
	// the paper's device).
	BlockSize() int
	// NumBlocks returns the device capacity in blocks.
	NumBlocks() uint64
	// Close releases the device.
	Close() error
}

// QueuePair is an I/O submission queue plus its completion queue.
// A queue pair is owned by one thread at a time; neither Submit nor Probe
// is synchronized, matching NVMe's lock-free per-queue design.
type QueuePair interface {
	// Submit appends cmd to the submission queue and returns immediately.
	// It fails with ErrQueueFull when the ring has no free slot.
	Submit(cmd *Command) error
	// Probe reaps up to max completions (max <= 0 means all available),
	// invoking each command's callback, and returns the number reaped.
	Probe(max int) int
	// Outstanding returns the number of submitted-but-not-reaped commands.
	Outstanding() int
	// Free releases the queue pair.
	Free() error
}

func validate(d Device, cmd *Command) error {
	if cmd == nil {
		return ErrBadCommand
	}
	if cmd.Op == OpFlush {
		return nil
	}
	if cmd.Blocks <= 0 {
		return ErrBadCommand
	}
	if cmd.LBA+uint64(cmd.Blocks) > d.NumBlocks() || cmd.LBA+uint64(cmd.Blocks) < cmd.LBA {
		return ErrOutOfRange
	}
	if cmd.Buf == nil {
		return ErrNilBuffer
	}
	if len(cmd.Buf) < cmd.Blocks*d.BlockSize() {
		return ErrShortBuffer
	}
	return nil
}
