package nvme

import (
	"testing"
	"time"

	"github.com/patree/patree/internal/sim"
)

// runToCompletion drives the sim engine until cb has fired, probing as it
// goes, and returns the completion error observed.
func completeOne(t *testing.T, eng *sim.Engine, qp QueuePair, cmd *Command) error {
	t.Helper()
	var done bool
	var got error
	cmd.Callback = func(c Completion) { done, got = true, c.Err }
	if err := qp.Submit(cmd); err != nil {
		t.Fatalf("submit: %v", err)
	}
	for !done && eng.Step() {
		qp.Probe(0)
	}
	qp.Probe(0)
	if !done {
		t.Fatal("command never completed")
	}
	return got
}

// TestValidateSentinels covers every command-shape sentinel: each invalid
// command must complete with its own distinct error status, and in
// particular a nil buffer must be distinguished from a short one.
func TestValidateSentinels(t *testing.T) {
	cases := []struct {
		name string
		cmd  *Command
		want error
	}{
		{"zero-blocks", &Command{Op: OpRead, LBA: 0, Blocks: 0, Buf: make([]byte, 512)}, ErrBadCommand},
		{"negative-blocks", &Command{Op: OpWrite, LBA: 0, Blocks: -1, Buf: make([]byte, 512)}, ErrBadCommand},
		{"out-of-range", &Command{Op: OpRead, LBA: 1 << 62, Blocks: 1, Buf: make([]byte, 512)}, ErrOutOfRange},
		{"lba-wraparound", &Command{Op: OpRead, LBA: ^uint64(0), Blocks: 2, Buf: make([]byte, 1024)}, ErrOutOfRange},
		{"nil-buffer", &Command{Op: OpRead, LBA: 0, Blocks: 1, Buf: nil}, ErrNilBuffer},
		{"short-buffer", &Command{Op: OpRead, LBA: 0, Blocks: 2, Buf: make([]byte, 512)}, ErrShortBuffer},
		{"empty-buffer", &Command{Op: OpWrite, LBA: 0, Blocks: 1, Buf: []byte{}}, ErrShortBuffer},
		{"valid-flush-ignores-buf", &Command{Op: OpFlush}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := sim.NewEngine()
			d := newTestDev(eng)
			qp, err := d.AllocQueuePair(8)
			if err != nil {
				t.Fatal(err)
			}
			if got := completeOne(t, eng, qp, tc.cmd); got != tc.want {
				t.Fatalf("completion err = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestValidateSentinelsRAM runs the same table against the real-time
// backend, which shares validate but posts completions from a worker pool.
func TestValidateSentinelsRAM(t *testing.T) {
	d := NewRAMDevice(RAMConfig{NumBlocks: 128})
	defer d.Close()
	qp, err := d.AllocQueuePair(8)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cmd  *Command
		want error
	}{
		{"nil-buffer", &Command{Op: OpWrite, LBA: 0, Blocks: 1, Buf: nil}, ErrNilBuffer},
		{"short-buffer", &Command{Op: OpWrite, LBA: 0, Blocks: 2, Buf: make([]byte, 512)}, ErrShortBuffer},
		{"out-of-range", &Command{Op: OpRead, LBA: 1 << 40, Blocks: 1, Buf: make([]byte, 512)}, ErrOutOfRange},
		{"zero-blocks", &Command{Op: OpRead, LBA: 0, Blocks: 0, Buf: make([]byte, 512)}, ErrBadCommand},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			done := make(chan error, 1)
			tc.cmd.Callback = func(c Completion) { done <- c.Err }
			if err := qp.Submit(tc.cmd); err != nil {
				t.Fatalf("submit: %v", err)
			}
			deadline := time.After(5 * time.Second)
			for {
				qp.Probe(0)
				select {
				case got := <-done:
					if got != tc.want {
						t.Fatalf("completion err = %v, want %v", got, tc.want)
					}
					return
				case <-deadline:
					t.Fatal("command never completed")
				default:
					time.Sleep(100 * time.Microsecond)
				}
			}
		})
	}
}

// TestLifecycleSentinels covers the queue-pair and device lifecycle errors:
// ErrQueueFull, ErrQueueFreed, ErrClosed, ErrTooManyQP and nil-command
// ErrBadCommand, which are returned synchronously from Submit/Alloc.
func TestLifecycleSentinels(t *testing.T) {
	eng := sim.NewEngine()
	d := NewSimDevice(eng, SimConfig{Seed: 1, MaxQueuePairs: 2})
	qp, err := d.AllocQueuePair(1)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	if err := qp.Submit(nil); err != ErrBadCommand {
		t.Fatalf("nil command: err = %v, want ErrBadCommand", err)
	}
	if err := qp.Submit(&Command{Op: OpRead, LBA: 0, Blocks: 1, Buf: buf}); err != nil {
		t.Fatal(err)
	}
	if err := qp.Submit(&Command{Op: OpRead, LBA: 1, Blocks: 1, Buf: buf}); err != ErrQueueFull {
		t.Fatalf("full ring: err = %v, want ErrQueueFull", err)
	}
	if _, err := d.AllocQueuePair(1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AllocQueuePair(1); err != ErrTooManyQP {
		t.Fatalf("alloc beyond limit: err = %v, want ErrTooManyQP", err)
	}
	eng.RunFor(time.Millisecond)
	qp.Probe(0)
	if err := qp.Free(); err != nil {
		t.Fatal(err)
	}
	if err := qp.Submit(&Command{Op: OpFlush}); err != ErrQueueFreed {
		t.Fatalf("freed pair: err = %v, want ErrQueueFreed", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AllocQueuePair(1); err != ErrClosed {
		t.Fatalf("alloc on closed device: err = %v, want ErrClosed", err)
	}
}

// TestTransientSentinelsDistinct pins down the transient command statuses
// introduced for fault injection: they must be distinct sentinels so retry
// classification can match them with errors.Is-style identity.
func TestTransientSentinelsDistinct(t *testing.T) {
	sentinels := []error{
		ErrQueueFull, ErrOutOfRange, ErrBadCommand, ErrClosed, ErrTooManyQP,
		ErrNilBuffer, ErrShortBuffer, ErrQueueFreed, ErrMedia, ErrTimeout,
	}
	seen := make(map[error]string)
	for _, e := range sentinels {
		if e == nil || e.Error() == "" {
			t.Fatalf("sentinel %v has empty message", e)
		}
		if prev, dup := seen[e]; dup {
			t.Fatalf("sentinel %q duplicates %q", e.Error(), prev)
		}
		seen[e] = e.Error()
	}
}
