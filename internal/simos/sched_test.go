package simos

import (
	"testing"
	"time"

	"github.com/patree/patree/internal/metrics"
	"github.com/patree/patree/internal/sim"
)

func newTestSched(cores int) (*sim.Engine, *Sched) {
	eng := sim.NewEngine()
	s := New(eng, Config{Cores: cores})
	return eng, s
}

func TestSingleThreadWork(t *testing.T) {
	eng, s := newTestSched(1)
	done := sim.Time(-1)
	s.Spawn("w", func(th *Thread) {
		th.Work(metrics.CatRealWork, 100*time.Microsecond)
		done = th.Now()
	})
	eng.Run()
	// 100us of work plus the initial switch-in cost.
	want := sim.Time(100*time.Microsecond + s.Config().CtxSwitchCost)
	if done != want {
		t.Fatalf("work finished at %v, want %v", done, want)
	}
	if s.Live() != 0 {
		t.Fatalf("live = %d", s.Live())
	}
}

func TestWorkChargesCategory(t *testing.T) {
	eng, s := newTestSched(1)
	var th *Thread
	th = s.Spawn("w", func(tt *Thread) {
		tt.Work(metrics.CatRealWork, 70*time.Microsecond)
		tt.Work(metrics.CatNVMe, 30*time.Microsecond)
	})
	eng.Run()
	if got := th.CPU.Get(metrics.CatRealWork); got != 70*time.Microsecond {
		t.Fatalf("real work charged %v", got)
	}
	if got := th.CPU.Get(metrics.CatNVMe); got != 30*time.Microsecond {
		t.Fatalf("nvme charged %v", got)
	}
}

func TestSleepDoesNotConsumeCPU(t *testing.T) {
	eng, s := newTestSched(1)
	var wake sim.Time
	var th *Thread
	th = s.Spawn("sleeper", func(tt *Thread) {
		tt.Sleep(1 * time.Millisecond)
		wake = tt.Now()
	})
	eng.Run()
	if wake < sim.Time(1*time.Millisecond) {
		t.Fatalf("woke at %v, want >= 1ms", wake)
	}
	// Only the syscall cost should be charged, not the sleep itself.
	if tot := th.CPU.Total(); tot > 10*time.Microsecond {
		t.Fatalf("sleep consumed %v CPU", tot)
	}
	if s.BusyCoreTime() > 10*time.Microsecond {
		t.Fatalf("core busy %v during sleep", s.BusyCoreTime())
	}
}

func TestTwoThreadsShareOneCore(t *testing.T) {
	eng, s := newTestSched(1)
	var doneA, doneB sim.Time
	s.Spawn("a", func(th *Thread) {
		th.Work(metrics.CatRealWork, 5*time.Millisecond)
		doneA = th.Now()
	})
	s.Spawn("b", func(th *Thread) {
		th.Work(metrics.CatRealWork, 5*time.Millisecond)
		doneB = th.Now()
	})
	eng.Run()
	// 10ms of demand on one core: both finish close to 10ms (plus switch
	// overhead), and neither can finish before 5ms.
	if doneA < sim.Time(5*time.Millisecond) || doneB < sim.Time(5*time.Millisecond) {
		t.Fatalf("finished too early: a=%v b=%v", doneA, doneB)
	}
	last := doneA
	if doneB > last {
		last = doneB
	}
	if last < sim.Time(10*time.Millisecond) || last > sim.Time(11*time.Millisecond) {
		t.Fatalf("last finish = %v, want ~10ms", last)
	}
	if s.ContextSwitches() < 2 {
		t.Fatalf("context switches = %d, want >= 2", s.ContextSwitches())
	}
}

func TestTwoCoresRunInParallel(t *testing.T) {
	eng, s := newTestSched(2)
	var doneA, doneB sim.Time
	s.Spawn("a", func(th *Thread) {
		th.Work(metrics.CatRealWork, 5*time.Millisecond)
		doneA = th.Now()
	})
	s.Spawn("b", func(th *Thread) {
		th.Work(metrics.CatRealWork, 5*time.Millisecond)
		doneB = th.Now()
	})
	eng.Run()
	// Each thread has its own core: both finish at ~5ms (+switch).
	for _, d := range []sim.Time{doneA, doneB} {
		if d > sim.Time(5*time.Millisecond+100*time.Microsecond) {
			t.Fatalf("finish = %v, want ~5ms", d)
		}
	}
}

func TestPreemptionInterleavesFairly(t *testing.T) {
	eng, s := newTestSched(1)
	// Thread a is a CPU hog; thread b needs a little CPU repeatedly.
	var bDone sim.Time
	s.Spawn("hog", func(th *Thread) {
		th.Work(metrics.CatRealWork, 100*time.Millisecond)
	})
	s.Spawn("b", func(th *Thread) {
		for i := 0; i < 5; i++ {
			th.Work(metrics.CatRealWork, 100*time.Microsecond)
		}
		bDone = th.Now()
	})
	eng.Run()
	// Without preemption b would wait 100ms. With 2ms timeslices it should
	// be done long before the hog.
	if bDone > sim.Time(40*time.Millisecond) {
		t.Fatalf("b finished at %v; preemption not working", bDone)
	}
}

func TestYieldGivesUpCore(t *testing.T) {
	eng, s := newTestSched(1)
	var order []string
	s.Spawn("a", func(th *Thread) {
		th.Work(metrics.CatRealWork, 10*time.Microsecond)
		th.Yield()
		order = append(order, "a2")
	})
	s.Spawn("b", func(th *Thread) {
		th.Work(metrics.CatRealWork, 10*time.Microsecond)
		order = append(order, "b")
	})
	eng.Run()
	if len(order) != 2 || order[0] != "b" || order[1] != "a2" {
		t.Fatalf("order = %v, want [b a2]", order)
	}
}

func TestSemaphoreBlocksAndWakes(t *testing.T) {
	eng, s := newTestSched(2)
	sem := s.NewSem(0)
	var consumed, posted sim.Time
	s.Spawn("consumer", func(th *Thread) {
		sem.Wait(th)
		consumed = th.Now()
	})
	s.Spawn("producer", func(th *Thread) {
		th.Sleep(1 * time.Millisecond)
		posted = th.Now()
		sem.Post(th)
	})
	eng.Run()
	if consumed < posted {
		t.Fatalf("consumer ran at %v before post at %v", consumed, posted)
	}
	if consumed < sim.Time(1*time.Millisecond) {
		t.Fatalf("consumer woke too early: %v", consumed)
	}
}

func TestSemaphoreCountingNoBlock(t *testing.T) {
	eng, s := newTestSched(1)
	sem := s.NewSem(2)
	blocked := false
	s.Spawn("w", func(th *Thread) {
		sem.Wait(th)
		sem.Wait(th)
		if !sem.TryWait(th) {
			blocked = true
		}
	})
	eng.Run()
	if !blocked {
		t.Fatal("TryWait succeeded with zero count")
	}
	if sem.Value() != 0 {
		t.Fatalf("sem value = %d", sem.Value())
	}
}

func TestSemaphoreFIFOWakeOrder(t *testing.T) {
	eng, s := newTestSched(4)
	sem := s.NewSem(0)
	var order []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		s.Spawn(name, func(th *Thread) {
			sem.Wait(th)
			order = append(order, name)
		})
	}
	s.Spawn("poster", func(th *Thread) {
		th.Sleep(time.Millisecond)
		for i := 0; i < 3; i++ {
			sem.Post(th)
		}
	})
	eng.Run()
	if len(order) != 3 || order[0] != "w1" || order[1] != "w2" || order[2] != "w3" {
		t.Fatalf("wake order = %v", order)
	}
}

func TestSemWaitChargesSyncCategory(t *testing.T) {
	eng, s := newTestSched(1)
	sem := s.NewSem(1)
	var th *Thread
	th = s.Spawn("w", func(tt *Thread) { sem.Wait(tt) })
	eng.Run()
	if th.CPU.Get(metrics.CatSync) != s.Config().SyscallCost {
		t.Fatalf("sync charge = %v", th.CPU.Get(metrics.CatSync))
	}
}

func TestParker(t *testing.T) {
	eng, s := newTestSched(1)
	p := s.NewParker()
	var woke sim.Time
	s.Spawn("w", func(th *Thread) {
		p.Park(th)
		woke = th.Now()
	})
	eng.After(5*time.Millisecond, p.Unpark)
	eng.Run()
	if woke < sim.Time(5*time.Millisecond) {
		t.Fatalf("woke at %v", woke)
	}
	// Token posted before park: no block.
	p2 := s.NewParker()
	p2.Unpark()
	fast := sim.Time(-1)
	s.Spawn("w2", func(th *Thread) {
		start := th.Now()
		p2.Park(th)
		fast = th.Now() - start
	})
	eng.Run()
	if fast > sim.Time(10*time.Microsecond) {
		t.Fatalf("pre-posted park blocked for %v", fast)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	eng, s := newTestSched(4)
	mu := s.NewMutex()
	inside := 0
	maxInside := 0
	for i := 0; i < 4; i++ {
		s.Spawn("t", func(th *Thread) {
			for j := 0; j < 10; j++ {
				mu.Lock(th)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				th.Work(metrics.CatRealWork, 10*time.Microsecond)
				inside--
				mu.Unlock(th)
			}
		})
	}
	eng.Run()
	if maxInside != 1 {
		t.Fatalf("max threads inside critical section = %d", maxInside)
	}
}

func TestCPUConsumptionMeasure(t *testing.T) {
	eng, s := newTestSched(4)
	// Two threads each busy 10ms in a 4-core machine, then measure at 10ms:
	// consumption ~2 cores.
	for i := 0; i < 2; i++ {
		s.Spawn("busy", func(th *Thread) {
			th.Work(metrics.CatRealWork, 10*time.Millisecond)
		})
	}
	eng.RunUntil(sim.Time(10 * time.Millisecond))
	got := s.CPUConsumption()
	if got < 1.9 || got > 2.1 {
		t.Fatalf("CPU consumption = %v, want ~2", got)
	}
}

func TestResetStats(t *testing.T) {
	eng, s := newTestSched(1)
	s.Spawn("a", func(th *Thread) { th.Work(metrics.CatRealWork, time.Millisecond) })
	s.Spawn("b", func(th *Thread) { th.Work(metrics.CatRealWork, time.Millisecond) })
	eng.Run()
	if s.ContextSwitches() == 0 {
		t.Fatal("expected context switches")
	}
	s.ResetStats()
	if s.ContextSwitches() != 0 || s.BusyCoreTime() != 0 {
		t.Fatal("reset failed")
	}
	if s.CPUConsumption() != 0 {
		t.Fatal("consumption after reset nonzero")
	}
}

func TestManyThreadsContextSwitchStorm(t *testing.T) {
	// 32 threads ping-ponging on one core must generate lots of switches
	// and keep total CPU = sum of demands + switch overhead.
	eng, s := newTestSched(1)
	const n = 32
	for i := 0; i < n; i++ {
		s.Spawn("t", func(th *Thread) {
			for j := 0; j < 20; j++ {
				th.Work(metrics.CatRealWork, 50*time.Microsecond)
				th.Sleep(100 * time.Microsecond)
			}
		})
	}
	eng.Run()
	if s.ContextSwitches() < n*10 {
		t.Fatalf("switches = %d, want many", s.ContextSwitches())
	}
	var work time.Duration
	for _, th := range s.Threads() {
		work += th.CPU.Get(metrics.CatRealWork)
	}
	if work != n*20*50*time.Microsecond {
		t.Fatalf("total real work = %v", work)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (sim.Time, uint64) {
		eng, s := newTestSched(2)
		sem := s.NewSem(0)
		for i := 0; i < 8; i++ {
			d := time.Duration(i+1) * 37 * time.Microsecond
			s.Spawn("p", func(th *Thread) {
				th.Work(metrics.CatRealWork, d)
				sem.Post(th)
			})
		}
		s.Spawn("c", func(th *Thread) {
			for i := 0; i < 8; i++ {
				sem.Wait(th)
			}
		})
		eng.Run()
		return eng.Now(), s.ContextSwitches()
	}
	t1, c1 := run()
	t2, c2 := run()
	if t1 != t2 || c1 != c2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", t1, c1, t2, c2)
	}
}
