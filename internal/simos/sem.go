package simos

import "github.com/patree/patree/internal/metrics"

// Sem is a counting semaphore for simulated threads, modelling the
// sem_wait/sem_post primitives the paper's baseline approaches use for
// inter-thread synchronization. Wait and Post charge the caller the
// configured syscall cost under the "synchronization" CPU category, which
// is exactly the cost Figure 9 attributes to the baselines.
type Sem struct {
	sched   *Sched
	count   int
	waiters []*Thread
}

// NewSem creates a semaphore with the given initial count.
func (s *Sched) NewSem(initial int) *Sem {
	return &Sem{sched: s, count: initial}
}

// Wait decrements the semaphore, blocking the calling thread while the
// count is zero. FIFO wake order.
func (m *Sem) Wait(t *Thread) {
	t.Work(metrics.CatSync, m.sched.cfg.SyscallCost)
	if m.count > 0 {
		m.count--
		return
	}
	m.waiters = append(m.waiters, t)
	t.block()
}

// TryWait decrements without blocking; reports whether it succeeded.
func (m *Sem) TryWait(t *Thread) bool {
	t.Work(metrics.CatSync, m.sched.cfg.SyscallCost)
	if m.count > 0 {
		m.count--
		return true
	}
	return false
}

// Post increments the semaphore, waking the longest-waiting thread if any.
// The waiter is handed the token directly (it does not re-contend).
func (m *Sem) Post(t *Thread) {
	if t != nil {
		t.Work(metrics.CatSync, m.sched.cfg.SyscallCost)
	}
	m.post()
}

// PostFromEvent increments the semaphore from a non-thread context (a DES
// event such as a device completion callback); no CPU is charged.
func (m *Sem) PostFromEvent() { m.post() }

func (m *Sem) post() {
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		m.sched.wake(w)
		return
	}
	m.count++
}

// Value returns the current count (waiters imply zero).
func (m *Sem) Value() int { return m.count }

// Waiters returns the number of blocked threads.
func (m *Sem) Waiters() int { return len(m.waiters) }

// Mutex is a binary semaphore with Lock/Unlock naming, used by baselines
// for short critical sections (it still costs a syscall per operation,
// matching the futex-under-contention behaviour the paper measures).
type Mutex struct{ s Sem }

// NewMutex creates an unlocked mutex.
func (s *Sched) NewMutex() *Mutex {
	return &Mutex{s: Sem{sched: s, count: 1}}
}

// Lock acquires the mutex, blocking the thread if needed.
func (m *Mutex) Lock(t *Thread) { m.s.Wait(t) }

// Unlock releases the mutex.
func (m *Mutex) Unlock(t *Thread) { m.s.Post(t) }

// Parker lets a thread park itself until another context unparks it; a
// one-shot binary signal used for I/O completion waits. Unlike Sem it
// never accumulates more than one token.
type Parker struct {
	sched  *Sched
	token  bool
	parked *Thread
}

// NewParker returns a Parker with no pending token.
func (s *Sched) NewParker() *Parker { return &Parker{sched: s} }

// Park blocks the calling thread until a token is available, consuming it.
func (p *Parker) Park(t *Thread) {
	t.Work(metrics.CatSync, p.sched.cfg.SyscallCost)
	if p.token {
		p.token = false
		return
	}
	if p.parked != nil {
		panic("simos: Parker supports a single parked thread")
	}
	p.parked = t
	t.block()
}

// Unpark makes a token available, waking the parked thread if present.
// Safe to call from DES events.
func (p *Parker) Unpark() {
	if p.parked != nil {
		w := p.parked
		p.parked = nil
		p.sched.wake(w)
		return
	}
	p.token = true
}
