// Package simos simulates a small multi-core operating system on top of the
// discrete-event engine in internal/sim: preemptive threads with
// timeslices, run queues, context-switch costs, semaphores with sleep/wake,
// and per-thread CPU accounting by category.
//
// Simulated threads are real goroutines that execute real Go code (the
// baseline B+ trees run their actual logic inside them), but virtual CPU
// time only passes when a thread explicitly charges it with Work. The
// scheduler resumes exactly one thread goroutine at a time, with a strict
// channel handoff, so the simulation stays deterministic: host-side
// goroutine scheduling can never reorder simulated events.
//
// This substrate replaces the Linux kernel of the paper's testbed. It is
// what lets us measure — exactly, not via perf sampling — the context
// switches, CPU core consumption, and synchronization costs that the
// paper's Figures 7–9 and Tables I–II are about.
package simos

import (
	"fmt"
	"time"

	"github.com/patree/patree/internal/metrics"
	"github.com/patree/patree/internal/sim"
)

// Config describes the simulated machine.
type Config struct {
	// Cores is the number of physical CPU cores. The paper's testbed has 8.
	Cores int
	// Timeslice is the preemption quantum. Linux CFS grants a few
	// milliseconds under load; we default to 2ms.
	Timeslice time.Duration
	// CtxSwitchCost is the direct cost of a context switch: register/state
	// save-restore, scheduler work, and the cache/TLB-pollution penalty
	// the paper attributes to frequent switches. Default 5µs.
	CtxSwitchCost time.Duration
	// SyscallCost is the user/kernel mode-switch cost charged by blocking
	// primitives (semaphore wait/post, sleep). Default 3µs.
	SyscallCost time.Duration
}

func (c Config) withDefaults() Config {
	if c.Cores <= 0 {
		c.Cores = 8
	}
	if c.Timeslice <= 0 {
		c.Timeslice = 2 * time.Millisecond
	}
	if c.CtxSwitchCost <= 0 {
		c.CtxSwitchCost = 5 * time.Microsecond
	}
	if c.SyscallCost <= 0 {
		c.SyscallCost = 3 * time.Microsecond
	}
	return c
}

// DefaultConfig returns the paper-testbed machine: 8 cores.
func DefaultConfig() Config { return Config{}.withDefaults() }

type reqKind int

const (
	reqWork reqKind = iota
	reqSleep
	reqYield
	reqBlock
	reqExit
)

type request struct {
	kind reqKind
	cat  metrics.CPUCategory
	d    time.Duration
}

type threadState int

const (
	stateRunnable threadState = iota
	stateRunning
	stateBlocked
	stateSleeping
	stateDead
)

// Thread is a simulated kernel thread. Methods on Thread must only be
// called from within the thread's own body function.
type Thread struct {
	sched *Sched
	name  string
	id    int

	resume  chan struct{}
	request chan request

	state  threadState
	demand time.Duration       // unfinished CPU demand of the current request
	cat    metrics.CPUCategory // category of the demand
	core   *core               // core currently running this thread, if any

	// CPU is the per-thread CPU account, charged as work is consumed.
	CPU metrics.CPUAccount

	wakeTimer sim.EventID
	started   bool
	exited    bool
}

// Name returns the thread's name.
func (t *Thread) Name() string { return t.name }

// ID returns the thread's unique id.
func (t *Thread) ID() int { return t.id }

// Now returns the current virtual time.
func (t *Thread) Now() sim.Time { return t.sched.eng.Now() }

// Work consumes d of virtual CPU time charged to category cat. The call
// returns once the simulated thread has actually been granted that much
// CPU, which may involve waiting for a core and being preempted.
func (t *Thread) Work(cat metrics.CPUCategory, d time.Duration) {
	if d <= 0 {
		return
	}
	t.call(request{kind: reqWork, cat: cat, d: d})
}

// Sleep blocks the thread for d of virtual time without consuming CPU
// (apart from the syscall cost of blocking).
func (t *Thread) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.Work(metrics.CatOther, t.sched.cfg.SyscallCost)
	t.call(request{kind: reqSleep, d: d})
}

// Yield releases the core and re-queues the thread at the tail of the run
// queue, like sched_yield(2).
func (t *Thread) Yield() {
	t.call(request{kind: reqYield})
}

// block parks the thread until some other party calls sched.wake(t).
func (t *Thread) block() {
	t.call(request{kind: reqBlock})
}

// call hands control to the scheduler and waits to be resumed.
func (t *Thread) call(r request) {
	if t.exited {
		panic("simos: request from exited thread")
	}
	t.request <- r
	<-t.resume
}

// core models one physical CPU.
type core struct {
	id       int
	busy     bool
	last     *Thread // last thread that ran here (affects switch cost)
	busyNs   time.Duration
	busyFrom sim.Time
}

func (c *core) markBusy(now sim.Time) {
	if !c.busy {
		c.busy = true
		c.busyFrom = now
	}
}

func (c *core) markIdle(now sim.Time) {
	if c.busy {
		c.busy = false
		c.busyNs += now.Sub(c.busyFrom)
	}
}

// Sched is the simulated OS scheduler.
type Sched struct {
	eng   *sim.Engine
	cfg   Config
	cores []*core
	runq  []*Thread // FIFO run queue

	threads    []*Thread
	nextID     int
	liveCount  int
	ctxSwitch  metrics.Counter
	dispatchIn bool
	startT     sim.Time
}

// New creates a scheduler on the given engine.
func New(eng *sim.Engine, cfg Config) *Sched {
	cfg = cfg.withDefaults()
	s := &Sched{eng: eng, cfg: cfg, startT: eng.Now()}
	for i := 0; i < cfg.Cores; i++ {
		s.cores = append(s.cores, &core{id: i})
	}
	return s
}

// Engine returns the underlying DES engine.
func (s *Sched) Engine() *sim.Engine { return s.eng }

// Config returns the machine configuration.
func (s *Sched) Config() Config { return s.cfg }

// ContextSwitches returns the total number of context switches so far.
func (s *Sched) ContextSwitches() uint64 { return s.ctxSwitch.Value() }

// Live returns the number of threads that have not exited.
func (s *Sched) Live() int { return s.liveCount }

// Threads returns all threads ever spawned, in spawn order.
func (s *Sched) Threads() []*Thread { return s.threads }

// BusyCoreTime returns the total core-busy time across all cores,
// including context-switch overhead.
func (s *Sched) BusyCoreTime() time.Duration {
	var total time.Duration
	now := s.eng.Now()
	for _, c := range s.cores {
		total += c.busyNs
		if c.busy {
			total += now.Sub(c.busyFrom)
		}
	}
	return total
}

// CPUConsumption returns the average number of busy cores since start,
// the measure used in the paper's Table I (0.0 … Cores).
func (s *Sched) CPUConsumption() float64 {
	elapsed := s.eng.Now().Sub(s.startT)
	if elapsed <= 0 {
		return 0
	}
	return float64(s.BusyCoreTime()) / float64(elapsed)
}

// ResetStats zeroes context-switch and core-busy accounting; used by the
// harness to exclude the load phase from measurements.
func (s *Sched) ResetStats() {
	s.ctxSwitch.Reset()
	now := s.eng.Now()
	s.startT = now
	for _, c := range s.cores {
		c.busyNs = 0
		if c.busy {
			c.busyFrom = now
		}
	}
	for _, t := range s.threads {
		t.CPU.Reset()
	}
}

// Spawn creates a thread running fn. The thread becomes runnable
// immediately (at the current virtual time) and starts when a core picks
// it up. Spawn may be called from outside the simulation (setup code) or
// from within a thread body.
func (s *Sched) Spawn(name string, fn func(t *Thread)) *Thread {
	s.nextID++
	t := &Thread{
		sched:   s,
		name:    name,
		id:      s.nextID,
		resume:  make(chan struct{}),
		request: make(chan request),
		state:   stateRunnable,
	}
	s.threads = append(s.threads, t)
	s.liveCount++
	go func() {
		<-t.resume
		fn(t)
		t.exited = true
		t.request <- request{kind: reqExit}
	}()
	s.enqueue(t)
	return t
}

// enqueue appends t to the run queue and arranges a dispatch.
func (s *Sched) enqueue(t *Thread) {
	t.state = stateRunnable
	s.runq = append(s.runq, t)
	s.scheduleDispatch()
}

// wake makes a blocked or sleeping thread runnable. Safe to call from any
// simulation context (thread bodies, device callbacks, DES events).
func (s *Sched) wake(t *Thread) {
	if t.state != stateBlocked && t.state != stateSleeping {
		return
	}
	if t.state == stateSleeping {
		s.eng.Cancel(t.wakeTimer)
	}
	s.enqueue(t)
}

// scheduleDispatch coalesces dispatch requests into a single zero-delay
// event so that run-queue mutations made from inside thread bodies take
// effect once control returns to the engine.
func (s *Sched) scheduleDispatch() {
	if s.dispatchIn {
		return
	}
	s.dispatchIn = true
	s.eng.After(0, func() {
		s.dispatchIn = false
		s.dispatch()
	})
}

// dispatch assigns runnable threads to idle cores.
func (s *Sched) dispatch() {
	for _, c := range s.cores {
		if c.busy {
			continue
		}
		if len(s.runq) == 0 {
			return
		}
		t := s.runq[0]
		s.runq = s.runq[1:]
		s.startOn(c, t)
	}
}

// startOn begins running t on core c, charging a context switch if the
// core last ran a different thread.
func (s *Sched) startOn(c *core, t *Thread) {
	now := s.eng.Now()
	c.markBusy(now)
	t.state = stateRunning
	t.core = c
	var switchCost time.Duration
	if c.last != t {
		switchCost = s.cfg.CtxSwitchCost
		s.ctxSwitch.Inc()
		t.CPU.Charge(metrics.CatOther, switchCost)
	}
	c.last = t
	sliceEnd := now.Add(switchCost + s.cfg.Timeslice)
	if switchCost > 0 {
		s.eng.After(switchCost, func() { s.runStep(c, t, sliceEnd) })
	} else {
		s.runStep(c, t, sliceEnd)
	}
}

// runStep advances t on c: satisfies finished requests, consumes CPU
// demand, and handles preemption at slice boundaries.
func (s *Sched) runStep(c *core, t *Thread, sliceEnd sim.Time) {
	for {
		now := s.eng.Now()
		if t.demand <= 0 {
			// The previous request is satisfied: resume the goroutine, let
			// it compute (zero virtual time), and take its next request.
			t.resume <- struct{}{}
			r := <-t.request
			switch r.kind {
			case reqWork:
				t.demand = r.d
				t.cat = r.cat
				continue
			case reqSleep:
				s.leaveCore(c, t)
				t.state = stateSleeping
				tt := t
				t.wakeTimer = s.eng.After(r.d, func() { s.enqueue(tt) })
				return
			case reqYield:
				s.leaveCore(c, t)
				s.enqueue(t)
				return
			case reqBlock:
				s.leaveCore(c, t)
				t.state = stateBlocked
				return
			case reqExit:
				s.leaveCore(c, t)
				t.state = stateDead
				s.liveCount--
				return
			default:
				panic(fmt.Sprintf("simos: unknown request kind %d", r.kind))
			}
		}
		if now >= sliceEnd {
			// Slice expired with demand remaining: preempt if anyone else
			// wants the core, otherwise keep it with a fresh slice.
			s.maybePreempt(c, t)
			if t.state != stateRunning {
				return
			}
			sliceEnd = now.Add(s.cfg.Timeslice)
		}
		// Consume demand until it finishes or the slice expires.
		runFor := t.demand
		if end := now.Add(runFor); end > sliceEnd {
			runFor = sliceEnd.Sub(now)
		}
		cc, tt, se := c, t, sliceEnd
		s.eng.After(runFor, func() {
			tt.demand -= runFor
			tt.CPU.Charge(tt.cat, runFor)
			s.runStep(cc, tt, se)
		})
		return
	}
}

// maybePreempt puts t back on the run queue if anyone else is waiting;
// otherwise lets it keep the core with a fresh slice.
func (s *Sched) maybePreempt(c *core, t *Thread) {
	if len(s.runq) == 0 {
		return // nothing else to run: keep the core
	}
	s.leaveCore(c, t)
	s.enqueue(t)
}

// leaveCore detaches t from c and triggers a dispatch for the freed core.
func (s *Sched) leaveCore(c *core, t *Thread) {
	c.markIdle(s.eng.Now())
	t.core = nil
	s.scheduleDispatch()
}
