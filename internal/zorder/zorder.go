// Package zorder implements the Morton (z-order) space-filling curve used
// to linearize the T-Drive trajectories' (latitude, longitude) positions
// into B+ tree keys, exactly as the paper's first real workload does
// ("a z-code computed by applying z-ordering on latitude and longitude").
package zorder

// spread interleaves the low 32 bits of x with zeros:
// bit i of x moves to bit 2i of the result.
func spread(x uint32) uint64 {
	v := uint64(x)
	v = (v | v<<16) & 0x0000FFFF0000FFFF
	v = (v | v<<8) & 0x00FF00FF00FF00FF
	v = (v | v<<4) & 0x0F0F0F0F0F0F0F0F
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// compact is the inverse of spread.
func compact(v uint64) uint32 {
	v &= 0x5555555555555555
	v = (v | v>>1) & 0x3333333333333333
	v = (v | v>>2) & 0x0F0F0F0F0F0F0F0F
	v = (v | v>>4) & 0x00FF00FF00FF00FF
	v = (v | v>>8) & 0x0000FFFF0000FFFF
	v = (v | v>>16) & 0x00000000FFFFFFFF
	return uint32(v)
}

// Encode interleaves x and y into a z-code: x occupies even bits, y odd.
func Encode(x, y uint32) uint64 {
	return spread(x) | spread(y)<<1
}

// Decode splits a z-code back into (x, y).
func Decode(z uint64) (x, y uint32) {
	return compact(z), compact(z >> 1)
}

// CellOf maps a coordinate in [min, max) onto a grid of 2^bits cells.
func CellOf(v, min, max float64, bits uint) uint32 {
	if max <= min {
		return 0
	}
	n := uint64(1) << bits
	f := (v - min) / (max - min)
	if f < 0 {
		f = 0
	}
	if f >= 1 {
		f = 1 - 1e-12
	}
	return uint32(uint64(f * float64(n)))
}

// RangeOf returns the z-code interval covering the square cell region
// [x0,x1] × [y0,y1] at the given per-axis resolution. The interval is a
// superset (z-order ranges over a rectangle are not contiguous); callers
// scanning it post-filter with InRect, which is what the T-Drive workload
// queries do.
func RangeOf(x0, y0, x1, y1 uint32) (lo, hi uint64) {
	return Encode(x0, y0), Encode(x1, y1)
}

// InRect reports whether z decodes into the rectangle [x0,x1] × [y0,y1].
func InRect(z uint64, x0, y0, x1, y1 uint32) bool {
	x, y := Decode(z)
	return x >= x0 && x <= x1 && y >= y0 && y <= y1
}
