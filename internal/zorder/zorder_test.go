package zorder

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeKnownValues(t *testing.T) {
	cases := []struct {
		x, y uint32
		z    uint64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{0, 1, 2},
		{1, 1, 3},
		{2, 0, 4},
		{0xFFFFFFFF, 0, 0x5555555555555555},
		{0, 0xFFFFFFFF, 0xAAAAAAAAAAAAAAAA},
		{0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFFFFFFFFFF},
	}
	for _, c := range cases {
		if got := Encode(c.x, c.y); got != c.z {
			t.Fatalf("Encode(%d,%d) = %#x, want %#x", c.x, c.y, got, c.z)
		}
		gx, gy := Decode(c.z)
		if gx != c.x || gy != c.y {
			t.Fatalf("Decode(%#x) = (%d,%d)", c.z, gx, gy)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(x, y uint32) bool {
		gx, gy := Decode(Encode(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Z-order preserves the "both coordinates dominate" partial order:
// x1<=x2 and y1<=y2 implies z1 <= z2.
func TestMonotoneDominance(t *testing.T) {
	f := func(x1, y1, dx, dy uint16) bool {
		a := Encode(uint32(x1), uint32(y1))
		b := Encode(uint32(x1)+uint32(dx), uint32(y1)+uint32(dy))
		return a <= b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeContainsRectangleProperty(t *testing.T) {
	f := func(x0, y0 uint8, w, h uint8) bool {
		x1 := uint32(x0) + uint32(w%16)
		y1 := uint32(y0) + uint32(h%16)
		lo, hi := RangeOf(uint32(x0), uint32(y0), x1, y1)
		// Every cell of the rectangle must fall inside [lo, hi].
		for x := uint32(x0); x <= x1; x++ {
			for y := uint32(y0); y <= y1; y++ {
				z := Encode(x, y)
				if z < lo || z > hi {
					return false
				}
				if !InRect(z, uint32(x0), uint32(y0), x1, y1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInRectBoundaries(t *testing.T) {
	if !InRect(Encode(5, 5), 5, 5, 5, 5) {
		t.Fatal("single-cell rect excludes its own cell")
	}
	if InRect(Encode(4, 5), 5, 5, 6, 6) || InRect(Encode(5, 7), 5, 5, 6, 6) {
		t.Fatal("outside cells included")
	}
}

func TestCellOfEdges(t *testing.T) {
	if CellOf(10, 10, 10, 4) != 0 {
		t.Fatal("degenerate interval")
	}
	if CellOf(0.999999, 0, 1, 4) != 15 {
		t.Fatal("near-max cell")
	}
}
