package harness

import (
	"testing"
	"time"

	"github.com/patree/patree/internal/core"
	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/sim"
	"github.com/patree/patree/internal/workload"
)

// mdTree is the shard config every multi-device test uses.
func mdTree() core.Config { return paTreeConfig(0, core.StrongPersistence) }

func TestRunMultiDeviceProducesStats(t *testing.T) {
	s := tinyScale()
	rs := RunMultiDevice(MultiDevConfig{
		Scale:   s,
		Shards:  4,
		Devices: 2,
		MkTree:  mdTree,
		Gen:     defaultGen(s, 10, 0.3),
	})
	if rs.Ops == 0 || rs.Throughput <= 0 {
		t.Fatalf("no ops measured: %+v", rs)
	}
	if rs.MeanLatency <= 0 || rs.CPU <= 0 || rs.IOPS <= 0 {
		t.Fatalf("stats incomplete: %+v", rs)
	}
	if rs.Label != "PA-Tree x4/2dev" {
		t.Fatalf("label = %q", rs.Label)
	}
	if rs.Devices != 2 {
		t.Fatalf("devices = %d", rs.Devices)
	}
	if len(rs.ShardQueueP99) != 4 {
		t.Fatalf("shard queue p99s = %v", rs.ShardQueueP99)
	}
	for i, p := range rs.ShardQueueP99 {
		if p <= 0 {
			t.Fatalf("shard %d queue-wait p99 not measured: %v", i, rs.ShardQueueP99)
		}
	}
}

// TestMultiDevOneDeviceCompat pins the Devices=1 degenerate case to the
// existing sharded driver: same seed, same workload, the multi-device
// runner on one device must reproduce RunShardedPATree's measurements
// exactly — the partition layout, per-device seed and admission order
// are all identical, so any divergence means the generalized runner
// changed the single-device experiments it subsumes.
func TestMultiDevOneDeviceCompat(t *testing.T) {
	s := tinyScale()
	for _, shards := range []int{1, 4} {
		a := RunShardedPATree(ShardedPAConfig{
			Scale:  s,
			Shards: shards,
			MkTree: mdTree,
			Gen:    defaultGen(s, 10, 0.3),
		})
		b := RunMultiDevice(MultiDevConfig{
			Scale:   s,
			Shards:  shards,
			Devices: 1,
			MkTree:  mdTree,
			Gen:     defaultGen(s, 10, 0.3),
		})
		if a.Ops != b.Ops {
			t.Errorf("shards=%d: ops diverged: sharded=%d multidev=%d", shards, a.Ops, b.Ops)
		}
		if a.Throughput != b.Throughput {
			t.Errorf("shards=%d: throughput diverged: sharded=%v multidev=%v", shards, a.Throughput, b.Throughput)
		}
		if a.MeanLatency != b.MeanLatency || a.P99Latency != b.P99Latency {
			t.Errorf("shards=%d: latency diverged: sharded mean=%v p99=%v, multidev mean=%v p99=%v",
				shards, a.MeanLatency, a.P99Latency, b.MeanLatency, b.P99Latency)
		}
		if a.Probes != b.Probes {
			t.Errorf("shards=%d: probes diverged: sharded=%d multidev=%d", shards, a.Probes, b.Probes)
		}
		if a.LatchWaits != b.LatchWaits {
			t.Errorf("shards=%d: latch waits diverged: sharded=%d multidev=%d", shards, a.LatchWaits, b.LatchWaits)
		}
		if a.IOPS != b.IOPS {
			t.Errorf("shards=%d: IOPS diverged: sharded=%v multidev=%v", shards, a.IOPS, b.IOPS)
		}
	}
}

// TestMultiDevUniformWeightingByteIdentical is the weighting-off
// regression: the governor only imposes a window on a shard whose
// queue-wait EWMA is both above an absolute floor and a multiple of
// every other shard's, so under uniform traffic it never intervenes and
// a weighted run must reproduce the unweighted schedule exactly.
func TestMultiDevUniformWeightingByteIdentical(t *testing.T) {
	s := tinyScale()
	run := func(weighting bool) MultiDevStats {
		return RunMultiDevice(MultiDevConfig{
			Scale:     s,
			Shards:    4,
			Devices:   2,
			MkTree:    mdTree,
			Gen:       defaultGen(s, 10, 0.3),
			Weighting: weighting,
		})
	}
	off := run(false)
	on := run(true)
	if on.Throttled != 0 {
		t.Fatalf("uniform traffic throttled %d admissions — the governor must stay unthrottled until a shard runs hot", on.Throttled)
	}
	if off.Ops != on.Ops || off.Throughput != on.Throughput {
		t.Errorf("throughput diverged: off=%v (%d ops) on=%v (%d ops)", off.Throughput, off.Ops, on.Throughput, on.Ops)
	}
	if off.MeanLatency != on.MeanLatency || off.P99Latency != on.P99Latency {
		t.Errorf("latency diverged: off mean=%v p99=%v, on mean=%v p99=%v",
			off.MeanLatency, off.P99Latency, on.MeanLatency, on.P99Latency)
	}
	if off.Probes != on.Probes || off.IOPS != on.IOPS {
		t.Errorf("engine activity diverged: off probes=%d iops=%v, on probes=%d iops=%v",
			off.Probes, off.IOPS, on.Probes, on.IOPS)
	}
	for i := range off.ShardQueueP99 {
		if off.ShardQueueP99[i] != on.ShardQueueP99[i] {
			t.Errorf("shard %d queue-wait p99 diverged: off=%v on=%v", i, off.ShardQueueP99[i], on.ShardQueueP99[i])
		}
	}
}

// hotShardGen skews a base generator's op stream: with probability
// hotPct% the op's key is remapped (deterministically) onto a key owned
// by shard 0, concentrating that fraction of the traffic on one shard
// while the rest stays at the base distribution.
type hotShardGen struct {
	base    workload.Generator
	rng     *sim.RNG
	hotKeys []uint64
	hotPct  int
}

func newHotShardGen(base workload.Generator, shards, hotPct int, keys uint64, seed uint64) *hotShardGen {
	g := &hotShardGen{base: base, rng: sim.NewRNG(seed ^ 0x407), hotPct: hotPct}
	for k := uint64(1); k <= keys && len(g.hotKeys) < 4096; k++ {
		if core.ShardOf(k, shards) == 0 {
			g.hotKeys = append(g.hotKeys, k)
		}
	}
	if len(g.hotKeys) == 0 {
		panic("harness: no keys owned by shard 0")
	}
	return g
}

func (g *hotShardGen) Name() string       { return g.base.Name() + "+hot0" }
func (g *hotShardGen) Preload() []core.KV { return g.base.Preload() }
func (g *hotShardGen) Next() workload.Op {
	w := g.base.Next()
	if int(g.rng.Uint64n(100)) < g.hotPct {
		w.Key = g.hotKeys[g.rng.Uint64n(uint64(len(g.hotKeys)))]
	}
	return w
}

// TestMultiDevSkewBattery drives Zipf-plus-hot-shard mixes at several
// skew levels and asserts the two properties the admission governor
// exists for: (1) with weighting on, the hot shard's p99 queue-wait
// stays within a bounded factor of the cold shards' mean — excess
// waiting moves out of the engine into driver-side parking; (2) the
// governor actually engaged (parked admissions) under real skew.
func TestMultiDevSkewBattery(t *testing.T) {
	s := tinyScale()
	cases := []struct {
		name    string
		hotPct  int
		theta   float64
		shards  int
		devices int
		// maxHotColdRatio bounds hot-shard p99 queue-wait over the cold
		// shards' mean p99 with weighting on.
		maxHotColdRatio float64
	}{
		{name: "zipf-mild-hot50", hotPct: 50, theta: 0.3, shards: 4, devices: 2, maxHotColdRatio: 48},
		{name: "zipf-strong-hot80", hotPct: 80, theta: 0.6, shards: 4, devices: 2, maxHotColdRatio: 24},
		{name: "eight-shards-hot60", hotPct: 60, theta: 0.3, shards: 8, devices: 4, maxHotColdRatio: 64},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			run := func(weighting bool) MultiDevStats {
				gen := newHotShardGen(defaultGen(s, 10, tc.theta), tc.shards, tc.hotPct,
					uint64(s.PreloadKeys), s.Seed)
				return RunMultiDevice(MultiDevConfig{
					Scale:     s,
					Shards:    tc.shards,
					Devices:   tc.devices,
					MkTree:    mdTree,
					Gen:       gen,
					Device:    nvme.SimConfig{Parallelism: 64},
					Weighting: weighting,
				})
			}
			on := run(true)
			off := run(false)

			if on.Throttled == 0 {
				t.Fatalf("%d%% hot traffic never engaged the governor", tc.hotPct)
			}
			hot := on.ShardQueueP99[0]
			var cold time.Duration
			for _, p := range on.ShardQueueP99[1:] {
				cold += p
			}
			cold /= time.Duration(tc.shards - 1)
			if cold <= 0 {
				t.Fatalf("cold shards measured no queue wait: %v", on.ShardQueueP99)
			}
			ratio := float64(hot) / float64(cold)
			if ratio > tc.maxHotColdRatio {
				t.Errorf("weighted hot-shard p99 queue-wait %v is %.1fx the cold mean %v (bound %.0fx)",
					hot, ratio, cold, tc.maxHotColdRatio)
			}
			// Relative wins over the unthrottled run: weighting must cut
			// the hot shard's in-engine p99 queue-wait materially, shrink
			// the hot/cold spread, and never cost throughput — parked
			// waiting replaces in-engine waiting, it doesn't add to it.
			hotOff := off.ShardQueueP99[0]
			if float64(hot) > 0.8*float64(hotOff) {
				t.Errorf("weighting barely moved hot-shard p99 queue-wait: on=%v off=%v", hot, hotOff)
			}
			var coldOff time.Duration
			for _, p := range off.ShardQueueP99[1:] {
				coldOff += p
			}
			coldOff /= time.Duration(tc.shards - 1)
			if ratioOff := float64(hotOff) / float64(coldOff); ratio >= ratioOff {
				t.Errorf("weighting did not shrink the hot/cold queue-wait spread: on=%.1fx off=%.1fx", ratio, ratioOff)
			}
			if on.Throughput < 0.95*off.Throughput {
				t.Errorf("weighting cost throughput: on=%.0f off=%.0f ops/s", on.Throughput, off.Throughput)
			}
		})
	}
}
