package harness

import (
	"fmt"
	"time"

	"github.com/patree/patree/internal/core"
	"github.com/patree/patree/internal/metrics"
	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/sim"
	"github.com/patree/patree/internal/simos"
	"github.com/patree/patree/internal/workload"
)

// MultiDevConfig configures a multi-device sharded PA-Tree run: N
// single-threaded workers over M simulated devices, each shard on an
// nvme.Partition of its placed device, so shards on different devices
// stop sharing controller-interference accounting.
type MultiDevConfig struct {
	Scale  Scale
	Shards int
	// Devices is the simulated device count (M). Each device gets its
	// own SimDevice built from the Device template with a per-device
	// seed; device 0's seed matches the single-device harness so a
	// {N, 1} topology reproduces RunShardedPATree exactly.
	Devices int
	// Placement maps shard index -> device index. Nil means round-robin
	// (shard i on device i % M), the same default the embedder uses.
	Placement []int
	// MkTree builds one shard's tree configuration (called once per
	// shard — sched.Policy instances are stateful).
	MkTree func() core.Config
	Gen    workload.Generator
	// Device is the per-device SimConfig template (Seed is overridden).
	Device nvme.SimConfig
	// SyncEvery issues a Sync on every shard after this many updates
	// (0 disables).
	SyncEvery int
	// Weighting turns on the driver-side hot-shard governor: the same
	// AIMD law the embedder's Options.AdmissionWeighting uses, fed by
	// the driver's per-shard in-flight counts and each tree's
	// queue-wait EWMA. Ops routed to a throttled shard are parked and
	// released as the window allows. Under uniform traffic no window
	// is ever imposed, so runs are byte-identical with Weighting off.
	Weighting bool
}

// MultiDevStats extends RunStats with the topology-specific signals the
// skew battery asserts on.
type MultiDevStats struct {
	RunStats
	Devices int
	// ShardQueueP99 is each shard's ready-queue-wait p99 over the
	// measurement window (all op classes merged).
	ShardQueueP99 []time.Duration
	// Throttled counts driver parks: ops held back from a shard whose
	// governor window was full (measurement window only).
	Throttled uint64
}

// mdAdaptEvery is the governor cadence: re-evaluate windows after this
// many completions.
const mdAdaptEvery = 256

// multiDevSeed derives device d's simulation seed. Device 0 matches
// newMachine's derivation so single-device topologies replay the
// existing harness byte for byte.
func multiDevSeed(seed uint64, d int) uint64 {
	return seed ^ 0xdead ^ uint64(d)*0x9e3779b97f4a7c15
}

// RunMultiDevice executes one multi-device sharded configuration and
// reports the merged stats. The keyspace is hash-partitioned by
// core.ShardOf; the preload is split among the shards' partitions and
// each is bulk-loaded independently; the closed-loop driver keeps
// Scale.Concurrency operations outstanding per shard, routing each to
// its key's owner. With Devices == 1 the layout (and for Shards == 1
// the raw-device placement) matches RunShardedPATree exactly.
func RunMultiDevice(cfg MultiDevConfig) MultiDevStats {
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	m := cfg.Devices
	if m < 1 {
		m = 1
	}
	if n < m {
		panic(fmt.Sprintf("harness: %d shards cannot cover %d devices", n, m))
	}

	eng := sim.NewEngine()
	osched := simos.New(eng, simos.Config{})
	devs := make([]*nvme.SimDevice, m)
	devIfc := make([]nvme.Device, m)
	for d := 0; d < m; d++ {
		devCfg := cfg.Device
		devCfg.Seed = multiDevSeed(cfg.Scale.Seed, d)
		devs[d] = nvme.NewSimDevice(eng, devCfg)
		devIfc[d] = devs[d]
	}

	// Carve one partition per shard. The single-shard single-device
	// topology places the tree on the raw device, mirroring
	// RunShardedPATree (and RunPATree) exactly.
	shardDev := make([]nvme.Device, n)
	if n == 1 && m == 1 {
		shardDev[0] = devs[0]
	} else {
		parts, err := nvme.ShardPartitions(devIfc, n, cfg.Placement)
		if err != nil {
			panic(err)
		}
		for i, p := range parts {
			shardDev[i] = p
		}
	}

	// Split the preload by owning shard; slices stay sorted because
	// splitting preserves order.
	preload := cfg.Gen.Preload()
	parts := make([][]core.KV, n)
	for _, kv := range preload {
		si := core.ShardOf(kv.Key, n)
		parts[si] = append(parts[si], kv)
	}

	trees := make([]*core.Tree, n)
	workers := make([]*simos.Thread, n)
	for i := 0; i < n; i++ {
		meta, err := core.BulkLoad(shardDev[i].(core.ImageWriter), parts[i], 0.7)
		if err != nil {
			panic(err)
		}
		i := i
		workers[i] = osched.Spawn(fmt.Sprintf("patree-shard%d", i), func(*simos.Thread) { trees[i].Run() })
		trees[i], err = core.New(shardDev[i], cfg.MkTree(), core.SimEnv{T: workers[i]}, meta)
		if err != nil {
			panic(err)
		}
	}

	conc := cfg.Scale.Concurrency
	if conc <= 0 {
		conc = 64
	}
	var gov *core.Governor
	if cfg.Weighting {
		gov = core.NewGovernor(n, conc)
	}

	measuredOps := uint64(0)
	throttled := uint64(0)
	completions := uint64(0)
	inWindow := false
	stopping := false
	updates := 0
	inflight := make([]int, n)
	parked := make([][]*core.Op, n)
	waits := make([]time.Duration, n)

	adapt := func() {
		for i, t := range trees {
			waits[i] = t.QueueWaitEWMA()
		}
		gov.Adapt(inflight, waits)
	}
	// releaseOne admits the oldest parked op of shard si if its window
	// now has room.
	releaseOne := func(si int) {
		if len(parked[si]) == 0 || gov.Throttled(si, inflight[si]) {
			return
		}
		op := parked[si][0]
		parked[si] = parked[si][1:]
		inflight[si]++
		trees[si].Admit(op)
	}
	releaseAll := func() {
		for si := 0; si < n; si++ {
			for len(parked[si]) > 0 && !gov.Throttled(si, inflight[si]) {
				releaseOne(si)
			}
		}
	}

	var refill func()
	doneFns := make([]func(*core.Op), n)
	for si := 0; si < n; si++ {
		si := si
		doneFns[si] = func(*core.Op) {
			inflight[si]--
			if inWindow {
				measuredOps++
			}
			completions++
			if gov != nil {
				if completions%mdAdaptEvery == 0 {
					adapt()
					releaseAll()
				} else {
					releaseOne(si)
				}
			}
			if !stopping {
				refill()
			}
		}
	}
	refill = func() {
		w := cfg.Gen.Next()
		if w.Kind != workload.OpSearch && w.Kind != workload.OpRange {
			updates++
			if cfg.SyncEvery > 0 && updates%cfg.SyncEvery == 0 {
				for _, t := range trees {
					t.Admit(core.NewSync(nil))
				}
			}
		}
		si := core.ShardOf(w.Key, n)
		op := toOp(w, doneFns[si])
		if gov != nil && gov.Throttled(si, inflight[si]) {
			parked[si] = append(parked[si], op)
			if inWindow {
				throttled++
			}
			return
		}
		inflight[si]++
		trees[si].Admit(op)
	}

	base := eng.Now()
	eng.After(0, func() {
		for i := 0; i < conc*n; i++ {
			refill()
		}
	})
	eng.At(base.Add(cfg.Scale.Warmup), func() {
		osched.ResetStats()
		for _, d := range devs {
			d.ResetStats()
		}
		for i, t := range trees {
			t.ResetStats()
			workers[i].CPU.Reset()
		}
		throttled = 0
		inWindow = true
	})
	eng.RunUntil(base.Add(cfg.Scale.Warmup + cfg.Scale.Measure))

	out := MultiDevStats{Devices: m}
	out.Label = fmt.Sprintf("PA-Tree x%d/%ddev", n, m)
	lat := metrics.NewHistogram()
	var cpus []*metrics.CPUAccount
	var idleSpin time.Duration
	out.ShardQueueP99 = make([]time.Duration, n)
	for i, t := range trees {
		st := t.StatsSnapshot()
		lat.Merge(st.Latency)
		idleSpin += st.IdleSpinTime
		cpus = append(cpus, t.CPUSnapshot())
		out.LatchWaits += t.LatchWaits()
		out.Probes += st.Probes
		qw := metrics.NewHistogram()
		if st.Stages != nil && st.Stages.MergedInto(metrics.StageQueueWait, qw) {
			out.ShardQueueP99[i] = qw.Percentile(99)
		}
	}

	secs := cfg.Scale.Measure.Seconds()
	out.Ops = measuredOps
	out.Throughput = float64(measuredOps) / secs
	if lat.Count() > 0 {
		out.MeanLatency = lat.Mean()
		out.P99Latency = lat.Percentile(99)
	}
	out.CPU = osched.CPUConsumption()
	out.CtxSwitches = osched.ContextSwitches()
	var completedIO uint64
	for _, d := range devs {
		dst := d.Stats()
		completedIO += dst.CompletedReads + dst.CompletedWrites
		out.Outstanding += dst.AvgOutstanding
	}
	out.IOPS = float64(completedIO) / secs
	var total metrics.CPUAccount
	for _, a := range cpus {
		total.Merge(a)
	}
	if idleSpin > 0 {
		other := total.Get(metrics.CatOther) - idleSpin
		if other < 0 {
			other = 0
		}
		adj := metrics.CPUAccount{}
		for _, c := range metrics.Categories() {
			if c == metrics.CatOther {
				adj.Charge(c, other)
			} else {
				adj.Charge(c, total.Get(c))
			}
		}
		total = adj
	}
	out.Breakdown = total.Fractions()
	if measuredOps > 0 {
		out.CyclesPerOp = total.Total().Seconds() * CPUGHz * 1e9 / float64(measuredOps) / 1e3
	}
	out.Throttled = throttled

	// Drain: parked ops flow through the engine once stopping is set so
	// none leak un-completed.
	stopping = true
	if gov != nil {
		for si := 0; si < n; si++ {
			for _, op := range parked[si] {
				inflight[si]++
				trees[si].Admit(op)
			}
			parked[si] = nil
		}
	}
	for _, t := range trees {
		t.Stop()
	}
	eng.RunFor(2 * time.Second)
	return out
}
