package harness

import (
	"github.com/patree/patree/internal/core"
	"github.com/patree/patree/internal/metrics"
	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/workload"
)

// This file is the figpipeline harness for the polled loop's overlap
// machinery (DESIGN.md §17): speculative child prefetch and pipelined
// WAL block writes. Each mix runs twice on the same seed — once with
// the classic strictly-reactive loop, once with the overlap features on
// — so every delta is the schedule change and nothing else. The
// off-worker scan merge is deliberately absent here: it moves real host
// work off the worker goroutine and charges no virtual CPU, so it is
// invisible to the simulated figures by construction.

// PipelineMix is one committed figpipeline workload configuration.
type PipelineMix struct {
	Name string
	// UpdatePercent is the write share of the YCSB mix.
	UpdatePercent int
	// Journal turns on the redo journal; with it on, the classic writer
	// keeps at most one WAL block write in flight, which is the
	// bottleneck WALWriteDepth > 1 removes.
	Journal bool
	// BufferDiv sizes the page buffer as PreloadKeys/BufferDiv pages; a
	// large divisor leaves the tree cold so point descents miss and the
	// speculative prefetch has reads to move off the critical path.
	BufferDiv int
	// Concurrency overrides the scale's closed-loop depth when > 0. Deep
	// closed loops hide read latency on their own (the worker always has
	// other ops to run during a wait), so the prefetch mix keeps few ops
	// outstanding — the regime where the worker otherwise idles on
	// serial root-to-leaf demand reads.
	Concurrency int
	// ArrivalRate > 0 switches the mix to an open-loop Poisson driver at
	// that many ops/s. A closed loop re-paces itself around whatever the
	// worker costs, hiding latency effects in the throughput; an open
	// loop holds the offered load fixed, so moving a demand read off the
	// critical path shows up where it belongs — in the latency tail,
	// where arrival bursts queue behind reads the classic loop waits out.
	ArrivalRate float64
	// RangePercent adds YCSB-E style short scans (64 pairs) to the mix;
	// a scan crossing leaf boundaries is the serial-read chain the
	// sibling read-ahead collapses into one parallel batch.
	RangePercent int
}

// PipelineMixes are the mixes committed in BENCH_pipeline.json. The
// journal mix is write-heavy with a warm buffer: its throughput is
// gated by the single-in-flight WAL writer. The scan mix is cold and
// scan-heavy at a modest closed-loop depth: each scan crossing leaf
// boundaries waits out a serial chain of sibling reads that the
// read-ahead issues in parallel instead. The search mix is read-heavy
// and open-loop at a fixed offered load: point speculation can only
// shave the drain-to-descent gap off each demand read, so its gains
// show up in latency rather than throughput.
var PipelineMixes = []PipelineMix{
	{Name: "journal-write", UpdatePercent: 50, Journal: true, BufferDiv: 12},
	{Name: "scan-cold", UpdatePercent: 5, RangePercent: 60, BufferDiv: 50, Concurrency: 8},
	{Name: "search-cold", UpdatePercent: 5, Journal: false, BufferDiv: 50, ArrivalRate: 150_000},
}

// RunPipelineMix executes one mix. pipelined toggles speculative
// prefetch and depth-8 WAL write pipelining on the same seed and
// workload.
func RunPipelineMix(scale Scale, mix PipelineMix, pipelined bool) RunStats {
	if mix.Concurrency > 0 {
		scale.Concurrency = mix.Concurrency
	}
	cfg := paTreeConfig(scale.PreloadKeys/mix.BufferDiv, core.StrongPersistence)
	cfg.Journal = mix.Journal
	if pipelined {
		cfg.SpeculativePrefetch = true
		cfg.WALWriteDepth = 8
	}
	gen := workload.NewYCSB(workload.YCSBConfig{
		Keys:          uint64(scale.PreloadKeys),
		UpdatePercent: mix.UpdatePercent,
		RangePercent:  mix.RangePercent,
		Theta:         0.3,
		Seed:          scale.Seed,
	})
	rs := RunPATree(PAConfig{
		Scale:       scale,
		Tree:        cfg,
		Gen:         gen,
		Device:      nvme.SimConfig{},
		ArrivalRate: mix.ArrivalRate,
	})
	label := "classic"
	if pipelined {
		label = "pipelined"
	}
	rs.Label = "PA-Tree " + mix.Name + " " + label
	return rs
}

// PipelineResult pairs one mix's classic and pipelined runs.
type PipelineResult struct {
	Mix PipelineMix
	Off RunStats
	On  RunStats
}

// PipelineSweep runs every committed mix off and on.
func PipelineSweep(scale Scale) []PipelineResult {
	out := make([]PipelineResult, 0, len(PipelineMixes))
	for _, mix := range PipelineMixes {
		out = append(out, PipelineResult{
			Mix: mix,
			Off: RunPipelineMix(scale, mix, false),
			On:  RunPipelineMix(scale, mix, true),
		})
	}
	return out
}

// FigPipeline regenerates the overlap figure: per-mix throughput and
// tail latency with the machinery off and on.
func FigPipeline(scale Scale) Report {
	tb := metrics.NewTable("mix", "classic (Kops/s)", "pipelined (Kops/s)", "speedup",
		"classic p99 (us)", "pipelined p99 (us)")
	for _, r := range PipelineSweep(scale) {
		tb.AddRow(r.Mix.Name, r.Off.Throughput/1e3, r.On.Throughput/1e3,
			r.On.Throughput/r.Off.Throughput,
			float64(r.Off.P99Latency)/1e3, float64(r.On.P99Latency)/1e3)
	}
	return Report{ID: "figpipeline", Title: "Overlapped I/O and computation: classic vs pipelined polled loop", Table: tb,
		Notes: "pipelining the WAL block writes lifts the journaled write mix an order of magnitude past the one-block-in-flight ceiling, sibling read-ahead collapses the cold scan mix's serial leaf chains into parallel batches (~1.6x), and point speculation trims the open-loop search mix's latency a few percent; with the features off the schedules are byte-identical to the classic loop"}
}
