package harness

import (
	"testing"

	"github.com/patree/patree/internal/nvme"
)

func readHeavyRun(t *testing.T, shards int, conc bool) RunStats {
	t.Helper()
	s := tinyScale()
	return RunShardedReadHeavy(ReadHeavyConfig{
		Scale:           s,
		Shards:          shards,
		ConcurrentReads: conc,
		BufferPages:     s.PreloadKeys / 12,
		Device:          nvme.SimConfig{Parallelism: 256},
	})
}

// TestReadHeavySpeedup is the acceptance gate for the optimistic
// concurrent-read path: on the 95/5 read-heavy mix with the index
// buffered, turning ConcurrentReads on must at least double per-shard
// throughput over the pipeline-only control, because served lookups cost
// the client ~2µs instead of a worker round-trip.
func TestReadHeavySpeedup(t *testing.T) {
	for _, shards := range []int{1, 2} {
		off := readHeavyRun(t, shards, false)
		on := readHeavyRun(t, shards, true)
		t.Logf("shards=%d off=%.0f ops/s on=%.0f ops/s served=%d fallback=%d",
			shards, off.Throughput, on.Throughput, on.ReaderServed, on.ReaderFallback)
		if off.Ops == 0 || on.Ops == 0 {
			t.Fatalf("shards=%d: empty measurement window (off=%d on=%d ops)", shards, off.Ops, on.Ops)
		}
		if off.ReaderServed != 0 || off.ReaderFallback != 0 {
			t.Fatalf("shards=%d: control run touched the optimistic path: %+v", shards, off)
		}
		if on.ReaderServed == 0 {
			t.Fatalf("shards=%d: optimistic path served nothing", shards)
		}
		// The serve rate, not just the total, is what the figure claims:
		// with the whole index buffered most lookups must bypass the worker.
		if rate := float64(on.ReaderServed) / float64(on.ReaderServed+on.ReaderFallback); rate < 0.5 {
			t.Errorf("shards=%d: optimistic serve rate %.2f < 0.5", shards, rate)
		}
		if on.Throughput < 2*off.Throughput {
			t.Errorf("shards=%d: read-heavy speedup %.2fx < 2x (on=%.0f off=%.0f ops/s)",
				shards, on.Throughput/off.Throughput, on.Throughput, off.Throughput)
		}
	}
}

// TestReadHeavyDeterminism pins the read-heavy driver itself: the
// optimistic descent runs inside the single-threaded simulation, so a
// same-seed run must reproduce every statistic exactly.
func TestReadHeavyDeterminism(t *testing.T) {
	a := readHeavyRun(t, 2, true)
	b := readHeavyRun(t, 2, true)
	if a.Ops != b.Ops || a.ReaderServed != b.ReaderServed ||
		a.ReaderFallback != b.ReaderFallback || a.Throughput != b.Throughput ||
		a.MeanLatency != b.MeanLatency || a.P99Latency != b.P99Latency {
		t.Fatalf("same-seed read-heavy runs diverged:\n  a=%+v\n  b=%+v", a, b)
	}
}
