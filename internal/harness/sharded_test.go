package harness

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/patree/patree/internal/core"
	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/sim"
	"github.com/patree/patree/internal/simos"
	"github.com/patree/patree/internal/trace"
)

func TestRunShardedPATreeProducesStats(t *testing.T) {
	s := tinyScale()
	rs := RunShardedPATree(ShardedPAConfig{
		Scale:  s,
		Shards: 4,
		MkTree: func() core.Config { return paTreeConfig(0, core.StrongPersistence) },
		Gen:    defaultGen(s, 10, 0.3),
	})
	if rs.Ops == 0 || rs.Throughput <= 0 {
		t.Fatalf("no ops measured: %+v", rs)
	}
	if rs.MeanLatency <= 0 || rs.CPU <= 0 || rs.IOPS <= 0 {
		t.Fatalf("stats incomplete: %+v", rs)
	}
	if rs.Label != "PA-Tree x4" {
		t.Fatalf("label = %q", rs.Label)
	}
	// Four single-threaded workers: more than one core busy, at most ~4.
	if rs.CPU < 1.0 || rs.CPU > 4.5 {
		t.Fatalf("4-shard CPU = %v cores", rs.CPU)
	}
}

// TestShardsOneByteCompat pins the Shards=1 degenerate case to the
// single-worker driver: with the same seed and workload, the sharded
// runner with one shard must reproduce RunPATree's measurements exactly
// — same ops, latencies, probe counts. Any divergence means Shards:1 is
// not byte-compatible with the unsharded layout.
func TestShardsOneByteCompat(t *testing.T) {
	s := tinyScale()
	a := RunPATree(PAConfig{
		Scale: s,
		Tree:  paTreeConfig(0, core.StrongPersistence),
		Gen:   defaultGen(s, 10, 0.3),
	})
	b := RunShardedPATree(ShardedPAConfig{
		Scale:  s,
		Shards: 1,
		MkTree: func() core.Config { return paTreeConfig(0, core.StrongPersistence) },
		Gen:    defaultGen(s, 10, 0.3),
	})
	if a.Ops != b.Ops {
		t.Errorf("ops diverged: flat=%d sharded(1)=%d", a.Ops, b.Ops)
	}
	if a.Throughput != b.Throughput {
		t.Errorf("throughput diverged: flat=%v sharded(1)=%v", a.Throughput, b.Throughput)
	}
	if a.MeanLatency != b.MeanLatency || a.P99Latency != b.P99Latency {
		t.Errorf("latency diverged: flat mean=%v p99=%v, sharded(1) mean=%v p99=%v",
			a.MeanLatency, a.P99Latency, b.MeanLatency, b.P99Latency)
	}
	if a.Probes != b.Probes {
		t.Errorf("probes diverged: flat=%d sharded(1)=%d", a.Probes, b.Probes)
	}
	if a.LatchWaits != b.LatchWaits {
		t.Errorf("latch waits diverged: flat=%d sharded(1)=%d", a.LatchWaits, b.LatchWaits)
	}
	if a.IOPS != b.IOPS {
		t.Errorf("IOPS diverged: flat=%v sharded(1)=%v", a.IOPS, b.IOPS)
	}
}

// shardedTraceRun drives two traced shards over partitions of one
// simulated device through a fixed workload and returns the combined
// multi-process Chrome trace. Called twice with the same seed it must
// produce byte-identical output — the property the simulated experiments
// (and every stress reproduction) rely on. concReads toggles
// Config.ConcurrentReads: publication is pure observation (no virtual
// CPU), so it must not change the trace either.
func shardedTraceRun(t *testing.T, seed uint64, concReads bool) []byte {
	t.Helper()
	const shards = 2
	const blocksPer = 1 << 12
	eng := sim.NewEngine()
	sd := nvme.NewSimDevice(eng, nvme.SimConfig{Seed: seed, NumBlocks: shards * blocksPer})
	osched := simos.New(eng, simos.Config{})
	trees := make([]*core.Tree, shards)
	tracers := make([]*trace.Tracer, shards)
	for i := 0; i < shards; i++ {
		part, err := nvme.NewPartition(sd, uint64(i)*blocksPer, blocksPer)
		if err != nil {
			t.Fatalf("partition %d: %v", i, err)
		}
		meta, err := core.FormatShard(part, uint16(i), shards)
		if err != nil {
			t.Fatalf("format shard %d: %v", i, err)
		}
		tracers[i] = core.NewTracer(1 << 14)
		i := i
		th := osched.Spawn(fmt.Sprintf("patree-shard%d", i), func(*simos.Thread) { trees[i].Run() })
		trees[i], err = core.New(part, core.Config{
			Persistence:     core.StrongPersistence,
			BufferPages:     32,
			Tracer:          tracers[i],
			ConcurrentReads: concReads,
		}, core.SimEnv{T: th}, meta)
		if err != nil {
			t.Fatalf("new tree %d: %v", i, err)
		}
	}

	rng := sim.NewRNG(seed ^ 0x7ace)
	const total = 400
	resolved := 0
	admit := func() {
		key := 1 + rng.Uint64n(256)
		var op *core.Op
		if rng.Intn(100) < 60 {
			op = core.NewInsert(key, []byte(fmt.Sprintf("v%d", key)), func(*core.Op) { resolved++ })
		} else {
			op = core.NewSearch(key, func(*core.Op) { resolved++ })
		}
		trees[core.ShardOf(key, shards)].Admit(op)
	}
	eng.After(0, func() {
		for i := 0; i < total; i++ {
			admit()
		}
	})
	for resolved < total {
		if !eng.Step() {
			t.Fatalf("seed %d: trace run wedged at %d/%d", seed, resolved, total)
		}
	}
	for _, tr := range trees {
		tr.Stop()
	}
	eng.RunFor(time.Second)

	procs := make([]trace.Process, shards)
	for i, tc := range tracers {
		procs[i] = trace.Process{Name: fmt.Sprintf("patree-shard%d", i), Events: tc.Events()}
		if len(procs[i].Events) == 0 {
			t.Fatalf("seed %d: shard %d emitted no trace events", seed, i)
		}
	}
	var buf bytes.Buffer
	if err := tracers[0].WriteChromeJSONProcs(&buf, procs); err != nil {
		t.Fatalf("seed %d: write trace: %v", seed, err)
	}
	return buf.Bytes()
}

// TestShardedTraceDeterminism asserts that two same-seed simulated runs
// over N>1 shards export byte-identical multi-process traces.
func TestShardedTraceDeterminism(t *testing.T) {
	const seed = 1337
	t1 := shardedTraceRun(t, seed, false)
	t2 := shardedTraceRun(t, seed, false)
	if !bytes.Equal(t1, t2) {
		t.Fatalf("seed %d: sharded traces diverged between runs (%d vs %d bytes)", seed, len(t1), len(t2))
	}
	for _, want := range []string{`"patree-shard0"`, `"patree-shard1"`, `"process_name"`, `"thread_name"`} {
		if !bytes.Contains(t1, []byte(want)) {
			t.Fatalf("trace missing %s", want)
		}
	}
}

// TestShardedTraceConcurrentReadsDeterminism is the determinism
// regression for the optimistic-reader feature: ConcurrentReads defaults
// to off, and even when on — with no reader goroutines attached, as in
// every simulated experiment — publication charges no virtual CPU, so a
// same-seed run must export a byte-identical trace with the flag on or
// off. If this breaks, the published-page table has started perturbing
// simulated schedules and every pinned experiment is suspect.
func TestShardedTraceConcurrentReadsDeterminism(t *testing.T) {
	if (core.Config{}).ConcurrentReads {
		t.Fatalf("ConcurrentReads must default to off")
	}
	if (core.Config{}).WithDefaults().ConcurrentReads {
		t.Fatalf("WithDefaults must not switch ConcurrentReads on")
	}
	const seed = 99
	off := shardedTraceRun(t, seed, false)
	on := shardedTraceRun(t, seed, true)
	if !bytes.Equal(off, on) {
		t.Fatalf("seed %d: enabling ConcurrentReads changed the simulated trace (%d vs %d bytes) — publication must stay schedule-invisible", seed, len(off), len(on))
	}
	off2 := shardedTraceRun(t, seed, false)
	if !bytes.Equal(off, off2) {
		t.Fatalf("seed %d: same-seed ConcurrentReads:false runs diverged (%d vs %d bytes)", seed, len(off), len(off2))
	}
}
